#include "rules/chase.h"

#include <functional>
#include <map>
#include <set>
#include <utility>

#include "util/check.h"

namespace tud {

Rule MakeRule(std::string name, std::vector<QueryAtom> body,
              std::vector<QueryAtom> head, double probability) {
  TUD_CHECK(probability >= 0.0 && probability <= 1.0);
  return Rule{std::move(name), std::move(body), std::move(head),
              probability};
}

namespace {

// Enumerates all homomorphisms of `atoms` into `instance`, reporting for
// each the variable assignment and the facts used per atom.
void FindHomomorphisms(
    const std::vector<QueryAtom>& atoms, const Instance& instance,
    size_t index, std::vector<Value>& assignment, std::vector<bool>& assigned,
    std::vector<FactId>& used,
    const std::function<void(const std::vector<Value>&,
                             const std::vector<FactId>&)>& fn) {
  if (index == atoms.size()) {
    fn(assignment, used);
    return;
  }
  const QueryAtom& atom = atoms[index];
  for (FactId f = 0; f < instance.NumFacts(); ++f) {
    const Fact& fact = instance.fact(f);
    if (fact.relation != atom.relation ||
        fact.args.size() != atom.terms.size()) {
      continue;
    }
    std::vector<VarId> newly_bound;
    bool ok = true;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (!t.is_var) {
        if (t.constant != fact.args[i]) {
          ok = false;
          break;
        }
        continue;
      }
      if (assigned[t.var]) {
        if (assignment[t.var] != fact.args[i]) {
          ok = false;
          break;
        }
      } else {
        assigned[t.var] = true;
        assignment[t.var] = fact.args[i];
        newly_bound.push_back(t.var);
      }
    }
    if (ok) {
      used.push_back(f);
      FindHomomorphisms(atoms, instance, index + 1, assignment, assigned,
                        used, fn);
      used.pop_back();
    }
    for (VarId v : newly_bound) assigned[v] = false;
  }
}

uint32_t MaxVar(const Rule& rule) {
  uint32_t num_vars = 0;
  for (const auto& atoms : {rule.body, rule.head}) {
    for (const QueryAtom& atom : atoms) {
      for (const Term& t : atom.terms) {
        if (t.is_var) num_vars = std::max(num_vars, t.var + 1);
      }
    }
  }
  return num_vars;
}

}  // namespace

ChaseResult ProbabilisticChase(const CInstance& base,
                               const std::vector<Rule>& rules,
                               Dictionary& dictionary,
                               const ChaseOptions& options) {
  // Copy the base pc-instance.
  ChaseResult result{CInstance(base.instance().schema()), 0, 0, false};
  CInstance& out = result.instance;
  for (EventId e = 0; e < base.events().size(); ++e) {
    out.events().Register(base.events().name(e), base.events().probability(e));
  }
  std::map<Fact, FactId> fact_index;
  for (FactId f = 0; f < base.NumFacts(); ++f) {
    const Fact& fact = base.instance().fact(f);
    FactId id = out.AddFact(fact.relation, fact.args, base.annotation(f));
    fact_index.emplace(
        Fact{fact.relation, base.instance().fact(f).args}, id);
  }

  // Fire each (rule, body-assignment) at most once across all rounds.
  std::set<std::pair<size_t, std::vector<Value>>> fired;
  size_t null_counter = 0;

  for (uint32_t round = 0; round < options.max_rounds; ++round) {
    result.rounds_run = round + 1;
    bool any_fired = false;
    for (size_t r = 0; r < rules.size(); ++r) {
      const Rule& rule = rules[r];
      const uint32_t num_vars = MaxVar(rule);
      std::vector<Value> assignment(num_vars, 0);
      std::vector<bool> assigned(num_vars, false);
      std::vector<FactId> used;

      // Collect firings first (do not mutate while matching).
      std::vector<std::pair<std::vector<Value>, std::vector<FactId>>>
          pending;
      FindHomomorphisms(
          rule.body, out.instance(), 0, assignment, assigned, used,
          [&](const std::vector<Value>& hom, const std::vector<FactId>& fs) {
            // Key only on body variables (existential ones are unbound).
            std::vector<Value> key;
            for (const QueryAtom& atom : rule.body) {
              for (const Term& t : atom.terms) {
                if (t.is_var) key.push_back(hom[t.var]);
              }
            }
            if (fired.emplace(r, std::move(key)).second) {
              pending.emplace_back(hom, fs);
            }
          });

      for (auto& [hom, body_facts] : pending) {
        if (out.NumFacts() >= options.max_facts) {
          result.hit_fact_cap = true;
          return result;
        }
        ++result.num_firings;
        any_fired = true;

        // Derivation lineage: body annotations AND a fresh firing event
        // (omitted for hard rules with probability 1).
        std::vector<BoolFormula> deriv;
        for (FactId f : body_facts) deriv.push_back(out.annotation(f));
        if (rule.probability < 1.0) {
          EventId fire = out.events().Register(
              rule.name + "#" + std::to_string(result.num_firings),
              rule.probability);
          deriv.push_back(BoolFormula::Var(fire));
        }
        BoolFormula derivation = BoolFormula::And(deriv);

        // Bind existential head variables to fresh nulls.
        std::vector<Value> binding = hom;
        std::vector<bool> bound(binding.size(), false);
        for (const QueryAtom& atom : rule.body) {
          for (const Term& t : atom.terms) {
            if (t.is_var) bound[t.var] = true;
          }
        }
        for (const QueryAtom& atom : rule.head) {
          for (const Term& t : atom.terms) {
            if (t.is_var && !bound[t.var]) {
              binding[t.var] =
                  dictionary.Intern("_null" + std::to_string(null_counter++));
              bound[t.var] = true;
            }
          }
        }

        // Materialise head facts, OR-ing new derivations into existing
        // facts.
        for (const QueryAtom& atom : rule.head) {
          std::vector<Value> args;
          args.reserve(atom.terms.size());
          for (const Term& t : atom.terms) {
            args.push_back(t.is_var ? binding[t.var] : t.constant);
          }
          Fact key{atom.relation, args};
          auto it = fact_index.find(key);
          if (it == fact_index.end()) {
            FactId id = out.AddFact(atom.relation, args, derivation);
            fact_index.emplace(std::move(key), id);
          } else {
            out.SetAnnotation(
                it->second,
                BoolFormula::Or(out.annotation(it->second), derivation));
          }
        }
      }
    }
    if (!any_fired) break;
  }
  return result;
}

}  // namespace tud
