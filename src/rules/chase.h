#ifndef TUD_RULES_CHASE_H_
#define TUD_RULES_CHASE_H_

#include <cstdint>
#include <vector>

#include "relational/dictionary.h"
#include "rules/rule.h"
#include "uncertain/c_instance.h"

namespace tud {

/// Options for the probabilistic chase.
struct ChaseOptions {
  /// Rounds of rule application. Cyclic rule sets never terminate; the
  /// paper's suggested mitigation is "to truncate [the chase] and
  /// control the error", which this bound implements.
  uint32_t max_rounds = 3;

  /// Safety cap on the total number of facts (derived nulls can blow
  /// up); the chase stops cleanly when reached.
  size_t max_facts = 100000;
};

/// Outcome of a chase run.
struct ChaseResult {
  CInstance instance;         ///< pc-instance with derivation lineage.
  size_t num_firings = 0;     ///< Rule instantiations fired.
  uint32_t rounds_run = 0;
  bool hit_fact_cap = false;
};

/// Runs the probabilistic chase (§2.3 vision): starting from `base`
/// (whose annotations are preserved), repeatedly finds homomorphisms of
/// rule bodies into the current facts and fires each at most once. A
/// firing registers a fresh independent event with the rule's
/// probability, invents fresh nulls (interned in `dictionary` as
/// "_null<k>") for existential head variables, and adds/extends each
/// head fact's annotation with the derivation
///   (AND of the used facts' annotations) AND firing-event —
/// OR-ed with previously found derivations, so "multiple independent
/// ways to deduce the same fact" combine, and derivations compose across
/// rounds (facts deduced via paths involving other deduced facts).
ChaseResult ProbabilisticChase(const CInstance& base,
                               const std::vector<Rule>& rules,
                               Dictionary& dictionary,
                               const ChaseOptions& options = {});

}  // namespace tud

#endif  // TUD_RULES_CHASE_H_
