#ifndef TUD_RULES_RULE_H_
#define TUD_RULES_RULE_H_

#include <string>
#include <vector>

#include "queries/conjunctive_query.h"

namespace tud {

/// A (probabilistic) existential rule: body(x̄) -> ∃ z̄ head(x̄, z̄).
///
/// Variables occurring in the head but not the body are existential:
/// each firing invents fresh nulls for them ("rules which assert the
/// probable existence of new elements", §2.3). `probability` is the
/// per-instantiation firing probability — the paper's desired semantics
/// where "the rule applies, on average, in 80% of cases", as opposed to
/// the rule being globally true or false with that probability ([25]'s
/// semantics, which §2.3 explicitly argues against). probability = 1
/// gives an ordinary hard rule (classical chase step).
struct Rule {
  std::string name;
  std::vector<QueryAtom> body;
  std::vector<QueryAtom> head;
  double probability = 1.0;
};

/// Builder helpers mirroring ConjunctiveQuery's Term API.
Rule MakeRule(std::string name, std::vector<QueryAtom> body,
              std::vector<QueryAtom> head, double probability);

}  // namespace tud

#endif  // TUD_RULES_RULE_H_
