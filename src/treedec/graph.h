#ifndef TUD_TREEDEC_GRAPH_H_
#define TUD_TREEDEC_GRAPH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>
#include <utility>
#include <vector>

namespace tud {

/// Vertex of an undirected graph (dense ids).
using VertexId = uint32_t;

/// A simple undirected graph with a fixed vertex count. Used for Gaifman
/// graphs of instances, primal graphs of circuits, and their joins.
class Graph {
 public:
  explicit Graph(uint32_t num_vertices) : adjacency_(num_vertices) {}

  /// Builds a graph from an edge list (vertices up to `num_vertices`).
  static Graph FromEdges(uint32_t num_vertices,
                         const std::vector<std::pair<VertexId, VertexId>>& edges);

  uint32_t NumVertices() const {
    return static_cast<uint32_t>(adjacency_.size());
  }

  size_t NumEdges() const { return num_edges_; }

  /// Adds the undirected edge {a, b}. Self-loops and duplicates ignored.
  void AddEdge(VertexId a, VertexId b);

  bool HasEdge(VertexId a, VertexId b) const;

  const std::unordered_set<VertexId>& Neighbors(VertexId v) const;

  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(Neighbors(v).size());
  }

 private:
  std::vector<std::unordered_set<VertexId>> adjacency_;
  size_t num_edges_ = 0;
};

}  // namespace tud

#endif  // TUD_TREEDEC_GRAPH_H_
