#ifndef TUD_TREEDEC_NICE_DECOMPOSITION_H_
#define TUD_TREEDEC_NICE_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "treedec/graph.h"
#include "treedec/tree_decomposition.h"

namespace tud {

/// Index of a node within a NiceTreeDecomposition.
using NiceNodeId = uint32_t;

inline constexpr NiceNodeId kInvalidNiceNode = UINT32_MAX;

/// Node kinds of a nice tree decomposition. Dynamic programming over a
/// nice decomposition only has to handle these four local shapes — this
/// is the "tree encoding" that tree automata read in the Courcelle-style
/// argument of the paper (§2.2).
enum class NiceNodeKind : uint8_t {
  kLeaf,       ///< Empty bag, no children.
  kIntroduce,  ///< Bag = child bag ∪ {vertex}, one child.
  kForget,     ///< Bag = child bag \ {vertex}, one child.
  kJoin,       ///< Two children with identical bags; bag = child bag.
};

/// A nice tree decomposition: every node is a leaf, introduce, forget, or
/// join node, and the root has an empty bag. Nodes are stored so that
/// children always have smaller ids than their parents — iterating ids in
/// ascending order is a valid bottom-up evaluation order.
class NiceTreeDecomposition {
 public:
  /// Converts an arbitrary rooted tree decomposition. The width is
  /// preserved; the node count is O(width * #bags). If `top_of_bag` is
  /// non-null it receives, for each original bag b, a nice node whose bag
  /// equals td.bag(b) — callers use it to attach per-bag payloads (e.g.
  /// facts) to nice nodes without searching.
  static NiceTreeDecomposition FromTreeDecomposition(
      const TreeDecomposition& td,
      std::vector<NiceNodeId>* top_of_bag = nullptr);

  size_t NumNodes() const { return kinds_.size(); }
  NiceNodeId root() const { return static_cast<NiceNodeId>(NumNodes() - 1); }

  NiceNodeKind kind(NiceNodeId n) const { return kinds_[n]; }

  /// The introduced / forgotten vertex (kIntroduce / kForget only).
  VertexId vertex(NiceNodeId n) const;

  /// Children (0, 1 or 2 ids, all smaller than n).
  const std::vector<NiceNodeId>& children(NiceNodeId n) const {
    return children_[n];
  }

  /// Sorted bag content of node n.
  const std::vector<VertexId>& bag(NiceNodeId n) const { return bags_[n]; }

  int Width() const;

  /// Returns some node whose bag contains all of `vertices` (used to
  /// assign facts/constraints to nodes), or kInvalidNiceNode.
  NiceNodeId FindNodeCovering(const std::vector<VertexId>& vertices) const;

  /// Structural sanity check: kinds consistent with bags and children,
  /// root bag empty.
  bool IsWellFormed() const;

  /// Raw per-node vertex slot, defined for every node (meaningful only
  /// for introduce/forget; construction scratch otherwise). The
  /// persistence layer serializes this so a restored decomposition is
  /// byte-for-byte the one that was checkpointed.
  VertexId raw_vertex(NiceNodeId n) const { return vertices_[n]; }

  /// Persistence restore: rebuilds a decomposition from its four
  /// parallel arrays. The caller validates the result (IsWellFormed)
  /// before trusting it.
  static NiceTreeDecomposition FromParts(
      std::vector<NiceNodeKind> kinds, std::vector<VertexId> vertices,
      std::vector<std::vector<VertexId>> bags,
      std::vector<std::vector<NiceNodeId>> children);

  std::string ToString() const;

 private:
  NiceNodeId AddNode(NiceNodeKind kind, VertexId vertex,
                     std::vector<VertexId> bag,
                     std::vector<NiceNodeId> children);

  // Builds a chain of nodes morphing `from` (already built, with bag
  // `from_bag`) into a node with bag `to_bag` via forgets then introduces.
  NiceNodeId MorphTo(NiceNodeId from, std::vector<VertexId> from_bag,
                     const std::vector<VertexId>& to_bag);

  std::vector<NiceNodeKind> kinds_;
  std::vector<VertexId> vertices_;
  std::vector<std::vector<VertexId>> bags_;
  std::vector<std::vector<NiceNodeId>> children_;
};

}  // namespace tud

#endif  // TUD_TREEDEC_NICE_DECOMPOSITION_H_
