#ifndef TUD_TREEDEC_ELIMINATION_GRAPH_H_
#define TUD_TREEDEC_ELIMINATION_GRAPH_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <unordered_set>
#include <vector>

#include "automata/state_set.h"  // Word-level bitset helpers.
#include "treedec/graph.h"
#include "util/check.h"

namespace tud {

/// Working copies of a Graph that support vertex elimination (remove a
/// vertex, clique its remaining neighborhood). Two interchangeable
/// representations share the interface used by the greedy-order heap and
/// the decomposition builder:
///
///   bool alive(v); uint32_t Degree(v);
///   size_t FillCount(v, cap); void Eliminate(v);
///   template ForEachNeighbor(v, fn);   // ascending vertex order for the
///                                      // dense graph, unspecified for
///                                      // the sparse one.
///
/// SparseEliminationGraph is the original adjacency-set implementation;
/// DenseEliminationGraph packs each neighborhood into a bitset row of
/// uint64_t words with a nonzero-word window, which turns FillCount and
/// Eliminate into word operations. Scores agree exactly (fill saturated
/// at `cap`), so greedy orders are identical across representations.

class SparseEliminationGraph {
 public:
  explicit SparseEliminationGraph(const Graph& graph)
      : adjacency_(graph.NumVertices()), alive_(graph.NumVertices(), true) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      adjacency_[v] = graph.Neighbors(v);
    }
  }

  bool alive(VertexId v) const { return alive_[v]; }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(adjacency_[v].size());
  }

  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn fn) const {
    for (VertexId u : adjacency_[v]) fn(u);
  }

  // Number of fill edges elimination of v would create, saturated at
  // `cap`: min-fill only needs exact values when they are small, and
  // saturation keeps the cost on high-degree hub vertices bounded.
  size_t FillCount(VertexId v, size_t cap = SIZE_MAX) const {
    size_t fill = 0;
    const auto& nbrs = adjacency_[v];
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      auto jt = it;
      for (++jt; jt != nbrs.end(); ++jt) {
        if (!adjacency_[*it].contains(*jt)) {
          if (++fill >= cap) return cap;
        }
      }
    }
    return fill;
  }

  // Eliminates v: clique its neighborhood, then remove it.
  void Eliminate(VertexId v) {
    TUD_CHECK(alive_[v]);
    const std::vector<VertexId> nbrs(adjacency_[v].begin(),
                                     adjacency_[v].end());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        adjacency_[nbrs[i]].insert(nbrs[j]);
        adjacency_[nbrs[j]].insert(nbrs[i]);
      }
    }
    for (VertexId u : nbrs) adjacency_[u].erase(v);
    adjacency_[v].clear();
    alive_[v] = false;
  }

 private:
  std::vector<std::unordered_set<VertexId>> adjacency_;
  std::vector<bool> alive_;
};

/// Dense elimination graph: one bitset row per vertex, each row carrying
/// its nonzero-word window [lo, hi]. FillCount — the inner loop of
/// min-fill, called on every heap repair — becomes popcounts over row
/// intersections confined to the window, with early exit at the
/// saturation cap (critical on high-degree hub vertices); Eliminate is a
/// row-wide OR. Memory is n^2/8 bytes, so use is gated on vertex count
/// (see kDenseVertexLimit).
class DenseEliminationGraph {
 public:
  explicit DenseEliminationGraph(const Graph& graph)
      : num_words_(StateWordsFor(graph.NumVertices())),
        rows_(graph.NumVertices() * num_words_, 0),
        degree_(graph.NumVertices(), 0),
        lo_(graph.NumVertices(), 0),
        hi_(graph.NumVertices(), 0),
        alive_(graph.NumVertices(), true) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      for (VertexId u : graph.Neighbors(v)) SetWordBit(Row(v), u);
      degree_[v] = static_cast<uint32_t>(graph.Degree(v));
      // Window of nonzero words; [0, 0] for isolated vertices so the
      // inclusive loops stay well-formed.
      if (degree_[v] > 0) {
        lo_[v] = num_words_ - 1;
        ForEachSetBit(Row(v), num_words_, [&](VertexId u) {
          lo_[v] = std::min<size_t>(lo_[v], u >> 6);
          hi_[v] = std::max<size_t>(hi_[v], u >> 6);
        });
      }
    }
  }

  bool alive(VertexId v) const { return alive_[v]; }
  uint32_t Degree(VertexId v) const { return degree_[v]; }

  template <typename Fn>
  void ForEachNeighbor(VertexId v, Fn fn) const {
    const uint64_t* nv = Row(v);
    for (size_t w = lo_[v]; w <= hi_[v]; ++w) {
      uint64_t bits = nv[w];
      while (bits != 0) {
        fn(static_cast<VertexId>(w * 64 + std::countr_zero(bits)));
        bits &= bits - 1;
      }
    }
  }

  // Fill edges elimination of v would create, saturated at `cap`. For
  // each neighbor u (ascending) the missing pairs (u, w) with w > u are
  // popcount(N(v) \ N(u)) over the suffix above u, so the loop can stop
  // as soon as the cap is reached.
  size_t FillCount(VertexId v, size_t cap = SIZE_MAX) const {
    const uint64_t* nv = Row(v);
    size_t fill = 0;
    const size_t v_hi = hi_[v];
    for (size_t w0 = lo_[v]; w0 <= v_hi; ++w0) {
      uint64_t bits = nv[w0];
      while (bits != 0) {
        const uint32_t idx = static_cast<uint32_t>(std::countr_zero(bits));
        bits &= bits - 1;
        const VertexId u = static_cast<VertexId>(w0 * 64 + idx);
        const uint64_t* nu = Row(u);
        const uint64_t above =
            (idx == 63) ? 0 : (~uint64_t{0} << (idx + 1));
        fill += std::popcount(nv[w0] & ~nu[w0] & above);
        for (size_t w = w0 + 1; w <= v_hi; ++w) {
          fill += std::popcount(nv[w] & ~nu[w]);
        }
        if (fill >= cap) return cap;
      }
    }
    return fill;
  }

  void Eliminate(VertexId v) {
    TUD_CHECK(alive_[v]);
    const uint64_t* nv = Row(v);
    ForEachNeighbor(v, [&](VertexId u) {
      uint64_t* nu = Row(u);
      // Incremental degree: count only the bits the OR actually adds.
      // The OR introduces u's own bit (u is in N(v); no self-loops), and
      // u additionally loses its edge to v — hence the -2.
      uint32_t added = 0;
      for (size_t w = lo_[v]; w <= hi_[v]; ++w) {
        const uint64_t add = nv[w] & ~nu[w];
        nu[w] |= add;
        added += static_cast<uint32_t>(std::popcount(add));
      }
      ClearBit(nu, u);
      ClearBit(nu, v);
      lo_[u] = std::min(lo_[u], lo_[v]);
      hi_[u] = std::max(hi_[u], hi_[v]);
      degree_[u] += added - 2;
    });
    std::fill(Row(v) + lo_[v], Row(v) + hi_[v] + 1, 0);
    degree_[v] = 0;
    alive_[v] = false;
  }

 private:
  uint64_t* Row(VertexId v) {
    return rows_.data() + static_cast<size_t>(v) * num_words_;
  }
  const uint64_t* Row(VertexId v) const {
    return rows_.data() + static_cast<size_t>(v) * num_words_;
  }
  static void ClearBit(uint64_t* words, VertexId i) {
    words[i >> 6] &= ~(uint64_t{1} << (i & 63));
  }

  size_t num_words_;
  std::vector<uint64_t> rows_;
  std::vector<uint32_t> degree_;
  std::vector<size_t> lo_, hi_;  // Nonzero-word window per row.
  std::vector<bool> alive_;
};

/// Above this vertex count the dense rows' n^2/8 bytes stop being worth
/// it and the sparse adjacency-set representation takes over.
inline constexpr uint32_t kDenseVertexLimit = 16384;

}  // namespace tud

#endif  // TUD_TREEDEC_ELIMINATION_GRAPH_H_
