#ifndef TUD_TREEDEC_ELIMINATION_H_
#define TUD_TREEDEC_ELIMINATION_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "treedec/graph.h"

namespace tud {

/// Heuristics producing vertex elimination orders, from which tree
/// decompositions are derived (TreeDecomposition::FromEliminationOrder).
/// Both are the standard upper-bound heuristics; min-fill usually yields
/// smaller width, min-degree is faster. X10 (treedec ablation) compares
/// them against exact treewidth on small graphs.

/// Min-fill: repeatedly eliminates the vertex whose elimination adds the
/// fewest fill edges (ties broken by smaller degree, then smaller id).
std::vector<VertexId> MinFillOrder(const Graph& graph);

/// Min-degree: repeatedly eliminates a vertex of minimum current degree.
std::vector<VertexId> MinDegreeOrder(const Graph& graph);

/// Min-fill preceded by a linear-time peel of all vertices of (current)
/// degree <= 2 — the islet/twig/series reduction rules. Degree-<=1
/// vertices are peeled with priority, so forests stay width 1; the
/// series rule is width-preserving on everything else (treewidth >= 2).
std::vector<VertexId> PeeledMinFillOrder(const Graph& graph);

/// Bucket-queue min-degree: every queue operation is O(1), so the order
/// costs little more than the eliminations themselves. The fast path of
/// the junction-tree inference pipeline for circuit primal graphs (it
/// cross-checks the resulting width and falls back to min-fill when the
/// cheap order comes out wide).
std::vector<VertexId> CircuitMinDegreeOrder(const Graph& graph);

/// Width of an elimination order: the maximum, over eliminated vertices,
/// of the number of not-yet-eliminated neighbors at elimination time (in
/// the progressively filled graph). Equals the width of the derived tree
/// decomposition.
uint32_t EliminationWidth(const Graph& graph,
                          const std::vector<VertexId>& order);

/// As EliminationWidth, additionally accumulating Σ_v 2^(deg(v)+1) into
/// `*table_cost` — the total table-entry count of the decomposition the
/// order derives (each eliminated vertex's bag is its closed filled
/// neighborhood), i.e. the work of one message pass over it. This is the
/// unit of the batch planner's shared-vs-per-root cost model. Degrees at
/// or above `kEliminationCostCapBits` saturate to 2^kEliminationCostCapBits
/// per bag so pathological orders cannot overflow the double's dynamic
/// range; any such order is far past exact-inference feasibility anyway.
inline constexpr uint32_t kEliminationCostCapBits = 63;
uint32_t EliminationWidthAndCost(const Graph& graph,
                                 const std::vector<VertexId>& order,
                                 double* table_cost);

/// Exact treewidth by branch-and-bound over elimination orders with
/// memoisation on eliminated subsets. Exponential: only for graphs with
/// at most `max_vertices` (default 16) vertices; returns nullopt above.
std::optional<uint32_t> ExactTreewidth(const Graph& graph,
                                       uint32_t max_vertices = 16);

}  // namespace tud

#endif  // TUD_TREEDEC_ELIMINATION_H_
