#include "treedec/elimination.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <tuple>
#include <unordered_set>

#include "automata/state_set.h"  // Word-level bitset helpers.
#include "treedec/elimination_graph.h"
#include "util/check.h"

namespace tud {

namespace {

template <typename WorkGraph>
std::vector<VertexId> GreedyOrder(const Graph& graph, bool use_fill,
                                  bool peel) {
  // Lazy-heap greedy elimination: each heap entry snapshots a vertex's
  // (score, degree, id, version); stale entries (version mismatch) are
  // dropped on pop. Eliminating v only changes the scores of vertices in
  // its (post-elimination) two-hop neighborhood, so the heap is repaired
  // locally — near-linear on the sparse graphs the library produces,
  // versus a full rescan per elimination.
  const uint32_t n = graph.NumVertices();
  WorkGraph work(graph);
  std::vector<uint64_t> version(n, 0);

  std::vector<VertexId> order;
  order.reserve(n);

  if (peel) {
    // Peel phase: repeatedly eliminate vertices of degree <= 2. The
    // islet/twig rules (degree <= 1) are always width-safe; the series
    // rule (degree 2) is width-safe whenever treewidth >= 2, and
    // processing the degree-<=1 bucket first guarantees it is only ever
    // applied when no degree-<=1 vertex remains — so forests are peeled
    // entirely by the safe rules and keep width 1. On binarised circuit
    // graphs the peel removes the vast majority of vertices in linear
    // time, leaving the heap machinery a small core.
    std::vector<VertexId> low_stack, two_stack;
    for (VertexId v = 0; v < n; ++v) {
      if (work.Degree(v) <= 1) {
        low_stack.push_back(v);
      } else if (work.Degree(v) == 2) {
        two_stack.push_back(v);
      }
    }
    std::vector<VertexId> ring;
    while (!low_stack.empty() || !two_stack.empty()) {
      VertexId v;
      if (!low_stack.empty()) {
        v = low_stack.back();
        low_stack.pop_back();
        if (!work.alive(v) || work.Degree(v) > 1) continue;
      } else {
        v = two_stack.back();
        two_stack.pop_back();
        if (!work.alive(v) || work.Degree(v) != 2) continue;
      }
      order.push_back(v);
      ring.clear();
      work.ForEachNeighbor(v, [&](VertexId u) { ring.push_back(u); });
      work.Eliminate(v);
      for (VertexId u : ring) {
        if (!work.alive(u)) continue;
        if (work.Degree(u) <= 1) {
          low_stack.push_back(u);
        } else if (work.Degree(u) == 2) {
          two_stack.push_back(u);
        }
      }
    }
  }

  using Entry = std::tuple<size_t, uint32_t, VertexId, uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  constexpr size_t kFillCap = 256;
  auto push = [&](VertexId v) {
    size_t primary =
        use_fill ? work.FillCount(v, kFillCap) : work.Degree(v);
    uint32_t secondary = use_fill ? work.Degree(v) : 0;
    heap.emplace(primary, secondary, v, version[v]);
  };
  for (VertexId v = 0; v < n; ++v) {
    if (work.alive(v)) push(v);
  }
  constexpr uint16_t kRingMark = UINT16_MAX;
  std::vector<uint16_t> mark(n, 0);
  std::vector<VertexId> ring, affected, touched;
  while (order.size() < n) {
    TUD_CHECK(!heap.empty());
    auto [primary, secondary, v, entry_version] = heap.top();
    heap.pop();
    if (!work.alive(v) || entry_version != version[v]) continue;
    order.push_back(v);
    // Vertices whose score actually changes: v's neighbors (adjacency
    // and degree change), plus — for min-fill — outside vertices with
    // at least TWO neighbors in the ring: elimination only adds edges
    // inside the ring, and a new edge (a, b) changes the fill count of
    // exactly the common neighbors of a and b. One-ring-neighbor
    // vertices keep their scores, and their live heap entries with them.
    ring.clear();
    work.ForEachNeighbor(v, [&](VertexId u) { ring.push_back(u); });
    work.Eliminate(v);
    affected.clear();
    touched.clear();
    for (VertexId u : ring) {
      mark[u] = kRingMark;
      affected.push_back(u);
    }
    if (use_fill) {
      for (VertexId u : ring) {
        work.ForEachNeighbor(u, [&](VertexId w) {
          if (mark[w] == kRingMark || mark[w] == 2) return;
          if (mark[w] == 0) {
            touched.push_back(w);
            mark[w] = 1;
          } else {
            mark[w] = 2;
            affected.push_back(w);
          }
        });
      }
      for (VertexId w : touched) mark[w] = 0;
    }
    for (VertexId u : affected) {
      mark[u] = 0;
      if (!work.alive(u)) continue;
      ++version[u];
      push(u);
    }
  }
  return order;
}

std::vector<VertexId> GreedyOrderDispatch(const Graph& graph,
                                          bool use_fill, bool peel) {
  if (graph.NumVertices() <= kDenseVertexLimit) {
    return GreedyOrder<DenseEliminationGraph>(graph, use_fill, peel);
  }
  return GreedyOrder<SparseEliminationGraph>(graph, use_fill, peel);
}

}  // namespace

std::vector<VertexId> MinFillOrder(const Graph& graph) {
  return GreedyOrderDispatch(graph, /*use_fill=*/true, /*peel=*/false);
}

std::vector<VertexId> MinDegreeOrder(const Graph& graph) {
  return GreedyOrderDispatch(graph, /*use_fill=*/false, /*peel=*/false);
}

std::vector<VertexId> PeeledMinFillOrder(const Graph& graph) {
  return GreedyOrderDispatch(graph, /*use_fill=*/true, /*peel=*/true);
}

std::vector<VertexId> CircuitMinDegreeOrder(const Graph& graph) {
  // Min-degree with a bucket queue instead of a binary heap: degrees are
  // small integers and only change for the eliminated vertex's ring, so
  // every queue operation is O(1) (stale entries are dropped on pop by
  // re-checking the live degree). On binarised circuit primal graphs
  // this produces the same widths as min-fill at a fraction of the cost;
  // the junction-tree pipeline verifies the width and falls back to
  // min-fill when the result is wide.
  const uint32_t n = graph.NumVertices();
  std::vector<VertexId> order;
  order.reserve(n);
  auto run = [&](auto work) {
    std::vector<std::vector<VertexId>> buckets;
    auto bucket_push = [&](VertexId v, uint32_t degree) {
      if (buckets.size() <= degree) buckets.resize(degree + 1);
      buckets[degree].push_back(v);
    };
    for (VertexId v = 0; v < n; ++v) bucket_push(v, work.Degree(v));
    uint32_t d = 0;
    std::vector<VertexId> ring;
    while (order.size() < n) {
      while (d < buckets.size() && buckets[d].empty()) ++d;
      TUD_CHECK_LT(d, buckets.size());
      const VertexId v = buckets[d].back();
      buckets[d].pop_back();
      if (!work.alive(v) || work.Degree(v) != d) continue;  // Stale entry.
      order.push_back(v);
      ring.clear();
      work.ForEachNeighbor(v, [&](VertexId u) { ring.push_back(u); });
      work.Eliminate(v);
      for (VertexId u : ring) {
        const uint32_t du = work.Degree(u);
        bucket_push(u, du);
        if (du < d) d = du;
      }
    }
  };
  if (n <= kDenseVertexLimit) {
    run(DenseEliminationGraph(graph));
  } else {
    run(SparseEliminationGraph(graph));
  }
  return order;
}

uint32_t EliminationWidth(const Graph& graph,
                          const std::vector<VertexId>& order) {
  return EliminationWidthAndCost(graph, order, nullptr);
}

uint32_t EliminationWidthAndCost(const Graph& graph,
                                 const std::vector<VertexId>& order,
                                 double* table_cost) {
  TUD_CHECK_EQ(order.size(), graph.NumVertices());
  SparseEliminationGraph work(graph);
  uint32_t width = 0;
  double cost = 0;
  for (VertexId v : order) {
    const uint32_t degree = work.Degree(v);
    width = std::max(width, degree);
    // The bag of v is v plus its current (filled) neighborhood.
    const uint32_t bits = std::min(degree + 1, kEliminationCostCapBits);
    cost += static_cast<double>(uint64_t{1} << bits);
    work.Eliminate(v);
  }
  if (table_cost != nullptr) *table_cost = cost;
  return width;
}

namespace {

// Degree of v after eliminating the vertex set T (v not in T): the number
// of vertices u outside T∪{v} reachable from v by a path whose internal
// vertices all lie in T. This is the well-known characterisation of fill
// neighborhoods, independent of the order in which T was eliminated.
uint32_t ResidualDegree(const Graph& graph, VertexId v, uint64_t t_mask) {
  uint64_t visited = 1ULL << v;
  uint64_t reached_outside = 0;
  std::vector<VertexId> stack = {v};
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    for (VertexId u : graph.Neighbors(x)) {
      if ((visited >> u) & 1) continue;
      visited |= 1ULL << u;
      if ((t_mask >> u) & 1) {
        stack.push_back(u);  // Internal vertex: continue through it.
      } else {
        reached_outside |= 1ULL << u;
      }
    }
  }
  return static_cast<uint32_t>(std::popcount(reached_outside));
}

}  // namespace

std::optional<uint32_t> ExactTreewidth(const Graph& graph,
                                       uint32_t max_vertices) {
  const uint32_t n = graph.NumVertices();
  if (n > max_vertices || n > 24) return std::nullopt;
  if (n == 0) return 0;
  // DP over eliminated subsets (Bodlaender et al.): Q(S) is the minimum,
  // over orders eliminating exactly S first, of the maximum elimination
  // degree seen. Q(∅) = 0; Q(S) = min_{v∈S} max(Q(S\{v}), deg(v, S\{v})).
  const uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  std::vector<uint32_t> q(static_cast<size_t>(full) + 1,
                          std::numeric_limits<uint32_t>::max());
  q[0] = 0;
  // Iterate masks in increasing value; every subset S\{v} < S numerically.
  for (uint64_t s = 1; s <= full; ++s) {
    uint32_t best = std::numeric_limits<uint32_t>::max();
    for (VertexId v = 0; v < n; ++v) {
      if (!((s >> v) & 1)) continue;
      uint64_t rest = s & ~(1ULL << v);
      uint32_t prefix = q[rest];
      if (prefix == std::numeric_limits<uint32_t>::max()) continue;
      uint32_t deg = ResidualDegree(graph, v, rest);
      best = std::min(best, std::max(prefix, deg));
    }
    q[s] = best;
  }
  return q[full];
}

}  // namespace tud
