#include "treedec/elimination.h"

#include <algorithm>
#include <bit>
#include <limits>
#include <queue>
#include <tuple>
#include <unordered_set>

#include "util/check.h"

namespace tud {

namespace {

constexpr VertexId kNoVertex = UINT32_MAX;

// Working copy of the graph as adjacency sets that supports elimination:
// removing a vertex and connecting its remaining neighbors into a clique.
class EliminationGraph {
 public:
  explicit EliminationGraph(const Graph& graph)
      : adjacency_(graph.NumVertices()), alive_(graph.NumVertices(), true) {
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      adjacency_[v] = graph.Neighbors(v);
    }
  }

  bool alive(VertexId v) const { return alive_[v]; }
  uint32_t Degree(VertexId v) const {
    return static_cast<uint32_t>(adjacency_[v].size());
  }
  const std::unordered_set<VertexId>& Neighbors(VertexId v) const {
    return adjacency_[v];
  }

  // Number of fill edges elimination of v would create, saturated at
  // `cap`: min-fill only needs exact values when they are small, and
  // saturation keeps the cost on high-degree hub vertices bounded.
  size_t FillCount(VertexId v, size_t cap = SIZE_MAX) const {
    size_t fill = 0;
    const auto& nbrs = adjacency_[v];
    for (auto it = nbrs.begin(); it != nbrs.end(); ++it) {
      auto jt = it;
      for (++jt; jt != nbrs.end(); ++jt) {
        if (!adjacency_[*it].contains(*jt)) {
          if (++fill >= cap) return cap;
        }
      }
    }
    return fill;
  }

  // Eliminates v: clique its neighborhood, then remove it.
  void Eliminate(VertexId v) {
    TUD_CHECK(alive_[v]);
    const std::vector<VertexId> nbrs(adjacency_[v].begin(),
                                     adjacency_[v].end());
    for (size_t i = 0; i < nbrs.size(); ++i) {
      for (size_t j = i + 1; j < nbrs.size(); ++j) {
        adjacency_[nbrs[i]].insert(nbrs[j]);
        adjacency_[nbrs[j]].insert(nbrs[i]);
      }
    }
    for (VertexId u : nbrs) adjacency_[u].erase(v);
    adjacency_[v].clear();
    alive_[v] = false;
  }

 private:
  std::vector<std::unordered_set<VertexId>> adjacency_;
  std::vector<bool> alive_;
};

std::vector<VertexId> GreedyOrder(const Graph& graph, bool use_fill) {
  // Lazy-heap greedy elimination: each heap entry snapshots a vertex's
  // (score, degree, id, version); stale entries (version mismatch) are
  // dropped on pop. Eliminating v only changes the scores of vertices in
  // its (post-elimination) two-hop neighborhood, so the heap is repaired
  // locally — near-linear on the sparse graphs the library produces,
  // versus a full rescan per elimination.
  const uint32_t n = graph.NumVertices();
  EliminationGraph work(graph);
  std::vector<uint64_t> version(n, 0);

  using Entry = std::tuple<size_t, uint32_t, VertexId, uint64_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  constexpr size_t kFillCap = 256;
  auto push = [&](VertexId v) {
    size_t primary =
        use_fill ? work.FillCount(v, kFillCap) : work.Degree(v);
    uint32_t secondary = use_fill ? work.Degree(v) : 0;
    heap.emplace(primary, secondary, v, version[v]);
  };
  for (VertexId v = 0; v < n; ++v) push(v);

  std::vector<VertexId> order;
  order.reserve(n);
  while (order.size() < n) {
    TUD_CHECK(!heap.empty());
    auto [primary, secondary, v, entry_version] = heap.top();
    heap.pop();
    if (!work.alive(v) || entry_version != version[v]) continue;
    order.push_back(v);
    // Vertices whose score may change: v's neighbors (degree and fill)
    // plus, for min-fill, their neighbors (a fill edge between a, b in
    // N(v) changes the fill count of common neighbors of a and b).
    std::vector<VertexId> ring(work.Neighbors(v).begin(),
                               work.Neighbors(v).end());
    work.Eliminate(v);
    std::unordered_set<VertexId> affected(ring.begin(), ring.end());
    if (use_fill) {
      for (VertexId u : ring) {
        for (VertexId w : work.Neighbors(u)) affected.insert(w);
      }
    }
    for (VertexId u : affected) {
      if (!work.alive(u)) continue;
      ++version[u];
      push(u);
    }
  }
  return order;
}

}  // namespace

std::vector<VertexId> MinFillOrder(const Graph& graph) {
  return GreedyOrder(graph, /*use_fill=*/true);
}

std::vector<VertexId> MinDegreeOrder(const Graph& graph) {
  return GreedyOrder(graph, /*use_fill=*/false);
}

uint32_t EliminationWidth(const Graph& graph,
                          const std::vector<VertexId>& order) {
  TUD_CHECK_EQ(order.size(), graph.NumVertices());
  EliminationGraph work(graph);
  uint32_t width = 0;
  for (VertexId v : order) {
    width = std::max(width, work.Degree(v));
    work.Eliminate(v);
  }
  return width;
}

namespace {

// Degree of v after eliminating the vertex set T (v not in T): the number
// of vertices u outside T∪{v} reachable from v by a path whose internal
// vertices all lie in T. This is the well-known characterisation of fill
// neighborhoods, independent of the order in which T was eliminated.
uint32_t ResidualDegree(const Graph& graph, VertexId v, uint64_t t_mask) {
  uint64_t visited = 1ULL << v;
  uint64_t reached_outside = 0;
  std::vector<VertexId> stack = {v};
  while (!stack.empty()) {
    VertexId x = stack.back();
    stack.pop_back();
    for (VertexId u : graph.Neighbors(x)) {
      if ((visited >> u) & 1) continue;
      visited |= 1ULL << u;
      if ((t_mask >> u) & 1) {
        stack.push_back(u);  // Internal vertex: continue through it.
      } else {
        reached_outside |= 1ULL << u;
      }
    }
  }
  return static_cast<uint32_t>(std::popcount(reached_outside));
}

}  // namespace

std::optional<uint32_t> ExactTreewidth(const Graph& graph,
                                       uint32_t max_vertices) {
  const uint32_t n = graph.NumVertices();
  if (n > max_vertices || n > 24) return std::nullopt;
  if (n == 0) return 0;
  // DP over eliminated subsets (Bodlaender et al.): Q(S) is the minimum,
  // over orders eliminating exactly S first, of the maximum elimination
  // degree seen. Q(∅) = 0; Q(S) = min_{v∈S} max(Q(S\{v}), deg(v, S\{v})).
  const uint64_t full = (n == 64) ? ~0ULL : ((1ULL << n) - 1);
  std::vector<uint32_t> q(static_cast<size_t>(full) + 1,
                          std::numeric_limits<uint32_t>::max());
  q[0] = 0;
  // Iterate masks in increasing value; every subset S\{v} < S numerically.
  for (uint64_t s = 1; s <= full; ++s) {
    uint32_t best = std::numeric_limits<uint32_t>::max();
    for (VertexId v = 0; v < n; ++v) {
      if (!((s >> v) & 1)) continue;
      uint64_t rest = s & ~(1ULL << v);
      uint32_t prefix = q[rest];
      if (prefix == std::numeric_limits<uint32_t>::max()) continue;
      uint32_t deg = ResidualDegree(graph, v, rest);
      best = std::min(best, std::max(prefix, deg));
    }
    q[s] = best;
  }
  return q[full];
}

}  // namespace tud
