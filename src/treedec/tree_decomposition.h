#ifndef TUD_TREEDEC_TREE_DECOMPOSITION_H_
#define TUD_TREEDEC_TREE_DECOMPOSITION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "treedec/graph.h"

namespace tud {

/// Index of a bag (node) within a TreeDecomposition.
using BagId = uint32_t;

inline constexpr BagId kInvalidBag = UINT32_MAX;

/// A rooted tree decomposition of a graph: a tree of bags (vertex sets)
/// such that every vertex appears in some bag, every edge is covered by
/// some bag, and the bags containing any fixed vertex form a connected
/// subtree (Robertson-Seymour [42]). Width = max bag size - 1.
class TreeDecomposition {
 public:
  /// Builds the decomposition induced by an elimination order: bag of v =
  /// {v} ∪ (neighbors of v eliminated later, in the fill graph); the bag
  /// of v is attached to the bag of its earliest-eliminated later
  /// neighbor. Produces one bag per vertex plus one empty root bag so the
  /// result is always a tree (even for disconnected graphs).
  static TreeDecomposition FromEliminationOrder(
      const Graph& graph, const std::vector<VertexId>& order);

  /// As above, and also reports, for each vertex v, the bag created when
  /// v was eliminated. That bag contains v and all its later-eliminated
  /// fill-graph neighbors, so for any clique S of `graph`, the bag of the
  /// earliest-eliminated vertex of S contains all of S — which is how
  /// factors are assigned to bags in junction-tree inference.
  static TreeDecomposition FromEliminationOrder(
      const Graph& graph, const std::vector<VertexId>& order,
      std::vector<BagId>* bag_of_vertex);

  /// The trivial decomposition: a single bag containing every vertex.
  static TreeDecomposition Trivial(const Graph& graph);

  size_t NumBags() const { return bags_.size(); }
  BagId root() const { return root_; }
  BagId parent(BagId b) const { return parents_[b]; }
  const std::vector<BagId>& children(BagId b) const { return children_[b]; }

  /// Sorted vertex set of the bag.
  const std::vector<VertexId>& bag(BagId b) const { return bags_[b]; }

  /// Max bag size - 1 (the width of the decomposition); -1 if no bags.
  int Width() const;

  /// Verifies the three tree-decomposition conditions against `graph`.
  bool IsValidFor(const Graph& graph) const;

  /// Returns some bag containing all of `vertices`, or kInvalidBag.
  BagId FindBagContaining(const std::vector<VertexId>& vertices) const;

  /// Bags in a topological order with parents before children.
  std::vector<BagId> TopDownOrder() const;

  std::string ToString() const;

  /// Low-level construction for tests and adapters: adds a bag with the
  /// given sorted-deduplicated contents under `parent` (kInvalidBag for
  /// the root; exactly one root allowed).
  BagId AddBag(std::vector<VertexId> vertices, BagId parent);

  TreeDecomposition() = default;

 private:
  std::vector<std::vector<VertexId>> bags_;
  std::vector<BagId> parents_;
  std::vector<std::vector<BagId>> children_;
  BagId root_ = kInvalidBag;
};

}  // namespace tud

#endif  // TUD_TREEDEC_TREE_DECOMPOSITION_H_
