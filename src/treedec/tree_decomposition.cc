#include "treedec/tree_decomposition.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace tud {

namespace {
constexpr VertexId kNoVertex = UINT32_MAX;
}  // namespace

BagId TreeDecomposition::AddBag(std::vector<VertexId> vertices, BagId parent) {
  TUD_CHECK(std::is_sorted(vertices.begin(), vertices.end()));
  TUD_CHECK(std::adjacent_find(vertices.begin(), vertices.end()) ==
            vertices.end());
  BagId id = static_cast<BagId>(bags_.size());
  bags_.push_back(std::move(vertices));
  parents_.push_back(parent);
  children_.emplace_back();
  if (parent == kInvalidBag) {
    TUD_CHECK_EQ(root_, kInvalidBag) << "tree decomposition has two roots";
    root_ = id;
  } else {
    TUD_CHECK_LT(parent, id);
    children_[parent].push_back(id);
  }
  return id;
}

TreeDecomposition TreeDecomposition::FromEliminationOrder(
    const Graph& graph, const std::vector<VertexId>& order) {
  return FromEliminationOrder(graph, order, nullptr);
}

TreeDecomposition TreeDecomposition::FromEliminationOrder(
    const Graph& graph, const std::vector<VertexId>& order,
    std::vector<BagId>* bag_of_vertex) {
  const uint32_t n = graph.NumVertices();
  TUD_CHECK_EQ(order.size(), n);

  // Compute each vertex's bag — itself plus its later-eliminated
  // neighbors in the fill graph — by symbolic factorisation (the sparse
  // Cholesky structure recurrence): the higher fill-neighborhood of v is
  // its higher original neighborhood united with bag(c) \ {c} for every
  // elimination-tree child c of v. Near-linear in the total bag size,
  // instead of simulating elimination with mutable adjacency sets.
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;

  std::vector<std::vector<VertexId>> bag_contents(n);
  std::vector<std::vector<VertexId>> etree_children(n);
  std::vector<bool> in_bag(n, false);
  for (uint32_t i = 0; i < n; ++i) {
    const VertexId v = order[i];
    std::vector<VertexId> bag = {v};
    in_bag[v] = true;
    auto add = [&](VertexId u) {
      if (!in_bag[u]) {
        in_bag[u] = true;
        bag.push_back(u);
      }
    };
    for (VertexId u : graph.Neighbors(v)) {
      if (position[u] > i) add(u);
    }
    for (VertexId c : etree_children[v]) {
      for (VertexId u : bag_contents[c]) {
        if (u != c) add(u);
      }
    }
    for (VertexId u : bag) in_bag[u] = false;
    std::sort(bag.begin(), bag.end());
    // Elimination-tree parent: earliest-eliminated later neighbor.
    VertexId parent = kNoVertex;
    uint32_t best_pos = UINT32_MAX;
    for (VertexId u : bag) {
      if (u != v && position[u] < best_pos) {
        best_pos = position[u];
        parent = u;
      }
    }
    if (parent != kNoVertex) etree_children[parent].push_back(v);
    bag_contents[v] = std::move(bag);
  }

  // Attach the bag of v under the bag of its earliest-eliminated later
  // neighbor; vertices with no later neighbor hang off an empty root.
  // Bags must be created parents-first, i.e., in reverse elimination
  // order (later-eliminated vertices are closer to the root).
  TreeDecomposition td;
  BagId root = td.AddBag({}, kInvalidBag);
  std::vector<BagId> bag_of(n, kInvalidBag);
  for (uint32_t i = n; i-- > 0;) {
    VertexId v = order[i];
    VertexId attach = kInvalidBag;
    uint32_t best_pos = UINT32_MAX;
    for (VertexId u : bag_contents[v]) {
      if (u == v) continue;
      TUD_CHECK_GT(position[u], position[v]);
      if (position[u] < best_pos) {
        best_pos = position[u];
        attach = u;
      }
    }
    BagId parent = attach == kInvalidBag ? root : bag_of[attach];
    TUD_CHECK_NE(parent, kInvalidBag);
    bag_of[v] = td.AddBag(std::move(bag_contents[v]), parent);
  }
  if (bag_of_vertex != nullptr) *bag_of_vertex = bag_of;
  return td;
}

TreeDecomposition TreeDecomposition::Trivial(const Graph& graph) {
  TreeDecomposition td;
  std::vector<VertexId> all(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) all[v] = v;
  td.AddBag(std::move(all), kInvalidBag);
  return td;
}

int TreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags_) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

bool TreeDecomposition::IsValidFor(const Graph& graph) const {
  if (bags_.empty() || root_ == kInvalidBag) return false;
  const uint32_t n = graph.NumVertices();

  // Condition 1: every vertex occurs in some bag.
  std::vector<bool> seen(n, false);
  for (const auto& bag : bags_) {
    for (VertexId v : bag) {
      if (v >= n) return false;
      seen[v] = true;
    }
  }
  for (VertexId v = 0; v < n; ++v) {
    if (!seen[v]) return false;
  }

  // Condition 2: every edge is covered by some bag.
  for (VertexId v = 0; v < n; ++v) {
    for (VertexId u : graph.Neighbors(v)) {
      if (u < v) continue;
      bool covered = false;
      for (const auto& bag : bags_) {
        if (std::binary_search(bag.begin(), bag.end(), v) &&
            std::binary_search(bag.begin(), bag.end(), u)) {
          covered = true;
          break;
        }
      }
      if (!covered) return false;
    }
  }

  // Condition 3: bags containing any vertex form a connected subtree.
  // Walking bags top-down, a vertex's occurrence set is connected iff
  // whenever a bag contains v but its parent does not, it is the unique
  // "topmost" occurrence of v.
  std::vector<int> top_count(n, 0);
  for (BagId b = 0; b < bags_.size(); ++b) {
    for (VertexId v : bags_[b]) {
      bool parent_has =
          parents_[b] != kInvalidBag &&
          std::binary_search(bags_[parents_[b]].begin(),
                             bags_[parents_[b]].end(), v);
      if (!parent_has) {
        if (++top_count[v] > 1) return false;
      }
    }
  }
  return true;
}

BagId TreeDecomposition::FindBagContaining(
    const std::vector<VertexId>& vertices) const {
  for (BagId b = 0; b < bags_.size(); ++b) {
    bool all = true;
    for (VertexId v : vertices) {
      if (!std::binary_search(bags_[b].begin(), bags_[b].end(), v)) {
        all = false;
        break;
      }
    }
    if (all) return b;
  }
  return kInvalidBag;
}

std::vector<BagId> TreeDecomposition::TopDownOrder() const {
  // Bags are created parents-first, so identity order works; keep the
  // explicit contract by checking.
  std::vector<BagId> order(bags_.size());
  for (BagId b = 0; b < bags_.size(); ++b) {
    TUD_CHECK(parents_[b] == kInvalidBag || parents_[b] < b);
    order[b] = b;
  }
  return order;
}

std::string TreeDecomposition::ToString() const {
  std::string out;
  for (BagId b = 0; b < bags_.size(); ++b) {
    out += "bag " + std::to_string(b) + " (parent ";
    out += parents_[b] == kInvalidBag ? "-" : std::to_string(parents_[b]);
    out += "): {";
    for (size_t i = 0; i < bags_[b].size(); ++i) {
      if (i > 0) out += ", ";
      out += std::to_string(bags_[b][i]);
    }
    out += "}\n";
  }
  return out;
}

}  // namespace tud
