#include "treedec/graph.h"

#include "util/check.h"

namespace tud {

Graph Graph::FromEdges(
    uint32_t num_vertices,
    const std::vector<std::pair<VertexId, VertexId>>& edges) {
  Graph g(num_vertices);
  for (const auto& [a, b] : edges) g.AddEdge(a, b);
  return g;
}

void Graph::AddEdge(VertexId a, VertexId b) {
  TUD_CHECK_LT(a, NumVertices());
  TUD_CHECK_LT(b, NumVertices());
  if (a == b) return;
  if (adjacency_[a].insert(b).second) {
    adjacency_[b].insert(a);
    ++num_edges_;
  }
}

bool Graph::HasEdge(VertexId a, VertexId b) const {
  TUD_CHECK_LT(a, NumVertices());
  TUD_CHECK_LT(b, NumVertices());
  return adjacency_[a].contains(b);
}

const std::unordered_set<VertexId>& Graph::Neighbors(VertexId v) const {
  TUD_CHECK_LT(v, NumVertices());
  return adjacency_[v];
}

}  // namespace tud
