#include "treedec/nice_decomposition.h"

#include <algorithm>

#include "util/check.h"

namespace tud {

NiceNodeId NiceTreeDecomposition::AddNode(NiceNodeKind kind, VertexId vertex,
                                          std::vector<VertexId> bag,
                                          std::vector<NiceNodeId> children) {
  TUD_CHECK(std::is_sorted(bag.begin(), bag.end()));
  for (NiceNodeId c : children) TUD_CHECK_LT(c, NumNodes());
  NiceNodeId id = static_cast<NiceNodeId>(kinds_.size());
  kinds_.push_back(kind);
  vertices_.push_back(vertex);
  bags_.push_back(std::move(bag));
  children_.push_back(std::move(children));
  return id;
}

NiceTreeDecomposition NiceTreeDecomposition::FromParts(
    std::vector<NiceNodeKind> kinds, std::vector<VertexId> vertices,
    std::vector<std::vector<VertexId>> bags,
    std::vector<std::vector<NiceNodeId>> children) {
  TUD_CHECK_EQ(kinds.size(), vertices.size());
  TUD_CHECK_EQ(kinds.size(), bags.size());
  TUD_CHECK_EQ(kinds.size(), children.size());
  NiceTreeDecomposition ntd;
  ntd.kinds_ = std::move(kinds);
  ntd.vertices_ = std::move(vertices);
  ntd.bags_ = std::move(bags);
  ntd.children_ = std::move(children);
  return ntd;
}

NiceNodeId NiceTreeDecomposition::MorphTo(NiceNodeId from,
                                          std::vector<VertexId> from_bag,
                                          const std::vector<VertexId>& to_bag) {
  // Forget the vertices not in to_bag, then introduce the missing ones.
  NiceNodeId current = from;
  std::vector<VertexId> bag = std::move(from_bag);
  for (VertexId v : std::vector<VertexId>(bag.begin(), bag.end())) {
    if (std::binary_search(to_bag.begin(), to_bag.end(), v)) continue;
    bag.erase(std::find(bag.begin(), bag.end(), v));
    current = AddNode(NiceNodeKind::kForget, v, bag, {current});
  }
  for (VertexId v : to_bag) {
    if (std::binary_search(bag.begin(), bag.end(), v)) continue;
    bag.insert(std::upper_bound(bag.begin(), bag.end(), v), v);
    current = AddNode(NiceNodeKind::kIntroduce, v, bag, {current});
  }
  TUD_CHECK(bag == to_bag);
  return current;
}

NiceTreeDecomposition NiceTreeDecomposition::FromTreeDecomposition(
    const TreeDecomposition& td, std::vector<NiceNodeId>* top_of_bag) {
  TUD_CHECK_GT(td.NumBags(), 0u);
  NiceTreeDecomposition nice;

  // Post-order construction: Build(b) returns a nice node whose bag is
  // exactly td.bag(b). Iterative to avoid stack depth issues on long
  // paths. Process bags in reverse creation order (children have larger
  // ids than parents in TreeDecomposition, so reverse id order is
  // children-first).
  std::vector<NiceNodeId> built(td.NumBags(), kInvalidNiceNode);
  for (BagId b = static_cast<BagId>(td.NumBags()); b-- > 0;) {
    const std::vector<VertexId>& target = td.bag(b);
    const std::vector<BagId>& kids = td.children(b);
    if (kids.empty()) {
      // Chain of introduces from an empty leaf.
      NiceNodeId leaf = nice.AddNode(NiceNodeKind::kLeaf, UINT32_MAX, {}, {});
      built[b] = nice.MorphTo(leaf, {}, target);
      continue;
    }
    // Morph each child's top node to bag `target`, then join pairwise.
    std::vector<NiceNodeId> tops;
    tops.reserve(kids.size());
    for (BagId c : kids) {
      TUD_CHECK_NE(built[c], kInvalidNiceNode);
      tops.push_back(nice.MorphTo(built[c], td.bag(c), target));
    }
    while (tops.size() > 1) {
      std::vector<NiceNodeId> next;
      for (size_t i = 0; i + 1 < tops.size(); i += 2) {
        next.push_back(nice.AddNode(NiceNodeKind::kJoin, UINT32_MAX, target,
                                    {tops[i], tops[i + 1]}));
      }
      if (tops.size() % 2 == 1) next.push_back(tops.back());
      tops = std::move(next);
    }
    built[b] = tops[0];
  }

  // Ensure the overall root has an empty bag.
  NiceNodeId top = built[td.root()];
  nice.MorphTo(top, td.bag(td.root()), {});
  TUD_CHECK(nice.bags_[nice.root()].empty());
  if (top_of_bag != nullptr) *top_of_bag = built;
  return nice;
}

VertexId NiceTreeDecomposition::vertex(NiceNodeId n) const {
  TUD_CHECK(kinds_[n] == NiceNodeKind::kIntroduce ||
            kinds_[n] == NiceNodeKind::kForget);
  return vertices_[n];
}

int NiceTreeDecomposition::Width() const {
  int width = -1;
  for (const auto& bag : bags_) {
    width = std::max(width, static_cast<int>(bag.size()) - 1);
  }
  return width;
}

NiceNodeId NiceTreeDecomposition::FindNodeCovering(
    const std::vector<VertexId>& vertices) const {
  for (NiceNodeId n = 0; n < NumNodes(); ++n) {
    bool all = true;
    for (VertexId v : vertices) {
      if (!std::binary_search(bags_[n].begin(), bags_[n].end(), v)) {
        all = false;
        break;
      }
    }
    if (all) return n;
  }
  return kInvalidNiceNode;
}

bool NiceTreeDecomposition::IsWellFormed() const {
  if (kinds_.empty()) return false;
  if (!bags_[root()].empty()) return false;
  for (NiceNodeId n = 0; n < NumNodes(); ++n) {
    const auto& kids = children_[n];
    switch (kinds_[n]) {
      case NiceNodeKind::kLeaf:
        if (!kids.empty() || !bags_[n].empty()) return false;
        break;
      case NiceNodeKind::kIntroduce: {
        if (kids.size() != 1) return false;
        std::vector<VertexId> expected = bags_[kids[0]];
        expected.insert(
            std::upper_bound(expected.begin(), expected.end(), vertices_[n]),
            vertices_[n]);
        if (expected != bags_[n]) return false;
        if (std::binary_search(bags_[kids[0]].begin(), bags_[kids[0]].end(),
                               vertices_[n])) {
          return false;
        }
        break;
      }
      case NiceNodeKind::kForget: {
        if (kids.size() != 1) return false;
        std::vector<VertexId> expected = bags_[n];
        expected.insert(
            std::upper_bound(expected.begin(), expected.end(), vertices_[n]),
            vertices_[n]);
        if (expected != bags_[kids[0]]) return false;
        break;
      }
      case NiceNodeKind::kJoin:
        if (kids.size() != 2) return false;
        if (bags_[kids[0]] != bags_[n] || bags_[kids[1]] != bags_[n]) {
          return false;
        }
        break;
    }
  }
  return true;
}

std::string NiceTreeDecomposition::ToString() const {
  std::string out;
  for (NiceNodeId n = 0; n < NumNodes(); ++n) {
    out += "node " + std::to_string(n) + ": ";
    switch (kinds_[n]) {
      case NiceNodeKind::kLeaf:
        out += "leaf";
        break;
      case NiceNodeKind::kIntroduce:
        out += "introduce " + std::to_string(vertices_[n]);
        break;
      case NiceNodeKind::kForget:
        out += "forget " + std::to_string(vertices_[n]);
        break;
      case NiceNodeKind::kJoin:
        out += "join";
        break;
    }
    out += " bag={";
    for (size_t i = 0; i < bags_[n].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(bags_[n][i]);
    }
    out += "} children=[";
    for (size_t i = 0; i < children_[n].size(); ++i) {
      if (i > 0) out += ",";
      out += std::to_string(children_[n][i]);
    }
    out += "]\n";
  }
  return out;
}

}  // namespace tud
