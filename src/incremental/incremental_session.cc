#include "incremental/incremental_session.h"

#include <algorithm>
#include <utility>

#include "queries/lineage.h"
#include "queries/reachability.h"
#include "util/check.h"

namespace tud {
namespace incremental {

IncrementalSession::IncrementalSession(QuerySession& session,
                                       const IncrementalOptions& options)
    : session_(session),
      options_(options),
      plan_cache_(options.seed_topological) {}

QueryId IncrementalSession::RegisterCq(const ConjunctiveQuery& query) {
  RegisteredQuery q;
  q.kind = RegisteredQuery::Kind::kCq;
  q.cq = query;
  q.root = session_.CqLineage(query);
  q.cursor = session_.dirty_log().generation();
  queries_.push_back(std::move(q));
  return queries_.size() - 1;
}

QueryId IncrementalSession::RegisterReachability(RelationId edge_relation,
                                                 Value source, Value target) {
  RegisteredQuery q;
  q.kind = RegisteredQuery::Kind::kReachability;
  q.relation = edge_relation;
  q.source = source;
  q.target = target;
  q.root = session_.ReachabilityLineage(edge_relation, source, target);
  q.cursor = session_.dirty_log().generation();
  queries_.push_back(std::move(q));
  return queries_.size() - 1;
}

GateId IncrementalSession::ComputeRoot(const RegisteredQuery& q) {
  switch (q.kind) {
    case RegisteredQuery::Kind::kCq:
      return session_.CqLineage(q.cq);
    case RegisteredQuery::Kind::kReachability:
      return session_.ReachabilityLineage(q.relation, q.source, q.target);
  }
  TUD_CHECK(false) << "unreachable query kind";
  return kInvalidGate;
}

bool IncrementalSession::UpdateProbability(EventId event, double probability) {
  if (!session_.UpdateProbability(event, probability)) return false;
  ++stats_.probability_updates;
  return true;
}

InsertedFact IncrementalSession::InsertFact(RelationId relation,
                                            std::vector<Value> args,
                                            double probability) {
  PccInstance& pcc = session_.pcc();
  InsertedFact out;
  out.event = pcc.events().RegisterAnonymous(probability);
  out.annotation = pcc.circuit().AddVar(out.event);
  const std::vector<Value> args_kept = args;
  out.fact = pcc.AddFact(relation, std::move(args), out.annotation);
  ++stats_.inserts;
  ApplyStructuralUpdate(out.fact, args_kept);
  return out;
}

void IncrementalSession::DeleteFact(FactId fact) {
  PccInstance& pcc = session_.pcc();
  const GateId annotation = pcc.annotation(fact);
  TUD_CHECK(pcc.circuit().kind(annotation) == GateKind::kVar)
      << "DeleteFact requires a fact annotated by a plain event variable";
  const EventId event = pcc.circuit().var(annotation);
  // Probability 0 for an independent event is mathematically identical
  // to pinning it false, but keeps re-evaluation on the hot delta path
  // (an evidence change would force a full pass on every plan).
  session_.UpdateProbability(event, 0.0);
  patch_.Tombstone(event);
  ++stats_.deletes;
  stats_.tombstoned_facts = patch_.num_tombstones();
}

void IncrementalSession::ApplyStructuralUpdate(FactId fact,
                                               const std::vector<Value>& args) {
  // 1. Decomposition repair. Nothing to repair before the first
  // Decomposition() call — it will see the new fact when it runs.
  if (session_.has_decomposition()) {
    DecomposedInstance dec = session_.Decomposition();
    const size_t old_domain = dec.elimination_order.size();
    const Instance& instance = session_.pcc().instance();
    // The slack bound anchors at the last width an order *search*
    // produced, not at the previous repair's width: judging each repair
    // against its predecessor would let the width ratchet upward by one
    // slack per insert.
    if (searched_width_ < 0) searched_width_ = dec.width;

    // Covered path: every element of the fact already co-occurs in one
    // existing bag (the fact's Gaifman clique is covered), so the
    // decomposition is already a decomposition of the grown graph —
    // just attach the fact to the covering node.
    bool in_domain = true;
    for (Value v : args) in_domain = in_domain && v < old_domain;
    NiceNodeId covering = kInvalidNiceNode;
    if (in_domain) {
      covering = args.empty() ? dec.ntd.root()
                              : dec.ntd.FindNodeCovering(args);
    }
    if (covering != kInvalidNiceNode) {
      dec.facts_at_node[covering].push_back(fact);
      ++stats_.decomposition_repairs;
      session_.ReplaceDecomposition(std::move(dec));
    } else {
      // Order-patch path: prepend the affected vertices to the stored
      // elimination order (eliminated first, before anything they are
      // now attached to) and re-derive the decomposition mechanically —
      // FromEliminationOrder plus fact assignment, no order *search*,
      // which is where DecomposeInstance spends its time.
      std::vector<VertexId> order;
      order.reserve(instance.DomainSize());
      for (size_t v = old_domain; v < instance.DomainSize(); ++v) {
        order.push_back(static_cast<VertexId>(v));
      }
      if (order.empty()) {
        // All-old uncovered clique: the args themselves move to the
        // front, so early elimination localises the fact into one
        // fresh bag. When the fact brought new vertices this is
        // unnecessary — eliminating a new vertex first already yields
        // a bag of it plus its neighbours, i.e. the fact's old args —
        // and moving old vertices would only add fill around them.
        for (Value v : args) order.push_back(v);
      }
      std::sort(order.begin(), order.end());
      order.erase(std::unique(order.begin(), order.end()), order.end());
      std::vector<uint8_t> moved(instance.DomainSize(), 0);
      for (VertexId v : order) moved[v] = 1;
      for (VertexId v : dec.elimination_order) {
        if (!moved[v]) order.push_back(v);
      }
      DecomposedInstance repaired =
          DecomposeInstanceWithOrder(instance, std::move(order));
      if (repaired.width <= searched_width_ + options_.repair_width_slack) {
        ++stats_.decomposition_repairs;
        session_.ReplaceDecomposition(std::move(repaired));
      } else {
        // Repaired width degraded past the bound: pay for the full
        // order search after all.
        ++stats_.decomposition_rebuilds;
        DecomposedInstance searched = DecomposeInstance(instance);
        searched_width_ = searched.width;
        session_.ReplaceDecomposition(std::move(searched));
      }
    }
  }

  // 2. Lineage maintenance: rerun the DP for every registered query
  // over the repaired decomposition. Structural hashing makes this
  // append-only — unchanged sub-derivations hash-cons to their existing
  // gates, so the batch appends only delta gates, and a query whose
  // root comes back unchanged keeps its compiled plan and delta state.
  patch_.BeginBatch(session_.pcc().circuit());
  for (size_t qi = 0; qi < queries_.size(); ++qi) {
    RegisteredQuery& q = queries_[qi];
    const GateId fresh = ComputeRoot(q);
    if (fresh == q.root) continue;
    const GateId stale = q.root;
    q.root = fresh;
    q.delta.Reset();
    ++stats_.lineage_recomputes;
    bool shared = false;
    for (size_t qj = 0; qj < queries_.size() && !shared; ++qj) {
      shared = qj != qi && queries_[qj].root == stale;
    }
    if (!shared && stale != kInvalidGate) {
      // The stale plan is not *wrong* (gates are immutable), but no
      // registered query serves it any more; drop it so the cache does
      // not pin dead plans across a long update stream.
      plan_cache_.Invalidate(stale);
      ++stats_.plans_invalidated;
    }
  }
  stats_.patched_gates += patch_.SealBatch(session_.pcc().circuit());
}

EngineResult IncrementalSession::Probability(QueryId query,
                                             const Evidence& evidence) {
  RegisteredQuery& q = queries_[query];
  DirtyLog& log = session_.dirty_log();
  dirty_scratch_.clear();
  if (!log.CollectSince(q.cursor, &dirty_scratch_)) {
    // The marks this query missed were compacted away: one full pass.
    dirty_scratch_.clear();
    q.delta.Reset();
  }
  q.cursor = log.generation();

  const JunctionTreePlan* plan =
      plan_cache_.GetOrBuild(session_.pcc().circuit(), q.root);
  const uint64_t full_before = q.delta.full_passes;
  EngineResult result;
  result.value =
      plan->ExecuteDelta(session_.pcc().events(), evidence, dirty_scratch_,
                         q.delta, &result.stats, options_.delta_full_fraction);
  result.engine = "incremental_jt";
  if (q.delta.full_passes != full_before) {
    ++stats_.full_executes;
  } else {
    ++stats_.delta_executes;
    stats_.bags_recomputed += result.stats.bags_visited;
  }
  CompactDirtyLog();
  return result;
}

EngineResult IncrementalSession::Probability(QueryId query,
                                             const Evidence& evidence,
                                             const QueryBudget& budget) {
  if (budget.unlimited()) return Probability(query, evidence);
  if (query >= queries_.size()) {
    return MakeStatusResult("incremental_jt", EngineStatus::kInvalidArgument);
  }
  RegisteredQuery& q = queries_[query];
  DirtyLog& log = session_.dirty_log();
  dirty_scratch_.clear();
  if (!log.CollectSince(q.cursor, &dirty_scratch_)) {
    dirty_scratch_.clear();
    q.delta.Reset();
  }
  q.cursor = log.generation();

  const JunctionTreePlan* plan =
      plan_cache_.GetOrBuild(session_.pcc().circuit(), q.root, &budget);
  EngineResult result;
  result.engine = "incremental_jt";
  if (plan->build_status() != EngineStatus::kOk) {
    result.status = plan->build_status();
    result.error_bound = 1.0;
    CompactDirtyLog();
    return result;
  }
  const uint64_t full_before = q.delta.full_passes;
  result.status = plan->ExecuteDeltaGoverned(
      session_.pcc().events(), evidence, dirty_scratch_, q.delta, budget,
      &result.value, &result.stats, options_.delta_full_fraction);
  if (result.status != EngineStatus::kOk) {
    // ExecuteDeltaGoverned poisoned the delta state (partial
    // repropagation is never persisted); the cursor already advanced,
    // so the next call pays one clean full pass.
    result.error_bound = 1.0;
  } else if (q.delta.full_passes != full_before) {
    ++stats_.full_executes;
  } else {
    ++stats_.delta_executes;
    stats_.bags_recomputed += result.stats.bags_visited;
  }
  CompactDirtyLog();
  return result;
}

void IncrementalSession::CompactDirtyLog() {
  DirtyLog::Generation floor = session_.dirty_log().generation();
  for (const RegisteredQuery& q : queries_) {
    floor = std::min(floor, q.cursor);
  }
  session_.dirty_log().CompactBelow(floor);
}

uint64_t IncrementalSession::PublishSnapshot(EpochManager& manager) {
  PccInstance& pcc = session_.pcc();
  SessionSnapshot snap;
  auto circuit = std::make_shared<const BoolCircuit>(pcc.circuit());
  auto registry = std::make_shared<const EventRegistry>(pcc.events());
  auto plans = std::make_shared<ConcurrentPlanCache>(options_.seed_topological);
  snap.query_roots.reserve(queries_.size());
  for (const RegisteredQuery& q : queries_) {
    // Prewarm against the snapshot's own circuit copy: epoch readers
    // never pay a cold Build, and the per-epoch cache is pinned to the
    // object it will be read against.
    plans->GetOrBuild(*circuit, q.root);
    snap.query_roots.push_back(q.root);
  }
  snap.circuit = std::move(circuit);
  snap.registry = std::move(registry);
  snap.plans = std::move(plans);
  snap.tombstones = patch_.tombstones();
  ++stats_.epochs_published;
  return manager.Publish(std::move(snap));
}

}  // namespace incremental
}  // namespace tud
