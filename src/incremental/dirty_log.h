#ifndef TUD_INCREMENTAL_DIRTY_LOG_H_
#define TUD_INCREMENTAL_DIRTY_LOG_H_

#include <cstdint>
#include <vector>

#include "events/event_registry.h"

namespace tud {
namespace incremental {

/// The session-side record of probability updates: an append-only log of
/// dirtied EventIds, addressed by *generation* (the log length since the
/// session opened). Each consumer — one PlanDeltaState per registered
/// query — remembers the generation it last caught up to and asks for
/// everything marked since; the log never needs per-consumer bookkeeping
/// and stays a plain vector push per update.
///
/// Compaction drops the prefix every consumer has already seen. A
/// consumer whose cursor fell below the compacted base (a query that
/// went unqueried across a compaction) simply takes one full pass:
/// CollectSince reports the miss and the caller invalidates its delta
/// state instead of enumerating dirty events it can no longer name.
///
/// Single-writer, like all of the incremental layer: updates and
/// queries through the incremental session are one logical thread
/// (concurrent readers see published epochs, never the live log).
class DirtyLog {
 public:
  using Generation = uint64_t;

  /// Records one probability update of `event`.
  void Mark(EventId event) { log_.push_back(event); }

  /// The current generation: a cursor taken now sees no event of any
  /// earlier Mark as "new".
  Generation generation() const { return base_ + log_.size(); }

  /// Appends every event marked after generation `since` to `out`
  /// (duplicates preserved; callers dedupe via bitmap, as ExecuteDelta
  /// does). Returns false when `since` predates the compacted base —
  /// the marks are gone and the caller must fall back to a full pass.
  bool CollectSince(Generation since, std::vector<EventId>* out) const {
    if (since < base_) return false;
    for (size_t i = static_cast<size_t>(since - base_); i < log_.size(); ++i) {
      out->push_back(log_[i]);
    }
    return true;
  }

  /// Drops every entry below generation `floor` (the minimum cursor
  /// across live consumers). Generations are stable across compactions.
  void CompactBelow(Generation floor) {
    if (floor <= base_) return;
    const size_t drop = static_cast<size_t>(
        floor - base_ < log_.size() ? floor - base_ : log_.size());
    log_.erase(log_.begin(), log_.begin() + drop);
    base_ += drop;
  }

  /// Entries currently retained (diagnostics; shrinks on compaction).
  size_t retained() const { return log_.size(); }

 private:
  Generation base_ = 0;
  std::vector<EventId> log_;
};

}  // namespace incremental
}  // namespace tud

#endif  // TUD_INCREMENTAL_DIRTY_LOG_H_
