#ifndef TUD_INCREMENTAL_INCREMENTAL_SESSION_H_
#define TUD_INCREMENTAL_INCREMENTAL_SESSION_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "circuits/circuit_patch.h"
#include "incremental/dirty_log.h"
#include "incremental/epoch.h"
#include "inference/engine.h"
#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/query_session.h"

namespace tud {
namespace incremental {

struct IncrementalOptions {
  /// ExecuteDelta falls back to a full pass when more than this
  /// fraction of a plan's bags is dirty.
  double delta_full_fraction = 0.5;
  /// A repaired decomposition (patched elimination order, no order
  /// search) is accepted while its width stays within this many units
  /// of the last *search-derived* width — the width of the most recent
  /// full DecomposeInstance, not of the previous repair, so repeated
  /// repairs cannot ratchet the width upward one slack at a time.
  /// Beyond the bound the order is re-searched from scratch. Negative
  /// values force the rebuild path (test hook).
  int repair_width_slack = 2;
  /// Seed plan decompositions from circuit construction order (see
  /// JunctionTreePlan::Build).
  bool seed_topological = false;
};

/// Maintenance counters: which path each update and query actually
/// took. Tests pin the contract through these (e.g. "a single covered
/// insert repairs, never rebuilds"); benches report them alongside
/// timings.
struct IncrementalStats {
  uint64_t probability_updates = 0;
  uint64_t delta_executes = 0;   ///< Queries answered by dirty-bag passes.
  uint64_t full_executes = 0;    ///< Queries that took a full pass.
  uint64_t bags_recomputed = 0;  ///< Bags recomputed across delta passes.
  uint64_t inserts = 0;
  uint64_t deletes = 0;
  uint64_t decomposition_repairs = 0;   ///< Covered or order-patched.
  uint64_t decomposition_rebuilds = 0;  ///< Full order re-search.
  uint64_t lineage_recomputes = 0;      ///< Query roots that changed.
  uint64_t patched_gates = 0;     ///< Gates appended by structural batches.
  uint64_t tombstoned_facts = 0;
  uint64_t plans_invalidated = 0;
  uint64_t epochs_published = 0;
};

/// Index of a registered query within an IncrementalSession.
using QueryId = size_t;

/// What InsertFact created: the fact, its annotation event, and the
/// annotation gate (a plain kVar over the event — which is what makes
/// the fact deletable, see DeleteFact).
struct InsertedFact {
  FactId fact = kInvalidFact;
  EventId event = kInvalidEvent;
  GateId annotation = kInvalidGate;
};

/// The update subsystem of the pipeline: first-class probability and
/// structural updates against a live QuerySession, with queries served
/// incrementally instead of by rebuild.
///
/// The three maintenance mechanisms, by update class:
///
/// - *Probability updates* are purely numeric: UpdateProbability marks
///   the event in the session's dirty log, and the next Probability
///   call repropagates only the dirty bags' paths to the root inside
///   the cached plan (JunctionTreePlan::ExecuteDelta) — bit-identical
///   to a fresh evaluation, at the cost of the touched path.
///
/// - *Inserts* patch rather than rebuild: the instance decomposition is
///   repaired (appending to a covering bag when one exists, otherwise
///   re-deriving mechanically from the patched elimination order; the
///   expensive order search reruns only if the repaired width degrades
///   past repair_width_slack), and the lineage DP reruns over the
///   hash-consed circuit, appending only delta gates (CircuitPatch
///   measures them). Queries whose root gate is unchanged keep their
///   compiled plan *and* their delta state; changed roots invalidate
///   the stale plan (ConcurrentPlanCache::Invalidate).
///
/// - *Deletes* are probability updates in disguise: the deleted fact's
///   annotation event is driven to probability 0 — for an independent
///   event mathematically identical to pinning it false — and recorded
///   as a CircuitPatch tombstone. Deletion therefore rides the hot
///   delta path; no structural work at all.
///
/// Registered queries (RegisterCq / RegisterReachability) are the
/// maintained set: structural updates recompute their lineage roots
/// eagerly, queries evaluate lazily through per-query delta state.
///
/// Threading: the session is single-writer — updates, registration and
/// Probability calls belong to one logical thread. Concurrent serving
/// reads go through PublishSnapshot/EpochManager (see epoch.h), which
/// hands immutable copies to any number of readers.
class IncrementalSession {
 public:
  explicit IncrementalSession(QuerySession& session,
                              const IncrementalOptions& options = {});
  IncrementalSession(const IncrementalSession&) = delete;
  IncrementalSession& operator=(const IncrementalSession&) = delete;

  /// Registers a query for maintenance; builds its lineage now.
  QueryId RegisterCq(const ConjunctiveQuery& query);
  QueryId RegisterReachability(RelationId edge_relation, Value source,
                               Value target);

  size_t num_queries() const { return queries_.size(); }
  /// Current lineage root of a registered query (changes across
  /// structural updates).
  GateId root(QueryId query) const { return queries_[query].root; }

  /// Probability update: delegates to QuerySession::UpdateProbability
  /// (registry overwrite + dirty-log mark). Returns false — with no
  /// state change — on an unknown EventId or out-of-range probability.
  bool UpdateProbability(EventId event, double probability);

  /// Inserts a fact annotated by a fresh independent event with the
  /// given probability, repairs the decomposition, and recomputes the
  /// registered queries' lineages (see class comment).
  InsertedFact InsertFact(RelationId relation, std::vector<Value> args,
                          double probability);

  /// Deletes a fact by driving its annotation event to probability 0
  /// and tombstoning it. Requires the fact's annotation gate to be a
  /// plain event variable (facts inserted through InsertFact, or
  /// TID-style instances where every annotation is its own event).
  void DeleteFact(FactId fact);

  /// P(query | evidence), served incrementally: dirty events since the
  /// query's last evaluation are collected from the session log and
  /// handed to ExecuteDelta on the cached plan. Results are
  /// bit-identical to a fresh full evaluation of the current state.
  EngineResult Probability(QueryId query, const Evidence& evidence = {});

  /// Governed Probability: the budget is checked at bag granularity
  /// inside the delta pass (JunctionTreePlan::ExecuteDeltaGoverned). A
  /// trip returns a structured non-kOk status; the query's delta state
  /// is reset so the next call takes a clean full pass — a partial
  /// repropagation is never persisted. The query's dirty-log cursor
  /// still advances (the marks were consumed), so a tripped query pays
  /// one full pass afterwards rather than replaying the marks.
  EngineResult Probability(QueryId query, const Evidence& evidence,
                           const QueryBudget& budget);

  /// Persistence restore: re-records a deletion tombstone without
  /// re-driving the event (the restored registry already holds the
  /// probability-0 overwrite). Used only by checkpoint recovery.
  void RestoreTombstone(EventId event, bool value) {
    patch_.Tombstone(event, value);
    stats_.tombstoned_facts = patch_.num_tombstones();
  }

  /// Builds an immutable SessionSnapshot of the current state (deep
  /// copies of circuit and registry, a fresh per-epoch plan cache
  /// prewarmed with every registered root) and publishes it through
  /// `manager`. Returns the stamped epoch.
  uint64_t PublishSnapshot(EpochManager& manager);

  const IncrementalStats& stats() const { return stats_; }
  const CircuitPatch& patch() const { return patch_; }
  QuerySession& session() { return session_; }
  /// The repair-slack anchor (see IncrementalOptions). Persisted by the
  /// durability layer: replayed structural updates must take the same
  /// repair-vs-rebuild decisions as the live session did, or the
  /// recovered circuit diverges gate-for-gate from the logged one.
  int searched_width() const { return searched_width_; }
  void set_searched_width(int width) { searched_width_ = width; }
  /// The live-path plan cache (per-epoch snapshot caches are separate).
  ConcurrentPlanCache& plan_cache() { return plan_cache_; }

 private:
  struct RegisteredQuery {
    enum class Kind { kCq, kReachability };
    Kind kind = Kind::kCq;
    ConjunctiveQuery cq;       ///< kCq only.
    RelationId relation = 0;   ///< kReachability only.
    Value source = 0;
    Value target = 0;
    GateId root = kInvalidGate;
    PlanDeltaState delta;
    DirtyLog::Generation cursor = 0;
  };

  /// (Re)runs the lineage DP for `q` over the session's current
  /// decomposition.
  GateId ComputeRoot(const RegisteredQuery& q);
  /// Decomposition repair for fact `fact` over `args`, then lineage
  /// recomputation for every registered query.
  void ApplyStructuralUpdate(FactId fact, const std::vector<Value>& args);
  /// Drops dirty-log entries every query has consumed.
  void CompactDirtyLog();

  QuerySession& session_;
  IncrementalOptions options_;
  IncrementalStats stats_;
  /// Width of the last search-derived decomposition (-1 until one is
  /// seen): the anchor for the repair_width_slack bound.
  int searched_width_ = -1;
  CircuitPatch patch_;
  ConcurrentPlanCache plan_cache_;
  std::vector<RegisteredQuery> queries_;
  std::vector<EventId> dirty_scratch_;
};

}  // namespace incremental
}  // namespace tud

#endif  // TUD_INCREMENTAL_INCREMENTAL_SESSION_H_
