#ifndef TUD_INCREMENTAL_EPOCH_H_
#define TUD_INCREMENTAL_EPOCH_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "inference/engine.h"
#include "inference/junction_tree.h"

namespace tud {
namespace incremental {

/// One immutable, internally consistent version of a maintained
/// instance: the (circuit, registry, plan cache) triple every query of
/// the epoch evaluates against, plus the published query roots and the
/// deletion tombstones in force. Snapshots are built entirely by the
/// epoch writer before publication and never mutated afterwards —
/// readers share them freely.
///
/// The plan cache is per-snapshot on purpose: plans compiled against
/// epoch N's circuit must never answer epoch N+1 queries (a structural
/// update can reuse a root gate id for different logic). GetOrBuild on
/// it is thread-safe, so epoch readers still share each compiled plan.
struct SessionSnapshot {
  uint64_t epoch = 0;
  std::shared_ptr<const BoolCircuit> circuit;
  std::shared_ptr<const EventRegistry> registry;
  std::shared_ptr<ConcurrentPlanCache> plans;
  /// Lineage roots of the registered queries, by query index.
  std::vector<GateId> query_roots;
  /// Tombstone pins of deleted facts (already reflected in the
  /// registry as probability-0 events; kept for diagnostics and for
  /// engines fed evidence instead of the snapshot registry).
  Evidence tombstones;
  /// Stamped equal to `epoch` before publication: a reader observing
  /// epoch != epoch_check has a torn snapshot, which the publication
  /// protocol (handing over a fully built immutable object under the
  /// manager's mutex) guarantees never happens — the concurrency
  /// stress test pins it.
  uint64_t epoch_check = 0;
};

/// Publication point between the single epoch writer (the incremental
/// session applying updates) and any number of serving readers: a
/// shared_ptr to the current immutable SessionSnapshot, swapped under a
/// mutex whose critical section is one pointer copy (a refcount
/// increment for readers, a pointer swap for the writer).
///
/// The mutex is deliberate where std::atomic<shared_ptr> would look
/// natural: libstdc++'s _Sp_atomic unlocks its internal lock bit with
/// a relaxed store on the load path, which ThreadSanitizer cannot
/// credit, so a continuously publishing writer racing per-query loads
/// drowns the TSan CI job in false positives. A real mutex has the
/// same uncontended cost here (one atomic RMW per query) and TSan
/// models it exactly.
///
/// Readers grab the pointer once per query and keep the shared_ptr for
/// the query's duration, so a snapshot superseded mid-query stays
/// alive until its last in-flight reader drops it — the shared_ptr
/// refcount *is* the retire-after-last-reader-drains discipline, with
/// reclamation automatic instead of deferred to cache destruction as
/// in ConcurrentPlanCache.
///
/// Single writer: Publish is called only from the update thread.
class EpochManager {
 public:
  /// The current snapshot (never null after the first Publish; null
  /// before it). Grab once per query and read everything through it.
  std::shared_ptr<const SessionSnapshot> Current() const {
    std::lock_guard<std::mutex> lock(mu_);
    return current_;
  }

  /// Stamps `snapshot` with the next epoch number and publishes it.
  /// Returns the stamped epoch. The superseded snapshot is released
  /// (freed once its last in-flight reader drains).
  uint64_t Publish(SessionSnapshot snapshot) {
    const uint64_t epoch = ++last_epoch_;
    snapshot.epoch = epoch;
    snapshot.epoch_check = epoch;
    auto next = std::make_shared<const SessionSnapshot>(std::move(snapshot));
    std::shared_ptr<const SessionSnapshot> retired;
    {
      std::lock_guard<std::mutex> lock(mu_);
      retired = std::exchange(current_, std::move(next));
    }
    // `retired` drops outside the lock: if this writer holds the last
    // reference, the snapshot (circuit, plans, registry) is destroyed
    // here rather than inside the critical section.
    return epoch;
  }

  /// Epoch of the most recent Publish (0 before any).
  uint64_t current_epoch() const { return last_epoch_; }

 private:
  mutable std::mutex mu_;
  std::shared_ptr<const SessionSnapshot> current_;
  uint64_t last_epoch_ = 0;  ///< Writer-only.
};

}  // namespace incremental
}  // namespace tud

#endif  // TUD_INCREMENTAL_EPOCH_H_
