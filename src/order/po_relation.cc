#include "order/po_relation.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"

namespace tud {

PoRelation PoRelation::FromList(uint32_t arity,
                                std::vector<PoTuple> tuples) {
  PoRelation out(arity);
  OrderElem prev = 0;
  for (size_t i = 0; i < tuples.size(); ++i) {
    OrderElem e = out.AddTuple(std::move(tuples[i]));
    if (i > 0) TUD_CHECK(out.AddOrderConstraint(prev, e));
    prev = e;
  }
  return out;
}

PoRelation PoRelation::FromBag(uint32_t arity, std::vector<PoTuple> tuples) {
  PoRelation out(arity);
  for (auto& t : tuples) out.AddTuple(std::move(t));
  return out;
}

OrderElem PoRelation::AddTuple(PoTuple tuple) {
  TUD_CHECK_EQ(tuple.size(), arity_);
  tuples_.push_back(std::move(tuple));
  return order_.AddElement();
}

bool PoRelation::AddOrderConstraint(OrderElem a, OrderElem b) {
  return order_.AddConstraint(a, b);
}

PoRelation PoRelation::Select(
    const std::function<bool(const PoTuple&)>& predicate) const {
  std::vector<OrderElem> kept;
  PoRelation out(arity_);
  for (OrderElem i = 0; i < tuples_.size(); ++i) {
    if (predicate(tuples_[i])) {
      kept.push_back(i);
      out.tuples_.push_back(tuples_[i]);
    }
  }
  out.order_ = order_.Induced(kept);
  return out;
}

PoRelation PoRelation::Project(const std::vector<uint32_t>& columns) const {
  for (uint32_t c : columns) TUD_CHECK_LT(c, arity_);
  PoRelation out(static_cast<uint32_t>(columns.size()));
  for (const PoTuple& t : tuples_) {
    PoTuple projected;
    projected.reserve(columns.size());
    for (uint32_t c : columns) projected.push_back(t[c]);
    out.tuples_.push_back(std::move(projected));
  }
  out.order_ = order_;
  return out;
}

PoRelation PoRelation::UnionParallel(const PoRelation& a,
                                     const PoRelation& b) {
  TUD_CHECK_EQ(a.arity_, b.arity_);
  PoRelation out(a.arity_);
  for (const PoTuple& t : a.tuples_) out.AddTuple(t);
  for (const PoTuple& t : b.tuples_) out.AddTuple(t);
  const uint32_t na = static_cast<uint32_t>(a.tuples_.size());
  for (OrderElem i = 0; i < a.order_.size(); ++i) {
    for (OrderElem j = 0; j < a.order_.size(); ++j) {
      if (a.order_.Precedes(i, j)) out.order_.AddConstraint(i, j);
    }
  }
  for (OrderElem i = 0; i < b.order_.size(); ++i) {
    for (OrderElem j = 0; j < b.order_.size(); ++j) {
      if (b.order_.Precedes(i, j)) out.order_.AddConstraint(na + i, na + j);
    }
  }
  return out;
}

PoRelation PoRelation::Concatenate(const PoRelation& a, const PoRelation& b) {
  PoRelation out = UnionParallel(a, b);
  const uint32_t na = static_cast<uint32_t>(a.tuples_.size());
  for (OrderElem i = 0; i < na; ++i) {
    for (OrderElem j = 0; j < b.tuples_.size(); ++j) {
      TUD_CHECK(out.order_.AddConstraint(i, na + j));
    }
  }
  return out;
}

namespace {

PoTuple ConcatTuples(const PoTuple& a, const PoTuple& b) {
  PoTuple out = a;
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

}  // namespace

PoRelation PoRelation::ProductLex(const PoRelation& a, const PoRelation& b) {
  PoRelation out(a.arity_ + b.arity_);
  const uint32_t nb = static_cast<uint32_t>(b.tuples_.size());
  for (OrderElem i = 0; i < a.tuples_.size(); ++i) {
    for (OrderElem j = 0; j < nb; ++j) {
      out.AddTuple(ConcatTuples(a.tuples_[i], b.tuples_[j]));
    }
  }
  for (OrderElem i = 0; i < a.tuples_.size(); ++i) {
    for (OrderElem j = 0; j < nb; ++j) {
      for (OrderElem i2 = 0; i2 < a.tuples_.size(); ++i2) {
        for (OrderElem j2 = 0; j2 < nb; ++j2) {
          bool before = a.order_.Precedes(i, i2) ||
                        (i == i2 && b.order_.Precedes(j, j2));
          if (before) {
            TUD_CHECK(out.order_.AddConstraint(i * nb + j, i2 * nb + j2));
          }
        }
      }
    }
  }
  return out;
}

PoRelation PoRelation::ProductDirect(const PoRelation& a,
                                     const PoRelation& b) {
  PoRelation out(a.arity_ + b.arity_);
  const uint32_t nb = static_cast<uint32_t>(b.tuples_.size());
  for (OrderElem i = 0; i < a.tuples_.size(); ++i) {
    for (OrderElem j = 0; j < nb; ++j) {
      out.AddTuple(ConcatTuples(a.tuples_[i], b.tuples_[j]));
    }
  }
  // (i, j) precedes (i2, j2) iff i <= i2 and j <= j2 componentwise (with
  // <= the reflexive closure) and the pairs differ: the grid poset.
  for (OrderElem i = 0; i < a.tuples_.size(); ++i) {
    for (OrderElem j = 0; j < nb; ++j) {
      for (OrderElem i2 = 0; i2 < a.tuples_.size(); ++i2) {
        for (OrderElem j2 = 0; j2 < nb; ++j2) {
          if (i == i2 && j == j2) continue;
          bool le_a = (i == i2) || a.order_.Precedes(i, i2);
          bool le_b = (j == j2) || b.order_.Precedes(j, j2);
          if (le_a && le_b) {
            TUD_CHECK(out.order_.AddConstraint(i * nb + j, i2 * nb + j2));
          }
        }
      }
    }
  }
  return out;
}

size_t PoRelation::EnumerateWorlds(
    const std::function<void(const std::vector<PoTuple>&)>& fn,
    size_t limit) const {
  return order_.EnumerateLinearExtensions(
      [&](const std::vector<OrderElem>& extension) {
        std::vector<PoTuple> world;
        world.reserve(extension.size());
        for (OrderElem e : extension) world.push_back(tuples_[e]);
        fn(world);
      },
      limit);
}

bool PoRelation::IsPossibleWorld(const std::vector<PoTuple>& world) const {
  if (world.size() != tuples_.size()) return false;

  // Tractable case 1: no order constraints — multiset equality.
  if (order_.IsEmptyOrder()) {
    std::multiset<PoTuple> a(tuples_.begin(), tuples_.end());
    std::multiset<PoTuple> b(world.begin(), world.end());
    return a == b;
  }
  // Tractable case 2: total order — unique world, direct comparison.
  if (order_.IsTotal()) {
    bool equal = true;
    size_t checked = 0;
    order_.EnumerateLinearExtensions(
        [&](const std::vector<OrderElem>& extension) {
          for (size_t i = 0; i < extension.size(); ++i) {
            if (tuples_[extension[i]] != world[i]) equal = false;
          }
          ++checked;
        },
        1);
    return checked == 1 && equal;
  }

  // General case (NP-hard): backtracking — greedily match world[k]
  // against a minimal unplaced occurrence with the right label, with
  // memoisation on the set of placed occurrences.
  TUD_CHECK_LE(tuples_.size(), 62u);
  const uint32_t n = static_cast<uint32_t>(tuples_.size());
  std::vector<uint64_t> pred(n, 0);
  for (OrderElem a = 0; a < n; ++a) {
    for (OrderElem b = 0; b < n; ++b) {
      if (order_.Precedes(a, b)) pred[b] |= (1ULL << a);
    }
  }
  std::set<uint64_t> failed;
  std::function<bool(uint64_t, size_t)> match = [&](uint64_t placed,
                                                    size_t k) -> bool {
    if (k == world.size()) return true;
    if (failed.contains(placed)) return false;
    for (OrderElem x = 0; x < n; ++x) {
      if ((placed >> x) & 1) continue;
      if ((pred[x] & ~placed) != 0) continue;
      if (tuples_[x] != world[k]) continue;
      if (match(placed | (1ULL << x), k + 1)) return true;
    }
    failed.insert(placed);
    return false;
  };
  return match(0, 0);
}


bool PoRelation::CertainlyInTopK(OrderElem t, uint32_t k) const {
  TUD_CHECK_LT(t, tuples_.size());
  // Worst case: every element not known to come after t is placed
  // before it; t's worst rank is n - 1 - #successors.
  uint32_t successors = 0;
  for (OrderElem u = 0; u < tuples_.size(); ++u) {
    if (order_.Precedes(t, u)) ++successors;
  }
  return tuples_.size() - successors <= k;
}

bool PoRelation::PossiblyInTopK(OrderElem t, uint32_t k) const {
  TUD_CHECK_LT(t, tuples_.size());
  // Best case: only t's (transitive) predecessors come before it.
  uint32_t predecessors = 0;
  for (OrderElem u = 0; u < tuples_.size(); ++u) {
    if (order_.Precedes(u, t)) ++predecessors;
  }
  return predecessors < k;
}

std::string PoRelation::ToString(const Dictionary& dictionary) const {
  std::string out;
  for (size_t i = 0; i < tuples_.size(); ++i) {
    out += "t" + std::to_string(i) + " = (";
    for (size_t j = 0; j < tuples_[i].size(); ++j) {
      if (j > 0) out += ", ";
      out += dictionary.name(tuples_[i][j]);
    }
    out += ")\n";
  }
  out += "order: ";
  for (const auto& [a, b] : order_.CoverEdges()) {
    out += "t" + std::to_string(a) + "<t" + std::to_string(b) + " ";
  }
  out += "\n";
  return out;
}

}  // namespace tud
