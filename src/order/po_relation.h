#ifndef TUD_ORDER_PO_RELATION_H_
#define TUD_ORDER_PO_RELATION_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "order/partial_order.h"
#include "relational/dictionary.h"

namespace tud {

/// A tuple of a po-relation (dictionary-encoded values).
using PoTuple = std::vector<Value>;

/// A po-relation (labeled partial order): a bag of tuples together with
/// a strict partial order on the tuple *occurrences*. This is the
/// representation system for order-incomplete data of §3 / [6]: the
/// possible worlds are the linear extensions, read as ordered lists of
/// (possibly duplicate) tuples — an uncertain ordered relation under bag
/// semantics.
class PoRelation {
 public:
  /// An empty relation with the given arity.
  explicit PoRelation(uint32_t arity)
      : arity_(arity), order_(0) {}

  /// A totally ordered relation from a list (list semantics).
  static PoRelation FromList(uint32_t arity, std::vector<PoTuple> tuples);

  /// An unordered bag of tuples.
  static PoRelation FromBag(uint32_t arity, std::vector<PoTuple> tuples);

  uint32_t arity() const { return arity_; }
  size_t NumTuples() const { return tuples_.size(); }
  const PoTuple& tuple(size_t i) const { return tuples_[i]; }
  const PartialOrder& order() const { return order_; }

  /// Adds a tuple occurrence (initially incomparable to everything).
  OrderElem AddTuple(PoTuple tuple);

  /// Asserts that occurrence a comes before occurrence b. Returns false
  /// if that would contradict the existing order.
  bool AddOrderConstraint(OrderElem a, OrderElem b);

  // -- Positive relational algebra (bag semantics, [6]) --

  /// σ: keeps the tuples satisfying `predicate`, with the induced order.
  PoRelation Select(const std::function<bool(const PoTuple&)>& predicate)
      const;

  /// π: projects every tuple onto `columns` (duplicates preserved), with
  /// the same underlying order.
  PoRelation Project(const std::vector<uint32_t>& columns) const;

  /// ∪ as *parallel composition*: tuples of both inputs, no order across
  /// inputs — all interleavings compatible with both are possible.
  static PoRelation UnionParallel(const PoRelation& a, const PoRelation& b);

  /// Ordered concatenation (series composition): every tuple of `a`
  /// precedes every tuple of `b` — the "UNION ALL of two lists" reading.
  static PoRelation Concatenate(const PoRelation& a, const PoRelation& b);

  /// × with lexicographic semantics: pairs (i, j) ordered by the order
  /// on `a`, ties broken by the order on `b` (the nested-loop reading of
  /// a product of ordered relations).
  static PoRelation ProductLex(const PoRelation& a, const PoRelation& b);

  /// × with direct (pointwise) semantics: (i, j) precedes (i', j') iff
  /// i precedes i' in `a` *and* j precedes j' in `b`.
  static PoRelation ProductDirect(const PoRelation& a, const PoRelation& b);

  // -- Possible-world reasoning --

  /// Enumerates possible worlds (ordered lists of tuples); stops after
  /// `limit` if non-zero. Returns the number produced.
  size_t EnumerateWorlds(
      const std::function<void(const std::vector<PoTuple>&)>& fn,
      size_t limit = 0) const;

  /// Exact number of possible worlds as *linear extensions* (duplicate
  /// tuples make distinct extensions that read identically; this counts
  /// extensions, the representation-level notion).
  uint64_t CountWorlds() const { return order_.CountLinearExtensions(); }

  /// Whether `world` (a list of tuples) is a possible world: is there a
  /// linear extension whose label sequence equals it? NP-hard in general
  /// (§3: "given a labeled partial order, we cannot tractably determine
  /// whether an input total order is one of its possible worlds");
  /// solved by backtracking with memoisation here, with polynomial
  /// fast paths when the order is empty (multiset equality) or total
  /// (direct comparison) — the tractable special cases the paper names.
  bool IsPossibleWorld(const std::vector<PoTuple>& world) const;

  /// True iff tuple occurrence a precedes b in *every* possible world.
  bool CertainlyPrecedes(OrderElem a, OrderElem b) const {
    return order_.Precedes(a, b);
  }

  /// True iff a precedes b in *some* possible world.
  bool PossiblyPrecedes(OrderElem a, OrderElem b) const {
    return a != b && !order_.Precedes(b, a);
  }

  /// True iff occurrence `t` lands among the first k tuples in *every*
  /// world: its worst-case rank (elements not after it) is below k.
  bool CertainlyInTopK(OrderElem t, uint32_t k) const;

  /// True iff `t` lands among the first k tuples in *some* world: its
  /// best-case rank (number of elements that must precede it) is below
  /// k. Both run in O(n) over the closure — top-k under order
  /// uncertainty is one of the §3 motivations (frequent itemsets with
  /// incomplete support order).
  bool PossiblyInTopK(OrderElem t, uint32_t k) const;

  std::string ToString(const Dictionary& dictionary) const;

 private:
  uint32_t arity_;
  std::vector<PoTuple> tuples_;
  PartialOrder order_;
};

}  // namespace tud

#endif  // TUD_ORDER_PO_RELATION_H_
