#ifndef TUD_ORDER_PARTIAL_ORDER_H_
#define TUD_ORDER_PARTIAL_ORDER_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace tud {

/// Element index within a PartialOrder.
using OrderElem = uint32_t;

/// A strict partial order over elements {0, ..., n-1}, stored as a DAG of
/// asserted constraints plus its transitive closure. This is the order
/// half of the po-relation representation system for order-incomplete
/// data (§3, [6]).
class PartialOrder {
 public:
  explicit PartialOrder(uint32_t num_elements)
      : n_(num_elements), closure_(num_elements,
                                   std::vector<bool>(num_elements, false)) {}

  /// The empty order (antichain) over n elements.
  static PartialOrder Antichain(uint32_t n) { return PartialOrder(n); }

  /// The chain 0 < 1 < ... < n-1.
  static PartialOrder Chain(uint32_t n);

  uint32_t size() const { return n_; }

  /// Grows the order by one fresh element, incomparable to all others;
  /// returns its index.
  OrderElem AddElement();

  /// Asserts a < b (and everything transitivity implies). Returns false
  /// and changes nothing if this would create a cycle (b <= a already).
  bool AddConstraint(OrderElem a, OrderElem b);

  /// True iff a < b is implied (transitive closure).
  bool Precedes(OrderElem a, OrderElem b) const;

  /// True iff neither a < b nor b < a (a, b incomparable).
  bool Incomparable(OrderElem a, OrderElem b) const;

  /// Cover edges (transitive reduction) of the order.
  std::vector<std::pair<OrderElem, OrderElem>> CoverEdges() const;

  /// Number of comparable pairs (a < b).
  size_t NumRelations() const;

  /// True iff the order is total.
  bool IsTotal() const;

  /// True iff no two elements are comparable.
  bool IsEmptyOrder() const { return NumRelations() == 0; }

  /// Counts linear extensions exactly by DP over downsets [14 is the
  /// #P-hardness reference; this is the exponential exact algorithm].
  /// Requires n <= 62 and is practical to ~n = 24 (memoised on subsets).
  uint64_t CountLinearExtensions() const;

  /// Enumerates linear extensions in lexicographic order, invoking `fn`
  /// for each, stopping early after `limit` extensions (0 = no limit).
  /// Returns the number produced.
  size_t EnumerateLinearExtensions(
      const std::function<void(const std::vector<OrderElem>&)>& fn,
      size_t limit = 0) const;

  /// True iff `sequence` is a permutation of all elements compatible
  /// with the order.
  bool IsLinearExtension(const std::vector<OrderElem>& sequence) const;

  /// The induced order on a subset of elements: element i of the result
  /// corresponds to `kept[i]`.
  PartialOrder Induced(const std::vector<OrderElem>& kept) const;

  /// Distribution of the position of `element` across linear extensions
  /// drawn uniformly: entry i is P(element is the i-th smallest). This
  /// is the §3 "best guess" for interpolating the rank of an item under
  /// order-incomplete data. Computed exactly by the prefix/suffix
  /// downset DP; exponential in general (like counting), practical to
  /// ~n = 22. Requires n >= 1 and at least one linear extension
  /// (always true for a valid partial order).
  std::vector<double> RankDistribution(OrderElem element) const;

  /// Expected position (0-based) of `element` across linear extensions.
  double ExpectedRank(OrderElem element) const;

 private:
  uint32_t n_;
  std::vector<std::vector<bool>> closure_;
};

}  // namespace tud

#endif  // TUD_ORDER_PARTIAL_ORDER_H_
