#include "order/partial_order.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"

namespace tud {

PartialOrder PartialOrder::Chain(uint32_t n) {
  PartialOrder order(n);
  for (uint32_t i = 0; i + 1 < n; ++i) {
    TUD_CHECK(order.AddConstraint(i, i + 1));
  }
  return order;
}

OrderElem PartialOrder::AddElement() {
  for (auto& row : closure_) row.push_back(false);
  ++n_;
  closure_.emplace_back(n_, false);
  return n_ - 1;
}

bool PartialOrder::AddConstraint(OrderElem a, OrderElem b) {
  TUD_CHECK_LT(a, n_);
  TUD_CHECK_LT(b, n_);
  if (a == b || closure_[b][a]) return false;  // Would create a cycle.
  if (closure_[a][b]) return true;             // Already implied.
  // New pairs: everything <= a precedes everything >= b.
  std::vector<OrderElem> ups = {a};
  std::vector<OrderElem> downs = {b};
  for (OrderElem x = 0; x < n_; ++x) {
    if (closure_[x][a]) ups.push_back(x);
    if (closure_[b][x]) downs.push_back(x);
  }
  for (OrderElem x : ups) {
    for (OrderElem y : downs) {
      closure_[x][y] = true;
    }
  }
  return true;
}

bool PartialOrder::Precedes(OrderElem a, OrderElem b) const {
  TUD_CHECK_LT(a, n_);
  TUD_CHECK_LT(b, n_);
  return closure_[a][b];
}

bool PartialOrder::Incomparable(OrderElem a, OrderElem b) const {
  return a != b && !Precedes(a, b) && !Precedes(b, a);
}

std::vector<std::pair<OrderElem, OrderElem>> PartialOrder::CoverEdges()
    const {
  std::vector<std::pair<OrderElem, OrderElem>> covers;
  for (OrderElem a = 0; a < n_; ++a) {
    for (OrderElem b = 0; b < n_; ++b) {
      if (!closure_[a][b]) continue;
      bool direct = true;
      for (OrderElem m = 0; m < n_; ++m) {
        if (closure_[a][m] && closure_[m][b]) {
          direct = false;
          break;
        }
      }
      if (direct) covers.emplace_back(a, b);
    }
  }
  return covers;
}

size_t PartialOrder::NumRelations() const {
  size_t count = 0;
  for (OrderElem a = 0; a < n_; ++a) {
    for (OrderElem b = 0; b < n_; ++b) {
      if (closure_[a][b]) ++count;
    }
  }
  return count;
}

bool PartialOrder::IsTotal() const {
  return NumRelations() == static_cast<size_t>(n_) * (n_ - 1) / 2;
}

uint64_t PartialOrder::CountLinearExtensions() const {
  TUD_CHECK_LE(n_, 62u);
  // Precompute predecessor masks.
  std::vector<uint64_t> pred(n_, 0);
  for (OrderElem a = 0; a < n_; ++a) {
    for (OrderElem b = 0; b < n_; ++b) {
      if (closure_[a][b]) pred[b] |= (1ULL << a);
    }
  }
  // count(S) = number of linear extensions of the elements in S placed
  // first (S must be a downset). count(∅) = 1.
  std::unordered_map<uint64_t, uint64_t> memo;
  memo.reserve(1024);
  const uint64_t full = (n_ == 0) ? 0 : ((n_ == 64) ? ~0ULL
                                                    : (1ULL << n_) - 1);
  std::function<uint64_t(uint64_t)> count = [&](uint64_t placed) -> uint64_t {
    if (placed == full) return 1;
    auto it = memo.find(placed);
    if (it != memo.end()) return it->second;
    uint64_t total = 0;
    for (OrderElem x = 0; x < n_; ++x) {
      if ((placed >> x) & 1) continue;
      if ((pred[x] & ~placed) != 0) continue;  // A predecessor remains.
      total += count(placed | (1ULL << x));
    }
    memo.emplace(placed, total);
    return total;
  };
  return count(0);
}

namespace {

void EnumerateRec(const std::vector<uint64_t>& pred, uint32_t n,
                  uint64_t placed, std::vector<OrderElem>& prefix,
                  const std::function<void(const std::vector<OrderElem>&)>& fn,
                  size_t limit, size_t& produced) {
  if (limit != 0 && produced >= limit) return;
  if (prefix.size() == n) {
    fn(prefix);
    ++produced;
    return;
  }
  for (OrderElem x = 0; x < n; ++x) {
    if ((placed >> x) & 1) continue;
    if ((pred[x] & ~placed) != 0) continue;
    prefix.push_back(x);
    EnumerateRec(pred, n, placed | (1ULL << x), prefix, fn, limit, produced);
    prefix.pop_back();
    if (limit != 0 && produced >= limit) return;
  }
}

}  // namespace

size_t PartialOrder::EnumerateLinearExtensions(
    const std::function<void(const std::vector<OrderElem>&)>& fn,
    size_t limit) const {
  TUD_CHECK_LE(n_, 62u);
  std::vector<uint64_t> pred(n_, 0);
  for (OrderElem a = 0; a < n_; ++a) {
    for (OrderElem b = 0; b < n_; ++b) {
      if (closure_[a][b]) pred[b] |= (1ULL << a);
    }
  }
  std::vector<OrderElem> prefix;
  size_t produced = 0;
  EnumerateRec(pred, n_, 0, prefix, fn, limit, produced);
  return produced;
}

bool PartialOrder::IsLinearExtension(
    const std::vector<OrderElem>& sequence) const {
  if (sequence.size() != n_) return false;
  std::vector<bool> seen(n_, false);
  std::vector<uint32_t> position(n_, 0);
  for (uint32_t i = 0; i < sequence.size(); ++i) {
    OrderElem x = sequence[i];
    if (x >= n_ || seen[x]) return false;
    seen[x] = true;
    position[x] = i;
  }
  for (OrderElem a = 0; a < n_; ++a) {
    for (OrderElem b = 0; b < n_; ++b) {
      if (closure_[a][b] && position[a] >= position[b]) return false;
    }
  }
  return true;
}

std::vector<double> PartialOrder::RankDistribution(OrderElem element) const {
  TUD_CHECK_LT(element, n_);
  TUD_CHECK_LE(n_, 62u);
  std::vector<uint64_t> pred(n_, 0), succ(n_, 0);
  for (OrderElem a = 0; a < n_; ++a) {
    for (OrderElem b = 0; b < n_; ++b) {
      if (closure_[a][b]) {
        pred[b] |= (1ULL << a);
        succ[a] |= (1ULL << b);
      }
    }
  }
  const uint64_t full = (n_ == 0) ? 0 : ((1ULL << n_) - 1);

  // prefix(S) = number of linear orders of the downset S; computed over
  // all reachable downsets by BFS from the empty set.
  std::unordered_map<uint64_t, double> prefix;
  prefix[0] = 1.0;
  std::vector<std::vector<uint64_t>> downsets_by_size(n_ + 1);
  downsets_by_size[0].push_back(0);
  std::unordered_map<uint64_t, bool> seen;
  seen[0] = true;
  for (uint32_t size = 0; size < n_; ++size) {
    for (uint64_t s : downsets_by_size[size]) {
      for (OrderElem x = 0; x < n_; ++x) {
        if ((s >> x) & 1) continue;
        if ((pred[x] & ~s) != 0) continue;
        uint64_t t = s | (1ULL << x);
        prefix[t] += prefix[s];
        if (!seen[t]) {
          seen[t] = true;
          downsets_by_size[size + 1].push_back(t);
        }
      }
    }
  }

  // suffix(S) = number of ways to complete a prefix occupying downset S.
  std::unordered_map<uint64_t, double> suffix;
  suffix[full] = 1.0;
  for (uint32_t size = n_; size-- > 0;) {
    for (uint64_t s : downsets_by_size[size]) {
      double total = 0.0;
      for (OrderElem x = 0; x < n_; ++x) {
        if ((s >> x) & 1) continue;
        if ((pred[x] & ~s) != 0) continue;
        total += suffix[s | (1ULL << x)];
      }
      suffix[s] = total;
    }
  }
  const double all = suffix[0];
  TUD_CHECK_GT(all, 0.0);

  // element lands at position |S| when placed right after downset S:
  // requires S ⊇ pred(element), S ∩ ({element} ∪ succ(element)) = ∅.
  std::vector<double> distribution(n_, 0.0);
  for (uint32_t size = 0; size < n_; ++size) {
    for (uint64_t s : downsets_by_size[size]) {
      if ((s >> element) & 1) continue;
      if ((pred[element] & ~s) != 0) continue;
      distribution[size] +=
          prefix[s] * suffix[s | (1ULL << element)] / all;
    }
  }
  return distribution;
}

double PartialOrder::ExpectedRank(OrderElem element) const {
  std::vector<double> distribution = RankDistribution(element);
  double expectation = 0.0;
  for (size_t i = 0; i < distribution.size(); ++i) {
    expectation += static_cast<double>(i) * distribution[i];
  }
  return expectation;
}

PartialOrder PartialOrder::Induced(const std::vector<OrderElem>& kept) const {
  PartialOrder out(static_cast<uint32_t>(kept.size()));
  for (uint32_t i = 0; i < kept.size(); ++i) {
    for (uint32_t j = 0; j < kept.size(); ++j) {
      if (i != j && Precedes(kept[i], kept[j])) {
        out.closure_[i][j] = true;
      }
    }
  }
  return out;
}

}  // namespace tud
