#ifndef TUD_UTIL_FAULT_INJECTION_H_
#define TUD_UTIL_FAULT_INJECTION_H_

/// Fault-injection hooks for stress-testing the serving and inference
/// layers: probabilistic allocation failure (thrown as std::bad_alloc
/// from the arena-acquisition sites), forced per-bag delays (to widen
/// race windows in the scheduler / epoch manager), and forced
/// cancellation points (so cooperative-cancellation paths fire even in
/// tests that never touch a CancelToken).
///
/// The hooks are compiled to empty inlines unless the build defines
/// TUD_FAULT_INJECTION (CMake: -DTUD_FAULT_INJECTION=ON). Release
/// builds therefore pay nothing — not even a branch.

#include <cstdint>

namespace tud {
namespace fault {

#ifdef TUD_FAULT_INJECTION

inline constexpr bool kEnabled = true;

/// Probabilities are in [0, 1]; 0 disables the corresponding fault.
struct Config {
  double alloc_failure_probability = 0.0;
  double cancel_probability = 0.0;
  uint32_t per_bag_delay_us = 0;
  /// I/O faults, consumed by the src/persist layer: a failed write
  /// leaves a *short* (torn) prefix on disk — modelling a crash
  /// mid-write, not a clean error — a failed flush reports fsync
  /// failure with unknown on-disk state, and a bit flip silently
  /// corrupts one bit of an encoded buffer before it is written (the
  /// checksum path must catch it on read).
  double io_write_failure_probability = 0.0;
  double io_flush_failure_probability = 0.0;
  double io_bit_flip_probability = 0.0;
  uint64_t seed = 1;
};

/// Installs `config` process-wide and resets the fault counters.
void Configure(const Config& config);

/// Restores the all-faults-off default configuration.
void Reset();

/// True if the next guarded allocation should fail. Increments the
/// allocation-failure counter when it fires.
bool ShouldFailAllocation();

/// Sleeps for the configured per-bag delay, if any.
void MaybeDelayBag();

/// True if a cooperative cancellation point should trip this time.
bool ShouldForceCancel();

/// True if the next guarded file write should be torn short. Increments
/// the write-failure counter when it fires.
bool ShouldFailWrite();

/// True if the next guarded flush/fsync should report failure.
/// Increments the flush-failure counter when it fires.
bool ShouldFailFlush();

/// If a bit flip should be injected into a buffer of `size` bytes,
/// returns the bit index in [0, size*8) to flip; returns a negative
/// value otherwise. Increments the bit-flip counter when it fires.
int64_t MaybeFlipBit(uint64_t size);

/// Number of allocations failed since the last Configure/Reset.
uint64_t AllocationFailures();

/// I/O fault counters since the last Configure/Reset.
uint64_t WriteFailures();
uint64_t FlushFailures();
uint64_t BitFlips();

/// RAII scope: installs `config` on construction, Reset() on
/// destruction. Keeps tests exception-safe.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const Config& config) { Configure(config); }
  ~ScopedFaultInjection() { Reset(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

#else  // !TUD_FAULT_INJECTION

inline constexpr bool kEnabled = false;

struct Config {
  double alloc_failure_probability = 0.0;
  double cancel_probability = 0.0;
  uint32_t per_bag_delay_us = 0;
  double io_write_failure_probability = 0.0;
  double io_flush_failure_probability = 0.0;
  double io_bit_flip_probability = 0.0;
  uint64_t seed = 1;
};

inline void Configure(const Config&) {}
inline void Reset() {}
inline bool ShouldFailAllocation() { return false; }
inline void MaybeDelayBag() {}
inline bool ShouldForceCancel() { return false; }
inline bool ShouldFailWrite() { return false; }
inline bool ShouldFailFlush() { return false; }
inline int64_t MaybeFlipBit(uint64_t) { return -1; }
inline uint64_t AllocationFailures() { return 0; }
inline uint64_t WriteFailures() { return 0; }
inline uint64_t FlushFailures() { return 0; }
inline uint64_t BitFlips() { return 0; }

class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const Config&) {}
};

#endif  // TUD_FAULT_INJECTION

}  // namespace fault
}  // namespace tud

#endif  // TUD_UTIL_FAULT_INJECTION_H_
