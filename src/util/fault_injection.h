#ifndef TUD_UTIL_FAULT_INJECTION_H_
#define TUD_UTIL_FAULT_INJECTION_H_

/// Fault-injection hooks for stress-testing the serving and inference
/// layers: probabilistic allocation failure (thrown as std::bad_alloc
/// from the arena-acquisition sites), forced per-bag delays (to widen
/// race windows in the scheduler / epoch manager), and forced
/// cancellation points (so cooperative-cancellation paths fire even in
/// tests that never touch a CancelToken).
///
/// The hooks are compiled to empty inlines unless the build defines
/// TUD_FAULT_INJECTION (CMake: -DTUD_FAULT_INJECTION=ON). Release
/// builds therefore pay nothing — not even a branch.

#include <cstdint>

namespace tud {
namespace fault {

#ifdef TUD_FAULT_INJECTION

inline constexpr bool kEnabled = true;

/// Probabilities are in [0, 1]; 0 disables the corresponding fault.
struct Config {
  double alloc_failure_probability = 0.0;
  double cancel_probability = 0.0;
  uint32_t per_bag_delay_us = 0;
  uint64_t seed = 1;
};

/// Installs `config` process-wide and resets the fault counters.
void Configure(const Config& config);

/// Restores the all-faults-off default configuration.
void Reset();

/// True if the next guarded allocation should fail. Increments the
/// allocation-failure counter when it fires.
bool ShouldFailAllocation();

/// Sleeps for the configured per-bag delay, if any.
void MaybeDelayBag();

/// True if a cooperative cancellation point should trip this time.
bool ShouldForceCancel();

/// Number of allocations failed since the last Configure/Reset.
uint64_t AllocationFailures();

/// RAII scope: installs `config` on construction, Reset() on
/// destruction. Keeps tests exception-safe.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const Config& config) { Configure(config); }
  ~ScopedFaultInjection() { Reset(); }
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

#else  // !TUD_FAULT_INJECTION

inline constexpr bool kEnabled = false;

struct Config {
  double alloc_failure_probability = 0.0;
  double cancel_probability = 0.0;
  uint32_t per_bag_delay_us = 0;
  uint64_t seed = 1;
};

inline void Configure(const Config&) {}
inline void Reset() {}
inline bool ShouldFailAllocation() { return false; }
inline void MaybeDelayBag() {}
inline bool ShouldForceCancel() { return false; }
inline uint64_t AllocationFailures() { return 0; }

class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const Config&) {}
};

#endif  // TUD_FAULT_INJECTION

}  // namespace fault
}  // namespace tud

#endif  // TUD_UTIL_FAULT_INJECTION_H_
