#ifndef TUD_UTIL_RNG_H_
#define TUD_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace tud {

/// Deterministic pseudo-random number generator (splitmix64 seeded
/// xoshiro256**). All randomised code in the library takes an explicit
/// `Rng&` so that tests and benchmarks are reproducible across platforms,
/// unlike std::mt19937 whose distributions are implementation-defined.
class Rng {
 public:
  /// Creates a generator from a 64-bit seed. Two generators created from
  /// the same seed produce identical streams.
  explicit Rng(uint64_t seed);

  /// Returns the next raw 64-bit value.
  uint64_t Next();

  /// Returns a uniform integer in [0, bound). Requires bound > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Returns a uniform integer in [lo, hi]. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Returns a uniform double in [0, 1).
  double UniformDouble();

  /// Returns true with probability p (clamped to [0, 1]).
  bool Bernoulli(double p);

  /// Returns a uniformly random permutation of {0, ..., n-1}.
  std::vector<uint32_t> Permutation(uint32_t n);

  /// Fisher-Yates shuffles `items` in place.
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (size_t i = items.size(); i > 1; --i) {
      size_t j = UniformInt(i);
      std::swap(items[i - 1], items[j]);
    }
  }

 private:
  uint64_t state_[4];
};

}  // namespace tud

#endif  // TUD_UTIL_RNG_H_
