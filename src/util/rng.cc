#include "util/rng.h"

#include <numeric>

#include "util/check.h"

namespace tud {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& word : state_) word = SplitMix64(sm);
}

uint64_t Rng::Next() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  TUD_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = bound * (UINT64_MAX / bound);
  uint64_t value = Next();
  while (value >= limit) value = Next();
  return value % bound;
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  TUD_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::UniformDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

std::vector<uint32_t> Rng::Permutation(uint32_t n) {
  std::vector<uint32_t> perm(n);
  std::iota(perm.begin(), perm.end(), 0u);
  Shuffle(perm);
  return perm;
}

}  // namespace tud
