#include "util/strings.h"

namespace tud {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator) {
  std::string result;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) result.append(separator);
    result.append(parts[i]);
  }
  return result;
}

std::vector<std::string> StrSplit(std::string_view input, char separator) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = input.find(separator, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(input.substr(start));
      return pieces;
    }
    pieces.emplace_back(input.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view StripWhitespace(std::string_view input) {
  while (!input.empty() &&
         (input.front() == ' ' || input.front() == '\t' ||
          input.front() == '\n' || input.front() == '\r')) {
    input.remove_prefix(1);
  }
  while (!input.empty() &&
         (input.back() == ' ' || input.back() == '\t' ||
          input.back() == '\n' || input.back() == '\r')) {
    input.remove_suffix(1);
  }
  return input;
}

}  // namespace tud
