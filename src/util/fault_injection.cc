#include "util/fault_injection.h"

#ifdef TUD_FAULT_INJECTION

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

namespace tud {
namespace fault {
namespace {

// The configuration itself is read on hot paths from many threads, so
// the scalar knobs are mirrored into atomics; Configure/Reset swap them
// under a mutex. Probabilities are pre-scaled to a 32-bit threshold so
// the per-call check is one RNG step and one compare.
std::mutex g_config_mu;
std::atomic<uint32_t> g_alloc_threshold{0};   // fail if rng32 < threshold
std::atomic<uint32_t> g_cancel_threshold{0};  // cancel if rng32 < threshold
std::atomic<uint32_t> g_delay_us{0};
std::atomic<uint32_t> g_write_threshold{0};
std::atomic<uint32_t> g_flush_threshold{0};
std::atomic<uint32_t> g_bit_flip_threshold{0};
std::atomic<uint64_t> g_seed{1};
std::atomic<uint64_t> g_alloc_failures{0};
std::atomic<uint64_t> g_write_failures{0};
std::atomic<uint64_t> g_flush_failures{0};
std::atomic<uint64_t> g_bit_flips{0};

uint32_t ScaleProbability(double p) {
  if (p <= 0.0) return 0;
  if (p >= 1.0) return 0xFFFFFFFFu;
  return static_cast<uint32_t>(p * 4294967296.0);
}

// Per-thread splitmix64 stream, reseeded lazily when the global seed
// epoch changes so Configure() gives deterministic-per-thread streams.
struct ThreadRng {
  uint64_t state = 0;
  uint64_t epoch = 0;

  uint32_t Next(uint64_t seed_epoch) {
    if (epoch != seed_epoch) {
      epoch = seed_epoch;
      state = seed_epoch ^
              (std::hash<std::thread::id>{}(std::this_thread::get_id()) |
               uint64_t{1});
    }
    state += 0x9E3779B97F4A7C15ull;
    uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return static_cast<uint32_t>((z ^ (z >> 31)) >> 32);
  }
};

ThreadRng& Rng() {
  thread_local ThreadRng rng;
  return rng;
}

}  // namespace

void Configure(const Config& config) {
  std::lock_guard<std::mutex> lock(g_config_mu);
  g_alloc_threshold.store(ScaleProbability(config.alloc_failure_probability),
                          std::memory_order_relaxed);
  g_cancel_threshold.store(ScaleProbability(config.cancel_probability),
                           std::memory_order_relaxed);
  g_delay_us.store(config.per_bag_delay_us, std::memory_order_relaxed);
  g_write_threshold.store(ScaleProbability(config.io_write_failure_probability),
                          std::memory_order_relaxed);
  g_flush_threshold.store(ScaleProbability(config.io_flush_failure_probability),
                          std::memory_order_relaxed);
  g_bit_flip_threshold.store(ScaleProbability(config.io_bit_flip_probability),
                             std::memory_order_relaxed);
  g_seed.store(config.seed == 0 ? 1 : config.seed, std::memory_order_relaxed);
  g_alloc_failures.store(0, std::memory_order_relaxed);
  g_write_failures.store(0, std::memory_order_relaxed);
  g_flush_failures.store(0, std::memory_order_relaxed);
  g_bit_flips.store(0, std::memory_order_relaxed);
}

void Reset() { Configure(Config{}); }

bool ShouldFailAllocation() {
  uint32_t threshold = g_alloc_threshold.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  if (Rng().Next(g_seed.load(std::memory_order_relaxed)) >= threshold) {
    return false;
  }
  g_alloc_failures.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void MaybeDelayBag() {
  uint32_t us = g_delay_us.load(std::memory_order_relaxed);
  if (us == 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(us));
}

bool ShouldForceCancel() {
  uint32_t threshold = g_cancel_threshold.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  return Rng().Next(g_seed.load(std::memory_order_relaxed)) < threshold;
}

bool ShouldFailWrite() {
  uint32_t threshold = g_write_threshold.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  if (Rng().Next(g_seed.load(std::memory_order_relaxed)) >= threshold) {
    return false;
  }
  g_write_failures.fetch_add(1, std::memory_order_relaxed);
  return true;
}

bool ShouldFailFlush() {
  uint32_t threshold = g_flush_threshold.load(std::memory_order_relaxed);
  if (threshold == 0) return false;
  if (Rng().Next(g_seed.load(std::memory_order_relaxed)) >= threshold) {
    return false;
  }
  g_flush_failures.fetch_add(1, std::memory_order_relaxed);
  return true;
}

int64_t MaybeFlipBit(uint64_t size) {
  uint32_t threshold = g_bit_flip_threshold.load(std::memory_order_relaxed);
  if (threshold == 0 || size == 0) return -1;
  uint64_t seed = g_seed.load(std::memory_order_relaxed);
  if (Rng().Next(seed) >= threshold) return -1;
  g_bit_flips.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int64_t>(Rng().Next(seed) % (size * 8));
}

uint64_t AllocationFailures() {
  return g_alloc_failures.load(std::memory_order_relaxed);
}

uint64_t WriteFailures() {
  return g_write_failures.load(std::memory_order_relaxed);
}

uint64_t FlushFailures() {
  return g_flush_failures.load(std::memory_order_relaxed);
}

uint64_t BitFlips() { return g_bit_flips.load(std::memory_order_relaxed); }

}  // namespace fault
}  // namespace tud

#else  // !TUD_FAULT_INJECTION

// Everything is inline no-ops in the header; this TU is intentionally
// empty so the build graph stays identical across configurations.
namespace tud {
namespace fault {
namespace {
[[maybe_unused]] constexpr int kUnused = 0;
}  // namespace
}  // namespace fault
}  // namespace tud

#endif  // TUD_FAULT_INJECTION
