#include "util/budget.h"

namespace tud {

const char* EngineStatusName(EngineStatus status) {
  switch (status) {
    case EngineStatus::kOk:
      return "ok";
    case EngineStatus::kDeadlineExceeded:
      return "deadline_exceeded";
    case EngineStatus::kResourceExhausted:
      return "resource_exhausted";
    case EngineStatus::kCancelled:
      return "cancelled";
    case EngineStatus::kInvalidArgument:
      return "invalid_argument";
    case EngineStatus::kRejected:
      return "rejected";
    case EngineStatus::kIoError:
      return "io_error";
  }
  return "unknown";
}

}  // namespace tud
