#ifndef TUD_UTIL_CHECK_H_
#define TUD_UTIL_CHECK_H_

#include <sstream>
#include <string>

namespace tud {
namespace internal_check {

/// Reports a fatal invariant violation and aborts the process.
/// Used by the TUD_CHECK family of macros; not meant to be called directly.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Stream-style message collector for TUD_CHECK macros. The collected
/// message is passed to CheckFailed when the guarded expression is false.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  CheckMessageBuilder(const CheckMessageBuilder&) = delete;
  CheckMessageBuilder& operator=(const CheckMessageBuilder&) = delete;

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

  [[noreturn]] ~CheckMessageBuilder() {
    CheckFailed(file_, line_, expr_, stream_.str());
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

}  // namespace internal_check
}  // namespace tud

/// Aborts with a diagnostic if `condition` is false. Additional context can
/// be streamed: TUD_CHECK(x > 0) << "x was " << x;
#define TUD_CHECK(condition)                                          \
  while (!(condition))                                                \
  ::tud::internal_check::CheckMessageBuilder(__FILE__, __LINE__,      \
                                             #condition)

#define TUD_CHECK_EQ(a, b) TUD_CHECK((a) == (b))
#define TUD_CHECK_NE(a, b) TUD_CHECK((a) != (b))
#define TUD_CHECK_LT(a, b) TUD_CHECK((a) < (b))
#define TUD_CHECK_LE(a, b) TUD_CHECK((a) <= (b))
#define TUD_CHECK_GT(a, b) TUD_CHECK((a) > (b))
#define TUD_CHECK_GE(a, b) TUD_CHECK((a) >= (b))

/// Debug-only variant; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define TUD_DCHECK(condition) \
  while (false) TUD_CHECK(condition)
#else
#define TUD_DCHECK(condition) TUD_CHECK(condition)
#endif

#endif  // TUD_UTIL_CHECK_H_
