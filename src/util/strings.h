#ifndef TUD_UTIL_STRINGS_H_
#define TUD_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace tud {

/// Joins the elements of `parts` with `separator`.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view separator);

/// Splits `input` at every occurrence of `separator` (which must be
/// non-empty). Empty pieces are kept.
std::vector<std::string> StrSplit(std::string_view input, char separator);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view input);

}  // namespace tud

#endif  // TUD_UTIL_STRINGS_H_
