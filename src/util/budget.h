#ifndef TUD_UTIL_BUDGET_H_
#define TUD_UTIL_BUDGET_H_

/// Resource governance for query execution: a QueryBudget carries a
/// wall-clock deadline, a table-cell cap (the unit every engine's
/// dominant cost is measured in: junction-tree message cells, BDD
/// nodes, exhaustive valuations, Monte-Carlo samples), a sample cap,
/// and an optional cooperative CancelToken. Engines check the budget at
/// bag / iteration granularity through a BudgetMeter and return a
/// structured EngineStatus instead of aborting, so one adversarial
/// query can neither OOM nor stall a serving process.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>

#include "util/fault_injection.h"

namespace tud {

/// Outcome of a governed operation. kOk means the result value is the
/// exact (or engine-usual approximate) answer; everything else means
/// the value is not trustworthy unless the engine says otherwise
/// (AutoEngine degrades to a coarser engine and reports kOk with an
/// honest error_bound instead of surfacing the trip).
enum class EngineStatus : uint8_t {
  kOk = 0,
  kDeadlineExceeded,   // wall-clock deadline passed mid-execution
  kResourceExhausted,  // table-cell / node / sample cap exceeded
  kCancelled,          // CancelToken fired (or a forced-cancel fault)
  kInvalidArgument,    // malformed request: bad root, unknown event, ...
  kRejected,           // shed by serving-layer admission control
  kIoError,            // persistence failure: write/fsync error, checksum
                       // mismatch, unreadable WAL/checkpoint
};

const char* EngineStatusName(EngineStatus status);

/// Cooperative cancellation flag. The requester keeps the token and
/// calls Cancel(); governed engines poll it at bag/iteration
/// granularity. Thread-safe; cancelling twice is fine.
class CancelToken {
 public:
  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Resource limits for one query. Default-constructed budgets are
/// unlimited, so governed paths cost nothing to callers that never
/// asked for governance. Caps of 0 mean "no cap".
struct QueryBudget {
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
  uint64_t max_table_cells = 0;
  uint32_t max_samples = 0;
  const CancelToken* cancel = nullptr;

  bool has_deadline() const {
    return deadline != std::chrono::steady_clock::time_point::max();
  }
  bool unlimited() const {
    return !has_deadline() && max_table_cells == 0 && max_samples == 0 &&
           cancel == nullptr;
  }
  bool cancelled() const { return cancel != nullptr && cancel->cancelled(); }
  bool past_deadline() const {
    return has_deadline() && std::chrono::steady_clock::now() >= deadline;
  }

  /// Convenience: a budget whose deadline is `ms` from now.
  static QueryBudget WithDeadlineMs(double ms) {
    QueryBudget budget;
    budget.deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double, std::milli>(ms));
    return budget;
  }
};

/// Per-execution budget accountant. Charge() is the hot-path check:
/// cell accounting and the cancel poll run every call, but the
/// steady_clock read (the expensive part) is amortised — it only
/// happens every kCellsPerClockCheck charged cells, so bag-granularity
/// checks stay under the 2% overhead bar on small-bag plans.
class BudgetMeter {
 public:
  explicit BudgetMeter(const QueryBudget& budget) : budget_(budget) {}

  /// Accounts `cells` units of work; returns kOk or the tripped status.
  EngineStatus Charge(uint64_t cells) {
    cells_ += cells;
    if (budget_.max_table_cells != 0 && cells_ > budget_.max_table_cells) {
      return EngineStatus::kResourceExhausted;
    }
    if (budget_.cancelled() || fault::ShouldForceCancel()) {
      return EngineStatus::kCancelled;
    }
    if (budget_.has_deadline() && cells_ >= next_clock_at_) {
      next_clock_at_ = cells_ + kCellsPerClockCheck;
      if (std::chrono::steady_clock::now() >= budget_.deadline) {
        return EngineStatus::kDeadlineExceeded;
      }
    }
    return EngineStatus::kOk;
  }

  /// Forces the next Charge() to read the clock (used at coarse
  /// boundaries like "one conditioning branch done").
  EngineStatus CheckNow() {
    next_clock_at_ = 0;
    return Charge(0);
  }

  uint64_t charged_cells() const { return cells_; }
  const QueryBudget& budget() const { return budget_; }

 private:
  // ~8k cells between clock reads: at the <1ns/cell pace of the flat
  // junction-tree kernels this bounds deadline-detection slack to a few
  // microseconds, far inside the "one bag's slack" contract.
  static constexpr uint64_t kCellsPerClockCheck = 8192;

  const QueryBudget& budget_;
  uint64_t cells_ = 0;
  uint64_t next_clock_at_ = 0;
};

}  // namespace tud

#endif  // TUD_UTIL_BUDGET_H_
