#include "uncertain/pcc_instance.h"

#include "uncertain/c_instance.h"
#include "util/check.h"

namespace tud {

FactId PccInstance::AddFact(RelationId relation, std::vector<Value> args,
                            GateId annotation) {
  TUD_CHECK_LT(annotation, circuit_.NumGates());
  FactId id = instance_.AddFact(relation, std::move(args));
  annotations_.push_back(annotation);
  return id;
}

GateId PccInstance::annotation(FactId f) const {
  TUD_CHECK_LT(f, annotations_.size());
  return annotations_[f];
}

PccInstance PccInstance::FromCInstance(const CInstance& ci) {
  PccInstance pcc(ci.instance().schema());
  // Copy the event registry (names and probabilities).
  for (EventId e = 0; e < ci.events().size(); ++e) {
    pcc.events().Register(ci.events().name(e), ci.events().probability(e));
  }
  for (FactId f = 0; f < ci.NumFacts(); ++f) {
    GateId gate = pcc.circuit().AddFormula(ci.annotation(f));
    pcc.AddFact(ci.instance().fact(f).relation, ci.instance().fact(f).args,
                gate);
  }
  return pcc;
}

Instance PccInstance::World(const Valuation& valuation) const {
  std::vector<bool> gate_values = circuit_.EvaluateAll(valuation);
  Instance world(instance_.schema());
  for (FactId f = 0; f < instance_.NumFacts(); ++f) {
    if (gate_values[annotations_[f]]) {
      world.AddFact(instance_.fact(f).relation, instance_.fact(f).args);
    }
  }
  return world;
}

VertexId PccInstance::GateVertex(GateId g) const {
  return static_cast<VertexId>(instance_.DomainSize() + g);
}

Graph PccInstance::JointPrimalGraph() const {
  const uint32_t num_vertices = static_cast<uint32_t>(
      instance_.DomainSize() + circuit_.NumGates());
  Graph graph(num_vertices);
  for (const auto& [a, b] : instance_.GaifmanEdges()) graph.AddEdge(a, b);
  for (const auto& [a, b] : circuit_.PrimalEdges()) {
    graph.AddEdge(GateVertex(a), GateVertex(b));
  }
  for (FactId f = 0; f < instance_.NumFacts(); ++f) {
    VertexId gate_vertex = GateVertex(annotations_[f]);
    for (Value v : instance_.fact(f).args) {
      graph.AddEdge(v, gate_vertex);
    }
  }
  return graph;
}

}  // namespace tud
