#include "uncertain/tid_instance.h"

#include "uncertain/c_instance.h"
#include "util/check.h"

namespace tud {

FactId TidInstance::AddFact(RelationId relation, std::vector<Value> args,
                            double probability) {
  TUD_CHECK(probability >= 0.0 && probability <= 1.0);
  FactId id = instance_.AddFact(relation, std::move(args));
  probabilities_.push_back(probability);
  return id;
}

double TidInstance::probability(FactId f) const {
  TUD_CHECK_LT(f, probabilities_.size());
  return probabilities_[f];
}

CInstance TidInstance::ToPcInstance() const {
  CInstance pc(instance_.schema());
  for (FactId f = 0; f < instance_.NumFacts(); ++f) {
    EventId e = pc.events().Register("t" + std::to_string(f),
                                     probabilities_[f]);
    pc.AddFact(instance_.fact(f).relation, instance_.fact(f).args,
               BoolFormula::Var(e));
  }
  return pc;
}

}  // namespace tud
