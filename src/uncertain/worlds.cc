#include "uncertain/worlds.h"

#include "util/check.h"

namespace tud {

void ForEachWorld(const EventRegistry& registry,
                  const std::function<void(const Valuation&, double)>& fn) {
  const size_t n = registry.size();
  TUD_CHECK_LE(n, 30u) << "world enumeration over " << n << " events";
  for (uint64_t mask = 0; mask < (1ULL << n); ++mask) {
    Valuation valuation = Valuation::FromMask(mask, n);
    fn(valuation, valuation.Probability(registry));
  }
}

double ProbabilityByEnumeration(
    const EventRegistry& registry,
    const std::function<bool(const Valuation&)>& predicate) {
  double total = 0.0;
  ForEachWorld(registry, [&](const Valuation& valuation, double p) {
    if (predicate(valuation)) total += p;
  });
  return total;
}

}  // namespace tud
