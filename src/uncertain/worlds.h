#ifndef TUD_UNCERTAIN_WORLDS_H_
#define TUD_UNCERTAIN_WORLDS_H_

#include <functional>

#include "events/event_registry.h"
#include "events/valuation.h"

namespace tud {

/// Possible-world utilities: exhaustive enumeration over event valuations.
/// Exponential in the number of events — intended for validation of the
/// exact engines on small inputs and as the naive baseline in benchmarks
/// (the paper's point is precisely that this is the only generic method
/// without structural restrictions).

/// Calls `fn(valuation, probability)` for all 2^n valuations of the
/// registry's events. Requires at most 30 events.
void ForEachWorld(const EventRegistry& registry,
                  const std::function<void(const Valuation&, double)>& fn);

/// Sum of world probabilities where `predicate(valuation)` holds; the
/// brute-force definition of query probability.
double ProbabilityByEnumeration(
    const EventRegistry& registry,
    const std::function<bool(const Valuation&)>& predicate);

}  // namespace tud

#endif  // TUD_UNCERTAIN_WORLDS_H_
