#ifndef TUD_UNCERTAIN_PCC_INSTANCE_H_
#define TUD_UNCERTAIN_PCC_INSTANCE_H_

#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "events/valuation.h"
#include "relational/instance.h"
#include "treedec/graph.h"

namespace tud {

class CInstance;

/// A pcc-instance (paper §2.2): a relational instance whose fact
/// annotations are gates of a shared Boolean *circuit* over independent
/// probabilistic events. Circuits can share sub-annotations, which is what
/// makes the *joint* treewidth of instance + circuit the right notion:
/// "tractability does not follow from bounded treewidth of the instance
/// and of the circuit in isolation; rather, we must require the existence
/// of a bounded-width tree decomposition of the instance and circuit,
/// which respects the link between circuit gates and the facts that they
/// annotate."
class PccInstance {
 public:
  explicit PccInstance(Schema schema) : instance_(std::move(schema)) {}

  /// Events feeding the annotation circuit.
  EventRegistry& events() { return events_; }
  const EventRegistry& events() const { return events_; }

  /// The shared annotation circuit. Build annotation gates here, then
  /// pass them to AddFact.
  BoolCircuit& circuit() { return circuit_; }
  const BoolCircuit& circuit() const { return circuit_; }

  /// Adds a fact annotated by circuit gate `annotation`.
  FactId AddFact(RelationId relation, std::vector<Value> args,
                 GateId annotation);

  const Instance& instance() const { return instance_; }
  size_t NumFacts() const { return instance_.NumFacts(); }
  GateId annotation(FactId f) const;

  /// Converts a (p)c-instance by compiling each formula annotation into
  /// the circuit (formulas share sub-gates via structural hashing).
  static PccInstance FromCInstance(const CInstance& ci);

  /// The possible world selected by `valuation`.
  Instance World(const Valuation& valuation) const;

  /// The joint primal graph of instance and circuit: one vertex per
  /// domain element (ids [0, DomainSize())) and one per circuit gate
  /// (ids offset by DomainSize()); edges are the Gaifman edges, the
  /// circuit primal edges, and — respecting the fact-annotation link —
  /// edges between every element of a fact and that fact's annotation
  /// gate. The treewidth of this graph is the pcc-instance's width
  /// (Theorem 2's parameter).
  Graph JointPrimalGraph() const;

  /// Vertex id of gate `g` inside JointPrimalGraph().
  VertexId GateVertex(GateId g) const;

 private:
  Instance instance_;
  EventRegistry events_;
  BoolCircuit circuit_;
  std::vector<GateId> annotations_;
};

}  // namespace tud

#endif  // TUD_UNCERTAIN_PCC_INSTANCE_H_
