#ifndef TUD_UNCERTAIN_C_INSTANCE_H_
#define TUD_UNCERTAIN_C_INSTANCE_H_

#include <vector>

#include "events/bool_formula.h"
#include "events/event_registry.h"
#include "events/valuation.h"
#include "relational/instance.h"

namespace tud {

/// A c-instance [32, 29]: a relational instance whose facts carry
/// propositional annotations over Boolean events. Each valuation of the
/// events defines one possible world, keeping exactly the facts whose
/// annotation evaluates to true (paper Table 1 is an example).
///
/// A *pc-instance* [29, 31] is the same object with probabilities on the
/// events (held by the EventRegistry); `PcInstance` is an alias. Events
/// are independent; correlations between facts are expressed by sharing
/// events across annotations.
class CInstance {
 public:
  explicit CInstance(Schema schema) : instance_(std::move(schema)) {}

  /// The registry holding this instance's events (register events here
  /// before referencing them in annotations).
  EventRegistry& events() { return events_; }
  const EventRegistry& events() const { return events_; }

  /// Adds a fact guarded by `annotation`.
  FactId AddFact(RelationId relation, std::vector<Value> args,
                 BoolFormula annotation);

  const Instance& instance() const { return instance_; }
  size_t NumFacts() const { return instance_.NumFacts(); }
  const BoolFormula& annotation(FactId f) const;

  /// Replaces the annotation of fact `f` (used by the probabilistic
  /// chase to OR in newly found derivations).
  void SetAnnotation(FactId f, BoolFormula annotation);

  /// The possible world selected by `valuation`: the sub-instance of
  /// facts whose annotation holds.
  Instance World(const Valuation& valuation) const;

  /// True if some/every valuation keeps fact `f`. Exponential in the
  /// number of events in the annotation (not in the instance).
  bool IsPossible(FactId f) const;
  bool IsCertain(FactId f) const;

 private:
  Instance instance_;
  EventRegistry events_;
  std::vector<BoolFormula> annotations_;
};

/// A pc-instance is a c-instance whose registry probabilities are
/// meaningful: events are independently true with their probability.
using PcInstance = CInstance;

}  // namespace tud

#endif  // TUD_UNCERTAIN_C_INSTANCE_H_
