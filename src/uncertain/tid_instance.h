#ifndef TUD_UNCERTAIN_TID_INSTANCE_H_
#define TUD_UNCERTAIN_TID_INSTANCE_H_

#include <vector>

#include "relational/instance.h"

namespace tud {

class CInstance;

/// A tuple-independent (TID) probabilistic instance [36]: every fact is
/// present independently with its own probability. The simplest
/// probabilistic relational model — and already #P-hard to query in
/// general [19], which is the hardness Theorem 1 circumvents by bounding
/// the treewidth of the underlying instance.
class TidInstance {
 public:
  explicit TidInstance(Schema schema) : instance_(std::move(schema)) {}

  /// Adds a fact present with probability `probability` in [0, 1].
  FactId AddFact(RelationId relation, std::vector<Value> args,
                 double probability);

  const Instance& instance() const { return instance_; }
  size_t NumFacts() const { return instance_.NumFacts(); }
  double probability(FactId f) const;

  /// Converts to a pc-instance: one fresh event per fact, each fact
  /// annotated by its event. The event registry is created inside the
  /// returned instance; event i corresponds to fact i.
  CInstance ToPcInstance() const;

 private:
  Instance instance_;
  std::vector<double> probabilities_;
};

}  // namespace tud

#endif  // TUD_UNCERTAIN_TID_INSTANCE_H_
