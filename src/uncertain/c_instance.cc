#include "uncertain/c_instance.h"

#include "util/check.h"

namespace tud {

FactId CInstance::AddFact(RelationId relation, std::vector<Value> args,
                          BoolFormula annotation) {
  FactId id = instance_.AddFact(relation, std::move(args));
  annotations_.push_back(std::move(annotation));
  return id;
}

const BoolFormula& CInstance::annotation(FactId f) const {
  TUD_CHECK_LT(f, annotations_.size());
  return annotations_[f];
}

void CInstance::SetAnnotation(FactId f, BoolFormula annotation) {
  TUD_CHECK_LT(f, annotations_.size());
  annotations_[f] = std::move(annotation);
}

Instance CInstance::World(const Valuation& valuation) const {
  Instance world(instance_.schema());
  for (FactId f = 0; f < instance_.NumFacts(); ++f) {
    if (annotations_[f].Evaluate(valuation)) {
      world.AddFact(instance_.fact(f).relation, instance_.fact(f).args);
    }
  }
  return world;
}

bool CInstance::IsPossible(FactId f) const {
  const BoolFormula& ann = annotation(f);
  std::vector<EventId> used = ann.Events();
  TUD_CHECK_LE(used.size(), 24u) << "too many events for enumeration";
  for (uint64_t mask = 0; mask < (1ULL << used.size()); ++mask) {
    Valuation valuation(events_.size());
    for (size_t i = 0; i < used.size(); ++i) {
      valuation.set_value(used[i], (mask >> i) & 1);
    }
    if (ann.Evaluate(valuation)) return true;
  }
  return false;
}

bool CInstance::IsCertain(FactId f) const {
  const BoolFormula& ann = annotation(f);
  std::vector<EventId> used = ann.Events();
  TUD_CHECK_LE(used.size(), 24u) << "too many events for enumeration";
  for (uint64_t mask = 0; mask < (1ULL << used.size()); ++mask) {
    Valuation valuation(events_.size());
    for (size_t i = 0; i < used.size(); ++i) {
      valuation.set_value(used[i], (mask >> i) & 1);
    }
    if (!ann.Evaluate(valuation)) return false;
  }
  return true;
}

}  // namespace tud
