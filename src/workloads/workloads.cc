#include "workloads/workloads.h"

#include <algorithm>
#include <charconv>
#include <cmath>

#include "util/check.h"

namespace tud {
namespace workloads {

Schema RstSchema() {
  Schema schema;
  schema.AddRelation("R", 1);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 1);
  return schema;
}

Schema EdgeSchema() {
  Schema schema;
  schema.AddRelation("E", 2);
  return schema;
}

std::vector<std::pair<uint32_t, uint32_t>> PartialKTreeEdges(Rng& rng,
                                                             uint32_t n,
                                                             uint32_t k,
                                                             double keep) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  std::vector<std::vector<uint32_t>> cliques;
  uint32_t base = std::min(n, k + 1);
  std::vector<uint32_t> first;
  for (uint32_t i = 0; i < base; ++i) {
    for (uint32_t j = i + 1; j < base; ++j) edges.emplace_back(i, j);
    first.push_back(i);
  }
  cliques.push_back(first);
  for (uint32_t v = base; v < n; ++v) {
    const std::vector<uint32_t>& host =
        cliques[rng.UniformInt(cliques.size())];
    // Attach v to a k-subset of the host clique.
    std::vector<uint32_t> subset = host;
    while (subset.size() > k) {
      subset.erase(subset.begin() + rng.UniformInt(subset.size()));
    }
    for (uint32_t u : subset) edges.emplace_back(u, v);
    subset.push_back(v);
    cliques.push_back(std::move(subset));
  }
  std::vector<std::pair<uint32_t, uint32_t>> kept;
  for (const auto& e : edges) {
    if (rng.Bernoulli(keep)) kept.push_back(e);
  }
  return kept;
}

TidInstance LadderTid(Rng& rng, uint32_t rungs) {
  TidInstance tid(EdgeSchema());
  for (uint32_t i = 0; i + 2 < 2 * rungs; i += 2) {
    tid.AddFact(0, {i, i + 2}, 0.5 + 0.4 * rng.UniformDouble());
    tid.AddFact(0, {i + 1, i + 3}, 0.5 + 0.4 * rng.UniformDouble());
    tid.AddFact(0, {i, i + 1}, 0.3 + 0.4 * rng.UniformDouble());
  }
  return tid;
}

TidInstance KTreeEdgeTid(Rng& rng, uint32_t n, uint32_t k) {
  TidInstance tid(EdgeSchema());
  for (const auto& [a, b] : PartialKTreeEdges(rng, n, k, 0.7)) {
    tid.AddFact(0, {a, b}, 0.3 + 0.5 * rng.UniformDouble());
  }
  return tid;
}

TidInstance MakeKTreeTid(Rng& rng, uint32_t n, uint32_t k) {
  TidInstance tid(RstSchema());
  for (const auto& [u, v] : PartialKTreeEdges(rng, n, k, 0.8)) {
    tid.AddFact(1, {u, v}, 0.2 + 0.6 * rng.UniformDouble());
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (rng.Bernoulli(0.5)) {
      tid.AddFact(0, {v}, 0.2 + 0.6 * rng.UniformDouble());
    }
    if (rng.Bernoulli(0.5)) {
      tid.AddFact(2, {v}, 0.2 + 0.6 * rng.UniformDouble());
    }
  }
  return tid;
}

TidInstance MakeDensePathTid(Rng& rng, uint32_t n) {
  TidInstance tid(RstSchema());
  for (uint32_t v = 0; v < n; ++v) {
    tid.AddFact(0, {v}, 0.3 + 0.5 * rng.UniformDouble());
    tid.AddFact(2, {v}, 0.3 + 0.5 * rng.UniformDouble());
    if (v + 1 < n) {
      tid.AddFact(1, {v, v + 1}, 0.3 + 0.5 * rng.UniformDouble());
    }
  }
  return tid;
}

PccInstance MakeCorrelatedPcc(Rng& rng, uint32_t n, uint32_t window) {
  PccInstance pcc(RstSchema());
  std::vector<GateId> sources;
  for (uint32_t i = 0; i < n; ++i) {
    EventId e = pcc.events().Register("src" + std::to_string(i),
                                      0.3 + 0.4 * rng.UniformDouble());
    sources.push_back(pcc.circuit().AddVar(e));
  }
  for (uint32_t v = 0; v + 1 < n; ++v) {
    // S(v, v+1) is trusted iff all sources in its window agree.
    std::vector<GateId> window_gates;
    for (uint32_t w = 0; w < window && v + w < n; ++w) {
      window_gates.push_back(sources[v + w]);
    }
    pcc.AddFact(1, {v, v + 1}, pcc.circuit().AddAnd(window_gates));
  }
  for (uint32_t v = 0; v < n; ++v) {
    pcc.AddFact(0, {v}, sources[v]);
    pcc.AddFact(2, {v}, sources[v]);
  }
  return pcc;
}

PrXmlDocument MakeWikidataPrxml(Rng& rng, uint32_t num_entities,
                                uint32_t scope) {
  PrXmlDocument doc;
  std::vector<EventId> contributors;
  for (uint32_t s = 0; s < scope; ++s) {
    contributors.push_back(doc.events().Register(
        "contributor" + std::to_string(s), 0.5 + 0.4 * rng.UniformDouble()));
  }
  PNodeId root = doc.AddRoot("wikidata");
  for (uint32_t i = 0; i < num_entities; ++i) {
    PNodeId entity = doc.AddChild(root, PNodeKind::kOrdinary, "entity");
    // An optional occupation behind ind.
    PNodeId ind = doc.AddChild(entity, PNodeKind::kInd, "");
    PNodeId occ = doc.AddChild(ind, PNodeKind::kOrdinary, "occupation");
    doc.SetEdgeProbability(occ, 0.2 + 0.6 * rng.UniformDouble());
    doc.AddChild(occ, PNodeKind::kOrdinary,
                 rng.Bernoulli(0.5) ? "musician" : "analyst");
    // A name behind mux.
    PNodeId name = doc.AddChild(entity, PNodeKind::kOrdinary, "given name");
    PNodeId mux = doc.AddChild(name, PNodeKind::kMux, "");
    PNodeId n1 = doc.AddChild(mux, PNodeKind::kOrdinary, "nameA");
    doc.SetEdgeProbability(n1, 0.4);
    PNodeId n2 = doc.AddChild(mux, PNodeKind::kOrdinary, "nameB");
    doc.SetEdgeProbability(n2, 0.5);
    // Contributor-guarded facts (cie) reusing the global events: each
    // entity gets its own conjunction over the shared contributors with
    // random polarities, so distinct entities are genuinely correlated
    // through all `scope` events (no two guards coincide structurally).
    if (scope > 0) {
      PNodeId cie = doc.AddChild(entity, PNodeKind::kCie, "");
      PNodeId claim = doc.AddChild(cie, PNodeKind::kOrdinary, "claim");
      std::vector<std::pair<EventId, bool>> literals;
      for (EventId c : contributors) {
        literals.emplace_back(c, rng.Bernoulli(0.7));
      }
      doc.SetEdgeLiterals(claim, std::move(literals));
      doc.AddChild(claim, PNodeKind::kOrdinary, "statement");
    }
  }
  doc.Finalize();
  return doc;
}

BoolCircuit MakeCoreTentacleCircuit(Rng& rng, uint32_t core_events,
                                    uint32_t num_tentacles,
                                    EventRegistry& registry, GateId* root) {
  BoolCircuit c;
  std::vector<GateId> core_vars;
  for (uint32_t e = 0; e < core_events; ++e) {
    registry.Register("core" + std::to_string(e),
                      0.3 + 0.4 * rng.UniformDouble());
    core_vars.push_back(c.AddVar(e));
  }
  std::vector<GateId> parts;
  for (uint32_t clause = 0; clause < 2 * core_events; ++clause) {
    std::vector<GateId> literals;
    for (int lit = 0; lit < 3; ++lit) {
      GateId var = core_vars[rng.UniformInt(core_vars.size())];
      literals.push_back(rng.Bernoulli(0.5) ? var : c.AddNot(var));
    }
    parts.push_back(c.AddOr(std::move(literals)));
  }
  GateId acc = parts.empty() ? c.AddConst(false) : c.AddAnd(parts);
  for (uint32_t t = 0; t < num_tentacles; ++t) {
    EventId e1 = registry.Register("tent" + std::to_string(t) + "a",
                                   0.1 + 0.3 * rng.UniformDouble());
    EventId e2 = registry.Register("tent" + std::to_string(t) + "b",
                                   0.1 + 0.3 * rng.UniformDouble());
    acc = c.AddOr(acc, c.AddAnd(c.AddVar(e1), c.AddVar(e2)));
  }
  *root = acc;
  return c;
}

// ---------------------------------------------------------------------------
// InstanceSpec
// ---------------------------------------------------------------------------

std::string InstanceSpec::Name() const {
  switch (family) {
    case Family::kLadder:
      return "ladder:" + std::to_string(n);
    case Family::kKTree:
      return "ktree:" + std::to_string(n) + "x" + std::to_string(k);
    case Family::kDensePath:
      return "densepath:" + std::to_string(n);
  }
  return "invalid";
}

TidInstance MakeInstance(const InstanceSpec& spec) {
  Rng rng(spec.seed);
  switch (spec.family) {
    case InstanceSpec::Family::kLadder:
      return LadderTid(rng, spec.n);
    case InstanceSpec::Family::kKTree:
      return KTreeEdgeTid(rng, spec.n, spec.k);
    case InstanceSpec::Family::kDensePath:
      return MakeDensePathTid(rng, spec.n);
  }
  TUD_CHECK(false) << "unknown workload family";
  return TidInstance(EdgeSchema());
}

namespace {

std::optional<uint32_t> ParseU32(std::string_view s) {
  uint32_t value = 0;
  auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc() || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

}  // namespace

std::optional<InstanceSpec> ParseInstanceSpec(std::string_view name) {
  const size_t colon = name.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  const std::string_view family = name.substr(0, colon);
  const std::string_view args = name.substr(colon + 1);
  InstanceSpec spec;
  if (family == "ladder" || family == "densepath") {
    spec.family = family == "ladder" ? InstanceSpec::Family::kLadder
                                     : InstanceSpec::Family::kDensePath;
    std::optional<uint32_t> n = ParseU32(args);
    if (!n.has_value() || *n == 0) return std::nullopt;
    spec.n = *n;
    return spec;
  }
  if (family == "ktree") {
    const size_t x = args.find('x');
    if (x == std::string_view::npos) return std::nullopt;
    std::optional<uint32_t> n = ParseU32(args.substr(0, x));
    std::optional<uint32_t> k = ParseU32(args.substr(x + 1));
    if (!n.has_value() || !k.has_value() || *n == 0 || *k == 0) {
      return std::nullopt;
    }
    spec.family = InstanceSpec::Family::kKTree;
    spec.n = *n;
    spec.k = *k;
    return spec;
  }
  return std::nullopt;
}

std::pair<uint32_t, uint32_t> CanonicalEndpoints(const InstanceSpec& spec) {
  if (spec.family == InstanceSpec::Family::kLadder) {
    return {0, 2 * spec.n - 2};
  }
  return {0, spec.n - 1};
}

// ---------------------------------------------------------------------------
// ZipfianGenerator
// ---------------------------------------------------------------------------

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(double(i), theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t num_items, double theta)
    : n_(num_items), theta_(theta) {
  TUD_CHECK_GT(n_, 0u);
  TUD_CHECK(theta > 0.0 && theta < 1.0)
      << "zipf theta must be in (0, 1) for the YCSB construction";
  zetan_ = Zeta(n_, theta_);
  zeta2_ = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / double(n_), 1.0 - theta_)) /
         (1.0 - zeta2_ / zetan_);
}

uint64_t ZipfianGenerator::Next(Rng& rng) {
  const double u = rng.UniformDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (n_ >= 2 && uz < 1.0 + std::pow(0.5, theta_)) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      double(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

std::vector<uint32_t> ZipfianQueryMix(uint32_t num_distinct, size_t length,
                                      double theta, uint64_t seed) {
  ZipfianGenerator zipf(num_distinct, theta);
  Rng rng(seed);
  std::vector<uint32_t> mix;
  mix.reserve(length);
  for (size_t i = 0; i < length; ++i) {
    mix.push_back(static_cast<uint32_t>(zipf.Next(rng)));
  }
  return mix;
}

}  // namespace workloads
}  // namespace tud
