#ifndef TUD_WORKLOADS_WORKLOADS_H_
#define TUD_WORKLOADS_WORKLOADS_H_

// The named-workload registry: every synthetic instance / document /
// circuit generator the benchmarks and the serving harness share, behind
// one parameterized interface (InstanceSpec -> TidInstance), plus the
// YCSB-style zipfian popularity generator that turns a set of distinct
// queries into a skewed serving mix. Generators used to live in
// bench/workloads.h (and as per-bench local helpers); they moved into
// the library so the QPS serving harness, the google-benchmark binaries
// and the tests all size the *same* workloads from the same parameters.
// All generators take an explicit Rng (or a seed inside the spec) for
// reproducibility.

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "prxml/prxml_document.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"

namespace tud {
namespace workloads {

// ---------------------------------------------------------------------------
// Schemas
// ---------------------------------------------------------------------------

/// Schema R(x), S(x, y), T(y) — the paper's #P-hard example query's
/// schema.
Schema RstSchema();

/// Single binary relation E(x, y) — the reachability workloads' schema.
Schema EdgeSchema();

// ---------------------------------------------------------------------------
// Graph-shaped TID generators
// ---------------------------------------------------------------------------

/// Edges of a random partial k-tree on n vertices: build a k-tree
/// incrementally (every new vertex attaches to a random k-clique), then
/// keep each edge with probability `keep`. Treewidth <= k by
/// construction.
std::vector<std::pair<uint32_t, uint32_t>> PartialKTreeEdges(Rng& rng,
                                                             uint32_t n,
                                                             uint32_t k,
                                                             double keep);

/// Uncertain series-parallel-ish ladder over EdgeSchema(): `rungs`
/// levels, two rails plus rungs, width 2. Vertex 2i / 2i+1 are the
/// left/right rail at level i; the canonical s-t reachability query is
/// source 0 to target 2*rungs - 2.
TidInstance LadderTid(Rng& rng, uint32_t rungs);

/// Uncertain partial k-tree over EdgeSchema() (edge keep 0.7) — the
/// bounded-treewidth reachability workload beyond ladders.
TidInstance KTreeEdgeTid(Rng& rng, uint32_t n, uint32_t k);

/// Experiment X1 (Theorem 1): a TID over the RST schema whose Gaifman
/// graph is a partial k-tree: S facts on the k-tree edges, R/T facts on
/// random vertices, all with random probabilities.
TidInstance MakeKTreeTid(Rng& rng, uint32_t n, uint32_t k);

/// Dense path-shaped TID (treewidth 1) where the RST query is always
/// structurally satisfiable: R(v), T(v) for every vertex and S(v, v+1)
/// for every edge, all uncertain.
TidInstance MakeDensePathTid(Rng& rng, uint32_t n);

/// Experiment X2 (Theorem 2): a pcc-instance over a path-shaped
/// (treewidth-1) instance whose annotations are correlated through a
/// shared circuit: consecutive S facts within a window of size `window`
/// share "source trust" events. window = 1 degenerates to a TID.
PccInstance MakeCorrelatedPcc(Rng& rng, uint32_t n, uint32_t window);

/// Experiments X3/X4/X8: a synthetic Wikidata-style PrXML document:
/// `num_entities` entity subtrees under the root, each with attribute
/// children behind ind/mux nodes; `scope` global events are reused on
/// cie edges across ALL entities. scope = 0 yields a purely local
/// document.
PrXmlDocument MakeWikidataPrxml(Rng& rng, uint32_t num_entities,
                                uint32_t scope);

/// Experiment X6: a lineage-like circuit with a dense core over
/// `core_events` events (a random 3-CNF) OR-ed with `num_tentacles`
/// independent two-level tentacles (low treewidth).
BoolCircuit MakeCoreTentacleCircuit(Rng& rng, uint32_t core_events,
                                    uint32_t num_tentacles,
                                    EventRegistry& registry, GateId* root);

// ---------------------------------------------------------------------------
// The parameterized instance interface
// ---------------------------------------------------------------------------

/// One spec names any reachability-shaped TID the suite generates. The
/// benches and the serving harness construct instances exclusively
/// through this, so a workload mentioned in a BENCH row ("ladder:48",
/// "ktree:64x2") is reproducible from its name alone.
struct InstanceSpec {
  enum class Family { kLadder, kKTree, kDensePath };
  Family family = Family::kLadder;
  uint32_t n = 48;    ///< Rungs (ladder) or vertices (k-tree, path).
  uint32_t k = 2;     ///< k-tree parameter (ignored otherwise).
  uint64_t seed = 8;

  /// "ladder:48", "ktree:64x2", "densepath:32" (seed not encoded).
  std::string Name() const;
};

/// Generates the instance a spec names (seeded from spec.seed).
TidInstance MakeInstance(const InstanceSpec& spec);

/// Parses InstanceSpec::Name() output ("ladder:48", "ktree:64x2",
/// "densepath:32"); nullopt on malformed input.
std::optional<InstanceSpec> ParseInstanceSpec(std::string_view name);

/// The canonical s-t reachability endpoints of a spec's instance
/// (source, target): 0 -> 2n-2 for ladders, 0 -> n-1 otherwise.
std::pair<uint32_t, uint32_t> CanonicalEndpoints(const InstanceSpec& spec);

// ---------------------------------------------------------------------------
// Zipfian query mix (the YCSB-style skewed popularity distribution)
// ---------------------------------------------------------------------------

/// Draws ranks in [0, n) with P(rank = i) proportional to 1/(i+1)^theta
/// — rank 0 is the most popular item. This is the Gray et al. rejection-
/// free inverse-CDF construction YCSB's ZipfianGenerator uses: zeta(n)
/// is precomputed once, each draw is O(1). theta = 0.99 is the YCSB
/// default skew.
class ZipfianGenerator {
 public:
  explicit ZipfianGenerator(uint64_t num_items, double theta = 0.99);

  uint64_t num_items() const { return n_; }
  double theta() const { return theta_; }

  /// The next zipf-distributed rank in [0, num_items).
  uint64_t Next(Rng& rng);

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double zeta2_;
};

/// A serving query mix: which of `num_distinct` prepared queries each
/// arriving request asks, zipf-skewed so a few queries are hot (their
/// plans cache-resident) and the tail is cold. The identity permutation
/// is deliberately NOT applied to ranks: callers that want popularity
/// decorrelated from construction order shuffle their query array.
std::vector<uint32_t> ZipfianQueryMix(uint32_t num_distinct, size_t length,
                                      double theta, uint64_t seed);

}  // namespace workloads
}  // namespace tud

#endif  // TUD_WORKLOADS_WORKLOADS_H_
