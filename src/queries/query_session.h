#ifndef TUD_QUERIES_QUERY_SESSION_H_
#define TUD_QUERIES_QUERY_SESSION_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "automata/automaton_expr.h"
#include "automata/uncertain_tree.h"
#include "incremental/dirty_log.h"
#include "inference/engine.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "queries/reachability.h"
#include "uncertain/pcc_instance.h"

namespace tud {

class CInstance;

/// The compile-once / evaluate-many entry point of the §2.2 pipeline
/// for relational instances: a session owns a pcc-instance, derives its
/// tree encoding (the min-fill nice decomposition of the Gaifman graph)
/// exactly once, and answers any number of lineage/probability queries
/// against it — instead of each query re-deriving the decomposition
/// generically, the pattern the update-maintenance literature (FO+MOD
/// under updates, CQs with free access patterns) builds on.
///
///   QuerySession session(PccInstance::FromCInstance(tid.ToPcInstance()));
///   EngineResult r = session.Query(ConjunctiveQuery::RstPath(r, s, t));
///
/// Probabilities go through the session's ProbabilityEngine (default:
/// the AutoEngine planner; hot loops typically pass
/// JunctionTreeEngine(cache_plans=true) so repeated lineages rerun only
/// the numeric message pass). Lineage gates share the instance's
/// annotation circuit, so repeated queries reuse gates via structural
/// hashing.
///
/// Thread safety is phased, mirroring the compile-once / evaluate-many
/// split: *lineage construction* (CqLineage / UcqLineage /
/// ReachabilityLineage, and the first Decomposition() call) grows the
/// shared circuit and must run single-threaded; once the lineages a
/// workload needs are built, the circuit is read-only and *estimation*
/// is freely concurrent — hand the built gates to a
/// serving::ServingSession (serving/server.h), which fans Probability
/// calls across a worker pool over one shared plan cache. Calling
/// Probability directly from multiple threads is likewise safe iff the
/// session's engine is (JunctionTreeEngine is; see engine.h).
class QuerySession {
 public:
  /// Takes ownership of the instance. `engine` defaults to AutoEngine.
  explicit QuerySession(PccInstance pcc,
                        std::unique_ptr<ProbabilityEngine> engine = nullptr);

  /// Convenience: compile a (p)c-instance and open a session on it.
  static QuerySession FromCInstance(
      const CInstance& ci, std::unique_ptr<ProbabilityEngine> engine = nullptr);

  PccInstance& pcc() { return pcc_; }
  const PccInstance& pcc() const { return pcc_; }
  ProbabilityEngine& engine() { return *engine_; }

  /// The shared tree encoding: built on first use, reused by every
  /// query of this session.
  const DecomposedInstance& Decomposition();

  /// Probability update: overwrites the event's probability and marks
  /// it in the session's dirty log, so incremental consumers
  /// (IncrementalSession / JunctionTreePlan::ExecuteDelta) repropagate
  /// only the affected messages on the next query. Existing lineage
  /// gates, the decomposition, and cached plans all stay valid — a
  /// probability change is purely numeric. Returns false — leaving the
  /// session untouched — for an unknown EventId or a probability
  /// outside [0, 1]: updates arrive from user input, so a malformed one
  /// is an answer, not an abort.
  bool UpdateProbability(EventId event, double probability);

  /// The update log UpdateProbability appends to (consumers keep
  /// generation cursors into it; see incremental/dirty_log.h).
  incremental::DirtyLog& dirty_log() { return dirty_; }

  /// True once Decomposition() (or ReplaceDecomposition) ran.
  bool has_decomposition() const { return decomposition_.has_value(); }

  /// Installs a repaired/rebuilt decomposition (the structural-update
  /// path: IncrementalSession patches the stored elimination order and
  /// swaps the result in; later lineage constructions use it).
  void ReplaceDecomposition(DecomposedInstance decomposition) {
    decomposition_ = std::move(decomposition);
  }

  /// Lineage construction over the shared decomposition.
  GateId CqLineage(const ConjunctiveQuery& query,
                   LineageStats* stats = nullptr);
  GateId UcqLineage(const UnionOfConjunctiveQueries& query,
                    LineageStats* stats = nullptr);
  GateId ReachabilityLineage(RelationId edge_relation, Value source,
                             Value target, LineageStats* stats = nullptr);

  /// Lineages for a whole battery of targets from one source, via the
  /// target-indexed connectivity DP: each chunk's lineages share one
  /// cone instead of per-target independent DP tracks, which is what
  /// lets ProbabilityBatch serve the battery in shared calibrating
  /// passes (see the batch cost model in inference/engine.h). The chunk
  /// size adapts to the instance decomposition's width — up to
  /// kMaxReachabilityTargetsPerDp targets per DP on path-like
  /// encodings, backing off to the single-target DP on wide instances,
  /// where jointly-tracked targets would blow up the DP state count and
  /// with it the emitted circuit's treewidth. Returns one gate per
  /// target, in input order. `stats` accumulates over chunks
  /// (width/nodes from the last chunk).
  std::vector<GateId> ReachabilityLineageBatch(RelationId edge_relation,
                                               Value source,
                                               const std::vector<Value>& targets,
                                               LineageStats* stats = nullptr);

  /// P(lineage | evidence) via the session's engine.
  EngineResult Probability(GateId lineage, const Evidence& evidence = {});

  /// P(lineage_i | evidence) for a whole set of lineages in one engine
  /// call. Engines with a native batch path (JunctionTreeEngine) answer
  /// every lineage over one shared decomposition in a single calibrating
  /// message pass — the amortisation lever for dashboards / question
  /// batteries that issue many queries against one instance.
  std::vector<EngineResult> ProbabilityBatch(
      const std::vector<GateId>& lineages, const Evidence& evidence = {});

  /// Lineage + probability in one call.
  EngineResult Query(const ConjunctiveQuery& query,
                     const Evidence& evidence = {});

 private:
  PccInstance pcc_;
  std::unique_ptr<ProbabilityEngine> engine_;
  std::optional<DecomposedInstance> decomposition_;
  incremental::DirtyLog dirty_;
};

/// The tree-shaped counterpart for automaton-defined queries: owns an
/// uncertain tree, compiles AutomatonExprs (memoised per expression
/// identity), runs them symbolically over the tree — the provenance-run
/// construction, growing the tree's circuit, with gates shared across
/// queries via structural hashing — and estimates probabilities with
/// the session's engine. Together with AutomatonExpr this is the
/// compiled-first surface for the PrXML / uncertain-tree workloads.
///
/// The same phased thread-safety contract as QuerySession applies:
/// Compiled()/Lineage() grow the memo and the tree's circuit and are
/// single-threaded; once every query's lineage gate exists, concurrent
/// estimation against the (now read-only) circuit is safe — see
/// serving::ServingSession::Over(TreeQuerySession&).
class TreeQuerySession {
 public:
  /// `events` is the registry the tree's guard circuit reads (e.g. the
  /// owning PrXmlDocument's); it must outlive the session.
  TreeQuerySession(UncertainBinaryTree tree, const EventRegistry& events,
                   std::unique_ptr<ProbabilityEngine> engine = nullptr);

  UncertainBinaryTree& tree() { return tree_; }
  const UncertainBinaryTree& tree() const { return tree_; }
  const EventRegistry& events() const { return *events_; }
  ProbabilityEngine& engine() { return *engine_; }

  /// The compiled form of `expr` (compiled on first use per expression
  /// node; compiled-to-compiled, never through TreeAutomaton).
  const CompiledAutomaton& Compiled(const AutomatonExpr& expr);

  /// Lineage of "the automaton accepts this world" over the tree's
  /// circuit.
  GateId Lineage(const AutomatonExpr& expr);

  /// P(expr accepts | evidence) via the session's engine.
  EngineResult Probability(const AutomatonExpr& expr,
                           const Evidence& evidence = {});

  /// Batched counterpart: lineages for every expression first (all
  /// grown into the tree's shared circuit), then one batched engine
  /// call over the set of roots.
  std::vector<EngineResult> ProbabilityBatch(
      const std::vector<AutomatonExpr>& exprs, const Evidence& evidence = {});

 private:
  UncertainBinaryTree tree_;
  const EventRegistry* events_;
  std::unique_ptr<ProbabilityEngine> engine_;
  // Memoised compilations, keyed by expression-node identity. The kept
  // expression copies pin the nodes so a key cannot be recycled by a
  // later allocation while the cache entry is alive.
  std::unordered_map<uintptr_t, CompiledAutomaton> compiled_;
  std::vector<AutomatonExpr> exprs_kept_;
};

}  // namespace tud

#endif  // TUD_QUERIES_QUERY_SESSION_H_
