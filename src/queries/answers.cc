#include "queries/answers.h"

#include <algorithm>
#include <functional>

#include "queries/lineage.h"
#include "util/check.h"

namespace tud {

namespace {

// Enumerates all homomorphisms of the query into `instance`, reporting
// the full variable assignment for each.
void AllHomomorphisms(const ConjunctiveQuery& query, const Instance& instance,
                      size_t index, std::vector<Value>& assignment,
                      std::vector<bool>& assigned,
                      const std::function<void(const std::vector<Value>&)>& fn) {
  if (index == query.NumAtoms()) {
    fn(assignment);
    return;
  }
  const QueryAtom& atom = query.atom(index);
  for (const Fact& fact : instance.facts()) {
    if (fact.relation != atom.relation ||
        fact.args.size() != atom.terms.size()) {
      continue;
    }
    std::vector<VarId> newly_bound;
    bool ok = true;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (!t.is_var) {
        if (t.constant != fact.args[i]) {
          ok = false;
          break;
        }
        continue;
      }
      if (assigned[t.var]) {
        if (assignment[t.var] != fact.args[i]) {
          ok = false;
          break;
        }
      } else {
        assigned[t.var] = true;
        assignment[t.var] = fact.args[i];
        newly_bound.push_back(t.var);
      }
    }
    if (ok) {
      AllHomomorphisms(query, instance, index + 1, assignment, assigned, fn);
    }
    for (VarId v : newly_bound) assigned[v] = false;
  }
}

}  // namespace

std::set<std::vector<Value>> EvaluateAnswers(
    const ConjunctiveQuery& query, const std::vector<VarId>& free_vars,
    const Instance& instance) {
  for (VarId v : free_vars) TUD_CHECK_LT(v, query.NumVars());
  std::set<std::vector<Value>> answers;
  std::vector<Value> assignment(query.NumVars(), 0);
  std::vector<bool> assigned(query.NumVars(), false);
  AllHomomorphisms(query, instance, 0, assignment, assigned,
                   [&](const std::vector<Value>& hom) {
                     std::vector<Value> tuple;
                     tuple.reserve(free_vars.size());
                     for (VarId v : free_vars) tuple.push_back(hom[v]);
                     answers.insert(std::move(tuple));
                   });
  return answers;
}

ConjunctiveQuery BindVariables(const ConjunctiveQuery& query,
                               const std::vector<VarId>& vars,
                               const std::vector<Value>& values) {
  TUD_CHECK_EQ(vars.size(), values.size());
  ConjunctiveQuery bound;
  for (const QueryAtom& atom : query.atoms()) {
    std::vector<Term> terms;
    terms.reserve(atom.terms.size());
    for (const Term& t : atom.terms) {
      if (t.is_var) {
        auto it = std::find(vars.begin(), vars.end(), t.var);
        if (it != vars.end()) {
          terms.push_back(Term::C(values[it - vars.begin()]));
          continue;
        }
      }
      terms.push_back(t);
    }
    bound.AddAtom(atom.relation, std::move(terms));
  }
  return bound;
}

std::vector<AnswerLineage> ComputeAnswerLineages(
    const ConjunctiveQuery& query, const std::vector<VarId>& free_vars,
    PccInstance& pcc) {
  // Candidates: answers over the support instance (all facts present).
  std::set<std::vector<Value>> candidates =
      EvaluateAnswers(query, free_vars, pcc.instance());

  // Reuse one decomposition across all candidates.
  DecomposedInstance dec = DecomposeInstance(pcc.instance());
  std::vector<AnswerLineage> result;
  for (const std::vector<Value>& tuple : candidates) {
    // Renumber the bound query's variables densely (the lineage DP
    // requires every variable to occur; binding removes some).
    ConjunctiveQuery bound = BindVariables(query, free_vars, tuple);
    std::vector<VarId> dense(query.NumVars(), UINT32_MAX);
    ConjunctiveQuery renumbered;
    uint32_t next = 0;
    for (const QueryAtom& atom : bound.atoms()) {
      std::vector<Term> terms;
      for (const Term& t : atom.terms) {
        if (t.is_var) {
          if (dense[t.var] == UINT32_MAX) dense[t.var] = next++;
          terms.push_back(Term::V(dense[t.var]));
        } else {
          terms.push_back(t);
        }
      }
      renumbered.AddAtom(atom.relation, std::move(terms));
    }
    GateId gate = ComputeCqLineageOnDecomposition(renumbered, pcc, dec.ntd,
                                                  dec.facts_at_node);
    if (pcc.circuit().kind(gate) == GateKind::kConst &&
        !pcc.circuit().const_value(gate)) {
      continue;  // Impossible answer (cannot happen for support answers).
    }
    result.push_back(AnswerLineage{tuple, gate});
  }
  return result;
}

}  // namespace tud
