#ifndef TUD_QUERIES_ANSWERS_H_
#define TUD_QUERIES_ANSWERS_H_

#include <set>
#include <vector>

#include "circuits/bool_circuit.h"
#include "queries/conjunctive_query.h"
#include "uncertain/pcc_instance.h"

namespace tud {

/// Non-Boolean query evaluation: answers with their lineage.
///
/// "Querying uncertain data implies that, in general, query results will
/// themselves be uncertain" (§1): the answer to a CQ with free variables
/// on a pcc-instance is a set of candidate tuples, each annotated by a
/// lineage gate that is true in exactly the worlds where the tuple is an
/// answer — i.e., the query result is itself a pcc-relation over the
/// same circuit, which is what makes results composable and usable for
/// possibility / certainty / probability per answer.

/// One answer tuple and its lineage gate.
struct AnswerLineage {
  std::vector<Value> tuple;  ///< Values of `free_vars`, in order.
  GateId lineage = kInvalidGate;
};

/// All answers of `query` with designated `free_vars` over the *support*
/// of the pcc-instance (every fact assumed present), each with its exact
/// lineage: the tuple is an answer in a world iff its gate is true.
/// Tuples whose lineage folds to constant-false are omitted. Candidates
/// are found by naive evaluation on the support; each candidate's
/// lineage is then computed by the Theorem-1/2 DP with the free
/// variables substituted by constants.
std::vector<AnswerLineage> ComputeAnswerLineages(
    const ConjunctiveQuery& query, const std::vector<VarId>& free_vars,
    PccInstance& pcc);

/// All assignments of `free_vars` under which the query holds on a
/// certain instance (the per-world ground truth for the above).
std::set<std::vector<Value>> EvaluateAnswers(
    const ConjunctiveQuery& query, const std::vector<VarId>& free_vars,
    const Instance& instance);

/// Substitutes constants for the given variables of a query (used to
/// close free variables before Boolean lineage computation).
ConjunctiveQuery BindVariables(const ConjunctiveQuery& query,
                               const std::vector<VarId>& vars,
                               const std::vector<Value>& values);

}  // namespace tud

#endif  // TUD_QUERIES_ANSWERS_H_
