#include "queries/query_parser.h"

#include <cctype>
#include <unordered_map>
#include <vector>

namespace tud {

namespace {

class Parser {
 public:
  Parser(std::string_view text, const Schema& schema, Dictionary& dictionary)
      : text_(text), schema_(schema), dictionary_(dictionary) {}

  std::optional<ConjunctiveQuery> Run() {
    ConjunctiveQuery query;
    if (!ParseAtom(query)) return std::nullopt;
    SkipSpace();
    while (pos_ < text_.size()) {
      if (text_[pos_] != ',') return std::nullopt;
      ++pos_;
      if (!ParseAtom(query)) return std::nullopt;
      SkipSpace();
    }
    return query;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  std::optional<std::string> ParseIdentifier() {
    SkipSpace();
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '?') ++pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    return std::string(text_.substr(start, pos_ - start));
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ParseAtom(ConjunctiveQuery& query) {
    auto name = ParseIdentifier();
    if (!name.has_value()) return false;
    auto relation = schema_.Find(*name);
    if (!relation.has_value()) return false;
    if (!Consume('(')) return false;
    std::vector<Term> terms;
    if (!Consume(')')) {
      while (true) {
        auto term_text = ParseIdentifier();
        if (!term_text.has_value()) return false;
        terms.push_back(MakeTerm(*term_text));
        if (Consume(')')) break;
        if (!Consume(',')) return false;
      }
    }
    if (terms.size() != schema_.arity(*relation)) return false;
    query.AddAtom(*relation, std::move(terms));
    return true;
  }

  Term MakeTerm(const std::string& text) {
    const bool is_variable =
        text[0] == '?' || std::isupper(static_cast<unsigned char>(text[0]));
    if (!is_variable) {
      return Term::C(dictionary_.Intern(text));
    }
    auto it = variables_.find(text);
    if (it == variables_.end()) {
      it = variables_
               .emplace(text, static_cast<VarId>(variables_.size()))
               .first;
    }
    return Term::V(it->second);
  }

  std::string_view text_;
  const Schema& schema_;
  Dictionary& dictionary_;
  std::unordered_map<std::string, VarId> variables_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<ConjunctiveQuery> ParseConjunctiveQuery(
    std::string_view text, const Schema& schema, Dictionary& dictionary) {
  return Parser(text, schema, dictionary).Run();
}

}  // namespace tud
