#ifndef TUD_QUERIES_LINEAGE_H_
#define TUD_QUERIES_LINEAGE_H_

#include <cstddef>
#include <vector>

#include "circuits/bool_circuit.h"
#include "queries/conjunctive_query.h"
#include "treedec/nice_decomposition.h"
#include "uncertain/pcc_instance.h"

namespace tud {

/// Diagnostics of one lineage construction.
struct LineageStats {
  int decomposition_width = -1;  ///< Width of the instance decomposition.
  size_t num_nice_nodes = 0;
  size_t total_states = 0;       ///< Sum of DP states over all nodes.
  size_t max_states_per_node = 0;
};

/// Lineage of a Boolean conjunctive query over a pcc-instance, computed
/// by dynamic programming over a nice tree decomposition of the
/// instance's Gaifman graph — the engine behind Theorems 1 and 2.
///
/// The DP state at a decomposition node is (μ, S): a partial mapping μ
/// from query variables to {current bag elements, forgotten, unassigned}
/// and the set S of atoms already satisfied by facts used below. Each
/// (node, state) pair becomes one OR gate of the pcc-instance's circuit;
/// using a fact ANDs in that fact's annotation gate. The returned gate is
/// true in exactly the possible worlds where the query holds. Because
/// Boolean lineage is idempotent, overlapping derivations are harmless
/// (and the construction is sound for absorptive semirings, §2.2).
///
/// For a fixed query and bounded decomposition width the state count per
/// node is a constant, so the construction is linear in the instance —
/// the PTIME/linear-time claim of the theorems.
///
/// Requirements: every query variable occurs in some atom; at most 8
/// variables and 16 atoms (checked) — data complexity is the paper's
/// regime, combined complexity is explicitly out of scope (§2.2 end).
GateId ComputeCqLineage(const ConjunctiveQuery& query, PccInstance& pcc,
                        LineageStats* stats = nullptr);

/// OR of the disjuncts' lineages (computed over one shared
/// decomposition).
GateId ComputeUcqLineage(const UnionOfConjunctiveQueries& query,
                         PccInstance& pcc, LineageStats* stats = nullptr);

/// Low-level entry point: the caller provides the nice decomposition of
/// the instance's Gaifman graph and the assignment of each fact to a
/// nice node whose bag contains the fact's elements.
GateId ComputeCqLineageOnDecomposition(
    const ConjunctiveQuery& query, PccInstance& pcc,
    const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats = nullptr);

/// Builds the min-fill nice decomposition of the instance's Gaifman
/// graph and the fact-to-node assignment used by ComputeCqLineage;
/// exposed so benchmarks can reuse one decomposition across queries.
struct DecomposedInstance {
  NiceTreeDecomposition ntd;
  std::vector<std::vector<FactId>> facts_at_node;
  int width = -1;
  /// The elimination order the decomposition was mechanically derived
  /// from — the handle the incremental layer repairs through: patching
  /// this order and re-running FromEliminationOrder skips the expensive
  /// order *search*, which is where DecomposeInstance spends its time.
  std::vector<VertexId> elimination_order;
};
DecomposedInstance DecomposeInstance(const Instance& instance);

/// As above from a caller-provided elimination order over the current
/// domain (order.size() == instance.DomainSize()) — the decomposition
/// repair path: only the mechanical order-to-decomposition derivation
/// and the fact assignment run, no order search.
DecomposedInstance DecomposeInstanceWithOrder(const Instance& instance,
                                              std::vector<VertexId> order);

}  // namespace tud

#endif  // TUD_QUERIES_LINEAGE_H_
