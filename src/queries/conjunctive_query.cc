#include "queries/conjunctive_query.h"

#include <algorithm>

#include "util/check.h"

namespace tud {

void ConjunctiveQuery::AddAtom(RelationId relation, std::vector<Term> terms) {
  for (const Term& t : terms) {
    if (t.is_var) num_vars_ = std::max(num_vars_, t.var + 1);
  }
  atoms_.push_back(QueryAtom{relation, std::move(terms)});
}

namespace {

// Backtracking join: extend the partial assignment atom by atom.
bool Backtrack(const std::vector<QueryAtom>& atoms, size_t index,
               const Instance& instance, std::vector<Value>& assignment,
               std::vector<bool>& assigned) {
  if (index == atoms.size()) return true;
  const QueryAtom& atom = atoms[index];
  for (const Fact& fact : instance.facts()) {
    if (fact.relation != atom.relation) continue;
    if (fact.args.size() != atom.terms.size()) continue;
    // Try to unify the atom with this fact.
    std::vector<VarId> newly_bound;
    bool ok = true;
    for (size_t i = 0; i < atom.terms.size(); ++i) {
      const Term& t = atom.terms[i];
      if (!t.is_var) {
        if (t.constant != fact.args[i]) {
          ok = false;
          break;
        }
        continue;
      }
      if (assigned[t.var]) {
        if (assignment[t.var] != fact.args[i]) {
          ok = false;
          break;
        }
      } else {
        assigned[t.var] = true;
        assignment[t.var] = fact.args[i];
        newly_bound.push_back(t.var);
      }
    }
    if (ok && Backtrack(atoms, index + 1, instance, assignment, assigned)) {
      return true;
    }
    for (VarId v : newly_bound) assigned[v] = false;
  }
  return false;
}

}  // namespace

bool ConjunctiveQuery::EvaluateBool(const Instance& instance) const {
  std::vector<Value> assignment(num_vars_, 0);
  std::vector<bool> assigned(num_vars_, false);
  return Backtrack(atoms_, 0, instance, assignment, assigned);
}

ConjunctiveQuery ConjunctiveQuery::RstPath(RelationId r, RelationId s,
                                           RelationId t) {
  ConjunctiveQuery q;
  q.AddAtom(r, {Term::V(0)});
  q.AddAtom(s, {Term::V(0), Term::V(1)});
  q.AddAtom(t, {Term::V(1)});
  return q;
}

std::string ConjunctiveQuery::ToString(const Schema& schema) const {
  std::string out = "∃ ";
  for (VarId v = 0; v < num_vars_; ++v) {
    if (v > 0) out += ",";
    out += "x" + std::to_string(v);
  }
  out += ": ";
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " ∧ ";
    out += schema.name(atoms_[i].relation) + "(";
    for (size_t j = 0; j < atoms_[i].terms.size(); ++j) {
      if (j > 0) out += ",";
      const Term& t = atoms_[i].terms[j];
      out += t.is_var ? "x" + std::to_string(t.var)
                      : "#" + std::to_string(t.constant);
    }
    out += ")";
  }
  return out;
}

bool UnionOfConjunctiveQueries::EvaluateBool(const Instance& instance) const {
  for (const ConjunctiveQuery& q : disjuncts_) {
    if (q.EvaluateBool(instance)) return true;
  }
  return false;
}

}  // namespace tud
