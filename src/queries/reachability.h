#ifndef TUD_QUERIES_REACHABILITY_H_
#define TUD_QUERIES_REACHABILITY_H_

#include "circuits/bool_circuit.h"
#include "queries/lineage.h"
#include "relational/instance.h"
#include "uncertain/pcc_instance.h"

namespace tud {

/// Lineage of the Boolean query "target is reachable from source through
/// present `edge_relation` facts (read as undirected edges)" on a
/// pcc-instance.
///
/// Reachability is MSO-definable but not expressible as a (U)CQ, so this
/// exercises the part of Theorem 1-2's scope that goes beyond
/// conjunctive queries ("for any query that can be compiled to an
/// automaton: beyond CQs, this covers MSO..."). The construction is the
/// classic Courcelle-style connectivity DP over a nice tree
/// decomposition: the state tracks the partition of the current bag
/// into connected blocks of used edges, plus per-block flags recording a
/// connection to the (possibly forgotten) source / target. Each
/// (node, state) pair becomes an OR gate; using an edge fact ANDs in its
/// annotation gate and merges blocks. For bounded width the state count
/// per node is a constant (Bell numbers of the bag size), so the
/// construction is linear in the instance.
///
/// The returned gate is true in exactly the possible worlds where a path
/// of present edges connects `source` to `target` (true trivially if
/// source == target).
///
/// The DP tables are flat: states are packed into two words (4 bits per
/// bag position for the partition, plus the flag masks and the done bit)
/// and interned in an open-addressed table, replacing the former
/// per-node unordered_map<RState, GateId> — the same dense-table
/// treatment the compiled automaton engine uses.
GateId ComputeReachabilityLineage(PccInstance& pcc, RelationId edge_relation,
                                  Value source, Value target,
                                  LineageStats* stats = nullptr);

/// Low-level entry point: the caller provides the nice decomposition of
/// the instance's Gaifman graph and the fact-to-node assignment (see
/// DecomposeInstance), so many queries against one instance can share
/// one decomposition — the QuerySession reuse path.
GateId ComputeReachabilityLineageOnDecomposition(
    PccInstance& pcc, RelationId edge_relation, Value source, Value target,
    const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats = nullptr);

/// At most this many targets per target-indexed DP call: the per-target
/// block assignment packs into 4 bits per target of one key word.
/// QuerySession::ReachabilityLineageBatch chunks larger batteries.
inline constexpr size_t kMaxReachabilityTargetsPerDp = 16;

/// Target-indexed batch variant: lineages of "target_i reachable from
/// `source`" for a whole battery of targets out of ONE connectivity DP.
///
/// Running the single-target DP once per target yields circuits that
/// share only their event variables, so the union cone of a battery is
/// multi-track — its decomposition width is roughly the per-target
/// widths *added*, which forces the batch planner's per-root fallback
/// (ROADMAP: width 33 vs 10 per root on a ladder). Here one DP carries
/// all targets: the state is the bag partition with a source flag per
/// block plus, per still-pending target, the block its component
/// currently touches (4 bits each, hence the 16-target cap). There is no
/// absorbing done state — when a transition first merges a pending
/// target's block with the source's, the derivation gate is emitted as a
/// *witness* into that target's OR accumulator and the target is
/// dropped from the state (monotonicity makes the OR of witnesses the
/// exact lineage), so the state space never indexes the 2^T set of
/// already-connected targets. The resulting battery of gates shares one
/// narrow cone, and `EstimateBatch` serves it in a single shared pass.
///
/// Returns one gate per entry of `targets`, in input order (duplicates
/// allowed; `source == target` yields const-true, out-of-domain targets
/// const-false). Requires `targets.size() <= kMaxReachabilityTargetsPerDp`
/// non-trivial distinct targets.
std::vector<GateId> ComputeMultiTargetReachabilityLineageOnDecomposition(
    PccInstance& pcc, RelationId edge_relation, Value source,
    const std::vector<Value>& targets, const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats = nullptr);

/// Convenience wrapper deriving the decomposition itself (tests, one-off
/// batteries).
std::vector<GateId> ComputeMultiTargetReachabilityLineage(
    PccInstance& pcc, RelationId edge_relation, Value source,
    const std::vector<Value>& targets, LineageStats* stats = nullptr);

/// Ground-truth evaluation on a certain instance (BFS over present
/// edges); used by tests and the per-world cross-validation.
bool EvaluateReachability(const Instance& instance, RelationId edge_relation,
                          Value source, Value target);

}  // namespace tud

#endif  // TUD_QUERIES_REACHABILITY_H_
