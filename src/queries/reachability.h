#ifndef TUD_QUERIES_REACHABILITY_H_
#define TUD_QUERIES_REACHABILITY_H_

#include "circuits/bool_circuit.h"
#include "queries/lineage.h"
#include "relational/instance.h"
#include "uncertain/pcc_instance.h"

namespace tud {

/// Lineage of the Boolean query "target is reachable from source through
/// present `edge_relation` facts (read as undirected edges)" on a
/// pcc-instance.
///
/// Reachability is MSO-definable but not expressible as a (U)CQ, so this
/// exercises the part of Theorem 1-2's scope that goes beyond
/// conjunctive queries ("for any query that can be compiled to an
/// automaton: beyond CQs, this covers MSO..."). The construction is the
/// classic Courcelle-style connectivity DP over a nice tree
/// decomposition: the state tracks the partition of the current bag
/// into connected blocks of used edges, plus per-block flags recording a
/// connection to the (possibly forgotten) source / target. Each
/// (node, state) pair becomes an OR gate; using an edge fact ANDs in its
/// annotation gate and merges blocks. For bounded width the state count
/// per node is a constant (Bell numbers of the bag size), so the
/// construction is linear in the instance.
///
/// The returned gate is true in exactly the possible worlds where a path
/// of present edges connects `source` to `target` (true trivially if
/// source == target).
///
/// The DP tables are flat: states are packed into two words (4 bits per
/// bag position for the partition, plus the flag masks and the done bit)
/// and interned in an open-addressed table, replacing the former
/// per-node unordered_map<RState, GateId> — the same dense-table
/// treatment the compiled automaton engine uses.
GateId ComputeReachabilityLineage(PccInstance& pcc, RelationId edge_relation,
                                  Value source, Value target,
                                  LineageStats* stats = nullptr);

/// Low-level entry point: the caller provides the nice decomposition of
/// the instance's Gaifman graph and the fact-to-node assignment (see
/// DecomposeInstance), so many queries against one instance can share
/// one decomposition — the QuerySession reuse path.
GateId ComputeReachabilityLineageOnDecomposition(
    PccInstance& pcc, RelationId edge_relation, Value source, Value target,
    const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats = nullptr);

/// Ground-truth evaluation on a certain instance (BFS over present
/// edges); used by tests and the per-world cross-validation.
bool EvaluateReachability(const Instance& instance, RelationId edge_relation,
                          Value source, Value target);

}  // namespace tud

#endif  // TUD_QUERIES_REACHABILITY_H_
