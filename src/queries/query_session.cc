#include "queries/query_session.h"

#include <algorithm>
#include <utility>

#include "automata/provenance_run.h"
#include "uncertain/c_instance.h"
#include "util/check.h"

namespace tud {

QuerySession::QuerySession(PccInstance pcc,
                           std::unique_ptr<ProbabilityEngine> engine)
    : pcc_(std::move(pcc)),
      engine_(engine != nullptr ? std::move(engine) : MakeAutoEngine()) {}

QuerySession QuerySession::FromCInstance(
    const CInstance& ci, std::unique_ptr<ProbabilityEngine> engine) {
  return QuerySession(PccInstance::FromCInstance(ci), std::move(engine));
}

const DecomposedInstance& QuerySession::Decomposition() {
  if (!decomposition_.has_value()) {
    decomposition_ = DecomposeInstance(pcc_.instance());
  }
  return *decomposition_;
}

GateId QuerySession::CqLineage(const ConjunctiveQuery& query,
                               LineageStats* stats) {
  const DecomposedInstance& dec = Decomposition();
  return ComputeCqLineageOnDecomposition(query, pcc_, dec.ntd,
                                         dec.facts_at_node, stats);
}

GateId QuerySession::UcqLineage(const UnionOfConjunctiveQueries& query,
                                LineageStats* stats) {
  const DecomposedInstance& dec = Decomposition();
  std::vector<GateId> parts;
  parts.reserve(query.disjuncts().size());
  LineageStats accumulated;
  for (const ConjunctiveQuery& cq : query.disjuncts()) {
    LineageStats one;
    parts.push_back(ComputeCqLineageOnDecomposition(cq, pcc_, dec.ntd,
                                                    dec.facts_at_node, &one));
    accumulated.decomposition_width = one.decomposition_width;
    accumulated.num_nice_nodes = one.num_nice_nodes;
    accumulated.total_states += one.total_states;
    accumulated.max_states_per_node =
        std::max(accumulated.max_states_per_node, one.max_states_per_node);
  }
  if (stats != nullptr) *stats = accumulated;
  return pcc_.circuit().AddOr(std::move(parts));
}

GateId QuerySession::ReachabilityLineage(RelationId edge_relation,
                                         Value source, Value target,
                                         LineageStats* stats) {
  const DecomposedInstance& dec = Decomposition();
  return ComputeReachabilityLineageOnDecomposition(
      pcc_, edge_relation, source, target, dec.ntd, dec.facts_at_node,
      stats);
}

std::vector<GateId> QuerySession::ReachabilityLineageBatch(
    RelationId edge_relation, Value source, const std::vector<Value>& targets,
    LineageStats* stats) {
  const DecomposedInstance& dec = Decomposition();
  if (stats != nullptr) *stats = LineageStats{};
  std::vector<GateId> result;
  result.reserve(targets.size());
  // The joint DP tracks, per state, a block assignment for every
  // pending target — its state count (and with it the treewidth of the
  // emitted lineage circuit, which is what the probability pass pays
  // for) grows roughly like (blocks+1)^pending, with the block count
  // bounded by the instance decomposition's width. Batching many
  // targets per DP is therefore only profitable on near-path encodings;
  // on wider instances the chunk size backs off toward the
  // single-target DP, whose circuits stay narrow.
  const int width = dec.ntd.Width();
  size_t per_dp = kMaxReachabilityTargetsPerDp;
  if (width == 2) {
    per_dp = 4;
  } else if (width == 3) {
    per_dp = 2;
  } else if (width >= 4) {
    per_dp = 1;
  }
  // Chunk by *distinct non-trivial* targets: trivial entries (source
  // itself, out-of-domain values) and duplicates do not consume DP
  // capacity.
  size_t begin = 0;
  while (begin < targets.size()) {
    std::vector<Value> chunk;
    std::vector<Value> distinct;
    size_t end = begin;
    const size_t domain = pcc_.instance().DomainSize();
    while (end < targets.size()) {
      const Value t = targets[end];
      const bool trivial = t == source || t >= domain || source >= domain;
      if (!trivial &&
          std::find(distinct.begin(), distinct.end(), t) == distinct.end()) {
        if (distinct.size() == per_dp) break;
        distinct.push_back(t);
      }
      chunk.push_back(t);
      ++end;
    }
    LineageStats chunk_stats;
    std::vector<GateId> gates =
        ComputeMultiTargetReachabilityLineageOnDecomposition(
            pcc_, edge_relation, source, chunk, dec.ntd, dec.facts_at_node,
            stats != nullptr ? &chunk_stats : nullptr);
    result.insert(result.end(), gates.begin(), gates.end());
    if (stats != nullptr) {
      stats->decomposition_width = chunk_stats.decomposition_width;
      stats->num_nice_nodes = chunk_stats.num_nice_nodes;
      stats->total_states += chunk_stats.total_states;
      stats->max_states_per_node = std::max(stats->max_states_per_node,
                                            chunk_stats.max_states_per_node);
    }
    begin = end;
  }
  return result;
}

bool QuerySession::UpdateProbability(EventId event, double probability) {
  if (!pcc_.events().TrySetProbability(event, probability)) return false;
  dirty_.Mark(event);
  return true;
}

EngineResult QuerySession::Probability(GateId lineage,
                                       const Evidence& evidence) {
  return engine_->Estimate(pcc_.circuit(), lineage, pcc_.events(), evidence);
}

std::vector<EngineResult> QuerySession::ProbabilityBatch(
    const std::vector<GateId>& lineages, const Evidence& evidence) {
  return engine_->EstimateBatch(pcc_.circuit(), lineages, pcc_.events(),
                                evidence);
}

EngineResult QuerySession::Query(const ConjunctiveQuery& query,
                                 const Evidence& evidence) {
  return Probability(CqLineage(query), evidence);
}

// ---------------------------------------------------------------------------
// TreeQuerySession
// ---------------------------------------------------------------------------

TreeQuerySession::TreeQuerySession(UncertainBinaryTree tree,
                                   const EventRegistry& events,
                                   std::unique_ptr<ProbabilityEngine> engine)
    : tree_(std::move(tree)),
      events_(&events),
      engine_(engine != nullptr ? std::move(engine) : MakeAutoEngine()) {}

const CompiledAutomaton& TreeQuerySession::Compiled(
    const AutomatonExpr& expr) {
  auto it = compiled_.find(expr.CacheKey());
  if (it == compiled_.end()) {
    exprs_kept_.push_back(expr);  // Pin the node: see the member comment.
    it = compiled_.emplace(expr.CacheKey(), expr.Compile()).first;
  }
  return it->second;
}

GateId TreeQuerySession::Lineage(const AutomatonExpr& expr) {
  return ProvenanceRun(Compiled(expr), tree_);
}

EngineResult TreeQuerySession::Probability(const AutomatonExpr& expr,
                                           const Evidence& evidence) {
  return engine_->Estimate(tree_.circuit(), Lineage(expr), *events_,
                           evidence);
}

std::vector<EngineResult> TreeQuerySession::ProbabilityBatch(
    const std::vector<AutomatonExpr>& exprs, const Evidence& evidence) {
  std::vector<GateId> lineages;
  lineages.reserve(exprs.size());
  for (const AutomatonExpr& expr : exprs) lineages.push_back(Lineage(expr));
  return engine_->EstimateBatch(tree_.circuit(), lineages, *events_,
                                evidence);
}

}  // namespace tud
