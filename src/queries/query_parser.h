#ifndef TUD_QUERIES_QUERY_PARSER_H_
#define TUD_QUERIES_QUERY_PARSER_H_

#include <optional>
#include <string>
#include <string_view>

#include "queries/conjunctive_query.h"
#include "relational/dictionary.h"

namespace tud {

/// Parses a Boolean conjunctive query from text, e.g.
///
///   "R(x), S(x, y), T(y)"          — comma-separated atoms
///   "Trip(cdg, Stop) , Trip(Stop, pdx)"
///
/// Terms starting with a lowercase letter are constants (interned in
/// `dictionary`); terms starting with an uppercase letter or '?' are
/// variables (numbered in order of first occurrence). Relation names
/// must exist in `schema` with matching arity. Returns nullopt on any
/// syntax, schema, or arity error.
std::optional<ConjunctiveQuery> ParseConjunctiveQuery(
    std::string_view text, const Schema& schema, Dictionary& dictionary);

}  // namespace tud

#endif  // TUD_QUERIES_QUERY_PARSER_H_
