#include "queries/lineage.h"

#include <algorithm>
#include <unordered_map>

#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "treedec/tree_decomposition.h"
#include "util/check.h"

namespace tud {

namespace {

// Sentinel codes for μ entries (element values are < kForgottenCode).
constexpr uint32_t kUnassignedCode = 0xFFFFFFFF;
constexpr uint32_t kForgottenCode = 0xFFFFFFFE;

// A DP state: μ (per query variable) and the satisfied-atom bitmask.
struct DpState {
  std::vector<uint32_t> mu;
  uint32_t satisfied = 0;

  bool operator==(const DpState&) const = default;
};

struct DpStateHash {
  size_t operator()(const DpState& s) const {
    size_t h = s.satisfied;
    for (uint32_t m : s.mu) h = h * 0x9e3779b97f4a7c15ULL + m;
    return h;
  }
};

using StateMap = std::unordered_map<DpState, GateId, DpStateHash>;

// Merges (state, gate) into the map, OR-ing gates of equal states.
void Merge(StateMap& map, BoolCircuit& circuit, DpState state, GateId gate) {
  auto [it, inserted] = map.try_emplace(std::move(state), gate);
  if (!inserted) it->second = circuit.AddOr(it->second, gate);
}

}  // namespace

GateId ComputeCqLineageOnDecomposition(
    const ConjunctiveQuery& query, PccInstance& pcc,
    const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats) {
  const uint32_t num_vars = query.NumVars();
  const uint32_t num_atoms = static_cast<uint32_t>(query.NumAtoms());
  TUD_CHECK_LE(num_vars, 8u) << "fixed-query regime: too many variables";
  TUD_CHECK_LE(num_atoms, 16u) << "fixed-query regime: too many atoms";
  TUD_CHECK_EQ(facts_at_node.size(), ntd.NumNodes());
  BoolCircuit& circuit = pcc.circuit();

  // Every variable must occur in some atom, else the query is degenerate
  // (an unused existential variable) and the DP below cannot witness it.
  std::vector<uint32_t> atoms_of_var(num_vars, 0);
  for (uint32_t a = 0; a < num_atoms; ++a) {
    for (const Term& t : query.atom(a).terms) {
      if (t.is_var) atoms_of_var[t.var] |= (1u << a);
    }
  }
  for (uint32_t v = 0; v < num_vars; ++v) {
    TUD_CHECK_NE(atoms_of_var[v], 0u)
        << "query variable x" << v << " occurs in no atom";
  }
  const uint32_t full_mask =
      num_atoms == 32 ? 0xFFFFFFFFu : ((1u << num_atoms) - 1);

  std::vector<StateMap> table(ntd.NumNodes());
  if (stats != nullptr) {
    stats->decomposition_width = ntd.Width();
    stats->num_nice_nodes = ntd.NumNodes();
    stats->total_states = 0;
    stats->max_states_per_node = 0;
  }

  for (NiceNodeId n = 0; n < ntd.NumNodes(); ++n) {
    StateMap& states = table[n];
    switch (ntd.kind(n)) {
      case NiceNodeKind::kLeaf: {
        DpState initial;
        initial.mu.assign(num_vars, kUnassignedCode);
        Merge(states, circuit, std::move(initial), circuit.AddConst(true));
        break;
      }
      case NiceNodeKind::kIntroduce: {
        const uint32_t element = ntd.vertex(n);
        StateMap& child = table[ntd.children(n)[0]];
        for (auto& [state, gate] : child) {
          // Any subset of the still-unassigned variables may be mapped
          // to the introduced element.
          std::vector<uint32_t> unassigned;
          for (uint32_t v = 0; v < num_vars; ++v) {
            if (state.mu[v] == kUnassignedCode) unassigned.push_back(v);
          }
          const uint32_t subsets = 1u << unassigned.size();
          for (uint32_t mask = 0; mask < subsets; ++mask) {
            DpState next = state;
            for (size_t i = 0; i < unassigned.size(); ++i) {
              if ((mask >> i) & 1) next.mu[unassigned[i]] = element;
            }
            Merge(states, circuit, std::move(next), gate);
          }
        }
        child.clear();
        break;
      }
      case NiceNodeKind::kForget: {
        const uint32_t element = ntd.vertex(n);
        StateMap& child = table[ntd.children(n)[0]];
        for (auto& [state, gate] : child) {
          DpState next = state;
          bool dead = false;
          for (uint32_t v = 0; v < num_vars; ++v) {
            if (next.mu[v] == element) {
              next.mu[v] = kForgottenCode;
              // A forgotten variable can never be matched against a
              // fact, so states with pending atoms on it are dead.
              if ((atoms_of_var[v] & ~state.satisfied) != 0) {
                dead = true;
                break;
              }
            }
          }
          if (dead) continue;
          Merge(states, circuit, std::move(next), gate);
        }
        child.clear();
        break;
      }
      case NiceNodeKind::kJoin: {
        StateMap& left = table[ntd.children(n)[0]];
        StateMap& right = table[ntd.children(n)[1]];
        for (const auto& [sl, gl] : left) {
          for (const auto& [sr, gr] : right) {
            // Combine μ entries: both branches made their mapping
            // decisions independently; they must agree on current bag
            // elements, and a variable forgotten on one side must be
            // unassigned on the other (its element never occurs there).
            DpState next;
            next.mu.resize(num_vars);
            bool compatible = true;
            for (uint32_t v = 0; v < num_vars; ++v) {
              uint32_t a = sl.mu[v];
              uint32_t b = sr.mu[v];
              if (a == b) {
                next.mu[v] = a;
              } else if (a == kForgottenCode && b == kUnassignedCode) {
                next.mu[v] = kForgottenCode;
              } else if (b == kForgottenCode && a == kUnassignedCode) {
                next.mu[v] = kForgottenCode;
              } else {
                compatible = false;
                break;
              }
            }
            if (!compatible) continue;
            next.satisfied = sl.satisfied | sr.satisfied;
            Merge(states, circuit, std::move(next),
                  circuit.AddAnd(gl, gr));
          }
        }
        left.clear();
        right.clear();
        break;
      }
    }

    // Fold in the facts assigned to this node: each fact may satisfy any
    // subset of the atoms it matches under the state's μ.
    for (FactId f : facts_at_node[n]) {
      const Fact& fact = pcc.instance().fact(f);
      const GateId fact_gate = pcc.annotation(f);
      std::vector<std::pair<DpState, GateId>> additions;
      for (const auto& [state, gate] : states) {
        // Atoms this fact can satisfy in this state.
        std::vector<uint32_t> matching;
        for (uint32_t a = 0; a < num_atoms; ++a) {
          if ((state.satisfied >> a) & 1) continue;
          const QueryAtom& atom = query.atom(a);
          if (atom.relation != fact.relation ||
              atom.terms.size() != fact.args.size()) {
            continue;
          }
          bool match = true;
          for (size_t i = 0; i < atom.terms.size(); ++i) {
            const Term& t = atom.terms[i];
            uint32_t needed = t.is_var ? state.mu[t.var] : t.constant;
            if (needed != fact.args[i]) {
              match = false;
              break;
            }
          }
          if (match) matching.push_back(a);
        }
        if (matching.empty()) continue;
        GateId with_fact = circuit.AddAnd(gate, fact_gate);
        const uint32_t subsets = 1u << matching.size();
        for (uint32_t mask = 1; mask < subsets; ++mask) {
          DpState next = state;
          for (size_t i = 0; i < matching.size(); ++i) {
            if ((mask >> i) & 1) next.satisfied |= (1u << matching[i]);
          }
          additions.emplace_back(std::move(next), with_fact);
        }
      }
      for (auto& [state, gate] : additions) {
        Merge(states, circuit, std::move(state), gate);
      }
    }

    if (stats != nullptr) {
      stats->total_states += states.size();
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, states.size());
    }
  }

  // Accept: root states with all atoms satisfied.
  std::vector<GateId> accepting;
  for (const auto& [state, gate] : table[ntd.root()]) {
    if (state.satisfied == full_mask) accepting.push_back(gate);
  }
  return circuit.AddOr(std::move(accepting));
}

DecomposedInstance DecomposeInstance(const Instance& instance) {
  const uint32_t n = static_cast<uint32_t>(instance.DomainSize());
  Graph gaifman(n);
  for (const auto& [a, b] : instance.GaifmanEdges()) gaifman.AddEdge(a, b);
  return DecomposeInstanceWithOrder(instance, MinFillOrder(gaifman));
}

DecomposedInstance DecomposeInstanceWithOrder(const Instance& instance,
                                              std::vector<VertexId> order) {
  const uint32_t n = static_cast<uint32_t>(instance.DomainSize());
  TUD_CHECK_EQ(order.size(), size_t{n})
      << "elimination order must cover the instance domain";
  Graph gaifman(n);
  for (const auto& [a, b] : instance.GaifmanEdges()) gaifman.AddEdge(a, b);

  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;
  std::vector<BagId> bag_of_vertex;
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(gaifman, order, &bag_of_vertex);

  DecomposedInstance result;
  std::vector<NiceNodeId> top_of_bag;
  result.ntd = NiceTreeDecomposition::FromTreeDecomposition(td, &top_of_bag);
  result.width = td.Width();
  result.facts_at_node.assign(result.ntd.NumNodes(), {});

  for (FactId f = 0; f < instance.NumFacts(); ++f) {
    const Fact& fact = instance.fact(f);
    NiceNodeId node;
    if (fact.args.empty()) {
      node = result.ntd.root();  // Empty bag covers the empty element set.
    } else {
      // The fact's elements form a clique of the Gaifman graph, so the
      // bag of the earliest-eliminated element contains all of them.
      Value earliest = fact.args[0];
      for (Value v : fact.args) {
        if (position[v] < position[earliest]) earliest = v;
      }
      node = top_of_bag[bag_of_vertex[earliest]];
    }
    result.facts_at_node[node].push_back(f);
  }
  result.elimination_order = std::move(order);
  return result;
}

GateId ComputeCqLineage(const ConjunctiveQuery& query, PccInstance& pcc,
                        LineageStats* stats) {
  DecomposedInstance dec = DecomposeInstance(pcc.instance());
  return ComputeCqLineageOnDecomposition(query, pcc, dec.ntd,
                                         dec.facts_at_node, stats);
}

GateId ComputeUcqLineage(const UnionOfConjunctiveQueries& query,
                         PccInstance& pcc, LineageStats* stats) {
  DecomposedInstance dec = DecomposeInstance(pcc.instance());
  std::vector<GateId> parts;
  parts.reserve(query.disjuncts().size());
  LineageStats accumulated;
  for (const ConjunctiveQuery& cq : query.disjuncts()) {
    LineageStats one;
    parts.push_back(ComputeCqLineageOnDecomposition(cq, pcc, dec.ntd,
                                                    dec.facts_at_node, &one));
    accumulated.decomposition_width = one.decomposition_width;
    accumulated.num_nice_nodes = one.num_nice_nodes;
    accumulated.total_states += one.total_states;
    accumulated.max_states_per_node =
        std::max(accumulated.max_states_per_node, one.max_states_per_node);
  }
  if (stats != nullptr) *stats = accumulated;
  return pcc.circuit().AddOr(std::move(parts));
}

}  // namespace tud
