#include "queries/reachability.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tud {

bool EvaluateReachability(const Instance& instance, RelationId edge_relation,
                          Value source, Value target) {
  if (source == target) return true;
  if (source >= instance.DomainSize() || target >= instance.DomainSize()) {
    return false;
  }
  std::vector<std::vector<Value>> adjacency(instance.DomainSize());
  for (const Fact& fact : instance.facts()) {
    if (fact.relation != edge_relation || fact.args.size() != 2) continue;
    adjacency[fact.args[0]].push_back(fact.args[1]);
    adjacency[fact.args[1]].push_back(fact.args[0]);
  }
  std::vector<bool> seen(instance.DomainSize(), false);
  std::vector<Value> stack = {source};
  seen[source] = true;
  while (!stack.empty()) {
    Value v = stack.back();
    stack.pop_back();
    if (v == target) return true;
    for (Value u : adjacency[v]) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return false;
}

namespace {

// Connectivity DP state over the current bag: a normalized partition of
// the bag indices into blocks of used-edge-connected vertices, with
// per-block source/target flags, or the absorbing "done" state.
struct RState {
  std::vector<uint8_t> block;  // Per bag position; ids normalized.
  uint16_t s_mask = 0;         // Bit b: block b's component contains source.
  uint16_t t_mask = 0;
  bool done = false;
};

// A normalized RState packed into two words: 4 bits per bag position
// (bag sizes are capped at 15 by the width check, so block ids fit),
// the done flag in bit 60 of `lo`, and the flag masks in `hi`. This is
// the flat-table key replacing the heap-allocated block vectors the
// unordered_map keys used to carry.
struct PackedRState {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const PackedRState&) const = default;
};

PackedRState Pack(const RState& state) {
  PackedRState packed;
  for (size_t i = 0; i < state.block.size(); ++i) {
    packed.lo |= uint64_t{state.block[i]} << (4 * i);
  }
  if (state.done) packed.lo |= uint64_t{1} << 60;
  packed.hi = uint64_t{state.s_mask} | (uint64_t{state.t_mask} << 16);
  return packed;
}

size_t HashKey(const PackedRState& key) {
  uint64_t h = key.lo * 0x9e3779b97f4a7c15ull;
  h ^= key.hi + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  return static_cast<size_t>(h ^ (h >> 33));
}

void Unpack(const PackedRState& packed, size_t bag_size, RState& out) {
  out.block.resize(bag_size);
  for (size_t i = 0; i < bag_size; ++i) {
    out.block[i] = static_cast<uint8_t>((packed.lo >> (4 * i)) & 0xF);
  }
  out.done = (packed.lo >> 60) & 1;
  out.s_mask = static_cast<uint16_t>(packed.hi & 0xFFFF);
  out.t_mask = static_cast<uint16_t>(packed.hi >> 16);
}

bool PackedDone(const PackedRState& packed) {
  return (packed.lo >> 60) & 1;
}

// Open-addressed (state -> gate) table over packed keys: a flat entry
// vector plus a power-of-two probe array, no per-entry allocation —
// the same treatment the automaton engine gave its subset interner.
// Shared by the single-target and the target-indexed DP (whose packed
// keys differ in shape); `PackedKey` needs operator== and an overload of
// HashKey.
template <typename PackedKey>
class DpTable {
 public:
  struct Entry {
    PackedKey key;
    GateId gate;
  };

  size_t size() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  /// Inserts `state`, ORing gates on collision (the DP's Merge).
  void Merge(BoolCircuit& circuit, const PackedKey& key, GateId gate) {
    if ((entries_.size() + 1) * 4 > buckets_.size() * 3) Grow();
    const size_t mask = buckets_.size() - 1;
    size_t slot = HashKey(key) & mask;
    while (true) {
      const uint32_t idx = buckets_[slot];
      if (idx == 0) {
        buckets_[slot] = static_cast<uint32_t>(entries_.size() + 1);
        entries_.push_back({key, gate});
        return;
      }
      Entry& existing = entries_[idx - 1];
      if (existing.key == key) {
        existing.gate = circuit.AddOr(existing.gate, gate);
        return;
      }
      slot = (slot + 1) & mask;
    }
  }

  /// Frees the table's memory (child tables are consumed exactly once).
  void Release() {
    entries_ = {};
    buckets_ = {};
  }

 private:
  void Grow() {
    const size_t capacity = buckets_.empty() ? 16 : buckets_.size() * 2;
    buckets_.assign(capacity, 0);
    const size_t mask = capacity - 1;
    for (uint32_t i = 0; i < entries_.size(); ++i) {
      size_t slot = HashKey(entries_[i].key) & mask;
      while (buckets_[slot] != 0) slot = (slot + 1) & mask;
      buckets_[slot] = i + 1;
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> buckets_;  // Entry index + 1; 0 = empty.
};

using RTable = DpTable<PackedRState>;

// Renumbers blocks in order of first appearance and permutes the flag
// masks accordingly. The done state is collapsed to a unique shape.
RState Normalize(RState state) {
  if (state.done) {
    RState canonical;
    canonical.block.assign(state.block.size(), 0);
    for (size_t i = 0; i < canonical.block.size(); ++i) {
      canonical.block[i] = static_cast<uint8_t>(i);
    }
    canonical.done = true;
    return canonical;
  }
  std::vector<int> remap(state.block.size() + 2, -1);
  uint8_t next = 0;
  uint16_t s_mask = 0, t_mask = 0;
  for (uint8_t& b : state.block) {
    if (remap[b] < 0) {
      remap[b] = next++;
      if ((state.s_mask >> b) & 1) s_mask |= (1u << remap[b]);
      if ((state.t_mask >> b) & 1) t_mask |= (1u << remap[b]);
    }
    b = static_cast<uint8_t>(remap[b]);
  }
  state.s_mask = s_mask;
  state.t_mask = t_mask;
  return state;
}

size_t BagIndex(const std::vector<VertexId>& bag, VertexId v) {
  auto it = std::lower_bound(bag.begin(), bag.end(), v);
  TUD_CHECK(it != bag.end() && *it == v);
  return static_cast<size_t>(it - bag.begin());
}

}  // namespace

GateId ComputeReachabilityLineageOnDecomposition(
    PccInstance& pcc, RelationId edge_relation, Value source, Value target,
    const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats) {
  BoolCircuit& circuit = pcc.circuit();
  if (source == target) return circuit.AddConst(true);
  const size_t domain = pcc.instance().DomainSize();
  if (source >= domain || target >= domain) return circuit.AddConst(false);

  TUD_CHECK_LE(ntd.Width(), 14) << "bag too large for connectivity masks";
  if (stats != nullptr) {
    stats->decomposition_width = ntd.Width();
    stats->num_nice_nodes = ntd.NumNodes();
    stats->total_states = 0;
    stats->max_states_per_node = 0;
  }

  std::vector<RTable> table(ntd.NumNodes());
  RState state;  // Reused unpacking scratch.
  std::vector<std::pair<PackedRState, GateId>> additions;
  for (NiceNodeId n = 0; n < ntd.NumNodes(); ++n) {
    RTable& states = table[n];
    const std::vector<VertexId>& bag = ntd.bag(n);
    switch (ntd.kind(n)) {
      case NiceNodeKind::kLeaf: {
        states.Merge(circuit, Pack(RState{}), circuit.AddConst(true));
        break;
      }
      case NiceNodeKind::kIntroduce: {
        const VertexId v = ntd.vertex(n);
        const size_t pos = BagIndex(bag, v);
        RTable& child = table[ntd.children(n)[0]];
        const size_t child_bag_size = bag.size() - 1;
        for (size_t i = 0; i < child.size(); ++i) {
          Unpack(child.entry(i).key, child_bag_size, state);
          const GateId gate = child.entry(i).gate;
          RState next;
          next.done = state.done;
          next.block.reserve(bag.size());
          uint8_t fresh =
              static_cast<uint8_t>(state.block.size());  // New block id.
          for (size_t j = 0; j < bag.size(); ++j) {
            if (j == pos) {
              next.block.push_back(fresh);
            } else {
              next.block.push_back(state.block[j < pos ? j : j - 1]);
            }
          }
          next.s_mask = state.s_mask;
          next.t_mask = state.t_mask;
          if (!next.done) {
            if (v == source) next.s_mask |= (1u << fresh);
            if (v == target) next.t_mask |= (1u << fresh);
          }
          states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
        }
        child.Release();
        break;
      }
      case NiceNodeKind::kForget: {
        const VertexId v = ntd.vertex(n);
        const std::vector<VertexId>& child_bag =
            ntd.bag(ntd.children(n)[0]);
        const size_t pos = BagIndex(child_bag, v);
        RTable& child = table[ntd.children(n)[0]];
        for (size_t i = 0; i < child.size(); ++i) {
          Unpack(child.entry(i).key, child_bag.size(), state);
          const GateId gate = child.entry(i).gate;
          RState next;
          next.done = state.done;
          next.s_mask = state.s_mask;
          next.t_mask = state.t_mask;
          uint8_t gone = state.block[pos];
          bool block_survives = false;
          for (size_t j = 0; j < state.block.size(); ++j) {
            if (j == pos) continue;
            next.block.push_back(state.block[j]);
            if (state.block[j] == gone) block_survives = true;
          }
          if (!next.done && !block_survives) {
            // The component loses its last bag vertex: it can never be
            // extended again.
            bool has_s = (state.s_mask >> gone) & 1;
            bool has_t = (state.t_mask >> gone) & 1;
            if (has_s && has_t) {
              next.done = true;  // Source and target joined: accept.
            } else if (has_s || has_t) {
              continue;  // Source/target sealed off: dead derivation.
            }
            // Flag-free sealed components only arise from useless edge
            // choices; pruning them loses no accepting derivation (a
            // minimal witness path has none).
            next.s_mask &= ~(1u << gone);
            next.t_mask &= ~(1u << gone);
          }
          states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
        }
        child.Release();
        break;
      }
      case NiceNodeKind::kJoin: {
        RTable& left = table[ntd.children(n)[0]];
        RTable& right = table[ntd.children(n)[1]];
        const size_t k = bag.size();
        RState sl, sr;
        for (size_t li = 0; li < left.size(); ++li) {
          Unpack(left.entry(li).key, k, sl);
          const GateId gl = left.entry(li).gate;
          for (size_t ri = 0; ri < right.size(); ++ri) {
            Unpack(right.entry(ri).key, k, sr);
            const GateId gr = right.entry(ri).gate;
            GateId gate = circuit.AddAnd(gl, gr);
            if (sl.done || sr.done) {
              RState next;
              next.block.assign(k, 0);
              for (size_t i = 0; i < k; ++i) {
                next.block[i] = static_cast<uint8_t>(i);
              }
              next.done = true;
              states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
              continue;
            }
            // Union-find over bag positions: both partitions constrain.
            uint8_t parent[16];
            for (size_t i = 0; i < k; ++i) {
              parent[i] = static_cast<uint8_t>(i);
            }
            auto find = [&parent](uint8_t x) -> uint8_t {
              while (parent[x] != x) x = parent[x] = parent[parent[x]];
              return x;
            };
            for (size_t i = 0; i < k; ++i) {
              for (size_t j = i + 1; j < k; ++j) {
                if (sl.block[i] == sl.block[j] ||
                    sr.block[i] == sr.block[j]) {
                  parent[find(static_cast<uint8_t>(i))] =
                      find(static_cast<uint8_t>(j));
                }
              }
            }
            RState next;
            next.block.resize(k);
            next.s_mask = next.t_mask = 0;
            for (size_t i = 0; i < k; ++i) {
              uint8_t root = find(static_cast<uint8_t>(i));
              next.block[i] = root;
              if ((sl.s_mask >> sl.block[i]) & 1) next.s_mask |= 1u << root;
              if ((sr.s_mask >> sr.block[i]) & 1) next.s_mask |= 1u << root;
              if ((sl.t_mask >> sl.block[i]) & 1) next.t_mask |= 1u << root;
              if ((sr.t_mask >> sr.block[i]) & 1) next.t_mask |= 1u << root;
            }
            states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
          }
        }
        left.Release();
        right.Release();
        break;
      }
    }

    // Use any subset of this node's edge facts: one at a time, merging
    // endpoint blocks (iterate to closure via the state table itself).
    for (FactId f : facts_at_node[n]) {
      const Fact& fact = pcc.instance().fact(f);
      if (fact.relation != edge_relation || fact.args.size() != 2) continue;
      if (fact.args[0] == fact.args[1]) continue;  // Self-loop: no effect.
      const size_t pa = BagIndex(bag, fact.args[0]);
      const size_t pb = BagIndex(bag, fact.args[1]);
      const GateId fact_gate = pcc.annotation(f);
      additions.clear();
      for (size_t i = 0; i < states.size(); ++i) {
        if (PackedDone(states.entry(i).key)) continue;
        Unpack(states.entry(i).key, bag.size(), state);
        const GateId gate = states.entry(i).gate;
        uint8_t ba = state.block[pa];
        uint8_t bb = state.block[pb];
        if (ba == bb) continue;  // Already connected: using it is moot.
        RState next = state;
        for (uint8_t& b : next.block) {
          if (b == bb) b = ba;
        }
        if ((state.s_mask >> bb) & 1) next.s_mask |= (1u << ba);
        if ((state.t_mask >> bb) & 1) next.t_mask |= (1u << ba);
        next.s_mask &= ~(1u << bb);
        next.t_mask &= ~(1u << bb);
        additions.emplace_back(Pack(Normalize(std::move(next))),
                               circuit.AddAnd(gate, fact_gate));
      }
      for (const auto& [packed, gate] : additions) {
        states.Merge(circuit, packed, gate);
      }
    }

    if (stats != nullptr) {
      stats->total_states += states.size();
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, states.size());
    }
  }

  // Root (empty bag): accept the done state.
  std::vector<GateId> accepting;
  const RTable& root_states = table[ntd.root()];
  for (size_t i = 0; i < root_states.size(); ++i) {
    if (PackedDone(root_states.entry(i).key)) {
      accepting.push_back(root_states.entry(i).gate);
    }
  }
  return circuit.AddOr(std::move(accepting));
}

// ---------------------------------------------------------------------------
// Target-indexed DP (see header): one connectivity DP for a whole target
// battery, so the battery's lineages share one narrow cone instead of T
// independent tracks.
// ---------------------------------------------------------------------------

namespace {

// A target assignment of kNoBlock means "not currently tracked": not yet
// introduced, already witnessed, or sealed away from the source in this
// derivation. All three are equivalent going forward (a vertex is never
// re-introduced after its forget, and a witnessed target needs nothing
// more), which is what keeps the state space free of any 2^T
// connected-set index.
constexpr uint8_t kNoBlock = 0xF;

// DP state: the partition of the bag into used-edge-connected blocks,
// a per-block source flag, and per pending target the block its
// component currently touches. Unlike the single-target RState there is
// no absorbing done bit — connections are emitted as witnesses instead.
struct MState {
  std::vector<uint8_t> block;  // Per bag position; ids normalized.
  uint16_t s_mask = 0;  // Bit b: block b's component contains source.
  std::vector<uint8_t> tgt;  // Per pending target: block id or kNoBlock.
};

// Normalized MState in three words: 4 bits per bag position, the source
// mask, and 4 bits per target. Real block ids stay <= 14 (bags cap at 15
// positions), so kNoBlock = 0xF never collides.
struct PackedMState {
  uint64_t part = 0;
  uint64_t flags = 0;
  uint64_t tgt = 0;
  bool operator==(const PackedMState&) const = default;
};

size_t HashKey(const PackedMState& key) {
  uint64_t h = key.part * 0x9e3779b97f4a7c15ull;
  h ^= key.flags + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xff51afd7ed558ccdull;
  h ^= key.tgt + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  h *= 0xc2b2ae3d27d4eb4full;
  return static_cast<size_t>(h ^ (h >> 33));
}

using MTable = DpTable<PackedMState>;

PackedMState PackM(const MState& state) {
  PackedMState packed;
  for (size_t i = 0; i < state.block.size(); ++i) {
    packed.part |= uint64_t{state.block[i]} << (4 * i);
  }
  packed.flags = state.s_mask;
  for (size_t t = 0; t < state.tgt.size(); ++t) {
    packed.tgt |= uint64_t{state.tgt[t]} << (4 * t);
  }
  return packed;
}

void UnpackM(const PackedMState& packed, size_t bag_size,
             size_t num_targets, MState& out) {
  out.block.resize(bag_size);
  for (size_t i = 0; i < bag_size; ++i) {
    out.block[i] = static_cast<uint8_t>((packed.part >> (4 * i)) & 0xF);
  }
  out.s_mask = static_cast<uint16_t>(packed.flags & 0xFFFF);
  out.tgt.resize(num_targets);
  for (size_t t = 0; t < num_targets; ++t) {
    out.tgt[t] = static_cast<uint8_t>((packed.tgt >> (4 * t)) & 0xF);
  }
}

// The connection event: any pending target whose block now carries the
// source flag gets `gate` appended to its witness accumulator and is
// dropped from the state. Sound because the derivation gate implies its
// used edges are present (so source ~ target holds wherever it is
// true); complete because every accepting derivation passes through the
// transition that first merges the target's block with the source's.
// Monotonicity of reachability makes the final OR of witnesses exact.
// Then renumbers blocks by first appearance (flag and assignments
// permuted along) and returns the packed canonical key.
PackedMState ResolveAndNormalize(MState& state, GateId gate,
                                 std::vector<std::vector<GateId>>& witnesses) {
  for (size_t t = 0; t < state.tgt.size(); ++t) {
    const uint8_t b = state.tgt[t];
    if (b != kNoBlock && ((state.s_mask >> b) & 1)) {
      witnesses[t].push_back(gate);
      state.tgt[t] = kNoBlock;
    }
  }
  int remap[16];
  for (int& r : remap) r = -1;
  uint8_t next_id = 0;
  uint16_t s_mask = 0;
  for (uint8_t& b : state.block) {
    if (remap[b] < 0) {
      remap[b] = next_id++;
      if ((state.s_mask >> b) & 1) s_mask |= (1u << remap[b]);
    }
    b = static_cast<uint8_t>(remap[b]);
  }
  for (uint8_t& b : state.tgt) {
    if (b == kNoBlock) continue;
    TUD_CHECK_GE(remap[b], 0) << "pending target tracked to a vanished block";
    b = static_cast<uint8_t>(remap[b]);
  }
  state.s_mask = s_mask;
  return PackM(state);
}

}  // namespace

std::vector<GateId> ComputeMultiTargetReachabilityLineageOnDecomposition(
    PccInstance& pcc, RelationId edge_relation, Value source,
    const std::vector<Value>& targets, const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats) {
  BoolCircuit& circuit = pcc.circuit();
  const size_t domain = pcc.instance().DomainSize();
  std::vector<GateId> result(targets.size());

  // Trivial entries resolve up front (matching the single-target
  // conventions); the rest dedupe into the pending battery the DP
  // actually tracks.
  std::vector<Value> pending;
  std::vector<size_t> slot(targets.size(), SIZE_MAX);
  for (size_t i = 0; i < targets.size(); ++i) {
    const Value t = targets[i];
    if (t == source) {
      result[i] = circuit.AddConst(true);
      continue;
    }
    if (source >= domain || t >= domain) {
      result[i] = circuit.AddConst(false);
      continue;
    }
    size_t p = 0;
    while (p < pending.size() && pending[p] != t) ++p;
    if (p == pending.size()) pending.push_back(t);
    slot[i] = p;
  }
  if (stats != nullptr) {
    stats->decomposition_width = ntd.Width();
    stats->num_nice_nodes = ntd.NumNodes();
    stats->total_states = 0;
    stats->max_states_per_node = 0;
  }
  if (pending.empty()) return result;
  const size_t num_targets = pending.size();
  TUD_CHECK_LE(num_targets, kMaxReachabilityTargetsPerDp)
      << "chunk target batteries (QuerySession::ReachabilityLineageBatch)";
  TUD_CHECK_LE(ntd.Width(), 14) << "bag too large for connectivity masks";

  std::vector<std::vector<GateId>> witnesses(num_targets);
  std::vector<MTable> table(ntd.NumNodes());
  MState state;  // Reused unpacking scratch.
  std::vector<std::pair<PackedMState, GateId>> additions;
  for (NiceNodeId n = 0; n < ntd.NumNodes(); ++n) {
    MTable& states = table[n];
    const std::vector<VertexId>& bag = ntd.bag(n);
    switch (ntd.kind(n)) {
      case NiceNodeKind::kLeaf: {
        MState empty;
        empty.tgt.assign(num_targets, kNoBlock);
        states.Merge(circuit, PackM(empty), circuit.AddConst(true));
        break;
      }
      case NiceNodeKind::kIntroduce: {
        const VertexId v = ntd.vertex(n);
        const size_t pos = BagIndex(bag, v);
        int intro_target = -1;
        for (size_t t = 0; t < num_targets; ++t) {
          if (pending[t] == v) intro_target = static_cast<int>(t);
        }
        MTable& child = table[ntd.children(n)[0]];
        const size_t child_bag_size = bag.size() - 1;
        for (size_t i = 0; i < child.size(); ++i) {
          UnpackM(child.entry(i).key, child_bag_size, num_targets, state);
          const GateId gate = child.entry(i).gate;
          MState next;
          next.block.reserve(bag.size());
          const uint8_t fresh = static_cast<uint8_t>(state.block.size());
          for (size_t j = 0; j < bag.size(); ++j) {
            if (j == pos) {
              next.block.push_back(fresh);
            } else {
              next.block.push_back(state.block[j < pos ? j : j - 1]);
            }
          }
          next.s_mask = state.s_mask;
          if (v == source) next.s_mask |= (1u << fresh);
          next.tgt = state.tgt;
          if (intro_target >= 0) {
            // A vertex is introduced before any forget of it (occurrence
            // subtrees are connected), so the target cannot already be
            // tracked, witnessed, or sealed in this branch.
            TUD_CHECK(next.tgt[intro_target] == kNoBlock);
            next.tgt[intro_target] = fresh;
          }
          states.Merge(circuit, ResolveAndNormalize(next, gate, witnesses),
                       gate);
        }
        child.Release();
        break;
      }
      case NiceNodeKind::kForget: {
        const VertexId v = ntd.vertex(n);
        const std::vector<VertexId>& child_bag =
            ntd.bag(ntd.children(n)[0]);
        const size_t pos = BagIndex(child_bag, v);
        MTable& child = table[ntd.children(n)[0]];
        for (size_t i = 0; i < child.size(); ++i) {
          UnpackM(child.entry(i).key, child_bag.size(), num_targets, state);
          const GateId gate = child.entry(i).gate;
          MState next;
          next.s_mask = state.s_mask;
          next.tgt = state.tgt;
          const uint8_t gone = state.block[pos];
          bool block_survives = false;
          for (size_t j = 0; j < state.block.size(); ++j) {
            if (j == pos) continue;
            next.block.push_back(state.block[j]);
            if (state.block[j] == gone) block_survives = true;
          }
          if (!block_survives) {
            // The component loses its last bag vertex: sealed for good.
            if ((state.s_mask >> gone) & 1) {
              // Source sealed: no transition can ever merge a pending
              // target into its block, so no witness can come from this
              // derivation — drop it (the multi-target analogue of the
              // single-target "source sealed off" dead state; targets
              // already witnessed keep their emitted witnesses).
              continue;
            }
            for (uint8_t& b : next.tgt) {
              // Sealed away from the source: dead for this derivation.
              if (b == gone) b = kNoBlock;
            }
          }
          states.Merge(circuit, ResolveAndNormalize(next, gate, witnesses),
                       gate);
        }
        child.Release();
        break;
      }
      case NiceNodeKind::kJoin: {
        MTable& left = table[ntd.children(n)[0]];
        MTable& right = table[ntd.children(n)[1]];
        const size_t k = bag.size();
        MState sl, sr;
        for (size_t li = 0; li < left.size(); ++li) {
          UnpackM(left.entry(li).key, k, num_targets, sl);
          const GateId gl = left.entry(li).gate;
          // A representative bag position per left block (targets whose
          // vertex was forgotten below are carried through it).
          int lpos[16];
          for (int& p : lpos) p = -1;
          for (size_t i = 0; i < k; ++i) {
            if (lpos[sl.block[i]] < 0) lpos[sl.block[i]] = static_cast<int>(i);
          }
          for (size_t ri = 0; ri < right.size(); ++ri) {
            UnpackM(right.entry(ri).key, k, num_targets, sr);
            const GateId gr = right.entry(ri).gate;
            const GateId gate = circuit.AddAnd(gl, gr);
            // Union-find over bag positions: both partitions constrain.
            uint8_t parent[16];
            for (size_t i = 0; i < k; ++i) {
              parent[i] = static_cast<uint8_t>(i);
            }
            auto find = [&parent](uint8_t x) -> uint8_t {
              while (parent[x] != x) x = parent[x] = parent[parent[x]];
              return x;
            };
            for (size_t i = 0; i < k; ++i) {
              for (size_t j = i + 1; j < k; ++j) {
                if (sl.block[i] == sl.block[j] ||
                    sr.block[i] == sr.block[j]) {
                  parent[find(static_cast<uint8_t>(i))] =
                      find(static_cast<uint8_t>(j));
                }
              }
            }
            int rpos[16];
            for (int& p : rpos) p = -1;
            for (size_t i = 0; i < k; ++i) {
              if (rpos[sr.block[i]] < 0) {
                rpos[sr.block[i]] = static_cast<int>(i);
              }
            }
            MState next;
            next.block.resize(k);
            next.s_mask = 0;
            for (size_t i = 0; i < k; ++i) {
              const uint8_t root = find(static_cast<uint8_t>(i));
              next.block[i] = root;
              if ((sl.s_mask >> sl.block[i]) & 1) next.s_mask |= 1u << root;
              if ((sr.s_mask >> sr.block[i]) & 1) next.s_mask |= 1u << root;
            }
            // A target is tracked by at most one side unless its vertex
            // is in the bag (occurrence subtrees are connected), and
            // then both sides agree through the shared position.
            next.tgt.assign(num_targets, kNoBlock);
            for (size_t t = 0; t < num_targets; ++t) {
              if (sl.tgt[t] != kNoBlock) {
                next.tgt[t] = find(static_cast<uint8_t>(lpos[sl.tgt[t]]));
              } else if (sr.tgt[t] != kNoBlock) {
                next.tgt[t] = find(static_cast<uint8_t>(rpos[sr.tgt[t]]));
              }
            }
            states.Merge(circuit, ResolveAndNormalize(next, gate, witnesses),
                         gate);
          }
        }
        left.Release();
        right.Release();
        break;
      }
    }

    // Use any subset of this node's edge facts: one at a time, merging
    // endpoint blocks (iterate to closure via the state table itself).
    for (FactId f : facts_at_node[n]) {
      const Fact& fact = pcc.instance().fact(f);
      if (fact.relation != edge_relation || fact.args.size() != 2) continue;
      if (fact.args[0] == fact.args[1]) continue;  // Self-loop: no effect.
      const size_t pa = BagIndex(bag, fact.args[0]);
      const size_t pb = BagIndex(bag, fact.args[1]);
      const GateId fact_gate = pcc.annotation(f);
      additions.clear();
      for (size_t i = 0; i < states.size(); ++i) {
        UnpackM(states.entry(i).key, bag.size(), num_targets, state);
        const GateId gate = states.entry(i).gate;
        const uint8_t ba = state.block[pa];
        const uint8_t bb = state.block[pb];
        if (ba == bb) continue;  // Already connected: using it is moot.
        MState next = state;
        for (uint8_t& b : next.block) {
          if (b == bb) b = ba;
        }
        if ((state.s_mask >> bb) & 1) next.s_mask |= (1u << ba);
        next.s_mask &= ~(1u << bb);
        for (uint8_t& b : next.tgt) {
          if (b == bb) b = ba;
        }
        const GateId used = circuit.AddAnd(gate, fact_gate);
        additions.emplace_back(ResolveAndNormalize(next, used, witnesses),
                               used);
      }
      for (const auto& [packed, gate] : additions) {
        states.Merge(circuit, packed, gate);
      }
    }

    if (stats != nullptr) {
      stats->total_states += states.size();
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, states.size());
    }
  }

  // All witnesses were emitted along the way; the root's empty-bag
  // states carry nothing further. OR each target's accumulator (empty
  // accumulator = unreachable = const false).
  std::vector<GateId> pending_gate(num_targets);
  for (size_t t = 0; t < num_targets; ++t) {
    pending_gate[t] = circuit.AddOr(std::move(witnesses[t]));
  }
  for (size_t i = 0; i < targets.size(); ++i) {
    if (slot[i] != SIZE_MAX) result[i] = pending_gate[slot[i]];
  }
  return result;
}

std::vector<GateId> ComputeMultiTargetReachabilityLineage(
    PccInstance& pcc, RelationId edge_relation, Value source,
    const std::vector<Value>& targets, LineageStats* stats) {
  DecomposedInstance dec = DecomposeInstance(pcc.instance());
  return ComputeMultiTargetReachabilityLineageOnDecomposition(
      pcc, edge_relation, source, targets, dec.ntd, dec.facts_at_node,
      stats);
}

GateId ComputeReachabilityLineage(PccInstance& pcc, RelationId edge_relation,
                                  Value source, Value target,
                                  LineageStats* stats) {
  BoolCircuit& circuit = pcc.circuit();
  if (source == target) return circuit.AddConst(true);
  const size_t domain = pcc.instance().DomainSize();
  if (source >= domain || target >= domain) return circuit.AddConst(false);

  DecomposedInstance dec = DecomposeInstance(pcc.instance());
  return ComputeReachabilityLineageOnDecomposition(
      pcc, edge_relation, source, target, dec.ntd, dec.facts_at_node, stats);
}

}  // namespace tud
