#include "queries/reachability.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <unordered_map>
#include <vector>

#include "util/check.h"

namespace tud {

bool EvaluateReachability(const Instance& instance, RelationId edge_relation,
                          Value source, Value target) {
  if (source == target) return true;
  if (source >= instance.DomainSize() || target >= instance.DomainSize()) {
    return false;
  }
  std::vector<std::vector<Value>> adjacency(instance.DomainSize());
  for (const Fact& fact : instance.facts()) {
    if (fact.relation != edge_relation || fact.args.size() != 2) continue;
    adjacency[fact.args[0]].push_back(fact.args[1]);
    adjacency[fact.args[1]].push_back(fact.args[0]);
  }
  std::vector<bool> seen(instance.DomainSize(), false);
  std::vector<Value> stack = {source};
  seen[source] = true;
  while (!stack.empty()) {
    Value v = stack.back();
    stack.pop_back();
    if (v == target) return true;
    for (Value u : adjacency[v]) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return false;
}

namespace {

// Connectivity DP state over the current bag: a normalized partition of
// the bag indices into blocks of used-edge-connected vertices, with
// per-block source/target flags, or the absorbing "done" state.
struct RState {
  std::vector<uint8_t> block;  // Per bag position; ids normalized.
  uint16_t s_mask = 0;         // Bit b: block b's component contains source.
  uint16_t t_mask = 0;
  bool done = false;

  bool operator==(const RState&) const = default;
};

struct RStateHash {
  size_t operator()(const RState& s) const {
    size_t h = s.done ? 0x9e3779b9u : 0x85ebca6bu;
    h = h * 31 + s.s_mask;
    h = h * 31 + s.t_mask;
    for (uint8_t b : s.block) h = h * 131 + b;
    return h;
  }
};

using RStateMap = std::unordered_map<RState, GateId, RStateHash>;

// Renumbers blocks in order of first appearance and permutes the flag
// masks accordingly. The done state is collapsed to a unique shape.
RState Normalize(RState state) {
  if (state.done) {
    RState canonical;
    canonical.block.assign(state.block.size(), 0);
    for (size_t i = 0; i < canonical.block.size(); ++i) {
      canonical.block[i] = static_cast<uint8_t>(i);
    }
    canonical.done = true;
    return canonical;
  }
  std::vector<int> remap(state.block.size() + 2, -1);
  uint8_t next = 0;
  uint16_t s_mask = 0, t_mask = 0;
  for (uint8_t& b : state.block) {
    if (remap[b] < 0) {
      remap[b] = next++;
      if ((state.s_mask >> b) & 1) s_mask |= (1u << remap[b]);
      if ((state.t_mask >> b) & 1) t_mask |= (1u << remap[b]);
    }
    b = static_cast<uint8_t>(remap[b]);
  }
  state.s_mask = s_mask;
  state.t_mask = t_mask;
  return state;
}

void Merge(RStateMap& map, BoolCircuit& circuit, RState state, GateId gate) {
  auto [it, inserted] = map.try_emplace(std::move(state), gate);
  if (!inserted) it->second = circuit.AddOr(it->second, gate);
}

size_t BagIndex(const std::vector<VertexId>& bag, VertexId v) {
  auto it = std::lower_bound(bag.begin(), bag.end(), v);
  TUD_CHECK(it != bag.end() && *it == v);
  return static_cast<size_t>(it - bag.begin());
}

}  // namespace

GateId ComputeReachabilityLineage(PccInstance& pcc, RelationId edge_relation,
                                  Value source, Value target,
                                  LineageStats* stats) {
  BoolCircuit& circuit = pcc.circuit();
  if (source == target) return circuit.AddConst(true);
  const size_t domain = pcc.instance().DomainSize();
  if (source >= domain || target >= domain) return circuit.AddConst(false);

  DecomposedInstance dec = DecomposeInstance(pcc.instance());
  const NiceTreeDecomposition& ntd = dec.ntd;
  TUD_CHECK_LE(ntd.Width(), 14) << "bag too large for connectivity masks";
  if (stats != nullptr) {
    stats->decomposition_width = dec.width;
    stats->num_nice_nodes = ntd.NumNodes();
    stats->total_states = 0;
    stats->max_states_per_node = 0;
  }

  std::vector<RStateMap> table(ntd.NumNodes());
  for (NiceNodeId n = 0; n < ntd.NumNodes(); ++n) {
    RStateMap& states = table[n];
    const std::vector<VertexId>& bag = ntd.bag(n);
    switch (ntd.kind(n)) {
      case NiceNodeKind::kLeaf: {
        Merge(states, circuit, RState{}, circuit.AddConst(true));
        break;
      }
      case NiceNodeKind::kIntroduce: {
        const VertexId v = ntd.vertex(n);
        const size_t pos = BagIndex(bag, v);
        RStateMap& child = table[ntd.children(n)[0]];
        for (auto& [state, gate] : child) {
          RState next;
          next.done = state.done;
          next.block.reserve(bag.size());
          uint8_t fresh =
              static_cast<uint8_t>(state.block.size());  // New block id.
          for (size_t i = 0; i < bag.size(); ++i) {
            if (i == pos) {
              next.block.push_back(fresh);
            } else {
              next.block.push_back(state.block[i < pos ? i : i - 1]);
            }
          }
          next.s_mask = state.s_mask;
          next.t_mask = state.t_mask;
          if (!next.done) {
            if (v == source) next.s_mask |= (1u << fresh);
            if (v == target) next.t_mask |= (1u << fresh);
          }
          Merge(states, circuit, Normalize(std::move(next)), gate);
        }
        child.clear();
        break;
      }
      case NiceNodeKind::kForget: {
        const VertexId v = ntd.vertex(n);
        const std::vector<VertexId>& child_bag =
            ntd.bag(ntd.children(n)[0]);
        const size_t pos = BagIndex(child_bag, v);
        RStateMap& child = table[ntd.children(n)[0]];
        for (auto& [state, gate] : child) {
          RState next;
          next.done = state.done;
          next.s_mask = state.s_mask;
          next.t_mask = state.t_mask;
          uint8_t gone = state.block[pos];
          bool block_survives = false;
          for (size_t i = 0; i < state.block.size(); ++i) {
            if (i == pos) continue;
            next.block.push_back(state.block[i]);
            if (state.block[i] == gone) block_survives = true;
          }
          if (!next.done && !block_survives) {
            // The component loses its last bag vertex: it can never be
            // extended again.
            bool has_s = (state.s_mask >> gone) & 1;
            bool has_t = (state.t_mask >> gone) & 1;
            if (has_s && has_t) {
              next.done = true;  // Source and target joined: accept.
            } else if (has_s || has_t) {
              continue;  // Source/target sealed off: dead derivation.
            }
            // Flag-free sealed components only arise from useless edge
            // choices; pruning them loses no accepting derivation (a
            // minimal witness path has none).
            next.s_mask &= ~(1u << gone);
            next.t_mask &= ~(1u << gone);
          }
          Merge(states, circuit, Normalize(std::move(next)), gate);
        }
        child.clear();
        break;
      }
      case NiceNodeKind::kJoin: {
        RStateMap& left = table[ntd.children(n)[0]];
        RStateMap& right = table[ntd.children(n)[1]];
        const size_t k = bag.size();
        for (const auto& [sl, gl] : left) {
          for (const auto& [sr, gr] : right) {
            GateId gate = circuit.AddAnd(gl, gr);
            if (sl.done || sr.done) {
              RState next;
              next.block.assign(k, 0);
              for (size_t i = 0; i < k; ++i) {
                next.block[i] = static_cast<uint8_t>(i);
              }
              next.done = true;
              Merge(states, circuit, Normalize(std::move(next)), gate);
              continue;
            }
            // Union-find over bag positions: both partitions constrain.
            std::vector<uint8_t> parent(k);
            for (size_t i = 0; i < k; ++i) {
              parent[i] = static_cast<uint8_t>(i);
            }
            std::function<uint8_t(uint8_t)> find =
                [&](uint8_t x) -> uint8_t {
              while (parent[x] != x) x = parent[x] = parent[parent[x]];
              return x;
            };
            auto unite = [&](uint8_t a, uint8_t b) {
              parent[find(a)] = find(b);
            };
            for (size_t i = 0; i < k; ++i) {
              for (size_t j = i + 1; j < k; ++j) {
                if (sl.block[i] == sl.block[j] ||
                    sr.block[i] == sr.block[j]) {
                  unite(static_cast<uint8_t>(i), static_cast<uint8_t>(j));
                }
              }
            }
            RState next;
            next.block.resize(k);
            next.s_mask = next.t_mask = 0;
            for (size_t i = 0; i < k; ++i) {
              uint8_t root = find(static_cast<uint8_t>(i));
              next.block[i] = root;
              if ((sl.s_mask >> sl.block[i]) & 1) next.s_mask |= 1u << root;
              if ((sr.s_mask >> sr.block[i]) & 1) next.s_mask |= 1u << root;
              if ((sl.t_mask >> sl.block[i]) & 1) next.t_mask |= 1u << root;
              if ((sr.t_mask >> sr.block[i]) & 1) next.t_mask |= 1u << root;
            }
            Merge(states, circuit, Normalize(std::move(next)), gate);
          }
        }
        left.clear();
        right.clear();
        break;
      }
    }

    // Use any subset of this node's edge facts: one at a time, merging
    // endpoint blocks (iterate to closure via the state map itself).
    for (FactId f : dec.facts_at_node[n]) {
      const Fact& fact = pcc.instance().fact(f);
      if (fact.relation != edge_relation || fact.args.size() != 2) continue;
      if (fact.args[0] == fact.args[1]) continue;  // Self-loop: no effect.
      const size_t pa = BagIndex(bag, fact.args[0]);
      const size_t pb = BagIndex(bag, fact.args[1]);
      const GateId fact_gate = pcc.annotation(f);
      std::vector<std::pair<RState, GateId>> additions;
      for (const auto& [state, gate] : states) {
        if (state.done) continue;
        uint8_t ba = state.block[pa];
        uint8_t bb = state.block[pb];
        if (ba == bb) continue;  // Already connected: using it is moot.
        RState next = state;
        for (uint8_t& b : next.block) {
          if (b == bb) b = ba;
        }
        if ((state.s_mask >> bb) & 1) next.s_mask |= (1u << ba);
        if ((state.t_mask >> bb) & 1) next.t_mask |= (1u << ba);
        next.s_mask &= ~(1u << bb);
        next.t_mask &= ~(1u << bb);
        additions.emplace_back(Normalize(std::move(next)),
                               circuit.AddAnd(gate, fact_gate));
      }
      for (auto& [state, gate] : additions) {
        Merge(states, circuit, std::move(state), gate);
      }
    }

    if (stats != nullptr) {
      stats->total_states += states.size();
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, states.size());
    }
  }

  // Root (empty bag): accept the done state.
  std::vector<GateId> accepting;
  for (const auto& [state, gate] : table[ntd.root()]) {
    if (state.done) accepting.push_back(gate);
  }
  return circuit.AddOr(std::move(accepting));
}

}  // namespace tud
