#include "queries/reachability.h"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tud {

bool EvaluateReachability(const Instance& instance, RelationId edge_relation,
                          Value source, Value target) {
  if (source == target) return true;
  if (source >= instance.DomainSize() || target >= instance.DomainSize()) {
    return false;
  }
  std::vector<std::vector<Value>> adjacency(instance.DomainSize());
  for (const Fact& fact : instance.facts()) {
    if (fact.relation != edge_relation || fact.args.size() != 2) continue;
    adjacency[fact.args[0]].push_back(fact.args[1]);
    adjacency[fact.args[1]].push_back(fact.args[0]);
  }
  std::vector<bool> seen(instance.DomainSize(), false);
  std::vector<Value> stack = {source};
  seen[source] = true;
  while (!stack.empty()) {
    Value v = stack.back();
    stack.pop_back();
    if (v == target) return true;
    for (Value u : adjacency[v]) {
      if (!seen[u]) {
        seen[u] = true;
        stack.push_back(u);
      }
    }
  }
  return false;
}

namespace {

// Connectivity DP state over the current bag: a normalized partition of
// the bag indices into blocks of used-edge-connected vertices, with
// per-block source/target flags, or the absorbing "done" state.
struct RState {
  std::vector<uint8_t> block;  // Per bag position; ids normalized.
  uint16_t s_mask = 0;         // Bit b: block b's component contains source.
  uint16_t t_mask = 0;
  bool done = false;
};

// A normalized RState packed into two words: 4 bits per bag position
// (bag sizes are capped at 15 by the width check, so block ids fit),
// the done flag in bit 60 of `lo`, and the flag masks in `hi`. This is
// the flat-table key replacing the heap-allocated block vectors the
// unordered_map keys used to carry.
struct PackedRState {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool operator==(const PackedRState&) const = default;
};

PackedRState Pack(const RState& state) {
  PackedRState packed;
  for (size_t i = 0; i < state.block.size(); ++i) {
    packed.lo |= uint64_t{state.block[i]} << (4 * i);
  }
  if (state.done) packed.lo |= uint64_t{1} << 60;
  packed.hi = uint64_t{state.s_mask} | (uint64_t{state.t_mask} << 16);
  return packed;
}

void Unpack(const PackedRState& packed, size_t bag_size, RState& out) {
  out.block.resize(bag_size);
  for (size_t i = 0; i < bag_size; ++i) {
    out.block[i] = static_cast<uint8_t>((packed.lo >> (4 * i)) & 0xF);
  }
  out.done = (packed.lo >> 60) & 1;
  out.s_mask = static_cast<uint16_t>(packed.hi & 0xFFFF);
  out.t_mask = static_cast<uint16_t>(packed.hi >> 16);
}

bool PackedDone(const PackedRState& packed) {
  return (packed.lo >> 60) & 1;
}

// Open-addressed (state -> gate) table over packed keys: a flat entry
// vector plus a power-of-two probe array, no per-entry allocation —
// the same treatment the automaton engine gave its subset interner.
class RTable {
 public:
  struct Entry {
    PackedRState key;
    GateId gate;
  };

  size_t size() const { return entries_.size(); }
  const Entry& entry(size_t i) const { return entries_[i]; }

  /// Inserts `state`, ORing gates on collision (the DP's Merge).
  void Merge(BoolCircuit& circuit, const PackedRState& key, GateId gate) {
    if ((entries_.size() + 1) * 4 > buckets_.size() * 3) Grow();
    const size_t mask = buckets_.size() - 1;
    size_t slot = Hash(key) & mask;
    while (true) {
      const uint32_t idx = buckets_[slot];
      if (idx == 0) {
        buckets_[slot] = static_cast<uint32_t>(entries_.size() + 1);
        entries_.push_back({key, gate});
        return;
      }
      Entry& existing = entries_[idx - 1];
      if (existing.key == key) {
        existing.gate = circuit.AddOr(existing.gate, gate);
        return;
      }
      slot = (slot + 1) & mask;
    }
  }

  /// Frees the table's memory (child tables are consumed exactly once).
  void Release() {
    entries_ = {};
    buckets_ = {};
  }

 private:
  static size_t Hash(const PackedRState& key) {
    uint64_t h = key.lo * 0x9e3779b97f4a7c15ull;
    h ^= key.hi + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
    h *= 0xff51afd7ed558ccdull;
    return static_cast<size_t>(h ^ (h >> 33));
  }

  void Grow() {
    const size_t capacity = buckets_.empty() ? 16 : buckets_.size() * 2;
    buckets_.assign(capacity, 0);
    const size_t mask = capacity - 1;
    for (uint32_t i = 0; i < entries_.size(); ++i) {
      size_t slot = Hash(entries_[i].key) & mask;
      while (buckets_[slot] != 0) slot = (slot + 1) & mask;
      buckets_[slot] = i + 1;
    }
  }

  std::vector<Entry> entries_;
  std::vector<uint32_t> buckets_;  // Entry index + 1; 0 = empty.
};

// Renumbers blocks in order of first appearance and permutes the flag
// masks accordingly. The done state is collapsed to a unique shape.
RState Normalize(RState state) {
  if (state.done) {
    RState canonical;
    canonical.block.assign(state.block.size(), 0);
    for (size_t i = 0; i < canonical.block.size(); ++i) {
      canonical.block[i] = static_cast<uint8_t>(i);
    }
    canonical.done = true;
    return canonical;
  }
  std::vector<int> remap(state.block.size() + 2, -1);
  uint8_t next = 0;
  uint16_t s_mask = 0, t_mask = 0;
  for (uint8_t& b : state.block) {
    if (remap[b] < 0) {
      remap[b] = next++;
      if ((state.s_mask >> b) & 1) s_mask |= (1u << remap[b]);
      if ((state.t_mask >> b) & 1) t_mask |= (1u << remap[b]);
    }
    b = static_cast<uint8_t>(remap[b]);
  }
  state.s_mask = s_mask;
  state.t_mask = t_mask;
  return state;
}

size_t BagIndex(const std::vector<VertexId>& bag, VertexId v) {
  auto it = std::lower_bound(bag.begin(), bag.end(), v);
  TUD_CHECK(it != bag.end() && *it == v);
  return static_cast<size_t>(it - bag.begin());
}

}  // namespace

GateId ComputeReachabilityLineageOnDecomposition(
    PccInstance& pcc, RelationId edge_relation, Value source, Value target,
    const NiceTreeDecomposition& ntd,
    const std::vector<std::vector<FactId>>& facts_at_node,
    LineageStats* stats) {
  BoolCircuit& circuit = pcc.circuit();
  if (source == target) return circuit.AddConst(true);
  const size_t domain = pcc.instance().DomainSize();
  if (source >= domain || target >= domain) return circuit.AddConst(false);

  TUD_CHECK_LE(ntd.Width(), 14) << "bag too large for connectivity masks";
  if (stats != nullptr) {
    stats->decomposition_width = ntd.Width();
    stats->num_nice_nodes = ntd.NumNodes();
    stats->total_states = 0;
    stats->max_states_per_node = 0;
  }

  std::vector<RTable> table(ntd.NumNodes());
  RState state;  // Reused unpacking scratch.
  std::vector<std::pair<PackedRState, GateId>> additions;
  for (NiceNodeId n = 0; n < ntd.NumNodes(); ++n) {
    RTable& states = table[n];
    const std::vector<VertexId>& bag = ntd.bag(n);
    switch (ntd.kind(n)) {
      case NiceNodeKind::kLeaf: {
        states.Merge(circuit, Pack(RState{}), circuit.AddConst(true));
        break;
      }
      case NiceNodeKind::kIntroduce: {
        const VertexId v = ntd.vertex(n);
        const size_t pos = BagIndex(bag, v);
        RTable& child = table[ntd.children(n)[0]];
        const size_t child_bag_size = bag.size() - 1;
        for (size_t i = 0; i < child.size(); ++i) {
          Unpack(child.entry(i).key, child_bag_size, state);
          const GateId gate = child.entry(i).gate;
          RState next;
          next.done = state.done;
          next.block.reserve(bag.size());
          uint8_t fresh =
              static_cast<uint8_t>(state.block.size());  // New block id.
          for (size_t j = 0; j < bag.size(); ++j) {
            if (j == pos) {
              next.block.push_back(fresh);
            } else {
              next.block.push_back(state.block[j < pos ? j : j - 1]);
            }
          }
          next.s_mask = state.s_mask;
          next.t_mask = state.t_mask;
          if (!next.done) {
            if (v == source) next.s_mask |= (1u << fresh);
            if (v == target) next.t_mask |= (1u << fresh);
          }
          states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
        }
        child.Release();
        break;
      }
      case NiceNodeKind::kForget: {
        const VertexId v = ntd.vertex(n);
        const std::vector<VertexId>& child_bag =
            ntd.bag(ntd.children(n)[0]);
        const size_t pos = BagIndex(child_bag, v);
        RTable& child = table[ntd.children(n)[0]];
        for (size_t i = 0; i < child.size(); ++i) {
          Unpack(child.entry(i).key, child_bag.size(), state);
          const GateId gate = child.entry(i).gate;
          RState next;
          next.done = state.done;
          next.s_mask = state.s_mask;
          next.t_mask = state.t_mask;
          uint8_t gone = state.block[pos];
          bool block_survives = false;
          for (size_t j = 0; j < state.block.size(); ++j) {
            if (j == pos) continue;
            next.block.push_back(state.block[j]);
            if (state.block[j] == gone) block_survives = true;
          }
          if (!next.done && !block_survives) {
            // The component loses its last bag vertex: it can never be
            // extended again.
            bool has_s = (state.s_mask >> gone) & 1;
            bool has_t = (state.t_mask >> gone) & 1;
            if (has_s && has_t) {
              next.done = true;  // Source and target joined: accept.
            } else if (has_s || has_t) {
              continue;  // Source/target sealed off: dead derivation.
            }
            // Flag-free sealed components only arise from useless edge
            // choices; pruning them loses no accepting derivation (a
            // minimal witness path has none).
            next.s_mask &= ~(1u << gone);
            next.t_mask &= ~(1u << gone);
          }
          states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
        }
        child.Release();
        break;
      }
      case NiceNodeKind::kJoin: {
        RTable& left = table[ntd.children(n)[0]];
        RTable& right = table[ntd.children(n)[1]];
        const size_t k = bag.size();
        RState sl, sr;
        for (size_t li = 0; li < left.size(); ++li) {
          Unpack(left.entry(li).key, k, sl);
          const GateId gl = left.entry(li).gate;
          for (size_t ri = 0; ri < right.size(); ++ri) {
            Unpack(right.entry(ri).key, k, sr);
            const GateId gr = right.entry(ri).gate;
            GateId gate = circuit.AddAnd(gl, gr);
            if (sl.done || sr.done) {
              RState next;
              next.block.assign(k, 0);
              for (size_t i = 0; i < k; ++i) {
                next.block[i] = static_cast<uint8_t>(i);
              }
              next.done = true;
              states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
              continue;
            }
            // Union-find over bag positions: both partitions constrain.
            uint8_t parent[16];
            for (size_t i = 0; i < k; ++i) {
              parent[i] = static_cast<uint8_t>(i);
            }
            auto find = [&parent](uint8_t x) -> uint8_t {
              while (parent[x] != x) x = parent[x] = parent[parent[x]];
              return x;
            };
            for (size_t i = 0; i < k; ++i) {
              for (size_t j = i + 1; j < k; ++j) {
                if (sl.block[i] == sl.block[j] ||
                    sr.block[i] == sr.block[j]) {
                  parent[find(static_cast<uint8_t>(i))] =
                      find(static_cast<uint8_t>(j));
                }
              }
            }
            RState next;
            next.block.resize(k);
            next.s_mask = next.t_mask = 0;
            for (size_t i = 0; i < k; ++i) {
              uint8_t root = find(static_cast<uint8_t>(i));
              next.block[i] = root;
              if ((sl.s_mask >> sl.block[i]) & 1) next.s_mask |= 1u << root;
              if ((sr.s_mask >> sr.block[i]) & 1) next.s_mask |= 1u << root;
              if ((sl.t_mask >> sl.block[i]) & 1) next.t_mask |= 1u << root;
              if ((sr.t_mask >> sr.block[i]) & 1) next.t_mask |= 1u << root;
            }
            states.Merge(circuit, Pack(Normalize(std::move(next))), gate);
          }
        }
        left.Release();
        right.Release();
        break;
      }
    }

    // Use any subset of this node's edge facts: one at a time, merging
    // endpoint blocks (iterate to closure via the state table itself).
    for (FactId f : facts_at_node[n]) {
      const Fact& fact = pcc.instance().fact(f);
      if (fact.relation != edge_relation || fact.args.size() != 2) continue;
      if (fact.args[0] == fact.args[1]) continue;  // Self-loop: no effect.
      const size_t pa = BagIndex(bag, fact.args[0]);
      const size_t pb = BagIndex(bag, fact.args[1]);
      const GateId fact_gate = pcc.annotation(f);
      additions.clear();
      for (size_t i = 0; i < states.size(); ++i) {
        if (PackedDone(states.entry(i).key)) continue;
        Unpack(states.entry(i).key, bag.size(), state);
        const GateId gate = states.entry(i).gate;
        uint8_t ba = state.block[pa];
        uint8_t bb = state.block[pb];
        if (ba == bb) continue;  // Already connected: using it is moot.
        RState next = state;
        for (uint8_t& b : next.block) {
          if (b == bb) b = ba;
        }
        if ((state.s_mask >> bb) & 1) next.s_mask |= (1u << ba);
        if ((state.t_mask >> bb) & 1) next.t_mask |= (1u << ba);
        next.s_mask &= ~(1u << bb);
        next.t_mask &= ~(1u << bb);
        additions.emplace_back(Pack(Normalize(std::move(next))),
                               circuit.AddAnd(gate, fact_gate));
      }
      for (const auto& [packed, gate] : additions) {
        states.Merge(circuit, packed, gate);
      }
    }

    if (stats != nullptr) {
      stats->total_states += states.size();
      stats->max_states_per_node =
          std::max(stats->max_states_per_node, states.size());
    }
  }

  // Root (empty bag): accept the done state.
  std::vector<GateId> accepting;
  const RTable& root_states = table[ntd.root()];
  for (size_t i = 0; i < root_states.size(); ++i) {
    if (PackedDone(root_states.entry(i).key)) {
      accepting.push_back(root_states.entry(i).gate);
    }
  }
  return circuit.AddOr(std::move(accepting));
}

GateId ComputeReachabilityLineage(PccInstance& pcc, RelationId edge_relation,
                                  Value source, Value target,
                                  LineageStats* stats) {
  BoolCircuit& circuit = pcc.circuit();
  if (source == target) return circuit.AddConst(true);
  const size_t domain = pcc.instance().DomainSize();
  if (source >= domain || target >= domain) return circuit.AddConst(false);

  DecomposedInstance dec = DecomposeInstance(pcc.instance());
  return ComputeReachabilityLineageOnDecomposition(
      pcc, edge_relation, source, target, dec.ntd, dec.facts_at_node, stats);
}

}  // namespace tud
