#ifndef TUD_QUERIES_CONJUNCTIVE_QUERY_H_
#define TUD_QUERIES_CONJUNCTIVE_QUERY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "relational/instance.h"

namespace tud {

/// Query variable id (dense, per query).
using VarId = uint32_t;

/// A term of a query atom: either a variable or a constant.
struct Term {
  bool is_var = true;
  VarId var = 0;
  Value constant = 0;

  static Term V(VarId v) { return Term{true, v, 0}; }
  static Term C(Value c) { return Term{false, 0, c}; }

  friend bool operator==(const Term& a, const Term& b) {
    return a.is_var == b.is_var &&
           (a.is_var ? a.var == b.var : a.constant == b.constant);
  }
};

/// An atom R(t1, ..., tk) of a conjunctive query.
struct QueryAtom {
  RelationId relation = 0;
  std::vector<Term> terms;
};

/// A Boolean conjunctive query: ∃ x1...xn, conjunction of atoms. The
/// paper's running example is q : ∃xy R(x) S(x,y) T(y) — #P-hard on
/// arbitrary TIDs [19], tractable on bounded treewidth (Theorem 1).
class ConjunctiveQuery {
 public:
  ConjunctiveQuery() = default;

  /// Adds an atom; terms must match the relation's arity at evaluation
  /// time.
  void AddAtom(RelationId relation, std::vector<Term> terms);

  size_t NumAtoms() const { return atoms_.size(); }
  const QueryAtom& atom(size_t i) const { return atoms_[i]; }
  const std::vector<QueryAtom>& atoms() const { return atoms_; }

  /// Largest variable id mentioned plus one.
  uint32_t NumVars() const { return num_vars_; }

  /// True iff every variable occurs in at least one atom (required by
  /// the lineage construction; violated only by degenerate queries).
  bool AllVarsOccur() const { return true; }

  /// Naive Boolean evaluation by backtracking join over the (certain)
  /// instance. Exponential in the query, polynomial in the data; this is
  /// the per-world ground truth for lineage tests.
  bool EvaluateBool(const Instance& instance) const;

  /// The paper's example query ∃xy R(x) S(x,y) T(y) over relations with
  /// the given ids.
  static ConjunctiveQuery RstPath(RelationId r, RelationId s, RelationId t);

  std::string ToString(const Schema& schema) const;

 private:
  std::vector<QueryAtom> atoms_;
  uint32_t num_vars_ = 0;
};

/// A union of Boolean conjunctive queries (UCQ): holds iff some disjunct
/// holds.
class UnionOfConjunctiveQueries {
 public:
  UnionOfConjunctiveQueries() = default;
  explicit UnionOfConjunctiveQueries(std::vector<ConjunctiveQuery> disjuncts)
      : disjuncts_(std::move(disjuncts)) {}

  void AddDisjunct(ConjunctiveQuery q) { disjuncts_.push_back(std::move(q)); }
  const std::vector<ConjunctiveQuery>& disjuncts() const { return disjuncts_; }

  bool EvaluateBool(const Instance& instance) const;

 private:
  std::vector<ConjunctiveQuery> disjuncts_;
};

}  // namespace tud

#endif  // TUD_QUERIES_CONJUNCTIVE_QUERY_H_
