#include "events/bool_formula.h"

#include <algorithm>
#include <cctype>

#include "util/check.h"

namespace tud {

namespace {

std::shared_ptr<const BoolFormula::Node> MakeNode(BoolFormula::Node node) {
  return std::make_shared<const BoolFormula::Node>(std::move(node));
}

}  // namespace

BoolFormula BoolFormula::Constant(bool value) {
  Node node;
  node.kind = Kind::kConst;
  node.const_value = value;
  return BoolFormula(MakeNode(std::move(node)));
}

BoolFormula BoolFormula::Var(EventId event) {
  TUD_CHECK_NE(event, kInvalidEvent);
  Node node;
  node.kind = Kind::kVar;
  node.var = event;
  return BoolFormula(MakeNode(std::move(node)));
}

BoolFormula BoolFormula::Not(const BoolFormula& f) {
  if (f.kind() == Kind::kConst) return Constant(!f.const_value());
  if (f.kind() == Kind::kNot) return f.children()[0];
  Node node;
  node.kind = Kind::kNot;
  node.children = {f};
  return BoolFormula(MakeNode(std::move(node)));
}

BoolFormula BoolFormula::And(const std::vector<BoolFormula>& fs) {
  std::vector<BoolFormula> kept;
  for (const BoolFormula& f : fs) {
    if (f.kind() == Kind::kConst) {
      if (!f.const_value()) return Constant(false);
      continue;  // Drop neutral element.
    }
    kept.push_back(f);
  }
  if (kept.empty()) return Constant(true);
  if (kept.size() == 1) return kept[0];
  Node node;
  node.kind = Kind::kAnd;
  node.children = std::move(kept);
  return BoolFormula(MakeNode(std::move(node)));
}

BoolFormula BoolFormula::Or(const std::vector<BoolFormula>& fs) {
  std::vector<BoolFormula> kept;
  for (const BoolFormula& f : fs) {
    if (f.kind() == Kind::kConst) {
      if (f.const_value()) return Constant(true);
      continue;
    }
    kept.push_back(f);
  }
  if (kept.empty()) return Constant(false);
  if (kept.size() == 1) return kept[0];
  Node node;
  node.kind = Kind::kOr;
  node.children = std::move(kept);
  return BoolFormula(MakeNode(std::move(node)));
}

BoolFormula BoolFormula::And(const BoolFormula& a, const BoolFormula& b) {
  return And(std::vector<BoolFormula>{a, b});
}

BoolFormula BoolFormula::Or(const BoolFormula& a, const BoolFormula& b) {
  return Or(std::vector<BoolFormula>{a, b});
}

bool BoolFormula::const_value() const {
  TUD_CHECK(kind() == Kind::kConst);
  return node_->const_value;
}

EventId BoolFormula::var() const {
  TUD_CHECK(kind() == Kind::kVar);
  return node_->var;
}

const std::vector<BoolFormula>& BoolFormula::children() const {
  return node_->children;
}

bool BoolFormula::Evaluate(const Valuation& valuation) const {
  switch (kind()) {
    case Kind::kConst:
      return node_->const_value;
    case Kind::kVar:
      return valuation.value(node_->var);
    case Kind::kNot:
      return !node_->children[0].Evaluate(valuation);
    case Kind::kAnd:
      for (const BoolFormula& child : node_->children) {
        if (!child.Evaluate(valuation)) return false;
      }
      return true;
    case Kind::kOr:
      for (const BoolFormula& child : node_->children) {
        if (child.Evaluate(valuation)) return true;
      }
      return false;
  }
  TUD_CHECK(false) << "unreachable";
  return false;
}

namespace {

void CollectEvents(const BoolFormula& f, std::vector<EventId>& out) {
  switch (f.kind()) {
    case BoolFormula::Kind::kConst:
      return;
    case BoolFormula::Kind::kVar:
      out.push_back(f.var());
      return;
    default:
      for (const BoolFormula& child : f.children()) {
        CollectEvents(child, out);
      }
  }
}

}  // namespace

std::vector<EventId> BoolFormula::Events() const {
  std::vector<EventId> events;
  CollectEvents(*this, events);
  std::sort(events.begin(), events.end());
  events.erase(std::unique(events.begin(), events.end()), events.end());
  return events;
}

bool BoolFormula::IsPositive() const {
  if (kind() == Kind::kNot) return false;
  for (const BoolFormula& child : children()) {
    if (!child.IsPositive()) return false;
  }
  return true;
}

std::string BoolFormula::ToString(const EventRegistry& registry) const {
  switch (kind()) {
    case Kind::kConst:
      return node_->const_value ? "true" : "false";
    case Kind::kVar:
      return registry.name(node_->var);
    case Kind::kNot:
      return "!" + node_->children[0].ToString(registry);
    case Kind::kAnd:
    case Kind::kOr: {
      std::string sep = kind() == Kind::kAnd ? " & " : " | ";
      std::string out = "(";
      for (size_t i = 0; i < node_->children.size(); ++i) {
        if (i > 0) out += sep;
        out += node_->children[i].ToString(registry);
      }
      out += ")";
      return out;
    }
  }
  TUD_CHECK(false) << "unreachable";
  return "";
}

// ---------------------------------------------------------------------------
// Recursive-descent parser: or := and ('|' and)*, and := unary ('&' unary)*,
// unary := '!' unary | '(' or ')' | ident | 'true' | 'false'.
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  Parser(std::string_view text, const EventRegistry& registry)
      : text_(text), registry_(registry) {}

  std::optional<BoolFormula> Run() {
    auto f = ParseOr();
    SkipSpace();
    if (!f.has_value() || pos_ != text_.size()) return std::nullopt;
    return f;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(
               static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::optional<BoolFormula> ParseOr() {
    auto lhs = ParseAnd();
    if (!lhs.has_value()) return std::nullopt;
    std::vector<BoolFormula> parts = {*lhs};
    while (Consume('|')) {
      auto rhs = ParseAnd();
      if (!rhs.has_value()) return std::nullopt;
      parts.push_back(*rhs);
    }
    return BoolFormula::Or(parts);
  }

  std::optional<BoolFormula> ParseAnd() {
    auto lhs = ParseUnary();
    if (!lhs.has_value()) return std::nullopt;
    std::vector<BoolFormula> parts = {*lhs};
    while (Consume('&')) {
      auto rhs = ParseUnary();
      if (!rhs.has_value()) return std::nullopt;
      parts.push_back(*rhs);
    }
    return BoolFormula::And(parts);
  }

  std::optional<BoolFormula> ParseUnary() {
    SkipSpace();
    if (Consume('!')) {
      auto inner = ParseUnary();
      if (!inner.has_value()) return std::nullopt;
      return BoolFormula::Not(*inner);
    }
    if (Consume('(')) {
      auto inner = ParseOr();
      if (!inner.has_value() || !Consume(')')) return std::nullopt;
      return inner;
    }
    size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    if (pos_ == start) return std::nullopt;
    std::string_view ident = text_.substr(start, pos_ - start);
    if (ident == "true") return BoolFormula::True();
    if (ident == "false") return BoolFormula::False();
    auto id = registry_.Find(ident);
    if (!id.has_value()) return std::nullopt;
    return BoolFormula::Var(*id);
  }

  std::string_view text_;
  const EventRegistry& registry_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<BoolFormula> BoolFormula::Parse(std::string_view text,
                                              const EventRegistry& registry) {
  return Parser(text, registry).Run();
}

}  // namespace tud
