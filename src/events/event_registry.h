#ifndef TUD_EVENTS_EVENT_REGISTRY_H_
#define TUD_EVENTS_EVENT_REGISTRY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tud {

/// Identifier of a Boolean event. Events are the atomic sources of
/// uncertainty: independent Boolean random variables in pc/pcc-instances
/// and PrXML documents, plain unknowns in c-instances.
using EventId = uint32_t;

/// Sentinel for "no event".
inline constexpr EventId kInvalidEvent = UINT32_MAX;

/// Registry of named Boolean events with optional probabilities.
///
/// A c-instance only needs the event names; a pc-instance additionally
/// assigns each event an independent probability of being true. The
/// registry is shared by an uncertain instance and all annotations,
/// lineage circuits, and inference engines derived from it.
class EventRegistry {
 public:
  EventRegistry() = default;

  /// Registers a new event with the given name and probability of being
  /// true. Names must be unique; probability must lie in [0, 1].
  /// Violating either is a programming error (aborts); use TryRegister
  /// when the name/probability come from untrusted input.
  EventId Register(std::string name, double probability = 0.5);

  /// Recoverable registration for user-supplied data (a parsed
  /// instance, an API request): returns nullopt — instead of aborting —
  /// on a duplicate name or a probability outside [0, 1].
  std::optional<EventId> TryRegister(std::string name,
                                     double probability = 0.5);

  /// Registers an anonymous event (name auto-generated as "_e<id>").
  EventId RegisterAnonymous(double probability = 0.5);

  /// Returns the id of the event named `name`, if registered.
  std::optional<EventId> Find(std::string_view name) const;

  /// Number of registered events.
  size_t size() const { return probabilities_.size(); }

  /// Name of event `id`.
  const std::string& name(EventId id) const;

  /// Probability that event `id` is true.
  double probability(EventId id) const;

  /// Overwrites the probability of event `id` (used by conditioning).
  /// An unknown id or out-of-range probability is a programming error
  /// (aborts); use TrySetProbability for untrusted input.
  void set_probability(EventId id, double probability);

  /// Recoverable update for user-supplied data: returns false — instead
  /// of aborting — on an unknown EventId or a probability outside
  /// [0, 1], leaving the registry untouched.
  bool TrySetProbability(EventId id, double probability);

 private:
  std::vector<std::string> names_;
  std::vector<double> probabilities_;
  std::unordered_map<std::string, EventId> index_;
};

}  // namespace tud

#endif  // TUD_EVENTS_EVENT_REGISTRY_H_
