#ifndef TUD_EVENTS_VALUATION_H_
#define TUD_EVENTS_VALUATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "events/event_registry.h"

namespace tud {

class Rng;

/// A total truth assignment to the events of a registry. A valuation
/// selects one possible world of an uncertain instance.
class Valuation {
 public:
  /// All-false valuation over `num_events` events.
  explicit Valuation(size_t num_events) : bits_(num_events, false) {}

  /// Builds a valuation from explicit bits.
  explicit Valuation(std::vector<bool> bits) : bits_(std::move(bits)) {}

  /// Decodes the `num_events` low bits of `mask` (event 0 = bit 0).
  /// Convenient for exhaustive enumeration over 2^n worlds.
  static Valuation FromMask(uint64_t mask, size_t num_events);

  /// Samples each event independently with its registry probability.
  static Valuation Sample(const EventRegistry& registry, Rng& rng);

  size_t size() const { return bits_.size(); }
  bool value(EventId id) const { return bits_[id]; }
  void set_value(EventId id, bool value) { bits_[id] = value; }

  /// Probability of this exact valuation under independent events.
  double Probability(const EventRegistry& registry) const;

  /// Renders as e.g. "{e1, !e2, e3}" using registry names.
  std::string ToString(const EventRegistry& registry) const;

  friend bool operator==(const Valuation& a, const Valuation& b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::vector<bool> bits_;
};

}  // namespace tud

#endif  // TUD_EVENTS_VALUATION_H_
