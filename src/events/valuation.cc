#include "events/valuation.h"

#include "util/check.h"
#include "util/rng.h"

namespace tud {

Valuation Valuation::FromMask(uint64_t mask, size_t num_events) {
  TUD_CHECK_LE(num_events, 64u);
  std::vector<bool> bits(num_events);
  for (size_t i = 0; i < num_events; ++i) bits[i] = (mask >> i) & 1;
  return Valuation(std::move(bits));
}

Valuation Valuation::Sample(const EventRegistry& registry, Rng& rng) {
  std::vector<bool> bits(registry.size());
  for (size_t i = 0; i < bits.size(); ++i) {
    bits[i] = rng.Bernoulli(registry.probability(static_cast<EventId>(i)));
  }
  return Valuation(std::move(bits));
}

double Valuation::Probability(const EventRegistry& registry) const {
  TUD_CHECK_EQ(bits_.size(), registry.size());
  double p = 1.0;
  for (size_t i = 0; i < bits_.size(); ++i) {
    double pe = registry.probability(static_cast<EventId>(i));
    p *= bits_[i] ? pe : (1.0 - pe);
  }
  return p;
}

std::string Valuation::ToString(const EventRegistry& registry) const {
  std::string out = "{";
  for (size_t i = 0; i < bits_.size(); ++i) {
    if (i > 0) out += ", ";
    if (!bits_[i]) out += "!";
    out += registry.name(static_cast<EventId>(i));
  }
  out += "}";
  return out;
}

}  // namespace tud
