#include "events/event_registry.h"

#include "util/check.h"

namespace tud {

EventId EventRegistry::Register(std::string name, double probability) {
  TUD_CHECK(probability >= 0.0 && probability <= 1.0)
      << "event '" << name << "' has probability " << probability;
  TUD_CHECK(index_.find(name) == index_.end())
      << "duplicate event name '" << name << "'";
  EventId id = static_cast<EventId>(probabilities_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  probabilities_.push_back(probability);
  return id;
}

std::optional<EventId> EventRegistry::TryRegister(std::string name,
                                                  double probability) {
  if (!(probability >= 0.0 && probability <= 1.0)) return std::nullopt;
  if (index_.find(name) != index_.end()) return std::nullopt;
  EventId id = static_cast<EventId>(probabilities_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  probabilities_.push_back(probability);
  return id;
}

EventId EventRegistry::RegisterAnonymous(double probability) {
  return Register("_e" + std::to_string(probabilities_.size()), probability);
}

std::optional<EventId> EventRegistry::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& EventRegistry::name(EventId id) const {
  TUD_CHECK_LT(id, names_.size());
  return names_[id];
}

double EventRegistry::probability(EventId id) const {
  TUD_CHECK_LT(id, probabilities_.size());
  return probabilities_[id];
}

void EventRegistry::set_probability(EventId id, double probability) {
  TUD_CHECK_LT(id, probabilities_.size());
  TUD_CHECK(probability >= 0.0 && probability <= 1.0);
  probabilities_[id] = probability;
}

bool EventRegistry::TrySetProbability(EventId id, double probability) {
  if (id >= probabilities_.size()) return false;
  if (!(probability >= 0.0 && probability <= 1.0)) return false;
  probabilities_[id] = probability;
  return true;
}

}  // namespace tud
