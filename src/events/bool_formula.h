#ifndef TUD_EVENTS_BOOL_FORMULA_H_
#define TUD_EVENTS_BOOL_FORMULA_H_

#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "events/event_registry.h"
#include "events/valuation.h"

namespace tud {

/// A propositional formula over events. This is the annotation language of
/// c-instances (Imielinski-Lipski): each fact of a c-instance carries a
/// BoolFormula, and a possible world keeps exactly the facts whose formula
/// evaluates to true under the chosen valuation.
///
/// Formulas are immutable trees shared via shared_ptr; all constructors
/// perform light simplification against constants.
class BoolFormula {
 public:
  enum class Kind { kConst, kVar, kNot, kAnd, kOr };

  /// The constant true / false formula.
  static BoolFormula Constant(bool value);
  static BoolFormula True() { return Constant(true); }
  static BoolFormula False() { return Constant(false); }

  /// The formula consisting of a single event.
  static BoolFormula Var(EventId event);

  /// Negation, conjunction, disjunction. And/Or of an empty list are the
  /// neutral elements (true / false respectively).
  static BoolFormula Not(const BoolFormula& f);
  static BoolFormula And(const std::vector<BoolFormula>& fs);
  static BoolFormula Or(const std::vector<BoolFormula>& fs);
  static BoolFormula And(const BoolFormula& a, const BoolFormula& b);
  static BoolFormula Or(const BoolFormula& a, const BoolFormula& b);

  /// Parses a formula like "pods & !stoc | (x & y)" against `registry`.
  /// Operators: ! (not), & (and), | (or), parentheses; '&' binds tighter
  /// than '|'. Identifiers must already be registered. Returns nullopt on
  /// syntax errors or unknown events.
  static std::optional<BoolFormula> Parse(std::string_view text,
                                          const EventRegistry& registry);

  Kind kind() const { return node_->kind; }
  bool const_value() const;
  EventId var() const;
  const std::vector<BoolFormula>& children() const;

  /// Truth value under a total valuation.
  bool Evaluate(const Valuation& valuation) const;

  /// All events occurring in the formula, deduplicated, ascending.
  std::vector<EventId> Events() const;

  /// True if the formula contains no negation (monotone annotations keep
  /// possible worlds closed under adding events; TIDs are the special case
  /// of a single positive literal per fact).
  bool IsPositive() const;

  /// Renders with registry names, fully parenthesised.
  std::string ToString(const EventRegistry& registry) const;

  /// Internal node representation; public only so the implementation's
  /// file-local helpers can allocate nodes. Not part of the stable API.
  struct Node {
    Kind kind;
    bool const_value = false;
    EventId var = kInvalidEvent;
    std::vector<BoolFormula> children;
  };

 private:
  explicit BoolFormula(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  std::shared_ptr<const Node> node_;
};

}  // namespace tud

#endif  // TUD_EVENTS_BOOL_FORMULA_H_
