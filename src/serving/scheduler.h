#ifndef TUD_SERVING_SCHEDULER_H_
#define TUD_SERVING_SCHEDULER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "inference/junction_tree.h"

namespace tud {
namespace serving {

/// A work-stealing task scheduler — the execution substrate of the
/// serving layer. N worker threads each own a Chase-Lev deque; tasks
/// spawned *from* a worker go to the bottom of its own deque (LIFO, so
/// a drain task's fan-out stays hot in that worker's cache) while idle
/// workers steal from the top (FIFO, so the oldest work migrates).
/// External submissions enter through one bounded intake queue whose
/// capacity is the backpressure bound: Submit blocks when serving
/// cannot keep up instead of queueing without limit.
///
/// Each worker owns a PlanScratch arena, reachable from inside a task
/// via CurrentScratch(): a JunctionTreePlan::Execute per query reuses
/// the worker's grow-only buffer, so steady-state serving performs no
/// allocation per query.
///
/// The deques use sequentially-consistent atomics on their top/bottom
/// indices and atomic slot cells rather than standalone fences — the
/// fence-based Chase-Lev formulation is not modelled by
/// ThreadSanitizer, and the serving tests run under TSan.
class TaskScheduler {
 public:
  using Task = std::function<void()>;

  struct Options {
    /// Worker threads; 0 means std::thread::hardware_concurrency().
    unsigned num_threads = 0;
    /// Intake bound: Submit blocks once this many external tasks are
    /// queued and unclaimed (backpressure).
    size_t queue_capacity = 4096;
  };

  struct Stats {
    uint64_t submitted = 0;  ///< Tasks accepted (Submit + Spawn).
    uint64_t executed = 0;   ///< Tasks run to completion.
    uint64_t stolen = 0;     ///< Tasks obtained by stealing.
    uint64_t failed = 0;     ///< Tasks that threw (contained per task:
                             ///< the worker survives, the task's own
                             ///< promise carries the error).
  };

  TaskScheduler();  ///< Default options (nested-class NSDMI rules forbid
                    ///< `= {}` as a default argument here).
  explicit TaskScheduler(const Options& options);
  TaskScheduler(const TaskScheduler&) = delete;
  TaskScheduler& operator=(const TaskScheduler&) = delete;
  /// Drains outstanding tasks, then stops and joins the workers.
  ~TaskScheduler();

  /// Enqueues a task from any thread. Blocks while the intake queue is
  /// at capacity (from a worker thread it goes to the worker's own
  /// deque instead — workers are the consumers, so blocking one on
  /// backpressure could live-lock the pool). Returns false only after
  /// shutdown has begun.
  bool Submit(Task task);

  /// Enqueues a subtask. From a worker thread this pushes onto the
  /// worker's own deque — the cheap path fan-out uses (no lock, no
  /// backpressure check; stealable by idle workers). From any other
  /// thread it is Submit.
  bool Spawn(Task task);

  /// Blocks until every task accepted so far has finished.
  void Drain();

  unsigned num_threads() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// True when the calling thread is one of this scheduler's workers.
  /// Callers layering their own backpressure on top (e.g. the serving
  /// intake) must not block a worker thread — workers are the
  /// consumers, so blocking one can live-lock the pool.
  bool OnWorkerThread() const;
  Stats stats() const;

  /// The calling worker thread's scratch arena, or nullptr when the
  /// caller is not a scheduler worker. Valid for the duration of the
  /// running task; tasks must not hand it to other threads.
  static PlanScratch* CurrentScratch();

 private:
  /// Growable single-owner / multi-thief deque (Chase-Lev). The owner
  /// pushes and pops at the bottom; thieves take from the top. Slots
  /// hold heap-allocated Task pointers; retired ring buffers are kept
  /// until destruction because a concurrent thief may still be reading
  /// a superseded array.
  class WorkDeque {
   public:
    WorkDeque();
    ~WorkDeque();

    void PushBottom(Task* task);  ///< Owner only.
    Task* PopBottom();            ///< Owner only.
    Task* Steal();                ///< Any thread.
    bool Empty() const;

   private:
    struct Ring {
      explicit Ring(uint64_t capacity)
          : capacity(capacity),
            mask(capacity - 1),
            slots(new std::atomic<Task*>[capacity]) {}
      Task* Get(uint64_t i) const {
        return slots[i & mask].load(std::memory_order_relaxed);
      }
      void Put(uint64_t i, Task* t) {
        slots[i & mask].store(t, std::memory_order_relaxed);
      }
      uint64_t capacity;
      uint64_t mask;
      std::unique_ptr<std::atomic<Task*>[]> slots;
    };

    Ring* Grow(Ring* ring, uint64_t bottom, uint64_t top);

    std::atomic<uint64_t> top_{0};
    std::atomic<uint64_t> bottom_{0};
    std::atomic<Ring*> ring_;
    std::vector<std::unique_ptr<Ring>> retired_;  ///< Owner-only writes.
  };

  struct Worker {
    WorkDeque deque;
    PlanScratch scratch;
    std::thread thread;
  };

  void WorkerLoop(unsigned index);
  /// One task from anywhere (own deque, intake, steal), else nullptr.
  Task* FindWork(unsigned index, uint64_t* rng_state);
  void RunTask(Task* task);

  size_t queue_capacity_;
  std::vector<std::unique_ptr<Worker>> workers_;

  std::mutex intake_mu_;
  std::condition_variable intake_not_full_;
  std::deque<Task*> intake_;

  std::mutex park_mu_;
  std::condition_variable park_cv_;

  std::mutex drain_mu_;
  std::condition_variable drain_cv_;

  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> outstanding_{0};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> executed_{0};
  std::atomic<uint64_t> stolen_{0};
  std::atomic<uint64_t> failed_{0};
};

}  // namespace serving
}  // namespace tud

#endif  // TUD_SERVING_SCHEDULER_H_
