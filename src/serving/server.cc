#include "serving/server.h"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <utility>

#include "automata/uncertain_tree.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "uncertain/pcc_instance.h"

namespace tud {
namespace serving {

namespace {

TaskScheduler::Options SchedulerOptions(const ServingOptions& options) {
  TaskScheduler::Options so;
  so.num_threads = options.num_threads;
  so.queue_capacity = options.queue_capacity;
  return so;
}

}  // namespace

ServingSession::ServingSession(const BoolCircuit& circuit,
                               const EventRegistry& registry,
                               const ServingOptions& options)
    : circuit_(&circuit),
      registry_(&registry),
      options_(options),
      engine_(options.seed_topological, /*cache_plans=*/true),
      scheduler_(SchedulerOptions(options)) {}

ServingSession ServingSession::Over(QuerySession& session,
                                    const ServingOptions& options) {
  return ServingSession(session.pcc().circuit(), session.pcc().events(),
                        options);
}

ServingSession ServingSession::Over(TreeQuerySession& session,
                                    const ServingOptions& options) {
  return ServingSession(session.tree().circuit(), session.events(), options);
}

EngineResult ServingSession::RunOne(GateId root, const Evidence& evidence) {
  return engine_.Estimate(*circuit_, root, *registry_, evidence);
}

QueryBudget ServingSession::MakeBudget(const QueryOptions& query) const {
  QueryBudget budget;
  const double deadline_ms =
      query.deadline_ms > 0 ? query.deadline_ms : options_.default_deadline_ms;
  if (deadline_ms > 0) budget = QueryBudget::WithDeadlineMs(deadline_ms);
  budget.max_table_cells = query.max_table_cells;
  budget.max_samples = query.max_samples;
  budget.cancel = query.cancel.get();
  return budget;
}

namespace {

/// EWMA step with alpha = 1/8, seeded by the first sample.
uint64_t EwmaStep(uint64_t old_value, uint64_t sample) {
  return old_value == 0 ? sample : old_value - old_value / 8 + sample / 8;
}

}  // namespace

EngineResult ServingSession::RunGoverned(const Request& request) {
  const auto start = std::chrono::steady_clock::now();
  EngineResult result =
      request.budget.unlimited()
          ? engine_.Estimate(*circuit_, request.root, *registry_,
                             request.evidence)
          : engine_.Estimate(*circuit_, request.root, *registry_,
                             request.evidence, request.budget);
  const uint64_t sample_ns = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
  // Calibrate the cost model: the plan is cached by now (Estimate built
  // it), so its cell count converts the service-time sample into a
  // rate — nanoseconds per 1024 cells — that transfers across plans of
  // different sizes, unlike a flat per-query mean.
  const JunctionTreePlan* plan = engine_.plan_cache()->Lookup(request.root);
  const uint64_t cells =
      plan == nullptr ? 0 : static_cast<uint64_t>(plan->total_cells());
  if (cells > 0) {
    const uint64_t rate_sample = sample_ns * 1024 / cells;
    ewma_ns_per_kilocell_.store(
        EwmaStep(ewma_ns_per_kilocell_.load(std::memory_order_relaxed),
                 rate_sample),
        std::memory_order_relaxed);
    ewma_cells_.store(
        EwmaStep(ewma_cells_.load(std::memory_order_relaxed), cells),
        std::memory_order_relaxed);
  }
  return result;
}

bool ServingSession::ShouldShed(uint64_t backlog_cells,
                                uint64_t ns_per_kilocell, unsigned workers,
                                int64_t headroom_ns) {
  if (ns_per_kilocell == 0 || backlog_cells == 0) return false;
  if (headroom_ns <= 0) return true;
  const double est_wait_ns = static_cast<double>(backlog_cells) /
                             static_cast<double>(std::max(1u, workers)) *
                             static_cast<double>(ns_per_kilocell) / 1024.0;
  return est_wait_ns > static_cast<double>(headroom_ns);
}

void ServingSession::Fulfil(const std::shared_ptr<Request>& request) {
  // Per-task exception containment: an engine throw (injected
  // bad_alloc, a builder failure) fails this query's own future; the
  // worker thread — and every other queued future — is unaffected.
  try {
    request->promise.set_value(RunGoverned(*request));
  } catch (...) {
    failed_queries_.fetch_add(1, std::memory_order_relaxed);
    request->promise.set_exception(std::current_exception());
  }
  backlog_cells_.fetch_sub(request->charged_cells, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
}

std::future<EngineResult> ServingSession::Submit(GateId lineage,
                                                 Evidence evidence) {
  return Submit(lineage, std::move(evidence), QueryOptions{});
}

std::future<EngineResult> ServingSession::Submit(GateId lineage,
                                                 Evidence evidence,
                                                 const QueryOptions& query) {
  auto request = std::make_shared<Request>();
  request->root = lineage;
  request->evidence = std::move(evidence);
  request->budget = MakeBudget(query);
  request->cancel = query.cancel;
  std::future<EngineResult> result = request->promise.get_future();

  // Price the request in table cells: a cached plan gives the exact
  // count; a cold root is charged the EWMA of observed plan sizes (0 on
  // a cold session — the query is then invisible to admission, which
  // errs on the admit side by design).
  {
    const JunctionTreePlan* plan = engine_.plan_cache()->Lookup(lineage);
    request->charged_cells =
        plan == nullptr ? ewma_cells_.load(std::memory_order_relaxed)
                        : static_cast<uint64_t>(plan->total_cells());
  }

  // Queue-time-aware admission: if draining the cell backlog already
  // queued will, by the calibrated ns-per-kilocell rate, outlast this
  // query's deadline, shed it now with a typed rejection — O(1) at the
  // door beats a guaranteed kDeadlineExceeded after minutes in line.
  // Only sheds on a warm model and only for governed queries with a
  // deadline (ShouldShed's contract).
  if (request->budget.has_deadline()) {
    const int64_t headroom_ns =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            request->budget.deadline - std::chrono::steady_clock::now())
            .count();
    if (ShouldShed(backlog_cells_.load(std::memory_order_relaxed),
                   ewma_ns_per_kilocell_.load(std::memory_order_relaxed),
                   scheduler_.num_threads(), headroom_ns)) {
      request->promise.set_value(
          MakeStatusResult("serving", EngineStatus::kRejected));
      return result;
    }
  }

  if (!options_.coalesce) {
    // Load shedding at the intake: past shed_capacity the query is
    // rejected (typed, immediate) instead of the submitter blocking.
    if (options_.shed_capacity > 0 &&
        in_flight_.load(std::memory_order_relaxed) >= options_.shed_capacity) {
      request->promise.set_value(
          MakeStatusResult("serving", EngineStatus::kRejected));
      return result;
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    backlog_cells_.fetch_add(request->charged_cells,
                             std::memory_order_relaxed);
    bool accepted = scheduler_.Submit([this, request] { Fulfil(request); });
    if (!accepted) FailRequest(request);
    return result;
  }
  bool schedule_drain = false;
  {
    std::unique_lock<std::mutex> lock(pending_mu_);
    if (options_.shed_capacity > 0 &&
        pending_.size() >= options_.shed_capacity) {
      lock.unlock();
      request->promise.set_value(
          MakeStatusResult("serving", EngineStatus::kRejected));
      return result;
    }
    // Backpressure: the coalescing buffer honours the same bound as the
    // scheduler intake, so memory stays bounded under overload. Worker
    // threads never block here — they are the consumers that shrink
    // pending_, so blocking one could live-lock the pool.
    if (!scheduler_.OnWorkerThread()) {
      pending_not_full_.wait(lock, [&] {
        return pending_.size() < options_.queue_capacity;
      });
    }
    in_flight_.fetch_add(1, std::memory_order_relaxed);
    backlog_cells_.fetch_add(request->charged_cells,
                             std::memory_order_relaxed);
    pending_.push_back(std::move(request));
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      schedule_drain = true;
    }
  }
  // At most one drain task is pending at a time: submissions racing in
  // behind it are picked up by the same drain — that is the coalescing.
  if (schedule_drain && !scheduler_.Submit([this] { DrainPending(); })) {
    // Shutdown began: no drain will ever run, so fail everything queued
    // (leaving drain_scheduled_ set would silently strand all later
    // submissions too).
    FailAllPending();
  }
  return result;
}

void ServingSession::DrainPending() {
  std::vector<std::shared_ptr<Request>> batch;
  bool reschedule = false;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    size_t take = std::min(pending_.size(), options_.max_coalesce);
    batch.assign(std::make_move_iterator(pending_.begin()),
                 std::make_move_iterator(pending_.begin() + take));
    pending_.erase(pending_.begin(), pending_.begin() + take);
    if (pending_.empty()) {
      drain_scheduled_ = false;
    } else {
      reschedule = true;  // Oversized burst: keep drain_scheduled_ set.
    }
  }
  pending_not_full_.notify_all();
  if (reschedule && !scheduler_.Spawn([this] { DrainPending(); }))
    FailAllPending();

  // Group the batch by evidence (groups are what a shared pass can
  // answer together; grouping also keeps the fan-out deterministic).
  // Governed requests stay out of the groups: each carries its own
  // budget, which a shared pass cannot honour per member.
  std::vector<std::vector<std::shared_ptr<Request>>> groups;
  for (auto& request : batch) {
    if (!request->budget.unlimited()) {
      std::shared_ptr<Request> r = std::move(request);
      if (!scheduler_.Spawn([this, r] { Fulfil(r); })) FailRequest(r);
      continue;
    }
    bool placed = false;
    for (auto& group : groups) {
      if (group.front()->evidence == request->evidence) {
        group.push_back(std::move(request));
        placed = true;
        break;
      }
    }
    if (!placed) groups.emplace_back(1, std::move(request));
  }

  for (auto& group : groups) {
    if (options_.shared_pass && group.size() > 1) {
      // One batched estimate for the whole group: a single calibrating
      // message pass over the union cone when it stays narrow.
      auto shared_group = std::make_shared<
          std::vector<std::shared_ptr<Request>>>(std::move(group));
      bool accepted = scheduler_.Spawn([this, shared_group] {
        std::vector<GateId> roots;
        roots.reserve(shared_group->size());
        for (const auto& request : *shared_group)
          roots.push_back(request->root);
        try {
          std::vector<EngineResult> results = engine_.EstimateBatch(
              *circuit_, roots, *registry_, shared_group->front()->evidence);
          for (size_t i = 0; i < shared_group->size(); ++i)
            (*shared_group)[i]->promise.set_value(results[i]);
        } catch (...) {
          // Contain the throw to this group's futures: every other
          // queued query (and the worker itself) is unaffected.
          for (const auto& request : *shared_group)
            request->promise.set_exception(std::current_exception());
        }
        uint64_t group_cells = 0;
        for (const auto& request : *shared_group)
          group_cells += request->charged_cells;
        backlog_cells_.fetch_sub(group_cells, std::memory_order_relaxed);
        in_flight_.fetch_sub(shared_group->size(),
                             std::memory_order_relaxed);
      });
      if (!accepted)
        for (const auto& request : *shared_group) FailRequest(request);
      continue;
    }
    // Per-root fan-out: one subtask per query, pushed onto this
    // worker's deque (idle workers steal their share).
    for (auto& request : group) {
      std::shared_ptr<Request> r = std::move(request);
      if (!scheduler_.Spawn([this, r] { Fulfil(r); })) FailRequest(r);
    }
  }
}

void ServingSession::FailRequest(const std::shared_ptr<Request>& request) {
  backlog_cells_.fetch_sub(request->charged_cells, std::memory_order_relaxed);
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  request->promise.set_exception(std::make_exception_ptr(
      std::runtime_error("ServingSession: shutdown began before the query "
                         "could be scheduled")));
}

void ServingSession::FailAllPending() {
  std::vector<std::shared_ptr<Request>> orphaned;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    drain_scheduled_ = false;
    orphaned.swap(pending_);
  }
  pending_not_full_.notify_all();
  for (const auto& request : orphaned) FailRequest(request);
}

EngineResult ServingSession::Evaluate(GateId lineage,
                                      const Evidence& evidence) {
  return RunOne(lineage, evidence);
}

EngineResult ServingSession::Evaluate(GateId lineage, const Evidence& evidence,
                                      const QueryOptions& query) {
  const QueryBudget budget = MakeBudget(query);
  if (budget.unlimited()) return RunOne(lineage, evidence);
  return engine_.Estimate(*circuit_, lineage, *registry_, evidence, budget);
}

void ServingSession::Prewarm(GateId lineage) {
  engine_.Prewarm(*circuit_, lineage);
}

void ServingSession::Drain() { scheduler_.Drain(); }

const ConcurrentPlanCache& ServingSession::plan_cache() const {
  return *engine_.plan_cache();
}

// ---------------------------------------------------------------------------
// EpochedServingSession
// ---------------------------------------------------------------------------

EpochedServingSession::EpochedServingSession(
    const incremental::EpochManager& epochs, const ServingOptions& options)
    : epochs_(&epochs),
      default_deadline_ms_(options.default_deadline_ms),
      scheduler_(SchedulerOptions(options)) {}

QueryBudget EpochedServingSession::MakeBudget(
    const QueryOptions& query) const {
  QueryBudget budget;
  const double deadline_ms =
      query.deadline_ms > 0 ? query.deadline_ms : default_deadline_ms_;
  if (deadline_ms > 0) budget = QueryBudget::WithDeadlineMs(deadline_ms);
  budget.max_table_cells = query.max_table_cells;
  budget.max_samples = query.max_samples;
  budget.cancel = query.cancel.get();
  return budget;
}

EngineResult EpochedServingSession::RunOne(size_t query_index,
                                           const Evidence& evidence,
                                           const QueryBudget& budget) const {
  // One acquire load pins the whole epoch for this query: circuit,
  // registry, plans, and roots are all read through `snap`, and the
  // shared_ptr keeps the epoch alive even if the writer supersedes it
  // mid-evaluation.
  std::shared_ptr<const incremental::SessionSnapshot> snap =
      epochs_->Current();
  if (snap == nullptr) {
    // No epoch published yet: a sequencing mistake on the caller's
    // side, answered (not thrown) so one early query cannot take a
    // worker down.
    return MakeStatusResult("epoched_jt", EngineStatus::kInvalidArgument);
  }
  if (query_index >= snap->query_roots.size()) {
    // An index the epoch does not carry (racing deregistration, stale
    // handle): a normal answer, not a crash.
    return MakeStatusResult("epoched_jt", EngineStatus::kInvalidArgument);
  }
  const GateId root = snap->query_roots[query_index];
  EngineResult result;
  result.engine = "epoched_jt";
  if (budget.unlimited()) {
    const JunctionTreePlan* plan =
        snap->plans->GetOrBuild(*snap->circuit, root);
    plan->FillStats(&result.stats);
    result.value = plan->Execute(*snap->registry, evidence,
                                 TaskScheduler::CurrentScratch());
    return result;
  }
  if (budget.cancelled()) {
    return MakeStatusResult("epoched_jt", EngineStatus::kCancelled);
  }
  if (budget.past_deadline()) {
    return MakeStatusResult("epoched_jt", EngineStatus::kDeadlineExceeded);
  }
  const JunctionTreePlan* plan =
      snap->plans->GetOrBuild(*snap->circuit, root, &budget);
  plan->FillStats(&result.stats);
  if (plan->build_status() != EngineStatus::kOk) {
    result.status = plan->build_status();
    result.error_bound = 1.0;
    return result;
  }
  double value = 0.0;
  EngineStatus st =
      plan->ExecuteGoverned(*snap->registry, evidence,
                            TaskScheduler::CurrentScratch(), budget, &value);
  if (st != EngineStatus::kOk) {
    result.status = st;
    result.error_bound = 1.0;
    return result;
  }
  result.value = value;
  return result;
}

std::future<EngineResult> EpochedServingSession::Submit(size_t query_index,
                                                        Evidence evidence) {
  return SubmitImpl(query_index, std::move(evidence), QueryBudget{}, nullptr);
}

std::future<EngineResult> EpochedServingSession::Submit(
    size_t query_index, Evidence evidence, const QueryOptions& query) {
  return SubmitImpl(query_index, std::move(evidence), MakeBudget(query),
                    query.cancel);
}

std::future<EngineResult> EpochedServingSession::SubmitImpl(
    size_t query_index, Evidence evidence, QueryBudget budget,
    std::shared_ptr<const CancelToken> cancel) {
  auto promise = std::make_shared<std::promise<EngineResult>>();
  std::future<EngineResult> result = promise->get_future();
  auto task = [this, promise, query_index, evidence = std::move(evidence),
               budget, cancel = std::move(cancel)]() mutable {
    try {
      promise->set_value(RunOne(query_index, evidence, budget));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };
  if (!scheduler_.Submit(std::move(task))) {
    promise->set_exception(std::make_exception_ptr(
        std::runtime_error("EpochedServingSession: shutdown began before "
                           "the query could be scheduled")));
  }
  return result;
}

EngineResult EpochedServingSession::Evaluate(size_t query_index,
                                             const Evidence& evidence) {
  return RunOne(query_index, evidence, QueryBudget{});
}

EngineResult EpochedServingSession::Evaluate(size_t query_index,
                                             const Evidence& evidence,
                                             const QueryOptions& query) {
  return RunOne(query_index, evidence, MakeBudget(query));
}

void EpochedServingSession::Drain() { scheduler_.Drain(); }

}  // namespace serving
}  // namespace tud
