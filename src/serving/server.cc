#include "serving/server.h"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "automata/uncertain_tree.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "uncertain/pcc_instance.h"

namespace tud {
namespace serving {

namespace {

TaskScheduler::Options SchedulerOptions(const ServingOptions& options) {
  TaskScheduler::Options so;
  so.num_threads = options.num_threads;
  so.queue_capacity = options.queue_capacity;
  return so;
}

}  // namespace

ServingSession::ServingSession(const BoolCircuit& circuit,
                               const EventRegistry& registry,
                               const ServingOptions& options)
    : circuit_(&circuit),
      registry_(&registry),
      options_(options),
      engine_(options.seed_topological, /*cache_plans=*/true),
      scheduler_(SchedulerOptions(options)) {}

ServingSession ServingSession::Over(QuerySession& session,
                                    const ServingOptions& options) {
  return ServingSession(session.pcc().circuit(), session.pcc().events(),
                        options);
}

ServingSession ServingSession::Over(TreeQuerySession& session,
                                    const ServingOptions& options) {
  return ServingSession(session.tree().circuit(), session.events(), options);
}

EngineResult ServingSession::RunOne(GateId root, const Evidence& evidence) {
  return engine_.Estimate(*circuit_, root, *registry_, evidence);
}

std::future<EngineResult> ServingSession::Submit(GateId lineage,
                                                 Evidence evidence) {
  auto request = std::make_shared<Request>();
  request->root = lineage;
  request->evidence = std::move(evidence);
  std::future<EngineResult> result = request->promise.get_future();
  if (!options_.coalesce) {
    bool accepted = scheduler_.Submit([this, request] {
      request->promise.set_value(RunOne(request->root, request->evidence));
    });
    if (!accepted) FailRequest(request);
    return result;
  }
  bool schedule_drain = false;
  {
    std::unique_lock<std::mutex> lock(pending_mu_);
    // Backpressure: the coalescing buffer honours the same bound as the
    // scheduler intake, so memory stays bounded under overload. Worker
    // threads never block here — they are the consumers that shrink
    // pending_, so blocking one could live-lock the pool.
    if (!scheduler_.OnWorkerThread()) {
      pending_not_full_.wait(lock, [&] {
        return pending_.size() < options_.queue_capacity;
      });
    }
    pending_.push_back(std::move(request));
    if (!drain_scheduled_) {
      drain_scheduled_ = true;
      schedule_drain = true;
    }
  }
  // At most one drain task is pending at a time: submissions racing in
  // behind it are picked up by the same drain — that is the coalescing.
  if (schedule_drain && !scheduler_.Submit([this] { DrainPending(); })) {
    // Shutdown began: no drain will ever run, so fail everything queued
    // (leaving drain_scheduled_ set would silently strand all later
    // submissions too).
    FailAllPending();
  }
  return result;
}

void ServingSession::DrainPending() {
  std::vector<std::shared_ptr<Request>> batch;
  bool reschedule = false;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    size_t take = std::min(pending_.size(), options_.max_coalesce);
    batch.assign(std::make_move_iterator(pending_.begin()),
                 std::make_move_iterator(pending_.begin() + take));
    pending_.erase(pending_.begin(), pending_.begin() + take);
    if (pending_.empty()) {
      drain_scheduled_ = false;
    } else {
      reschedule = true;  // Oversized burst: keep drain_scheduled_ set.
    }
  }
  pending_not_full_.notify_all();
  if (reschedule && !scheduler_.Spawn([this] { DrainPending(); }))
    FailAllPending();

  // Group the batch by evidence (groups are what a shared pass can
  // answer together; grouping also keeps the fan-out deterministic).
  std::vector<std::vector<std::shared_ptr<Request>>> groups;
  for (auto& request : batch) {
    bool placed = false;
    for (auto& group : groups) {
      if (group.front()->evidence == request->evidence) {
        group.push_back(std::move(request));
        placed = true;
        break;
      }
    }
    if (!placed) groups.emplace_back(1, std::move(request));
  }

  for (auto& group : groups) {
    if (options_.shared_pass && group.size() > 1) {
      // One batched estimate for the whole group: a single calibrating
      // message pass over the union cone when it stays narrow.
      auto shared_group = std::make_shared<
          std::vector<std::shared_ptr<Request>>>(std::move(group));
      bool accepted = scheduler_.Spawn([this, shared_group] {
        std::vector<GateId> roots;
        roots.reserve(shared_group->size());
        for (const auto& request : *shared_group)
          roots.push_back(request->root);
        std::vector<EngineResult> results = engine_.EstimateBatch(
            *circuit_, roots, *registry_, shared_group->front()->evidence);
        for (size_t i = 0; i < shared_group->size(); ++i)
          (*shared_group)[i]->promise.set_value(results[i]);
      });
      if (!accepted)
        for (const auto& request : *shared_group) FailRequest(request);
      continue;
    }
    // Per-root fan-out: one subtask per query, pushed onto this
    // worker's deque (idle workers steal their share).
    for (auto& request : group) {
      std::shared_ptr<Request> r = std::move(request);
      bool accepted = scheduler_.Spawn([this, r] {
        r->promise.set_value(RunOne(r->root, r->evidence));
      });
      if (!accepted) FailRequest(r);
    }
  }
}

void ServingSession::FailRequest(const std::shared_ptr<Request>& request) {
  request->promise.set_exception(std::make_exception_ptr(
      std::runtime_error("ServingSession: shutdown began before the query "
                         "could be scheduled")));
}

void ServingSession::FailAllPending() {
  std::vector<std::shared_ptr<Request>> orphaned;
  {
    std::lock_guard<std::mutex> lock(pending_mu_);
    drain_scheduled_ = false;
    orphaned.swap(pending_);
  }
  pending_not_full_.notify_all();
  for (const auto& request : orphaned) FailRequest(request);
}

EngineResult ServingSession::Evaluate(GateId lineage,
                                      const Evidence& evidence) {
  return RunOne(lineage, evidence);
}

void ServingSession::Prewarm(GateId lineage) {
  engine_.Prewarm(*circuit_, lineage);
}

void ServingSession::Drain() { scheduler_.Drain(); }

const ConcurrentPlanCache& ServingSession::plan_cache() const {
  return *engine_.plan_cache();
}

// ---------------------------------------------------------------------------
// EpochedServingSession
// ---------------------------------------------------------------------------

EpochedServingSession::EpochedServingSession(
    const incremental::EpochManager& epochs, const ServingOptions& options)
    : epochs_(&epochs), scheduler_(SchedulerOptions(options)) {}

EngineResult EpochedServingSession::RunOne(size_t query_index,
                                           const Evidence& evidence) const {
  // One acquire load pins the whole epoch for this query: circuit,
  // registry, plans, and roots are all read through `snap`, and the
  // shared_ptr keeps the epoch alive even if the writer supersedes it
  // mid-evaluation.
  std::shared_ptr<const incremental::SessionSnapshot> snap =
      epochs_->Current();
  if (snap == nullptr) {
    throw std::runtime_error(
        "EpochedServingSession: no epoch published yet");
  }
  if (query_index >= snap->query_roots.size()) {
    throw std::out_of_range(
        "EpochedServingSession: query index not registered in this epoch");
  }
  const GateId root = snap->query_roots[query_index];
  const JunctionTreePlan* plan = snap->plans->GetOrBuild(*snap->circuit, root);
  EngineResult result;
  plan->FillStats(&result.stats);
  result.value =
      plan->Execute(*snap->registry, evidence, TaskScheduler::CurrentScratch());
  result.engine = "epoched_jt";
  return result;
}

std::future<EngineResult> EpochedServingSession::Submit(size_t query_index,
                                                        Evidence evidence) {
  auto promise = std::make_shared<std::promise<EngineResult>>();
  std::future<EngineResult> result = promise->get_future();
  auto task = [this, promise, query_index,
               evidence = std::move(evidence)]() mutable {
    try {
      promise->set_value(RunOne(query_index, evidence));
    } catch (...) {
      promise->set_exception(std::current_exception());
    }
  };
  if (!scheduler_.Submit(std::move(task))) {
    promise->set_exception(std::make_exception_ptr(
        std::runtime_error("EpochedServingSession: shutdown began before "
                           "the query could be scheduled")));
  }
  return result;
}

EngineResult EpochedServingSession::Evaluate(size_t query_index,
                                             const Evidence& evidence) {
  return RunOne(query_index, evidence);
}

void EpochedServingSession::Drain() { scheduler_.Drain(); }

}  // namespace serving
}  // namespace tud
