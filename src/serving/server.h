#ifndef TUD_SERVING_SERVER_H_
#define TUD_SERVING_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "incremental/epoch.h"
#include "inference/engine.h"
#include "serving/scheduler.h"
#include "util/budget.h"

namespace tud {

class QuerySession;
class TreeQuerySession;
class ConcurrentPlanCache;

namespace serving {

struct ServingOptions {
  /// Scheduler workers; 0 means hardware concurrency.
  unsigned num_threads = 0;
  /// Backpressure bound: with coalesce=false it caps the scheduler's
  /// intake queue (see TaskScheduler::Options); with coalesce=true it
  /// caps the pending coalescing buffer. Either way, Submit blocks
  /// once this many queries are queued and unclaimed.
  size_t queue_capacity = 4096;
  /// Batch the intake: submissions arriving while a drain task is
  /// pending are picked up together, grouped by evidence, and fanned
  /// out from inside the pool (deque pushes instead of per-query
  /// intake-queue round trips).
  bool coalesce = true;
  /// Most requests one drain task takes (the rest reschedule).
  size_t max_coalesce = 64;
  /// Route each coalesced same-evidence group through one
  /// JunctionTreeEngine::EstimateBatch — a single shared message pass
  /// when the roots' union cone stays narrow. Off by default: the
  /// shared pass sums in a different association order, so results are
  /// equal only to rounding (the default per-root path is bit-identical
  /// to sequential evaluation).
  bool shared_pass = false;
  /// Seed decompositions from circuit construction order (see
  /// JunctionTreePlan::Build).
  bool seed_topological = false;
  /// Default per-query deadline in milliseconds, applied to queries
  /// whose QueryOptions carry none. 0 = no default deadline.
  double default_deadline_ms = 0;
  /// Admission control: with a nonzero shed capacity, a submission that
  /// finds this many queries already queued is *shed* — its future
  /// resolves immediately to a kRejected EngineResult — instead of
  /// blocking the submitter (the overload answer a serving process
  /// wants: typed rejection, bounded latency). 0 keeps the legacy
  /// blocking backpressure.
  size_t shed_capacity = 0;
};

/// Per-query resource governance for Submit/Evaluate. Default
/// constructed = ungoverned (beyond the session's default deadline).
struct QueryOptions {
  /// Wall-clock deadline in ms from submission; 0 = the session's
  /// default_deadline_ms (which may itself be "none").
  double deadline_ms = 0;
  /// Table-cell cap (junction-tree message cells); 0 = no cap. A query
  /// whose plan would exceed it returns kResourceExhausted before any
  /// arena is allocated.
  uint64_t max_table_cells = 0;
  /// Sample cap for sampling-based engines; 0 = no cap.
  uint32_t max_samples = 0;
  /// Cooperative cancellation: the caller keeps (a copy of) the token
  /// and may Cancel() at any time — queued work resolves kCancelled
  /// when claimed, in-flight work at its next bag-granularity check.
  /// The shared_ptr keeps the token alive until the query resolves.
  std::shared_ptr<const CancelToken> cancel;
};

/// The concurrent serving front-end of the evaluation pipeline: one
/// session answers P(lineage | evidence) queries submitted from any
/// number of threads against one prepared circuit.
///
///   ServingSession serving = ServingSession::Over(session);
///   std::future<EngineResult> f = serving.Submit(lineage);
///   ... f.get().value ...
///
/// Internally: a work-stealing TaskScheduler executes the queries, a
/// ConcurrentPlanCache (inside a thread-safe JunctionTreeEngine with
/// plan caching) compiles each distinct lineage exactly once across all
/// threads, and per-worker scratch arenas make the steady-state numeric
/// pass allocation-free. A coalescing intake groups submissions that
/// arrive together, optionally answering same-evidence groups in one
/// shared batched message pass.
///
/// Phase contract (the compile-once / evaluate-many split, applied to
/// threading): *growing* the circuit — lineage construction via
/// QuerySession::CqLineage and friends — is single-threaded and must be
/// quiescent before serving starts; Submit takes already-built lineage
/// gates. Estimation itself never mutates the circuit, which is what
/// makes the serving phase embarrassingly shareable. The circuit and
/// registry must outlive the session.
class ServingSession {
 public:
  ServingSession(const BoolCircuit& circuit, const EventRegistry& registry,
                 const ServingOptions& options = {});
  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;
  /// Drains in-flight queries, then stops the workers.
  ~ServingSession() = default;

  /// Serves the session's instance circuit. Build all lineages first;
  /// the session keeps references into `session`.
  static ServingSession Over(QuerySession& session,
                             const ServingOptions& options = {});
  /// Serves the tree session's guard circuit (run Lineage(expr) for
  /// every query expression first).
  static ServingSession Over(TreeQuerySession& session,
                             const ServingOptions& options = {});

  /// Enqueues one query; the future resolves to the same EngineResult a
  /// direct JunctionTreeEngine::Estimate would return. Thread-safe;
  /// blocks only under backpressure (more than queue_capacity queries
  /// queued and unclaimed — never when called from a worker thread,
  /// where blocking could live-lock the pool). If the session is
  /// shutting down the future resolves to a std::runtime_error.
  std::future<EngineResult> Submit(GateId lineage, Evidence evidence = {});

  /// As above with per-query governance: the deadline covers queue time
  /// plus execution (a query claimed after its deadline resolves
  /// kDeadlineExceeded without running), caps and cancellation are
  /// checked at bag granularity inside the engine, and admission
  /// control may shed the query up front with kRejected — when the
  /// queue is at shed_capacity, or when the cost model says the backlog
  /// already ahead of it will outlast its deadline (queue-time-aware
  /// admission: reject in O(1) rather than time out in O(queue)). The
  /// backlog is priced in junction-tree table cells, each queued query
  /// charged its own cached plan's total_cells() (the EWMA of observed
  /// plan sizes for a root not compiled yet), against a calibrated
  /// ns-per-cell rate — so one queued 2^20-cell monster counts for what
  /// it costs, not for one "average query". A governed future therefore
  /// always resolves within the deadline plus one bag's slack.
  std::future<EngineResult> Submit(GateId lineage, Evidence evidence,
                                   const QueryOptions& query);

  /// Synchronous evaluation on the calling thread, through the same
  /// plan cache (the single-thread baseline, and an escape hatch for
  /// callers that want no queueing).
  EngineResult Evaluate(GateId lineage, const Evidence& evidence = {});

  /// Synchronous governed evaluation (no queue, so no admission
  /// control: the budget's caps/deadline/token apply directly).
  EngineResult Evaluate(GateId lineage, const Evidence& evidence,
                        const QueryOptions& query);

  /// Compiles the plan for `lineage` now, so serving traffic never pays
  /// its cold Build.
  void Prewarm(GateId lineage);

  /// Blocks until every submitted query has resolved.
  void Drain();

  /// The shared plan cache (builds()/size(): build-once diagnostics).
  const ConcurrentPlanCache& plan_cache() const;

  TaskScheduler& scheduler() { return scheduler_; }
  unsigned num_threads() const { return scheduler_.num_threads(); }

  /// Queries that threw out of the engine (each failed only its own
  /// future; the worker survived). Counts both throws contained at the
  /// serving layer (Fulfil's catch) and tasks that threw out of the
  /// scheduler's own per-task containment.
  uint64_t failed_tasks() const {
    return failed_queries_.load(std::memory_order_relaxed) +
           scheduler_.stats().failed;
  }

  /// The pure admission decision, exposed for unit tests: with a
  /// calibrated rate of `ns_per_kilocell` (EWMA nanoseconds per 1024
  /// table cells), sheds when draining `backlog_cells` across `workers`
  /// workers is estimated to outlast `headroom_ns` (time left until the
  /// candidate's deadline). Never sheds on a cold rate or an empty
  /// backlog; always sheds on a spent deadline with a warm backlog.
  static bool ShouldShed(uint64_t backlog_cells, uint64_t ns_per_kilocell,
                         unsigned workers, int64_t headroom_ns);

 private:
  struct Request {
    GateId root;
    Evidence evidence;
    std::promise<EngineResult> promise;
    QueryBudget budget;  ///< Unlimited unless submitted with options.
    std::shared_ptr<const CancelToken> cancel;  ///< Keeps budget.cancel alive.
    /// Table cells this request was priced at on admission; subtracted
    /// from the backlog when the request resolves (must match what was
    /// added, so it is stored rather than recomputed — the plan cache
    /// may have warmed in between).
    uint64_t charged_cells = 0;
  };

  EngineResult RunOne(GateId root, const Evidence& evidence);
  EngineResult RunGoverned(const Request& request);
  /// Resolves (QueryOptions, session defaults) into a concrete budget,
  /// stamping the deadline now — queue time counts against it.
  QueryBudget MakeBudget(const QueryOptions& query) const;
  /// Executes one request on a worker: governed or legacy path, with
  /// per-task exception containment (a throw fails this future only).
  void Fulfil(const std::shared_ptr<Request>& request);
  /// The drain task: moves out pending requests, groups them by
  /// evidence, and fans the groups out across the pool.
  void DrainPending();
  /// Resolves the request's future to a shutdown error (the scheduler
  /// rejected the work because shutdown has begun) and releases its
  /// in-flight slot.
  void FailRequest(const std::shared_ptr<Request>& request);
  /// Fails every queued request and clears drain_scheduled_ — the
  /// recovery path when scheduling a drain task is rejected.
  void FailAllPending();

  const BoolCircuit* circuit_;
  const EventRegistry* registry_;
  ServingOptions options_;
  /// Thread-safe cached-plan estimator shared by all workers.
  JunctionTreeEngine engine_;

  std::mutex pending_mu_;
  std::condition_variable pending_not_full_;
  std::vector<std::shared_ptr<Request>> pending_;
  bool drain_scheduled_ = false;
  /// Admission cost model (relaxed atomics: the estimate tolerates
  /// staleness; all three are seeded at 0 so an idle session never
  /// sheds on a cold model). The rate is measured in nanoseconds per
  /// 1024 table cells — per-plan sizing: a query is charged its own
  /// plan's total_cells(), not a fleet-average service time.
  std::atomic<uint64_t> ewma_ns_per_kilocell_{0};
  /// EWMA of observed per-query plan size in cells: the admission
  /// charge for a root whose plan is not cached yet.
  std::atomic<uint64_t> ewma_cells_{0};
  /// Σ charged_cells of queries queued or in flight.
  std::atomic<uint64_t> backlog_cells_{0};
  /// Queries queued or in flight (shed_capacity's depth input; the
  /// scheduler's own outstanding count also covers drain bookkeeping
  /// tasks, which would inflate the estimate).
  std::atomic<uint64_t> in_flight_{0};
  /// Engine throws contained by Fulfil (see failed_tasks()).
  std::atomic<uint64_t> failed_queries_{0};

  /// Last member: destroyed (drained + joined) first, while the engine
  /// and circuit its tasks use are still alive.
  TaskScheduler scheduler_;
};

/// The serving front-end for *maintained* instances: answers queries
/// against whatever epoch an IncrementalSession writer has most
/// recently published, while the writer keeps applying updates and
/// publishing new epochs concurrently.
///
/// Each query grabs the current SessionSnapshot exactly once (one
/// acquire load) and evaluates entirely inside it — circuit, registry,
/// plan cache, and query roots all come from the same snapshot, so a
/// reader can never observe a half-updated state, no matter how many
/// epochs the writer publishes mid-query. The snapshot's shared_ptr
/// keeps a superseded epoch alive until its last in-flight reader
/// drains (see incremental/epoch.h).
///
/// Queries are addressed by *registered query index* (the order of
/// Register* calls on the IncrementalSession), not by gate id: gate ids
/// are epoch-relative — a structural update can move a query to a new
/// root — while the query index is stable across epochs.
///
/// At least one epoch must be published before the first query; the
/// manager must outlive the session.
class EpochedServingSession {
 public:
  explicit EpochedServingSession(const incremental::EpochManager& epochs,
                                 const ServingOptions& options = {});
  EpochedServingSession(const EpochedServingSession&) = delete;
  EpochedServingSession& operator=(const EpochedServingSession&) = delete;
  /// Drains in-flight queries, then stops the workers.
  ~EpochedServingSession() = default;

  /// Enqueues one query against the then-current epoch (the snapshot is
  /// grabbed by the worker when the query runs). Thread-safe; blocks
  /// only under backpressure. If the session is shutting down the
  /// future resolves to a std::runtime_error. A query index not
  /// registered in the epoch it runs against (or no epoch published
  /// yet) resolves to a kInvalidArgument result, not an exception — a
  /// racing deregistration is a normal answer, not a crash.
  std::future<EngineResult> Submit(size_t query_index, Evidence evidence = {});

  /// As above with per-query governance (deadline stamped at submit, so
  /// queue time counts; caps and cancellation checked at bag
  /// granularity inside the governed plan execution).
  std::future<EngineResult> Submit(size_t query_index, Evidence evidence,
                                   const QueryOptions& query);

  /// Synchronous evaluation on the calling thread against the current
  /// epoch.
  EngineResult Evaluate(size_t query_index, const Evidence& evidence = {});
  EngineResult Evaluate(size_t query_index, const Evidence& evidence,
                        const QueryOptions& query);

  /// Blocks until every submitted query has resolved.
  void Drain();

  TaskScheduler& scheduler() { return scheduler_; }
  unsigned num_threads() const { return scheduler_.num_threads(); }

 private:
  EngineResult RunOne(size_t query_index, const Evidence& evidence,
                      const QueryBudget& budget) const;
  QueryBudget MakeBudget(const QueryOptions& query) const;
  std::future<EngineResult> SubmitImpl(
      size_t query_index, Evidence evidence, QueryBudget budget,
      std::shared_ptr<const CancelToken> cancel);

  const incremental::EpochManager* epochs_;
  double default_deadline_ms_;
  /// Last member: destroyed (drained + joined) first.
  TaskScheduler scheduler_;
};

}  // namespace serving
}  // namespace tud

#endif  // TUD_SERVING_SERVER_H_
