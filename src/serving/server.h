#ifndef TUD_SERVING_SERVER_H_
#define TUD_SERVING_SERVER_H_

#include <condition_variable>
#include <cstddef>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "incremental/epoch.h"
#include "inference/engine.h"
#include "serving/scheduler.h"

namespace tud {

class QuerySession;
class TreeQuerySession;
class ConcurrentPlanCache;

namespace serving {

struct ServingOptions {
  /// Scheduler workers; 0 means hardware concurrency.
  unsigned num_threads = 0;
  /// Backpressure bound: with coalesce=false it caps the scheduler's
  /// intake queue (see TaskScheduler::Options); with coalesce=true it
  /// caps the pending coalescing buffer. Either way, Submit blocks
  /// once this many queries are queued and unclaimed.
  size_t queue_capacity = 4096;
  /// Batch the intake: submissions arriving while a drain task is
  /// pending are picked up together, grouped by evidence, and fanned
  /// out from inside the pool (deque pushes instead of per-query
  /// intake-queue round trips).
  bool coalesce = true;
  /// Most requests one drain task takes (the rest reschedule).
  size_t max_coalesce = 64;
  /// Route each coalesced same-evidence group through one
  /// JunctionTreeEngine::EstimateBatch — a single shared message pass
  /// when the roots' union cone stays narrow. Off by default: the
  /// shared pass sums in a different association order, so results are
  /// equal only to rounding (the default per-root path is bit-identical
  /// to sequential evaluation).
  bool shared_pass = false;
  /// Seed decompositions from circuit construction order (see
  /// JunctionTreePlan::Build).
  bool seed_topological = false;
};

/// The concurrent serving front-end of the evaluation pipeline: one
/// session answers P(lineage | evidence) queries submitted from any
/// number of threads against one prepared circuit.
///
///   ServingSession serving = ServingSession::Over(session);
///   std::future<EngineResult> f = serving.Submit(lineage);
///   ... f.get().value ...
///
/// Internally: a work-stealing TaskScheduler executes the queries, a
/// ConcurrentPlanCache (inside a thread-safe JunctionTreeEngine with
/// plan caching) compiles each distinct lineage exactly once across all
/// threads, and per-worker scratch arenas make the steady-state numeric
/// pass allocation-free. A coalescing intake groups submissions that
/// arrive together, optionally answering same-evidence groups in one
/// shared batched message pass.
///
/// Phase contract (the compile-once / evaluate-many split, applied to
/// threading): *growing* the circuit — lineage construction via
/// QuerySession::CqLineage and friends — is single-threaded and must be
/// quiescent before serving starts; Submit takes already-built lineage
/// gates. Estimation itself never mutates the circuit, which is what
/// makes the serving phase embarrassingly shareable. The circuit and
/// registry must outlive the session.
class ServingSession {
 public:
  ServingSession(const BoolCircuit& circuit, const EventRegistry& registry,
                 const ServingOptions& options = {});
  ServingSession(const ServingSession&) = delete;
  ServingSession& operator=(const ServingSession&) = delete;
  /// Drains in-flight queries, then stops the workers.
  ~ServingSession() = default;

  /// Serves the session's instance circuit. Build all lineages first;
  /// the session keeps references into `session`.
  static ServingSession Over(QuerySession& session,
                             const ServingOptions& options = {});
  /// Serves the tree session's guard circuit (run Lineage(expr) for
  /// every query expression first).
  static ServingSession Over(TreeQuerySession& session,
                             const ServingOptions& options = {});

  /// Enqueues one query; the future resolves to the same EngineResult a
  /// direct JunctionTreeEngine::Estimate would return. Thread-safe;
  /// blocks only under backpressure (more than queue_capacity queries
  /// queued and unclaimed — never when called from a worker thread,
  /// where blocking could live-lock the pool). If the session is
  /// shutting down the future resolves to a std::runtime_error.
  std::future<EngineResult> Submit(GateId lineage, Evidence evidence = {});

  /// Synchronous evaluation on the calling thread, through the same
  /// plan cache (the single-thread baseline, and an escape hatch for
  /// callers that want no queueing).
  EngineResult Evaluate(GateId lineage, const Evidence& evidence = {});

  /// Compiles the plan for `lineage` now, so serving traffic never pays
  /// its cold Build.
  void Prewarm(GateId lineage);

  /// Blocks until every submitted query has resolved.
  void Drain();

  /// The shared plan cache (builds()/size(): build-once diagnostics).
  const ConcurrentPlanCache& plan_cache() const;

  TaskScheduler& scheduler() { return scheduler_; }
  unsigned num_threads() const { return scheduler_.num_threads(); }

 private:
  struct Request {
    GateId root;
    Evidence evidence;
    std::promise<EngineResult> promise;
  };

  EngineResult RunOne(GateId root, const Evidence& evidence);
  /// The drain task: moves out pending requests, groups them by
  /// evidence, and fans the groups out across the pool.
  void DrainPending();
  /// Resolves the request's future to a shutdown error (the scheduler
  /// rejected the work because shutdown has begun).
  static void FailRequest(const std::shared_ptr<Request>& request);
  /// Fails every queued request and clears drain_scheduled_ — the
  /// recovery path when scheduling a drain task is rejected.
  void FailAllPending();

  const BoolCircuit* circuit_;
  const EventRegistry* registry_;
  ServingOptions options_;
  /// Thread-safe cached-plan estimator shared by all workers.
  JunctionTreeEngine engine_;

  std::mutex pending_mu_;
  std::condition_variable pending_not_full_;
  std::vector<std::shared_ptr<Request>> pending_;
  bool drain_scheduled_ = false;

  /// Last member: destroyed (drained + joined) first, while the engine
  /// and circuit its tasks use are still alive.
  TaskScheduler scheduler_;
};

/// The serving front-end for *maintained* instances: answers queries
/// against whatever epoch an IncrementalSession writer has most
/// recently published, while the writer keeps applying updates and
/// publishing new epochs concurrently.
///
/// Each query grabs the current SessionSnapshot exactly once (one
/// acquire load) and evaluates entirely inside it — circuit, registry,
/// plan cache, and query roots all come from the same snapshot, so a
/// reader can never observe a half-updated state, no matter how many
/// epochs the writer publishes mid-query. The snapshot's shared_ptr
/// keeps a superseded epoch alive until its last in-flight reader
/// drains (see incremental/epoch.h).
///
/// Queries are addressed by *registered query index* (the order of
/// Register* calls on the IncrementalSession), not by gate id: gate ids
/// are epoch-relative — a structural update can move a query to a new
/// root — while the query index is stable across epochs.
///
/// At least one epoch must be published before the first query; the
/// manager must outlive the session.
class EpochedServingSession {
 public:
  explicit EpochedServingSession(const incremental::EpochManager& epochs,
                                 const ServingOptions& options = {});
  EpochedServingSession(const EpochedServingSession&) = delete;
  EpochedServingSession& operator=(const EpochedServingSession&) = delete;
  /// Drains in-flight queries, then stops the workers.
  ~EpochedServingSession() = default;

  /// Enqueues one query against the then-current epoch (the snapshot is
  /// grabbed by the worker when the query runs). Thread-safe; blocks
  /// only under backpressure. If the session is shutting down the
  /// future resolves to a std::runtime_error.
  std::future<EngineResult> Submit(size_t query_index, Evidence evidence = {});

  /// Synchronous evaluation on the calling thread against the current
  /// epoch.
  EngineResult Evaluate(size_t query_index, const Evidence& evidence = {});

  /// Blocks until every submitted query has resolved.
  void Drain();

  TaskScheduler& scheduler() { return scheduler_; }
  unsigned num_threads() const { return scheduler_.num_threads(); }

 private:
  EngineResult RunOne(size_t query_index, const Evidence& evidence) const;

  const incremental::EpochManager* epochs_;
  /// Last member: destroyed (drained + joined) first.
  TaskScheduler scheduler_;
};

}  // namespace serving
}  // namespace tud

#endif  // TUD_SERVING_SERVER_H_
