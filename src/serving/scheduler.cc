#include "serving/scheduler.h"

#include <chrono>
#include <utility>

#include "util/check.h"

namespace tud {
namespace serving {

namespace {

/// Which scheduler's worker (if any) the current thread is — lets
/// Spawn/Submit route to the calling worker's own deque, and
/// CurrentScratch find the worker's arena.
thread_local TaskScheduler* tls_scheduler = nullptr;
thread_local unsigned tls_worker_index = 0;
thread_local PlanScratch* tls_scratch = nullptr;

/// SplitMix64: cheap per-worker victim selection.
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ull);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

}  // namespace

// ---------------------------------------------------------------------------
// WorkDeque — Chase-Lev with atomic slot cells (TSan-clean: no standalone
// fences; the owner/thief ordering is carried by seq_cst operations on
// top_/bottom_ and the slot cells themselves are atomics).

TaskScheduler::WorkDeque::WorkDeque() : ring_(new Ring(64)) {
  retired_.emplace_back(ring_.load(std::memory_order_relaxed));
}

TaskScheduler::WorkDeque::~WorkDeque() {
  // Drop any tasks never claimed (shutdown after Drain leaves none in
  // the common case; this keeps the deque leak-free regardless).
  for (Task* task; (task = PopBottom()) != nullptr;) delete task;
  // `retired_` owns every ring ever allocated, including the live one.
}

bool TaskScheduler::WorkDeque::Empty() const {
  uint64_t b = bottom_.load(std::memory_order_seq_cst);
  uint64_t t = top_.load(std::memory_order_seq_cst);
  return t >= b;
}

TaskScheduler::WorkDeque::Ring* TaskScheduler::WorkDeque::Grow(
    Ring* ring, uint64_t bottom, uint64_t top) {
  Ring* bigger = new Ring(ring->capacity * 2);
  for (uint64_t i = top; i < bottom; ++i) bigger->Put(i, ring->Get(i));
  retired_.emplace_back(bigger);
  ring_.store(bigger, std::memory_order_seq_cst);
  return bigger;
}

void TaskScheduler::WorkDeque::PushBottom(Task* task) {
  uint64_t b = bottom_.load(std::memory_order_relaxed);
  uint64_t t = top_.load(std::memory_order_acquire);
  Ring* ring = ring_.load(std::memory_order_relaxed);
  if (b - t >= ring->capacity) ring = Grow(ring, b, t);
  ring->Put(b, task);
  bottom_.store(b + 1, std::memory_order_seq_cst);
}

TaskScheduler::Task* TaskScheduler::WorkDeque::PopBottom() {
  uint64_t b = bottom_.load(std::memory_order_relaxed);
  if (b == top_.load(std::memory_order_relaxed) &&
      b == 0)  // Never pushed; avoid the b-1 underflow reservation.
    return nullptr;
  b = b - 1;
  Ring* ring = ring_.load(std::memory_order_relaxed);
  bottom_.store(b, std::memory_order_seq_cst);  // Reserve the slot.
  uint64_t t = top_.load(std::memory_order_seq_cst);
  if (t > b) {  // Deque was empty; undo the reservation.
    bottom_.store(b + 1, std::memory_order_seq_cst);
    return nullptr;
  }
  Task* task = ring->Get(b);
  if (t == b) {
    // Last element: race a pending thief for it via top.
    if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                      std::memory_order_seq_cst)) {
      task = nullptr;  // Thief won.
    }
    bottom_.store(b + 1, std::memory_order_seq_cst);
  }
  return task;
}

TaskScheduler::Task* TaskScheduler::WorkDeque::Steal() {
  uint64_t t = top_.load(std::memory_order_seq_cst);
  uint64_t b = bottom_.load(std::memory_order_seq_cst);
  if (t >= b) return nullptr;
  Ring* ring = ring_.load(std::memory_order_seq_cst);
  Task* task = ring->Get(t);
  // The slot is only valid if top has not moved: the owner never
  // overwrites slots in [top, bottom) of a published ring (growth
  // copies into a fresh ring), so a successful CAS claims `task`.
  if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                    std::memory_order_seq_cst)) {
    return nullptr;
  }
  return task;
}

// ---------------------------------------------------------------------------
// TaskScheduler

TaskScheduler::TaskScheduler() : TaskScheduler(Options()) {}

TaskScheduler::TaskScheduler(const Options& options)
    : queue_capacity_(options.queue_capacity) {
  unsigned n = options.num_threads;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  TUD_CHECK(queue_capacity_ > 0) << "TaskScheduler: queue_capacity must be > 0";
  workers_.reserve(n);
  for (unsigned i = 0; i < n; ++i)
    workers_.emplace_back(std::make_unique<Worker>());
  // Start only after every Worker exists: workers steal from siblings.
  for (unsigned i = 0; i < n; ++i)
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
}

TaskScheduler::~TaskScheduler() {
  Drain();
  stop_.store(true, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_all();
  for (auto& worker : workers_)
    if (worker->thread.joinable()) worker->thread.join();
  for (Task* task : intake_) delete task;  // Tasks rejected by shutdown.
  intake_.clear();
}

bool TaskScheduler::Submit(Task task) {
  if (stop_.load(std::memory_order_relaxed)) return false;
  if (tls_scheduler == this) return Spawn(std::move(task));
  Task* heap_task = new Task(std::move(task));
  {
    std::unique_lock<std::mutex> lock(intake_mu_);
    intake_not_full_.wait(lock, [&] {
      return intake_.size() < queue_capacity_ ||
             stop_.load(std::memory_order_relaxed);
    });
    if (stop_.load(std::memory_order_relaxed)) {
      delete heap_task;
      return false;
    }
    // Count the task before publishing it: workers pop intake_ under
    // this same lock, so the increment happens-before any worker's
    // RunTask fetch_sub — outstanding_ can never transiently underflow
    // and Drain() cannot return while an accepted task is in flight.
    outstanding_.fetch_add(1, std::memory_order_seq_cst);
    intake_.push_back(heap_task);
  }
  submitted_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_one();
  return true;
}

bool TaskScheduler::Spawn(Task task) {
  if (tls_scheduler != this) return Submit(std::move(task));
  if (stop_.load(std::memory_order_relaxed)) return false;
  Task* heap_task = new Task(std::move(task));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  outstanding_.fetch_add(1, std::memory_order_seq_cst);
  workers_[tls_worker_index]->deque.PushBottom(heap_task);
  {
    std::lock_guard<std::mutex> lock(park_mu_);
  }
  park_cv_.notify_one();  // Wake a thief for the new work.
  return true;
}

void TaskScheduler::Drain() {
  std::unique_lock<std::mutex> lock(drain_mu_);
  drain_cv_.wait(lock, [&] {
    return outstanding_.load(std::memory_order_seq_cst) == 0;
  });
}

TaskScheduler::Stats TaskScheduler::stats() const {
  Stats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.executed = executed_.load(std::memory_order_relaxed);
  s.stolen = stolen_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  return s;
}

PlanScratch* TaskScheduler::CurrentScratch() { return tls_scratch; }

bool TaskScheduler::OnWorkerThread() const { return tls_scheduler == this; }

void TaskScheduler::RunTask(Task* task) {
  // Per-task exception containment: a throwing task (bad_alloc under
  // memory pressure, a bug in a caller's lambda) fails *its own* work —
  // the task is expected to route the error into its promise — and must
  // never take the worker thread down with it (an escaped exception
  // here would std::terminate the process and strand every queued
  // future). The task is still deleted and outstanding_ still
  // decremented, so Drain() and shutdown cannot hang on a failed task.
  try {
    (*task)();
    executed_.fetch_add(1, std::memory_order_relaxed);
  } catch (...) {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  delete task;
  if (outstanding_.fetch_sub(1, std::memory_order_seq_cst) == 1) {
    std::lock_guard<std::mutex> lock(drain_mu_);
    drain_cv_.notify_all();
  }
}

TaskScheduler::Task* TaskScheduler::FindWork(unsigned index,
                                             uint64_t* rng_state) {
  // 1. Own deque (LIFO — freshest spawned subtask, hottest cache).
  if (Task* task = workers_[index]->deque.PopBottom()) return task;
  // 2. Intake queue (external submissions, FIFO).
  {
    std::unique_lock<std::mutex> lock(intake_mu_);
    if (!intake_.empty()) {
      Task* task = intake_.front();
      intake_.pop_front();
      lock.unlock();
      intake_not_full_.notify_one();
      return task;
    }
  }
  // 3. Steal: sweep the siblings from a random start.
  unsigned n = static_cast<unsigned>(workers_.size());
  if (n > 1) {
    unsigned start = static_cast<unsigned>(NextRandom(rng_state) % n);
    for (unsigned k = 0; k < n; ++k) {
      unsigned victim = start + k;
      if (victim >= n) victim -= n;
      if (victim == index) continue;
      if (Task* task = workers_[victim]->deque.Steal()) {
        stolen_.fetch_add(1, std::memory_order_relaxed);
        return task;
      }
    }
  }
  return nullptr;
}

void TaskScheduler::WorkerLoop(unsigned index) {
  tls_scheduler = this;
  tls_worker_index = index;
  tls_scratch = &workers_[index]->scratch;
  uint64_t rng_state = 0x853c49e6748fea9bull + index;
  while (true) {
    if (Task* task = FindWork(index, &rng_state)) {
      RunTask(task);
      continue;
    }
    if (stop_.load(std::memory_order_seq_cst)) break;
    // Park briefly, then rescan: a timed wait keeps the wakeup protocol
    // simple (no per-worker flags) at a bounded worst-case latency.
    std::unique_lock<std::mutex> lock(park_mu_);
    if (stop_.load(std::memory_order_seq_cst)) break;
    park_cv_.wait_for(lock, std::chrono::microseconds(500));
  }
  tls_scheduler = nullptr;
  tls_scratch = nullptr;
}

}  // namespace serving
}  // namespace tud
