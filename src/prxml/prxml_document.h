#ifndef TUD_PRXML_PRXML_DOCUMENT_H_
#define TUD_PRXML_PRXML_DOCUMENT_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "events/valuation.h"
#include "prxml/xml_tree.h"

namespace tud {

/// Node index within a PrXmlDocument.
using PNodeId = uint32_t;

inline constexpr PNodeId kNoPNode = UINT32_MAX;

/// PrXML node kinds [35]. Ordinary nodes carry document labels;
/// distributional nodes decide which of their children exist:
///  - kInd:  each child kept independently with its edge probability
///           (local uncertainty);
///  - kMux:  at most one child kept, child i with its edge probability
///           (probabilities sum to <= 1; the remainder is "no child") —
///           mutually exclusive local choices;
///  - kDet:  all children kept (deterministic grouping);
///  - kCie:  child kept iff a conjunction of *global* event literals
///           holds — the formalism that introduces long-range
///           correlations and, unrestricted, intractability [34].
enum class PNodeKind : uint8_t { kOrdinary, kInd, kMux, kDet, kCie };

/// A PrXML probabilistic document (paper Figure 1): an unranked tree
/// mixing ordinary and distributional nodes over a registry of global
/// events plus materialised local-choice events.
///
/// Build the tree with AddRoot/AddChild + the edge-annotation setters,
/// then call Finalize() once: it materialises one fresh event per
/// ind-edge and a chain of fresh events per mux node, and compiles every
/// edge guard into a gate of the document's circuit. A valuation of the
/// registry then selects one possible world (an XmlTree of the ordinary
/// nodes kept).
class PrXmlDocument {
 public:
  PrXmlDocument() = default;

  /// Global (cie) events must be registered here before use in
  /// SetEdgeLiterals. Finalize() adds the local-choice events.
  EventRegistry& events() { return events_; }
  const EventRegistry& events() const { return events_; }

  /// The guard circuit; PatternLineage also builds its gates here.
  BoolCircuit& circuit() { return circuit_; }
  const BoolCircuit& circuit() const { return circuit_; }

  /// Adds the ordinary root node.
  PNodeId AddRoot(std::string label);

  /// Adds a child node of any kind. `label` is meaningful for ordinary
  /// nodes only (pass "" otherwise).
  PNodeId AddChild(PNodeId parent, PNodeKind kind, std::string label);

  /// Edge annotation, depending on the *parent's* kind:
  /// required for children of kInd and kMux nodes.
  void SetEdgeProbability(PNodeId node, double probability);
  /// Required for children of kCie nodes: conjunction of event literals.
  void SetEdgeLiterals(PNodeId node,
                       std::vector<std::pair<EventId, bool>> literals);

  /// Materialises local-choice events and edge-guard gates. Call exactly
  /// once, after the document is fully built.
  void Finalize();
  bool finalized() const { return finalized_; }

  size_t NumNodes() const { return kinds_.size(); }
  PNodeKind kind(PNodeId n) const { return kinds_[n]; }
  const std::string& label(PNodeId n) const { return labels_[n]; }
  PNodeId parent(PNodeId n) const { return parents_[n]; }
  const std::vector<PNodeId>& children(PNodeId n) const {
    return children_[n];
  }

  /// Number of ordinary nodes.
  size_t NumOrdinaryNodes() const;

  /// Guard gate of the edge into `n` (TRUE for children of ordinary/det
  /// parents and for the root). Requires Finalize().
  GateId edge_guard(PNodeId n) const;

  /// The possible world selected by `valuation`: the tree of ordinary
  /// nodes all of whose path edge-guards hold, re-parented to their
  /// nearest kept ordinary ancestor. The root is always kept.
  XmlTree World(const Valuation& valuation) const;

  /// Event scopes (§2.1). The scope of an event e is the set of nodes
  /// where e's value must be remembered when evaluating bottom-up:
  /// the subtrees hanging below edges whose guard mentions e, plus every
  /// node n such that e occurs both inside and outside n's subtree (the
  /// connecting region between occurrences). Returns, for each node, the
  /// sorted set of events having the node in scope.
  std::vector<std::vector<EventId>> NodeScopes() const;

  /// Max over nodes of |scope| — the parameter of the bounded-scope
  /// tractability condition ("for PrXML documents where the scope of all
  /// nodes have size bounded by a constant, the evaluation of a fixed
  /// MSO query can be performed in PTIME").
  size_t MaxScopeSize() const;

  /// True if the document uses only local uncertainty (no cie edges):
  /// the regime of [17] where the fast bottom-up DP applies.
  bool IsLocal() const;

 private:
  EventRegistry events_;
  BoolCircuit circuit_;
  std::vector<PNodeKind> kinds_;
  std::vector<std::string> labels_;
  std::vector<PNodeId> parents_;
  std::vector<std::vector<PNodeId>> children_;
  std::vector<double> edge_probabilities_;  // -1 when unset.
  std::vector<std::vector<std::pair<EventId, bool>>> edge_literals_;
  std::vector<GateId> edge_guards_;
  bool finalized_ = false;
};

}  // namespace tud

#endif  // TUD_PRXML_PRXML_DOCUMENT_H_
