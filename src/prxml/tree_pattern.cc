#include "prxml/tree_pattern.h"

#include "util/check.h"

namespace tud {

PatternNodeId TreePattern::AddRoot(std::string label) {
  TUD_CHECK_EQ(NumNodes(), 0u);
  labels_.push_back(std::move(label));
  children_.emplace_back();
  axes_.push_back(PatternAxis::kChild);
  return 0;
}

PatternNodeId TreePattern::AddChild(PatternNodeId parent, std::string label,
                                    PatternAxis axis) {
  TUD_CHECK_LT(parent, NumNodes());
  PatternNodeId id = static_cast<PatternNodeId>(NumNodes());
  labels_.push_back(std::move(label));
  children_.emplace_back();
  axes_.push_back(axis);
  children_[parent].push_back(id);
  return id;
}

bool TreePattern::Matches(const XmlTree& tree) const {
  if (tree.NumNodes() == 0 || NumNodes() == 0) return false;
  const size_t np = NumNodes();
  // d[v][p]: pattern subtree p embeds with p -> v.
  // e[v][p]: some node in subtree(v) (including v) admits d.
  std::vector<std::vector<bool>> d(tree.NumNodes(),
                                   std::vector<bool>(np, false));
  std::vector<std::vector<bool>> e(tree.NumNodes(),
                                   std::vector<bool>(np, false));
  // Children have larger ids than parents: descending order is
  // bottom-up.
  for (XmlNodeId v = static_cast<XmlNodeId>(tree.NumNodes()); v-- > 0;) {
    for (PatternNodeId p = 0; p < np; ++p) {
      bool ok = IsWildcard(p) || tree.label(v) == labels_[p];
      for (PatternNodeId c : children_[p]) {
        if (!ok) break;
        bool found = false;
        for (XmlNodeId w : tree.children(v)) {
          if (axes_[c] == PatternAxis::kChild ? d[w][c] : e[w][c]) {
            found = true;
            break;
          }
        }
        ok = found;
      }
      d[v][p] = ok;
      e[v][p] = ok;
    }
    for (XmlNodeId w : tree.children(v)) {
      for (PatternNodeId p = 0; p < np; ++p) {
        if (e[w][p]) e[v][p] = true;
      }
    }
  }
  return e[tree.root()][root()];
}

TreePattern TreePattern::LabelExists(std::string label) {
  TreePattern pattern;
  pattern.AddRoot(std::move(label));
  return pattern;
}

TreePattern TreePattern::AncestorDescendant(std::string ancestor,
                                            std::string descendant) {
  TreePattern pattern;
  PatternNodeId r = pattern.AddRoot(std::move(ancestor));
  pattern.AddChild(r, std::move(descendant), PatternAxis::kDescendant);
  return pattern;
}

namespace {

void Render(const TreePattern& pattern, PatternNodeId p, int depth,
            std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  if (depth > 0) {
    out += pattern.axis(p) == PatternAxis::kChild ? "/" : "//";
  }
  out += pattern.IsWildcard(p) ? "*" : pattern.label(p);
  out += "\n";
  for (PatternNodeId c : pattern.children(p)) {
    Render(pattern, c, depth + 1, out);
  }
}

}  // namespace

std::string TreePattern::ToString() const {
  std::string out;
  if (NumNodes() > 0) Render(*this, root(), 0, out);
  return out;
}

}  // namespace tud
