#ifndef TUD_PRXML_TO_UNCERTAIN_TREE_H_
#define TUD_PRXML_TO_UNCERTAIN_TREE_H_

#include "automata/tree_automaton.h"
#include "automata/uncertain_tree.h"
#include "prxml/fcns.h"
#include "prxml/prxml_document.h"

namespace tud {

/// The §2.1 → §2.2 reduction: rewriting a PrXML document into an
/// uncertain tree that automata can be run on symbolically ("these
/// formalisms can be rewritten to bounded-treewidth pcc-instances").
///
/// The translation takes the FCNS encoding of the document's *ordinary
/// skeleton* (distributional nodes contracted into edge guards) and
/// makes the labels uncertain: each encoded node carries two
/// alternatives — its real label, guarded by the conjunction of edge
/// guards on its root path, and the reserved `dead_label`, guarded by
/// the negation. Because guards accumulate along paths, the live nodes
/// of any world form a prefix-closed subtree, so the dead-label
/// encoding represents the world exactly (dead nodes simply never match
/// any query label). Nil leaves of the FCNS encoding are certain.
///
/// Combined with ProvenanceRun, this evaluates any automaton-definable
/// query on the document: lineage gates land in the returned tree's
/// circuit (guards are imported from the document's circuit).
///
/// `dead_label` is registered in `labels`; pass the result's
/// AlphabetSize() when building automata.
UncertainBinaryTree PrXmlToUncertainTree(const PrXmlDocument& document,
                                         XmlLabelMap& labels,
                                         Label* dead_label);

/// Convenience: probability that `automaton` accepts the document's
/// world, via the full §2.2 pipeline (translate, provenance-run,
/// message passing).
double AutomatonProbability(const TreeAutomaton& automaton,
                            const PrXmlDocument& document,
                            XmlLabelMap& labels);

}  // namespace tud

#endif  // TUD_PRXML_TO_UNCERTAIN_TREE_H_
