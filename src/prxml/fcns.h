#ifndef TUD_PRXML_FCNS_H_
#define TUD_PRXML_FCNS_H_

#include <string>
#include <unordered_map>

#include "automata/binary_tree.h"
#include "automata/tree_automaton.h"
#include "prxml/xml_tree.h"

namespace tud {

/// First-child / next-sibling encoding: the classic bijection between
/// unranked labeled trees and full binary trees that lets binary-tree
/// automata (and hence the §2.2 pipeline) evaluate queries over XML.
/// Every XML node becomes an internal binary node whose left child
/// encodes its first XML child (children chain) and whose right child
/// encodes its next sibling; absent positions become leaves labeled with
/// the reserved nil label 0.

/// Interns XML label strings as automaton labels; label 0 is reserved
/// for nil (absent position).
class XmlLabelMap {
 public:
  XmlLabelMap() = default;

  static constexpr Label kNil = 0;

  /// Returns the label for `name`, interning it if new (labels start
  /// at 1).
  Label Intern(const std::string& name);

  /// Returns the label if interned, kNil otherwise.
  Label Find(const std::string& name) const;

  /// Number of labels including nil.
  Label AlphabetSize() const {
    return static_cast<Label>(names_.size() + 1);
  }

 private:
  std::unordered_map<std::string, Label> index_;
  std::vector<std::string> names_;
};

/// Encodes `tree` as a full binary tree under FCNS, interning labels in
/// `labels`. The binary root encodes the XML root (whose sibling
/// position is nil).
BinaryTree FcnsEncode(const XmlTree& tree, XmlLabelMap& labels);

/// Automata over FCNS encodings for XML-axis properties (the FCNS
/// encoding scrambles the ancestor relation, so XML properties need
/// FCNS-aware transitions):

/// "Some XML node is labeled `target`" (label existence transfers
/// directly).
TreeAutomaton MakeFcnsExistsLabel(Label alphabet_size, Label target);

/// "Some XML node labeled `a` has a *strict XML descendant* labeled
/// `b`." Under FCNS, the XML subtree of a node is its left child's
/// whole binary subtree.
TreeAutomaton MakeFcnsExistsBBelowA(Label alphabet_size, Label a, Label b);

}  // namespace tud

#endif  // TUD_PRXML_FCNS_H_
