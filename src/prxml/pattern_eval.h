#ifndef TUD_PRXML_PATTERN_EVAL_H_
#define TUD_PRXML_PATTERN_EVAL_H_

#include "circuits/bool_circuit.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"

namespace tud {

/// Lineage circuit of a tree pattern over a PrXML document: the returned
/// gate (added to the document's circuit) is true under a valuation iff
/// the pattern matches the possible world selected by that valuation.
///
/// The construction is the bottom-up DP of §2.1-2.2 specialised to
/// patterns: one gate per (ordinary node, pattern node, mode) where mode
/// is "matches here" or "matches somewhere below"; distributional nodes
/// contribute their edge guards. Size O(|document| * |pattern|); for
/// documents with bounded event scopes, the resulting circuit has
/// bounded treewidth, so downstream message passing stays polynomial —
/// the scope-based tractability condition of [7].
GateId PatternLineage(const TreePattern& pattern, PrXmlDocument& document);

/// Exact probability of a tree pattern on a *local* (ind/mux/det only)
/// document, by the Cohen-Kimelfeld-Sagiv bottom-up dynamic programming
/// [17]: deterministically tracks, per node, the distribution over
/// pattern-match state sets (the subset automaton of the pattern), using
/// the independence of sibling subtrees in local models. Linear in the
/// document for a fixed pattern. Requires document.IsLocal() (checked).
double LocalPatternProbability(const TreePattern& pattern,
                               const PrXmlDocument& document);

}  // namespace tud

#endif  // TUD_PRXML_PATTERN_EVAL_H_
