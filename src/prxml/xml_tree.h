#ifndef TUD_PRXML_XML_TREE_H_
#define TUD_PRXML_XML_TREE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace tud {

/// Node index within an XmlTree.
using XmlNodeId = uint32_t;

inline constexpr XmlNodeId kNoXmlNode = UINT32_MAX;

/// A plain (certain) unranked labeled tree — one possible world of a
/// probabilistic XML document.
class XmlTree {
 public:
  XmlTree() = default;

  /// Adds the root (must be the first node).
  XmlNodeId AddRoot(std::string label);

  /// Adds a child of `parent` (appended after existing children).
  XmlNodeId AddChild(XmlNodeId parent, std::string label);

  size_t NumNodes() const { return labels_.size(); }
  XmlNodeId root() const { return 0; }
  const std::string& label(XmlNodeId n) const { return labels_[n]; }
  XmlNodeId parent(XmlNodeId n) const { return parents_[n]; }
  const std::vector<XmlNodeId>& children(XmlNodeId n) const {
    return children_[n];
  }

  /// Indented rendering for debugging and examples.
  std::string ToString() const;

 private:
  std::vector<std::string> labels_;
  std::vector<XmlNodeId> parents_;
  std::vector<std::vector<XmlNodeId>> children_;
};

}  // namespace tud

#endif  // TUD_PRXML_XML_TREE_H_
