#include "prxml/pattern_eval.h"

#include <unordered_map>
#include <utility>
#include <vector>

#include "util/check.h"

namespace tud {

namespace {

// Collects the "real children" of ordinary node v: ordinary descendants
// reachable through distributional nodes only, each with the conjunction
// of edge guards along the way.
void CollectRealChildren(const PrXmlDocument& doc, BoolCircuit& circuit,
                         PNodeId node, GateId guard_so_far,
                         std::vector<std::pair<PNodeId, GateId>>& out) {
  for (PNodeId c : doc.children(node)) {
    GateId guard = circuit.AddAnd(guard_so_far, doc.edge_guard(c));
    if (doc.kind(c) == PNodeKind::kOrdinary) {
      out.emplace_back(c, guard);
    } else {
      CollectRealChildren(doc, circuit, c, guard, out);
    }
  }
}

bool LabelMatches(const TreePattern& pattern, PatternNodeId p,
                  const std::string& label) {
  return pattern.IsWildcard(p) || pattern.label(p) == label;
}

}  // namespace

GateId PatternLineage(const TreePattern& pattern, PrXmlDocument& document) {
  TUD_CHECK(document.finalized());
  TUD_CHECK_GT(pattern.NumNodes(), 0u);
  BoolCircuit& circuit = document.circuit();
  const size_t np = pattern.NumNodes();

  // d[v * np + p]: pattern subtree p embeds at ordinary node v (given v
  // is present). e[v * np + p]: embeds at v or some descendant of v
  // present below v.
  std::vector<GateId> d(document.NumNodes() * np, kInvalidGate);
  std::vector<GateId> e(document.NumNodes() * np, kInvalidGate);

  // Bottom-up over ordinary nodes (children have larger ids).
  for (PNodeId v = static_cast<PNodeId>(document.NumNodes()); v-- > 0;) {
    if (document.kind(v) != PNodeKind::kOrdinary) continue;
    std::vector<std::pair<PNodeId, GateId>> real_children;
    CollectRealChildren(document, circuit, v, circuit.AddConst(true),
                        real_children);
    for (PatternNodeId p = 0; p < np; ++p) {
      GateId dv;
      if (!LabelMatches(pattern, p, document.label(v))) {
        dv = circuit.AddConst(false);
      } else {
        std::vector<GateId> conjuncts;
        for (PatternNodeId c : pattern.children(p)) {
          std::vector<GateId> options;
          options.reserve(real_children.size());
          for (const auto& [w, guard] : real_children) {
            GateId sub = pattern.axis(c) == PatternAxis::kChild
                             ? d[w * np + c]
                             : e[w * np + c];
            options.push_back(circuit.AddAnd(guard, sub));
          }
          conjuncts.push_back(circuit.AddOr(std::move(options)));
        }
        dv = circuit.AddAnd(std::move(conjuncts));
      }
      d[v * np + p] = dv;
      std::vector<GateId> deeper = {dv};
      for (const auto& [w, guard] : real_children) {
        deeper.push_back(circuit.AddAnd(guard, e[w * np + p]));
      }
      e[v * np + p] = circuit.AddOr(std::move(deeper));
    }
  }
  return e[0 * np + pattern.root()];
}

// ---------------------------------------------------------------------------
// Local-model probability: distribution over forest-contribution states.
// ---------------------------------------------------------------------------

namespace {

// A forest contribution state packs two masks over pattern nodes:
//  - low 32 bits: patterns matched at the *root* of some tree in the
//    forest (the d-sets of the forest's top-level nodes);
//  - high 32 bits: patterns matched somewhere in the forest (e-sets).
using ForestState = uint64_t;

using StateDistribution = std::unordered_map<ForestState, double>;

StateDistribution PointMass(ForestState s) { return {{s, 1.0}}; }

// Product of independent forests: union the masks, multiply the
// probabilities.
StateDistribution Combine(const StateDistribution& a,
                          const StateDistribution& b) {
  StateDistribution out;
  for (const auto& [sa, pa] : a) {
    for (const auto& [sb, pb] : b) {
      out[sa | sb] += pa * pb;
    }
  }
  return out;
}

// Mixture: with probability p the forest is `present`, else empty.
StateDistribution MixWithEmpty(const StateDistribution& present, double p) {
  StateDistribution out;
  for (const auto& [s, q] : present) out[s] += p * q;
  out[0] += 1.0 - p;
  return out;
}

class LocalEvaluator {
 public:
  LocalEvaluator(const TreePattern& pattern, const PrXmlDocument& doc)
      : pattern_(pattern), doc_(doc) {}

  double Run() {
    StateDistribution root = TreeContribution(0);
    const uint64_t want = 1ULL << (32 + pattern_.root());
    double total = 0.0;
    for (const auto& [s, p] : root) {
      if (s & want) total += p;
    }
    return total;
  }

 private:
  // Distribution of the forest contributed by an arbitrary node to its
  // nearest ordinary ancestor, *assuming the node's own edge is kept*.
  StateDistribution Contribution(PNodeId n) {
    switch (doc_.kind(n)) {
      case PNodeKind::kOrdinary:
        return TreeContribution(n);
      case PNodeKind::kDet:
        return ChildrenCombined(n, /*with_edge_probability=*/false);
      case PNodeKind::kInd:
        return ChildrenCombined(n, /*with_edge_probability=*/true);
      case PNodeKind::kMux: {
        StateDistribution out;
        double none = 1.0;
        for (PNodeId c : doc_.children(n)) {
          double p = EdgeProbability(c);
          none -= p;
          StateDistribution sub = Contribution(c);
          for (const auto& [s, q] : sub) out[s] += p * q;
        }
        if (none > 1e-12) out[0] += none;
        return out;
      }
      case PNodeKind::kCie:
        TUD_CHECK(false) << "LocalPatternProbability on a cie document";
    }
    return PointMass(0);
  }

  StateDistribution ChildrenCombined(PNodeId n, bool with_edge_probability) {
    StateDistribution acc = PointMass(0);
    for (PNodeId c : doc_.children(n)) {
      StateDistribution sub = Contribution(c);
      if (with_edge_probability) {
        sub = MixWithEmpty(sub, EdgeProbability(c));
      }
      acc = Combine(acc, sub);
    }
    return acc;
  }

  // Contribution of an ordinary node: a single tree. Computes the d-mask
  // of the node from its children-forest state, per forest state.
  StateDistribution TreeContribution(PNodeId v) {
    StateDistribution forest =
        ChildrenCombined(v, /*with_edge_probability=*/false);
    StateDistribution out;
    for (const auto& [fs, p] : forest) {
      const uint32_t root_mask = static_cast<uint32_t>(fs);
      const uint32_t deep_mask = static_cast<uint32_t>(fs >> 32);
      uint32_t d_mask = 0;
      for (PatternNodeId q = 0;
           q < static_cast<PatternNodeId>(pattern_.NumNodes()); ++q) {
        if (!LabelMatches(pattern_, q, doc_.label(v))) continue;
        bool ok = true;
        for (PatternNodeId c : pattern_.children(q)) {
          uint32_t needed = pattern_.axis(c) == PatternAxis::kChild
                                ? root_mask
                                : deep_mask;
          if (!((needed >> c) & 1)) {
            ok = false;
            break;
          }
        }
        if (ok) d_mask |= (1u << q);
      }
      uint32_t e_mask = d_mask | deep_mask;
      ForestState s = static_cast<uint64_t>(d_mask) |
                      (static_cast<uint64_t>(e_mask) << 32);
      out[s] += p;
    }
    return out;
  }

  double EdgeProbability(PNodeId c) {
    // Recover the declared marginal probability from the materialised
    // events: ind edges store it directly on their event; mux edges were
    // renormalised, so recompute from the chain.
    PNodeId parent = doc_.parent(c);
    GateId guard = doc_.edge_guard(c);
    const BoolCircuit& circuit = doc_.circuit();
    if (doc_.kind(parent) == PNodeKind::kInd) {
      TUD_CHECK(circuit.kind(guard) == GateKind::kVar);
      return doc_.events().probability(circuit.var(guard));
    }
    TUD_CHECK(doc_.kind(parent) == PNodeKind::kMux);
    // guard = AND(!m_1, ..., !m_{i-1}, m_i): probability is the product
    // of the chain.
    if (circuit.kind(guard) == GateKind::kVar) {
      return doc_.events().probability(circuit.var(guard));
    }
    TUD_CHECK(circuit.kind(guard) == GateKind::kAnd);
    double p = 1.0;
    for (GateId in : circuit.inputs(guard)) {
      if (circuit.kind(in) == GateKind::kVar) {
        p *= doc_.events().probability(circuit.var(in));
      } else {
        TUD_CHECK(circuit.kind(in) == GateKind::kNot);
        GateId var = circuit.inputs(in)[0];
        TUD_CHECK(circuit.kind(var) == GateKind::kVar);
        p *= 1.0 - doc_.events().probability(circuit.var(var));
      }
    }
    return p;
  }

  const TreePattern& pattern_;
  const PrXmlDocument& doc_;
};

}  // namespace

double LocalPatternProbability(const TreePattern& pattern,
                               const PrXmlDocument& document) {
  TUD_CHECK(document.finalized());
  TUD_CHECK(document.IsLocal())
      << "fast path requires a local (ind/mux/det) document";
  TUD_CHECK_LE(pattern.NumNodes(), 32u);
  return LocalEvaluator(pattern, document).Run();
}

}  // namespace tud
