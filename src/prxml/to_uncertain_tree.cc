#include "prxml/to_uncertain_tree.h"

#include <functional>
#include <utility>
#include <vector>

#include "automata/provenance_run.h"
#include "inference/junction_tree.h"
#include "util/check.h"

namespace tud {

namespace {

// Ordinary children of ordinary node v, each with the list of
// document-circuit edge-guard gates along the distributional chain.
void SkeletonChildren(const PrXmlDocument& doc, PNodeId node,
                      std::vector<GateId>& chain,
                      std::vector<std::pair<PNodeId, std::vector<GateId>>>&
                          out) {
  for (PNodeId c : doc.children(node)) {
    chain.push_back(doc.edge_guard(c));
    if (doc.kind(c) == PNodeKind::kOrdinary) {
      out.emplace_back(c, chain);
    } else {
      SkeletonChildren(doc, c, chain, out);
    }
    chain.pop_back();
  }
}

}  // namespace

UncertainBinaryTree PrXmlToUncertainTree(const PrXmlDocument& document,
                                         XmlLabelMap& labels,
                                         Label* dead_label) {
  TUD_CHECK(document.finalized());
  TUD_CHECK(dead_label != nullptr);
  *dead_label = labels.Intern("__dead__");

  UncertainBinaryTree tree;
  BoolCircuit& circuit = tree.circuit();
  std::vector<GateId> import_cache(document.circuit().NumGates(),
                                   kInvalidGate);
  const GateId always = circuit.AddConst(true);

  // Encodes the sibling chain `siblings[i..]` (each with its chain
  // guards), where `parent_guard` is the path guard (target circuit) of
  // the ordinary parent.
  std::function<TreeNodeId(
      const std::vector<std::pair<PNodeId, std::vector<GateId>>>&, size_t,
      GateId)>
      encode_list = [&](const std::vector<
                            std::pair<PNodeId, std::vector<GateId>>>&
                            siblings,
                        size_t i, GateId parent_guard) -> TreeNodeId {
    if (i >= siblings.size()) {
      return tree.AddLeaf({{XmlLabelMap::kNil, always}});
    }
    const auto& [node, chain] = siblings[i];
    // Path guard: parent guard AND the imported chain guards.
    std::vector<GateId> conj = {parent_guard};
    for (GateId g : chain) {
      conj.push_back(circuit.ImportCone(document.circuit(), g,
                                        &import_cache));
    }
    GateId guard = circuit.AddAnd(std::move(conj));
    std::vector<std::pair<PNodeId, std::vector<GateId>>> children;
    std::vector<GateId> scratch;
    SkeletonChildren(document, node, scratch, children);
    TreeNodeId left = encode_list(children, 0, guard);
    TreeNodeId right = encode_list(siblings, i + 1, parent_guard);
    Label label = labels.Intern(document.label(node));
    return tree.AddInternal(
        {{label, guard}, {*dead_label, circuit.AddNot(guard)}}, left,
        right);
  };

  std::vector<std::pair<PNodeId, std::vector<GateId>>> root_chain = {
      {0, {}}};
  encode_list(root_chain, 0, always);
  return tree;
}

double AutomatonProbability(const TreeAutomaton& automaton,
                            const PrXmlDocument& document,
                            XmlLabelMap& labels) {
  Label dead;
  UncertainBinaryTree tree = PrXmlToUncertainTree(document, labels, &dead);
  TUD_CHECK_LE(tree.AlphabetSize(), automaton.alphabet_size())
      << "automaton alphabet too small for the document's labels";
  // Lower to the compiled engine once; the forest run then streams
  // through the CSR tables.
  GateId lineage =
      ProvenanceRun(CompiledAutomaton::Compile(automaton), tree);
  return JunctionTreeProbability(tree.circuit(), lineage,
                                 document.events());
}

}  // namespace tud
