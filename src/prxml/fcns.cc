#include "prxml/fcns.h"

#include <functional>

#include "util/check.h"

namespace tud {

Label XmlLabelMap::Intern(const std::string& name) {
  auto it = index_.find(name);
  if (it != index_.end()) return it->second;
  Label label = static_cast<Label>(names_.size() + 1);  // 0 is nil.
  names_.push_back(name);
  index_.emplace(name, label);
  return label;
}

Label XmlLabelMap::Find(const std::string& name) const {
  auto it = index_.find(name);
  return it == index_.end() ? kNil : it->second;
}

BinaryTree FcnsEncode(const XmlTree& tree, XmlLabelMap& labels) {
  TUD_CHECK_GT(tree.NumNodes(), 0u);
  BinaryTree out;
  // EncodeList(children, i): binary encoding of the sibling chain
  // children[i..]; nil leaf past the end. Children must be created
  // before parents, so recurse first.
  std::function<TreeNodeId(const std::vector<XmlNodeId>&, size_t)>
      encode_list = [&](const std::vector<XmlNodeId>& siblings,
                        size_t i) -> TreeNodeId {
    if (i >= siblings.size()) return out.AddLeaf(XmlLabelMap::kNil);
    XmlNodeId node = siblings[i];
    TreeNodeId left = encode_list(tree.children(node), 0);
    TreeNodeId right = encode_list(siblings, i + 1);
    return out.AddInternal(labels.Intern(tree.label(node)), left, right);
  };
  encode_list({tree.root()}, 0);
  return out;
}

TreeAutomaton MakeFcnsExistsLabel(Label alphabet_size, Label target) {
  // Same as the generic existence automaton: FCNS preserves the node
  // set, so label existence needs no axis awareness.
  TreeAutomaton a(2, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    a.AddLeafTransition(l, l == target ? 1 : 0);
    for (State ql = 0; ql <= 1; ++ql) {
      for (State qr = 0; qr <= 1; ++qr) {
        a.AddTransition(l, ql, qr,
                        (l == target || ql == 1 || qr == 1) ? 1 : 0);
      }
    }
  }
  a.SetAccepting(1);
  return a;
}

TreeAutomaton MakeFcnsExistsBBelowA(Label alphabet_size, Label a_label,
                                    Label b_label) {
  // State encodes (found, has_b) where `has_b` means "some node in this
  // FCNS subtree is labeled b" and `found` means "the witness pair was
  // seen". The XML-descendants of a node are exactly the FCNS subtree
  // of its *left* child, so an a-labeled node fires when its left
  // subtree has_b.
  auto state = [](bool found, bool has_b) -> State {
    return (found ? 2 : 0) | (has_b ? 1 : 0);
  };
  TreeAutomaton a(4, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    a.AddLeafTransition(l, state(false, l == b_label));
    for (State ql = 0; ql < 4; ++ql) {
      for (State qr = 0; qr < 4; ++qr) {
        bool left_found = ql & 2, left_b = ql & 1;
        bool right_found = qr & 2, right_b = qr & 1;
        bool has_b = (l == b_label) || left_b || right_b;
        bool found = left_found || right_found ||
                     (l == a_label && left_b);
        a.AddTransition(l, ql, qr, state(found, has_b));
      }
    }
  }
  a.SetAccepting(state(true, false));
  a.SetAccepting(state(true, true));
  return a;
}

}  // namespace tud
