#ifndef TUD_PRXML_TREE_PATTERN_H_
#define TUD_PRXML_TREE_PATTERN_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "prxml/xml_tree.h"

namespace tud {

/// Pattern node index.
using PatternNodeId = uint32_t;

/// Edge axis of a tree pattern.
enum class PatternAxis : uint8_t {
  kChild,       ///< Pattern child must map to a child.
  kDescendant,  ///< Pattern child must map to a proper descendant.
};

/// A Boolean tree-pattern query (one of "the usual tree query languages"
/// of §2.1): a small tree whose nodes carry label tests (or wildcards)
/// and whose edges are child or descendant axes. The pattern holds on a
/// document if some embedding maps the pattern root to *any* document
/// node, respecting labels and axes. Join-free: each pattern node is
/// matched independently, which is the fragment [17] proves tractable on
/// local-uncertainty PrXML.
class TreePattern {
 public:
  TreePattern() = default;

  /// Adds the pattern root. Empty `label` means wildcard.
  PatternNodeId AddRoot(std::string label);

  /// Adds a pattern child under `parent` with the given axis.
  PatternNodeId AddChild(PatternNodeId parent, std::string label,
                         PatternAxis axis);

  size_t NumNodes() const { return labels_.size(); }
  PatternNodeId root() const { return 0; }
  const std::string& label(PatternNodeId p) const { return labels_[p]; }
  bool IsWildcard(PatternNodeId p) const { return labels_[p].empty(); }
  const std::vector<PatternNodeId>& children(PatternNodeId p) const {
    return children_[p];
  }
  PatternAxis axis(PatternNodeId p) const { return axes_[p]; }

  /// Naive evaluation on a certain tree (ground truth for tests).
  bool Matches(const XmlTree& tree) const;

  /// Convenience: the single-node pattern //label.
  static TreePattern LabelExists(std::string label);

  /// Convenience: //ancestor[descendant] (ancestor label with a
  /// descendant-axis child).
  static TreePattern AncestorDescendant(std::string ancestor,
                                        std::string descendant);

  std::string ToString() const;

 private:
  std::vector<std::string> labels_;
  std::vector<std::vector<PatternNodeId>> children_;
  std::vector<PatternAxis> axes_;  // Axis of the edge *into* each node.
};

}  // namespace tud

#endif  // TUD_PRXML_TREE_PATTERN_H_
