#include "prxml/prxml_document.h"

#include <algorithm>

#include "util/check.h"

namespace tud {

PNodeId PrXmlDocument::AddRoot(std::string label) {
  TUD_CHECK_EQ(NumNodes(), 0u);
  kinds_.push_back(PNodeKind::kOrdinary);
  labels_.push_back(std::move(label));
  parents_.push_back(kNoPNode);
  children_.emplace_back();
  edge_probabilities_.push_back(-1.0);
  edge_literals_.emplace_back();
  return 0;
}

PNodeId PrXmlDocument::AddChild(PNodeId parent, PNodeKind kind,
                                std::string label) {
  TUD_CHECK(!finalized_) << "document already finalised";
  TUD_CHECK_LT(parent, NumNodes());
  PNodeId id = static_cast<PNodeId>(NumNodes());
  kinds_.push_back(kind);
  labels_.push_back(std::move(label));
  parents_.push_back(parent);
  children_.emplace_back();
  children_[parent].push_back(id);
  edge_probabilities_.push_back(-1.0);
  edge_literals_.emplace_back();
  return id;
}

void PrXmlDocument::SetEdgeProbability(PNodeId node, double probability) {
  TUD_CHECK(!finalized_);
  TUD_CHECK_LT(node, NumNodes());
  TUD_CHECK_NE(parents_[node], kNoPNode);
  PNodeKind pk = kinds_[parents_[node]];
  TUD_CHECK(pk == PNodeKind::kInd || pk == PNodeKind::kMux)
      << "edge probabilities only apply under ind/mux nodes";
  TUD_CHECK(probability >= 0.0 && probability <= 1.0);
  edge_probabilities_[node] = probability;
}

void PrXmlDocument::SetEdgeLiterals(
    PNodeId node, std::vector<std::pair<EventId, bool>> literals) {
  TUD_CHECK(!finalized_);
  TUD_CHECK_LT(node, NumNodes());
  TUD_CHECK_NE(parents_[node], kNoPNode);
  TUD_CHECK(kinds_[parents_[node]] == PNodeKind::kCie)
      << "edge literals only apply under cie nodes";
  for (const auto& [event, value] : literals) {
    (void)value;
    TUD_CHECK_LT(event, events_.size());
  }
  edge_literals_[node] = std::move(literals);
}

void PrXmlDocument::Finalize() {
  TUD_CHECK(!finalized_);
  TUD_CHECK_GT(NumNodes(), 0u);
  TUD_CHECK(kinds_[0] == PNodeKind::kOrdinary) << "root must be ordinary";
  edge_guards_.assign(NumNodes(), kInvalidGate);
  edge_guards_[0] = circuit_.AddConst(true);

  for (PNodeId n = 0; n < NumNodes(); ++n) {
    const std::vector<PNodeId>& kids = children_[n];
    switch (kinds_[n]) {
      case PNodeKind::kOrdinary:
      case PNodeKind::kDet:
        for (PNodeId c : kids) edge_guards_[c] = circuit_.AddConst(true);
        break;
      case PNodeKind::kInd:
        for (PNodeId c : kids) {
          double p = edge_probabilities_[c];
          TUD_CHECK_GE(p, 0.0) << "missing probability on ind edge";
          EventId e = events_.Register(
              "_ind" + std::to_string(n) + "_" + std::to_string(c), p);
          edge_guards_[c] = circuit_.AddVar(e);
        }
        break;
      case PNodeKind::kMux: {
        // Chain encoding: child i is picked iff its event fires and no
        // earlier sibling's did; event probabilities are renormalised so
        // the joint matches the declared marginals.
        double remaining = 1.0;
        std::vector<GateId> earlier_negated;
        for (PNodeId c : kids) {
          double p = edge_probabilities_[c];
          TUD_CHECK_GE(p, 0.0) << "missing probability on mux edge";
          double q;
          if (remaining <= 1e-12) {
            q = 0.0;
          } else {
            q = std::min(1.0, p / remaining);
          }
          EventId e = events_.Register(
              "_mux" + std::to_string(n) + "_" + std::to_string(c), q);
          GateId fire = circuit_.AddVar(e);
          std::vector<GateId> conj = earlier_negated;
          conj.push_back(fire);
          edge_guards_[c] = circuit_.AddAnd(std::move(conj));
          earlier_negated.push_back(circuit_.AddNot(fire));
          remaining -= p;
          TUD_CHECK_GE(remaining, -1e-9)
              << "mux probabilities sum to more than 1";
        }
        break;
      }
      case PNodeKind::kCie:
        for (PNodeId c : kids) {
          std::vector<GateId> conj;
          conj.reserve(edge_literals_[c].size());
          for (const auto& [event, value] : edge_literals_[c]) {
            GateId var = circuit_.AddVar(event);
            conj.push_back(value ? var : circuit_.AddNot(var));
          }
          edge_guards_[c] = circuit_.AddAnd(std::move(conj));
        }
        break;
    }
  }
  finalized_ = true;
}

size_t PrXmlDocument::NumOrdinaryNodes() const {
  size_t count = 0;
  for (PNodeKind k : kinds_) {
    if (k == PNodeKind::kOrdinary) ++count;
  }
  return count;
}

GateId PrXmlDocument::edge_guard(PNodeId n) const {
  TUD_CHECK(finalized_) << "call Finalize() first";
  TUD_CHECK_LT(n, NumNodes());
  return edge_guards_[n];
}

namespace {

void BuildWorld(const PrXmlDocument& doc, const std::vector<bool>& gates,
                PNodeId n, XmlNodeId ordinary_ancestor, XmlTree& out) {
  XmlNodeId attach = ordinary_ancestor;
  if (doc.kind(n) == PNodeKind::kOrdinary) {
    attach = (n == 0) ? out.AddRoot(doc.label(n))
                      : out.AddChild(ordinary_ancestor, doc.label(n));
  }
  for (PNodeId c : doc.children(n)) {
    if (!gates[doc.edge_guard(c)]) continue;
    BuildWorld(doc, gates, c, attach, out);
  }
}

}  // namespace

XmlTree PrXmlDocument::World(const Valuation& valuation) const {
  TUD_CHECK(finalized_);
  std::vector<bool> gates = circuit_.EvaluateAll(valuation);
  XmlTree out;
  BuildWorld(*this, gates, 0, kNoXmlNode, out);
  return out;
}

std::vector<std::vector<EventId>> PrXmlDocument::NodeScopes() const {
  TUD_CHECK(finalized_);
  // Occurrences: only named global events (cie literals); materialised
  // local-choice events are consumed at their own edge and never need to
  // be remembered across the tree.
  std::vector<std::vector<PNodeId>> occurrences(events_.size());
  for (PNodeId n = 0; n < NumNodes(); ++n) {
    if (parents_[n] == kNoPNode ||
        kinds_[parents_[n]] != PNodeKind::kCie) {
      continue;
    }
    for (const auto& [event, value] : edge_literals_[n]) {
      (void)value;
      occurrences[event].push_back(n);
    }
  }

  std::vector<std::vector<EventId>> scopes(NumNodes());
  for (EventId e = 0; e < events_.size(); ++e) {
    const std::vector<PNodeId>& occ = occurrences[e];
    if (occ.empty()) continue;
    std::vector<bool> in_scope(NumNodes(), false);
    // (a) Occurrence nodes and their descendants.
    for (PNodeId o : occ) {
      // DFS below o.
      std::vector<PNodeId> stack = {o};
      while (!stack.empty()) {
        PNodeId x = stack.back();
        stack.pop_back();
        if (in_scope[x]) continue;
        in_scope[x] = true;
        for (PNodeId c : children_[x]) stack.push_back(c);
      }
    }
    // (b) Nodes with occurrences both inside and outside their subtree
    // (the region connecting multiple occurrences).
    if (occ.size() > 1) {
      std::vector<uint32_t> inside(NumNodes(), 0);
      for (PNodeId o : occ) {
        for (PNodeId x = o; x != kNoPNode; x = parents_[x]) ++inside[x];
      }
      for (PNodeId n = 0; n < NumNodes(); ++n) {
        if (inside[n] > 0 && inside[n] < occ.size()) in_scope[n] = true;
      }
    }
    for (PNodeId n = 0; n < NumNodes(); ++n) {
      if (in_scope[n]) scopes[n].push_back(e);
    }
  }
  return scopes;
}

size_t PrXmlDocument::MaxScopeSize() const {
  size_t max_size = 0;
  for (const std::vector<EventId>& scope : NodeScopes()) {
    max_size = std::max(max_size, scope.size());
  }
  return max_size;
}

bool PrXmlDocument::IsLocal() const {
  for (PNodeKind k : kinds_) {
    if (k == PNodeKind::kCie) return false;
  }
  return true;
}

}  // namespace tud
