#include "prxml/xml_tree.h"

#include "util/check.h"

namespace tud {

XmlNodeId XmlTree::AddRoot(std::string label) {
  TUD_CHECK_EQ(NumNodes(), 0u);
  labels_.push_back(std::move(label));
  parents_.push_back(kNoXmlNode);
  children_.emplace_back();
  return 0;
}

XmlNodeId XmlTree::AddChild(XmlNodeId parent, std::string label) {
  TUD_CHECK_LT(parent, NumNodes());
  XmlNodeId id = static_cast<XmlNodeId>(NumNodes());
  labels_.push_back(std::move(label));
  parents_.push_back(parent);
  children_.emplace_back();
  children_[parent].push_back(id);
  return id;
}

namespace {

void Render(const XmlTree& tree, XmlNodeId n, int depth, std::string& out) {
  out.append(static_cast<size_t>(depth) * 2, ' ');
  out += tree.label(n);
  out += "\n";
  for (XmlNodeId c : tree.children(n)) Render(tree, c, depth + 1, out);
}

}  // namespace

std::string XmlTree::ToString() const {
  std::string out;
  if (NumNodes() > 0) Render(*this, root(), 0, out);
  return out;
}

}  // namespace tud
