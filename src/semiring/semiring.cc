#include "semiring/semiring.h"

#include <algorithm>

namespace tud {

WhySemiring::Value WhySemiring::Absorb(const Value& v) {
  Value out;
  for (const std::set<EventId>& witness : v) {
    bool minimal = true;
    for (const std::set<EventId>& other : v) {
      if (&other == &witness) continue;
      if (other.size() < witness.size() ||
          (other.size() == witness.size() && other < witness)) {
        if (std::includes(witness.begin(), witness.end(), other.begin(),
                          other.end())) {
          minimal = false;
          break;
        }
      }
    }
    if (minimal) out.insert(witness);
  }
  return out;
}

WhySemiring::Value WhySemiring::Plus(const Value& a, const Value& b) {
  Value merged = a;
  merged.insert(b.begin(), b.end());
  return Absorb(merged);
}

WhySemiring::Value WhySemiring::Times(const Value& a, const Value& b) {
  Value product;
  for (const std::set<EventId>& wa : a) {
    for (const std::set<EventId>& wb : b) {
      std::set<EventId> merged = wa;
      merged.insert(wb.begin(), wb.end());
      product.insert(std::move(merged));
    }
  }
  return Absorb(product);
}

std::string WhySemiring::ToString(const Value& v,
                                  const EventRegistry& registry) {
  std::string out = "{";
  bool first_witness = true;
  for (const std::set<EventId>& witness : v) {
    if (!first_witness) out += ", ";
    first_witness = false;
    out += "{";
    bool first = true;
    for (EventId e : witness) {
      if (!first) out += ",";
      first = false;
      out += registry.name(e);
    }
    out += "}";
  }
  out += "}";
  return out;
}

PolySemiring::Value PolySemiring::Plus(const Value& a, const Value& b) {
  Value out = a;
  for (const auto& [monomial, coeff] : b) out[monomial] += coeff;
  return out;
}

PolySemiring::Value PolySemiring::Times(const Value& a, const Value& b) {
  Value out;
  for (const auto& [ma, ca] : a) {
    for (const auto& [mb, cb] : b) {
      std::vector<EventId> merged;
      merged.reserve(ma.size() + mb.size());
      std::merge(ma.begin(), ma.end(), mb.begin(), mb.end(),
                 std::back_inserter(merged));
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      out[merged] += ca * cb;
    }
  }
  return out;
}

bool PolySemiring::EvaluateBool(const Value& v,
                                const std::vector<bool>& valuation) {
  for (const auto& [monomial, coeff] : v) {
    if (coeff == 0) continue;
    bool all_true = true;
    for (EventId e : monomial) {
      if (e >= valuation.size() || !valuation[e]) {
        all_true = false;
        break;
      }
    }
    if (all_true) return true;
  }
  return false;
}

std::string PolySemiring::ToString(const Value& v,
                                   const EventRegistry& registry) {
  if (v.empty()) return "0";
  std::string out;
  bool first_term = true;
  for (const auto& [monomial, coeff] : v) {
    if (coeff == 0) continue;
    if (!first_term) out += " + ";
    first_term = false;
    if (coeff != 1 || monomial.empty()) out += std::to_string(coeff);
    for (size_t i = 0; i < monomial.size(); ++i) {
      if (i > 0 || coeff != 1) out += "*";
      out += registry.name(monomial[i]);
    }
  }
  return out.empty() ? "0" : out;
}

}  // namespace tud
