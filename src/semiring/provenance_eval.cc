// provenance_eval.h is header-only (templates); this translation unit
// exists so the target has a compiled object and the header is verified
// self-contained.
#include "semiring/provenance_eval.h"
