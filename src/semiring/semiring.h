#ifndef TUD_SEMIRING_SEMIRING_H_
#define TUD_SEMIRING_SEMIRING_H_

#include <algorithm>
#include <cstdint>
#include <limits>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "events/event_registry.h"

namespace tud {

/// Commutative semirings for provenance (Green-Karvounarakis-Tannen).
///
/// Each semiring is a stateless struct exposing:
///   using Value = ...;
///   static Value Zero();                  // neutral for Plus
///   static Value One();                   // neutral for Times
///   static Value Plus(const Value&, const Value&);
///   static Value Times(const Value&, const Value&);
///
/// The paper (§2.2) shows that for monotone queries the lineage circuits
/// produced by the automaton construction are provenance circuits matching
/// semiring provenance for *absorptive* semirings — those satisfying
/// a + ab = a (equivalently 1 + a = 1). Boolean, Why, Tropical and
/// MaxTimes below are absorptive; Counting is not (it is included for
/// testing the distinction, see provenance tests).

/// The Boolean semiring ({0,1}, OR, AND): provenance = query lineage.
struct BoolSemiring {
  using Value = bool;
  static Value Zero() { return false; }
  static Value One() { return true; }
  static Value Plus(Value a, Value b) { return a || b; }
  static Value Times(Value a, Value b) { return a && b; }
};

/// The counting semiring (N, +, *): counts derivations. Not absorptive.
struct CountingSemiring {
  using Value = uint64_t;
  static Value Zero() { return 0; }
  static Value One() { return 1; }
  static Value Plus(Value a, Value b) { return a + b; }
  static Value Times(Value a, Value b) { return a * b; }
};

/// The tropical semiring (R∪{∞}, min, +): minimal-cost derivation.
struct TropicalSemiring {
  using Value = double;
  static Value Zero() { return std::numeric_limits<double>::infinity(); }
  static Value One() { return 0.0; }
  static Value Plus(Value a, Value b) { return std::min(a, b); }
  static Value Times(Value a, Value b) { return a + b; }
};

/// The Viterbi semiring ([0,1], max, *): most-probable derivation.
struct MaxTimesSemiring {
  using Value = double;
  static Value Zero() { return 0.0; }
  static Value One() { return 1.0; }
  static Value Plus(Value a, Value b) { return std::max(a, b); }
  static Value Times(Value a, Value b) { return a * b; }
};

/// Why-provenance: antichains of witness sets (sets of events), with
/// absorption — a witness set that is a superset of another is dropped.
/// This is the free absorptive semiring over the event variables.
struct WhySemiring {
  /// Each inner set is one minimal witness (set of event ids).
  using Value = std::set<std::set<EventId>>;

  static Value Zero() { return {}; }
  static Value One() { return {std::set<EventId>{}}; }

  /// Union of witness families, then absorption.
  static Value Plus(const Value& a, const Value& b);

  /// Pairwise unions of witnesses, then absorption.
  static Value Times(const Value& a, const Value& b);

  /// Removes non-minimal witness sets.
  static Value Absorb(const Value& v);

  /// Renders e.g. "{{e1,e2},{e3}}".
  static std::string ToString(const Value& v, const EventRegistry& registry);
};

/// The multilinear polynomial provenance semiring N[X]/(x^2=x): polynomials
/// with natural coefficients over event variables, with idempotent
/// variables (a fact used twice in one derivation counts once). Suitable
/// for set-semantics derivation counting. Not absorptive.
struct PolySemiring {
  /// Maps a sorted monomial (vector of distinct event ids) to its
  /// coefficient.
  using Value = std::map<std::vector<EventId>, uint64_t>;

  static Value Zero() { return {}; }
  static Value One() { return {{std::vector<EventId>{}, 1}}; }
  static Value Plus(const Value& a, const Value& b);
  static Value Times(const Value& a, const Value& b);

  /// Evaluates the polynomial over the Boolean semiring at `valuation`.
  static bool EvaluateBool(const Value& v,
                           const std::vector<bool>& valuation);

  /// Renders e.g. "2*x0*x1 + x2 + 1".
  static std::string ToString(const Value& v, const EventRegistry& registry);
};

}  // namespace tud

#endif  // TUD_SEMIRING_SEMIRING_H_
