#ifndef TUD_SEMIRING_PROVENANCE_EVAL_H_
#define TUD_SEMIRING_PROVENANCE_EVAL_H_

#include <functional>
#include <vector>

#include "circuits/bool_circuit.h"
#include "util/check.h"

namespace tud {

/// Evaluates the monotone circuit `circuit` in semiring `S`, bottom-up:
/// OR gates become semiring Plus, AND gates become Times, kVar gates take
/// the value `leaf_value(event)`, and constants map to One/Zero. The gate
/// `root` must not have any kNot gate below it (checked).
///
/// For absorptive semirings this computes the semiring provenance of the
/// query whose lineage circuit this is (paper §2.2: "in the case of
/// monotone queries, our lineage circuits are provenance circuits matching
/// standard definitions of semiring provenance for absorptive semirings").
template <typename S>
typename S::Value EvalMonotoneCircuit(
    const BoolCircuit& circuit, GateId root,
    const std::function<typename S::Value(EventId)>& leaf_value) {
  TUD_CHECK(circuit.IsMonotone(root))
      << "semiring evaluation requires a monotone (NOT-free) circuit";
  std::vector<typename S::Value> values(circuit.NumGates(), S::Zero());
  for (GateId g : circuit.ReachableFrom(root)) {
    switch (circuit.kind(g)) {
      case GateKind::kConst:
        values[g] = circuit.const_value(g) ? S::One() : S::Zero();
        break;
      case GateKind::kVar:
        values[g] = leaf_value(circuit.var(g));
        break;
      case GateKind::kAnd: {
        typename S::Value v = S::One();
        for (GateId in : circuit.inputs(g)) v = S::Times(v, values[in]);
        values[g] = v;
        break;
      }
      case GateKind::kOr: {
        typename S::Value v = S::Zero();
        for (GateId in : circuit.inputs(g)) v = S::Plus(v, values[in]);
        values[g] = v;
        break;
      }
      case GateKind::kNot:
        TUD_CHECK(false) << "NOT gate in monotone evaluation";
    }
  }
  return values[root];
}

/// Convenience overload: each kVar gate maps to the "variable itself" via
/// `S::Value FromEvent(EventId)`-style factory provided as a lambda in the
/// primary overload; this variant assigns One() to every present event —
/// i.e., evaluates the polynomial at all-ones (useful as a smoke value).
template <typename S>
typename S::Value EvalMonotoneCircuitAllOnes(const BoolCircuit& circuit,
                                             GateId root) {
  return EvalMonotoneCircuit<S>(
      circuit, root, [](EventId) { return S::One(); });
}

}  // namespace tud

#endif  // TUD_SEMIRING_PROVENANCE_EVAL_H_
