#include "circuits/bool_circuit.h"

#include <algorithm>

#include "util/check.h"

namespace tud {

namespace {

size_t HashGateKey(GateKind kind, EventId var, const GateId* inputs,
                   size_t num_inputs) {
  size_t h = static_cast<size_t>(kind) * 0x9e3779b97f4a7c15ULL;
  h ^= var + 0x9e3779b9 + (h << 6) + (h >> 2);
  for (size_t i = 0; i < num_inputs; ++i) {
    h ^= inputs[i] + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace

size_t BoolCircuit::HashKeyHasher::operator()(const HashKey& key) const {
  return HashGateKey(key.kind, key.var, key.inputs.data(),
                     key.inputs.size());
}

size_t BoolCircuit::HashKeyHasher::operator()(const HashKeyView& key) const {
  return HashGateKey(key.kind, key.var, key.inputs, key.num_inputs);
}

bool BoolCircuit::HashKeyEq::operator()(const HashKey& a,
                                        const HashKey& b) const {
  return a.kind == b.kind && a.var == b.var && a.inputs == b.inputs;
}

bool BoolCircuit::HashKeyEq::operator()(const HashKeyView& a,
                                        const HashKey& b) const {
  return a.kind == b.kind && a.var == b.var &&
         std::equal(a.inputs, a.inputs + a.num_inputs, b.inputs.begin(),
                    b.inputs.end());
}

bool BoolCircuit::HashKeyEq::operator()(const HashKey& a,
                                        const HashKeyView& b) const {
  return operator()(b, a);
}

GateId BoolCircuit::AddGate(GateKind kind, bool const_value, EventId event,
                            std::vector<GateId> inputs) {
  GateId id = static_cast<GateId>(kinds_.size());
  // Append-only topological invariant: every input predates its reader.
  for (GateId in : inputs) TUD_DCHECK(in < id);
  kinds_.push_back(kind);
  const_values_.push_back(const_value);
  vars_.push_back(event);
  inputs_.push_back(std::move(inputs));
  return id;
}

void BoolCircuit::Reserve(size_t num_gates) {
  kinds_.reserve(num_gates);
  const_values_.reserve(num_gates);
  vars_.reserve(num_gates);
  inputs_.reserve(num_gates);
  cache_.reserve(num_gates);
}

GateId BoolCircuit::AddConst(bool value) {
  GateId& cached = value ? true_gate_ : false_gate_;
  if (cached == kInvalidGate) {
    cached = AddGate(GateKind::kConst, value, kInvalidEvent, {});
  }
  return cached;
}

GateId BoolCircuit::AddVar(EventId event) {
  TUD_CHECK_NE(event, kInvalidEvent);
  auto it = var_cache_.find(event);
  if (it != var_cache_.end()) return it->second;
  GateId id = AddGate(GateKind::kVar, false, event, {});
  var_cache_.emplace(event, id);
  num_events_ = std::max(num_events_, static_cast<size_t>(event) + 1);
  return id;
}

GateId BoolCircuit::AddNot(GateId input) {
  TUD_CHECK_LT(input, NumGates());
  if (kind(input) == GateKind::kConst) return AddConst(!const_value(input));
  if (kind(input) == GateKind::kNot) return inputs_[input][0];
  HashKey key{GateKind::kNot, kInvalidEvent, {input}};
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  GateId id = AddGate(GateKind::kNot, false, kInvalidEvent, {input});
  cache_.emplace(std::move(key), id);
  return id;
}

GateId BoolCircuit::AddNaryInPlace(GateKind op, std::vector<GateId>& inputs) {
  const bool is_and = op == GateKind::kAnd;
  // Const-fold and compact in place: no temporary set, no copy.
  size_t kept = 0;
  for (size_t r = 0; r < inputs.size(); ++r) {
    const GateId in = inputs[r];
    TUD_CHECK_LT(in, NumGates());
    if (kind(in) == GateKind::kConst) {
      // Absorbing constant (false for AND, true for OR) decides the gate.
      if (const_value(in) != is_and) return AddConst(!is_and);
      continue;  // Neutral constant: drop.
    }
    inputs[kept++] = in;
  }
  inputs.resize(kept);
  std::sort(inputs.begin(), inputs.end());
  inputs.erase(std::unique(inputs.begin(), inputs.end()), inputs.end());
  if (inputs.empty()) return AddConst(is_and);
  if (inputs.size() == 1) return inputs[0];  // Passthrough fold.
  auto it = cache_.find(
      HashKeyView{op, kInvalidEvent, inputs.data(), inputs.size()});
  if (it != cache_.end()) return it->second;
  GateId id = AddGate(op, false, kInvalidEvent,
                      std::vector<GateId>(inputs.begin(), inputs.end()));
  cache_.emplace(HashKey{op, kInvalidEvent, inputs_[id]}, id);
  return id;
}

GateId BoolCircuit::RestoreGate(GateKind kind, bool const_value,
                                EventId event, std::vector<GateId> inputs) {
  GateId id = AddGate(kind, const_value, event, std::move(inputs));
  switch (kind) {
    case GateKind::kConst: {
      GateId& cached = const_value ? true_gate_ : false_gate_;
      if (cached == kInvalidGate) cached = id;
      break;
    }
    case GateKind::kVar:
      var_cache_.emplace(event, id);
      num_events_ = std::max(num_events_, static_cast<size_t>(event) + 1);
      break;
    case GateKind::kNot:
    case GateKind::kAnd:
    case GateKind::kOr:
      // emplace keeps the first id on a duplicate key, matching what the
      // original construction's cache held.
      cache_.emplace(HashKey{kind, event, inputs_[id]}, id);
      break;
  }
  return id;
}

GateId BoolCircuit::AddAnd(std::vector<GateId> inputs) {
  return AddNaryInPlace(GateKind::kAnd, inputs);
}

GateId BoolCircuit::AddOr(std::vector<GateId> inputs) {
  return AddNaryInPlace(GateKind::kOr, inputs);
}

GateId BoolCircuit::AddAndInPlace(std::vector<GateId>& scratch) {
  return AddNaryInPlace(GateKind::kAnd, scratch);
}

GateId BoolCircuit::AddOrInPlace(std::vector<GateId>& scratch) {
  return AddNaryInPlace(GateKind::kOr, scratch);
}

GateId BoolCircuit::AddFormula(const BoolFormula& formula) {
  switch (formula.kind()) {
    case BoolFormula::Kind::kConst:
      return AddConst(formula.const_value());
    case BoolFormula::Kind::kVar:
      return AddVar(formula.var());
    case BoolFormula::Kind::kNot:
      return AddNot(AddFormula(formula.children()[0]));
    case BoolFormula::Kind::kAnd:
    case BoolFormula::Kind::kOr: {
      std::vector<GateId> inputs;
      inputs.reserve(formula.children().size());
      for (const BoolFormula& child : formula.children()) {
        inputs.push_back(AddFormula(child));
      }
      return formula.kind() == BoolFormula::Kind::kAnd
                 ? AddAnd(std::move(inputs))
                 : AddOr(std::move(inputs));
    }
  }
  TUD_CHECK(false) << "unreachable";
  return kInvalidGate;
}

bool BoolCircuit::const_value(GateId g) const {
  TUD_CHECK(kind(g) == GateKind::kConst);
  return const_values_[g];
}

EventId BoolCircuit::var(GateId g) const {
  TUD_CHECK(kind(g) == GateKind::kVar);
  return vars_[g];
}

std::vector<bool> BoolCircuit::EvaluateAll(const Valuation& valuation) const {
  std::vector<bool> values(NumGates());
  for (GateId g = 0; g < NumGates(); ++g) {
    switch (kinds_[g]) {
      case GateKind::kConst:
        values[g] = const_values_[g];
        break;
      case GateKind::kVar:
        TUD_CHECK_LT(vars_[g], valuation.size());
        values[g] = valuation.value(vars_[g]);
        break;
      case GateKind::kNot:
        values[g] = !values[inputs_[g][0]];
        break;
      case GateKind::kAnd: {
        bool v = true;
        for (GateId in : inputs_[g]) v = v && values[in];
        values[g] = v;
        break;
      }
      case GateKind::kOr: {
        bool v = false;
        for (GateId in : inputs_[g]) v = v || values[in];
        values[g] = v;
        break;
      }
    }
  }
  return values;
}

bool BoolCircuit::Evaluate(GateId g, const Valuation& valuation) const {
  TUD_CHECK_LT(g, NumGates());
  return EvaluateAll(valuation)[g];
}

std::pair<BoolCircuit, std::vector<GateId>> BoolCircuit::Binarize() const {
  BoolCircuit out;
  out.Reserve(NumGates() + NumGates() / 4);
  std::vector<GateId> remap(NumGates(), kInvalidGate);
  for (GateId g = 0; g < NumGates(); ++g) {
    switch (kinds_[g]) {
      case GateKind::kConst:
        remap[g] = out.AddConst(const_values_[g]);
        break;
      case GateKind::kVar:
        remap[g] = out.AddVar(vars_[g]);
        break;
      case GateKind::kNot:
        remap[g] = out.AddNot(remap[inputs_[g][0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        // Balanced reduction tree over the remapped inputs.
        std::vector<GateId> level;
        level.reserve(inputs_[g].size());
        for (GateId in : inputs_[g]) level.push_back(remap[in]);
        while (level.size() > 1) {
          std::vector<GateId> next;
          next.reserve((level.size() + 1) / 2);
          for (size_t i = 0; i + 1 < level.size(); i += 2) {
            next.push_back(kinds_[g] == GateKind::kAnd
                               ? out.AddAnd(level[i], level[i + 1])
                               : out.AddOr(level[i], level[i + 1]));
          }
          if (level.size() % 2 == 1) next.push_back(level.back());
          level = std::move(next);
        }
        remap[g] = level.empty()
                       ? out.AddConst(kinds_[g] == GateKind::kAnd)
                       : level[0];
        break;
      }
    }
  }
  return {std::move(out), std::move(remap)};
}

std::vector<std::pair<GateId, GateId>> BoolCircuit::PrimalEdges() const {
  std::vector<std::pair<GateId, GateId>> edges;
  for (GateId g = 0; g < NumGates(); ++g) {
    const std::vector<GateId>& ins = inputs_[g];
    for (size_t i = 0; i < ins.size(); ++i) {
      edges.emplace_back(std::min(ins[i], g), std::max(ins[i], g));
      for (size_t j = i + 1; j < ins.size(); ++j) {
        edges.emplace_back(std::min(ins[i], ins[j]),
                           std::max(ins[i], ins[j]));
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::vector<GateId> BoolCircuit::ReachableFrom(GateId root) const {
  TUD_CHECK_LT(root, NumGates());
  std::vector<bool> seen(NumGates(), false);
  std::vector<GateId> stack = {root};
  seen[root] = true;
  while (!stack.empty()) {
    GateId g = stack.back();
    stack.pop_back();
    for (GateId in : inputs_[g]) {
      if (!seen[in]) {
        seen[in] = true;
        stack.push_back(in);
      }
    }
  }
  std::vector<GateId> result;
  for (GateId g = 0; g < NumGates(); ++g) {
    if (seen[g]) result.push_back(g);
  }
  return result;
}

std::pair<BoolCircuit, GateId> BoolCircuit::ExtractCone(GateId root) const {
  std::vector<GateId> reachable = ReachableFrom(root);
  BoolCircuit out;
  out.Reserve(reachable.size());
  std::vector<GateId> remap(NumGates(), kInvalidGate);
  for (GateId g : reachable) {
    switch (kinds_[g]) {
      case GateKind::kConst:
        remap[g] = out.AddConst(const_values_[g]);
        break;
      case GateKind::kVar:
        remap[g] = out.AddVar(vars_[g]);
        break;
      case GateKind::kNot:
        remap[g] = out.AddNot(remap[inputs_[g][0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<GateId> ins;
        ins.reserve(inputs_[g].size());
        for (GateId in : inputs_[g]) ins.push_back(remap[in]);
        remap[g] = kinds_[g] == GateKind::kAnd ? out.AddAnd(std::move(ins))
                                               : out.AddOr(std::move(ins));
        break;
      }
    }
  }
  return {std::move(out), remap[root]};
}

std::pair<BoolCircuit, std::vector<GateId>> BoolCircuit::ExtractCones(
    const std::vector<GateId>& roots) const {
  // Multi-source reachability, then one ascending copy pass: gates in
  // the union of the cones are copied exactly once, so roots with
  // overlapping cones share the copied structure.
  std::vector<bool> seen(NumGates(), false);
  std::vector<GateId> stack;
  for (GateId root : roots) {
    TUD_CHECK_LT(root, NumGates());
    if (!seen[root]) {
      seen[root] = true;
      stack.push_back(root);
    }
  }
  while (!stack.empty()) {
    GateId g = stack.back();
    stack.pop_back();
    for (GateId in : inputs_[g]) {
      if (!seen[in]) {
        seen[in] = true;
        stack.push_back(in);
      }
    }
  }
  BoolCircuit out;
  std::vector<GateId> remap(NumGates(), kInvalidGate);
  for (GateId g = 0; g < NumGates(); ++g) {
    if (!seen[g]) continue;
    switch (kinds_[g]) {
      case GateKind::kConst:
        remap[g] = out.AddConst(const_values_[g]);
        break;
      case GateKind::kVar:
        remap[g] = out.AddVar(vars_[g]);
        break;
      case GateKind::kNot:
        remap[g] = out.AddNot(remap[inputs_[g][0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<GateId> ins;
        ins.reserve(inputs_[g].size());
        for (GateId in : inputs_[g]) ins.push_back(remap[in]);
        remap[g] = kinds_[g] == GateKind::kAnd ? out.AddAnd(std::move(ins))
                                               : out.AddOr(std::move(ins));
        break;
      }
    }
  }
  std::vector<GateId> out_roots;
  out_roots.reserve(roots.size());
  for (GateId root : roots) out_roots.push_back(remap[root]);
  return {std::move(out), std::move(out_roots)};
}

GateId BoolCircuit::ImportCone(const BoolCircuit& source, GateId root,
                               std::vector<GateId>* cache) {
  TUD_CHECK(cache != nullptr);
  TUD_CHECK_EQ(cache->size(), source.NumGates());
  if ((*cache)[root] != kInvalidGate) return (*cache)[root];
  for (GateId g : source.ReachableFrom(root)) {
    if ((*cache)[g] != kInvalidGate) continue;
    switch (source.kind(g)) {
      case GateKind::kConst:
        (*cache)[g] = AddConst(source.const_value(g));
        break;
      case GateKind::kVar:
        (*cache)[g] = AddVar(source.var(g));
        break;
      case GateKind::kNot:
        (*cache)[g] = AddNot((*cache)[source.inputs(g)[0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<GateId> ins;
        ins.reserve(source.inputs(g).size());
        for (GateId in : source.inputs(g)) ins.push_back((*cache)[in]);
        (*cache)[g] = source.kind(g) == GateKind::kAnd
                          ? AddAnd(std::move(ins))
                          : AddOr(std::move(ins));
        break;
      }
    }
  }
  return (*cache)[root];
}

bool BoolCircuit::IsMonotone(GateId root) const {
  for (GateId g : ReachableFrom(root)) {
    if (kinds_[g] == GateKind::kNot) return false;
  }
  return true;
}

std::string BoolCircuit::ToString(const EventRegistry& registry) const {
  std::string out;
  for (GateId g = 0; g < NumGates(); ++g) {
    out += "g" + std::to_string(g) + " = ";
    switch (kinds_[g]) {
      case GateKind::kConst:
        out += const_values_[g] ? "TRUE" : "FALSE";
        break;
      case GateKind::kVar:
        out += "var(" + registry.name(vars_[g]) + ")";
        break;
      case GateKind::kNot:
        out += "not(g" + std::to_string(inputs_[g][0]) + ")";
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        out += kinds_[g] == GateKind::kAnd ? "and(" : "or(";
        for (size_t i = 0; i < inputs_[g].size(); ++i) {
          if (i > 0) out += ", ";
          out += "g" + std::to_string(inputs_[g][i]);
        }
        out += ")";
        break;
      }
    }
    out += "\n";
  }
  return out;
}

}  // namespace tud
