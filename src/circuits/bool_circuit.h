#ifndef TUD_CIRCUITS_BOOL_CIRCUIT_H_
#define TUD_CIRCUITS_BOOL_CIRCUIT_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "events/bool_formula.h"
#include "events/event_registry.h"
#include "events/valuation.h"

namespace tud {

/// Index of a gate within a BoolCircuit.
using GateId = uint32_t;

/// Sentinel for "no gate".
inline constexpr GateId kInvalidGate = UINT32_MAX;

/// Gate operations. kVar gates read an event; kConst gates are fixed.
enum class GateKind : uint8_t { kConst, kVar, kNot, kAnd, kOr };

/// A Boolean circuit over events: a DAG of gates.
///
/// This is the paper's annotation language for pcc-instances ("write
/// annotations as Boolean circuits rather than formulae, and look at the
/// treewidth of the annotation circuit", §2.2), and it is also the *output*
/// language: running a tree automaton over an uncertain instance produces a
/// lineage circuit describing which possible worlds are accepted.
///
/// Gates are created append-only, so inputs always have smaller ids than
/// the gates that read them; the id order is a topological order and all
/// bottom-up passes are simple loops. Structural hashing deduplicates
/// AND/OR/NOT gates with identical inputs, and constant inputs are folded
/// away at construction.
class BoolCircuit {
 public:
  BoolCircuit() = default;

  /// Adds (or reuses) the constant gate for `value`.
  GateId AddConst(bool value);

  /// Adds (or reuses) the input gate reading `event`.
  GateId AddVar(EventId event);

  /// Adds a negation. Folds constants and double negation.
  GateId AddNot(GateId input);

  /// Adds an n-ary conjunction / disjunction. Folds constants, drops
  /// duplicates (sort+unique in place, no temporary set), folds
  /// single-input gates to a passthrough, flattens nothing (inputs are
  /// used as given). Empty AND is true; empty OR is false.
  GateId AddAnd(std::vector<GateId> inputs);
  GateId AddOr(std::vector<GateId> inputs);
  GateId AddAnd(GateId a, GateId b) { return AddAnd({a, b}); }
  GateId AddOr(GateId a, GateId b) { return AddOr({a, b}); }

  /// Bulk-producer fast path: identical semantics to AddAnd/AddOr, but
  /// works in the caller's scratch vector (clobbering it) so a tight
  /// gate-emitting loop — e.g. ProvenanceRun — performs no allocation on
  /// structural-hash hits. Pair with Reserve() for batched emission.
  GateId AddAndInPlace(std::vector<GateId>& scratch);
  GateId AddOrInPlace(std::vector<GateId>& scratch);

  /// Pre-sizes the gate arrays and the structural-hash table for a
  /// producer that is about to emit up to `num_gates` total gates.
  void Reserve(size_t num_gates);

  /// Recursively adds a propositional formula; returns its root gate.
  GateId AddFormula(const BoolFormula& formula);

  /// Persistence restore: appends the gate with id NumGates() with
  /// exactly the given raw shape — no folding, no deduplication — and
  /// re-derives the construction caches (structural-hash cache, var
  /// cache, const-gate slots, NumEvents), so hash-consing after a
  /// restore behaves identically to the original construction. Gates
  /// must be restored in id order; the caller (the checkpoint loader)
  /// is responsible for validating inputs < id first.
  GateId RestoreGate(GateKind kind, bool const_value, EventId event,
                     std::vector<GateId> inputs);

  size_t NumGates() const { return kinds_.size(); }
  GateKind kind(GateId g) const { return kinds_[g]; }
  bool const_value(GateId g) const;
  EventId var(GateId g) const;
  const std::vector<GateId>& inputs(GateId g) const { return inputs_[g]; }

  /// Largest event id mentioned by any kVar gate, plus one (0 if none).
  size_t NumEvents() const { return num_events_; }

  /// Evaluates every gate bottom-up under `valuation`; returns the vector
  /// of gate values. `valuation` must cover NumEvents() events.
  std::vector<bool> EvaluateAll(const Valuation& valuation) const;

  /// Evaluates just gate `g` (computes the full bottom-up pass).
  bool Evaluate(GateId g, const Valuation& valuation) const;

  /// Returns an equivalent circuit in which every AND/OR gate has fan-in
  /// exactly 2 (balanced reduction trees), along with the mapping from old
  /// gate ids to new ones. Bounded fan-in keeps the primal-graph cliques
  /// small, which is what treewidth-based inference needs.
  std::pair<BoolCircuit, std::vector<GateId>> Binarize() const;

  /// Edges of the primal graph of the circuit: one vertex per gate, an
  /// edge between a gate and each of its inputs, and a clique over the
  /// inputs-plus-output of every gate (so a bag covering the gate's local
  /// constraint exists in any tree decomposition). Each edge (a, b) has
  /// a < b and edges are deduplicated.
  std::vector<std::pair<GateId, GateId>> PrimalEdges() const;

  /// Gates reachable from `root` (including `root` itself), ascending.
  std::vector<GateId> ReachableFrom(GateId root) const;

  /// Copies the sub-circuit reachable from `root` into a fresh circuit.
  /// Returns the new circuit and the gate corresponding to `root`.
  std::pair<BoolCircuit, GateId> ExtractCone(GateId root) const;

  /// Multi-root variant: copies the union of the cones of `roots` into a
  /// fresh circuit, returning the circuit and the gate corresponding to
  /// each root (shared structure is copied once). Used by batched
  /// junction-tree plans, which answer a set of lineage roots over one
  /// shared decomposition.
  std::pair<BoolCircuit, std::vector<GateId>> ExtractCones(
      const std::vector<GateId>& roots) const;

  /// Copies the cone of `root` in `source` into *this* circuit,
  /// returning the corresponding gate. `cache` memoises gates across
  /// calls (must be sized source.NumGates() and initialised to
  /// kInvalidGate on first use); repeated imports share structure.
  GateId ImportCone(const BoolCircuit& source, GateId root,
                    std::vector<GateId>* cache);

  /// True if no kNot gate is reachable from `root`: the lineage is then a
  /// monotone circuit, valid for semiring provenance evaluation.
  bool IsMonotone(GateId root) const;

  /// Human-readable dump (one gate per line) for debugging.
  std::string ToString(const EventRegistry& registry) const;

 private:
  GateId AddGate(GateKind kind, bool const_value, EventId event,
                 std::vector<GateId> inputs);
  GateId AddNaryInPlace(GateKind kind, std::vector<GateId>& inputs);

  struct HashKey {
    GateKind kind;
    EventId var;
    std::vector<GateId> inputs;
  };
  /// Non-owning lookup key: lets the structural-hash cache be probed
  /// from a scratch buffer without copying it (C++20 heterogeneous
  /// unordered lookup).
  struct HashKeyView {
    GateKind kind;
    EventId var;
    const GateId* inputs;
    size_t num_inputs;
  };
  struct HashKeyHasher {
    using is_transparent = void;
    size_t operator()(const HashKey& key) const;
    size_t operator()(const HashKeyView& key) const;
  };
  struct HashKeyEq {
    using is_transparent = void;
    bool operator()(const HashKey& a, const HashKey& b) const;
    bool operator()(const HashKeyView& a, const HashKey& b) const;
    bool operator()(const HashKey& a, const HashKeyView& b) const;
  };

  std::vector<GateKind> kinds_;
  std::vector<bool> const_values_;
  std::vector<EventId> vars_;
  std::vector<std::vector<GateId>> inputs_;
  size_t num_events_ = 0;
  GateId true_gate_ = kInvalidGate;
  GateId false_gate_ = kInvalidGate;
  std::unordered_map<HashKey, GateId, HashKeyHasher, HashKeyEq> cache_;
  std::unordered_map<EventId, GateId> var_cache_;
};

}  // namespace tud

#endif  // TUD_CIRCUITS_BOOL_CIRCUIT_H_
