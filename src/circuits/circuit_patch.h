#ifndef TUD_CIRCUITS_CIRCUIT_PATCH_H_
#define TUD_CIRCUITS_CIRCUIT_PATCH_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"

namespace tud {

/// The bookkeeping side of structural updates against an append-only
/// hash-consed circuit: which gates each update batch appended, and
/// which event inputs have been tombstoned by deletions.
///
/// The circuit itself never shrinks — BoolCircuit is append-only, and
/// everything downstream (cached plans, published epochs, concurrent
/// readers) depends on gate ids staying stable. A *deletion* therefore
/// never removes a gate: the deleted fact's annotation event is driven
/// permanently to its absent truth value (probability 0 for an
/// independent event — mathematically identical to pinning it false,
/// while keeping re-evaluation on the hot probability-update path) and
/// recorded here as a tombstone. An *insertion* re-runs the lineage DP
/// over the patched decomposition; structural hashing makes that
/// append-only too — unchanged sub-derivations hash-cons to their
/// existing gates, so a batch appends only the delta gates, which
/// BeginBatch/SealBatch measure.
class CircuitPatch {
 public:
  /// Marks the start of one structural update batch: remembers the
  /// circuit's gate count so SealBatch can measure the appended delta.
  void BeginBatch(const BoolCircuit& circuit) {
    batch_start_ = circuit.NumGates();
  }

  /// Closes the batch opened by BeginBatch; returns (and accumulates)
  /// the number of gates the batch appended.
  size_t SealBatch(const BoolCircuit& circuit) {
    const size_t appended = circuit.NumGates() - batch_start_;
    appended_gates_ += appended;
    ++num_batches_;
    return appended;
  }

  /// Records `event` as the tombstone of a deleted input: its truth
  /// value is permanently `value` (deletions pin false). Idempotent.
  void Tombstone(EventId event, bool value = false) {
    if (IsTombstoned(event)) return;
    tombstones_.emplace_back(event, value);
  }

  bool IsTombstoned(EventId event) const {
    for (const auto& [e, v] : tombstones_) {
      if (e == event) return true;
    }
    return false;
  }

  /// The tombstones in Evidence shape: appended to user evidence this
  /// yields delete-aware conditioning even on engines that read
  /// probabilities the registry no longer holds (e.g. a snapshot taken
  /// before the delete).
  const std::vector<std::pair<EventId, bool>>& tombstones() const {
    return tombstones_;
  }

  /// User evidence plus the tombstone pins. Tombstones are listed
  /// first: ResolveVarValues applies pins by overwrite, so on a
  /// conflict the user's pin wins.
  std::vector<std::pair<EventId, bool>> MergedEvidence(
      const std::vector<std::pair<EventId, bool>>& user) const {
    std::vector<std::pair<EventId, bool>> merged = tombstones_;
    merged.insert(merged.end(), user.begin(), user.end());
    return merged;
  }

  /// Total gates appended across sealed batches.
  size_t appended_gates() const { return appended_gates_; }
  size_t num_batches() const { return num_batches_; }
  size_t num_tombstones() const { return tombstones_.size(); }

 private:
  size_t batch_start_ = 0;
  size_t appended_gates_ = 0;
  size_t num_batches_ = 0;
  std::vector<std::pair<EventId, bool>> tombstones_;
};

}  // namespace tud

#endif  // TUD_CIRCUITS_CIRCUIT_PATCH_H_
