#include "inference/possibility.h"

#include <vector>

#include "bdd/bdd.h"

namespace tud {

namespace {

BddRef Compile(const BoolCircuit& circuit, GateId root) {
  // Levels: identity over the events of the cone.
  uint32_t num_levels = static_cast<uint32_t>(circuit.NumEvents());
  BddManager mgr(num_levels == 0 ? 1 : num_levels);
  std::vector<uint32_t> levels(num_levels);
  for (uint32_t i = 0; i < num_levels; ++i) levels[i] = i;
  return mgr.FromCircuit(circuit, root, levels);
}

}  // namespace

bool IsSatisfiable(const BoolCircuit& circuit, GateId root) {
  return Compile(circuit, root) != kBddFalse;
}

bool IsValid(const BoolCircuit& circuit, GateId root) {
  return Compile(circuit, root) == kBddTrue;
}

}  // namespace tud
