#include "inference/exhaustive.h"

#include <vector>

#include "util/check.h"

namespace tud {

double ExhaustiveProbability(const BoolCircuit& circuit, GateId root,
                             const EventRegistry& registry) {
  // Collect the events actually used under root.
  std::vector<EventId> used;
  for (GateId g : circuit.ReachableFrom(root)) {
    if (circuit.kind(g) == GateKind::kVar) used.push_back(circuit.var(g));
  }
  TUD_CHECK_LE(used.size(), 30u)
      << "exhaustive enumeration over " << used.size() << " events";

  double total = 0.0;
  Valuation valuation(registry.size());
  for (uint64_t mask = 0; mask < (1ULL << used.size()); ++mask) {
    double p = 1.0;
    for (size_t i = 0; i < used.size(); ++i) {
      bool bit = (mask >> i) & 1;
      valuation.set_value(used[i], bit);
      double pe = registry.probability(used[i]);
      p *= bit ? pe : (1.0 - pe);
    }
    if (circuit.Evaluate(root, valuation)) total += p;
  }
  return total;
}

EngineStatus ExhaustiveProbabilityGoverned(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           BudgetMeter& meter, double* value) {
  std::vector<EventId> used;
  for (GateId g : circuit.ReachableFrom(root)) {
    if (circuit.kind(g) == GateKind::kVar) used.push_back(circuit.var(g));
  }
  if (used.size() > 30u) return EngineStatus::kResourceExhausted;

  double total = 0.0;
  Valuation valuation(registry.size());
  for (uint64_t mask = 0; mask < (1ULL << used.size()); ++mask) {
    EngineStatus st = meter.Charge(1);
    if (st != EngineStatus::kOk) return st;
    double p = 1.0;
    for (size_t i = 0; i < used.size(); ++i) {
      bool bit = (mask >> i) & 1;
      valuation.set_value(used[i], bit);
      double pe = registry.probability(used[i]);
      p *= bit ? pe : (1.0 - pe);
    }
    if (circuit.Evaluate(root, valuation)) total += p;
  }
  *value = total;
  return EngineStatus::kOk;
}

}  // namespace tud
