#ifndef TUD_INFERENCE_ENGINE_H_
#define TUD_INFERENCE_ENGINE_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "util/budget.h"
#include "util/rng.h"

namespace tud {

class JunctionTreePlan;
class ConcurrentPlanCache;

/// Pinned event literals: the result of an Estimate is the conditional
/// probability P(root = true | pinned values), with pinned events
/// contributing no probability weight.
using Evidence = std::vector<std::pair<EventId, bool>>;

/// How JunctionTreeEngine::EstimateBatch served a battery (the cost
/// model's decision; see EstimateBatch).
enum class BatchPath : uint8_t {
  kNone = 0,     ///< Not a batched run (or a non-JT engine).
  kShared = 1,   ///< One shared calibrating pass over the union cone.
  kGrouped = 2,  ///< Cone-overlap groups, each shared or per-root.
  kPerRoot = 3,  ///< Per-root cached plans (the sequential cost).
};

/// Diagnostics shared by every inference engine. One struct instead of
/// the former JunctionTreeStats / HybridResult / ad-hoc sampling
/// counters: each engine fills the fields that apply to it and leaves
/// the rest at their defaults.
struct EngineStats {
  int width = -1;          ///< Decomposition width actually used (message
                           ///< passing; for hybrid, the widest restricted
                           ///< decomposition over samples).
  size_t num_bags = 0;     ///< Bags in the decomposition.
  size_t num_gates = 0;    ///< Gates of the (binarised) cone processed.
  size_t num_samples = 0;  ///< Monte-Carlo samples drawn (0 for exact).
  size_t bdd_nodes = 0;    ///< Nodes of the compiled BDD (BDD engine).
  size_t cone_events = 0;  ///< Distinct events under the root.
  size_t batch_size = 0;   ///< Roots answered by the run that produced
                           ///< this result (1 for single-root runs).
  size_t bags_visited = 0;  ///< Bags processed by the message pass(es):
                            ///< one upward sweep for single roots, the
                            ///< upward plus the pruned downward sweep
                            ///< for batched runs.
  size_t max_table = 0;    ///< Largest bag table (entries) touched.
  uint32_t degradations = 0;  ///< AutoEngine: rungs abandoned mid-flight
                              ///< because the budget tripped (0 = the
                              ///< first-choice engine answered).

  // Batch cost-model diagnostics (JunctionTreeEngine::EstimateBatch;
  // identical on every result of one batched call).
  BatchPath batch_path = BatchPath::kNone;  ///< Decision actually taken.
  double batch_shared_cost = 0;    ///< 2 x Σ 2^|bag| of the whole-set
                                   ///< union plan (up + pruned down
                                   ///< sweep); infinity when the union
                                   ///< is too wide for exact passing.
  double batch_per_root_cost = 0;  ///< Σ over roots of the per-root
                                   ///< Σ 2^|bag| (one upward sweep each).
  size_t batch_groups = 0;  ///< Executed groups: 1 for kShared; otherwise
                            ///< the size of the cone-overlap partition
                            ///< (whether each group batched or fell back
                            ///< per root).
};

/// The uniform answer shape of every engine.
struct EngineResult {
  double value = 0.0;        ///< The (estimated) probability.
  double error_bound = 0.0;  ///< 0 for exact engines; for sampling-based
                             ///< ones, a 95% normal-approximation
                             ///< half-width of the estimate. 1.0 when
                             ///< status != kOk (the value carries no
                             ///< information).
  const char* engine = "";   ///< Name of the engine that produced it
                             ///< (the delegate's name under AutoEngine).
  EngineStatus status = EngineStatus::kOk;  ///< kOk, or why `value` is
                                            ///< not an answer (budget
                                            ///< trip, bad request,
                                            ///< serving-layer shed).
  EngineStats stats;

  bool ok() const { return status == EngineStatus::kOk; }
};

/// The uniform "request failed" result: error_bound 1.0, value 0.
inline EngineResult MakeStatusResult(const char* engine,
                                     EngineStatus status) {
  EngineResult result;
  result.engine = engine;
  result.status = status;
  result.error_bound = 1.0;
  return result;
}

/// The unified inference interface of the evaluation pipeline (§2.2:
/// "the probability that I satisfies q can be computed from C"): every
/// engine estimates P(root = true | evidence) over the independent
/// events of `registry`. Implementations are the five adapters below
/// plus the AutoEngine planner; QuerySession calls whichever it is
/// handed, so callers pick a policy once instead of hand-dispatching
/// per query.
class ProbabilityEngine {
 public:
  virtual ~ProbabilityEngine() = default;

  /// Estimates P(root = true | evidence). The non-virtual entry points
  /// validate the request (root in range, evidence EventIds known to
  /// the registry — a malformed request returns kInvalidArgument
  /// instead of aborting) and check the budget before dispatching to
  /// the engine's EstimateImpl; engines then check the budget at
  /// bag/iteration granularity and report trips through
  /// EngineResult::status. The budgetless overload runs ungoverned
  /// (unlimited budget) — the pre-existing contract, unchanged.
  EngineResult Estimate(const BoolCircuit& circuit, GateId root,
                        const EventRegistry& registry,
                        const Evidence& evidence = {});
  EngineResult Estimate(const BoolCircuit& circuit, GateId root,
                        const EventRegistry& registry,
                        const Evidence& evidence, const QueryBudget& budget);

  /// Estimates every root of a batch under one shared evidence set and
  /// one shared budget. The deadline and cancel token cover the whole
  /// batch (a trip short-circuits the remaining roots); the cell cap is
  /// enforced per executed unit — per root in the base loop, per shared
  /// plan in a native batch path. Any out-of-range root or unknown
  /// evidence event fails the *whole* batch with kInvalidArgument.
  std::vector<EngineResult> EstimateBatch(const BoolCircuit& circuit,
                                          const std::vector<GateId>& roots,
                                          const EventRegistry& registry,
                                          const Evidence& evidence = {});
  std::vector<EngineResult> EstimateBatch(const BoolCircuit& circuit,
                                          const std::vector<GateId>& roots,
                                          const EventRegistry& registry,
                                          const Evidence& evidence,
                                          const QueryBudget& budget);

  virtual const char* name() const = 0;

 protected:
  /// The engine body. `budget` is always valid (unlimited when the
  /// caller never asked for governance); implementations honour its
  /// caps/deadline/token cooperatively and return a status result
  /// rather than throwing or aborting on a trip.
  virtual EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                                    const EventRegistry& registry,
                                    const Evidence& evidence,
                                    const QueryBudget& budget) = 0;

  /// The batch body. The base implementation loops EstimateImpl (one
  /// shared BudgetMeter would be better still, but per-root budgets
  /// compose: the first trip short-circuits the remaining roots);
  /// engines with a native batch path (JunctionTreeEngine: one shared
  /// decomposition of the union cone, a single calibrating message
  /// pass for all roots) override it.
  virtual std::vector<EngineResult> EstimateBatchImpl(
      const BoolCircuit& circuit, const std::vector<GateId>& roots,
      const EventRegistry& registry, const Evidence& evidence,
      const QueryBudget& budget);
};

/// Exact, by enumerating the valuations of the events in the cone (at
/// most 30). Evidence is applied by restriction.
class ExhaustiveEngine : public ProbabilityEngine {
 public:
  const char* name() const override { return "exhaustive"; }

 protected:
  EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                            const EventRegistry& registry,
                            const Evidence& evidence,
                            const QueryBudget& budget) override;
};

/// Exact, by message passing over a tree decomposition of the cone (the
/// paper's method; see JunctionTreePlan in junction_tree.h). With
/// `seed_topological`, the decomposition is seeded from the circuit's
/// own construction order — the right choice for DP-produced lineage
/// circuits, whose gate order follows a tree.
///
/// With `cache_plans`, the compiled message-passing plan of each root
/// gate is memoised, so re-estimating the same lineage (repeated
/// queries of a QuerySession, evidence sweeps, question selection)
/// reruns only the numeric pass. The cache relies on circuits being
/// append-only: it is only sound while the engine is used against one
/// circuit object, which the first Estimate() call pins (checked).
///
/// EstimateBatch answers a set of roots adaptively, on a *cost model*
/// rather than a width threshold: the union plan's table-entry count
/// (2 x Σ 2^|bag| of its min-degree decomposition — one calibrating up
/// + pruned down pass) is compared against the summed per-root counts
/// (one upward sweep each), and the shared pass runs only when it wins.
/// Roots that share structure — sub-lineages of one query, combinations
/// over common bases, a target-indexed reachability battery — win; when
/// the whole set loses (multi-track unions: cones coupled only through
/// their event variables, whose widths add up), a cone-overlap grouping
/// pass partitions the roots into subsets whose cones share gates and
/// applies the same cost comparison per group, so a battery of several
/// internally-shared clusters still amortises; roots left alone execute
/// their cached per-root plans at exactly the sequential cost. Both
/// cost numbers, the decision, and the executed group count land in
/// every result's EngineStats. The decision (with its built plans) is
/// memoised per *canonical* root set — sorted and deduped, so permuted
/// or duplicated batteries hit the same entry, with results mapped back
/// to caller order — and evicted FIFO past kMaxBatchPlans. With
/// `batch_threads > 1` it always executes per-root cached plans across
/// that many threads instead.
///
/// Thread safety: `Estimate` and `EstimateBatch` may be called from any
/// number of threads concurrently (the serving layer's contract). The
/// per-root memo is a ConcurrentPlanCache — lock-free snapshot lookup,
/// build-once publication — the circuit bind is an atomic CAS, and the
/// batch-decision memo publishes immutable snapshots under a writer
/// mutex. Plan execution itself is `const` over per-call (thread-local)
/// scratch arenas. Only the *circuit* must be quiescent: growing it
/// (lineage construction) while estimating against it is a data race —
/// see the QuerySession/ServingSession phase contract.
class JunctionTreeEngine : public ProbabilityEngine {
 public:
  explicit JunctionTreeEngine(bool seed_topological = false,
                              bool cache_plans = false,
                              unsigned batch_threads = 1);
  ~JunctionTreeEngine() override;
  JunctionTreeEngine(const JunctionTreeEngine&) = delete;
  JunctionTreeEngine& operator=(const JunctionTreeEngine&) = delete;

  const char* name() const override { return "junction_tree"; }

  /// Builds (or finds) the cached plan for `root` without executing it
  /// — cache warm-up, so serving traffic never pays a cold Build.
  /// Requires `cache_plans`.
  void Prewarm(const BoolCircuit& circuit, GateId root);

  /// The per-root plan memo (cache_plans engines; nullptr otherwise).
  /// Exposes builds()/size() for the build-once tests and stats.
  const ConcurrentPlanCache* plan_cache() const { return cache_.get(); }

  /// Batch decisions actually built (= misses of the batch memo): the
  /// test hook pinning that permuted batteries hit the canonical entry
  /// and that hot batteries survive FIFO eviction.
  uint64_t batch_builds() const {
    return batch_builds_.load(std::memory_order_relaxed);
  }
  /// Entries currently published in the batch memo.
  size_t batch_cache_size() const;

 protected:
  EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                            const EventRegistry& registry,
                            const Evidence& evidence,
                            const QueryBudget& budget) override;
  std::vector<EngineResult> EstimateBatchImpl(
      const BoolCircuit& circuit, const std::vector<GateId>& roots,
      const EventRegistry& registry, const Evidence& evidence,
      const QueryBudget& budget) override;

 private:
  /// Pins the engine to its first circuit (plan caching is only sound
  /// against one append-only circuit object). Thread-safe: an atomic
  /// CAS against nullptr.
  void BindCircuit(const BoolCircuit& circuit);
  /// The (possibly cached) single-root plan for `root`.
  const JunctionTreePlan* PlanFor(const BoolCircuit& circuit, GateId root);

  bool seed_topological_;
  bool cache_plans_;
  unsigned batch_threads_;
  std::atomic<const BoolCircuit*> bound_circuit_{nullptr};
  /// The concurrent per-root memo (constructed iff cache_plans; held by
  /// pointer because junction_tree.h includes this header).
  std::unique_ptr<ConcurrentPlanCache> cache_;
  /// One executed unit of a batch decision: a subset of the canonical
  /// root set, served by one shared BuildBatch plan (or per-root cached
  /// plans when `plan` is null).
  struct BatchGroup {
    std::vector<uint32_t> members;  ///< Indices into the canonical roots.
    std::shared_ptr<const JunctionTreePlan> plan;  ///< null = per-root.
  };
  /// A memoised batch decision: the cost-model numbers, the chosen path,
  /// and the group plans to execute.
  struct CachedBatchPlan {
    std::vector<BatchGroup> groups;
    std::vector<GateKind> root_kinds;  ///< Revalidated on every hit, like
                                       ///< the per-root cache's kinds
                                       ///< (canonical order).
    double shared_cost = 0;    ///< EngineStats::batch_shared_cost.
    double per_root_cost = 0;  ///< EngineStats::batch_per_root_cost.
    BatchPath path = BatchPath::kPerRoot;
    uint64_t seq = 0;  ///< Insertion order, for FIFO eviction.
  };
  /// Batch decisions memoised per *canonical* root set (sorted +
  /// deduped — permuted or duplicated batteries hit one entry; ordered
  /// map: root vectors are short and sessions reissue identical
  /// batches), as an immutable snapshot published through an atomic
  /// shared_ptr: lock-free lookup, copy-on-write insertion under
  /// batch_mu_. Unlike the per-root cache there is no build-once latch
  /// — two threads missing the same new root set may both build it and
  /// one copy wins, which is benign (identical plans) and keeps the hot
  /// read path untouched. Past kMaxBatchPlans the entry with the
  /// smallest insertion seq is evicted (FIFO), so varying batches
  /// cannot grow the memo without bound while hot batteries survive.
  using BatchMap = std::map<std::vector<GateId>, CachedBatchPlan>;
  static constexpr size_t kMaxBatchPlans = 64;

  /// Runs the cost model (and, when the whole set loses, the
  /// cone-overlap grouping pass) over the canonical root set and builds
  /// the group plans. Pure function of (circuit, roots); no memo access.
  CachedBatchPlan DecideBatch(const BoolCircuit& circuit,
                              const std::vector<GateId>& roots) const;

  std::atomic<std::shared_ptr<const BatchMap>> batch_published_{nullptr};
  std::mutex batch_mu_;
  uint64_t batch_seq_ = 0;  ///< Guarded by batch_mu_.
  std::atomic<uint64_t> batch_builds_{0};
};

/// Exact, by OBDD compilation + weighted model counting (the
/// knowledge-compilation baseline). Evidence is applied by restriction.
class BddEngine : public ProbabilityEngine {
 public:
  const char* name() const override { return "bdd"; }

 protected:
  EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                            const EventRegistry& registry,
                            const Evidence& evidence,
                            const QueryBudget& budget) override;
};

/// Monte-Carlo estimate over `num_samples` valuations. Evidence is
/// applied by restriction (so the estimate is of the conditional).
class SamplingEngine : public ProbabilityEngine {
 public:
  explicit SamplingEngine(uint32_t num_samples = 10000, uint64_t seed = 1)
      : num_samples_(num_samples), rng_(seed) {}
  const char* name() const override { return "sampling"; }

 protected:
  /// Budget-aware: a sample cap lowers the sample count up front; a
  /// deadline or cancellation mid-loop returns the estimate over the
  /// samples actually drawn, with the error bound honest for that count
  /// — a degraded kOk answer, never an abort.
  EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                            const EventRegistry& registry,
                            const Evidence& evidence,
                            const QueryBudget& budget) override;

 private:
  uint32_t num_samples_;
  Rng rng_;
};

/// The core/tentacle estimator: samples a heuristically-selected core
/// event set and runs exact message passing on each restricted circuit
/// (Rao-Blackwellised; §2.2 end). Falls back to a single exact run when
/// no core is needed.
class HybridEngine : public ProbabilityEngine {
 public:
  HybridEngine(int target_width = 8, size_t max_core = 16,
               uint32_t num_samples = 1000, uint64_t seed = 1)
      : target_width_(target_width),
        max_core_(max_core),
        num_samples_(num_samples),
        rng_(seed) {}
  /// As Estimate with the core event set already selected — the
  /// AutoEngine handoff: the planner runs SelectCoreEvents to decide
  /// whether hybrid inference is worthwhile, and hands the core over so
  /// the engine does not repeat the selection's restrict/min-fill loop.
  EngineResult EstimateWithCore(const BoolCircuit& circuit, GateId root,
                                const EventRegistry& registry,
                                const std::vector<EventId>& core);
  /// Governed variant: checks the budget per per-sample exact run; a
  /// mid-loop trip returns the estimate over the completed samples with
  /// an honest error bound (degraded kOk), kResourceExhausted/... only
  /// when not a single sample finished.
  EngineResult EstimateWithCore(const BoolCircuit& circuit, GateId root,
                                const EventRegistry& registry,
                                const std::vector<EventId>& core,
                                const QueryBudget& budget);
  const char* name() const override { return "hybrid"; }

 protected:
  EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                            const EventRegistry& registry,
                            const Evidence& evidence,
                            const QueryBudget& budget) override;

 private:
  int target_width_;
  size_t max_core_;
  uint32_t num_samples_;
  Rng rng_;
};

/// Exact, via the conditioning machinery of §4: evidence literals become
/// an observation gate and the result is P(root ∧ obs) / P(obs), each
/// computed by message passing. Numerically identical to pinning; kept
/// as an adapter because it exercises the revision pipeline.
class ConditioningEngine : public ProbabilityEngine {
 public:
  const char* name() const override { return "conditioning"; }

 protected:
  /// Conditioning on a zero-probability observation is a malformed
  /// request, reported as kInvalidArgument (the conditional does not
  /// exist) rather than an abort.
  EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                            const EventRegistry& registry,
                            const Evidence& evidence,
                            const QueryBudget& budget) override;
};

/// The planner: inspects the cone (event count, then a cheap min-degree
/// width estimate of the binarised primal graph) and escalates
/// exhaustive → BDD → junction tree → hybrid → sampling, replacing the
/// hand-rolled dispatch that benches and examples used to copy-paste.
/// The returned EngineResult names the engine actually chosen.
///
/// The width estimate *is* a JunctionTreeAnalysis (cone, binarisation,
/// primal graph, min-degree order), and the planner hands it to the
/// junction-tree plan it builds instead of the engine recomputing the
/// decomposition — `auto` costs the same as a direct engine pick, and
/// the handed-off decomposition is bit-identical to the one
/// JunctionTreeEngine would derive itself (same code path). The hybrid
/// escalation likewise hands its selected core event set over.
class AutoEngine : public ProbabilityEngine {
 public:
  struct Limits {
    uint32_t exhaustive_max_events = 10;  ///< Cone events for 2^n sweep.
    uint32_t bdd_max_events = 18;         ///< Cone events for compilation.
    int jt_max_width = 16;                ///< Width estimate for exact MP.
    int hybrid_target_width = 8;          ///< Core selection target.
    size_t hybrid_max_core = 12;
    uint32_t hybrid_num_samples = 2000;
    uint32_t sampling_num_samples = 20000;
    uint64_t seed = 1;
    // Off by default: the construction-order seed matches min-degree's
    // width on lineage workloads but not its bag-size profile, and a
    // seed accepted at the width cap skips the min-degree comparison
    // entirely (see ROADMAP).
    bool seed_topological = false;
  };

  AutoEngine() : AutoEngine(Limits{}) {}
  explicit AutoEngine(const Limits& limits);
  const char* name() const override { return "auto"; }

 protected:
  /// Under a budget the ladder *degrades* instead of failing: a rung
  /// that trips kResourceExhausted (or is priced over the table-cell
  /// cap up front) falls through to the next cheaper rung — junction
  /// tree → hybrid conditioning → budget-bounded sampling — and the
  /// result reports the engine that actually answered, an honest
  /// error_bound, and stats.degradations. Only kDeadlineExceeded /
  /// kCancelled surface directly (no cheaper rung can beat a clock that
  /// has already run out, and cancellation is the caller's own ask).
  EngineResult EstimateImpl(const BoolCircuit& circuit, GateId root,
                            const EventRegistry& registry,
                            const Evidence& evidence,
                            const QueryBudget& budget) override;

 private:
  EngineResult Plan(const BoolCircuit& circuit, GateId root,
                    const EventRegistry& registry, const QueryBudget& budget);

  Limits limits_;
  ExhaustiveEngine exhaustive_;
  BddEngine bdd_;
  HybridEngine hybrid_;
  SamplingEngine sampling_;
};

/// Convenience factory for the common default.
std::unique_ptr<ProbabilityEngine> MakeAutoEngine();

}  // namespace tud

#endif  // TUD_INFERENCE_ENGINE_H_
