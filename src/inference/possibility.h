#ifndef TUD_INFERENCE_POSSIBILITY_H_
#define TUD_INFERENCE_POSSIBILITY_H_

#include "circuits/bool_circuit.h"

namespace tud {

/// Possibility and certainty of lineage gates — the paper's two
/// non-probabilistic query-evaluation tasks ("determining query
/// possibility, certainty, or probability", §1).
///
/// Both are decided *exactly* by compiling the gate's cone to an ROBDD
/// (canonical form: satisfiable iff not the false terminal, valid iff
/// the true terminal). Exponential in the worst case like any
/// #SAT-complete task, but linear in the compiled size; on
/// bounded-treewidth lineages the junction-tree route
/// (JunctionTreeProbability > 0 / == 1) gives the same answers with a
/// polynomial guarantee — tests cross-check the two.

/// True iff some valuation satisfies gate `root`.
bool IsSatisfiable(const BoolCircuit& circuit, GateId root);

/// True iff every valuation satisfies gate `root`.
bool IsValid(const BoolCircuit& circuit, GateId root);

}  // namespace tud

#endif  // TUD_INFERENCE_POSSIBILITY_H_
