#ifndef TUD_INFERENCE_CONDITIONING_H_
#define TUD_INFERENCE_CONDITIONING_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "uncertain/c_instance.h"

namespace tud {

/// Conditioning (paper §4): revising uncertain data to force the outcome
/// of probabilistic events given observations, and choosing which
/// question to ask next to reduce uncertainty.

/// Conditional probability P(query | observation) where both are gates of
/// the same circuit, computed exactly by two message-passing runs
/// (P(q ∧ o) / P(o)). Returns nullopt if P(observation) = 0.
std::optional<double> ConditionalProbability(BoolCircuit& circuit,
                                             GateId query, GateId observation,
                                             const EventRegistry& registry);

/// Materialises conditioning of a c-instance on an event literal: the
/// paper notes that "we can easily condition a c-instance to indicate
/// that an event is true" — each annotation is specialised by
/// substituting the literal, and the event's probability is set to 0/1 in
/// the returned instance's registry. (Forcing an arbitrary *fact
/// annotation* to be true is the hard direction and is intentionally not
/// offered as a materialisation; use ConditionalProbability instead.)
CInstance ConditionOnEventLiteral(const CInstance& instance, EventId event,
                                  bool value);

/// Specialises formula annotations by substituting a literal.
BoolFormula SubstituteEvent(const BoolFormula& formula, EventId event,
                            bool value);

/// Binary entropy (in bits) of a probability.
double BinaryEntropy(double p);

/// Value-of-information question selection: among `candidates` (events we
/// may ask an oracle about, e.g., crowd workers), picks the one whose
/// answer minimises the expected posterior entropy of P(query), i.e.,
/// maximises expected information gain. Returns nullopt if `candidates`
/// is empty. Greedy one-step lookahead, as in crowd data sourcing [9].
struct QuestionChoice {
  EventId event;
  double expected_entropy;   ///< E[H(P(query | answer))].
  double current_entropy;    ///< H(P(query)) before asking.
};
std::optional<QuestionChoice> SelectBestQuestion(
    BoolCircuit& circuit, GateId query, const EventRegistry& registry,
    const std::vector<EventId>& candidates);

}  // namespace tud

#endif  // TUD_INFERENCE_CONDITIONING_H_
