#include "inference/sampling.h"

#include <algorithm>

#include "events/valuation.h"
#include "util/check.h"

namespace tud {

double SampleProbability(const BoolCircuit& circuit, GateId root,
                         const EventRegistry& registry, uint32_t num_samples,
                         Rng& rng) {
  TUD_CHECK_GT(num_samples, 0u);
  uint32_t hits = 0;
  for (uint32_t s = 0; s < num_samples; ++s) {
    Valuation valuation = Valuation::Sample(registry, rng);
    if (circuit.Evaluate(root, valuation)) ++hits;
  }
  return static_cast<double>(hits) / num_samples;
}

EngineStatus SampleProbabilityGoverned(const BoolCircuit& circuit, GateId root,
                                       const EventRegistry& registry,
                                       uint32_t num_samples, Rng& rng,
                                       BudgetMeter& meter, double* value,
                                       uint32_t* samples_done) {
  TUD_CHECK_GT(num_samples, 0u);
  const uint64_t cells_per_sample =
      std::max<uint64_t>(1, circuit.NumGates());
  uint32_t hits = 0;
  uint32_t done = 0;
  EngineStatus st = EngineStatus::kOk;
  for (uint32_t s = 0; s < num_samples; ++s) {
    st = meter.Charge(cells_per_sample);
    if (st != EngineStatus::kOk) break;
    Valuation valuation = Valuation::Sample(registry, rng);
    if (circuit.Evaluate(root, valuation)) ++hits;
    ++done;
  }
  *samples_done = done;
  *value = done > 0 ? static_cast<double>(hits) / done : 0.0;
  return st;
}

}  // namespace tud
