#include "inference/sampling.h"

#include "events/valuation.h"
#include "util/check.h"

namespace tud {

double SampleProbability(const BoolCircuit& circuit, GateId root,
                         const EventRegistry& registry, uint32_t num_samples,
                         Rng& rng) {
  TUD_CHECK_GT(num_samples, 0u);
  uint32_t hits = 0;
  for (uint32_t s = 0; s < num_samples; ++s) {
    Valuation valuation = Valuation::Sample(registry, rng);
    if (circuit.Evaluate(root, valuation)) ++hits;
  }
  return static_cast<double>(hits) / num_samples;
}

}  // namespace tud
