#include "inference/conditioning.h"

#include <cmath>

#include "inference/junction_tree.h"
#include "util/check.h"

namespace tud {

std::optional<double> ConditionalProbability(BoolCircuit& circuit,
                                             GateId query, GateId observation,
                                             const EventRegistry& registry) {
  double p_obs = JunctionTreeProbability(circuit, observation, registry);
  if (p_obs <= 0.0) return std::nullopt;
  GateId both = circuit.AddAnd(query, observation);
  double p_both = JunctionTreeProbability(circuit, both, registry);
  return p_both / p_obs;
}

BoolFormula SubstituteEvent(const BoolFormula& formula, EventId event,
                            bool value) {
  switch (formula.kind()) {
    case BoolFormula::Kind::kConst:
      return formula;
    case BoolFormula::Kind::kVar:
      return formula.var() == event ? BoolFormula::Constant(value) : formula;
    case BoolFormula::Kind::kNot:
      return BoolFormula::Not(
          SubstituteEvent(formula.children()[0], event, value));
    case BoolFormula::Kind::kAnd:
    case BoolFormula::Kind::kOr: {
      std::vector<BoolFormula> parts;
      parts.reserve(formula.children().size());
      for (const BoolFormula& child : formula.children()) {
        parts.push_back(SubstituteEvent(child, event, value));
      }
      return formula.kind() == BoolFormula::Kind::kAnd
                 ? BoolFormula::And(parts)
                 : BoolFormula::Or(parts);
    }
  }
  TUD_CHECK(false) << "unreachable";
  return formula;
}

CInstance ConditionOnEventLiteral(const CInstance& instance, EventId event,
                                  bool value) {
  CInstance out(instance.instance().schema());
  for (EventId e = 0; e < instance.events().size(); ++e) {
    double p = instance.events().probability(e);
    if (e == event) p = value ? 1.0 : 0.0;
    out.events().Register(instance.events().name(e), p);
  }
  for (FactId f = 0; f < instance.NumFacts(); ++f) {
    out.AddFact(instance.instance().fact(f).relation,
                instance.instance().fact(f).args,
                SubstituteEvent(instance.annotation(f), event, value));
  }
  return out;
}

double BinaryEntropy(double p) {
  if (p <= 0.0 || p >= 1.0) return 0.0;
  return -p * std::log2(p) - (1.0 - p) * std::log2(1.0 - p);
}

std::optional<QuestionChoice> SelectBestQuestion(
    BoolCircuit& circuit, GateId query, const EventRegistry& registry,
    const std::vector<EventId>& candidates) {
  if (candidates.empty()) return std::nullopt;
  double current = BinaryEntropy(
      JunctionTreeProbability(circuit, query, registry));
  std::optional<QuestionChoice> best;
  for (EventId e : candidates) {
    double pe = registry.probability(e);
    double p_true = JunctionTreeProbabilityWithEvidence(
        circuit, query, registry, {{e, true}});
    double p_false = JunctionTreeProbabilityWithEvidence(
        circuit, query, registry, {{e, false}});
    double expected =
        pe * BinaryEntropy(p_true) + (1.0 - pe) * BinaryEntropy(p_false);
    if (!best.has_value() || expected < best->expected_entropy) {
      best = QuestionChoice{e, expected, current};
    }
  }
  return best;
}

}  // namespace tud
