#ifndef TUD_INFERENCE_JUNCTION_TREE_H_
#define TUD_INFERENCE_JUNCTION_TREE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <new>
#include <unordered_map>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "inference/engine.h"
#include "treedec/graph.h"
#include "util/budget.h"
#include "util/fault_injection.h"

namespace tud {

/// A reusable Execute arena: one allocation that grows to the largest
/// plan it has served and is then reused, so steady-state Execute calls
/// are allocation-free. One PlanScratch per thread — the serving
/// scheduler keeps one per worker, JunctionTreeEngine one per calling
/// thread. Not thread-safe; plans do not retain it past the call.
class PlanScratch {
 public:
  /// A buffer of at least `size` doubles (contents unspecified). May
  /// throw std::bad_alloc — for real under memory pressure, or injected
  /// by the fault harness (fault::ShouldFailAllocation) in
  /// TUD_FAULT_INJECTION builds.
  double* Acquire(size_t size) {
    if (fault::ShouldFailAllocation()) throw std::bad_alloc();
    if (size > capacity_) {
      buf_.reset(new double[size]);
      capacity_ = size;
    }
    return buf_.get();
  }

  size_t capacity() const { return capacity_; }

 private:
  std::unique_ptr<double[]> buf_;
  size_t capacity_ = 0;
};

/// Persistent per-caller state for JunctionTreePlan::ExecuteDelta: the
/// message arena of the last pass (every bag's upward message plus the
/// resolved variable-factor values), the evidence that pass was computed
/// under, and the running result. One state per (plan, caller) pair —
/// the incremental session keeps one per registered query; it is not
/// shared across threads. The pass counters let callers pin how often
/// the delta path actually ran versus falling back to a full pass.
struct PlanDeltaState {
  bool valid = false;           ///< Arena holds a complete message pass.
  std::vector<double> arena;    ///< Persistent copy of the Execute arena.
  Evidence evidence;            ///< Evidence the arena was resolved under.
  double result = 0.0;          ///< Root marginal of the last pass.

  uint64_t full_passes = 0;     ///< Full repropagations (first run,
                                ///< evidence change, threshold fallback).
  uint64_t delta_passes = 0;    ///< Dirty-path repropagations.
  uint64_t bags_recomputed = 0; ///< Bags recomputed by delta passes.

  /// Scratch reused across delta calls (contents transient).
  std::vector<uint8_t> dirty_bags;
  std::vector<uint8_t> dirty_events;

  void Reset() { *this = PlanDeltaState{}; }
};

/// The query-shape analysis every junction-tree plan starts from:
/// extract the cone of the root(s), binarise it, build the primal graph
/// of the factor scopes, and (on demand) compute the min-degree
/// elimination order and its width. Split out of JunctionTreePlan::Build
/// so the AutoEngine planner, whose escalation decision *is* the
/// min-degree width estimate, can hand the analysis to the engine it
/// selects instead of the engine redoing the cone/graph/order work —
/// `auto` then costs the same as a direct engine pick, and the handed-off
/// decomposition is bit-identical to the one the engine would compute
/// (same code path).
class JunctionTreeAnalysis {
 public:
  /// Analyses the cone of a single root.
  static JunctionTreeAnalysis Analyze(const BoolCircuit& circuit,
                                      GateId root);

  /// Analyses the union of the cones of `roots` (for batched plans: one
  /// shared decomposition answering every root).
  static JunctionTreeAnalysis AnalyzeBatch(const BoolCircuit& circuit,
                                           const std::vector<GateId>& roots);

  /// Width of the min-degree elimination order of the binarised cone's
  /// primal graph. Computed on first call and cached; JunctionTreePlan
  /// reuses the cached order, so probing the width costs nothing extra
  /// when the plan is subsequently built from this analysis.
  int MinDegreeWidth();

  /// Σ 2^|bag| over the decomposition the min-degree order derives: the
  /// table-entry count of one message pass, the batch planner's cost
  /// unit (computed alongside MinDegreeWidth, so probing both costs one
  /// sweep). An estimate: Build may fall back to min-fill (or accept a
  /// topological seed) when min-degree comes out wide, in which case the
  /// executed plan's profile differs — the cost model only needs
  /// relative magnitudes, where the min-degree profile is a faithful
  /// proxy. 0 for trivial analyses.
  double TableCost();

  /// True if every root folded to a constant (no message passing
  /// needed).
  bool trivial() const { return num_vertices() == 0; }

  /// Gates of the binarised cone (the vertices of the primal graph).
  size_t num_vertices() const { return gates_.size(); }

 private:
  friend class JunctionTreePlan;

  JunctionTreeAnalysis() : graph_(0) {}

  BoolCircuit bin_;                  ///< Binarised (union) cone.
  std::vector<GateId> roots_;       ///< Roots in bin_ ids, input order.
  std::vector<GateId> gates_;       ///< Dense vertex -> bin_ gate.
  std::vector<VertexId> vertex_of_;  ///< bin_ gate -> dense vertex.
  Graph graph_;                      ///< Primal graph of the factor scopes.
  bool has_min_degree_ = false;
  std::vector<VertexId> md_order_;
  int md_width_ = 0;
  double md_cost_ = 0;  ///< Σ 2^|bag| of the min-degree decomposition.
};

/// A compiled message-passing plan for one lineage gate — the paper's
/// inference method ("the probability that I satisfies q can be
/// computed from C via standard message passing techniques [37]",
/// §2.2), split compile-once / evaluate-many:
///
/// Build() does everything query-shape-dependent exactly once: extract
/// the cone of `root`, binarise it, tree-decompose its primal graph
/// (min-degree with a min-fill fallback, or seeded from the circuit's
/// construction order), and lower every bag to a flat program: the
/// constant gate factors (And/Or/Not/True) of a bag are pre-fused into
/// one static table, child-message and marginalisation index maps are
/// expanded into precomputed gather tables, and all message storage is
/// laid out in one contiguous arena sized at build time. Execute()
/// reruns only the numeric bottom-up sum-product pass — a single arena
/// allocation, a memcpy of each bag's static table, and multiplies of
/// the variable (event) factors and child messages, dispatched to
/// unrolled kernels for the many tiny bags (k <= 3) via a per-bag
/// opcode.
///
/// BuildBatch()/ExecuteBatch() answer a *set* of lineage roots over one
/// shared decomposition of the union cone: a calibrating upward +
/// (pruned) downward pass computes every root's marginal in two sweeps
/// instead of one full pass per root.
///
/// Cost O(2^{w+1}) per bag: PTIME whenever the lineage has bounded
/// treewidth, which Theorems 1-2 guarantee for bounded-treewidth
/// instances. Bags are capped at 26 vertices — beyond that the plan is
/// built *failed* (build_status() = kResourceExhausted): the governed
/// Execute entry points report it as a status, the legacy ones abort,
/// and callers (AutoEngine) fall back to conditioning or sampling.
class JunctionTreePlan {
 public:
  /// Compiles the cone of `root`. With `seed_topological`, the
  /// elimination order is seeded from the circuit's own construction
  /// order (gates are append-only, so ascending id is a topological,
  /// inputs-first order that follows the tree structure DP-produced
  /// lineage circuits were built along — ROADMAP item (a)); the generic
  /// heuristics remain the fallback whenever the seed comes out wide.
  static JunctionTreePlan Build(const BoolCircuit& circuit, GateId root,
                                bool seed_topological = false);

  /// As above from a precomputed analysis (the AutoEngine handoff: the
  /// planner's width estimate already did the cone/graph/order work).
  static JunctionTreePlan Build(JunctionTreeAnalysis analysis,
                                bool seed_topological = false);

  /// Compiles one shared plan answering every root in `roots` (per-root
  /// marginals over the union cone's decomposition).
  static JunctionTreePlan BuildBatch(const BoolCircuit& circuit,
                                     const std::vector<GateId>& roots,
                                     bool seed_topological = false);
  static JunctionTreePlan BuildBatch(JunctionTreeAnalysis analysis,
                                     bool seed_topological = false);

  /// Governed Build: instead of aborting on a decomposition too wide
  /// for exact message passing, the returned plan carries a non-kOk
  /// build_status() (kResourceExhausted) and refuses to Execute. With a
  /// table-cell cap in `budget`, a decomposition whose Σ 2^|bag| would
  /// exceed the cap is likewise refused *before* any table is allocated
  /// — the OOM-prevention contract: one adversarial query never gets to
  /// reserve its arena. Budget-induced refusals are distinguishable
  /// from intrinsic ones via build_limited_by_budget().
  static JunctionTreePlan Build(JunctionTreeAnalysis analysis,
                                bool seed_topological,
                                const QueryBudget& budget);
  static JunctionTreePlan BuildBatch(JunctionTreeAnalysis analysis,
                                     bool seed_topological,
                                     const QueryBudget& budget);

  /// kOk, or why the plan is unusable: kResourceExhausted (too wide for
  /// exact message passing, or over the build budget's cell cap),
  /// kDeadlineExceeded / kCancelled (budget tripped during Build). The
  /// ungoverned Execute entry points abort on a failed plan; the
  /// governed ones return this status.
  EngineStatus build_status() const { return build_status_; }
  /// True when build_status() != kOk was caused by the caller's budget
  /// rather than the plan's intrinsic width — the cache must not
  /// publish such plans (another caller's budget may admit the root).
  bool build_limited_by_budget() const { return build_limited_by_budget_; }
  /// Σ 2^|bag| of the built decomposition: the table-entry count of one
  /// message pass, what a budget's max_table_cells is charged against.
  double total_cells() const { return total_cells_; }

  /// P(root = true | evidence): events listed in `evidence` are pinned
  /// to the given truth value and contribute no probability weight.
  /// Single-root plans only. Thread-safe (all mutable state lives in a
  /// per-call arena), so independent cached plans may Execute in
  /// parallel.
  double Execute(const EventRegistry& registry,
                 const Evidence& evidence = {}) const;

  /// As above with a caller-provided scratch arena (grown on demand,
  /// reused across calls): the steady-state serving hot path, one
  /// Execute with zero allocations. `scratch` must not be shared by
  /// concurrent calls; nullptr falls back to a per-call allocation.
  double Execute(const EventRegistry& registry, const Evidence& evidence,
                 PlanScratch* scratch) const;

  /// P(root_i = true | evidence) for every root of a BuildBatch plan,
  /// in one calibrating up+down pass (the downward pass is pruned to
  /// the subtrees that contain query bags). If `stats` is non-null its
  /// batch fields (batch_size, bags_visited, max_table) are filled with
  /// the actual execution counts.
  std::vector<double> ExecuteBatch(const EventRegistry& registry,
                                   const Evidence& evidence = {},
                                   EngineStats* stats = nullptr,
                                   PlanScratch* scratch = nullptr) const;

  /// Incremental re-evaluation after probability updates — the dirty-bag
  /// repropagation path of the maintenance subsystem (incremental/).
  ///
  /// `dirty_events` lists events whose registry probability may have
  /// changed since `state` was last filled (duplicates and events
  /// outside the plan are fine). Only the bags owning a variable factor
  /// on a dirty event, plus the bags on their paths to the root (the
  /// per-plan bag -> parent index built at Build time), are recomputed;
  /// every other bag's upward message is reused from `state`. The
  /// recomputed bags run the exact same kernels as Execute, so the
  /// result is bit-identical to a full Execute under the current
  /// registry. Falls back to one full pass when `state` is cold, the
  /// evidence differs from the state's, or the dirty frontier exceeds
  /// `full_fraction` of the bags (repropagating most of the tree
  /// piecemeal would cost more than one clean sweep).
  ///
  /// Single-root plans only. `state` is owned by the caller and must not
  /// be shared across threads; the plan itself stays const and may be
  /// shared. If `stats` is non-null, bags_visited receives the number of
  /// bags actually recomputed.
  double ExecuteDelta(const EventRegistry& registry, const Evidence& evidence,
                      const std::vector<EventId>& dirty_events,
                      PlanDeltaState& state, EngineStats* stats = nullptr,
                      double full_fraction = 0.5) const;

  /// Governed Execute: checks `budget` at bag granularity (one
  /// BudgetMeter::Charge of 2^k cells per bag, so deadline slack is
  /// bounded by one bag's work) and returns a structured status instead
  /// of aborting. A table-cell cap is enforced *before* the arena is
  /// touched — total_cells() over the cap returns kResourceExhausted
  /// with zero allocation. On kOk, `*value` holds the root marginal;
  /// on any other status `*value` is untouched.
  EngineStatus ExecuteGoverned(const EventRegistry& registry,
                               const Evidence& evidence, PlanScratch* scratch,
                               const QueryBudget& budget,
                               double* value) const;

  /// Governed ExecuteBatch. The pre-admission cap check uses
  /// 2 x total_cells() (calibration is an up *and* a pruned down pass).
  /// On kOk, `*values` holds every root's marginal.
  EngineStatus ExecuteBatchGoverned(const EventRegistry& registry,
                                    const Evidence& evidence,
                                    PlanScratch* scratch,
                                    const QueryBudget& budget,
                                    std::vector<double>* values,
                                    EngineStats* stats = nullptr) const;

  /// Governed ExecuteDelta. A budget trip mid-repropagation leaves
  /// `state` *invalid* (the arena holds a mix of old and new messages),
  /// so the next call falls back to a full pass — correctness is never
  /// traded for the partial work. On kOk, `*value` holds the root
  /// marginal.
  EngineStatus ExecuteDeltaGoverned(const EventRegistry& registry,
                                    const Evidence& evidence,
                                    const std::vector<EventId>& dirty_events,
                                    PlanDeltaState& state,
                                    const QueryBudget& budget, double* value,
                                    EngineStats* stats = nullptr,
                                    double full_fraction = 0.5) const;

  int width() const { return width_; }
  size_t num_bags() const { return bags_.size(); }
  /// Gates of the binarised (union) cone the plan covers.
  size_t num_gates() const { return num_gates_; }
  /// Roots answered by ExecuteBatch (1 for single-root plans).
  size_t batch_size() const { return batch_ ? query_roots_.size() : 1; }

  void FillStats(EngineStats* stats) const;

  /// Test hooks: downgrade every small-bag kernel to the generic strided
  /// loop, or additionally drop the precomputed gather tables so the
  /// bit-recombination fallback runs. Cross-checked against the default
  /// dispatch in junction_batch_test.cc.
  void ForceGenericKernelsForTest();
  void ForceBitLoopsForTest();
  /// Test hook: caps below which static fusion / gather precomputation
  /// apply (defaults 16/16; pass negative values to leave unchanged).
  /// Affects subsequent Build calls; reset to defaults after use.
  static void SetKernelThresholdsForTest(int fuse_max_k, int gather_max_k);

 private:
  static constexpr uint32_t kNone = UINT32_MAX;
  static constexpr uint8_t kOpGeneric = 4;

  struct VarFactor {
    EventId event;  ///< Resolved against the registry (or the pinned
                    ///< evidence) at Execute().
    uint32_t bit;   ///< Scope bit position in the owning bag's table.
  };
  /// Constant factor kept unfused (wide bags only, where a 2^k static
  /// table would not pay for itself).
  struct StaticFactor {
    const double* table;
    uint32_t bits_begin;  ///< Scope bit positions in bit_pool_.
    uint32_t bits_count;
  };
  struct ChildEdge {
    uint32_t child;       ///< Bag id of the child.
    uint32_t msg_off;     ///< Child's upward-message offset in the arena.
    uint32_t gather;      ///< Offset into gather_ (2^k entries mapping
                          ///< this bag's index -> message index), or
                          ///< kNone to recombine separator bits.
    uint32_t bits_begin;  ///< Separator bit positions in bit_pool_.
    uint32_t bits_count;
  };
  struct Bag {
    uint8_t k = 0;        ///< Bag size; the local table has 2^k entries.
    uint8_t opcode = 0;   ///< Kernel dispatch: k for k <= 3, else generic.
    bool is_root = false;
    bool subtree_has_query = false;  ///< Batch: downward-pass pruning.
    uint32_t static_off = kNone;   ///< Pre-fused table in static_.
    uint32_t sfac_begin = 0, sfac_end = 0;  ///< Unfused (static_off==kNone).
    uint32_t var_begin = 0, var_end = 0;    ///< Range in var_factors_.
    uint32_t child_begin = 0, child_end = 0;  ///< Range in children_.
    uint32_t up_off = kNone;       ///< Upward message (2^out_count) slot.
    uint32_t down_off = kNone;     ///< Batch: downward message slot.
    uint32_t table_off = kNone;    ///< Batch: kept upward table (query bags).
    uint32_t out_gather = kNone;   ///< Marginalisation gather (2^k entries).
    uint32_t out_bits_begin = 0;   ///< Marginalisation bits in bit_pool_.
    uint32_t out_count = 0;        ///< Parent-separator size.
  };
  struct QueryRoot {
    uint32_t bag = kNone;     ///< Bag whose belief holds the marginal.
    uint32_t bit = 0;         ///< Bit of the root vertex in that bag.
    int8_t trivial_value = -1;  ///< 0/1 when the root folded to a const.
  };

  JunctionTreePlan() = default;

  static JunctionTreePlan BuildImpl(JunctionTreeAnalysis analysis,
                                    bool seed_topological, bool batch,
                                    const QueryBudget* budget);

  /// Computes bag `b`'s table (static x variable factors x child
  /// messages) into `table`; `vals` holds the resolved per-var-factor
  /// value pairs, `arena` the message storage.
  template <int K>
  void ComputeBagTableK(const Bag& bag, const double* vals,
                        const double* arena, double* table) const;
  /// One fused upward step for a small bag: table build plus
  /// marginalisation onto the parent separator, all trip counts known
  /// at compile time.
  template <int K>
  void UpStepK(const Bag& bag, const double* vals, double* arena) const;
  void ComputeBagTableGeneric(const Bag& bag, const double* vals,
                              const double* arena, double* table) const;
  void ComputeBagTable(const Bag& bag, const double* vals,
                       const double* arena, double* table) const;
  /// As above without the child messages (downward-pass base).
  void ComputeBagBase(const Bag& bag, const double* vals,
                      double* table) const;
  /// Marginalises `table` onto the parent separator.
  void MarginalizeOut(const Bag& bag, const double* table, double* out) const;
  /// Multiplies the parent's downward message into `table` (batch pass).
  void ApplyDown(const Bag& bag, const double* down, double* table) const;
  /// Multiplies one child's upward message into `table`.
  void MultiplyChild(const Bag& bag, const ChildEdge& edge,
                     const double* arena, double* table) const;
  /// Marginalises `table` onto one child's separator (downward message).
  void MarginalizeEdge(const Bag& bag, const ChildEdge& edge,
                       const double* table, double* out) const;
  /// Resolves the per-var-factor value pairs (registry probabilities,
  /// overridden by pinned evidence via a flat dense-EventId vector).
  void ResolveVarValues(const EventRegistry& registry,
                        const Evidence& evidence, double* vals) const;
  /// The single-root upward pass over a caller-provided arena of
  /// arena_size_ doubles (the shared body of Execute and the full-pass
  /// leg of ExecuteDelta — the arena is left holding the complete
  /// message pass, which is what ExecuteDelta persists).
  double ExecuteOnArena(const EventRegistry& registry,
                        const Evidence& evidence, double* arena) const;
  /// The governed single-root upward pass: the same kernels, plus one
  /// budget charge (and fault-injection delay point) per bag. Kept
  /// separate from ExecuteOnArena so the ungoverned hot loop carries no
  /// per-bag branches at all.
  EngineStatus ExecuteGovernedOnArena(const EventRegistry& registry,
                                      const Evidence& evidence, double* arena,
                                      BudgetMeter& meter,
                                      double* value) const;
  /// Shared body of ExecuteBatch / ExecuteBatchGoverned (`meter`
  /// nullptr = ungoverned).
  EngineStatus ExecuteBatchImpl(const EventRegistry& registry,
                                const Evidence& evidence, EngineStats* stats,
                                PlanScratch* scratch, BudgetMeter* meter,
                                std::vector<double>* values) const;
  /// Shared body of ExecuteDelta / ExecuteDeltaGoverned.
  EngineStatus ExecuteDeltaImpl(const EventRegistry& registry,
                                const Evidence& evidence,
                                const std::vector<EventId>& dirty_events,
                                PlanDeltaState& state, EngineStats* stats,
                                double full_fraction, BudgetMeter* meter,
                                double* value) const;
  /// One upward step of bag `b` on `arena` (the per-bag body shared by
  /// the full pass and the dirty-bag recomputation; `vals` points at the
  /// resolved var-factor pairs inside the same arena). Returns the root
  /// marginal when `b` is the root, 0 otherwise.
  double UpStep(const Bag& bag, const double* vals, double* arena) const;

  bool trivial_ = false;      ///< Cone folded to a constant.
  double trivial_value_ = 0;
  bool batch_ = false;
  EngineStatus build_status_ = EngineStatus::kOk;
  bool build_limited_by_budget_ = false;
  double total_cells_ = 0;    ///< Σ 2^|bag| of the decomposition.
  int width_ = 0;
  size_t num_gates_ = 0;
  uint32_t max_k_ = 0;
  size_t num_events_ = 0;     ///< Bound on EventIds read by var factors.
  size_t arena_size_ = 0;     ///< Doubles: var values + messages (+ batch
                              ///< down messages and kept tables) + scratch.
  size_t vals_off_ = 0;       ///< Var-factor value pairs (2 per factor).
  size_t scratch_off_ = 0;    ///< Scratch table region (2 x 2^max_k).
  std::vector<Bag> bags_;     ///< Descending id order is bottom-up.
  std::vector<uint32_t> parent_of_;       ///< Bag -> parent bag (kNone at
                                          ///< root): the rootward path
                                          ///< index ExecuteDelta walks.
  std::vector<uint32_t> var_factor_bag_;  ///< Var factor -> owning bag.
  std::vector<VarFactor> var_factors_;
  std::vector<StaticFactor> static_factors_;
  std::vector<ChildEdge> children_;
  std::vector<double> static_;    ///< Pre-fused constant-factor tables.
  std::vector<uint32_t> gather_;  ///< Precomputed index maps.
  std::vector<uint8_t> bit_pool_;
  std::vector<QueryRoot> query_roots_;  ///< Batch plans only.
};

/// A concurrent, read-mostly cache of compiled single-root plans — the
/// serving layer's hot-path structure, shared by any number of threads
/// calling GetOrBuild on one append-only circuit.
///
/// Lookup is lock-free: each shard publishes an *immutable* hash map
/// through one atomic pointer, so a hit costs an acquire load plus a
/// hash probe — no reference counting, no reader registration, no
/// locks. Writers copy the shard's map, insert, and publish the copy
/// under the shard's write mutex; superseded snapshots are retired to
/// the shard (not freed) because lock-free readers may still be walking
/// them, and reclaimed when the cache is destroyed. The retained memory
/// is quadratic in the number of *distinct* plans per shard, which the
/// session bounds (one plan per prepared lineage gate) — the classic
/// read-copy-update tradeoff, chosen over epochs for zero read-side
/// cost.
///
/// Cold misses are build-once: the first thread to miss a root becomes
/// its builder (plans can take milliseconds — the expensive
/// decomposition work), every other thread requesting the same root
/// parks on a per-root latch and receives the published plan, so a
/// thundering herd of identical cold queries costs exactly one Build.
///
/// Like JunctionTreeEngine's per-engine memo, a cache instance is only
/// sound against one append-only circuit object; callers pin it
/// (checked via the root-kind revalidation on every hit).
class ConcurrentPlanCache {
 public:
  explicit ConcurrentPlanCache(bool seed_topological = false)
      : seed_topological_(seed_topological) {}
  ConcurrentPlanCache(const ConcurrentPlanCache&) = delete;
  ConcurrentPlanCache& operator=(const ConcurrentPlanCache&) = delete;
  ~ConcurrentPlanCache();

  /// The cached plan for `root`, building (exactly once across all
  /// threads) on a miss. The returned plan lives as long as the cache.
  ///
  /// With a `budget`, Build runs governed: a root whose decomposition
  /// is intrinsically too wide yields a published *failed* plan
  /// (build_status() != kOk — a negative cache entry, so the expensive
  /// width discovery also happens once), while a plan refused only by
  /// this caller's budget is returned without being published (another
  /// caller's larger budget may admit the same root; the returned
  /// pointer is then owned by the retire list and stays valid for the
  /// cache's lifetime).
  ///
  /// If the builder throws (e.g. an injected or real bad_alloc), every
  /// waiter on the in-flight latch receives the failure as a
  /// std::runtime_error instead of hanging, and the next GetOrBuild for
  /// the root retries the build.
  const JunctionTreePlan* GetOrBuild(const BoolCircuit& circuit, GateId root,
                                     const QueryBudget* budget = nullptr);

  /// Lock-free probe: the cached plan, or nullptr without building.
  const JunctionTreePlan* Lookup(GateId root) const;

  /// Drops the cached plan for `root`, if any, by republishing the
  /// shard's map without it — the structural-update path: a patched
  /// circuit can reuse a root gate id for different logic, so the stale
  /// plan must not survive. The superseded snapshot is retired, not
  /// freed, and a previously returned plan pointer stays valid for
  /// in-flight readers (retire-not-free, as everywhere in this cache);
  /// only *new* GetOrBuild calls see the invalidation. Does not cancel
  /// an in-flight Build of the same root — the caller (the epoch
  /// writer) must not race Invalidate against GetOrBuild for the root
  /// being restructured.
  void Invalidate(GateId root);

  /// Invalidates every cached plan (all shards republish empty).
  void Clear();

  /// Plans actually built (the thundering-herd pin: equals the number
  /// of distinct roots ever requested).
  size_t builds() const { return builds_.load(std::memory_order_relaxed); }

  /// Published entries across all shards.
  size_t size() const;

 private:
  struct Entry {
    std::shared_ptr<const JunctionTreePlan> plan;
    GateKind root_kind;  ///< Revalidated on every hit, as in
                         ///< JunctionTreeEngine: catches a stale bind
                         ///< through a recycled circuit address.
  };
  using Map = std::unordered_map<GateId, Entry>;
  /// Latch a builder publishes through while other threads wait.
  struct Inflight {
    std::mutex mu;
    std::condition_variable cv;
    bool done = false;
    bool failed = false;  ///< Builder threw; waiters raise, not hang.
    const JunctionTreePlan* plan = nullptr;
  };
  struct Shard {
    std::atomic<const Map*> published{nullptr};  ///< Immutable snapshot.
    std::mutex write_mu;  ///< Guards publication and inflight_.
    std::unordered_map<GateId, std::shared_ptr<Inflight>> inflight;
    std::vector<std::unique_ptr<const Map>> retired;  ///< Old snapshots;
                                                      ///< readers may
                                                      ///< still hold them.
    /// Budget-refused plans handed out but never published (the caller
    /// holds a raw pointer with cache lifetime).
    std::vector<std::shared_ptr<const JunctionTreePlan>> unpublished;
  };
  static constexpr size_t kNumShards = 8;

  Shard& ShardFor(GateId root) {
    // Multiplicative hash: consecutive gate ids spread across shards.
    return shards_[(root * 2654435761u) >> 29 & (kNumShards - 1)];
  }
  const Shard& ShardFor(GateId root) const {
    return const_cast<ConcurrentPlanCache*>(this)->ShardFor(root);
  }

  bool seed_topological_;
  std::atomic<size_t> builds_{0};
  Shard shards_[kNumShards];
};

/// One-shot convenience: Build + Execute. If `stats` is non-null it
/// receives run diagnostics (the width, bag and gate fields of the
/// shared EngineStats shape).
double JunctionTreeProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               EngineStats* stats = nullptr);

/// As above with evidence pinning: the result is the conditional
/// probability P(root = true | pinned values). Used by conditioning and
/// by the hybrid core/tentacle engine.
double JunctionTreeProbabilityWithEvidence(
    const BoolCircuit& circuit, GateId root, const EventRegistry& registry,
    const Evidence& evidence, EngineStats* stats = nullptr);

/// One-shot convenience for the seeded-order path (see
/// JunctionTreePlan::Build).
double JunctionTreeProbabilitySeeded(const BoolCircuit& circuit, GateId root,
                                     const EventRegistry& registry,
                                     const Evidence& evidence = {},
                                     EngineStats* stats = nullptr);

}  // namespace tud

#endif  // TUD_INFERENCE_JUNCTION_TREE_H_
