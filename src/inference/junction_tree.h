#ifndef TUD_INFERENCE_JUNCTION_TREE_H_
#define TUD_INFERENCE_JUNCTION_TREE_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"

namespace tud {

/// Diagnostics of one junction-tree run.
struct JunctionTreeStats {
  int width = -1;          ///< Width of the decomposition actually used.
  size_t num_bags = 0;     ///< Bags in the decomposition.
  size_t num_gates = 0;    ///< Gates of the (binarised) cone processed.
};

/// Exact probability that gate `root` of `circuit` is true, by message
/// passing over a tree decomposition of the circuit — the paper's
/// inference method ("the probability that I satisfies q can be computed
/// from C via standard message passing techniques [37]", §2.2).
///
/// Pipeline: extract the cone of `root`, binarise it, tree-decompose its
/// primal graph with min-fill, attach one local factor per gate (variable
/// gates weighted by their event probability, other gates as 0/1
/// consistency indicators, plus the root-is-true evidence indicator), and
/// run one bottom-up sum-product pass. Cost O(2^{w+1}) per bag: PTIME
/// whenever the lineage has bounded treewidth, which Theorems 1-2
/// guarantee for bounded-treewidth instances. Bags are capped at 26
/// vertices (checked) — beyond that the decomposition is too wide for
/// exact message passing and callers should fall back to sampling.
///
/// If `stats` is non-null it receives run diagnostics.
double JunctionTreeProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               JunctionTreeStats* stats = nullptr);

/// As above, but events listed in `evidence` are *pinned* to the given
/// truth value: the result is the conditional probability
/// P(root = true | pinned values), with pinned events contributing no
/// probability weight. Used by conditioning and by the hybrid
/// core/tentacle engine.
double JunctionTreeProbabilityWithEvidence(
    const BoolCircuit& circuit, GateId root, const EventRegistry& registry,
    const std::vector<std::pair<EventId, bool>>& evidence,
    JunctionTreeStats* stats = nullptr);

}  // namespace tud

#endif  // TUD_INFERENCE_JUNCTION_TREE_H_
