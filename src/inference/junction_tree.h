#ifndef TUD_INFERENCE_JUNCTION_TREE_H_
#define TUD_INFERENCE_JUNCTION_TREE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "inference/engine.h"

namespace tud {

/// A compiled message-passing plan for one lineage gate — the paper's
/// inference method ("the probability that I satisfies q can be
/// computed from C via standard message passing techniques [37]",
/// §2.2), split compile-once / evaluate-many:
///
/// Build() does everything query-shape-dependent exactly once: extract
/// the cone of `root`, binarise it, tree-decompose its primal graph
/// (min-degree with a min-fill fallback, or seeded from the circuit's
/// construction order), assign one local factor per gate to its bag and
/// precompute every table bit position. Execute() reruns only the
/// numeric bottom-up sum-product pass, so many evaluations — updated
/// probabilities, different pinned evidence, repeated queries in a
/// QuerySession — share one elimination order instead of re-deriving it
/// per query.
///
/// Cost O(2^{w+1}) per bag: PTIME whenever the lineage has bounded
/// treewidth, which Theorems 1-2 guarantee for bounded-treewidth
/// instances. Bags are capped at 26 vertices (checked) — beyond that
/// the decomposition is too wide for exact message passing and callers
/// should fall back to sampling.
class JunctionTreePlan {
 public:
  /// Compiles the cone of `root`. With `seed_topological`, the
  /// elimination order is seeded from the circuit's own construction
  /// order (gates are append-only, so ascending id is a topological,
  /// inputs-first order that follows the tree structure DP-produced
  /// lineage circuits were built along — ROADMAP item (a)); the generic
  /// heuristics remain the fallback whenever the seed comes out wide.
  static JunctionTreePlan Build(const BoolCircuit& circuit, GateId root,
                                bool seed_topological = false);

  /// P(root = true | evidence): events listed in `evidence` are pinned
  /// to the given truth value and contribute no probability weight.
  double Execute(const EventRegistry& registry,
                 const Evidence& evidence = {}) const;

  int width() const { return width_; }
  size_t num_bags() const { return bags_.size(); }
  /// Gates of the binarised cone the plan covers.
  size_t num_gates() const { return num_gates_; }

  void FillStats(EngineStats* stats) const;

 private:
  struct Factor {
    const double* table;  ///< Static gate table; nullptr = variable.
    EventId event;        ///< Variable factors only.
    std::vector<size_t> bits;  ///< Scope bit positions in the bag table.
  };
  struct ChildMessage {
    uint32_t child;            ///< Bag id of the child.
    std::vector<size_t> bits;  ///< Separator bit positions in this bag.
  };
  struct Bag {
    uint32_t k = 0;  ///< Bag size; the local table has 2^k entries.
    std::vector<uint32_t> factors;     ///< Indices into factors_.
    std::vector<ChildMessage> children;
    std::vector<size_t> out_bits;      ///< Marginalisation bits (parent
                                       ///< message); unused for the root.
    bool is_root = false;
  };

  JunctionTreePlan() = default;

  bool trivial_ = false;      ///< Cone folded to a constant.
  double trivial_value_ = 0;
  int width_ = 0;
  size_t num_gates_ = 0;
  std::vector<Factor> factors_;
  std::vector<Bag> bags_;  ///< Descending id order is bottom-up.
};

/// One-shot convenience: Build + Execute. If `stats` is non-null it
/// receives run diagnostics (the width, bag and gate fields of the
/// shared EngineStats shape).
double JunctionTreeProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               EngineStats* stats = nullptr);

/// As above with evidence pinning: the result is the conditional
/// probability P(root = true | pinned values). Used by conditioning and
/// by the hybrid core/tentacle engine.
double JunctionTreeProbabilityWithEvidence(
    const BoolCircuit& circuit, GateId root, const EventRegistry& registry,
    const Evidence& evidence, EngineStats* stats = nullptr);

/// One-shot convenience for the seeded-order path (see
/// JunctionTreePlan::Build).
double JunctionTreeProbabilitySeeded(const BoolCircuit& circuit, GateId root,
                                     const EventRegistry& registry,
                                     const Evidence& evidence = {},
                                     EngineStats* stats = nullptr);

}  // namespace tud

#endif  // TUD_INFERENCE_JUNCTION_TREE_H_
