#include "inference/hybrid.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "inference/junction_tree.h"
#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "util/check.h"

namespace tud {

std::pair<BoolCircuit, GateId> RestrictCircuit(
    const BoolCircuit& circuit, GateId root,
    const std::vector<std::optional<bool>>& fixed) {
  BoolCircuit out;
  std::vector<GateId> remap(circuit.NumGates(), kInvalidGate);
  for (GateId g : circuit.ReachableFrom(root)) {
    switch (circuit.kind(g)) {
      case GateKind::kConst:
        remap[g] = out.AddConst(circuit.const_value(g));
        break;
      case GateKind::kVar: {
        EventId e = circuit.var(g);
        if (e < fixed.size() && fixed[e].has_value()) {
          remap[g] = out.AddConst(*fixed[e]);
        } else {
          remap[g] = out.AddVar(e);
        }
        break;
      }
      case GateKind::kNot:
        remap[g] = out.AddNot(remap[circuit.inputs(g)[0]]);
        break;
      case GateKind::kAnd:
      case GateKind::kOr: {
        std::vector<GateId> ins;
        ins.reserve(circuit.inputs(g).size());
        for (GateId in : circuit.inputs(g)) ins.push_back(remap[in]);
        remap[g] = circuit.kind(g) == GateKind::kAnd
                       ? out.AddAnd(std::move(ins))
                       : out.AddOr(std::move(ins));
        break;
      }
    }
  }
  return {std::move(out), remap[root]};
}

EngineResult HybridProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               const std::vector<EventId>& core_events,
                               uint32_t num_samples, Rng& rng) {
  TUD_CHECK_GT(num_samples, 0u);
  EngineResult result;
  result.engine = "hybrid";
  result.stats.num_samples = num_samples;
  double total = 0.0;
  double total_sq = 0.0;
  std::vector<std::optional<bool>> fixed(registry.size());
  for (uint32_t s = 0; s < num_samples; ++s) {
    for (EventId e : core_events) {
      fixed[e] = rng.Bernoulli(registry.probability(e));
    }
    auto [restricted, restricted_root] = RestrictCircuit(circuit, root, fixed);
    EngineStats stats;
    double p = JunctionTreeProbability(restricted, restricted_root, registry,
                                       &stats);
    total += p;
    total_sq += p * p;
    result.stats.width = std::max(result.stats.width, stats.width);
  }
  result.value = total / num_samples;
  if (num_samples > 1) {
    // 95% half-width from the sample variance of the per-sample exact
    // conditionals (the Rao-Blackwellised estimator's spread).
    double variance =
        (total_sq - total * total / num_samples) / (num_samples - 1);
    result.error_bound =
        1.96 * std::sqrt(std::max(variance, 0.0) / num_samples);
  }
  return result;
}

EngineStatus HybridProbabilityGoverned(const BoolCircuit& circuit, GateId root,
                                       const EventRegistry& registry,
                                       const std::vector<EventId>& core_events,
                                       uint32_t num_samples, Rng& rng,
                                       BudgetMeter& meter,
                                       EngineResult* result) {
  TUD_CHECK_GT(num_samples, 0u);
  result->engine = "hybrid";
  result->value = 0.0;
  result->error_bound = 1.0;
  double total = 0.0;
  double total_sq = 0.0;
  uint32_t done = 0;
  EngineStatus st = EngineStatus::kOk;
  std::vector<std::optional<bool>> fixed(registry.size());
  for (uint32_t s = 0; s < num_samples; ++s) {
    st = meter.CheckNow();
    if (st != EngineStatus::kOk) break;
    for (EventId e : core_events) {
      fixed[e] = rng.Bernoulli(registry.probability(e));
    }
    auto [restricted, restricted_root] = RestrictCircuit(circuit, root, fixed);
    JunctionTreePlan plan = JunctionTreePlan::Build(
        JunctionTreeAnalysis::Analyze(restricted, restricted_root), false,
        QueryBudget{});
    if (plan.build_status() != EngineStatus::kOk) {
      st = plan.build_status();
      break;
    }
    // The whole restricted table set is about to be materialised; charge
    // it up front so the cell cap trips before the arena is touched.
    st = meter.Charge(static_cast<uint64_t>(plan.total_cells()));
    if (st != EngineStatus::kOk) break;
    double p = plan.Execute(registry);
    total += p;
    total_sq += p * p;
    ++done;
    result->stats.width = std::max(result->stats.width, plan.width());
  }
  result->stats.num_samples = done;
  if (done > 0) {
    result->value = total / done;
    if (done > 1) {
      double variance = (total_sq - total * total / done) / (done - 1);
      result->error_bound = 1.96 * std::sqrt(std::max(variance, 0.0) / done);
    }
  }
  return st;
}

std::vector<EventId> SelectCoreEvents(const BoolCircuit& circuit, GateId root,
                                      int target_width, size_t max_core) {
  // Greedy: repeatedly restrict the circuit by pinning the chosen core
  // events (to an arbitrary constant — structure, not values, drives the
  // width estimate), rebuild the binarised primal graph, and check the
  // min-fill width. Restriction folds away the gates that depended on
  // the pinned events, which is what actually shrinks the width of the
  // per-sample inference problem in HybridProbability.
  std::vector<std::optional<bool>> fixed(circuit.NumEvents());
  std::vector<EventId> core;
  while (core.size() < max_core) {
    auto [restricted, restricted_root] = RestrictCircuit(circuit, root, fixed);
    auto [bin, remap] = restricted.Binarize();
    GateId bin_root = remap[restricted_root];
    if (bin.kind(bin_root) == GateKind::kConst) break;
    Graph graph(static_cast<uint32_t>(bin.NumGates()));
    for (const auto& [a, b] : bin.PrimalEdges()) graph.AddEdge(a, b);
    uint32_t width = EliminationWidth(graph, MinFillOrder(graph));
    if (static_cast<int>(width) <= target_width) break;
    // Pin the variable with the highest current degree.
    GateId best = kInvalidGate;
    uint32_t best_degree = 0;
    for (GateId g = 0; g < bin.NumGates(); ++g) {
      if (bin.kind(g) != GateKind::kVar) continue;
      if (graph.Degree(g) > best_degree) {
        best = g;
        best_degree = graph.Degree(g);
      }
    }
    if (best == kInvalidGate) break;  // No variables left to condition.
    EventId e = bin.var(best);
    fixed[e] = true;
    core.push_back(e);
  }
  std::sort(core.begin(), core.end());
  core.erase(std::unique(core.begin(), core.end()), core.end());
  return core;
}

}  // namespace tud
