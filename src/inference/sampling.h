#ifndef TUD_INFERENCE_SAMPLING_H_
#define TUD_INFERENCE_SAMPLING_H_

#include <cstdint>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "util/rng.h"

namespace tud {

/// Monte-Carlo estimate of P(root = true): samples `num_samples` event
/// valuations and returns the fraction satisfying the circuit. This is
/// the approximation method the paper says practitioners must fall back
/// to on unrestricted instances ("makes it necessary in practice to
/// approximate query results via sampling", §1).
double SampleProbability(const BoolCircuit& circuit, GateId root,
                         const EventRegistry& registry, uint32_t num_samples,
                         Rng& rng);

}  // namespace tud

#endif  // TUD_INFERENCE_SAMPLING_H_
