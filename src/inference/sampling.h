#ifndef TUD_INFERENCE_SAMPLING_H_
#define TUD_INFERENCE_SAMPLING_H_

#include <cstdint>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "util/budget.h"
#include "util/rng.h"

namespace tud {

/// Monte-Carlo estimate of P(root = true): samples `num_samples` event
/// valuations and returns the fraction satisfying the circuit. This is
/// the approximation method the paper says practitioners must fall back
/// to on unrestricted instances ("makes it necessary in practice to
/// approximate query results via sampling", §1).
double SampleProbability(const BoolCircuit& circuit, GateId root,
                         const EventRegistry& registry, uint32_t num_samples,
                         Rng& rng);

/// Budget-governed variant: charges circuit.NumGates() cells per sample
/// (one sample touches roughly every gate once) and polls cancellation/
/// deadline through `meter`. Stops early on a budget trip; the number of
/// completed samples is written to `*samples_done` and the estimate over
/// those samples to `*value`. Returns the tripping status (kOk if all
/// samples ran). Callers may treat a partial run with `*samples_done > 0`
/// as a degraded-but-usable estimate.
EngineStatus SampleProbabilityGoverned(const BoolCircuit& circuit, GateId root,
                                       const EventRegistry& registry,
                                       uint32_t num_samples, Rng& rng,
                                       BudgetMeter& meter, double* value,
                                       uint32_t* samples_done);

}  // namespace tud

#endif  // TUD_INFERENCE_SAMPLING_H_
