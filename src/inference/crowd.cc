#include "inference/crowd.h"

#include "util/check.h"

namespace tud {

double UpdateEventPosterior(double prior, bool answer, double reliability) {
  TUD_CHECK(reliability > 0.0 && reliability <= 1.0);
  // P(answer | e) = reliability if answer agrees with e, else 1 - r.
  double like_true = answer ? reliability : 1.0 - reliability;
  double like_false = answer ? 1.0 - reliability : reliability;
  double numerator = like_true * prior;
  double denominator = numerator + like_false * (1.0 - prior);
  if (denominator <= 0.0) return prior;  // Degenerate prior: unchanged.
  return numerator / denominator;
}

NoisyOracle::NoisyOracle(Valuation truth, double reliability, uint64_t seed)
    : truth_(std::move(truth)), reliability_(reliability), rng_(seed) {
  TUD_CHECK(reliability > 0.5 && reliability <= 1.0)
      << "workers must beat coin flips";
}

bool NoisyOracle::Ask(EventId event) {
  bool truth = truth_.value(event);
  return rng_.Bernoulli(reliability_) ? truth : !truth;
}

double AskAndUpdate(EventRegistry& registry, EventId event,
                    NoisyOracle& oracle, uint32_t num_askers) {
  double posterior = registry.probability(event);
  for (uint32_t i = 0; i < num_askers; ++i) {
    posterior = UpdateEventPosterior(posterior, oracle.Ask(event),
                                     oracle.reliability());
  }
  registry.set_probability(event, posterior);
  return posterior;
}

}  // namespace tud
