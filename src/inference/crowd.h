#ifndef TUD_INFERENCE_CROWD_H_
#define TUD_INFERENCE_CROWD_H_

#include <cstdint>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "util/rng.h"

namespace tud {

/// Noisy crowd answers (§4): "we can never fully trust the answers that
/// have been produced by the crowd workers". A worker asked about event
/// e reports its true value with probability `reliability` (> 0.5) and
/// the opposite otherwise, independently across asks. Conditioning on
/// such answers is a Bayesian update of the event's probability rather
/// than pinning it to 0/1.

/// Posterior P(e = true | one answer): Bayes update of `prior` given a
/// worker of the given reliability answered `answer`.
double UpdateEventPosterior(double prior, bool answer, double reliability);

/// A simulated noisy worker pool over a hidden ground-truth valuation.
class NoisyOracle {
 public:
  /// `reliability` in (0.5, 1]: probability a worker reports the truth.
  NoisyOracle(Valuation truth, double reliability, uint64_t seed);

  /// One worker's (noisy) answer about `event`.
  bool Ask(EventId event);

  double reliability() const { return reliability_; }

 private:
  Valuation truth_;
  double reliability_;
  Rng rng_;
};

/// Asks `num_askers` workers about `event` and folds all answers into
/// the registry's probability for the event (repeated Bayes updates);
/// returns the posterior. With reliability > 0.5 the posterior
/// concentrates on the truth as askers grow.
double AskAndUpdate(EventRegistry& registry, EventId event,
                    NoisyOracle& oracle, uint32_t num_askers);

}  // namespace tud

#endif  // TUD_INFERENCE_CROWD_H_
