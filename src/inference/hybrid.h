#ifndef TUD_INFERENCE_HYBRID_H_
#define TUD_INFERENCE_HYBRID_H_

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "inference/engine.h"
#include "util/rng.h"

namespace tud {

/// Partial tree decompositions (paper §2.2 end): "structure uncertain
/// instances as a high-treewidth core and low-treewidth tentacles, and
/// evaluate queries by combining [exact inference] on the tentacles and
/// sampling-based approximate methods on the core" (the ProbTree idea
/// [38]).
///
/// The circuit-level counterpart implemented here: pick a set of "core"
/// events whose removal makes the circuit low-treewidth; sample only the
/// core events from their priors, and for each sample run *exact* message
/// passing on the restricted (tentacle) circuit. The estimate is the
/// average of the exact conditional probabilities — a Rao-Blackwellised
/// estimator whose variance is never worse than plain Monte-Carlo with
/// the same number of samples.

/// Restricts the cone of `root` by substituting constants for the events
/// with a value in `fixed` (index = EventId). Returns the restricted
/// circuit and its root gate.
std::pair<BoolCircuit, GateId> RestrictCircuit(
    const BoolCircuit& circuit, GateId root,
    const std::vector<std::optional<bool>>& fixed);

/// Samples `core_events` `num_samples` times; for each sample, restricts
/// the circuit and computes the exact conditional probability by message
/// passing. Returns the averaged estimate in the shared EngineResult
/// shape: `value` is the estimate, `stats.width` the widest restricted
/// decomposition over samples, `stats.num_samples` the sample count.
EngineResult HybridProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               const std::vector<EventId>& core_events,
                               uint32_t num_samples, Rng& rng);

/// Budget-governed variant. Each sample's restricted plan is charged
/// (its full table-cell cost) against `meter` before its tables are
/// computed, and cancellation/deadline are polled between samples. On a
/// mid-run trip the estimate over the samples completed so far is kept
/// in `*result` (with an honest error bound over that count) and the
/// tripping status is returned; callers may treat a partial run with
/// result->stats.num_samples > 0 as degraded-but-usable. A restricted
/// circuit too wide for exact message passing returns
/// kResourceExhausted.
EngineStatus HybridProbabilityGoverned(const BoolCircuit& circuit, GateId root,
                                       const EventRegistry& registry,
                                       const std::vector<EventId>& core_events,
                                       uint32_t num_samples, Rng& rng,
                                       BudgetMeter& meter,
                                       EngineResult* result);

/// Heuristic core selection: greedily removes the events whose variable
/// vertices have the highest fill-in contribution until the min-fill
/// width estimate of the restricted primal graph drops to
/// `target_width`, or `max_core` events were chosen.
std::vector<EventId> SelectCoreEvents(const BoolCircuit& circuit, GateId root,
                                      int target_width, size_t max_core);

}  // namespace tud

#endif  // TUD_INFERENCE_HYBRID_H_
