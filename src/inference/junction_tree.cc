#include "inference/junction_tree.h"

#include <algorithm>
#include <unordered_map>

#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "treedec/tree_decomposition.h"
#include "util/check.h"

namespace tud {

namespace {

// A local factor: a table over the Boolean assignments of `scope`
// (scope[0] is the least significant bit of the table index).
struct Factor {
  std::vector<VertexId> scope;
  std::vector<double> table;
};

// Builds the consistency factor of gate `g` (vertex ids are the dense
// reindexing of gates given by `vertex_of`).
Factor GateFactor(const BoolCircuit& circuit, GateId g,
                  const std::vector<VertexId>& vertex_of) {
  Factor factor;
  factor.scope.push_back(vertex_of[g]);
  for (GateId in : circuit.inputs(g)) factor.scope.push_back(vertex_of[in]);
  const size_t k = factor.scope.size();
  TUD_CHECK_LE(k, 3u) << "gate fan-in must be binarised first";
  factor.table.assign(size_t{1} << k, 0.0);
  for (size_t idx = 0; idx < factor.table.size(); ++idx) {
    const bool out = idx & 1;
    bool expected = false;
    switch (circuit.kind(g)) {
      case GateKind::kNot:
        expected = !((idx >> 1) & 1);
        break;
      case GateKind::kAnd:
        expected = ((idx >> 1) & 1) && (k < 3 || ((idx >> 2) & 1));
        break;
      case GateKind::kOr:
        expected = ((idx >> 1) & 1) || (k >= 3 && ((idx >> 2) & 1));
        break;
      default:
        TUD_CHECK(false) << "not a logic gate";
    }
    factor.table[idx] = (out == expected) ? 1.0 : 0.0;
  }
  return factor;
}

double Run(const BoolCircuit& input, GateId input_root,
           const EventRegistry& registry,
           const std::vector<std::pair<EventId, bool>>& evidence,
           JunctionTreeStats* stats) {
  // 1. Work on the binarised cone of the root.
  auto [cone, cone_root] = input.ExtractCone(input_root);
  auto [circuit, remap] = cone.Binarize();
  GateId root = remap[cone_root];

  if (circuit.kind(root) == GateKind::kConst) {
    if (stats != nullptr) *stats = JunctionTreeStats{0, 0, 1};
    return circuit.const_value(root) ? 1.0 : 0.0;
  }

  std::unordered_map<EventId, bool> pinned;
  for (const auto& [e, v] : evidence) pinned[e] = v;

  // 2. Dense vertex ids for the gates reachable from the root.
  std::vector<GateId> gates = circuit.ReachableFrom(root);
  std::vector<VertexId> vertex_of(circuit.NumGates(), UINT32_MAX);
  for (uint32_t i = 0; i < gates.size(); ++i) vertex_of[gates[i]] = i;
  const uint32_t n = static_cast<uint32_t>(gates.size());

  // 3. Factors: one per gate, plus the root evidence.
  std::vector<Factor> factors;
  factors.reserve(gates.size() + 1);
  for (GateId g : gates) {
    switch (circuit.kind(g)) {
      case GateKind::kConst: {
        Factor f;
        f.scope = {vertex_of[g]};
        f.table = circuit.const_value(g) ? std::vector<double>{0.0, 1.0}
                                         : std::vector<double>{1.0, 0.0};
        factors.push_back(std::move(f));
        break;
      }
      case GateKind::kVar: {
        Factor f;
        f.scope = {vertex_of[g]};
        EventId e = circuit.var(g);
        auto it = pinned.find(e);
        if (it != pinned.end()) {
          f.table = it->second ? std::vector<double>{0.0, 1.0}
                               : std::vector<double>{1.0, 0.0};
        } else {
          double p = registry.probability(e);
          f.table = {1.0 - p, p};
        }
        factors.push_back(std::move(f));
        break;
      }
      default:
        factors.push_back(GateFactor(circuit, g, vertex_of));
    }
  }
  {
    Factor evidence_factor;
    evidence_factor.scope = {vertex_of[root]};
    evidence_factor.table = {0.0, 1.0};
    factors.push_back(std::move(evidence_factor));
  }

  // 4. Primal graph: a clique per factor scope.
  Graph graph(n);
  for (const Factor& f : factors) {
    for (size_t i = 0; i < f.scope.size(); ++i) {
      for (size_t j = i + 1; j < f.scope.size(); ++j) {
        graph.AddEdge(f.scope[i], f.scope[j]);
      }
    }
  }

  // 5. Tree decomposition via min-fill.
  std::vector<VertexId> order = MinFillOrder(graph);
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;
  std::vector<BagId> bag_of_vertex;
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(graph, order, &bag_of_vertex);
  if (stats != nullptr) {
    stats->width = td.Width();
    stats->num_bags = td.NumBags();
    stats->num_gates = gates.size();
  }
  TUD_CHECK_LE(td.Width(), 25)
      << "decomposition too wide for exact message passing";

  // 6. Assign each factor to the bag of the earliest-eliminated vertex of
  // its scope (that bag contains the whole scope: the scope is a clique).
  std::vector<std::vector<const Factor*>> factors_at(td.NumBags());
  for (const Factor& f : factors) {
    VertexId earliest = f.scope[0];
    for (VertexId v : f.scope) {
      if (position[v] < position[earliest]) earliest = v;
    }
    factors_at[bag_of_vertex[earliest]].push_back(&f);
  }

  // 7. One bottom-up sum-product pass. Children have larger BagIds than
  // parents, so descending id order is bottom-up.
  std::vector<std::vector<double>> message(td.NumBags());
  for (BagId b = static_cast<BagId>(td.NumBags()); b-- > 0;) {
    const std::vector<VertexId>& bag = td.bag(b);
    const size_t k = bag.size();
    std::vector<double> table(size_t{1} << k, 1.0);

    // Position of each bag vertex (vertex id -> bit index in `table`).
    auto bit_of = [&bag](VertexId v) {
      auto it = std::lower_bound(bag.begin(), bag.end(), v);
      TUD_CHECK(it != bag.end() && *it == v);
      return static_cast<size_t>(it - bag.begin());
    };

    // Multiply assigned factors in.
    for (const Factor* f : factors_at[b]) {
      std::vector<size_t> bits;
      bits.reserve(f->scope.size());
      for (VertexId v : f->scope) bits.push_back(bit_of(v));
      for (size_t idx = 0; idx < table.size(); ++idx) {
        size_t fidx = 0;
        for (size_t i = 0; i < bits.size(); ++i) {
          fidx |= ((idx >> bits[i]) & 1) << i;
        }
        table[idx] *= f->table[fidx];
      }
    }

    // Multiply child messages in (each message is over the separator,
    // which is a subset of both bags).
    for (BagId c : td.children(b)) {
      const std::vector<VertexId>& child_bag = td.bag(c);
      std::vector<VertexId> separator;
      std::set_intersection(bag.begin(), bag.end(), child_bag.begin(),
                            child_bag.end(), std::back_inserter(separator));
      std::vector<size_t> bits;
      bits.reserve(separator.size());
      for (VertexId v : separator) bits.push_back(bit_of(v));
      const std::vector<double>& msg = message[c];
      TUD_CHECK_EQ(msg.size(), size_t{1} << separator.size());
      for (size_t idx = 0; idx < table.size(); ++idx) {
        size_t midx = 0;
        for (size_t i = 0; i < bits.size(); ++i) {
          midx |= ((idx >> bits[i]) & 1) << i;
        }
        table[idx] *= msg[midx];
      }
    }

    // Produce the message to the parent: marginalise onto the separator.
    if (td.parent(b) == kInvalidBag) {
      double total = 0.0;
      for (double v : table) total += v;
      return total;
    }
    const std::vector<VertexId>& parent_bag = td.bag(td.parent(b));
    std::vector<VertexId> separator;
    std::set_intersection(bag.begin(), bag.end(), parent_bag.begin(),
                          parent_bag.end(), std::back_inserter(separator));
    std::vector<size_t> bits;
    bits.reserve(separator.size());
    for (VertexId v : separator) bits.push_back(bit_of(v));
    std::vector<double> out(size_t{1} << separator.size(), 0.0);
    for (size_t idx = 0; idx < table.size(); ++idx) {
      size_t midx = 0;
      for (size_t i = 0; i < bits.size(); ++i) {
        midx |= ((idx >> bits[i]) & 1) << i;
      }
      out[midx] += table[idx];
    }
    message[b] = std::move(out);
  }
  TUD_CHECK(false) << "tree decomposition had no root bag";
  return 0.0;
}

}  // namespace

double JunctionTreeProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               JunctionTreeStats* stats) {
  return Run(circuit, root, registry, {}, stats);
}

double JunctionTreeProbabilityWithEvidence(
    const BoolCircuit& circuit, GateId root, const EventRegistry& registry,
    const std::vector<std::pair<EventId, bool>>& evidence,
    JunctionTreeStats* stats) {
  return Run(circuit, root, registry, evidence, stats);
}

}  // namespace tud
