#include "inference/junction_tree.h"

#include <algorithm>
#include <array>
#include <numeric>
#include <unordered_map>

#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "treedec/tree_decomposition.h"
#include "util/check.h"

namespace tud {

namespace {

// Static tables for the binarised gate factors. Index bit 0 is the gate
// output, bits 1.. its inputs (scope order).
constexpr double kNotTable[4] = {0, 1, 1, 0};
constexpr double kAndTable[8] = {1, 0, 1, 0, 1, 0, 0, 1};
constexpr double kOrTable[8] = {1, 0, 0, 1, 0, 1, 0, 1};
constexpr double kTrueTable[2] = {0, 1};
constexpr double kFalseTable[2] = {1, 0};

size_t BitOf(const std::vector<VertexId>& bag, VertexId v) {
  auto it = std::lower_bound(bag.begin(), bag.end(), v);
  TUD_CHECK(it != bag.end() && *it == v);
  return static_cast<size_t>(it - bag.begin());
}

}  // namespace

JunctionTreePlan JunctionTreePlan::Build(const BoolCircuit& input,
                                         GateId input_root,
                                         bool seed_topological) {
  JunctionTreePlan plan;

  // 1. Work on the binarised cone of the root.
  auto [cone, cone_root] = input.ExtractCone(input_root);
  auto [circuit, remap] = cone.Binarize();
  GateId root = remap[cone_root];

  if (circuit.kind(root) == GateKind::kConst) {
    plan.trivial_ = true;
    plan.trivial_value_ = circuit.const_value(root) ? 1.0 : 0.0;
    plan.num_gates_ = 1;
    return plan;
  }

  // 2. Dense vertex ids for the gates reachable from the root.
  std::vector<GateId> gates = circuit.ReachableFrom(root);
  std::vector<VertexId> vertex_of(circuit.NumGates(), UINT32_MAX);
  for (uint32_t i = 0; i < gates.size(); ++i) vertex_of[gates[i]] = i;
  const uint32_t n = static_cast<uint32_t>(gates.size());
  plan.num_gates_ = gates.size();

  // 3. Factors: one per gate, plus the root-is-true evidence indicator.
  // Scopes are collected here; bit positions are filled in once the
  // bags are known.
  std::vector<std::vector<VertexId>> scopes;
  plan.factors_.reserve(gates.size() + 1);
  scopes.reserve(gates.size() + 1);
  for (GateId g : gates) {
    Factor f{nullptr, 0, {}};
    std::vector<VertexId> scope = {vertex_of[g]};
    switch (circuit.kind(g)) {
      case GateKind::kConst:
        f.table = circuit.const_value(g) ? kTrueTable : kFalseTable;
        break;
      case GateKind::kVar:
        f.event = circuit.var(g);  // Resolved against the registry (or
                                   // the pinned evidence) at Execute().
        break;
      case GateKind::kNot:
        TUD_CHECK_EQ(circuit.inputs(g).size(), 1u);
        scope.push_back(vertex_of[circuit.inputs(g)[0]]);
        f.table = kNotTable;
        break;
      case GateKind::kAnd:
      case GateKind::kOr:
        TUD_CHECK_EQ(circuit.inputs(g).size(), 2u)
            << "gate fan-in must be binarised first";
        for (GateId in : circuit.inputs(g)) {
          scope.push_back(vertex_of[in]);
        }
        f.table = circuit.kind(g) == GateKind::kAnd ? kAndTable : kOrTable;
        break;
    }
    plan.factors_.push_back(std::move(f));
    scopes.push_back(std::move(scope));
  }
  plan.factors_.push_back(Factor{kTrueTable, 0, {}});
  scopes.push_back({vertex_of[root]});

  // 4. Primal graph: a clique per factor scope.
  Graph graph(n);
  for (const std::vector<VertexId>& scope : scopes) {
    for (size_t i = 0; i < scope.size(); ++i) {
      for (size_t j = i + 1; j < scope.size(); ++j) {
        graph.AddEdge(scope[i], scope[j]);
      }
    }
  }

  // 5. Tree decomposition. With `seed_topological`, first try the
  // circuit's own construction order: dense vertex ids ascend with gate
  // ids, so the identity order eliminates inputs before the gates that
  // read them — for DP-produced lineage circuits this follows the tree
  // the circuit was built along, and costs no ordering work at all.
  // Otherwise (or when the seed comes out wide) fall back to the
  // O(1)-per-operation bucket min-degree order — on circuit primal
  // graphs it matches min-fill's width at a fraction of the cost — and
  // only when that too is wide (where an extra unit of width doubles
  // every message table) pay for min-fill and keep the narrower.
  constexpr int kAcceptWidth = 10;
  std::vector<VertexId> order;
  std::vector<BagId> bag_of_vertex;
  TreeDecomposition td;
  bool accepted = false;
  if (seed_topological) {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    td = TreeDecomposition::FromEliminationOrder(graph, order,
                                                 &bag_of_vertex);
    accepted = td.Width() <= kAcceptWidth;
  }
  if (!accepted) {
    std::vector<VertexId> md_order = CircuitMinDegreeOrder(graph);
    std::vector<BagId> md_bag_of;
    TreeDecomposition md_td = TreeDecomposition::FromEliminationOrder(
        graph, md_order, &md_bag_of);
    if (!seed_topological || md_td.Width() < td.Width()) {
      order = std::move(md_order);
      td = std::move(md_td);
      bag_of_vertex = std::move(md_bag_of);
    }
  }
  if (td.Width() > kAcceptWidth) {
    std::vector<VertexId> fill_order = PeeledMinFillOrder(graph);
    std::vector<BagId> fill_bag_of;
    TreeDecomposition fill_td = TreeDecomposition::FromEliminationOrder(
        graph, fill_order, &fill_bag_of);
    if (fill_td.Width() < td.Width()) {
      order = std::move(fill_order);
      td = std::move(fill_td);
      bag_of_vertex = std::move(fill_bag_of);
    }
  }
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;
  plan.width_ = td.Width();
  TUD_CHECK_LE(td.Width(), 25)
      << "decomposition too wide for exact message passing";

  // 6. Assign each factor to the bag of the earliest-eliminated vertex
  // of its scope (that bag contains the whole scope: the scope is a
  // clique), and precompute every bit position.
  plan.bags_.assign(td.NumBags(), Bag{});
  for (uint32_t fi = 0; fi < plan.factors_.size(); ++fi) {
    const std::vector<VertexId>& scope = scopes[fi];
    VertexId earliest = scope[0];
    for (VertexId v : scope) {
      if (position[v] < position[earliest]) earliest = v;
    }
    const BagId b = bag_of_vertex[earliest];
    for (VertexId v : scope) {
      plan.factors_[fi].bits.push_back(BitOf(td.bag(b), v));
    }
    plan.bags_[b].factors.push_back(fi);
  }

  // Decompositions from elimination orders have one bag per vertex, and
  // the separator towards the parent is exactly bag(v) \ {v}; knowing
  // each bag's defining vertex removes the set intersections from the
  // message pass.
  std::vector<VertexId> vertex_of_bag(td.NumBags(), UINT32_MAX);
  for (VertexId v = 0; v < n; ++v) vertex_of_bag[bag_of_vertex[v]] = v;

  for (BagId b = 0; b < td.NumBags(); ++b) {
    Bag& bag = plan.bags_[b];
    const std::vector<VertexId>& members = td.bag(b);
    bag.k = static_cast<uint32_t>(members.size());
    bag.is_root = td.parent(b) == kInvalidBag;
    for (BagId c : td.children(b)) {
      ChildMessage message{c, {}};
      const VertexId child_vertex = vertex_of_bag[c];
      for (VertexId v : td.bag(c)) {
        if (v != child_vertex) message.bits.push_back(BitOf(members, v));
      }
      bag.children.push_back(std::move(message));
    }
    if (!bag.is_root) {
      const VertexId own_vertex = vertex_of_bag[b];
      for (size_t i = 0; i < members.size(); ++i) {
        if (members[i] != own_vertex) bag.out_bits.push_back(i);
      }
    }
  }
  return plan;
}

double JunctionTreePlan::Execute(const EventRegistry& registry,
                                 const Evidence& evidence) const {
  if (trivial_) return trivial_value_;

  std::unordered_map<EventId, bool> pinned;
  for (const auto& [e, v] : evidence) pinned[e] = v;

  // One bottom-up sum-product pass. Children have larger BagIds than
  // parents, so descending id order is bottom-up. The per-bag table is
  // reused across the (many, mostly tiny) bags.
  std::vector<std::vector<double>> message(bags_.size());
  std::vector<double> table;
  for (uint32_t b = static_cast<uint32_t>(bags_.size()); b-- > 0;) {
    const Bag& bag = bags_[b];
    table.assign(size_t{1} << bag.k, 1.0);

    // Multiply assigned factors in.
    for (uint32_t fi : bag.factors) {
      const Factor& f = factors_[fi];
      const double* values;
      std::array<double, 2> unary = {0.0, 0.0};
      if (f.table != nullptr) {
        values = f.table;
      } else {
        auto it = pinned.find(f.event);
        if (it != pinned.end()) {
          values = it->second ? kTrueTable : kFalseTable;
        } else {
          double p = registry.probability(f.event);
          unary = {1.0 - p, p};
          values = unary.data();
        }
      }
      for (size_t idx = 0; idx < table.size(); ++idx) {
        size_t fidx = 0;
        for (size_t i = 0; i < f.bits.size(); ++i) {
          fidx |= ((idx >> f.bits[i]) & 1) << i;
        }
        table[idx] *= values[fidx];
      }
    }

    // Multiply child messages in. Each message is over the child's
    // separator, whose members all live in this bag.
    for (const ChildMessage& child : bag.children) {
      const std::vector<double>& msg = message[child.child];
      TUD_CHECK_EQ(msg.size(), size_t{1} << child.bits.size());
      for (size_t idx = 0; idx < table.size(); ++idx) {
        size_t midx = 0;
        for (size_t i = 0; i < child.bits.size(); ++i) {
          midx |= ((idx >> child.bits[i]) & 1) << i;
        }
        table[idx] *= msg[midx];
      }
      message[child.child] = {};  // Used exactly once: free it eagerly.
    }

    // Produce the message to the parent: marginalise out this bag's
    // defining vertex.
    if (bag.is_root) {
      double total = 0.0;
      for (double v : table) total += v;
      return total;
    }
    std::vector<double> out(size_t{1} << bag.out_bits.size(), 0.0);
    for (size_t idx = 0; idx < table.size(); ++idx) {
      size_t midx = 0;
      for (size_t i = 0; i < bag.out_bits.size(); ++i) {
        midx |= ((idx >> bag.out_bits[i]) & 1) << i;
      }
      out[midx] += table[idx];
    }
    message[b] = std::move(out);
  }
  TUD_CHECK(false) << "tree decomposition had no root bag";
  return 0.0;
}

void JunctionTreePlan::FillStats(EngineStats* stats) const {
  if (stats == nullptr) return;
  *stats = EngineStats{};
  stats->width = trivial_ ? 0 : width_;
  stats->num_bags = bags_.size();
  stats->num_gates = num_gates_;
}

double JunctionTreeProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               EngineStats* stats) {
  JunctionTreePlan plan = JunctionTreePlan::Build(circuit, root);
  plan.FillStats(stats);
  return plan.Execute(registry);
}

double JunctionTreeProbabilityWithEvidence(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           const Evidence& evidence,
                                           EngineStats* stats) {
  JunctionTreePlan plan = JunctionTreePlan::Build(circuit, root);
  plan.FillStats(stats);
  return plan.Execute(registry, evidence);
}

double JunctionTreeProbabilitySeeded(const BoolCircuit& circuit, GateId root,
                                     const EventRegistry& registry,
                                     const Evidence& evidence,
                                     EngineStats* stats) {
  JunctionTreePlan plan =
      JunctionTreePlan::Build(circuit, root, /*seed_topological=*/true);
  plan.FillStats(stats);
  return plan.Execute(registry, evidence);
}

}  // namespace tud
