#include "inference/junction_tree.h"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "treedec/tree_decomposition.h"
#include "util/check.h"

namespace tud {

namespace {

// A local factor: a table over the Boolean assignments of `scope`
// (scope[0] is the least significant bit of the table index). After
// binarisation every logic gate has one of three shapes, so gate
// factors point at shared static tables; only variable factors carry
// their own two probabilities in `unary` (table == nullptr then).
struct Factor {
  std::vector<VertexId> scope;
  const double* table = nullptr;
  std::array<double, 2> unary = {0.0, 0.0};

  const double* values() const { return table != nullptr ? table : unary.data(); }
};

// Index bit 0 is the gate output, bits 1.. its inputs (scope order).
constexpr double kNotTable[4] = {0, 1, 1, 0};
constexpr double kAndTable[8] = {1, 0, 1, 0, 1, 0, 0, 1};
constexpr double kOrTable[8] = {1, 0, 0, 1, 0, 1, 0, 1};
constexpr double kTrueTable[2] = {0, 1};
constexpr double kFalseTable[2] = {1, 0};

double Run(const BoolCircuit& input, GateId input_root,
           const EventRegistry& registry,
           const std::vector<std::pair<EventId, bool>>& evidence,
           JunctionTreeStats* stats) {
  // 1. Work on the binarised cone of the root.
  auto [cone, cone_root] = input.ExtractCone(input_root);
  auto [circuit, remap] = cone.Binarize();
  GateId root = remap[cone_root];

  if (circuit.kind(root) == GateKind::kConst) {
    if (stats != nullptr) *stats = JunctionTreeStats{0, 0, 1};
    return circuit.const_value(root) ? 1.0 : 0.0;
  }

  std::unordered_map<EventId, bool> pinned;
  for (const auto& [e, v] : evidence) pinned[e] = v;

  // 2. Dense vertex ids for the gates reachable from the root.
  std::vector<GateId> gates = circuit.ReachableFrom(root);
  std::vector<VertexId> vertex_of(circuit.NumGates(), UINT32_MAX);
  for (uint32_t i = 0; i < gates.size(); ++i) vertex_of[gates[i]] = i;
  const uint32_t n = static_cast<uint32_t>(gates.size());

  // 3. Factors: one per gate, plus the root evidence.
  std::vector<Factor> factors;
  factors.reserve(gates.size() + 1);
  for (GateId g : gates) {
    Factor f;
    f.scope.push_back(vertex_of[g]);
    switch (circuit.kind(g)) {
      case GateKind::kConst:
        f.table = circuit.const_value(g) ? kTrueTable : kFalseTable;
        break;
      case GateKind::kVar: {
        EventId e = circuit.var(g);
        auto it = pinned.find(e);
        if (it != pinned.end()) {
          f.table = it->second ? kTrueTable : kFalseTable;
        } else {
          double p = registry.probability(e);
          f.unary = {1.0 - p, p};
        }
        break;
      }
      case GateKind::kNot:
        TUD_CHECK_EQ(circuit.inputs(g).size(), 1u);
        f.scope.push_back(vertex_of[circuit.inputs(g)[0]]);
        f.table = kNotTable;
        break;
      case GateKind::kAnd:
      case GateKind::kOr:
        TUD_CHECK_EQ(circuit.inputs(g).size(), 2u)
            << "gate fan-in must be binarised first";
        for (GateId in : circuit.inputs(g)) {
          f.scope.push_back(vertex_of[in]);
        }
        f.table = circuit.kind(g) == GateKind::kAnd ? kAndTable : kOrTable;
        break;
    }
    factors.push_back(std::move(f));
  }
  {
    Factor evidence_factor;
    evidence_factor.scope = {vertex_of[root]};
    evidence_factor.table = kTrueTable;
    factors.push_back(std::move(evidence_factor));
  }

  // 4. Primal graph: a clique per factor scope.
  Graph graph(n);
  for (const Factor& f : factors) {
    for (size_t i = 0; i < f.scope.size(); ++i) {
      for (size_t j = i + 1; j < f.scope.size(); ++j) {
        graph.AddEdge(f.scope[i], f.scope[j]);
      }
    }
  }

  // 5. Tree decomposition: try the O(1)-per-operation bucket min-degree
  // order first — on circuit primal graphs it matches min-fill's width
  // at a fraction of the cost. Only when it comes out wide (where an
  // extra unit of width doubles every message table) pay for min-fill
  // and keep the narrower of the two.
  std::vector<VertexId> order = CircuitMinDegreeOrder(graph);
  std::vector<BagId> bag_of_vertex;
  TreeDecomposition td =
      TreeDecomposition::FromEliminationOrder(graph, order, &bag_of_vertex);
  constexpr int kAcceptWidth = 10;
  if (td.Width() > kAcceptWidth) {
    std::vector<VertexId> fill_order = PeeledMinFillOrder(graph);
    std::vector<BagId> fill_bag_of;
    TreeDecomposition fill_td = TreeDecomposition::FromEliminationOrder(
        graph, fill_order, &fill_bag_of);
    if (fill_td.Width() < td.Width()) {
      order = std::move(fill_order);
      td = std::move(fill_td);
      bag_of_vertex = std::move(fill_bag_of);
    }
  }
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;
  if (stats != nullptr) {
    stats->width = td.Width();
    stats->num_bags = td.NumBags();
    stats->num_gates = gates.size();
  }
  TUD_CHECK_LE(td.Width(), 25)
      << "decomposition too wide for exact message passing";

  // 6. Assign each factor to the bag of the earliest-eliminated vertex of
  // its scope (that bag contains the whole scope: the scope is a clique).
  std::vector<std::vector<const Factor*>> factors_at(td.NumBags());
  for (const Factor& f : factors) {
    VertexId earliest = f.scope[0];
    for (VertexId v : f.scope) {
      if (position[v] < position[earliest]) earliest = v;
    }
    factors_at[bag_of_vertex[earliest]].push_back(&f);
  }

  // Decompositions from elimination orders have one bag per vertex, and
  // the separator towards the parent is exactly bag(v) \ {v}; knowing
  // each bag's defining vertex removes the set intersections from the
  // message pass.
  std::vector<VertexId> vertex_of_bag(td.NumBags(), UINT32_MAX);
  for (VertexId v = 0; v < n; ++v) vertex_of_bag[bag_of_vertex[v]] = v;

  // 7. One bottom-up sum-product pass. Children have larger BagIds than
  // parents, so descending id order is bottom-up. The per-bag table and
  // index buffers are reused across the (many, mostly tiny) bags.
  std::vector<std::vector<double>> message(td.NumBags());
  std::vector<double> table;
  std::vector<size_t> bits;
  for (BagId b = static_cast<BagId>(td.NumBags()); b-- > 0;) {
    const std::vector<VertexId>& bag = td.bag(b);
    const size_t k = bag.size();
    table.assign(size_t{1} << k, 1.0);

    // Position of each bag vertex (vertex id -> bit index in `table`).
    auto bit_of = [&bag](VertexId v) {
      auto it = std::lower_bound(bag.begin(), bag.end(), v);
      TUD_CHECK(it != bag.end() && *it == v);
      return static_cast<size_t>(it - bag.begin());
    };

    // Multiply assigned factors in.
    for (const Factor* f : factors_at[b]) {
      bits.clear();
      for (VertexId v : f->scope) bits.push_back(bit_of(v));
      const double* values = f->values();
      for (size_t idx = 0; idx < table.size(); ++idx) {
        size_t fidx = 0;
        for (size_t i = 0; i < bits.size(); ++i) {
          fidx |= ((idx >> bits[i]) & 1) << i;
        }
        table[idx] *= values[fidx];
      }
    }

    // Multiply child messages in. Each message is over the child's
    // separator — the child bag minus its defining vertex — whose
    // members all live in this bag.
    for (BagId c : td.children(b)) {
      const std::vector<VertexId>& child_bag = td.bag(c);
      const VertexId child_vertex = vertex_of_bag[c];
      bits.clear();
      for (VertexId v : child_bag) {
        if (v != child_vertex) bits.push_back(bit_of(v));
      }
      const std::vector<double>& msg = message[c];
      TUD_CHECK_EQ(msg.size(), size_t{1} << bits.size());
      for (size_t idx = 0; idx < table.size(); ++idx) {
        size_t midx = 0;
        for (size_t i = 0; i < bits.size(); ++i) {
          midx |= ((idx >> bits[i]) & 1) << i;
        }
        table[idx] *= msg[midx];
      }
      message[c] = {};  // Used exactly once: free it eagerly.
    }

    // Produce the message to the parent: marginalise out this bag's
    // defining vertex.
    if (td.parent(b) == kInvalidBag) {
      double total = 0.0;
      for (double v : table) total += v;
      return total;
    }
    const VertexId own_vertex = vertex_of_bag[b];
    bits.clear();
    for (VertexId v : bag) {
      if (v != own_vertex) bits.push_back(bit_of(v));
    }
    std::vector<double> out(size_t{1} << bits.size(), 0.0);
    for (size_t idx = 0; idx < table.size(); ++idx) {
      size_t midx = 0;
      for (size_t i = 0; i < bits.size(); ++i) {
        midx |= ((idx >> bits[i]) & 1) << i;
      }
      out[midx] += table[idx];
    }
    message[b] = std::move(out);
  }
  TUD_CHECK(false) << "tree decomposition had no root bag";
  return 0.0;
}

}  // namespace

double JunctionTreeProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               JunctionTreeStats* stats) {
  return Run(circuit, root, registry, {}, stats);
}

double JunctionTreeProbabilityWithEvidence(
    const BoolCircuit& circuit, GateId root, const EventRegistry& registry,
    const std::vector<std::pair<EventId, bool>>& evidence,
    JunctionTreeStats* stats) {
  return Run(circuit, root, registry, evidence, stats);
}

}  // namespace tud
