#include "inference/junction_tree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <memory>
#include <numeric>
#include <stdexcept>

#include "treedec/elimination.h"
#include "treedec/tree_decomposition.h"
#include "util/check.h"

namespace tud {

namespace {

// Static tables for the binarised gate factors. Index bit 0 is the gate
// output, bits 1.. its inputs (scope order).
constexpr double kNotTable[4] = {0, 1, 1, 0};
constexpr double kAndTable[8] = {1, 0, 1, 0, 1, 0, 0, 1};
constexpr double kOrTable[8] = {1, 0, 0, 1, 0, 1, 0, 1};
constexpr double kTrueTable[2] = {0, 1};
constexpr double kFalseTable[2] = {1, 0};

size_t BitOf(const std::vector<VertexId>& bag, VertexId v) {
  auto it = std::lower_bound(bag.begin(), bag.end(), v);
  TUD_CHECK(it != bag.end() && *it == v);
  return static_cast<size_t>(it - bag.begin());
}

// Bags at most this large get their constant gate factors pre-fused
// into one static table / their index maps expanded into gather tables;
// beyond it the 2^k precomputation would not pay for itself (such bags
// only exist when even min-fill came out wide) and the generic
// bit-recombination loops run instead. Mutable only through the
// SetKernelThresholdsForTest hook.
int g_fuse_max_k = 16;
int g_gather_max_k = 16;

}  // namespace

// ---------------------------------------------------------------------------
// JunctionTreeAnalysis
// ---------------------------------------------------------------------------

JunctionTreeAnalysis JunctionTreeAnalysis::Analyze(const BoolCircuit& circuit,
                                                   GateId root) {
  return AnalyzeBatch(circuit, std::vector<GateId>{root});
}

JunctionTreeAnalysis JunctionTreeAnalysis::AnalyzeBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots) {
  TUD_CHECK(!roots.empty());
  JunctionTreeAnalysis a;

  // Work on the binarised union cone of the roots.
  auto [cone, cone_roots] = circuit.ExtractCones(roots);
  auto [bin, remap] = cone.Binarize();
  a.roots_.reserve(roots.size());
  for (GateId r : cone_roots) a.roots_.push_back(remap[r]);

  // Dense vertex ids for the gates reachable from any non-constant
  // root (binarisation folds constants, which can orphan gates).
  std::vector<bool> seen(bin.NumGates(), false);
  std::vector<GateId> stack;
  for (GateId r : a.roots_) {
    if (bin.kind(r) == GateKind::kConst) continue;
    if (!seen[r]) {
      seen[r] = true;
      stack.push_back(r);
    }
  }
  while (!stack.empty()) {
    GateId g = stack.back();
    stack.pop_back();
    for (GateId in : bin.inputs(g)) {
      if (!seen[in]) {
        seen[in] = true;
        stack.push_back(in);
      }
    }
  }
  a.vertex_of_.assign(bin.NumGates(), UINT32_MAX);
  for (GateId g = 0; g < bin.NumGates(); ++g) {
    if (seen[g]) {
      a.vertex_of_[g] = static_cast<VertexId>(a.gates_.size());
      a.gates_.push_back(g);
    }
  }

  // Primal graph: a clique per gate scope ({gate} and its inputs) —
  // identical to the cliques of the factor scopes the plan assigns to
  // bags (the root-indicator factor is unary and adds no edges).
  a.graph_ = Graph(static_cast<uint32_t>(a.gates_.size()));
  for (VertexId v = 0; v < a.gates_.size(); ++v) {
    const GateId g = a.gates_[v];
    const std::vector<GateId>& ins = bin.inputs(g);
    for (size_t i = 0; i < ins.size(); ++i) {
      const VertexId vi = a.vertex_of_[ins[i]];
      a.graph_.AddEdge(v, vi);
      for (size_t j = i + 1; j < ins.size(); ++j) {
        a.graph_.AddEdge(vi, a.vertex_of_[ins[j]]);
      }
    }
  }
  a.bin_ = std::move(bin);
  return a;
}

int JunctionTreeAnalysis::MinDegreeWidth() {
  if (!has_min_degree_) {
    md_order_ = CircuitMinDegreeOrder(graph_);
    md_width_ = static_cast<int>(
        EliminationWidthAndCost(graph_, md_order_, &md_cost_));
    has_min_degree_ = true;
  }
  return md_width_;
}

double JunctionTreeAnalysis::TableCost() {
  if (trivial()) return 0;
  MinDegreeWidth();  // Computes and caches md_cost_ alongside the width.
  return md_cost_;
}

// ---------------------------------------------------------------------------
// Build: lower every bag to a flat program
// ---------------------------------------------------------------------------

JunctionTreePlan JunctionTreePlan::Build(const BoolCircuit& circuit,
                                         GateId root, bool seed_topological) {
  return BuildImpl(JunctionTreeAnalysis::Analyze(circuit, root),
                   seed_topological, /*batch=*/false, nullptr);
}

JunctionTreePlan JunctionTreePlan::Build(JunctionTreeAnalysis analysis,
                                         bool seed_topological) {
  TUD_CHECK_EQ(analysis.roots_.size(), 1u)
      << "single-root Build from a batch analysis; use BuildBatch";
  return BuildImpl(std::move(analysis), seed_topological, /*batch=*/false,
                   nullptr);
}

JunctionTreePlan JunctionTreePlan::Build(JunctionTreeAnalysis analysis,
                                         bool seed_topological,
                                         const QueryBudget& budget) {
  TUD_CHECK_EQ(analysis.roots_.size(), 1u)
      << "single-root Build from a batch analysis; use BuildBatch";
  return BuildImpl(std::move(analysis), seed_topological, /*batch=*/false,
                   &budget);
}

JunctionTreePlan JunctionTreePlan::BuildBatch(const BoolCircuit& circuit,
                                              const std::vector<GateId>& roots,
                                              bool seed_topological) {
  return BuildImpl(JunctionTreeAnalysis::AnalyzeBatch(circuit, roots),
                   seed_topological, /*batch=*/true, nullptr);
}

JunctionTreePlan JunctionTreePlan::BuildBatch(JunctionTreeAnalysis analysis,
                                              bool seed_topological) {
  return BuildImpl(std::move(analysis), seed_topological, /*batch=*/true,
                   nullptr);
}

JunctionTreePlan JunctionTreePlan::BuildBatch(JunctionTreeAnalysis analysis,
                                              bool seed_topological,
                                              const QueryBudget& budget) {
  return BuildImpl(std::move(analysis), seed_topological, /*batch=*/true,
                   &budget);
}

JunctionTreePlan JunctionTreePlan::BuildImpl(JunctionTreeAnalysis a,
                                             bool seed_topological,
                                             bool batch,
                                             const QueryBudget* budget) {
  JunctionTreePlan plan;
  plan.batch_ = batch;
  const BoolCircuit& bin = a.bin_;

  if (batch) {
    plan.query_roots_.resize(a.roots_.size());
    for (size_t i = 0; i < a.roots_.size(); ++i) {
      if (bin.kind(a.roots_[i]) == GateKind::kConst) {
        plan.query_roots_[i].trivial_value =
            bin.const_value(a.roots_[i]) ? 1 : 0;
      }
    }
  }
  if (a.trivial()) {
    plan.trivial_ = true;
    if (!batch) {
      plan.trivial_value_ = bin.const_value(a.roots_[0]) ? 1.0 : 0.0;
      plan.num_gates_ = 1;
    }
    return plan;
  }

  const uint32_t n = static_cast<uint32_t>(a.gates_.size());
  plan.num_gates_ = n;

  // 1. Factors: one per gate, plus (single-root plans) the root-is-true
  // evidence indicator. Scope bit 0 is the gate output, bits 1.. its
  // inputs.
  struct TmpFactor {
    const double* table;  ///< Static gate table; nullptr = variable.
    EventId event;        ///< Variable factors only.
    std::vector<VertexId> scope;
  };
  std::vector<TmpFactor> factors;
  factors.reserve(n + 1);
  for (VertexId v = 0; v < n; ++v) {
    const GateId g = a.gates_[v];
    TmpFactor f{nullptr, 0, {v}};
    switch (bin.kind(g)) {
      case GateKind::kConst:
        f.table = bin.const_value(g) ? kTrueTable : kFalseTable;
        break;
      case GateKind::kVar:
        f.event = bin.var(g);
        break;
      case GateKind::kNot:
        TUD_CHECK_EQ(bin.inputs(g).size(), 1u);
        f.scope.push_back(a.vertex_of_[bin.inputs(g)[0]]);
        f.table = kNotTable;
        break;
      case GateKind::kAnd:
      case GateKind::kOr:
        TUD_CHECK_EQ(bin.inputs(g).size(), 2u)
            << "gate fan-in must be binarised first";
        for (GateId in : bin.inputs(g)) {
          f.scope.push_back(a.vertex_of_[in]);
        }
        f.table = bin.kind(g) == GateKind::kAnd ? kAndTable : kOrTable;
        break;
    }
    factors.push_back(std::move(f));
  }
  if (!batch) {
    factors.push_back(TmpFactor{kTrueTable, 0, {a.vertex_of_[a.roots_[0]]}});
  }

  // 2. Tree decomposition. With `seed_topological`, first try the
  // circuit's own construction order: dense vertex ids ascend with gate
  // ids, so the identity order eliminates inputs before the gates that
  // read them — for DP-produced lineage circuits this follows the tree
  // the circuit was built along, and costs no ordering work at all.
  // Otherwise (or when the seed comes out wide) fall back to the
  // analysis's O(1)-per-operation bucket min-degree order — on circuit
  // primal graphs it matches min-fill's width at a fraction of the cost
  // — and only when that too is wide (where an extra unit of width
  // doubles every message table) pay for min-fill and keep the
  // narrower.
  constexpr int kAcceptWidth = 10;
  std::vector<VertexId> order;
  std::vector<BagId> bag_of_vertex;
  TreeDecomposition td;
  bool accepted = false;
  if (seed_topological) {
    order.resize(n);
    std::iota(order.begin(), order.end(), 0);
    td = TreeDecomposition::FromEliminationOrder(a.graph_, order,
                                                 &bag_of_vertex);
    accepted = td.Width() <= kAcceptWidth;
  }
  if (!accepted) {
    a.MinDegreeWidth();  // Ensures the cached min-degree order.
    std::vector<BagId> md_bag_of;
    TreeDecomposition md_td = TreeDecomposition::FromEliminationOrder(
        a.graph_, a.md_order_, &md_bag_of);
    if (!seed_topological || md_td.Width() < td.Width()) {
      order = a.md_order_;
      td = std::move(md_td);
      bag_of_vertex = std::move(md_bag_of);
    }
  }
  if (td.Width() > kAcceptWidth) {
    std::vector<VertexId> fill_order = PeeledMinFillOrder(a.graph_);
    std::vector<BagId> fill_bag_of;
    TreeDecomposition fill_td = TreeDecomposition::FromEliminationOrder(
        a.graph_, fill_order, &fill_bag_of);
    if (fill_td.Width() < td.Width()) {
      order = std::move(fill_order);
      td = std::move(fill_td);
      bag_of_vertex = std::move(fill_bag_of);
    }
  }
  std::vector<uint32_t> position(n);
  for (uint32_t i = 0; i < n; ++i) position[order[i]] = i;
  plan.width_ = td.Width();

  // Admission: everything below lowers the decomposition into 2^|bag|
  // tables, so the refusals happen *here*, before a single table cell
  // is allocated. A too-wide decomposition is an intrinsic failure
  // (kResourceExhausted, cacheable as a negative entry); a cell cap or
  // deadline/cancellation from the caller's budget marks the plan
  // budget-limited so caches know not to publish it.
  for (BagId b = 0; b < td.NumBags(); ++b) {
    // ldexp, not a shift: bags of a rejected-width decomposition can
    // exceed 63 vertices.
    plan.total_cells_ += std::ldexp(1.0, static_cast<int>(td.bag(b).size()));
  }
  if (td.Width() > 25) {
    plan.build_status_ = EngineStatus::kResourceExhausted;
    return plan;
  }
  if (budget != nullptr) {
    if (budget->cancelled()) {
      plan.build_status_ = EngineStatus::kCancelled;
      plan.build_limited_by_budget_ = true;
      return plan;
    }
    if (budget->past_deadline()) {
      plan.build_status_ = EngineStatus::kDeadlineExceeded;
      plan.build_limited_by_budget_ = true;
      return plan;
    }
    if (budget->max_table_cells != 0 &&
        static_cast<double>(budget->max_table_cells) <
            (batch ? 2.0 : 1.0) * plan.total_cells_) {
      plan.build_status_ = EngineStatus::kResourceExhausted;
      plan.build_limited_by_budget_ = true;
      return plan;
    }
  }

  // 3. Assign each factor to the bag of the earliest-eliminated vertex
  // of its scope (that bag contains the whole scope: the scope is a
  // clique).
  const size_t num_bags = td.NumBags();
  std::vector<std::vector<uint32_t>> bag_factors(num_bags);
  for (uint32_t fi = 0; fi < factors.size(); ++fi) {
    const std::vector<VertexId>& scope = factors[fi].scope;
    VertexId earliest = scope[0];
    for (VertexId v : scope) {
      if (position[v] < position[earliest]) earliest = v;
    }
    bag_factors[bag_of_vertex[earliest]].push_back(fi);
  }

  // Decompositions from elimination orders have one bag per vertex, and
  // the separator towards the parent is exactly bag(v) \ {v}; knowing
  // each bag's defining vertex removes the set intersections from the
  // message pass.
  std::vector<VertexId> vertex_of_bag(num_bags, UINT32_MAX);
  for (VertexId v = 0; v < n; ++v) vertex_of_bag[bag_of_vertex[v]] = v;

  // 4. Lower each bag to its flat program: pre-fused static table,
  // variable-factor bit positions, child-message and marginalisation
  // index maps (gather tables plus the raw bit positions as fallback).
  auto push_bits = [&plan](const std::vector<uint8_t>& bits, uint32_t* begin,
                           uint32_t* count) {
    *begin = static_cast<uint32_t>(plan.bit_pool_.size());
    *count = static_cast<uint32_t>(bits.size());
    plan.bit_pool_.insert(plan.bit_pool_.end(), bits.begin(), bits.end());
  };
  auto make_gather = [&plan](const std::vector<uint8_t>& bits, uint32_t k) {
    const uint32_t off = static_cast<uint32_t>(plan.gather_.size());
    const size_t size = size_t{1} << k;
    for (size_t idx = 0; idx < size; ++idx) {
      uint32_t m = 0;
      for (size_t i = 0; i < bits.size(); ++i) {
        m |= static_cast<uint32_t>((idx >> bits[i]) & 1u) << i;
      }
      plan.gather_.push_back(m);
    }
    return off;
  };

  plan.bags_.assign(num_bags, Bag{});
  for (BagId b = 0; b < num_bags; ++b) {
    Bag& bag = plan.bags_[b];
    const std::vector<VertexId>& members = td.bag(b);
    bag.k = static_cast<uint8_t>(members.size());
    bag.is_root = td.parent(b) == kInvalidBag;
    plan.max_k_ = std::max<uint32_t>(plan.max_k_, bag.k);

    // Variable factors and static factors of this bag.
    bag.var_begin = static_cast<uint32_t>(plan.var_factors_.size());
    std::vector<std::pair<const double*, std::vector<uint8_t>>> statics;
    for (uint32_t fi : bag_factors[b]) {
      const TmpFactor& f = factors[fi];
      if (f.table == nullptr) {
        plan.var_factors_.push_back(VarFactor{
            f.event, static_cast<uint32_t>(BitOf(members, f.scope[0]))});
        plan.var_factor_bag_.push_back(b);
        plan.num_events_ =
            std::max<size_t>(plan.num_events_, size_t{f.event} + 1);
        continue;
      }
      std::vector<uint8_t> bits;
      bits.reserve(f.scope.size());
      for (VertexId v : f.scope) {
        bits.push_back(static_cast<uint8_t>(BitOf(members, v)));
      }
      statics.emplace_back(f.table, std::move(bits));
    }
    bag.var_end = static_cast<uint32_t>(plan.var_factors_.size());

    // Pre-fuse the constant gate factors into one static table so
    // Execute only multiplies variable factors and messages in.
    if (bag.k <= g_fuse_max_k) {
      bag.static_off = static_cast<uint32_t>(plan.static_.size());
      const size_t size = size_t{1} << bag.k;
      plan.static_.resize(plan.static_.size() + size, 1.0);
      double* st = plan.static_.data() + bag.static_off;
      for (const auto& [table, bits] : statics) {
        for (size_t idx = 0; idx < size; ++idx) {
          size_t fidx = 0;
          for (size_t i = 0; i < bits.size(); ++i) {
            fidx |= ((idx >> bits[i]) & 1) << i;
          }
          st[idx] *= table[fidx];
        }
      }
    } else {
      bag.sfac_begin = static_cast<uint32_t>(plan.static_factors_.size());
      for (const auto& [table, bits] : statics) {
        StaticFactor sf{table, 0, 0};
        push_bits(bits, &sf.bits_begin, &sf.bits_count);
        plan.static_factors_.push_back(sf);
      }
      bag.sfac_end = static_cast<uint32_t>(plan.static_factors_.size());
    }

    // Child messages: each message is over the child's separator, whose
    // members all live in this bag.
    bag.child_begin = static_cast<uint32_t>(plan.children_.size());
    for (BagId c : td.children(b)) {
      ChildEdge edge{c, kNone, kNone, 0, 0};
      const VertexId child_vertex = vertex_of_bag[c];
      std::vector<uint8_t> bits;
      for (VertexId v : td.bag(c)) {
        if (v != child_vertex) {
          bits.push_back(static_cast<uint8_t>(BitOf(members, v)));
        }
      }
      push_bits(bits, &edge.bits_begin, &edge.bits_count);
      if (bag.k <= g_gather_max_k) edge.gather = make_gather(bits, bag.k);
      plan.children_.push_back(edge);
    }
    bag.child_end = static_cast<uint32_t>(plan.children_.size());

    // Marginalisation towards the parent: sum out this bag's defining
    // vertex.
    if (!bag.is_root) {
      const VertexId own_vertex = vertex_of_bag[b];
      std::vector<uint8_t> bits;
      for (size_t i = 0; i < members.size(); ++i) {
        if (members[i] != own_vertex) {
          bits.push_back(static_cast<uint8_t>(i));
        }
      }
      push_bits(bits, &bag.out_bits_begin, &bag.out_count);
      if (bag.k <= g_gather_max_k) bag.out_gather = make_gather(bits, bag.k);
    }

    bag.opcode = bag.k <= 3 && bag.static_off != kNone &&
                         (bag.k <= g_gather_max_k)
                     ? bag.k
                     : kOpGeneric;
  }

  // The rootward path index ExecuteDelta walks: bag -> parent bag id.
  plan.parent_of_.assign(num_bags, kNone);
  for (BagId b = 0; b < num_bags; ++b) {
    if (td.parent(b) != kInvalidBag) {
      plan.parent_of_[b] = static_cast<uint32_t>(td.parent(b));
    }
  }

  // 5. Batch plans: locate each root's query bag and prune the downward
  // pass to the subtrees that contain one.
  std::vector<bool> is_query_bag(num_bags, false);
  if (batch) {
    for (size_t i = 0; i < a.roots_.size(); ++i) {
      QueryRoot& qr = plan.query_roots_[i];
      if (qr.trivial_value >= 0) continue;
      const VertexId v = a.vertex_of_[a.roots_[i]];
      qr.bag = bag_of_vertex[v];
      qr.bit = static_cast<uint32_t>(BitOf(td.bag(qr.bag), v));
      is_query_bag[qr.bag] = true;
    }
    // Children have larger bag ids than parents, so descending id order
    // visits children first.
    for (uint32_t b = static_cast<uint32_t>(num_bags); b-- > 0;) {
      Bag& bag = plan.bags_[b];
      bag.subtree_has_query = is_query_bag[b];
      for (uint32_t ce = bag.child_begin; ce != bag.child_end; ++ce) {
        bag.subtree_has_query = bag.subtree_has_query ||
                                plan.bags_[plan.children_[ce].child]
                                    .subtree_has_query;
      }
    }
  }

  // 6. Arena layout, sized once per plan: resolved variable-factor
  // values, every message slot (and, for batch plans, downward messages
  // and kept query-bag tables), then the scratch table region.
  plan.vals_off_ = 0;
  size_t off = 2 * plan.var_factors_.size();
  for (BagId b = 0; b < num_bags; ++b) {
    Bag& bag = plan.bags_[b];
    if (!bag.is_root) {
      bag.up_off = static_cast<uint32_t>(off);
      off += size_t{1} << bag.out_count;
    }
  }
  if (batch) {
    for (BagId b = 0; b < num_bags; ++b) {
      Bag& bag = plan.bags_[b];
      if (bag.subtree_has_query && !bag.is_root) {
        bag.down_off = static_cast<uint32_t>(off);
        off += size_t{1} << bag.out_count;
      }
      if (is_query_bag[b]) {
        bag.table_off = static_cast<uint32_t>(off);
        off += size_t{1} << bag.k;
      }
    }
  }
  plan.scratch_off_ = off;
  off += (batch ? 2 : 1) * (size_t{1} << plan.max_k_);
  plan.arena_size_ = off;
  TUD_CHECK_LT(plan.arena_size_, size_t{UINT32_MAX})
      << "plan arena too large for 32-bit offsets";

  // Child edges read their message slot through a cached offset.
  for (ChildEdge& edge : plan.children_) {
    edge.msg_off = plan.bags_[edge.child].up_off;
  }
  return plan;
}

// ---------------------------------------------------------------------------
// Execute kernels
// ---------------------------------------------------------------------------

template <int K>
void JunctionTreePlan::ComputeBagTableK(const Bag& bag, const double* vals,
                                        const double* arena,
                                        double* table) const {
  constexpr size_t kSize = size_t{1} << K;
  const double* st = static_.data() + bag.static_off;
  for (size_t i = 0; i < kSize; ++i) table[i] = st[i];
  for (uint32_t vf = bag.var_begin; vf != bag.var_end; ++vf) {
    const uint32_t bit = var_factors_[vf].bit;
    const double v0 = vals[2 * vf];
    const double v1 = vals[2 * vf + 1];
    for (size_t i = 0; i < kSize; ++i) {
      table[i] *= ((i >> bit) & 1) != 0 ? v1 : v0;
    }
  }
  for (uint32_t ce = bag.child_begin; ce != bag.child_end; ++ce) {
    const ChildEdge& edge = children_[ce];
    const double* msg = arena + edge.msg_off;
    const uint32_t* map = gather_.data() + edge.gather;
    for (size_t i = 0; i < kSize; ++i) table[i] *= msg[map[i]];
  }
}

template <int K>
void JunctionTreePlan::UpStepK(const Bag& bag, const double* vals,
                               double* arena) const {
  constexpr size_t kSize = size_t{1} << K;
  double table[kSize];
  ComputeBagTableK<K>(bag, vals, arena, table);
  double* out = arena + bag.up_off;
  std::fill_n(out, size_t{1} << bag.out_count, 0.0);
  const uint32_t* map = gather_.data() + bag.out_gather;
  for (size_t i = 0; i < kSize; ++i) out[map[i]] += table[i];
}

void JunctionTreePlan::ComputeBagTableGeneric(const Bag& bag,
                                              const double* vals,
                                              const double* arena,
                                              double* table) const {
  ComputeBagBase(bag, vals, table);
  for (uint32_t ce = bag.child_begin; ce != bag.child_end; ++ce) {
    MultiplyChild(bag, children_[ce], arena, table);
  }
}

void JunctionTreePlan::ComputeBagBase(const Bag& bag, const double* vals,
                                      double* table) const {
  const size_t size = size_t{1} << bag.k;
  if (bag.static_off != kNone) {
    std::memcpy(table, static_.data() + bag.static_off,
                size * sizeof(double));
  } else {
    std::fill_n(table, size, 1.0);
    for (uint32_t si = bag.sfac_begin; si != bag.sfac_end; ++si) {
      const StaticFactor& sf = static_factors_[si];
      const uint8_t* bits = bit_pool_.data() + sf.bits_begin;
      for (size_t i = 0; i < size; ++i) {
        size_t fidx = 0;
        for (uint32_t j = 0; j < sf.bits_count; ++j) {
          fidx |= ((i >> bits[j]) & 1) << j;
        }
        table[i] *= sf.table[fidx];
      }
    }
  }
  for (uint32_t vf = bag.var_begin; vf != bag.var_end; ++vf) {
    const uint32_t bit = var_factors_[vf].bit;
    const double v0 = vals[2 * vf];
    const double v1 = vals[2 * vf + 1];
    for (size_t i = 0; i < size; ++i) {
      table[i] *= ((i >> bit) & 1) != 0 ? v1 : v0;
    }
  }
}

void JunctionTreePlan::ComputeBagTable(const Bag& bag, const double* vals,
                                       const double* arena,
                                       double* table) const {
  switch (bag.opcode) {
    case 0:
      ComputeBagTableK<0>(bag, vals, arena, table);
      break;
    case 1:
      ComputeBagTableK<1>(bag, vals, arena, table);
      break;
    case 2:
      ComputeBagTableK<2>(bag, vals, arena, table);
      break;
    case 3:
      ComputeBagTableK<3>(bag, vals, arena, table);
      break;
    default:
      ComputeBagTableGeneric(bag, vals, arena, table);
      break;
  }
}

void JunctionTreePlan::MarginalizeOut(const Bag& bag, const double* table,
                                      double* out) const {
  const size_t size = size_t{1} << bag.k;
  std::fill_n(out, size_t{1} << bag.out_count, 0.0);
  if (bag.out_gather != kNone) {
    const uint32_t* map = gather_.data() + bag.out_gather;
    for (size_t i = 0; i < size; ++i) out[map[i]] += table[i];
  } else {
    const uint8_t* bits = bit_pool_.data() + bag.out_bits_begin;
    for (size_t i = 0; i < size; ++i) {
      size_t midx = 0;
      for (uint32_t j = 0; j < bag.out_count; ++j) {
        midx |= ((i >> bits[j]) & 1) << j;
      }
      out[midx] += table[i];
    }
  }
}

void JunctionTreePlan::ResolveVarValues(const EventRegistry& registry,
                                        const Evidence& evidence,
                                        double* vals) const {
  const size_t num = var_factors_.size();
  if (evidence.empty()) {
    for (size_t i = 0; i < num; ++i) {
      const double p = registry.probability(var_factors_[i].event);
      vals[2 * i] = 1.0 - p;
      vals[2 * i + 1] = p;
    }
    return;
  }
  // Flat dense-EventId pin table (replacing the former per-Execute
  // unordered_map): 0 = free, 1 = pinned false, 2 = pinned true. Pinned
  // events contribute no probability weight, so the result is the
  // conditional P(root | pins).
  std::vector<int8_t> pinned(num_events_, 0);
  for (const auto& [e, v] : evidence) {
    if (e < num_events_) pinned[e] = v ? 2 : 1;
  }
  for (size_t i = 0; i < num; ++i) {
    const int8_t pin = pinned[var_factors_[i].event];
    if (pin == 0) {
      const double p = registry.probability(var_factors_[i].event);
      vals[2 * i] = 1.0 - p;
      vals[2 * i + 1] = p;
    } else {
      vals[2 * i] = pin == 1 ? 1.0 : 0.0;
      vals[2 * i + 1] = pin == 2 ? 1.0 : 0.0;
    }
  }
}

double JunctionTreePlan::Execute(const EventRegistry& registry,
                                 const Evidence& evidence) const {
  return Execute(registry, evidence, nullptr);
}

double JunctionTreePlan::Execute(const EventRegistry& registry,
                                 const Evidence& evidence,
                                 PlanScratch* scratch) const {
  if (trivial_) return trivial_value_;
  TUD_CHECK(build_status_ == EngineStatus::kOk)
      << "Execute on a failed plan (" << EngineStatusName(build_status_)
      << "); use ExecuteGoverned for a recoverable status";
  TUD_CHECK(!batch_) << "single-root Execute on a batch plan";

  // One bottom-up sum-product pass over the arena. With a caller
  // scratch the arena allocation is amortised away entirely — the
  // serving workers' steady state.
  std::unique_ptr<double[]> owned;
  double* arena;
  if (scratch != nullptr) {
    arena = scratch->Acquire(arena_size_);
  } else {
    if (fault::ShouldFailAllocation()) throw std::bad_alloc();
    owned.reset(new double[arena_size_]);
    arena = owned.get();
  }
  return ExecuteOnArena(registry, evidence, arena);
}

EngineStatus JunctionTreePlan::ExecuteGoverned(const EventRegistry& registry,
                                               const Evidence& evidence,
                                               PlanScratch* scratch,
                                               const QueryBudget& budget,
                                               double* value) const {
  if (build_status_ != EngineStatus::kOk) return build_status_;
  if (trivial_) {
    *value = trivial_value_;
    return EngineStatus::kOk;
  }
  TUD_CHECK(!batch_) << "single-root ExecuteGoverned on a batch plan";

  // Pre-admission: refuse a pass whose table work cannot fit the cap
  // before the arena is even acquired — the cap is an OOM guard, not
  // just a progress meter.
  if (budget.max_table_cells != 0 &&
      static_cast<double>(budget.max_table_cells) < total_cells_) {
    return EngineStatus::kResourceExhausted;
  }
  if (budget.cancelled()) return EngineStatus::kCancelled;
  if (budget.past_deadline()) return EngineStatus::kDeadlineExceeded;

  std::unique_ptr<double[]> owned;
  double* arena;
  if (scratch != nullptr) {
    arena = scratch->Acquire(arena_size_);
  } else {
    if (fault::ShouldFailAllocation()) throw std::bad_alloc();
    owned.reset(new double[arena_size_]);
    arena = owned.get();
  }
  BudgetMeter meter(budget);
  return ExecuteGovernedOnArena(registry, evidence, arena, meter, value);
}

EngineStatus JunctionTreePlan::ExecuteGovernedOnArena(
    const EventRegistry& registry, const Evidence& evidence, double* arena,
    BudgetMeter& meter, double* value) const {
  double* vals = arena + vals_off_;
  ResolveVarValues(registry, evidence, vals);
  for (uint32_t b = static_cast<uint32_t>(bags_.size()); b-- > 0;) {
    const Bag& bag = bags_[b];
    fault::MaybeDelayBag();
    const EngineStatus st = meter.Charge(uint64_t{1} << bag.k);
    if (st != EngineStatus::kOk) return st;
    const double total = UpStep(bag, vals, arena);
    if (bag.is_root) {
      *value = total;
      return EngineStatus::kOk;
    }
  }
  TUD_CHECK(false) << "tree decomposition had no root bag";
  return EngineStatus::kOk;
}

double JunctionTreePlan::UpStep(const Bag& bag, const double* vals,
                                double* arena) const {
  if (!bag.is_root) {
    // Fused small-bag kernels: table build plus marginalisation in one
    // step, every trip count a compile-time constant.
    switch (bag.opcode) {
      case 0:
        UpStepK<0>(bag, vals, arena);
        return 0.0;
      case 1:
        UpStepK<1>(bag, vals, arena);
        return 0.0;
      case 2:
        UpStepK<2>(bag, vals, arena);
        return 0.0;
      case 3:
        UpStepK<3>(bag, vals, arena);
        return 0.0;
      default:
        break;
    }
    double* table = arena + scratch_off_;
    ComputeBagTableGeneric(bag, vals, arena, table);
    MarginalizeOut(bag, table, arena + bag.up_off);
    return 0.0;
  }
  double* table = arena + scratch_off_;
  ComputeBagTable(bag, vals, arena, table);
  double total = 0.0;
  const size_t size = size_t{1} << bag.k;
  for (size_t i = 0; i < size; ++i) total += table[i];
  return total;
}

double JunctionTreePlan::ExecuteOnArena(const EventRegistry& registry,
                                        const Evidence& evidence,
                                        double* arena) const {
  // Children have larger BagIds than parents, so descending id order is
  // bottom-up; the scratch table region is reused across the (many,
  // mostly tiny) bags.
  double* vals = arena + vals_off_;
  ResolveVarValues(registry, evidence, vals);
  for (uint32_t b = static_cast<uint32_t>(bags_.size()); b-- > 0;) {
    const Bag& bag = bags_[b];
    const double total = UpStep(bag, vals, arena);
    if (bag.is_root) return total;
  }
  TUD_CHECK(false) << "tree decomposition had no root bag";
  return 0.0;
}

double JunctionTreePlan::ExecuteDelta(const EventRegistry& registry,
                                      const Evidence& evidence,
                                      const std::vector<EventId>& dirty_events,
                                      PlanDeltaState& state, EngineStats* stats,
                                      double full_fraction) const {
  if (!trivial_) {
    TUD_CHECK(build_status_ == EngineStatus::kOk)
        << "ExecuteDelta on a failed plan ("
        << EngineStatusName(build_status_)
        << "); use ExecuteDeltaGoverned for a recoverable status";
  }
  double value = 0.0;
  ExecuteDeltaImpl(registry, evidence, dirty_events, state, stats,
                   full_fraction, nullptr, &value);
  return value;
}

EngineStatus JunctionTreePlan::ExecuteDeltaGoverned(
    const EventRegistry& registry, const Evidence& evidence,
    const std::vector<EventId>& dirty_events, PlanDeltaState& state,
    const QueryBudget& budget, double* value, EngineStats* stats,
    double full_fraction) const {
  // Every non-kOk return must poison the stored pass: the caller has
  // typically consumed its dirty marks already (the incremental session
  // advances its cursor before executing), so a surviving `valid` arena
  // would serve stale values on the next call.
  if (build_status_ != EngineStatus::kOk) {
    state.valid = false;
    return build_status_;
  }
  if (!trivial_) {
    // The delta path may recompute fewer cells than a full pass, but
    // the persistent state arena holds the *whole* pass either way, so
    // the cap is checked against the full table count.
    if (budget.max_table_cells != 0 &&
        static_cast<double>(budget.max_table_cells) < total_cells_) {
      state.valid = false;
      return EngineStatus::kResourceExhausted;
    }
    if (budget.cancelled()) {
      state.valid = false;
      return EngineStatus::kCancelled;
    }
    if (budget.past_deadline()) {
      state.valid = false;
      return EngineStatus::kDeadlineExceeded;
    }
  }
  BudgetMeter meter(budget);
  return ExecuteDeltaImpl(registry, evidence, dirty_events, state, stats,
                          full_fraction, &meter, value);
}

EngineStatus JunctionTreePlan::ExecuteDeltaImpl(
    const EventRegistry& registry, const Evidence& evidence,
    const std::vector<EventId>& dirty_events, PlanDeltaState& state,
    EngineStats* stats, double full_fraction, BudgetMeter* meter,
    double* value) const {
  if (trivial_) {
    if (stats != nullptr) FillStats(stats);
    *value = trivial_value_;
    return EngineStatus::kOk;
  }
  TUD_CHECK(!batch_) << "ExecuteDelta on a batch plan";

  bool full = !state.valid || state.arena.size() != arena_size_ ||
              state.evidence != evidence;
  size_t recomputed = 0;
  if (!full) {
    double* arena = state.arena.data();
    double* vals = arena + vals_off_;

    // Mark the dirty events, skipping the ones pinned by evidence: a
    // pinned factor reads 0/1 indicators, not the registry, so a
    // probability change underneath a pin changes nothing.
    state.dirty_events.assign(num_events_, 0);
    for (EventId e : dirty_events) {
      if (e >= num_events_) continue;
      bool pinned = false;
      for (const auto& [pe, pv] : evidence) {
        if (pe == e) {
          pinned = true;
          break;
        }
      }
      if (!pinned) state.dirty_events[e] = 1;
    }

    // Refresh the resolved value pairs of dirty factors; each factor
    // whose values actually changed dirties its owning bag and the
    // bag's whole path to the root (everything else reuses the stored
    // messages — the recomputed bags read them through the arena just
    // like a full pass would).
    state.dirty_bags.assign(bags_.size(), 0);
    size_t dirty_count = 0;
    for (size_t i = 0; i < var_factors_.size(); ++i) {
      const EventId e = var_factors_[i].event;
      if (state.dirty_events[e] == 0) continue;
      const double p = registry.probability(e);
      const double v0 = 1.0 - p;
      if (vals[2 * i] == v0 && vals[2 * i + 1] == p) continue;
      vals[2 * i] = v0;
      vals[2 * i + 1] = p;
      uint32_t b = var_factor_bag_[i];
      while (b != kNone && state.dirty_bags[b] == 0) {
        state.dirty_bags[b] = 1;
        ++dirty_count;
        b = parent_of_[b];
      }
    }

    if (dirty_count == 0) {
      // No value actually moved: the stored pass is still exact.
      ++state.delta_passes;
      if (stats != nullptr) {
        FillStats(stats);
        stats->bags_visited = 0;
      }
      *value = state.result;
      return EngineStatus::kOk;
    }
    if (static_cast<double>(dirty_count) >
        full_fraction * static_cast<double>(bags_.size())) {
      // Most of the tree is dirty: one clean sweep beats repropagating
      // it piecemeal.
      full = true;
    } else {
      // Recompute only the dirty bags, bottom-up, with the exact same
      // per-bag kernels as a full pass — every clean bag's message is
      // bit-identical to what the full pass would recompute, so the
      // result is too.
      for (uint32_t b = static_cast<uint32_t>(bags_.size()); b-- > 0;) {
        const Bag& bag = bags_[b];
        if (state.dirty_bags[b] != 0 && meter != nullptr) {
          fault::MaybeDelayBag();
          const EngineStatus st = meter->Charge(uint64_t{1} << bag.k);
          if (st != EngineStatus::kOk) {
            // The arena now mixes refreshed values with stale messages:
            // poison the state so the next call runs a full pass.
            state.valid = false;
            return st;
          }
        }
        if (bag.is_root) {
          if (state.dirty_bags[b] != 0) {
            state.result = UpStep(bag, vals, arena);
            ++recomputed;
          }
          break;
        }
        if (state.dirty_bags[b] == 0) continue;
        UpStep(bag, vals, arena);
        ++recomputed;
      }
      ++state.delta_passes;
      state.bags_recomputed += recomputed;
      if (stats != nullptr) {
        FillStats(stats);
        stats->bags_visited = recomputed;
      }
      *value = state.result;
      return EngineStatus::kOk;
    }
  }

  state.arena.resize(arena_size_);
  if (meter != nullptr) {
    state.valid = false;  // Invalid until the governed pass completes.
    const EngineStatus st = ExecuteGovernedOnArena(
        registry, evidence, state.arena.data(), *meter, &state.result);
    if (st != EngineStatus::kOk) return st;
  } else {
    state.result = ExecuteOnArena(registry, evidence, state.arena.data());
  }
  state.evidence = evidence;
  state.valid = true;
  ++state.full_passes;
  if (stats != nullptr) FillStats(stats);
  *value = state.result;
  return EngineStatus::kOk;
}

std::vector<double> JunctionTreePlan::ExecuteBatch(
    const EventRegistry& registry, const Evidence& evidence,
    EngineStats* stats, PlanScratch* scratch) const {
  if (!trivial_) {
    TUD_CHECK(build_status_ == EngineStatus::kOk)
        << "ExecuteBatch on a failed plan ("
        << EngineStatusName(build_status_)
        << "); use ExecuteBatchGoverned for a recoverable status";
  }
  std::vector<double> result;
  ExecuteBatchImpl(registry, evidence, stats, scratch, nullptr, &result);
  return result;
}

EngineStatus JunctionTreePlan::ExecuteBatchGoverned(
    const EventRegistry& registry, const Evidence& evidence,
    PlanScratch* scratch, const QueryBudget& budget,
    std::vector<double>* values, EngineStats* stats) const {
  if (build_status_ != EngineStatus::kOk) return build_status_;
  if (!trivial_) {
    // Calibration is an upward and a (pruned) downward pass: admit only
    // if twice the table count fits the cap, before touching the arena.
    if (budget.max_table_cells != 0 &&
        static_cast<double>(budget.max_table_cells) < 2.0 * total_cells_) {
      return EngineStatus::kResourceExhausted;
    }
    if (budget.cancelled()) return EngineStatus::kCancelled;
    if (budget.past_deadline()) return EngineStatus::kDeadlineExceeded;
  }
  BudgetMeter meter(budget);
  return ExecuteBatchImpl(registry, evidence, stats, scratch, &meter, values);
}

EngineStatus JunctionTreePlan::ExecuteBatchImpl(
    const EventRegistry& registry, const Evidence& evidence,
    EngineStats* stats, PlanScratch* scratch, BudgetMeter* meter,
    std::vector<double>* values) const {
  TUD_CHECK(batch_) << "ExecuteBatch requires a BuildBatch plan";
  std::vector<double> result(query_roots_.size(), 0.0);
  size_t visited = 0;
  if (!trivial_) {
    std::unique_ptr<double[]> owned;
    double* arena;
    if (scratch != nullptr) {
      arena = scratch->Acquire(arena_size_);
    } else {
      if (fault::ShouldFailAllocation()) throw std::bad_alloc();
      owned.reset(new double[arena_size_]);
      arena = owned.get();
    }
    double* vals = arena + vals_off_;
    ResolveVarValues(registry, evidence, vals);
    double* base = arena + scratch_off_;
    double* tmp = base + (size_t{1} << max_k_);

    // Upward (collect) pass; query bags keep their full table.
    for (uint32_t b = static_cast<uint32_t>(bags_.size()); b-- > 0;) {
      const Bag& bag = bags_[b];
      if (meter != nullptr) {
        fault::MaybeDelayBag();
        const EngineStatus st = meter->Charge(uint64_t{1} << bag.k);
        if (st != EngineStatus::kOk) return st;
      }
      ++visited;
      if (!bag.is_root && bag.table_off == kNone) {
        switch (bag.opcode) {
          case 0:
            UpStepK<0>(bag, vals, arena);
            continue;
          case 1:
            UpStepK<1>(bag, vals, arena);
            continue;
          case 2:
            UpStepK<2>(bag, vals, arena);
            continue;
          case 3:
            UpStepK<3>(bag, vals, arena);
            continue;
          default:
            break;
        }
      }
      double* table =
          bag.table_off != kNone ? arena + bag.table_off : base;
      ComputeBagTable(bag, vals, arena, table);
      if (!bag.is_root) MarginalizeOut(bag, table, arena + bag.up_off);
    }

    // Downward (distribute) pass, pruned to subtrees containing query
    // bags. The message to child c is the bag's base (static x variable
    // factors x parent's downward message) times every *other* child's
    // upward message, marginalised onto c's separator — products, never
    // divisions, so deterministic zeros are safe.
    for (uint32_t b = 0; b < bags_.size(); ++b) {
      const Bag& bag = bags_[b];
      if (!bag.subtree_has_query) continue;
      bool any = false;
      for (uint32_t ce = bag.child_begin; ce != bag.child_end && !any; ++ce) {
        any = bags_[children_[ce].child].subtree_has_query;
      }
      if (!any) continue;
      if (meter != nullptr) {
        fault::MaybeDelayBag();
        const EngineStatus st = meter->Charge(uint64_t{1} << bag.k);
        if (st != EngineStatus::kOk) return st;
      }
      ComputeBagBase(bag, vals, base);
      if (bag.down_off != kNone) {
        ApplyDown(bag, arena + bag.down_off, base);
      }
      ++visited;
      const size_t size = size_t{1} << bag.k;
      for (uint32_t ce = bag.child_begin; ce != bag.child_end; ++ce) {
        const Bag& child = bags_[children_[ce].child];
        if (!child.subtree_has_query) continue;
        std::memcpy(tmp, base, size * sizeof(double));
        for (uint32_t other = bag.child_begin; other != bag.child_end;
             ++other) {
          if (other == ce) continue;
          MultiplyChild(bag, children_[other], arena, tmp);
        }
        MarginalizeEdge(bag, children_[ce], tmp,
                        arena + child.down_off);
      }
    }

    // Per-root beliefs: kept upward table times the downward message,
    // marginalised to the root vertex's bit and normalised (the
    // normaliser is 1 up to rounding; with evidence it stays 1 because
    // pinned indicator factors carry no weight).
    for (size_t qi = 0; qi < query_roots_.size(); ++qi) {
      const QueryRoot& qr = query_roots_[qi];
      if (qr.trivial_value >= 0) {
        result[qi] = qr.trivial_value;
        continue;
      }
      const Bag& bag = bags_[qr.bag];
      const double* table = arena + bag.table_off;
      const double* down =
          bag.down_off != kNone ? arena + bag.down_off : nullptr;
      const size_t size = size_t{1} << bag.k;
      double p1 = 0.0, total = 0.0;
      for (size_t i = 0; i < size; ++i) {
        double w = table[i];
        if (down != nullptr) {
          size_t midx;
          if (bag.out_gather != kNone) {
            midx = gather_[bag.out_gather + i];
          } else {
            midx = 0;
            const uint8_t* bits = bit_pool_.data() + bag.out_bits_begin;
            for (uint32_t j = 0; j < bag.out_count; ++j) {
              midx |= ((i >> bits[j]) & 1) << j;
            }
          }
          w *= down[midx];
        }
        total += w;
        if (((i >> qr.bit) & 1) != 0) p1 += w;
      }
      result[qi] = total > 0.0 ? p1 / total : 0.0;
    }
  } else {
    for (size_t qi = 0; qi < query_roots_.size(); ++qi) {
      result[qi] = query_roots_[qi].trivial_value;
    }
  }
  if (stats != nullptr) {
    stats->batch_size = query_roots_.size();
    stats->bags_visited = visited;
    stats->max_table = trivial_ ? 0 : size_t{1} << max_k_;
  }
  *values = std::move(result);
  return EngineStatus::kOk;
}

void JunctionTreePlan::ApplyDown(const Bag& bag, const double* down,
                                 double* table) const {
  const size_t size = size_t{1} << bag.k;
  if (bag.out_gather != kNone) {
    const uint32_t* map = gather_.data() + bag.out_gather;
    for (size_t i = 0; i < size; ++i) table[i] *= down[map[i]];
  } else {
    const uint8_t* bits = bit_pool_.data() + bag.out_bits_begin;
    for (size_t i = 0; i < size; ++i) {
      size_t midx = 0;
      for (uint32_t j = 0; j < bag.out_count; ++j) {
        midx |= ((i >> bits[j]) & 1) << j;
      }
      table[i] *= down[midx];
    }
  }
}

void JunctionTreePlan::MultiplyChild(const Bag& bag, const ChildEdge& edge,
                                     const double* arena,
                                     double* table) const {
  const size_t size = size_t{1} << bag.k;
  const double* msg = arena + edge.msg_off;
  if (edge.gather != kNone) {
    const uint32_t* map = gather_.data() + edge.gather;
    for (size_t i = 0; i < size; ++i) table[i] *= msg[map[i]];
  } else {
    const uint8_t* bits = bit_pool_.data() + edge.bits_begin;
    for (size_t i = 0; i < size; ++i) {
      size_t midx = 0;
      for (uint32_t j = 0; j < edge.bits_count; ++j) {
        midx |= ((i >> bits[j]) & 1) << j;
      }
      table[i] *= msg[midx];
    }
  }
}

void JunctionTreePlan::MarginalizeEdge(const Bag& bag, const ChildEdge& edge,
                                       const double* table,
                                       double* out) const {
  const size_t size = size_t{1} << bag.k;
  std::fill_n(out, size_t{1} << edge.bits_count, 0.0);
  if (edge.gather != kNone) {
    const uint32_t* map = gather_.data() + edge.gather;
    for (size_t i = 0; i < size; ++i) out[map[i]] += table[i];
  } else {
    const uint8_t* bits = bit_pool_.data() + edge.bits_begin;
    for (size_t i = 0; i < size; ++i) {
      size_t midx = 0;
      for (uint32_t j = 0; j < edge.bits_count; ++j) {
        midx |= ((i >> bits[j]) & 1) << j;
      }
      out[midx] += table[i];
    }
  }
}

// ---------------------------------------------------------------------------
// Diagnostics and test hooks
// ---------------------------------------------------------------------------

void JunctionTreePlan::FillStats(EngineStats* stats) const {
  if (stats == nullptr) return;
  *stats = EngineStats{};
  stats->width = trivial_ ? 0 : width_;
  stats->num_bags = bags_.size();
  stats->num_gates = num_gates_;
  stats->batch_size = batch_size();
  stats->max_table = trivial_ ? 0 : size_t{1} << max_k_;
  stats->bags_visited = bags_.size();
}

void JunctionTreePlan::ForceGenericKernelsForTest() {
  for (Bag& bag : bags_) bag.opcode = kOpGeneric;
}

void JunctionTreePlan::ForceBitLoopsForTest() {
  ForceGenericKernelsForTest();
  for (Bag& bag : bags_) bag.out_gather = kNone;
  for (ChildEdge& edge : children_) edge.gather = kNone;
}

void JunctionTreePlan::SetKernelThresholdsForTest(int fuse_max_k,
                                                  int gather_max_k) {
  if (fuse_max_k >= 0) g_fuse_max_k = fuse_max_k;
  if (gather_max_k >= 0) g_gather_max_k = gather_max_k;
}

// ---------------------------------------------------------------------------
// ConcurrentPlanCache
// ---------------------------------------------------------------------------

ConcurrentPlanCache::~ConcurrentPlanCache() {
  for (Shard& shard : shards_) {
    // No concurrent readers may remain at destruction (standard object
    // lifetime); reclaim the published snapshot alongside the retired
    // ones.
    delete shard.published.load(std::memory_order_relaxed);
  }
}

const JunctionTreePlan* ConcurrentPlanCache::Lookup(GateId root) const {
  const Shard& shard = ShardFor(root);
  const Map* snapshot = shard.published.load(std::memory_order_acquire);
  if (snapshot == nullptr) return nullptr;
  auto it = snapshot->find(root);
  return it == snapshot->end() ? nullptr : it->second.plan.get();
}

const JunctionTreePlan* ConcurrentPlanCache::GetOrBuild(
    const BoolCircuit& circuit, GateId root, const QueryBudget* budget) {
  TUD_CHECK_LT(root, circuit.NumGates());
  Shard& shard = ShardFor(root);

  // Hot path: one acquire load of the immutable snapshot, no locks.
  if (const Map* snapshot = shard.published.load(std::memory_order_acquire)) {
    auto it = snapshot->find(root);
    if (it != snapshot->end()) {
      TUD_CHECK(it->second.root_kind == circuit.kind(root))
          << "cached plan does not match the circuit it is executed against";
      return it->second.plan.get();
    }
  }

  // Cold path: become the builder or wait on the builder's latch, so a
  // thundering herd of identical cold queries costs exactly one Build.
  std::shared_ptr<Inflight> latch;
  bool builder = false;
  {
    std::lock_guard<std::mutex> lock(shard.write_mu);
    // Re-check under the lock: the plan may have been published between
    // the lock-free probe and here.
    if (const Map* snapshot =
            shard.published.load(std::memory_order_relaxed)) {
      auto it = snapshot->find(root);
      if (it != snapshot->end()) {
        TUD_CHECK(it->second.root_kind == circuit.kind(root))
            << "cached plan does not match the circuit it is executed "
               "against";
        return it->second.plan.get();
      }
    }
    auto it = shard.inflight.find(root);
    if (it == shard.inflight.end()) {
      latch = std::make_shared<Inflight>();
      shard.inflight.emplace(root, latch);
      builder = true;
    } else {
      latch = it->second;
    }
  }

  if (!builder) {
    std::unique_lock<std::mutex> lock(latch->mu);
    latch->cv.wait(lock, [&] { return latch->done; });
    if (latch->failed) {
      throw std::runtime_error(
          "junction-tree plan build failed (builder threw)");
    }
    if (latch->plan == nullptr) {
      // The builder's plan was refused by *its* budget and not
      // published; retry under this caller's own budget (either as the
      // new builder or against a now-published entry).
      lock.unlock();
      return GetOrBuild(circuit, root, budget);
    }
    return latch->plan;
  }

  // Build outside every lock: other roots keep hitting, other threads
  // for this root park on the latch. If Build throws (a real or
  // injected bad_alloc), fail the latch so waiters raise instead of
  // hanging, clear the inflight slot so the next request retries, and
  // rethrow to this caller.
  std::shared_ptr<const JunctionTreePlan> plan;
  try {
    plan = std::make_shared<const JunctionTreePlan>(
        budget != nullptr
            ? JunctionTreePlan::Build(
                  JunctionTreeAnalysis::Analyze(circuit, root),
                  seed_topological_, *budget)
            : JunctionTreePlan::Build(circuit, root, seed_topological_));
  } catch (...) {
    {
      std::lock_guard<std::mutex> lock(shard.write_mu);
      shard.inflight.erase(root);
    }
    {
      std::lock_guard<std::mutex> lock(latch->mu);
      latch->done = true;
      latch->failed = true;
    }
    latch->cv.notify_all();
    throw;
  }
  builds_.fetch_add(1, std::memory_order_relaxed);
  const JunctionTreePlan* raw = plan.get();
  // Intrinsic outcomes (healthy plans *and* too-wide failures) are
  // published — the failure is a property of the root, so caching it
  // spares every later caller the width discovery. Budget-limited
  // refusals are kept unpublished: another caller's budget may admit
  // this root, and a negative entry would wrongly fail it.
  const bool publish = !plan->build_limited_by_budget();
  {
    std::lock_guard<std::mutex> lock(shard.write_mu);
    if (publish) {
      const Map* old = shard.published.load(std::memory_order_relaxed);
      auto next = std::make_unique<Map>(old != nullptr ? *old : Map{});
      (*next)[root] = Entry{std::move(plan), circuit.kind(root)};
      shard.published.store(next.release(), std::memory_order_release);
      if (old != nullptr) {
        shard.retired.emplace_back(old);
      }
    } else {
      shard.unpublished.push_back(std::move(plan));
    }
    shard.inflight.erase(root);
  }
  {
    std::lock_guard<std::mutex> lock(latch->mu);
    latch->done = true;
    latch->plan = publish ? raw : nullptr;
  }
  latch->cv.notify_all();
  return raw;
}

void ConcurrentPlanCache::Invalidate(GateId root) {
  Shard& shard = ShardFor(root);
  std::lock_guard<std::mutex> lock(shard.write_mu);
  const Map* old = shard.published.load(std::memory_order_relaxed);
  if (old == nullptr) return;
  auto it = old->find(root);
  if (it == old->end()) return;
  auto next = std::make_unique<Map>(*old);
  next->erase(root);
  shard.published.store(next.release(), std::memory_order_release);
  // Retire-not-free: the superseded snapshot (and, through its
  // shared_ptr entries, the invalidated plan) stays alive for readers
  // that already hold it; only new lookups miss.
  shard.retired.emplace_back(old);
}

void ConcurrentPlanCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.write_mu);
    const Map* old = shard.published.load(std::memory_order_relaxed);
    if (old == nullptr) continue;
    shard.published.store(nullptr, std::memory_order_release);
    shard.retired.emplace_back(old);
  }
}

size_t ConcurrentPlanCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    const Map* snapshot = shard.published.load(std::memory_order_acquire);
    if (snapshot != nullptr) total += snapshot->size();
  }
  return total;
}

// ---------------------------------------------------------------------------
// One-shot conveniences
// ---------------------------------------------------------------------------

double JunctionTreeProbability(const BoolCircuit& circuit, GateId root,
                               const EventRegistry& registry,
                               EngineStats* stats) {
  JunctionTreePlan plan = JunctionTreePlan::Build(circuit, root);
  plan.FillStats(stats);
  return plan.Execute(registry);
}

double JunctionTreeProbabilityWithEvidence(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           const Evidence& evidence,
                                           EngineStats* stats) {
  JunctionTreePlan plan = JunctionTreePlan::Build(circuit, root);
  plan.FillStats(stats);
  return plan.Execute(registry, evidence);
}

double JunctionTreeProbabilitySeeded(const BoolCircuit& circuit, GateId root,
                                     const EventRegistry& registry,
                                     const Evidence& evidence,
                                     EngineStats* stats) {
  JunctionTreePlan plan =
      JunctionTreePlan::Build(circuit, root, /*seed_topological=*/true);
  plan.FillStats(stats);
  return plan.Execute(registry, evidence);
}

}  // namespace tud
