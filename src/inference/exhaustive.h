#ifndef TUD_INFERENCE_EXHAUSTIVE_H_
#define TUD_INFERENCE_EXHAUSTIVE_H_

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "util/budget.h"

namespace tud {

/// Exact probability that gate `root` is true, by enumerating all 2^n
/// valuations of the events appearing under `root` (not all registry
/// events, so this scales with the *cone*). Requires at most 30 such
/// events. This is the naive baseline and the ground truth for tests.
double ExhaustiveProbability(const BoolCircuit& circuit, GateId root,
                             const EventRegistry& registry);

/// Budget-governed variant: charges one cell per enumerated valuation
/// against `meter` and polls cancellation/deadline through it. A cone of
/// more than 30 events returns kResourceExhausted (recoverable) instead
/// of aborting. On kOk, `*value` holds the exact probability.
EngineStatus ExhaustiveProbabilityGoverned(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           BudgetMeter& meter, double* value);

}  // namespace tud

#endif  // TUD_INFERENCE_EXHAUSTIVE_H_
