#include "inference/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>
#include <thread>

#include "bdd/bdd.h"
#include "inference/conditioning.h"
#include "inference/exhaustive.h"
#include "inference/hybrid.h"
#include "inference/junction_tree.h"
#include "inference/sampling.h"
#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "util/check.h"

namespace tud {

namespace {

/// Restricts the cone by pinning the evidence literals to constants:
/// the probability of the restricted root is exactly the conditional
/// P(root | pins) (pinned events carry no weight). Engines without a
/// native evidence path all condition this way.
std::pair<BoolCircuit, GateId> PinEvidence(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           const Evidence& evidence) {
  std::vector<std::optional<bool>> fixed(registry.size());
  for (const auto& [e, v] : evidence) {
    TUD_CHECK_LT(e, fixed.size());
    fixed[e] = v;
  }
  return RestrictCircuit(circuit, root, fixed);
}

size_t CountConeEvents(const BoolCircuit& circuit, GateId root) {
  std::vector<bool> seen(circuit.NumEvents(), false);
  size_t count = 0;
  for (GateId g : circuit.ReachableFrom(root)) {
    if (circuit.kind(g) != GateKind::kVar) continue;
    EventId e = circuit.var(g);
    if (!seen[e]) {
      seen[e] = true;
      ++count;
    }
  }
  return count;
}

}  // namespace

std::vector<EngineResult> ProbabilityEngine::EstimateBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence) {
  std::vector<EngineResult> results;
  results.reserve(roots.size());
  for (GateId root : roots) {
    results.push_back(Estimate(circuit, root, registry, evidence));
    results.back().stats.batch_size = roots.size();
  }
  return results;
}

// ---------------------------------------------------------------------------
// Exact adapters
// ---------------------------------------------------------------------------

EngineResult ExhaustiveEngine::Estimate(const BoolCircuit& circuit,
                                        GateId root,
                                        const EventRegistry& registry,
                                        const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    result.value = ExhaustiveProbability(restricted, restricted_root,
                                         registry);
    result.stats.cone_events = CountConeEvents(restricted, restricted_root);
    return result;
  }
  result.value = ExhaustiveProbability(circuit, root, registry);
  result.stats.cone_events = CountConeEvents(circuit, root);
  return result;
}

// One reusable Execute arena per OS thread: the message pass becomes
// allocation-free in steady state no matter how many threads share the
// engine, without any cross-thread coordination.
static PlanScratch* ThreadScratch() {
  static thread_local PlanScratch scratch;
  return &scratch;
}

JunctionTreeEngine::JunctionTreeEngine(bool seed_topological,
                                       bool cache_plans,
                                       unsigned batch_threads)
    : seed_topological_(seed_topological),
      cache_plans_(cache_plans),
      batch_threads_(batch_threads == 0 ? 1 : batch_threads) {
  if (cache_plans_) {
    cache_ = std::make_unique<ConcurrentPlanCache>(seed_topological_);
  }
}

JunctionTreeEngine::~JunctionTreeEngine() = default;

void JunctionTreeEngine::BindCircuit(const BoolCircuit& circuit) {
  // Plan caching is only sound against one append-only circuit: a gate's
  // cone never changes once created, but another circuit's gate ids mean
  // something else entirely. The bind is an atomic CAS so any number of
  // threads can race to be first.
  const BoolCircuit* expected = nullptr;
  if (!bound_circuit_.compare_exchange_strong(expected, &circuit,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    TUD_CHECK(expected == &circuit)
        << "a plan-caching JunctionTreeEngine is bound to its first circuit";
  }
}

const JunctionTreePlan* JunctionTreeEngine::PlanFor(const BoolCircuit& circuit,
                                                    GateId root) {
  // Build-once publication and the root-kind revalidation (guarding the
  // case pointer identity cannot: the bound circuit destroyed and a
  // different one reallocated at the same address) both live in the
  // concurrent cache.
  return cache_->GetOrBuild(circuit, root);
}

void JunctionTreeEngine::Prewarm(const BoolCircuit& circuit, GateId root) {
  TUD_CHECK(cache_plans_) << "Prewarm requires a plan-caching engine";
  BindCircuit(circuit);
  PlanFor(circuit, root);
}

EngineResult JunctionTreeEngine::Estimate(const BoolCircuit& circuit,
                                          GateId root,
                                          const EventRegistry& registry,
                                          const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (!cache_plans_) {
    JunctionTreePlan plan =
        JunctionTreePlan::Build(circuit, root, seed_topological_);
    plan.FillStats(&result.stats);
    result.value = plan.Execute(registry, evidence, ThreadScratch());
    return result;
  }
  BindCircuit(circuit);
  const JunctionTreePlan* plan = PlanFor(circuit, root);
  plan->FillStats(&result.stats);
  result.value = plan->Execute(registry, evidence, ThreadScratch());
  return result;
}

std::vector<EngineResult> JunctionTreeEngine::EstimateBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence) {
  std::vector<EngineResult> results(roots.size());
  if (roots.empty()) return results;

  if (batch_threads_ > 1) {
    // Per-root plans executed across threads. Plans are built (and
    // cached) up front; Execute is const and keeps all mutable state in
    // a per-call arena, so the parallel section only reads.
    std::vector<std::shared_ptr<const JunctionTreePlan>> owned;
    std::vector<const JunctionTreePlan*> plans;
    plans.reserve(roots.size());
    if (cache_plans_) {
      BindCircuit(circuit);
      for (GateId root : roots) plans.push_back(PlanFor(circuit, root));
    } else {
      owned.reserve(roots.size());
      for (GateId root : roots) {
        owned.push_back(std::make_shared<const JunctionTreePlan>(
            JunctionTreePlan::Build(circuit, root, seed_topological_)));
        plans.push_back(owned.back().get());
      }
    }
    const size_t num_threads =
        std::min<size_t>(batch_threads_, roots.size());
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t i = t; i < roots.size(); i += num_threads) {
          EngineResult& result = results[i];
          result.engine = name();
          plans[i]->FillStats(&result.stats);
          result.stats.batch_size = roots.size();
          result.value = plans[i]->Execute(registry, evidence,
                                           ThreadScratch());
        }
      });
    }
    for (std::thread& w : workers) w.join();
    return results;
  }

  // Shared pass only when the union decomposition stays narrow: roots
  // whose cones overlap heavily (sub-lineages of one query, boolean
  // combinations over common bases) share one calibrating pass, while
  // multi-track unions — cones coupled only through their event
  // variables, whose widths add up — fall back to per-root cached
  // plans, which is exactly the sequential cost, never worse.
  constexpr int kSharedBatchMaxWidth = 12;
  std::shared_ptr<const JunctionTreePlan> plan;  // null = per-root.
  bool decided = false;
  if (cache_plans_) {
    BindCircuit(circuit);
    for (GateId root : roots) TUD_CHECK_LT(root, circuit.NumGates());
    // Lock-free read of the published decision/plan snapshot.
    std::shared_ptr<const BatchMap> snapshot =
        batch_published_.load(std::memory_order_acquire);
    if (snapshot != nullptr) {
      auto it = snapshot->find(roots);
      if (it != snapshot->end()) {
        // Root-kind revalidation on every hit, as for single plans: it
        // guards the case pointer identity cannot (the bound circuit was
        // destroyed and another reallocated at the same address).
        for (size_t i = 0; i < roots.size(); ++i) {
          TUD_CHECK(it->second.root_kinds[i] == circuit.kind(roots[i]))
              << "cached batch plan does not match the circuit it is "
                 "executed against";
        }
        plan = it->second.plan;
        decided = true;
      }
    }
  }
  if (!decided) {
    JunctionTreeAnalysis analysis =
        JunctionTreeAnalysis::AnalyzeBatch(circuit, roots);
    if (analysis.trivial() ||
        analysis.MinDegreeWidth() <= kSharedBatchMaxWidth) {
      plan = std::make_shared<const JunctionTreePlan>(
          JunctionTreePlan::BuildBatch(std::move(analysis),
                                       seed_topological_));
    }
    if (cache_plans_) {
      // Copy-on-write publication under the writer mutex. Concurrent
      // misses for the same new root set may both build; one insert
      // wins, the other becomes the winner's value — benign, identical
      // plans.
      std::vector<GateKind> kinds;
      kinds.reserve(roots.size());
      for (GateId root : roots) kinds.push_back(circuit.kind(root));
      std::lock_guard<std::mutex> lock(batch_mu_);
      std::shared_ptr<const BatchMap> old =
          batch_published_.load(std::memory_order_relaxed);
      auto next = old != nullptr && old->size() < kMaxBatchPlans
                      ? std::make_shared<BatchMap>(*old)
                      : std::make_shared<BatchMap>();
      next->insert_or_assign(roots, CachedBatchPlan{plan, std::move(kinds)});
      batch_published_.store(std::move(next), std::memory_order_release);
    }
  }
  if (plan == nullptr) {
    // Wide union: per-root cached plans at exactly the sequential cost
    // — the base-class loop over Estimate.
    return ProbabilityEngine::EstimateBatch(circuit, roots, registry,
                                            evidence);
  }
  EngineStats batch_stats;
  plan->FillStats(&batch_stats);
  std::vector<double> values =
      plan->ExecuteBatch(registry, evidence, &batch_stats, ThreadScratch());
  for (size_t i = 0; i < roots.size(); ++i) {
    results[i].engine = name();
    results[i].value = values[i];
    results[i].stats = batch_stats;
  }
  return results;
}

EngineResult BddEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                 const EventRegistry& registry,
                                 const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  auto [cone, cone_root] = evidence.empty()
                               ? circuit.ExtractCone(root)
                               : PinEvidence(circuit, root, registry,
                                             evidence);
  const uint32_t num_levels = static_cast<uint32_t>(registry.size());
  std::vector<uint32_t> levels(num_levels);
  std::vector<double> probs(num_levels);
  for (uint32_t e = 0; e < num_levels; ++e) {
    levels[e] = e;
    probs[e] = registry.probability(e);
  }
  BddManager manager(num_levels);
  BddRef f = manager.FromCircuit(cone, cone_root, levels);
  result.value = manager.Wmc(f, probs);
  result.stats.bdd_nodes = manager.NumNodes();
  result.stats.cone_events = CountConeEvents(cone, cone_root);
  return result;
}

EngineResult ConditioningEngine::Estimate(const BoolCircuit& circuit,
                                          GateId root,
                                          const EventRegistry& registry,
                                          const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (evidence.empty()) {
    result.value =
        JunctionTreeProbability(circuit, root, registry, &result.stats);
    return result;
  }
  // The §4 route: materialise the observation as a gate and compute
  // P(root ∧ obs) / P(obs) with two message-passing runs. Works on a
  // copy — the adapter's contract is not to grow the caller's circuit.
  BoolCircuit working = circuit;
  std::vector<GateId> literals;
  literals.reserve(evidence.size());
  for (const auto& [e, v] : evidence) {
    GateId var = working.AddVar(e);
    literals.push_back(v ? var : working.AddNot(var));
  }
  GateId observation = working.AddAnd(std::move(literals));
  std::optional<double> conditional =
      ConditionalProbability(working, root, observation, registry);
  TUD_CHECK(conditional.has_value())
      << "conditioning on a zero-probability observation";
  result.value = *conditional;
  return result;
}

// ---------------------------------------------------------------------------
// Sampling-based adapters
// ---------------------------------------------------------------------------

EngineResult SamplingEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                      const EventRegistry& registry,
                                      const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  result.stats.num_samples = num_samples_;
  double p;
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    p = SampleProbability(restricted, restricted_root, registry, num_samples_,
                          rng_);
  } else {
    p = SampleProbability(circuit, root, registry, num_samples_, rng_);
  }
  result.value = p;
  // Normal approximation, with the rule-of-three at the degenerate
  // empirical extremes (p-hat of exactly 0 or 1 would otherwise report
  // error 0, i.e. claim an unconverged estimate is exact).
  result.error_bound = p > 0.0 && p < 1.0
                           ? 1.96 * std::sqrt(p * (1.0 - p) / num_samples_)
                           : 3.0 / num_samples_;
  return result;
}

EngineResult HybridEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                    const EventRegistry& registry,
                                    const Evidence& evidence) {
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    Evidence none;
    return Estimate(restricted, restricted_root, registry, none);
  }
  return EstimateWithCore(
      circuit, root, registry,
      SelectCoreEvents(circuit, root, target_width_, max_core_));
}

EngineResult HybridEngine::EstimateWithCore(const BoolCircuit& circuit,
                                            GateId root,
                                            const EventRegistry& registry,
                                            const std::vector<EventId>& core) {
  if (core.empty()) {
    // Already narrow: one exact message-passing run, no sampling.
    EngineResult result;
    result.engine = name();
    result.value =
        JunctionTreeProbability(circuit, root, registry, &result.stats);
    return result;
  }
  EngineResult result =
      HybridProbability(circuit, root, registry, core, num_samples_, rng_);
  result.engine = name();
  return result;
}

// ---------------------------------------------------------------------------
// AutoEngine
// ---------------------------------------------------------------------------

AutoEngine::AutoEngine(const Limits& limits)
    : limits_(limits),
      hybrid_(limits.hybrid_target_width, limits.hybrid_max_core,
              limits.hybrid_num_samples, limits.seed),
      sampling_(limits.sampling_num_samples, limits.seed) {}

EngineResult AutoEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                  const EventRegistry& registry,
                                  const Evidence& evidence) {
  if (!evidence.empty()) {
    // Pin once, then plan on the restricted circuit: pinning both
    // shrinks the cone and is how every delegate would condition anyway.
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    return Plan(restricted, restricted_root, registry);
  }
  return Plan(circuit, root, registry);
}

EngineResult AutoEngine::Plan(const BoolCircuit& circuit, GateId root,
                              const EventRegistry& registry) {
  const size_t cone_events = CountConeEvents(circuit, root);
  if (cone_events <= limits_.exhaustive_max_events) {
    return exhaustive_.Estimate(circuit, root, registry);
  }
  if (cone_events <= limits_.bdd_max_events) {
    return bdd_.Estimate(circuit, root, registry);
  }

  // Cheap width estimate of the binarised cone's primal graph — the
  // analysis *is* the first half of a junction-tree Build, so when
  // message passing is chosen the decomposition work is handed to the
  // plan instead of being recomputed.
  JunctionTreeAnalysis analysis = JunctionTreeAnalysis::Analyze(circuit, root);
  const int width = analysis.trivial() ? 0 : analysis.MinDegreeWidth();
  if (width <= limits_.jt_max_width) {
    JunctionTreePlan plan = JunctionTreePlan::Build(
        std::move(analysis), limits_.seed_topological);
    EngineResult result;
    result.engine = "junction_tree";
    plan.FillStats(&result.stats);
    result.value = plan.Execute(registry);
    result.stats.cone_events = cone_events;
    return result;
  }
  std::vector<EventId> core = SelectCoreEvents(
      circuit, root, limits_.hybrid_target_width, limits_.hybrid_max_core);
  if (!core.empty()) {
    // Only worth the per-sample exact runs if the core actually tames
    // the width; SelectCoreEvents stops early when it cannot.
    std::vector<std::optional<bool>> fixed(registry.size());
    for (EventId e : core) fixed[e] = true;
    auto [restricted, restricted_root] =
        RestrictCircuit(circuit, root, fixed);
    auto [rbin, rremap] = restricted.Binarize();
    GateId rroot = rremap[restricted_root];
    int rwidth = 0;
    if (rbin.kind(rroot) != GateKind::kConst) {
      Graph rgraph(static_cast<uint32_t>(rbin.NumGates()));
      for (const auto& [a, b] : rbin.PrimalEdges()) rgraph.AddEdge(a, b);
      rwidth = static_cast<int>(
          EliminationWidth(rgraph, CircuitMinDegreeOrder(rgraph)));
    }
    if (rwidth <= limits_.jt_max_width) {
      // Hand the selected core over: the hybrid engine would otherwise
      // repeat the whole SelectCoreEvents restrict/min-fill loop.
      EngineResult result =
          hybrid_.EstimateWithCore(circuit, root, registry, core);
      result.stats.cone_events = cone_events;
      return result;
    }
  }
  EngineResult result = sampling_.Estimate(circuit, root, registry);
  result.stats.cone_events = cone_events;
  return result;
}

std::unique_ptr<ProbabilityEngine> MakeAutoEngine() {
  return std::make_unique<AutoEngine>();
}

}  // namespace tud
