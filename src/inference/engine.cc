#include "inference/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <thread>

#include "bdd/bdd.h"
#include "inference/conditioning.h"
#include "inference/exhaustive.h"
#include "inference/hybrid.h"
#include "inference/junction_tree.h"
#include "inference/sampling.h"
#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "util/check.h"

namespace tud {

namespace {

/// Restricts the cone by pinning the evidence literals to constants:
/// the probability of the restricted root is exactly the conditional
/// P(root | pins) (pinned events carry no weight). Engines without a
/// native evidence path all condition this way.
std::pair<BoolCircuit, GateId> PinEvidence(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           const Evidence& evidence) {
  std::vector<std::optional<bool>> fixed(registry.size());
  for (const auto& [e, v] : evidence) {
    TUD_CHECK_LT(e, fixed.size());
    fixed[e] = v;
  }
  return RestrictCircuit(circuit, root, fixed);
}

size_t CountConeEvents(const BoolCircuit& circuit, GateId root) {
  std::vector<bool> seen(circuit.NumEvents(), false);
  size_t count = 0;
  for (GateId g : circuit.ReachableFrom(root)) {
    if (circuit.kind(g) != GateKind::kVar) continue;
    EventId e = circuit.var(g);
    if (!seen[e]) {
      seen[e] = true;
      ++count;
    }
  }
  return count;
}

/// BuildImpl's hard cap on exact message passing (bags of up to 26
/// vertices): a union whose min-degree estimate exceeds it cannot be
/// built, so the cost model prices it as infinite. The built plan's
/// width never exceeds the min-degree estimate (min-fill only replaces
/// the order when strictly narrower), so gating on the estimate is safe.
constexpr int kMaxExactMessagePassingWidth = 25;

/// The Steiner-subtree grouping pass: partitions roots into groups whose
/// cones overlap substantially, the middle path between all-shared and
/// all-per-root. Greedy over roots in descending cone size: each root
/// joins the existing group owning at least half of its cone's internal
/// gates, else founds a new group, then claims its unowned gates. Only
/// And/Or/Not gates count — structural hash-consing makes *every* pair
/// of lineages over one instance share its event variable gates, so
/// counting variables would glue unrelated cones into one group. The
/// grouping is a heuristic proposal only: each multi-root group still
/// has to win the cost comparison before a shared plan is built, so a
/// misgrouping costs nothing but the probe.
std::vector<std::vector<uint32_t>> GroupRootsByConeOverlap(
    const BoolCircuit& circuit, const std::vector<GateId>& roots) {
  const size_t n = roots.size();
  std::vector<std::vector<GateId>> cones(n);
  for (size_t i = 0; i < n; ++i) {
    for (GateId g : circuit.ReachableFrom(roots[i])) {
      const GateKind kind = circuit.kind(g);
      if (kind == GateKind::kAnd || kind == GateKind::kOr ||
          kind == GateKind::kNot) {
        cones[i].push_back(g);
      }
    }
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return cones[a].size() > cones[b].size();
  });
  std::vector<int32_t> owner(circuit.NumGates(), -1);
  std::vector<std::vector<uint32_t>> groups;
  std::vector<size_t> overlap;
  for (uint32_t i : order) {
    overlap.assign(groups.size(), 0);
    for (GateId g : cones[i]) {
      if (owner[g] >= 0) ++overlap[owner[g]];
    }
    int32_t best = -1;
    size_t best_overlap = 0;
    for (size_t j = 0; j < groups.size(); ++j) {
      if (overlap[j] > best_overlap) {
        best_overlap = overlap[j];
        best = static_cast<int32_t>(j);
      }
    }
    if (best < 0 || best_overlap * 2 < cones[i].size()) {
      best = static_cast<int32_t>(groups.size());
      groups.emplace_back();
    }
    groups[best].push_back(i);
    for (GateId g : cones[i]) {
      if (owner[g] < 0) owner[g] = best;
    }
  }
  // Deterministic output independent of the claim order.
  for (std::vector<uint32_t>& group : groups) {
    std::sort(group.begin(), group.end());
  }
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<uint32_t>& a,
               const std::vector<uint32_t>& b) { return a[0] < b[0]; });
  return groups;
}

}  // namespace

std::vector<EngineResult> ProbabilityEngine::EstimateBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence) {
  std::vector<EngineResult> results;
  results.reserve(roots.size());
  for (GateId root : roots) {
    results.push_back(Estimate(circuit, root, registry, evidence));
    results.back().stats.batch_size = roots.size();
  }
  return results;
}

// ---------------------------------------------------------------------------
// Exact adapters
// ---------------------------------------------------------------------------

EngineResult ExhaustiveEngine::Estimate(const BoolCircuit& circuit,
                                        GateId root,
                                        const EventRegistry& registry,
                                        const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    result.value = ExhaustiveProbability(restricted, restricted_root,
                                         registry);
    result.stats.cone_events = CountConeEvents(restricted, restricted_root);
    return result;
  }
  result.value = ExhaustiveProbability(circuit, root, registry);
  result.stats.cone_events = CountConeEvents(circuit, root);
  return result;
}

// One reusable Execute arena per OS thread: the message pass becomes
// allocation-free in steady state no matter how many threads share the
// engine, without any cross-thread coordination.
static PlanScratch* ThreadScratch() {
  static thread_local PlanScratch scratch;
  return &scratch;
}

JunctionTreeEngine::JunctionTreeEngine(bool seed_topological,
                                       bool cache_plans,
                                       unsigned batch_threads)
    : seed_topological_(seed_topological),
      cache_plans_(cache_plans),
      batch_threads_(batch_threads == 0 ? 1 : batch_threads) {
  if (cache_plans_) {
    cache_ = std::make_unique<ConcurrentPlanCache>(seed_topological_);
  }
}

JunctionTreeEngine::~JunctionTreeEngine() = default;

void JunctionTreeEngine::BindCircuit(const BoolCircuit& circuit) {
  // Plan caching is only sound against one append-only circuit: a gate's
  // cone never changes once created, but another circuit's gate ids mean
  // something else entirely. The bind is an atomic CAS so any number of
  // threads can race to be first.
  const BoolCircuit* expected = nullptr;
  if (!bound_circuit_.compare_exchange_strong(expected, &circuit,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    TUD_CHECK(expected == &circuit)
        << "a plan-caching JunctionTreeEngine is bound to its first circuit";
  }
}

const JunctionTreePlan* JunctionTreeEngine::PlanFor(const BoolCircuit& circuit,
                                                    GateId root) {
  // Build-once publication and the root-kind revalidation (guarding the
  // case pointer identity cannot: the bound circuit destroyed and a
  // different one reallocated at the same address) both live in the
  // concurrent cache.
  return cache_->GetOrBuild(circuit, root);
}

void JunctionTreeEngine::Prewarm(const BoolCircuit& circuit, GateId root) {
  TUD_CHECK(cache_plans_) << "Prewarm requires a plan-caching engine";
  BindCircuit(circuit);
  PlanFor(circuit, root);
}

EngineResult JunctionTreeEngine::Estimate(const BoolCircuit& circuit,
                                          GateId root,
                                          const EventRegistry& registry,
                                          const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (!cache_plans_) {
    JunctionTreePlan plan =
        JunctionTreePlan::Build(circuit, root, seed_topological_);
    plan.FillStats(&result.stats);
    result.value = plan.Execute(registry, evidence, ThreadScratch());
    return result;
  }
  BindCircuit(circuit);
  const JunctionTreePlan* plan = PlanFor(circuit, root);
  plan->FillStats(&result.stats);
  result.value = plan->Execute(registry, evidence, ThreadScratch());
  return result;
}

std::vector<EngineResult> JunctionTreeEngine::EstimateBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence) {
  std::vector<EngineResult> results(roots.size());
  if (roots.empty()) return results;

  if (batch_threads_ > 1) {
    // Per-root plans executed across threads. Plans are built (and
    // cached) up front; Execute is const and keeps all mutable state in
    // a per-call arena, so the parallel section only reads.
    std::vector<std::shared_ptr<const JunctionTreePlan>> owned;
    std::vector<const JunctionTreePlan*> plans;
    plans.reserve(roots.size());
    if (cache_plans_) {
      BindCircuit(circuit);
      for (GateId root : roots) plans.push_back(PlanFor(circuit, root));
    } else {
      owned.reserve(roots.size());
      for (GateId root : roots) {
        owned.push_back(std::make_shared<const JunctionTreePlan>(
            JunctionTreePlan::Build(circuit, root, seed_topological_)));
        plans.push_back(owned.back().get());
      }
    }
    const size_t num_threads =
        std::min<size_t>(batch_threads_, roots.size());
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t i = t; i < roots.size(); i += num_threads) {
          EngineResult& result = results[i];
          result.engine = name();
          plans[i]->FillStats(&result.stats);
          result.stats.batch_size = roots.size();
          result.value = plans[i]->Execute(registry, evidence,
                                           ThreadScratch());
        }
      });
    }
    for (std::thread& w : workers) w.join();
    return results;
  }

  // The batch cost model (see the class comment): canonicalize the
  // battery, look the decision up, decide on a miss (whole-set cost
  // comparison, then the cone-overlap grouping pass), execute each
  // group's shared plan or per-root fallback, and scatter the results
  // back to caller order.

  // Canonical key: sorted + deduped, with a remap back to caller order —
  // a permuted or duplicated battery is the same battery.
  std::vector<GateId> key(roots);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  std::vector<size_t> slot_of(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    slot_of[i] = static_cast<size_t>(
        std::lower_bound(key.begin(), key.end(), roots[i]) - key.begin());
  }

  std::shared_ptr<const CachedBatchPlan> decision;
  if (cache_plans_) {
    BindCircuit(circuit);
    for (GateId root : roots) TUD_CHECK_LT(root, circuit.NumGates());
    // Lock-free read of the published decision/plan snapshot.
    std::shared_ptr<const BatchMap> snapshot =
        batch_published_.load(std::memory_order_acquire);
    if (snapshot != nullptr) {
      auto it = snapshot->find(key);
      if (it != snapshot->end()) {
        // Root-kind revalidation on every hit, as for single plans: it
        // guards the case pointer identity cannot (the bound circuit was
        // destroyed and another reallocated at the same address).
        for (size_t i = 0; i < key.size(); ++i) {
          TUD_CHECK(it->second.root_kinds[i] == circuit.kind(key[i]))
              << "cached batch plan does not match the circuit it is "
                 "executed against";
        }
        // Aliasing shared_ptr: the entry lives as long as its snapshot.
        decision =
            std::shared_ptr<const CachedBatchPlan>(snapshot, &it->second);
      }
    }
  }
  if (decision == nullptr) {
    auto built = std::make_shared<CachedBatchPlan>(DecideBatch(circuit, key));
    batch_builds_.fetch_add(1, std::memory_order_relaxed);
    built->root_kinds.reserve(key.size());
    for (GateId root : key) built->root_kinds.push_back(circuit.kind(root));
    if (cache_plans_) {
      // Copy-on-write publication under the writer mutex. Concurrent
      // misses for the same new root set may both build; one insert
      // wins, the other becomes the winner's value — benign, identical
      // plans.
      std::lock_guard<std::mutex> lock(batch_mu_);
      std::shared_ptr<const BatchMap> old =
          batch_published_.load(std::memory_order_relaxed);
      auto next = old != nullptr ? std::make_shared<BatchMap>(*old)
                                 : std::make_shared<BatchMap>();
      if (next->size() >= kMaxBatchPlans && next->find(key) == next->end()) {
        // FIFO eviction: drop only the oldest entry (smallest insertion
        // seq) — hot batteries survive cache pressure instead of the
        // whole memo being wiped.
        auto victim = next->begin();
        for (auto it = std::next(next->begin()); it != next->end(); ++it) {
          if (it->second.seq < victim->second.seq) victim = it;
        }
        next->erase(victim);
      }
      built->seq = ++batch_seq_;
      next->insert_or_assign(key, *built);
      batch_published_.store(std::move(next), std::memory_order_release);
    }
    decision = std::move(built);
  }

  // Execute every group into canonical slots, then map back to caller
  // order (duplicates land on the same canonical result).
  std::vector<EngineResult> canonical(key.size());
  for (const BatchGroup& group : decision->groups) {
    if (group.plan != nullptr) {
      EngineStats group_stats;
      group.plan->FillStats(&group_stats);
      std::vector<double> values = group.plan->ExecuteBatch(
          registry, evidence, &group_stats, ThreadScratch());
      for (size_t j = 0; j < group.members.size(); ++j) {
        EngineResult& r = canonical[group.members[j]];
        r.engine = name();
        r.value = values[j];
        r.stats = group_stats;
      }
    } else {
      // Per-root members: cached plans at exactly the sequential cost.
      for (uint32_t m : group.members) {
        canonical[m] = Estimate(circuit, key[m], registry, evidence);
      }
    }
  }
  for (size_t i = 0; i < roots.size(); ++i) {
    results[i] = canonical[slot_of[i]];
    EngineStats& s = results[i].stats;
    s.batch_size = roots.size();
    s.batch_path = decision->path;
    s.batch_shared_cost = decision->shared_cost;
    s.batch_per_root_cost = decision->per_root_cost;
    s.batch_groups = decision->groups.size();
  }
  return results;
}

JunctionTreeEngine::CachedBatchPlan JunctionTreeEngine::DecideBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots) const {
  CachedBatchPlan decision;
  const size_t n = roots.size();
  constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

  // The per-root side of the comparison: one upward sweep each over the
  // root's own min-degree decomposition.
  std::vector<double> root_cost(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    root_cost[i] =
        JunctionTreeAnalysis::Analyze(circuit, roots[i]).TableCost();
    decision.per_root_cost += root_cost[i];
  }

  if (n == 1) {
    // A battery of one: the shared pass costs two sweeps where the
    // per-root plan costs one; no decision to make.
    decision.shared_cost = 2.0 * root_cost[0];
    decision.path = BatchPath::kPerRoot;
    decision.groups.push_back(BatchGroup{{0}, nullptr});
    return decision;
  }

  // The shared side: a calibrating upward plus a pruned downward sweep
  // over the union cone's decomposition — a union too wide for exact
  // message passing is infinitely expensive.
  JunctionTreeAnalysis union_analysis =
      JunctionTreeAnalysis::AnalyzeBatch(circuit, roots);
  const bool union_fits =
      union_analysis.trivial() ||
      union_analysis.MinDegreeWidth() <= kMaxExactMessagePassingWidth;
  decision.shared_cost =
      union_fits ? 2.0 * union_analysis.TableCost() : kInfiniteCost;
  if (decision.shared_cost <= decision.per_root_cost) {
    BatchGroup all;
    all.members.resize(n);
    std::iota(all.members.begin(), all.members.end(), 0u);
    all.plan = std::make_shared<const JunctionTreePlan>(
        JunctionTreePlan::BuildBatch(std::move(union_analysis),
                                     seed_topological_));
    decision.groups.push_back(std::move(all));
    decision.path = BatchPath::kShared;
    return decision;
  }

  // The whole set loses: propose cone-overlap groups and run the same
  // comparison per group — the middle path between all-shared and
  // all-per-root.
  bool any_shared = false;
  for (std::vector<uint32_t>& members :
       GroupRootsByConeOverlap(circuit, roots)) {
    BatchGroup group;
    group.members = std::move(members);
    if (group.members.size() > 1) {
      std::vector<GateId> subset;
      subset.reserve(group.members.size());
      double sequential = 0;
      for (uint32_t m : group.members) {
        subset.push_back(roots[m]);
        sequential += root_cost[m];
      }
      JunctionTreeAnalysis group_analysis =
          JunctionTreeAnalysis::AnalyzeBatch(circuit, subset);
      const bool fits =
          group_analysis.trivial() ||
          group_analysis.MinDegreeWidth() <= kMaxExactMessagePassingWidth;
      if (fits && 2.0 * group_analysis.TableCost() <= sequential) {
        group.plan = std::make_shared<const JunctionTreePlan>(
            JunctionTreePlan::BuildBatch(std::move(group_analysis),
                                         seed_topological_));
        any_shared = true;
      }
    }
    decision.groups.push_back(std::move(group));
  }
  decision.path = any_shared ? BatchPath::kGrouped : BatchPath::kPerRoot;
  return decision;
}

size_t JunctionTreeEngine::batch_cache_size() const {
  std::shared_ptr<const BatchMap> snapshot =
      batch_published_.load(std::memory_order_acquire);
  return snapshot == nullptr ? 0 : snapshot->size();
}

EngineResult BddEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                 const EventRegistry& registry,
                                 const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  auto [cone, cone_root] = evidence.empty()
                               ? circuit.ExtractCone(root)
                               : PinEvidence(circuit, root, registry,
                                             evidence);
  const uint32_t num_levels = static_cast<uint32_t>(registry.size());
  std::vector<uint32_t> levels(num_levels);
  std::vector<double> probs(num_levels);
  for (uint32_t e = 0; e < num_levels; ++e) {
    levels[e] = e;
    probs[e] = registry.probability(e);
  }
  BddManager manager(num_levels);
  BddRef f = manager.FromCircuit(cone, cone_root, levels);
  result.value = manager.Wmc(f, probs);
  result.stats.bdd_nodes = manager.NumNodes();
  result.stats.cone_events = CountConeEvents(cone, cone_root);
  return result;
}

EngineResult ConditioningEngine::Estimate(const BoolCircuit& circuit,
                                          GateId root,
                                          const EventRegistry& registry,
                                          const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (evidence.empty()) {
    result.value =
        JunctionTreeProbability(circuit, root, registry, &result.stats);
    return result;
  }
  // The §4 route: materialise the observation as a gate and compute
  // P(root ∧ obs) / P(obs) with two message-passing runs. Works on a
  // copy — the adapter's contract is not to grow the caller's circuit.
  BoolCircuit working = circuit;
  std::vector<GateId> literals;
  literals.reserve(evidence.size());
  for (const auto& [e, v] : evidence) {
    GateId var = working.AddVar(e);
    literals.push_back(v ? var : working.AddNot(var));
  }
  GateId observation = working.AddAnd(std::move(literals));
  std::optional<double> conditional =
      ConditionalProbability(working, root, observation, registry);
  TUD_CHECK(conditional.has_value())
      << "conditioning on a zero-probability observation";
  result.value = *conditional;
  return result;
}

// ---------------------------------------------------------------------------
// Sampling-based adapters
// ---------------------------------------------------------------------------

EngineResult SamplingEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                      const EventRegistry& registry,
                                      const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  result.stats.num_samples = num_samples_;
  double p;
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    p = SampleProbability(restricted, restricted_root, registry, num_samples_,
                          rng_);
  } else {
    p = SampleProbability(circuit, root, registry, num_samples_, rng_);
  }
  result.value = p;
  // Normal approximation, with the rule-of-three at the degenerate
  // empirical extremes (p-hat of exactly 0 or 1 would otherwise report
  // error 0, i.e. claim an unconverged estimate is exact).
  result.error_bound = p > 0.0 && p < 1.0
                           ? 1.96 * std::sqrt(p * (1.0 - p) / num_samples_)
                           : 3.0 / num_samples_;
  return result;
}

EngineResult HybridEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                    const EventRegistry& registry,
                                    const Evidence& evidence) {
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    Evidence none;
    return Estimate(restricted, restricted_root, registry, none);
  }
  return EstimateWithCore(
      circuit, root, registry,
      SelectCoreEvents(circuit, root, target_width_, max_core_));
}

EngineResult HybridEngine::EstimateWithCore(const BoolCircuit& circuit,
                                            GateId root,
                                            const EventRegistry& registry,
                                            const std::vector<EventId>& core) {
  if (core.empty()) {
    // Already narrow: one exact message-passing run, no sampling.
    EngineResult result;
    result.engine = name();
    result.value =
        JunctionTreeProbability(circuit, root, registry, &result.stats);
    return result;
  }
  EngineResult result =
      HybridProbability(circuit, root, registry, core, num_samples_, rng_);
  result.engine = name();
  return result;
}

// ---------------------------------------------------------------------------
// AutoEngine
// ---------------------------------------------------------------------------

AutoEngine::AutoEngine(const Limits& limits)
    : limits_(limits),
      hybrid_(limits.hybrid_target_width, limits.hybrid_max_core,
              limits.hybrid_num_samples, limits.seed),
      sampling_(limits.sampling_num_samples, limits.seed) {}

EngineResult AutoEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                  const EventRegistry& registry,
                                  const Evidence& evidence) {
  if (!evidence.empty()) {
    // Pin once, then plan on the restricted circuit: pinning both
    // shrinks the cone and is how every delegate would condition anyway.
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    return Plan(restricted, restricted_root, registry);
  }
  return Plan(circuit, root, registry);
}

EngineResult AutoEngine::Plan(const BoolCircuit& circuit, GateId root,
                              const EventRegistry& registry) {
  const size_t cone_events = CountConeEvents(circuit, root);
  if (cone_events <= limits_.exhaustive_max_events) {
    return exhaustive_.Estimate(circuit, root, registry);
  }
  if (cone_events <= limits_.bdd_max_events) {
    return bdd_.Estimate(circuit, root, registry);
  }

  // Cheap width estimate of the binarised cone's primal graph — the
  // analysis *is* the first half of a junction-tree Build, so when
  // message passing is chosen the decomposition work is handed to the
  // plan instead of being recomputed.
  JunctionTreeAnalysis analysis = JunctionTreeAnalysis::Analyze(circuit, root);
  const int width = analysis.trivial() ? 0 : analysis.MinDegreeWidth();
  if (width <= limits_.jt_max_width) {
    JunctionTreePlan plan = JunctionTreePlan::Build(
        std::move(analysis), limits_.seed_topological);
    EngineResult result;
    result.engine = "junction_tree";
    plan.FillStats(&result.stats);
    result.value = plan.Execute(registry);
    result.stats.cone_events = cone_events;
    return result;
  }
  std::vector<EventId> core = SelectCoreEvents(
      circuit, root, limits_.hybrid_target_width, limits_.hybrid_max_core);
  if (!core.empty()) {
    // Only worth the per-sample exact runs if the core actually tames
    // the width; SelectCoreEvents stops early when it cannot.
    std::vector<std::optional<bool>> fixed(registry.size());
    for (EventId e : core) fixed[e] = true;
    auto [restricted, restricted_root] =
        RestrictCircuit(circuit, root, fixed);
    auto [rbin, rremap] = restricted.Binarize();
    GateId rroot = rremap[restricted_root];
    int rwidth = 0;
    if (rbin.kind(rroot) != GateKind::kConst) {
      Graph rgraph(static_cast<uint32_t>(rbin.NumGates()));
      for (const auto& [a, b] : rbin.PrimalEdges()) rgraph.AddEdge(a, b);
      rwidth = static_cast<int>(
          EliminationWidth(rgraph, CircuitMinDegreeOrder(rgraph)));
    }
    if (rwidth <= limits_.jt_max_width) {
      // Hand the selected core over: the hybrid engine would otherwise
      // repeat the whole SelectCoreEvents restrict/min-fill loop.
      EngineResult result =
          hybrid_.EstimateWithCore(circuit, root, registry, core);
      result.stats.cone_events = cone_events;
      return result;
    }
  }
  EngineResult result = sampling_.Estimate(circuit, root, registry);
  result.stats.cone_events = cone_events;
  return result;
}

std::unique_ptr<ProbabilityEngine> MakeAutoEngine() {
  return std::make_unique<AutoEngine>();
}

}  // namespace tud
