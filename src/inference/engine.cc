#include "inference/engine.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "bdd/bdd.h"
#include "inference/conditioning.h"
#include "inference/exhaustive.h"
#include "inference/hybrid.h"
#include "inference/junction_tree.h"
#include "inference/sampling.h"
#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "util/check.h"

namespace tud {

namespace {

/// Restricts the cone by pinning the evidence literals to constants:
/// the probability of the restricted root is exactly the conditional
/// P(root | pins) (pinned events carry no weight). Engines without a
/// native evidence path all condition this way.
std::pair<BoolCircuit, GateId> PinEvidence(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           const Evidence& evidence) {
  std::vector<std::optional<bool>> fixed(registry.size());
  for (const auto& [e, v] : evidence) {
    TUD_CHECK_LT(e, fixed.size());
    fixed[e] = v;
  }
  return RestrictCircuit(circuit, root, fixed);
}

size_t CountConeEvents(const BoolCircuit& circuit, GateId root) {
  std::vector<bool> seen(circuit.NumEvents(), false);
  size_t count = 0;
  for (GateId g : circuit.ReachableFrom(root)) {
    if (circuit.kind(g) != GateKind::kVar) continue;
    EventId e = circuit.var(g);
    if (!seen[e]) {
      seen[e] = true;
      ++count;
    }
  }
  return count;
}

}  // namespace

// ---------------------------------------------------------------------------
// Exact adapters
// ---------------------------------------------------------------------------

EngineResult ExhaustiveEngine::Estimate(const BoolCircuit& circuit,
                                        GateId root,
                                        const EventRegistry& registry,
                                        const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    result.value = ExhaustiveProbability(restricted, restricted_root,
                                         registry);
    result.stats.cone_events = CountConeEvents(restricted, restricted_root);
    return result;
  }
  result.value = ExhaustiveProbability(circuit, root, registry);
  result.stats.cone_events = CountConeEvents(circuit, root);
  return result;
}

EngineResult JunctionTreeEngine::Estimate(const BoolCircuit& circuit,
                                          GateId root,
                                          const EventRegistry& registry,
                                          const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (!cache_plans_) {
    JunctionTreePlan plan =
        JunctionTreePlan::Build(circuit, root, seed_topological_);
    plan.FillStats(&result.stats);
    result.value = plan.Execute(registry, evidence);
    return result;
  }
  // Plan caching is only sound against one append-only circuit: a gate's
  // cone never changes once created, but another circuit's gate ids mean
  // something else entirely. The root-kind revalidation below guards the
  // case the pointer identity cannot: the bound circuit was destroyed
  // and a different one reallocated at the same address.
  if (bound_circuit_ == nullptr) bound_circuit_ = &circuit;
  TUD_CHECK(bound_circuit_ == &circuit)
      << "a plan-caching JunctionTreeEngine is bound to its first circuit";
  TUD_CHECK_LT(root, circuit.NumGates());
  auto it = plans_.find(root);
  if (it == plans_.end()) {
    it = plans_
             .emplace(root,
                      CachedPlan{std::make_shared<const JunctionTreePlan>(
                                     JunctionTreePlan::Build(
                                         circuit, root, seed_topological_)),
                                 circuit.kind(root)})
             .first;
  }
  TUD_CHECK(it->second.root_kind == circuit.kind(root))
      << "cached plan does not match the circuit it is executed against";
  it->second.plan->FillStats(&result.stats);
  result.value = it->second.plan->Execute(registry, evidence);
  return result;
}

EngineResult BddEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                 const EventRegistry& registry,
                                 const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  auto [cone, cone_root] = evidence.empty()
                               ? circuit.ExtractCone(root)
                               : PinEvidence(circuit, root, registry,
                                             evidence);
  const uint32_t num_levels = static_cast<uint32_t>(registry.size());
  std::vector<uint32_t> levels(num_levels);
  std::vector<double> probs(num_levels);
  for (uint32_t e = 0; e < num_levels; ++e) {
    levels[e] = e;
    probs[e] = registry.probability(e);
  }
  BddManager manager(num_levels);
  BddRef f = manager.FromCircuit(cone, cone_root, levels);
  result.value = manager.Wmc(f, probs);
  result.stats.bdd_nodes = manager.NumNodes();
  result.stats.cone_events = CountConeEvents(cone, cone_root);
  return result;
}

EngineResult ConditioningEngine::Estimate(const BoolCircuit& circuit,
                                          GateId root,
                                          const EventRegistry& registry,
                                          const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  if (evidence.empty()) {
    result.value =
        JunctionTreeProbability(circuit, root, registry, &result.stats);
    return result;
  }
  // The §4 route: materialise the observation as a gate and compute
  // P(root ∧ obs) / P(obs) with two message-passing runs. Works on a
  // copy — the adapter's contract is not to grow the caller's circuit.
  BoolCircuit working = circuit;
  std::vector<GateId> literals;
  literals.reserve(evidence.size());
  for (const auto& [e, v] : evidence) {
    GateId var = working.AddVar(e);
    literals.push_back(v ? var : working.AddNot(var));
  }
  GateId observation = working.AddAnd(std::move(literals));
  std::optional<double> conditional =
      ConditionalProbability(working, root, observation, registry);
  TUD_CHECK(conditional.has_value())
      << "conditioning on a zero-probability observation";
  result.value = *conditional;
  return result;
}

// ---------------------------------------------------------------------------
// Sampling-based adapters
// ---------------------------------------------------------------------------

EngineResult SamplingEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                      const EventRegistry& registry,
                                      const Evidence& evidence) {
  EngineResult result;
  result.engine = name();
  result.stats.num_samples = num_samples_;
  double p;
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    p = SampleProbability(restricted, restricted_root, registry, num_samples_,
                          rng_);
  } else {
    p = SampleProbability(circuit, root, registry, num_samples_, rng_);
  }
  result.value = p;
  // Normal approximation, with the rule-of-three at the degenerate
  // empirical extremes (p-hat of exactly 0 or 1 would otherwise report
  // error 0, i.e. claim an unconverged estimate is exact).
  result.error_bound = p > 0.0 && p < 1.0
                           ? 1.96 * std::sqrt(p * (1.0 - p) / num_samples_)
                           : 3.0 / num_samples_;
  return result;
}

EngineResult HybridEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                    const EventRegistry& registry,
                                    const Evidence& evidence) {
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    Evidence none;
    return Estimate(restricted, restricted_root, registry, none);
  }
  std::vector<EventId> core =
      SelectCoreEvents(circuit, root, target_width_, max_core_);
  if (core.empty()) {
    // Already narrow: one exact message-passing run, no sampling.
    EngineResult result;
    result.engine = name();
    result.value =
        JunctionTreeProbability(circuit, root, registry, &result.stats);
    return result;
  }
  EngineResult result =
      HybridProbability(circuit, root, registry, core, num_samples_, rng_);
  result.engine = name();
  return result;
}

// ---------------------------------------------------------------------------
// AutoEngine
// ---------------------------------------------------------------------------

AutoEngine::AutoEngine(const Limits& limits)
    : limits_(limits),
      junction_tree_(limits.seed_topological),
      hybrid_(limits.hybrid_target_width, limits.hybrid_max_core,
              limits.hybrid_num_samples, limits.seed),
      sampling_(limits.sampling_num_samples, limits.seed) {}

EngineResult AutoEngine::Estimate(const BoolCircuit& circuit, GateId root,
                                  const EventRegistry& registry,
                                  const Evidence& evidence) {
  if (!evidence.empty()) {
    // Pin once, then plan on the restricted circuit: pinning both
    // shrinks the cone and is how every delegate would condition anyway.
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    return Plan(restricted, restricted_root, registry);
  }
  return Plan(circuit, root, registry);
}

EngineResult AutoEngine::Plan(const BoolCircuit& circuit, GateId root,
                              const EventRegistry& registry) {
  const size_t cone_events = CountConeEvents(circuit, root);
  if (cone_events <= limits_.exhaustive_max_events) {
    return exhaustive_.Estimate(circuit, root, registry);
  }
  if (cone_events <= limits_.bdd_max_events) {
    return bdd_.Estimate(circuit, root, registry);
  }

  // Cheap width estimate of the binarised cone's primal graph — the
  // same min-degree order the junction tree itself would try first.
  auto [cone, cone_root] = circuit.ExtractCone(root);
  auto [bin, remap] = cone.Binarize();
  GateId bin_root = remap[cone_root];
  int width = 0;
  if (bin.kind(bin_root) != GateKind::kConst) {
    Graph graph(static_cast<uint32_t>(bin.NumGates()));
    for (const auto& [a, b] : bin.PrimalEdges()) graph.AddEdge(a, b);
    width = static_cast<int>(
        EliminationWidth(graph, CircuitMinDegreeOrder(graph)));
  }
  if (width <= limits_.jt_max_width) {
    EngineResult result = junction_tree_.Estimate(circuit, root, registry);
    result.stats.cone_events = cone_events;
    return result;
  }
  std::vector<EventId> core = SelectCoreEvents(
      circuit, root, limits_.hybrid_target_width, limits_.hybrid_max_core);
  if (!core.empty()) {
    // Only worth the per-sample exact runs if the core actually tames
    // the width; SelectCoreEvents stops early when it cannot.
    std::vector<std::optional<bool>> fixed(registry.size());
    for (EventId e : core) fixed[e] = true;
    auto [restricted, restricted_root] =
        RestrictCircuit(circuit, root, fixed);
    auto [rbin, rremap] = restricted.Binarize();
    GateId rroot = rremap[restricted_root];
    int rwidth = 0;
    if (rbin.kind(rroot) != GateKind::kConst) {
      Graph rgraph(static_cast<uint32_t>(rbin.NumGates()));
      for (const auto& [a, b] : rbin.PrimalEdges()) rgraph.AddEdge(a, b);
      rwidth = static_cast<int>(
          EliminationWidth(rgraph, CircuitMinDegreeOrder(rgraph)));
    }
    if (rwidth <= limits_.jt_max_width) {
      EngineResult result = hybrid_.Estimate(circuit, root, registry);
      result.stats.cone_events = cone_events;
      return result;
    }
  }
  EngineResult result = sampling_.Estimate(circuit, root, registry);
  result.stats.cone_events = cone_events;
  return result;
}

std::unique_ptr<ProbabilityEngine> MakeAutoEngine() {
  return std::make_unique<AutoEngine>();
}

}  // namespace tud
