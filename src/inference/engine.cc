#include "inference/engine.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <optional>
#include <thread>

#include "bdd/bdd.h"
#include "inference/conditioning.h"
#include "inference/exhaustive.h"
#include "inference/hybrid.h"
#include "inference/junction_tree.h"
#include "inference/sampling.h"
#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "util/check.h"

namespace tud {

namespace {

/// Restricts the cone by pinning the evidence literals to constants:
/// the probability of the restricted root is exactly the conditional
/// P(root | pins) (pinned events carry no weight). Engines without a
/// native evidence path all condition this way.
std::pair<BoolCircuit, GateId> PinEvidence(const BoolCircuit& circuit,
                                           GateId root,
                                           const EventRegistry& registry,
                                           const Evidence& evidence) {
  std::vector<std::optional<bool>> fixed(registry.size());
  for (const auto& [e, v] : evidence) {
    TUD_CHECK_LT(e, fixed.size());
    fixed[e] = v;
  }
  return RestrictCircuit(circuit, root, fixed);
}

size_t CountConeEvents(const BoolCircuit& circuit, GateId root) {
  std::vector<bool> seen(circuit.NumEvents(), false);
  size_t count = 0;
  for (GateId g : circuit.ReachableFrom(root)) {
    if (circuit.kind(g) != GateKind::kVar) continue;
    EventId e = circuit.var(g);
    if (!seen[e]) {
      seen[e] = true;
      ++count;
    }
  }
  return count;
}

/// BuildImpl's hard cap on exact message passing (bags of up to 26
/// vertices): a union whose min-degree estimate exceeds it cannot be
/// built, so the cost model prices it as infinite. The built plan's
/// width never exceeds the min-degree estimate (min-fill only replaces
/// the order when strictly narrower), so gating on the estimate is safe.
constexpr int kMaxExactMessagePassingWidth = 25;

/// The Steiner-subtree grouping pass: partitions roots into groups whose
/// cones overlap substantially, the middle path between all-shared and
/// all-per-root. Greedy over roots in descending cone size: each root
/// joins the existing group owning at least half of its cone's internal
/// gates, else founds a new group, then claims its unowned gates. Only
/// And/Or/Not gates count — structural hash-consing makes *every* pair
/// of lineages over one instance share its event variable gates, so
/// counting variables would glue unrelated cones into one group. The
/// grouping is a heuristic proposal only: each multi-root group still
/// has to win the cost comparison before a shared plan is built, so a
/// misgrouping costs nothing but the probe.
std::vector<std::vector<uint32_t>> GroupRootsByConeOverlap(
    const BoolCircuit& circuit, const std::vector<GateId>& roots) {
  const size_t n = roots.size();
  std::vector<std::vector<GateId>> cones(n);
  for (size_t i = 0; i < n; ++i) {
    for (GateId g : circuit.ReachableFrom(roots[i])) {
      const GateKind kind = circuit.kind(g);
      if (kind == GateKind::kAnd || kind == GateKind::kOr ||
          kind == GateKind::kNot) {
        cones[i].push_back(g);
      }
    }
  }
  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::stable_sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    return cones[a].size() > cones[b].size();
  });
  std::vector<int32_t> owner(circuit.NumGates(), -1);
  std::vector<std::vector<uint32_t>> groups;
  std::vector<size_t> overlap;
  for (uint32_t i : order) {
    overlap.assign(groups.size(), 0);
    for (GateId g : cones[i]) {
      if (owner[g] >= 0) ++overlap[owner[g]];
    }
    int32_t best = -1;
    size_t best_overlap = 0;
    for (size_t j = 0; j < groups.size(); ++j) {
      if (overlap[j] > best_overlap) {
        best_overlap = overlap[j];
        best = static_cast<int32_t>(j);
      }
    }
    if (best < 0 || best_overlap * 2 < cones[i].size()) {
      best = static_cast<int32_t>(groups.size());
      groups.emplace_back();
    }
    groups[best].push_back(i);
    for (GateId g : cones[i]) {
      if (owner[g] < 0) owner[g] = best;
    }
  }
  // Deterministic output independent of the claim order.
  for (std::vector<uint32_t>& group : groups) {
    std::sort(group.begin(), group.end());
  }
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<uint32_t>& a,
               const std::vector<uint32_t>& b) { return a[0] < b[0]; });
  return groups;
}

}  // namespace

namespace {

/// Request validation shared by the non-virtual entry points: a
/// malformed request (root out of range, evidence event unknown to the
/// registry) is the caller's bug, reported as kInvalidArgument instead
/// of tripping a TUD_CHECK abort deep inside an engine.
bool ValidRequest(const BoolCircuit& circuit, GateId root,
                  const EventRegistry& registry, const Evidence& evidence) {
  if (root >= circuit.NumGates()) return false;
  for (const auto& [e, v] : evidence) {
    (void)v;
    if (e >= registry.size()) return false;
  }
  return true;
}

}  // namespace

EngineResult ProbabilityEngine::Estimate(const BoolCircuit& circuit,
                                         GateId root,
                                         const EventRegistry& registry,
                                         const Evidence& evidence) {
  return Estimate(circuit, root, registry, evidence, QueryBudget{});
}

EngineResult ProbabilityEngine::Estimate(const BoolCircuit& circuit,
                                         GateId root,
                                         const EventRegistry& registry,
                                         const Evidence& evidence,
                                         const QueryBudget& budget) {
  if (!ValidRequest(circuit, root, registry, evidence)) {
    return MakeStatusResult(name(), EngineStatus::kInvalidArgument);
  }
  if (budget.cancelled()) {
    return MakeStatusResult(name(), EngineStatus::kCancelled);
  }
  if (budget.past_deadline()) {
    return MakeStatusResult(name(), EngineStatus::kDeadlineExceeded);
  }
  return EstimateImpl(circuit, root, registry, evidence, budget);
}

std::vector<EngineResult> ProbabilityEngine::EstimateBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence) {
  return EstimateBatch(circuit, roots, registry, evidence, QueryBudget{});
}

std::vector<EngineResult> ProbabilityEngine::EstimateBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence,
    const QueryBudget& budget) {
  bool valid = true;
  for (GateId root : roots) {
    if (!ValidRequest(circuit, root, registry, evidence)) valid = false;
  }
  if (!valid) {
    std::vector<EngineResult> results(
        roots.size(), MakeStatusResult(name(), EngineStatus::kInvalidArgument));
    return results;
  }
  if (budget.cancelled()) {
    return std::vector<EngineResult>(
        roots.size(), MakeStatusResult(name(), EngineStatus::kCancelled));
  }
  if (budget.past_deadline()) {
    return std::vector<EngineResult>(
        roots.size(),
        MakeStatusResult(name(), EngineStatus::kDeadlineExceeded));
  }
  return EstimateBatchImpl(circuit, roots, registry, evidence, budget);
}

std::vector<EngineResult> ProbabilityEngine::EstimateBatchImpl(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence,
    const QueryBudget& budget) {
  std::vector<EngineResult> results;
  results.reserve(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    results.push_back(EstimateImpl(circuit, roots[i], registry, evidence,
                                   budget));
    results.back().stats.batch_size = roots.size();
    const EngineStatus st = results.back().status;
    if (st == EngineStatus::kDeadlineExceeded ||
        st == EngineStatus::kCancelled) {
      // The clock ran out / the caller gave up: short-circuit the rest
      // of the battery instead of burning the same trip N more times.
      while (results.size() < roots.size()) {
        results.push_back(MakeStatusResult(name(), st));
        results.back().stats.batch_size = roots.size();
      }
      break;
    }
  }
  return results;
}

// ---------------------------------------------------------------------------
// Exact adapters
// ---------------------------------------------------------------------------

EngineResult ExhaustiveEngine::EstimateImpl(const BoolCircuit& circuit,
                                            GateId root,
                                            const EventRegistry& registry,
                                            const Evidence& evidence,
                                            const QueryBudget& budget) {
  EngineResult result;
  result.engine = name();
  BudgetMeter meter(budget);
  auto run = [&](const BoolCircuit& c, GateId r) {
    result.stats.cone_events = CountConeEvents(c, r);
    double value = 0.0;
    EngineStatus st = ExhaustiveProbabilityGoverned(c, r, registry, meter,
                                                    &value);
    if (st != EngineStatus::kOk) {
      result.status = st;
      result.error_bound = 1.0;
      return;
    }
    result.value = value;
  };
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    run(restricted, restricted_root);
  } else {
    run(circuit, root);
  }
  return result;
}

// One reusable Execute arena per OS thread: the message pass becomes
// allocation-free in steady state no matter how many threads share the
// engine, without any cross-thread coordination.
static PlanScratch* ThreadScratch() {
  static thread_local PlanScratch scratch;
  return &scratch;
}

JunctionTreeEngine::JunctionTreeEngine(bool seed_topological,
                                       bool cache_plans,
                                       unsigned batch_threads)
    : seed_topological_(seed_topological),
      cache_plans_(cache_plans),
      batch_threads_(batch_threads == 0 ? 1 : batch_threads) {
  if (cache_plans_) {
    cache_ = std::make_unique<ConcurrentPlanCache>(seed_topological_);
  }
}

JunctionTreeEngine::~JunctionTreeEngine() = default;

void JunctionTreeEngine::BindCircuit(const BoolCircuit& circuit) {
  // Plan caching is only sound against one append-only circuit: a gate's
  // cone never changes once created, but another circuit's gate ids mean
  // something else entirely. The bind is an atomic CAS so any number of
  // threads can race to be first.
  const BoolCircuit* expected = nullptr;
  if (!bound_circuit_.compare_exchange_strong(expected, &circuit,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
    TUD_CHECK(expected == &circuit)
        << "a plan-caching JunctionTreeEngine is bound to its first circuit";
  }
}

const JunctionTreePlan* JunctionTreeEngine::PlanFor(const BoolCircuit& circuit,
                                                    GateId root) {
  // Build-once publication and the root-kind revalidation (guarding the
  // case pointer identity cannot: the bound circuit destroyed and a
  // different one reallocated at the same address) both live in the
  // concurrent cache.
  return cache_->GetOrBuild(circuit, root);
}

void JunctionTreeEngine::Prewarm(const BoolCircuit& circuit, GateId root) {
  TUD_CHECK(cache_plans_) << "Prewarm requires a plan-caching engine";
  BindCircuit(circuit);
  PlanFor(circuit, root);
}

EngineResult JunctionTreeEngine::EstimateImpl(const BoolCircuit& circuit,
                                              GateId root,
                                              const EventRegistry& registry,
                                              const Evidence& evidence,
                                              const QueryBudget& budget) {
  EngineResult result;
  result.engine = name();
  if (budget.unlimited()) {
    // The pre-existing exact path, untouched: no meter, no per-bag
    // branches (the ungoverned hot loop stays the ungoverned hot loop).
    if (!cache_plans_) {
      JunctionTreePlan plan =
          JunctionTreePlan::Build(circuit, root, seed_topological_);
      plan.FillStats(&result.stats);
      result.value = plan.Execute(registry, evidence, ThreadScratch());
      return result;
    }
    BindCircuit(circuit);
    const JunctionTreePlan* plan = PlanFor(circuit, root);
    plan->FillStats(&result.stats);
    result.value = plan->Execute(registry, evidence, ThreadScratch());
    return result;
  }
  // Governed: the budget gates both the Build (a decomposition whose
  // tables would blow the cell cap is refused before any arena exists)
  // and the per-bag message pass.
  if (!cache_plans_) {
    JunctionTreePlan plan = JunctionTreePlan::Build(
        JunctionTreeAnalysis::Analyze(circuit, root), seed_topological_,
        budget);
    plan.FillStats(&result.stats);
    if (plan.build_status() != EngineStatus::kOk) {
      result.status = plan.build_status();
      result.error_bound = 1.0;
      return result;
    }
    double value = 0.0;
    EngineStatus st =
        plan.ExecuteGoverned(registry, evidence, ThreadScratch(), budget,
                             &value);
    if (st != EngineStatus::kOk) {
      result.status = st;
      result.error_bound = 1.0;
      return result;
    }
    result.value = value;
    return result;
  }
  BindCircuit(circuit);
  const JunctionTreePlan* plan = cache_->GetOrBuild(circuit, root, &budget);
  plan->FillStats(&result.stats);
  if (plan->build_status() != EngineStatus::kOk) {
    result.status = plan->build_status();
    result.error_bound = 1.0;
    return result;
  }
  double value = 0.0;
  EngineStatus st = plan->ExecuteGoverned(registry, evidence, ThreadScratch(),
                                          budget, &value);
  if (st != EngineStatus::kOk) {
    result.status = st;
    result.error_bound = 1.0;
    return result;
  }
  result.value = value;
  return result;
}

std::vector<EngineResult> JunctionTreeEngine::EstimateBatchImpl(
    const BoolCircuit& circuit, const std::vector<GateId>& roots,
    const EventRegistry& registry, const Evidence& evidence,
    const QueryBudget& budget) {
  std::vector<EngineResult> results(roots.size());
  if (roots.empty()) return results;
  const bool governed = !budget.unlimited();

  if (batch_threads_ > 1) {
    // Per-root plans executed across threads. Plans are built (and
    // cached) up front; Execute is const and keeps all mutable state in
    // a per-call arena, so the parallel section only reads.
    std::vector<std::shared_ptr<const JunctionTreePlan>> owned;
    std::vector<const JunctionTreePlan*> plans;
    plans.reserve(roots.size());
    if (cache_plans_) {
      BindCircuit(circuit);
      for (GateId root : roots) {
        plans.push_back(governed ? cache_->GetOrBuild(circuit, root, &budget)
                                 : PlanFor(circuit, root));
      }
    } else {
      owned.reserve(roots.size());
      for (GateId root : roots) {
        owned.push_back(std::make_shared<const JunctionTreePlan>(
            governed ? JunctionTreePlan::Build(
                           JunctionTreeAnalysis::Analyze(circuit, root),
                           seed_topological_, budget)
                     : JunctionTreePlan::Build(circuit, root,
                                               seed_topological_)));
        plans.push_back(owned.back().get());
      }
    }
    const size_t num_threads =
        std::min<size_t>(batch_threads_, roots.size());
    std::vector<std::thread> workers;
    workers.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      workers.emplace_back([&, t] {
        for (size_t i = t; i < roots.size(); i += num_threads) {
          EngineResult& result = results[i];
          result.engine = name();
          plans[i]->FillStats(&result.stats);
          result.stats.batch_size = roots.size();
          if (!governed) {
            result.value = plans[i]->Execute(registry, evidence,
                                             ThreadScratch());
            continue;
          }
          if (plans[i]->build_status() != EngineStatus::kOk) {
            result.status = plans[i]->build_status();
            result.error_bound = 1.0;
            continue;
          }
          double value = 0.0;
          EngineStatus st = plans[i]->ExecuteGoverned(
              registry, evidence, ThreadScratch(), budget, &value);
          if (st != EngineStatus::kOk) {
            result.status = st;
            result.error_bound = 1.0;
            continue;
          }
          result.value = value;
        }
      });
    }
    for (std::thread& w : workers) w.join();
    return results;
  }

  // The batch cost model (see the class comment): canonicalize the
  // battery, look the decision up, decide on a miss (whole-set cost
  // comparison, then the cone-overlap grouping pass), execute each
  // group's shared plan or per-root fallback, and scatter the results
  // back to caller order.

  // Canonical key: sorted + deduped, with a remap back to caller order —
  // a permuted or duplicated battery is the same battery.
  std::vector<GateId> key(roots);
  std::sort(key.begin(), key.end());
  key.erase(std::unique(key.begin(), key.end()), key.end());
  std::vector<size_t> slot_of(roots.size());
  for (size_t i = 0; i < roots.size(); ++i) {
    slot_of[i] = static_cast<size_t>(
        std::lower_bound(key.begin(), key.end(), roots[i]) - key.begin());
  }

  std::shared_ptr<const CachedBatchPlan> decision;
  if (cache_plans_) {
    BindCircuit(circuit);
    for (GateId root : roots) TUD_CHECK_LT(root, circuit.NumGates());
    // Lock-free read of the published decision/plan snapshot.
    std::shared_ptr<const BatchMap> snapshot =
        batch_published_.load(std::memory_order_acquire);
    if (snapshot != nullptr) {
      auto it = snapshot->find(key);
      if (it != snapshot->end()) {
        // Root-kind revalidation on every hit, as for single plans: it
        // guards the case pointer identity cannot (the bound circuit was
        // destroyed and another reallocated at the same address).
        for (size_t i = 0; i < key.size(); ++i) {
          TUD_CHECK(it->second.root_kinds[i] == circuit.kind(key[i]))
              << "cached batch plan does not match the circuit it is "
                 "executed against";
        }
        // Aliasing shared_ptr: the entry lives as long as its snapshot.
        decision =
            std::shared_ptr<const CachedBatchPlan>(snapshot, &it->second);
      }
    }
  }
  if (decision == nullptr) {
    auto built = std::make_shared<CachedBatchPlan>(DecideBatch(circuit, key));
    batch_builds_.fetch_add(1, std::memory_order_relaxed);
    built->root_kinds.reserve(key.size());
    for (GateId root : key) built->root_kinds.push_back(circuit.kind(root));
    if (cache_plans_) {
      // Copy-on-write publication under the writer mutex. Concurrent
      // misses for the same new root set may both build; one insert
      // wins, the other becomes the winner's value — benign, identical
      // plans.
      std::lock_guard<std::mutex> lock(batch_mu_);
      std::shared_ptr<const BatchMap> old =
          batch_published_.load(std::memory_order_relaxed);
      auto next = old != nullptr ? std::make_shared<BatchMap>(*old)
                                 : std::make_shared<BatchMap>();
      if (next->size() >= kMaxBatchPlans && next->find(key) == next->end()) {
        // FIFO eviction: drop only the oldest entry (smallest insertion
        // seq) — hot batteries survive cache pressure instead of the
        // whole memo being wiped.
        auto victim = next->begin();
        for (auto it = std::next(next->begin()); it != next->end(); ++it) {
          if (it->second.seq < victim->second.seq) victim = it;
        }
        next->erase(victim);
      }
      built->seq = ++batch_seq_;
      next->insert_or_assign(key, *built);
      batch_published_.store(std::move(next), std::memory_order_release);
    }
    decision = std::move(built);
  }

  // Execute every group into canonical slots, then map back to caller
  // order (duplicates land on the same canonical result).
  std::vector<EngineResult> canonical(key.size());
  for (const BatchGroup& group : decision->groups) {
    bool fall_back_per_root = group.plan == nullptr;
    if (group.plan != nullptr) {
      EngineStats group_stats;
      group.plan->FillStats(&group_stats);
      if (!governed) {
        std::vector<double> values = group.plan->ExecuteBatch(
            registry, evidence, &group_stats, ThreadScratch());
        for (size_t j = 0; j < group.members.size(); ++j) {
          EngineResult& r = canonical[group.members[j]];
          r.engine = name();
          r.value = values[j];
          r.stats = group_stats;
        }
      } else {
        std::vector<double> values;
        EngineStatus st = group.plan->ExecuteBatchGoverned(
            registry, evidence, ThreadScratch(), budget, &values,
            &group_stats);
        if (st == EngineStatus::kOk) {
          for (size_t j = 0; j < group.members.size(); ++j) {
            EngineResult& r = canonical[group.members[j]];
            r.engine = name();
            r.value = values[j];
            r.stats = group_stats;
          }
        } else if (st == EngineStatus::kResourceExhausted) {
          // The shared plan (memoised from an ungoverned decision) is
          // over this call's cell cap; each root's own plan may still
          // fit under it.
          fall_back_per_root = true;
        } else {
          for (uint32_t m : group.members) {
            canonical[m] = MakeStatusResult(name(), st);
            canonical[m].stats = group_stats;
          }
        }
      }
    }
    if (fall_back_per_root) {
      // Per-root members: cached plans at exactly the sequential cost.
      for (uint32_t m : group.members) {
        canonical[m] = EstimateImpl(circuit, key[m], registry, evidence,
                                    budget);
      }
    }
  }
  for (size_t i = 0; i < roots.size(); ++i) {
    results[i] = canonical[slot_of[i]];
    EngineStats& s = results[i].stats;
    s.batch_size = roots.size();
    s.batch_path = decision->path;
    s.batch_shared_cost = decision->shared_cost;
    s.batch_per_root_cost = decision->per_root_cost;
    s.batch_groups = decision->groups.size();
  }
  return results;
}

JunctionTreeEngine::CachedBatchPlan JunctionTreeEngine::DecideBatch(
    const BoolCircuit& circuit, const std::vector<GateId>& roots) const {
  CachedBatchPlan decision;
  const size_t n = roots.size();
  constexpr double kInfiniteCost = std::numeric_limits<double>::infinity();

  // The per-root side of the comparison: one upward sweep each over the
  // root's own min-degree decomposition.
  std::vector<double> root_cost(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    root_cost[i] =
        JunctionTreeAnalysis::Analyze(circuit, roots[i]).TableCost();
    decision.per_root_cost += root_cost[i];
  }

  if (n == 1) {
    // A battery of one: the shared pass costs two sweeps where the
    // per-root plan costs one; no decision to make.
    decision.shared_cost = 2.0 * root_cost[0];
    decision.path = BatchPath::kPerRoot;
    decision.groups.push_back(BatchGroup{{0}, nullptr});
    return decision;
  }

  // The shared side: a calibrating upward plus a pruned downward sweep
  // over the union cone's decomposition — a union too wide for exact
  // message passing is infinitely expensive.
  JunctionTreeAnalysis union_analysis =
      JunctionTreeAnalysis::AnalyzeBatch(circuit, roots);
  const bool union_fits =
      union_analysis.trivial() ||
      union_analysis.MinDegreeWidth() <= kMaxExactMessagePassingWidth;
  decision.shared_cost =
      union_fits ? 2.0 * union_analysis.TableCost() : kInfiniteCost;
  if (decision.shared_cost <= decision.per_root_cost) {
    BatchGroup all;
    all.members.resize(n);
    std::iota(all.members.begin(), all.members.end(), 0u);
    all.plan = std::make_shared<const JunctionTreePlan>(
        JunctionTreePlan::BuildBatch(std::move(union_analysis),
                                     seed_topological_));
    decision.groups.push_back(std::move(all));
    decision.path = BatchPath::kShared;
    return decision;
  }

  // The whole set loses: propose cone-overlap groups and run the same
  // comparison per group — the middle path between all-shared and
  // all-per-root.
  bool any_shared = false;
  for (std::vector<uint32_t>& members :
       GroupRootsByConeOverlap(circuit, roots)) {
    BatchGroup group;
    group.members = std::move(members);
    if (group.members.size() > 1) {
      std::vector<GateId> subset;
      subset.reserve(group.members.size());
      double sequential = 0;
      for (uint32_t m : group.members) {
        subset.push_back(roots[m]);
        sequential += root_cost[m];
      }
      JunctionTreeAnalysis group_analysis =
          JunctionTreeAnalysis::AnalyzeBatch(circuit, subset);
      const bool fits =
          group_analysis.trivial() ||
          group_analysis.MinDegreeWidth() <= kMaxExactMessagePassingWidth;
      if (fits && 2.0 * group_analysis.TableCost() <= sequential) {
        group.plan = std::make_shared<const JunctionTreePlan>(
            JunctionTreePlan::BuildBatch(std::move(group_analysis),
                                         seed_topological_));
        any_shared = true;
      }
    }
    decision.groups.push_back(std::move(group));
  }
  decision.path = any_shared ? BatchPath::kGrouped : BatchPath::kPerRoot;
  return decision;
}

size_t JunctionTreeEngine::batch_cache_size() const {
  std::shared_ptr<const BatchMap> snapshot =
      batch_published_.load(std::memory_order_acquire);
  return snapshot == nullptr ? 0 : snapshot->size();
}

EngineResult BddEngine::EstimateImpl(const BoolCircuit& circuit, GateId root,
                                     const EventRegistry& registry,
                                     const Evidence& evidence,
                                     const QueryBudget& budget) {
  EngineResult result;
  result.engine = name();
  auto [cone, cone_root] = evidence.empty()
                               ? circuit.ExtractCone(root)
                               : PinEvidence(circuit, root, registry,
                                             evidence);
  const uint32_t num_levels = static_cast<uint32_t>(registry.size());
  std::vector<uint32_t> levels(num_levels);
  std::vector<double> probs(num_levels);
  for (uint32_t e = 0; e < num_levels; ++e) {
    levels[e] = e;
    probs[e] = registry.probability(e);
  }
  BddManager manager(num_levels);
  result.stats.cone_events = CountConeEvents(cone, cone_root);
  if (budget.unlimited()) {
    BddRef f = manager.FromCircuit(cone, cone_root, levels);
    result.value = manager.Wmc(f, probs);
    result.stats.bdd_nodes = manager.NumNodes();
    return result;
  }
  // Governed: the cell cap doubles as a node cap on the compilation, so
  // a blowing-up BDD trips resource_exhausted instead of eating memory.
  BudgetMeter meter(budget);
  EngineStatus st = EngineStatus::kOk;
  std::optional<BddRef> f =
      manager.FromCircuitGoverned(cone, cone_root, levels, meter, &st);
  result.stats.bdd_nodes = manager.NumNodes();
  if (!f.has_value()) {
    result.status = st;
    result.error_bound = 1.0;
    return result;
  }
  result.value = manager.Wmc(*f, probs);
  return result;
}

EngineResult ConditioningEngine::EstimateImpl(const BoolCircuit& circuit,
                                              GateId root,
                                              const EventRegistry& registry,
                                              const Evidence& evidence,
                                              const QueryBudget& budget) {
  EngineResult result;
  result.engine = name();
  const bool governed = !budget.unlimited();
  if (evidence.empty()) {
    if (!governed) {
      result.value =
          JunctionTreeProbability(circuit, root, registry, &result.stats);
      return result;
    }
    JunctionTreePlan plan = JunctionTreePlan::Build(
        JunctionTreeAnalysis::Analyze(circuit, root), false, budget);
    plan.FillStats(&result.stats);
    if (plan.build_status() != EngineStatus::kOk) {
      result.status = plan.build_status();
      result.error_bound = 1.0;
      return result;
    }
    double value = 0.0;
    EngineStatus st =
        plan.ExecuteGoverned(registry, {}, ThreadScratch(), budget, &value);
    if (st != EngineStatus::kOk) {
      result.status = st;
      result.error_bound = 1.0;
      return result;
    }
    result.value = value;
    return result;
  }
  // The §4 route: materialise the observation as a gate and compute
  // P(root ∧ obs) / P(obs) with two message-passing runs. Works on a
  // copy — the adapter's contract is not to grow the caller's circuit.
  BoolCircuit working = circuit;
  std::vector<GateId> literals;
  literals.reserve(evidence.size());
  for (const auto& [e, v] : evidence) {
    GateId var = working.AddVar(e);
    literals.push_back(v ? var : working.AddNot(var));
  }
  GateId observation = working.AddAnd(std::move(literals));
  if (!governed) {
    std::optional<double> conditional =
        ConditionalProbability(working, root, observation, registry);
    if (!conditional.has_value()) {
      // A zero-probability observation has no conditional — a malformed
      // request, not a reason to abort the process.
      result.status = EngineStatus::kInvalidArgument;
      result.error_bound = 1.0;
      return result;
    }
    result.value = *conditional;
    return result;
  }
  // Governed: the same two runs, each over a budget-gated plan (the
  // caps apply to each run; a trip in either fails the conditional).
  GateId joint = working.AddAnd({root, observation});
  double p_obs = 0.0;
  double p_joint = 0.0;
  for (const auto& [target, out] :
       {std::pair<GateId, double*>{observation, &p_obs},
        std::pair<GateId, double*>{joint, &p_joint}}) {
    JunctionTreePlan plan = JunctionTreePlan::Build(
        JunctionTreeAnalysis::Analyze(working, target), false, budget);
    if (plan.build_status() != EngineStatus::kOk) {
      result.status = plan.build_status();
      result.error_bound = 1.0;
      return result;
    }
    EngineStatus st =
        plan.ExecuteGoverned(registry, {}, ThreadScratch(), budget, out);
    if (st != EngineStatus::kOk) {
      result.status = st;
      result.error_bound = 1.0;
      return result;
    }
  }
  if (p_obs == 0.0) {
    result.status = EngineStatus::kInvalidArgument;
    result.error_bound = 1.0;
    return result;
  }
  result.value = p_joint / p_obs;
  return result;
}

// ---------------------------------------------------------------------------
// Sampling-based adapters
// ---------------------------------------------------------------------------

EngineResult SamplingEngine::EstimateImpl(const BoolCircuit& circuit,
                                          GateId root,
                                          const EventRegistry& registry,
                                          const Evidence& evidence,
                                          const QueryBudget& budget) {
  EngineResult result;
  result.engine = name();
  // Error bound: normal approximation, with the rule-of-three at the
  // degenerate empirical extremes (p-hat of exactly 0 or 1 would
  // otherwise report error 0, i.e. claim an unconverged estimate is
  // exact).
  auto bound_for = [](double p, uint32_t n) {
    return p > 0.0 && p < 1.0 ? 1.96 * std::sqrt(p * (1.0 - p) / n)
                              : 3.0 / n;
  };
  if (budget.unlimited()) {
    result.stats.num_samples = num_samples_;
    double p;
    if (!evidence.empty()) {
      auto [restricted, restricted_root] =
          PinEvidence(circuit, root, registry, evidence);
      p = SampleProbability(restricted, restricted_root, registry,
                            num_samples_, rng_);
    } else {
      p = SampleProbability(circuit, root, registry, num_samples_, rng_);
    }
    result.value = p;
    result.error_bound = bound_for(p, num_samples_);
    return result;
  }
  // Governed: a sample cap lowers the target up front; a deadline or
  // cancellation mid-loop keeps the estimate over the samples actually
  // drawn (a degraded kOk answer with an honest bound), failing only
  // when not a single sample completed.
  uint32_t target = num_samples_;
  if (budget.max_samples != 0) target = std::min(target, budget.max_samples);
  BudgetMeter meter(budget);
  double value = 0.0;
  uint32_t done = 0;
  EngineStatus st;
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    st = SampleProbabilityGoverned(restricted, restricted_root, registry,
                                   target, rng_, meter, &value, &done);
  } else {
    st = SampleProbabilityGoverned(circuit, root, registry, target, rng_,
                                   meter, &value, &done);
  }
  result.stats.num_samples = done;
  if (done == 0 && st != EngineStatus::kOk) {
    result.status = st;
    result.error_bound = 1.0;
    return result;
  }
  result.value = value;
  result.error_bound = bound_for(value, done);
  return result;
}

EngineResult HybridEngine::EstimateImpl(const BoolCircuit& circuit,
                                        GateId root,
                                        const EventRegistry& registry,
                                        const Evidence& evidence,
                                        const QueryBudget& budget) {
  if (!evidence.empty()) {
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    Evidence none;
    return EstimateImpl(restricted, restricted_root, registry, none, budget);
  }
  return EstimateWithCore(
      circuit, root, registry,
      SelectCoreEvents(circuit, root, target_width_, max_core_), budget);
}

EngineResult HybridEngine::EstimateWithCore(const BoolCircuit& circuit,
                                            GateId root,
                                            const EventRegistry& registry,
                                            const std::vector<EventId>& core) {
  return EstimateWithCore(circuit, root, registry, core, QueryBudget{});
}

EngineResult HybridEngine::EstimateWithCore(const BoolCircuit& circuit,
                                            GateId root,
                                            const EventRegistry& registry,
                                            const std::vector<EventId>& core,
                                            const QueryBudget& budget) {
  const bool governed = !budget.unlimited();
  if (core.empty()) {
    // Already narrow: one exact message-passing run, no sampling.
    EngineResult result;
    result.engine = name();
    if (!governed) {
      result.value =
          JunctionTreeProbability(circuit, root, registry, &result.stats);
      return result;
    }
    JunctionTreePlan plan = JunctionTreePlan::Build(
        JunctionTreeAnalysis::Analyze(circuit, root), false, budget);
    plan.FillStats(&result.stats);
    if (plan.build_status() != EngineStatus::kOk) {
      result.status = plan.build_status();
      result.error_bound = 1.0;
      return result;
    }
    double value = 0.0;
    EngineStatus st =
        plan.ExecuteGoverned(registry, {}, ThreadScratch(), budget, &value);
    if (st != EngineStatus::kOk) {
      result.status = st;
      result.error_bound = 1.0;
      return result;
    }
    result.value = value;
    return result;
  }
  if (!governed) {
    EngineResult result =
        HybridProbability(circuit, root, registry, core, num_samples_, rng_);
    result.engine = name();
    return result;
  }
  uint32_t target = num_samples_;
  if (budget.max_samples != 0) target = std::min(target, budget.max_samples);
  BudgetMeter meter(budget);
  EngineResult result;
  EngineStatus st = HybridProbabilityGoverned(circuit, root, registry, core,
                                              target, rng_, meter, &result);
  result.engine = name();
  if (st != EngineStatus::kOk && result.stats.num_samples == 0) {
    result.status = st;
    result.error_bound = 1.0;
  }
  // A mid-run trip with completed samples stays a degraded kOk answer:
  // the estimate and its bound are honest for the samples drawn.
  return result;
}

// ---------------------------------------------------------------------------
// AutoEngine
// ---------------------------------------------------------------------------

AutoEngine::AutoEngine(const Limits& limits)
    : limits_(limits),
      hybrid_(limits.hybrid_target_width, limits.hybrid_max_core,
              limits.hybrid_num_samples, limits.seed),
      sampling_(limits.sampling_num_samples, limits.seed) {}

EngineResult AutoEngine::EstimateImpl(const BoolCircuit& circuit, GateId root,
                                      const EventRegistry& registry,
                                      const Evidence& evidence,
                                      const QueryBudget& budget) {
  if (!evidence.empty()) {
    // Pin once, then plan on the restricted circuit: pinning both
    // shrinks the cone and is how every delegate would condition anyway.
    auto [restricted, restricted_root] =
        PinEvidence(circuit, root, registry, evidence);
    return Plan(restricted, restricted_root, registry, budget);
  }
  return Plan(circuit, root, registry, budget);
}

EngineResult AutoEngine::Plan(const BoolCircuit& circuit, GateId root,
                              const EventRegistry& registry,
                              const QueryBudget& budget) {
  const size_t cone_events = CountConeEvents(circuit, root);
  const Evidence none;
  // Under a budget a rung that trips kResourceExhausted falls through to
  // the next cheaper rung (counted in stats.degradations); a deadline or
  // cancellation surfaces directly — no cheaper rung can beat a clock
  // that has already run out.
  uint32_t degradations = 0;
  auto finish = [&](EngineResult result) {
    result.stats.cone_events = cone_events;
    result.stats.degradations = degradations;
    return result;
  };
  auto hard_trip = [](EngineStatus st) {
    return st == EngineStatus::kDeadlineExceeded ||
           st == EngineStatus::kCancelled ||
           st == EngineStatus::kInvalidArgument;
  };

  if (cone_events <= limits_.exhaustive_max_events) {
    EngineResult result =
        exhaustive_.Estimate(circuit, root, registry, none, budget);
    if (result.status != EngineStatus::kResourceExhausted) {
      return finish(std::move(result));
    }
    ++degradations;
  }
  if (cone_events <= limits_.bdd_max_events) {
    EngineResult result = bdd_.Estimate(circuit, root, registry, none, budget);
    if (result.status != EngineStatus::kResourceExhausted) {
      return finish(std::move(result));
    }
    ++degradations;
  }

  // Cheap width estimate of the binarised cone's primal graph — the
  // analysis *is* the first half of a junction-tree Build, so when
  // message passing is chosen the decomposition work is handed to the
  // plan instead of being recomputed.
  JunctionTreeAnalysis analysis = JunctionTreeAnalysis::Analyze(circuit, root);
  const int width = analysis.trivial() ? 0 : analysis.MinDegreeWidth();
  if (width <= limits_.jt_max_width) {
    if (budget.unlimited()) {
      JunctionTreePlan plan = JunctionTreePlan::Build(
          std::move(analysis), limits_.seed_topological);
      EngineResult result;
      result.engine = "junction_tree";
      plan.FillStats(&result.stats);
      result.value = plan.Execute(registry);
      return finish(std::move(result));
    }
    JunctionTreePlan plan = JunctionTreePlan::Build(
        std::move(analysis), limits_.seed_topological, budget);
    EngineResult result;
    result.engine = "junction_tree";
    plan.FillStats(&result.stats);
    EngineStatus st = plan.build_status();
    if (st == EngineStatus::kOk) {
      double value = 0.0;
      st = plan.ExecuteGoverned(registry, {}, ThreadScratch(), budget,
                                &value);
      if (st == EngineStatus::kOk) {
        result.value = value;
        return finish(std::move(result));
      }
    }
    if (hard_trip(st)) {
      result.status = st;
      result.error_bound = 1.0;
      return finish(std::move(result));
    }
    // The exact plan priced (or ran) over the cell cap: degrade to the
    // core/tentacle estimator, then to bounded sampling.
    ++degradations;
  }
  std::vector<EventId> core = SelectCoreEvents(
      circuit, root, limits_.hybrid_target_width, limits_.hybrid_max_core);
  if (!core.empty()) {
    // Only worth the per-sample exact runs if the core actually tames
    // the width; SelectCoreEvents stops early when it cannot.
    std::vector<std::optional<bool>> fixed(registry.size());
    for (EventId e : core) fixed[e] = true;
    auto [restricted, restricted_root] =
        RestrictCircuit(circuit, root, fixed);
    auto [rbin, rremap] = restricted.Binarize();
    GateId rroot = rremap[restricted_root];
    int rwidth = 0;
    if (rbin.kind(rroot) != GateKind::kConst) {
      Graph rgraph(static_cast<uint32_t>(rbin.NumGates()));
      for (const auto& [a, b] : rbin.PrimalEdges()) rgraph.AddEdge(a, b);
      rwidth = static_cast<int>(
          EliminationWidth(rgraph, CircuitMinDegreeOrder(rgraph)));
    }
    if (rwidth <= limits_.jt_max_width) {
      // Hand the selected core over: the hybrid engine would otherwise
      // repeat the whole SelectCoreEvents restrict/min-fill loop.
      EngineResult result =
          budget.unlimited()
              ? hybrid_.EstimateWithCore(circuit, root, registry, core)
              : hybrid_.EstimateWithCore(circuit, root, registry, core,
                                         budget);
      if (result.status != EngineStatus::kResourceExhausted) {
        return finish(std::move(result));
      }
      ++degradations;
    }
  }
  EngineResult result =
      sampling_.Estimate(circuit, root, registry, none, budget);
  return finish(std::move(result));
}

std::unique_ptr<ProbabilityEngine> MakeAutoEngine() {
  return std::make_unique<AutoEngine>();
}

}  // namespace tud
