#ifndef TUD_PERSIST_CHECKPOINT_H_
#define TUD_PERSIST_CHECKPOINT_H_

/// Checkpoint (snapshot) format of the durability layer: one versioned,
/// CRC32C-checksummed image of everything a DurableSession needs to
/// rebuild its in-memory state without replaying the full log —
/// schema, event registry, the annotation circuit *gate-for-gate*
/// (ids preserved, so replayed mutations hash-cons identically), facts,
/// the instance decomposition exactly as the live session last repaired
/// it, the repair-slack anchor, deletion tombstones, registered query
/// definitions with their expected roots, and the WAL watermark (the
/// LSN up to which the image already reflects the log).
///
/// The decomposition is serialized in full — not just its elimination
/// order — because recovery must be *bit-identical*: covered-bag
/// repairs mutate facts_at_node without changing the order, and a
/// re-derivation from the order alone would assign facts differently,
/// making replayed structural updates emit different gates than the
/// live session did.
///
/// File layout: "TUDCKPT1" magic, format version (u32),
/// payload length (u64), crc32c(payload) (u32), payload. Writers
/// produce the image at `path + ".tmp"`, fsync, then rename — a
/// checkpoint is either fully visible or absent, never torn.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "queries/conjunctive_query.h"
#include "relational/schema.h"
#include "treedec/nice_decomposition.h"
#include "util/budget.h"

namespace tud {
namespace persist {

/// Decoded checkpoint image. Plain data; DurableSession builds one from
/// its live state and rebuilds live state from one.
struct CheckpointState {
  uint64_t seq = 0;      ///< Checkpoint sequence number (monotonic).
  uint64_t wal_lsn = 0;  ///< Watermark: records with lsn < this are
                         ///< already reflected in the image.

  Schema schema;
  /// Registry content, in EventId order (ids are dense, so position i
  /// restores event i).
  std::vector<std::pair<std::string, double>> events;

  struct Gate {
    GateKind kind = GateKind::kConst;
    bool const_value = false;
    EventId var = kInvalidEvent;
    std::vector<GateId> inputs;
  };
  std::vector<Gate> gates;  ///< In GateId order.

  struct FactRow {
    RelationId relation = 0;
    std::vector<Value> args;
    GateId annotation = kInvalidGate;
  };
  std::vector<FactRow> facts;  ///< In FactId order.

  /// The session decomposition, present iff the live session had built
  /// one. Serialized raw (all four nice-node arrays plus the fact
  /// assignment) for exactness.
  bool has_decomposition = false;
  std::vector<NiceNodeKind> ntd_kinds;
  std::vector<VertexId> ntd_vertices;
  std::vector<std::vector<VertexId>> ntd_bags;
  std::vector<std::vector<NiceNodeId>> ntd_children;
  std::vector<std::vector<FactId>> facts_at_node;
  int width = -1;
  std::vector<VertexId> elimination_order;

  int searched_width = -1;  ///< IncrementalSession repair-slack anchor.
  std::vector<std::pair<EventId, bool>> tombstones;

  struct QueryRow {
    uint8_t kind = 0;  ///< 0 = CQ, 1 = reachability.
    ConjunctiveQuery cq;
    RelationId relation = 0;
    Value source = 0;
    Value target = 0;
    GateId root = kInvalidGate;  ///< Expected root after re-registration.
  };
  std::vector<QueryRow> queries;  ///< In QueryId order.
};

/// Serializes `state` to `path` atomically (tmp + fsync + rename).
/// Returns kOk or kIoError; on kIoError no (possibly partial) file is
/// left at `path` — at worst a stale ".tmp" that later writers
/// overwrite.
EngineStatus WriteCheckpoint(const std::string& path,
                             const CheckpointState& state);

/// Loads and verifies a checkpoint. Any damage — bad magic, unknown
/// version, checksum mismatch, short file, decode overrun, internal
/// inconsistency (gate inputs ≥ gate id, annotation out of range) —
/// returns kIoError and leaves `out` unspecified. Never aborts.
EngineStatus ReadCheckpoint(const std::string& path, CheckpointState* out);

}  // namespace persist
}  // namespace tud

#endif  // TUD_PERSIST_CHECKPOINT_H_
