#include "persist/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "persist/codec.h"
#include "util/fault_injection.h"

namespace tud {
namespace persist {

namespace {

constexpr char kWalMagic[8] = {'T', 'U', 'D', 'W', 'A', 'L', '0', '1'};
constexpr size_t kWalHeaderSize = 24;  // magic + base_lsn + crc + reserved.
constexpr size_t kFrameHeaderSize = 8;  // payload_len + payload_crc.
/// Frame lengths above this are rejected as corruption: no legitimate
/// record (a single mutation) comes anywhere near it.
constexpr uint32_t kMaxPayloadLen = 1u << 28;

std::vector<uint8_t> EncodeWalHeader(uint64_t base_lsn) {
  ByteWriter w;
  for (char c : kWalMagic) w.U8(static_cast<uint8_t>(c));
  w.U64(base_lsn);
  w.U32(Crc32c(w.bytes()));
  w.U32(0);  // reserved
  return std::move(w.bytes());
}

void EncodeTerm(ByteWriter& w, const Term& t) {
  w.U8(t.is_var ? 1 : 0);
  w.U32(t.var);
  w.U32(t.constant);
}

bool DecodeTerm(ByteReader& r, Term* t) {
  t->is_var = r.U8() != 0;
  t->var = r.U32();
  t->constant = r.U32();
  return r.ok();
}

}  // namespace

std::vector<uint8_t> EncodeWalRecord(const WalRecord& record) {
  ByteWriter w;
  w.U8(static_cast<uint8_t>(record.type));
  switch (record.type) {
    case WalRecordType::kRegisterEvent:
      w.Str(record.name);
      w.F64(record.probability);
      w.U32(record.event);
      break;
    case WalRecordType::kSetProbability:
    case WalRecordType::kUpdateProbability:
      w.U32(record.event);
      w.F64(record.probability);
      break;
    case WalRecordType::kInsertFact:
      w.U32(record.relation);
      w.VecU32(record.args);
      w.F64(record.probability);
      w.U32(record.fact);
      w.U32(record.event);
      w.U32(record.root);
      break;
    case WalRecordType::kDeleteFact:
      w.U32(record.fact);
      break;
    case WalRecordType::kEpochPublish:
      w.U64(record.epoch);
      break;
    case WalRecordType::kRegisterCq: {
      w.U32(static_cast<uint32_t>(record.cq.NumAtoms()));
      for (const QueryAtom& atom : record.cq.atoms()) {
        w.U32(atom.relation);
        w.U32(static_cast<uint32_t>(atom.terms.size()));
        for (const Term& t : atom.terms) EncodeTerm(w, t);
      }
      w.U32(record.root);
      break;
    }
    case WalRecordType::kRegisterReachability:
      w.U32(record.relation);
      w.U32(record.source);
      w.U32(record.target);
      w.U32(record.root);
      break;
  }
  return std::move(w.bytes());
}

bool DecodeWalRecord(const uint8_t* data, size_t size, WalRecord* out) {
  ByteReader r(data, size);
  const uint8_t type = r.U8();
  if (!r.ok()) return false;
  if (type < static_cast<uint8_t>(WalRecordType::kRegisterEvent) ||
      type > static_cast<uint8_t>(WalRecordType::kRegisterReachability)) {
    return false;
  }
  *out = WalRecord{};
  out->type = static_cast<WalRecordType>(type);
  switch (out->type) {
    case WalRecordType::kRegisterEvent:
      out->name = r.Str();
      out->probability = r.F64();
      out->event = r.U32();
      break;
    case WalRecordType::kSetProbability:
    case WalRecordType::kUpdateProbability:
      out->event = r.U32();
      out->probability = r.F64();
      break;
    case WalRecordType::kInsertFact:
      out->relation = r.U32();
      out->args = r.VecU32();
      out->probability = r.F64();
      out->fact = r.U32();
      out->event = r.U32();
      out->root = r.U32();
      break;
    case WalRecordType::kDeleteFact:
      out->fact = r.U32();
      break;
    case WalRecordType::kEpochPublish:
      out->epoch = r.U64();
      break;
    case WalRecordType::kRegisterCq: {
      const uint32_t num_atoms = r.U32();
      // Mirror the lineage DP's complexity limits so replaying a decoded
      // query can never reach a TUD_CHECK abort.
      if (!r.ok() || num_atoms > 16) return false;
      for (uint32_t a = 0; a < num_atoms; ++a) {
        const RelationId relation = r.U32();
        const uint32_t num_terms = r.U32();
        if (!r.ok() || num_terms > 64) return false;
        std::vector<Term> terms;
        terms.reserve(num_terms);
        for (uint32_t t = 0; t < num_terms; ++t) {
          Term term;
          if (!DecodeTerm(r, &term)) return false;
          terms.push_back(term);
        }
        out->cq.AddAtom(relation, std::move(terms));
      }
      out->root = r.U32();
      break;
    }
    case WalRecordType::kRegisterReachability:
      out->relation = r.U32();
      out->source = r.U32();
      out->target = r.U32();
      out->root = r.U32();
      break;
  }
  return r.done();
}

// ---------------------------------------------------------------------------
// WalWriter

WalWriter::WalWriter(int fd, std::string path, uint64_t next_lsn,
                     const WalOptions& options)
    : fd_(fd), path_(std::move(path)), next_lsn_(next_lsn),
      options_(options) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

EngineStatus WalWriter::Create(const std::string& path, uint64_t base_lsn,
                               const WalOptions& options,
                               std::unique_ptr<WalWriter>* out) {
  const int fd =
      ::open(path.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return EngineStatus::kIoError;
  const std::vector<uint8_t> header = EncodeWalHeader(base_lsn);
  const ssize_t n = ::write(fd, header.data(), header.size());
  if (n != static_cast<ssize_t>(header.size()) || ::fsync(fd) != 0) {
    ::close(fd);
    return EngineStatus::kIoError;
  }
  out->reset(new WalWriter(fd, path, base_lsn, options));
  return EngineStatus::kOk;
}

EngineStatus WalWriter::OpenForAppend(const std::string& path,
                                      uint64_t next_lsn,
                                      const WalOptions& options,
                                      std::unique_ptr<WalWriter>* out) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND | O_CLOEXEC);
  if (fd < 0) return EngineStatus::kIoError;
  out->reset(new WalWriter(fd, path, next_lsn, options));
  return EngineStatus::kOk;
}

EngineStatus WalWriter::Append(const WalRecord& record) {
  if (broken_ || fd_ < 0) return EngineStatus::kIoError;
  const std::vector<uint8_t> payload = EncodeWalRecord(record);
  if (payload.size() > kMaxPayloadLen) return EngineStatus::kIoError;

  ByteWriter frame;
  frame.U32(static_cast<uint32_t>(payload.size()));
  frame.U32(Crc32c(payload));
  frame.bytes().insert(frame.bytes().end(), payload.begin(), payload.end());

  // Injected silent corruption: flip one bit of the *payload* region
  // after its checksum was computed, so the bytes hit disk "successfully"
  // and only the reader's CRC check can catch the damage.
  const int64_t flip = fault::MaybeFlipBit(payload.size());
  if (flip >= 0) {
    frame.bytes()[kFrameHeaderSize + static_cast<size_t>(flip / 8)] ^=
        static_cast<uint8_t>(1u << (flip % 8));
  }

  // Injected torn write: leave a strict prefix of the frame on disk and
  // report failure — modelling a crash mid-append, which is why the
  // writer does NOT clean up the prefix (a crashed process couldn't).
  if (fault::ShouldFailWrite()) {
    const size_t torn = frame.size() > 1 ? frame.size() / 2 : 0;
    if (torn > 0) {
      (void)!::write(fd_, frame.bytes().data(), torn);
    }
    broken_ = true;
    return EngineStatus::kIoError;
  }

  const ssize_t n = ::write(fd_, frame.bytes().data(), frame.size());
  if (n != static_cast<ssize_t>(frame.size())) {
    broken_ = true;  // Short or failed write: on-disk suffix untrusted.
    return EngineStatus::kIoError;
  }
  ++next_lsn_;
  if (options_.sync_each_append) return Sync();
  return EngineStatus::kOk;
}

EngineStatus WalWriter::Sync() {
  if (broken_ || fd_ < 0) return EngineStatus::kIoError;
  if (fault::ShouldFailFlush() || ::fsync(fd_) != 0) {
    broken_ = true;  // Failed fsync leaves the on-disk state unknown.
    return EngineStatus::kIoError;
  }
  return EngineStatus::kOk;
}

// ---------------------------------------------------------------------------
// ReadWal

WalReadResult ReadWal(const std::string& path) {
  WalReadResult result;
  std::vector<uint8_t> bytes;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
      result.status = EngineStatus::kIoError;
      return result;
    }
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
      std::fclose(f);
      result.status = EngineStatus::kIoError;
      return result;
    }
    bytes.resize(static_cast<size_t>(size));
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      std::fclose(f);
      result.status = EngineStatus::kIoError;
      return result;
    }
    std::fclose(f);
  }

  result.file_size = bytes.size();

  // Header. A file shorter than the header can only be a rotation torn
  // mid-create; the caller decides whether a checkpoint makes that
  // recoverable. Full-size headers must verify exactly.
  if (bytes.size() < kWalHeaderSize) {
    result.status = EngineStatus::kIoError;
    result.bad_header = true;
    result.torn_bytes = bytes.size();
    return result;
  }
  {
    ByteReader r(bytes.data(), kWalHeaderSize);
    char magic[8];
    for (char& c : magic) c = static_cast<char>(r.U8());
    const uint64_t base_lsn = r.U64();
    const uint32_t crc = r.U32();
    if (std::memcmp(magic, kWalMagic, sizeof(kWalMagic)) != 0 ||
        crc != Crc32c(bytes.data(), 16)) {
      result.status = EngineStatus::kIoError;
      result.bad_header = true;
      return result;
    }
    result.base_lsn = base_lsn;
  }

  size_t pos = kWalHeaderSize;
  result.valid_bytes = pos;
  uint64_t lsn = result.base_lsn;
  while (pos < bytes.size()) {
    const size_t remaining = bytes.size() - pos;
    if (remaining < kFrameHeaderSize) {
      // Partial frame header at EOF: torn tail (records are written
      // with a single write(2), so only the final record can be short).
      result.torn_bytes = remaining;
      return result;
    }
    ByteReader fh(bytes.data() + pos, kFrameHeaderSize);
    const uint32_t payload_len = fh.U32();
    const uint32_t payload_crc = fh.U32();
    if (payload_len > kMaxPayloadLen) {
      // A torn write cannot change already-written header bytes, so an
      // insane length is corruption, not tearing.
      result.status = EngineStatus::kIoError;
      return result;
    }
    if (remaining - kFrameHeaderSize < payload_len) {
      // Full frame header, short payload at EOF: torn tail.
      result.torn_bytes = remaining;
      return result;
    }
    const uint8_t* payload = bytes.data() + pos + kFrameHeaderSize;
    if (Crc32c(payload, payload_len) != payload_crc) {
      result.status = EngineStatus::kIoError;
      return result;
    }
    WalRecord record;
    if (!DecodeWalRecord(payload, payload_len, &record)) {
      result.status = EngineStatus::kIoError;
      return result;
    }
    record.lsn = lsn++;
    result.records.push_back(std::move(record));
    pos += kFrameHeaderSize + payload_len;
    result.valid_bytes = pos;
  }
  return result;
}

EngineStatus TruncateToValidPrefix(const std::string& path,
                                   uint64_t valid_bytes) {
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return EngineStatus::kIoError;
  }
  return EngineStatus::kOk;
}

}  // namespace persist
}  // namespace tud
