#ifndef TUD_PERSIST_DURABLE_SESSION_H_
#define TUD_PERSIST_DURABLE_SESSION_H_

/// Durable incremental serving state: an IncrementalSession whose every
/// mutation is written to a write-ahead log *before* it is applied, and
/// which can be checkpointed and crash-recovered from a directory.
///
/// Layout of a session directory:
///
///   wal-<seq>.log          the active log (rotated at checkpoints)
///   checkpoint-<seq>.ckpt  full-state snapshots (last two retained)
///   checkpoint-*.ckpt.tmp  in-flight snapshot writes (ignored/replaced)
///
/// Ordering contract (the ISSUE's append-after-validate fix): every
/// mutation is validated first (returning kInvalidArgument with no
/// state change and *no log record* when the live session would reject
/// it), then appended to the WAL (an append failure leaves the mutation
/// unapplied and returns kIoError), then applied. The log therefore
/// never replays a mutation the live session rejected, and a mutation
/// acknowledged kOk is on disk. Query *registrations* are the one
/// exception: their lineage root is only known after the DP runs, so
/// they apply first and append after — an append failure there breaks
/// the writer (all later durable mutations fail with kIoError) instead
/// of leaving a silent divergence.
///
/// Recovery (`DurableSession::Recover`) loads the newest checkpoint
/// that passes verification, replays WAL records with lsn ≥ the
/// checkpoint's watermark in order through the same code paths the live
/// session used (hash-consing makes this deterministic; every record's
/// recorded ids are verified against the replayed ones), truncates a
/// torn final record, and refuses — with kIoError, never an abort or a
/// silently wrong answer — when the log is corrupted mid-stream or the
/// surviving files cannot cover the watermark contiguously. Recovered
/// probabilities are bit-identical to the uncrashed session's (the
/// crash-point fuzz test enumerates every record boundary).
///
/// Not durable, by design: plan caches, message arenas, delta states,
/// the dirty log, statistics, and epoch numbering — all rebuild cold;
/// the first post-recovery query per registered root pays one plan
/// build and one full message pass, with identical results.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "incremental/epoch.h"
#include "incremental/incremental_session.h"
#include "persist/checkpoint.h"
#include "persist/wal.h"
#include "queries/query_session.h"

namespace tud {
namespace persist {

struct PersistOptions {
  /// Write a checkpoint automatically after this many appended records
  /// (0 = checkpoint only on demand). An auto-checkpoint failure is
  /// reported through failed_auto_checkpoints() rather than failing the
  /// mutation that triggered it — the mutation itself is already
  /// durable in the WAL.
  uint64_t checkpoint_every = 0;
  /// fsync the WAL after every append (durability against power loss
  /// per-mutation instead of per-checkpoint/Sync).
  bool sync_each_append = false;
  /// Rotate (and delete) the WAL at each checkpoint. Turning this off
  /// keeps one ever-growing log whose head duplicates checkpointed
  /// records — replay must skip them by watermark, which the
  /// idempotence tests pin.
  bool truncate_wal_on_checkpoint = true;
  incremental::IncrementalOptions incremental;
};

/// What Recover did, for observability and tests.
struct RecoveryStats {
  bool loaded_checkpoint = false;
  uint64_t checkpoint_seq = 0;
  /// Newer checkpoints that failed verification and were bypassed
  /// (recovery then proved WAL coverage from the older base).
  uint64_t checkpoints_skipped = 0;
  uint64_t records_replayed = 0;
  /// Records at lsn < watermark, skipped for idempotence.
  uint64_t records_skipped = 0;
  uint64_t torn_bytes_truncated = 0;
  uint64_t epoch_markers = 0;
};

class DurableSession {
 public:
  /// Creates a fresh session over `schema` in `dir` (created if
  /// missing; must not already contain a session).
  static EngineStatus Create(const std::string& dir, Schema schema,
                             const PersistOptions& options,
                             std::unique_ptr<DurableSession>* out);

  /// Rebuilds a session from `dir`: newest valid checkpoint + WAL
  /// replay. kIoError on unrecoverable damage (see file comment);
  /// `*out` is set only on kOk.
  static EngineStatus Recover(const std::string& dir,
                              const PersistOptions& options,
                              std::unique_ptr<DurableSession>* out,
                              RecoveryStats* stats = nullptr);

  DurableSession(const DurableSession&) = delete;
  DurableSession& operator=(const DurableSession&) = delete;

  // Durable mutations: validate -> append -> apply.

  /// Registers a named event. kInvalidArgument on a duplicate name or
  /// out-of-range probability (nothing logged, nothing applied).
  EngineStatus RegisterEvent(const std::string& name, double probability,
                             EventId* out_event = nullptr);

  /// Load-phase probability assignment: applied through the session
  /// (dirty-marked) but not counted as a serving-phase update.
  EngineStatus SetProbability(EventId event, double probability);

  /// Serving-phase probability update (IncrementalSession semantics).
  EngineStatus UpdateProbability(EventId event, double probability);

  /// Durable IncrementalSession::InsertFact.
  EngineStatus InsertFact(RelationId relation, std::vector<Value> args,
                          double probability,
                          incremental::InsertedFact* out = nullptr);

  /// Durable IncrementalSession::DeleteFact. kInvalidArgument when the
  /// fact id is unknown or its annotation is not a plain event variable
  /// (the same precondition the live session TUD_CHECKs).
  EngineStatus DeleteFact(FactId fact);

  // Durable query registrations: apply -> append (see file comment).

  EngineStatus RegisterCq(const ConjunctiveQuery& query,
                          incremental::QueryId* out_query = nullptr);
  EngineStatus RegisterReachability(RelationId relation, Value source,
                                    Value target,
                                    incremental::QueryId* out_query = nullptr);

  // Queries (not logged; reads).

  EngineResult Probability(incremental::QueryId query,
                           const Evidence& evidence = {}) {
    return incremental_->Probability(query, evidence);
  }
  EngineResult Probability(incremental::QueryId query,
                           const Evidence& evidence,
                           const QueryBudget& budget) {
    return incremental_->Probability(query, evidence, budget);
  }

  /// Publishes an epoch snapshot to `manager` (the serving handoff) and
  /// logs an epoch marker. The publication itself always happens;
  /// kIoError reports only a failed marker append (writer broken).
  EngineStatus PublishSnapshot(incremental::EpochManager& manager,
                               uint64_t* out_epoch = nullptr);

  /// Writes a checkpoint now and (by default) rotates the WAL. On
  /// kIoError the in-memory session is unchanged and the previous
  /// checkpoint/WAL remain authoritative.
  EngineStatus Checkpoint();

  /// fsyncs the WAL: everything appended so far is durable after kOk.
  EngineStatus Sync() { return wal_->Sync(); }

  incremental::IncrementalSession& incremental() { return *incremental_; }
  QuerySession& session() { return *session_; }
  const std::string& dir() const { return dir_; }
  uint64_t next_lsn() const { return wal_->next_lsn(); }
  /// Sequence of the last durable checkpoint (0 = none yet).
  uint64_t checkpoint_seq() const { return last_checkpoint_seq_; }
  uint64_t failed_auto_checkpoints() const {
    return failed_auto_checkpoints_;
  }
  bool writer_broken() const { return wal_->broken(); }

 private:
  DurableSession(std::string dir, PersistOptions options);

  /// Builds the full-state image for Checkpoint().
  CheckpointState BuildCheckpointState(uint64_t seq);

  /// Rebuilds session objects from a decoded checkpoint. kIoError if
  /// re-registration roots diverge from the recorded ones.
  EngineStatus RestoreFromState(const CheckpointState& state);

  /// Applies one replayed record through the live code paths, verifying
  /// recorded ids. kIoError on any divergence.
  EngineStatus ReplayRecord(const WalRecord& record, RecoveryStats* stats);

  void CountAppendAndMaybeCheckpoint();

  std::string dir_;
  PersistOptions options_;
  std::unique_ptr<QuerySession> session_;
  std::unique_ptr<incremental::IncrementalSession> incremental_;
  std::unique_ptr<WalWriter> wal_;
  /// Registered query definitions in QueryId order — the WAL owner
  /// keeps its own copy for checkpoint serialization.
  std::vector<CheckpointState::QueryRow> query_defs_;
  uint64_t last_checkpoint_seq_ = 0;
  uint64_t next_checkpoint_seq_ = 1;
  uint64_t watermark_ = 0;
  uint64_t records_since_checkpoint_ = 0;
  uint64_t failed_auto_checkpoints_ = 0;
};

}  // namespace persist
}  // namespace tud

#endif  // TUD_PERSIST_DURABLE_SESSION_H_
