#include "persist/codec.h"

namespace tud {
namespace persist {

namespace {

/// Reflected CRC32C table, generated once at startup (256 * 4 bytes;
/// the generation loop is ~1us and keeps the source table-free).
struct Crc32cTable {
  uint32_t entry[256];

  Crc32cTable() {
    constexpr uint32_t kPoly = 0x82F63B78u;  // 0x1EDC6F41 reflected.
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      entry[i] = crc;
    }
  }
};

const Crc32cTable& Table() {
  static const Crc32cTable table;
  return table;
}

}  // namespace

uint32_t Crc32c(const uint8_t* data, size_t size) {
  const Crc32cTable& table = Table();
  uint32_t crc = 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ table.entry[(crc ^ data[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace persist
}  // namespace tud
