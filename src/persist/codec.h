#ifndef TUD_PERSIST_CODEC_H_
#define TUD_PERSIST_CODEC_H_

/// Byte-level building blocks of the durability layer: CRC32C
/// (Castagnoli) checksums and a little-endian byte writer/reader pair.
/// Every on-disk structure — WAL records, WAL file headers, checkpoint
/// images — is encoded through these, so torn and corrupted bytes are
/// detected by checksum mismatch instead of being decoded into garbage.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tud {
namespace persist {

/// CRC32C (Castagnoli polynomial 0x1EDC6F41, reflected), the checksum
/// used by every WAL record and checkpoint image. Software slice-by-one
/// table implementation: recovery-path bandwidth is not a bottleneck,
/// and the table form is portable to every CI box.
uint32_t Crc32c(const uint8_t* data, size_t size);
inline uint32_t Crc32c(const std::vector<uint8_t>& data) {
  return Crc32c(data.data(), data.size());
}

/// Append-only little-endian encoder. All integer fields are
/// fixed-width: record sizes stay deterministic, which is what lets the
/// crash-point fuzz test enumerate exact record boundaries.
class ByteWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { Raw(&v, sizeof(v)); }
  void U32(uint32_t v) { Raw(&v, sizeof(v)); }
  void U64(uint64_t v) { Raw(&v, sizeof(v)); }
  void F64(double v) { Raw(&v, sizeof(v)); }
  void Str(const std::string& s) {
    U32(static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }
  void VecU32(const std::vector<uint32_t>& v) {
    U32(static_cast<uint32_t>(v.size()));
    for (uint32_t x : v) U32(x);
  }

  const std::vector<uint8_t>& bytes() const { return buf_; }
  std::vector<uint8_t>& bytes() { return buf_; }
  size_t size() const { return buf_.size(); }

 private:
  void Raw(const void* p, size_t n) {
    const uint8_t* b = static_cast<const uint8_t*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }

  std::vector<uint8_t> buf_;
};

/// Bounds-checked little-endian decoder over a byte span. Every Read
/// reports success; a decode that runs past the end flips ok() to
/// false and returns zeros, so corrupted (but checksum-colliding)
/// payloads degrade to a typed decode failure, never UB.
class ByteReader {
 public:
  ByteReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit ByteReader(const std::vector<uint8_t>& data)
      : ByteReader(data.data(), data.size()) {}

  uint8_t U8() {
    uint8_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint16_t U16() {
    uint16_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint32_t U32() {
    uint32_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  uint64_t U64() {
    uint64_t v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  double F64() {
    double v = 0;
    Raw(&v, sizeof(v));
    return v;
  }
  std::string Str() {
    const uint32_t n = U32();
    if (n > remaining()) {
      ok_ = false;
      return {};
    }
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  std::vector<uint32_t> VecU32() {
    const uint32_t n = U32();
    std::vector<uint32_t> v;
    if (static_cast<uint64_t>(n) * 4 > remaining()) {
      ok_ = false;
      return v;
    }
    v.reserve(n);
    for (uint32_t i = 0; i < n; ++i) v.push_back(U32());
    return v;
  }

  size_t remaining() const { return size_ - pos_; }
  bool ok() const { return ok_; }
  /// True iff every byte was consumed and no read overran: the decode
  /// accepted exactly the payload, nothing more, nothing less.
  bool done() const { return ok_ && pos_ == size_; }

 private:
  void Raw(void* p, size_t n) {
    if (n > remaining()) {
      ok_ = false;
      std::memset(p, 0, n);
      return;
    }
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace persist
}  // namespace tud

#endif  // TUD_PERSIST_CODEC_H_
