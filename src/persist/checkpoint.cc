#include "persist/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <unordered_set>

#include "persist/codec.h"
#include "util/fault_injection.h"

namespace tud {
namespace persist {

namespace {

constexpr char kCkptMagic[8] = {'T', 'U', 'D', 'C', 'K', 'P', 'T', '1'};
constexpr uint32_t kCkptVersion = 1;
constexpr size_t kCkptHeaderSize = 24;  // magic + version + len + crc.
constexpr uint64_t kMaxPayloadLen = 1ull << 32;

void EncodeTerm(ByteWriter& w, const Term& t) {
  w.U8(t.is_var ? 1 : 0);
  w.U32(t.var);
  w.U32(t.constant);
}

Term DecodeTerm(ByteReader& r) {
  Term t;
  t.is_var = r.U8() != 0;
  t.var = r.U32();
  t.constant = r.U32();
  return t;
}

std::vector<uint8_t> EncodePayload(const CheckpointState& state) {
  ByteWriter w;
  w.U64(state.seq);
  w.U64(state.wal_lsn);

  w.U32(static_cast<uint32_t>(state.schema.NumRelations()));
  for (RelationId r = 0; r < state.schema.NumRelations(); ++r) {
    w.Str(state.schema.name(r));
    w.U32(state.schema.arity(r));
  }

  w.U32(static_cast<uint32_t>(state.events.size()));
  for (const auto& [name, probability] : state.events) {
    w.Str(name);
    w.F64(probability);
  }

  w.U32(static_cast<uint32_t>(state.gates.size()));
  for (const CheckpointState::Gate& g : state.gates) {
    w.U8(static_cast<uint8_t>(g.kind));
    w.U8(g.const_value ? 1 : 0);
    w.U32(g.var);
    w.VecU32(g.inputs);
  }

  w.U32(static_cast<uint32_t>(state.facts.size()));
  for (const CheckpointState::FactRow& f : state.facts) {
    w.U32(f.relation);
    w.VecU32(f.args);
    w.U32(f.annotation);
  }

  w.U8(state.has_decomposition ? 1 : 0);
  if (state.has_decomposition) {
    w.U32(static_cast<uint32_t>(state.ntd_kinds.size()));
    for (size_t n = 0; n < state.ntd_kinds.size(); ++n) {
      w.U8(static_cast<uint8_t>(state.ntd_kinds[n]));
      w.U32(state.ntd_vertices[n]);
      w.VecU32(state.ntd_bags[n]);
      w.VecU32(state.ntd_children[n]);
    }
    w.U32(static_cast<uint32_t>(state.facts_at_node.size()));
    for (const std::vector<FactId>& facts : state.facts_at_node) {
      w.VecU32(facts);
    }
    w.U32(static_cast<uint32_t>(state.width));
    w.VecU32(state.elimination_order);
  }

  w.U32(static_cast<uint32_t>(state.searched_width));

  w.U32(static_cast<uint32_t>(state.tombstones.size()));
  for (const auto& [event, value] : state.tombstones) {
    w.U32(event);
    w.U8(value ? 1 : 0);
  }

  w.U32(static_cast<uint32_t>(state.queries.size()));
  for (const CheckpointState::QueryRow& q : state.queries) {
    w.U8(q.kind);
    if (q.kind == 0) {
      w.U32(static_cast<uint32_t>(q.cq.NumAtoms()));
      for (const QueryAtom& atom : q.cq.atoms()) {
        w.U32(atom.relation);
        w.U32(static_cast<uint32_t>(atom.terms.size()));
        for (const Term& t : atom.terms) EncodeTerm(w, t);
      }
    } else {
      w.U32(q.relation);
      w.U32(q.source);
      w.U32(q.target);
    }
    w.U32(q.root);
  }

  return std::move(w.bytes());
}

bool DecodePayload(const uint8_t* data, size_t size, CheckpointState* out) {
  ByteReader r(data, size);
  *out = CheckpointState{};
  out->seq = r.U64();
  out->wal_lsn = r.U64();

  const uint32_t num_relations = r.U32();
  if (!r.ok() || num_relations > size) return false;
  for (uint32_t i = 0; i < num_relations; ++i) {
    std::string name = r.Str();
    const uint32_t arity = r.U32();
    // Duplicate names would abort inside AddRelation / Register — turn
    // them into a decode failure instead (corrupt data never aborts).
    if (!r.ok() || name.empty() || out->schema.Find(name).has_value()) {
      return false;
    }
    out->schema.AddRelation(std::move(name), arity);
  }

  const uint32_t num_events = r.U32();
  if (!r.ok() || num_events > size) return false;
  out->events.reserve(num_events);
  std::unordered_set<std::string> event_names;
  for (uint32_t i = 0; i < num_events; ++i) {
    std::string name = r.Str();
    const double probability = r.F64();
    if (!r.ok() || name.empty() ||
        !(probability >= 0.0 && probability <= 1.0) ||
        !event_names.insert(name).second) {
      return false;
    }
    out->events.emplace_back(std::move(name), probability);
  }

  const uint32_t num_gates = r.U32();
  if (!r.ok() || num_gates > size) return false;
  out->gates.reserve(num_gates);
  for (uint32_t g = 0; g < num_gates; ++g) {
    CheckpointState::Gate gate;
    const uint8_t kind = r.U8();
    if (kind > static_cast<uint8_t>(GateKind::kOr)) return false;
    gate.kind = static_cast<GateKind>(kind);
    gate.const_value = r.U8() != 0;
    gate.var = r.U32();
    gate.inputs = r.VecU32();
    if (!r.ok()) return false;
    // Topological invariant — the restore path's safety contract.
    for (GateId in : gate.inputs) {
      if (in >= g) return false;
    }
    if (gate.kind == GateKind::kVar &&
        (gate.var == kInvalidEvent || gate.var >= num_events)) {
      return false;
    }
    out->gates.push_back(std::move(gate));
  }

  const uint32_t num_facts = r.U32();
  if (!r.ok() || num_facts > size) return false;
  out->facts.reserve(num_facts);
  for (uint32_t f = 0; f < num_facts; ++f) {
    CheckpointState::FactRow fact;
    fact.relation = r.U32();
    fact.args = r.VecU32();
    fact.annotation = r.U32();
    if (!r.ok() || fact.relation >= num_relations ||
        fact.args.size() != out->schema.arity(fact.relation) ||
        fact.annotation >= num_gates) {
      return false;
    }
    out->facts.push_back(std::move(fact));
  }

  out->has_decomposition = r.U8() != 0;
  if (out->has_decomposition) {
    const uint32_t num_nodes = r.U32();
    if (!r.ok() || num_nodes == 0 || num_nodes > size) return false;
    out->ntd_kinds.reserve(num_nodes);
    for (uint32_t n = 0; n < num_nodes; ++n) {
      const uint8_t kind = r.U8();
      if (kind > static_cast<uint8_t>(NiceNodeKind::kJoin)) return false;
      out->ntd_kinds.push_back(static_cast<NiceNodeKind>(kind));
      out->ntd_vertices.push_back(r.U32());
      out->ntd_bags.push_back(r.VecU32());
      std::vector<NiceNodeId> children = r.VecU32();
      if (!r.ok()) return false;
      for (NiceNodeId c : children) {
        if (c >= n) return false;
      }
      out->ntd_children.push_back(std::move(children));
    }
    const uint32_t num_assign = r.U32();
    if (!r.ok() || num_assign != num_nodes) return false;
    out->facts_at_node.reserve(num_assign);
    for (uint32_t n = 0; n < num_assign; ++n) {
      std::vector<FactId> facts = r.VecU32();
      if (!r.ok()) return false;
      for (FactId f : facts) {
        if (f >= num_facts) return false;
      }
      out->facts_at_node.push_back(std::move(facts));
    }
    out->width = static_cast<int32_t>(r.U32());
    out->elimination_order = r.VecU32();
    if (!r.ok()) return false;
  }

  out->searched_width = static_cast<int32_t>(r.U32());

  const uint32_t num_tombstones = r.U32();
  if (!r.ok() || num_tombstones > size) return false;
  for (uint32_t i = 0; i < num_tombstones; ++i) {
    const EventId event = r.U32();
    const bool value = r.U8() != 0;
    if (!r.ok() || event >= num_events) return false;
    out->tombstones.emplace_back(event, value);
  }

  const uint32_t num_queries = r.U32();
  if (!r.ok() || num_queries > size) return false;
  for (uint32_t i = 0; i < num_queries; ++i) {
    CheckpointState::QueryRow q;
    q.kind = r.U8();
    if (q.kind > 1) return false;
    if (q.kind == 0) {
      const uint32_t num_atoms = r.U32();
      // The lineage DP TUD_CHECKs its complexity limits (≤ 16 atoms);
      // re-registering a decoded query must never reach that abort.
      if (!r.ok() || num_atoms > 16) return false;
      for (uint32_t a = 0; a < num_atoms; ++a) {
        const RelationId relation = r.U32();
        const uint32_t num_terms = r.U32();
        if (!r.ok() || num_terms > 64) return false;
        std::vector<Term> terms;
        terms.reserve(num_terms);
        for (uint32_t t = 0; t < num_terms; ++t) terms.push_back(DecodeTerm(r));
        if (!r.ok() || relation >= num_relations) return false;
        q.cq.AddAtom(relation, std::move(terms));
      }
    } else {
      q.relation = r.U32();
      q.source = r.U32();
      q.target = r.U32();
      if (!r.ok() || q.relation >= num_relations) return false;
    }
    q.root = r.U32();
    if (!r.ok() || q.root >= num_gates) return false;
    out->queries.push_back(std::move(q));
  }

  return r.done();
}

}  // namespace

EngineStatus WriteCheckpoint(const std::string& path,
                             const CheckpointState& state) {
  std::vector<uint8_t> payload = EncodePayload(state);

  ByteWriter image;
  for (char c : kCkptMagic) image.U8(static_cast<uint8_t>(c));
  image.U32(kCkptVersion);
  image.U64(payload.size());
  image.U32(Crc32c(payload));
  image.bytes().insert(image.bytes().end(), payload.begin(), payload.end());

  // Injected silent corruption: damage the payload after its checksum
  // was taken, so only ReadCheckpoint's CRC verification can object.
  const int64_t flip = fault::MaybeFlipBit(payload.size());
  if (flip >= 0) {
    image.bytes()[kCkptHeaderSize + static_cast<size_t>(flip / 8)] ^=
        static_cast<uint8_t>(1u << (flip % 8));
  }

  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
  if (fd < 0) return EngineStatus::kIoError;

  if (fault::ShouldFailWrite()) {
    // Torn checkpoint write: leave a prefix in the .tmp file (a crash
    // mid-write). The file is never renamed, so it is invisible to
    // recovery — the atomicity contract under test.
    (void)!::write(fd, image.bytes().data(), image.size() / 2);
    ::close(fd);
    return EngineStatus::kIoError;
  }

  const ssize_t n = ::write(fd, image.bytes().data(), image.size());
  if (n != static_cast<ssize_t>(image.size())) {
    ::close(fd);
    return EngineStatus::kIoError;
  }
  if (fault::ShouldFailFlush() || ::fsync(fd) != 0) {
    ::close(fd);
    return EngineStatus::kIoError;
  }
  ::close(fd);

  if (::rename(tmp.c_str(), path.c_str()) != 0) return EngineStatus::kIoError;
  return EngineStatus::kOk;
}

EngineStatus ReadCheckpoint(const std::string& path, CheckpointState* out) {
  std::vector<uint8_t> bytes;
  {
    FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) return EngineStatus::kIoError;
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    if (size < 0) {
      std::fclose(f);
      return EngineStatus::kIoError;
    }
    bytes.resize(static_cast<size_t>(size));
    if (!bytes.empty() &&
        std::fread(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
      std::fclose(f);
      return EngineStatus::kIoError;
    }
    std::fclose(f);
  }

  if (bytes.size() < kCkptHeaderSize) return EngineStatus::kIoError;
  ByteReader header(bytes.data(), kCkptHeaderSize);
  char magic[8];
  for (char& c : magic) c = static_cast<char>(header.U8());
  const uint32_t version = header.U32();
  const uint64_t payload_len = header.U64();
  const uint32_t payload_crc = header.U32();
  if (std::memcmp(magic, kCkptMagic, sizeof(kCkptMagic)) != 0 ||
      version != kCkptVersion || payload_len > kMaxPayloadLen ||
      bytes.size() - kCkptHeaderSize != payload_len) {
    return EngineStatus::kIoError;
  }
  const uint8_t* payload = bytes.data() + kCkptHeaderSize;
  if (Crc32c(payload, payload_len) != payload_crc) {
    return EngineStatus::kIoError;
  }
  if (!DecodePayload(payload, payload_len, out)) {
    return EngineStatus::kIoError;
  }
  return EngineStatus::kOk;
}

}  // namespace persist
}  // namespace tud
