#ifndef TUD_PERSIST_WAL_H_
#define TUD_PERSIST_WAL_H_

/// Binary write-ahead log for the incremental serving state. The log is
/// the source of truth for every mutation a DurableSession accepts:
/// records are appended — and optionally fsynced — *before* the
/// mutation is applied in memory, so a crash at any instant loses at
/// most mutations the caller was never told succeeded.
///
/// File layout (all integers little-endian):
///
///   header:  "TUDWAL01" (8B magic)  base_lsn (u64)
///            crc32c(magic + base_lsn) (u32)  reserved (u32, zero)
///   record:  payload_len (u32)  crc32c(payload) (u32)  payload
///
/// Records are LSN-addressed: the i-th record of a file has
/// lsn = base_lsn + i. After a checkpoint the WAL is rotated to a new
/// file whose base_lsn is the checkpoint watermark, which is what makes
/// replay idempotent — a reader simply skips records with
/// lsn < watermark, even if an old WAL tail duplicates them.
///
/// Torn tails vs corruption: every record is appended with a single
/// write(2), so a crash can only leave a *prefix* of the final record —
/// either a partial 8-byte frame header or a full header with a short
/// payload. Readers treat exactly those two shapes at EOF as a torn
/// tail: the prefix is dropped (and the file truncated on recovery) and
/// the log up to it is recovered with kOk. Anything else — a checksum
/// mismatch, a frame length that fits but decodes to garbage — cannot
/// be produced by tearing and is reported as kIoError, never silently
/// repaired.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "events/event_registry.h"
#include "circuits/bool_circuit.h"
#include "queries/conjunctive_query.h"
#include "relational/instance.h"
#include "util/budget.h"

namespace tud {
namespace persist {

enum class WalRecordType : uint8_t {
  kRegisterEvent = 1,
  kSetProbability = 2,
  kUpdateProbability = 3,
  kInsertFact = 4,
  kDeleteFact = 5,
  kEpochPublish = 6,
  kRegisterCq = 7,
  kRegisterReachability = 8,
};

/// One logged mutation. The id fields (`event`, `fact`, `root`) record
/// what the *live* session allocated when the mutation was applied;
/// replay re-derives them deterministically and treats any divergence
/// as corruption (kIoError) rather than continuing on a state that no
/// longer matches the log.
struct WalRecord {
  WalRecordType type = WalRecordType::kRegisterEvent;
  uint64_t lsn = 0;  ///< Assigned by the writer; filled in by readers.

  std::string name;            ///< kRegisterEvent.
  double probability = 0.0;    ///< kRegisterEvent / kSet / kUpdate / kInsert.
  EventId event = kInvalidEvent;
  RelationId relation = 0;     ///< kInsertFact / kRegisterReachability.
  std::vector<Value> args;     ///< kInsertFact.
  FactId fact = kInvalidFact;  ///< kInsertFact / kDeleteFact.
  GateId root = kInvalidGate;  ///< kInsertFact annotation; kRegister* root.
  Value source = 0;            ///< kRegisterReachability.
  Value target = 0;            ///< kRegisterReachability.
  ConjunctiveQuery cq;         ///< kRegisterCq.
  uint64_t epoch = 0;          ///< kEpochPublish.
};

/// Encodes a record payload (type byte + fields; no frame header).
std::vector<uint8_t> EncodeWalRecord(const WalRecord& record);

/// Decodes a payload previously produced by EncodeWalRecord. Returns
/// false on any malformed byte stream (never aborts).
bool DecodeWalRecord(const uint8_t* data, size_t size, WalRecord* out);

struct WalOptions {
  /// fsync after every append. Off by default: the DurableSession syncs
  /// at checkpoint barriers and callers can opt into per-append
  /// durability when the workload warrants the cost.
  bool sync_each_append = false;
};

/// Appender. All methods return kOk or kIoError; after any I/O failure
/// the writer is *broken* — every later append fails too — because the
/// on-disk suffix is no longer trusted. (An injected write fault
/// deliberately leaves the torn prefix on disk, modelling a crash
/// mid-write; recovery must cope, and the crash-point tests check it
/// does.)
class WalWriter {
 public:
  /// Creates (truncating) `path` with the given base LSN.
  static EngineStatus Create(const std::string& path, uint64_t base_lsn,
                             const WalOptions& options,
                             std::unique_ptr<WalWriter>* out);

  /// Opens `path` for appending after recovery has validated (and
  /// truncated) it; `next_lsn` must be base_lsn + number of valid
  /// records already present.
  static EngineStatus OpenForAppend(const std::string& path,
                                    uint64_t next_lsn,
                                    const WalOptions& options,
                                    std::unique_ptr<WalWriter>* out);

  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record; on kOk the record's LSN was next_lsn().
  EngineStatus Append(const WalRecord& record);

  /// fsyncs the file. Idempotent; cheap if nothing was written.
  EngineStatus Sync();

  uint64_t next_lsn() const { return next_lsn_; }
  bool broken() const { return broken_; }
  const std::string& path() const { return path_; }

 private:
  WalWriter(int fd, std::string path, uint64_t next_lsn,
            const WalOptions& options);

  int fd_ = -1;
  std::string path_;
  uint64_t next_lsn_ = 0;
  WalOptions options_;
  bool broken_ = false;
};

/// Everything a scan of one WAL file yields. `status` is kOk when the
/// file is well-formed up to at most a torn tail (whose length is
/// reported in torn_bytes), kIoError on mid-log corruption — in which
/// case `records` holds the valid prefix for diagnostics but recovery
/// must not proceed from it silently.
struct WalReadResult {
  EngineStatus status = EngineStatus::kOk;
  std::vector<WalRecord> records;
  uint64_t base_lsn = 0;
  uint64_t valid_bytes = 0;  ///< Offset just past the last valid record.
  uint64_t torn_bytes = 0;   ///< Trailing bytes dropped as a torn tail.
  uint64_t file_size = 0;
  /// The file header itself was missing/short/invalid. A file shorter
  /// than the header can only be a rotation torn mid-create; recovery
  /// treats exactly that shape (bad_header && file_size < header size)
  /// as recoverable when a checkpoint pins the expected base LSN.
  bool bad_header = false;
};

/// Scans a whole WAL file. Pure read: never modifies the file (the
/// recovery path truncates torn tails separately, via
/// TruncateToValidPrefix).
WalReadResult ReadWal(const std::string& path);

/// Truncates `path` to `valid_bytes`, discarding a torn tail found by
/// ReadWal. Returns kOk / kIoError.
EngineStatus TruncateToValidPrefix(const std::string& path,
                                   uint64_t valid_bytes);

}  // namespace persist
}  // namespace tud

#endif  // TUD_PERSIST_WAL_H_
