#include "persist/durable_session.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "queries/lineage.h"

namespace tud {
namespace persist {

namespace {

constexpr size_t kWalHeaderSize = 24;

std::string WalFileName(const std::string& dir, uint64_t seq) {
  return dir + "/wal-" + std::to_string(seq) + ".log";
}

std::string CheckpointFileName(const std::string& dir, uint64_t seq) {
  return dir + "/checkpoint-" + std::to_string(seq) + ".ckpt";
}

void SyncDir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd >= 0) {
    (void)::fsync(fd);
    ::close(fd);
  }
}

/// "prefix<number>suffix" -> number, or false.
bool ParseSeq(const std::string& name, const char* prefix, const char* suffix,
              uint64_t* seq) {
  const size_t prefix_len = std::strlen(prefix);
  const size_t suffix_len = std::strlen(suffix);
  if (name.size() <= prefix_len + suffix_len) return false;
  if (name.compare(0, prefix_len, prefix) != 0) return false;
  if (name.compare(name.size() - suffix_len, suffix_len, suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix_len, name.size() - prefix_len - suffix_len);
  if (digits.empty()) return false;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *seq = std::strtoull(digits.c_str(), nullptr, 10);
  return true;
}

struct DirListing {
  std::vector<uint64_t> checkpoint_seqs;  ///< Sorted descending.
  std::vector<uint64_t> wal_seqs;         ///< Sorted ascending.
  bool ok = false;
};

DirListing ScanDir(const std::string& dir) {
  DirListing listing;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return listing;
  listing.ok = true;
  while (dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    uint64_t seq = 0;
    if (ParseSeq(name, "checkpoint-", ".ckpt", &seq)) {
      listing.checkpoint_seqs.push_back(seq);
    } else if (ParseSeq(name, "wal-", ".log", &seq)) {
      listing.wal_seqs.push_back(seq);
    }
  }
  ::closedir(d);
  std::sort(listing.checkpoint_seqs.rbegin(), listing.checkpoint_seqs.rend());
  std::sort(listing.wal_seqs.begin(), listing.wal_seqs.end());
  return listing;
}

bool ValidProbability(double p) { return p >= 0.0 && p <= 1.0; }

}  // namespace

DurableSession::DurableSession(std::string dir, PersistOptions options)
    : dir_(std::move(dir)), options_(std::move(options)) {}

// ---------------------------------------------------------------------------
// Create

EngineStatus DurableSession::Create(const std::string& dir, Schema schema,
                                    const PersistOptions& options,
                                    std::unique_ptr<DurableSession>* out) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return EngineStatus::kIoError;
  }
  const DirListing listing = ScanDir(dir);
  if (!listing.ok) return EngineStatus::kIoError;
  if (!listing.checkpoint_seqs.empty() || !listing.wal_seqs.empty()) {
    // Refuse to clobber an existing session: that is what Recover is
    // for.
    return EngineStatus::kInvalidArgument;
  }

  std::unique_ptr<DurableSession> session(
      new DurableSession(dir, options));

  // The initial checkpoint persists the schema, so Recover never needs
  // out-of-band input: a directory always holds at least checkpoint-0
  // (empty state) plus the WAL from LSN 0.
  CheckpointState empty;
  empty.seq = 0;
  empty.wal_lsn = 0;
  empty.schema = schema;
  if (session->RestoreFromState(empty) != EngineStatus::kOk) {
    return EngineStatus::kIoError;
  }
  if (WriteCheckpoint(CheckpointFileName(dir, 0), empty) !=
      EngineStatus::kOk) {
    return EngineStatus::kIoError;
  }

  WalOptions wal_options;
  wal_options.sync_each_append = options.sync_each_append;
  if (WalWriter::Create(WalFileName(dir, 0), 0, wal_options,
                        &session->wal_) != EngineStatus::kOk) {
    return EngineStatus::kIoError;
  }
  SyncDir(dir);

  session->last_checkpoint_seq_ = 0;
  session->next_checkpoint_seq_ = 1;
  session->watermark_ = 0;
  *out = std::move(session);
  return EngineStatus::kOk;
}

// ---------------------------------------------------------------------------
// State serialization

CheckpointState DurableSession::BuildCheckpointState(uint64_t seq) {
  CheckpointState state;
  state.seq = seq;
  state.wal_lsn = wal_->next_lsn();

  const PccInstance& pcc = session_->pcc();
  state.schema = pcc.instance().schema();

  const EventRegistry& registry = pcc.events();
  state.events.reserve(registry.size());
  for (EventId e = 0; e < registry.size(); ++e) {
    state.events.emplace_back(registry.name(e), registry.probability(e));
  }

  const BoolCircuit& circuit = pcc.circuit();
  state.gates.reserve(circuit.NumGates());
  for (GateId g = 0; g < circuit.NumGates(); ++g) {
    CheckpointState::Gate gate;
    gate.kind = circuit.kind(g);
    gate.const_value =
        gate.kind == GateKind::kConst ? circuit.const_value(g) : false;
    gate.var = gate.kind == GateKind::kVar ? circuit.var(g) : kInvalidEvent;
    gate.inputs = circuit.inputs(g);
    state.gates.push_back(std::move(gate));
  }

  const Instance& instance = pcc.instance();
  state.facts.reserve(instance.NumFacts());
  for (FactId f = 0; f < instance.NumFacts(); ++f) {
    CheckpointState::FactRow row;
    row.relation = instance.fact(f).relation;
    row.args = instance.fact(f).args;
    row.annotation = pcc.annotation(f);
    state.facts.push_back(std::move(row));
  }

  if (session_->has_decomposition()) {
    const DecomposedInstance& dec = session_->Decomposition();
    state.has_decomposition = true;
    const size_t num_nodes = dec.ntd.NumNodes();
    state.ntd_kinds.reserve(num_nodes);
    for (NiceNodeId n = 0; n < num_nodes; ++n) {
      state.ntd_kinds.push_back(dec.ntd.kind(n));
      state.ntd_vertices.push_back(dec.ntd.raw_vertex(n));
      state.ntd_bags.push_back(dec.ntd.bag(n));
      state.ntd_children.push_back(dec.ntd.children(n));
    }
    state.facts_at_node = dec.facts_at_node;
    state.width = dec.width;
    state.elimination_order = dec.elimination_order;
  }

  state.searched_width = incremental_->searched_width();
  state.tombstones = incremental_->patch().tombstones();

  state.queries = query_defs_;
  for (size_t q = 0; q < state.queries.size(); ++q) {
    // Roots move across structural updates; snapshot the current ones.
    state.queries[q].root = incremental_->root(q);
  }
  return state;
}

EngineStatus DurableSession::RestoreFromState(const CheckpointState& state) {
  PccInstance pcc(state.schema);
  for (const auto& [name, probability] : state.events) {
    pcc.events().Register(name, probability);
  }
  BoolCircuit& circuit = pcc.circuit();
  circuit.Reserve(state.gates.size());
  for (const CheckpointState::Gate& gate : state.gates) {
    circuit.RestoreGate(gate.kind, gate.const_value, gate.var, gate.inputs);
  }
  for (const CheckpointState::FactRow& fact : state.facts) {
    pcc.AddFact(fact.relation, fact.args, fact.annotation);
  }

  session_ = std::make_unique<QuerySession>(std::move(pcc));

  if (state.has_decomposition) {
    DecomposedInstance dec;
    dec.ntd = NiceTreeDecomposition::FromParts(
        state.ntd_kinds, state.ntd_vertices, state.ntd_bags,
        state.ntd_children);
    if (!dec.ntd.IsWellFormed()) return EngineStatus::kIoError;
    dec.facts_at_node = state.facts_at_node;
    dec.width = state.width;
    dec.elimination_order = state.elimination_order;
    session_->ReplaceDecomposition(std::move(dec));
  }

  incremental_ = std::make_unique<incremental::IncrementalSession>(
      *session_, options_.incremental);
  incremental_->set_searched_width(state.searched_width);
  for (const auto& [event, value] : state.tombstones) {
    incremental_->RestoreTombstone(event, value);
  }

  query_defs_.clear();
  for (const CheckpointState::QueryRow& q : state.queries) {
    const incremental::QueryId qid =
        q.kind == 0
            ? incremental_->RegisterCq(q.cq)
            : incremental_->RegisterReachability(q.relation, q.source,
                                                 q.target);
    // Re-registration over the restored circuit must hash-cons to the
    // exact root the live session had; anything else means the image
    // does not describe the state it claims to.
    if (incremental_->root(qid) != q.root) return EngineStatus::kIoError;
    query_defs_.push_back(q);
  }
  return EngineStatus::kOk;
}

// ---------------------------------------------------------------------------
// Replay

EngineStatus DurableSession::ReplayRecord(const WalRecord& record,
                                          RecoveryStats* stats) {
  PccInstance& pcc = session_->pcc();
  switch (record.type) {
    case WalRecordType::kRegisterEvent: {
      if (!ValidProbability(record.probability)) return EngineStatus::kIoError;
      auto id = pcc.events().TryRegister(record.name, record.probability);
      if (!id.has_value() || *id != record.event) {
        return EngineStatus::kIoError;
      }
      return EngineStatus::kOk;
    }
    case WalRecordType::kSetProbability:
      if (!session_->UpdateProbability(record.event, record.probability)) {
        return EngineStatus::kIoError;
      }
      return EngineStatus::kOk;
    case WalRecordType::kUpdateProbability:
      if (!incremental_->UpdateProbability(record.event, record.probability)) {
        return EngineStatus::kIoError;
      }
      return EngineStatus::kOk;
    case WalRecordType::kInsertFact: {
      const Schema& schema = pcc.instance().schema();
      if (record.relation >= schema.NumRelations() ||
          record.args.size() != schema.arity(record.relation) ||
          !ValidProbability(record.probability)) {
        return EngineStatus::kIoError;
      }
      const incremental::InsertedFact got = incremental_->InsertFact(
          record.relation, record.args, record.probability);
      // Replay determinism check: the ids the replayed application
      // allocated must equal the ones the live session logged.
      if (got.fact != record.fact || got.event != record.event ||
          got.annotation != record.root) {
        return EngineStatus::kIoError;
      }
      return EngineStatus::kOk;
    }
    case WalRecordType::kDeleteFact:
      if (record.fact >= pcc.NumFacts() ||
          pcc.circuit().kind(pcc.annotation(record.fact)) != GateKind::kVar) {
        return EngineStatus::kIoError;
      }
      incremental_->DeleteFact(record.fact);
      return EngineStatus::kOk;
    case WalRecordType::kEpochPublish:
      if (stats != nullptr) ++stats->epoch_markers;
      return EngineStatus::kOk;
    case WalRecordType::kRegisterCq: {
      const incremental::QueryId qid = incremental_->RegisterCq(record.cq);
      if (incremental_->root(qid) != record.root) {
        return EngineStatus::kIoError;
      }
      CheckpointState::QueryRow row;
      row.kind = 0;
      row.cq = record.cq;
      row.root = record.root;
      query_defs_.push_back(std::move(row));
      return EngineStatus::kOk;
    }
    case WalRecordType::kRegisterReachability: {
      if (record.relation >= pcc.instance().schema().NumRelations()) {
        return EngineStatus::kIoError;
      }
      const incremental::QueryId qid = incremental_->RegisterReachability(
          record.relation, record.source, record.target);
      if (incremental_->root(qid) != record.root) {
        return EngineStatus::kIoError;
      }
      CheckpointState::QueryRow row;
      row.kind = 1;
      row.relation = record.relation;
      row.source = record.source;
      row.target = record.target;
      row.root = record.root;
      query_defs_.push_back(std::move(row));
      return EngineStatus::kOk;
    }
  }
  return EngineStatus::kIoError;
}

// ---------------------------------------------------------------------------
// Recover

EngineStatus DurableSession::Recover(const std::string& dir,
                                     const PersistOptions& options,
                                     std::unique_ptr<DurableSession>* out,
                                     RecoveryStats* stats) {
  RecoveryStats local_stats;
  if (stats == nullptr) stats = &local_stats;
  *stats = RecoveryStats{};

  const DirListing listing = ScanDir(dir);
  if (!listing.ok || listing.checkpoint_seqs.empty()) {
    return EngineStatus::kIoError;
  }

  // Read every WAL file present. Only the active (highest-seq) file may
  // legitimately carry a torn tail or a torn-rotation header; damage in
  // an older file just removes its records from consideration, and the
  // coverage check below decides whether that is fatal.
  struct WalFile {
    uint64_t seq = 0;
    std::string path;
    WalReadResult read;
  };
  std::vector<WalFile> wal_files;
  for (uint64_t seq : listing.wal_seqs) {
    WalFile wf;
    wf.seq = seq;
    wf.path = WalFileName(dir, seq);
    wf.read = ReadWal(wf.path);
    wal_files.push_back(std::move(wf));
  }
  const WalFile* active =
      wal_files.empty() ? nullptr : &wal_files.back();
  const bool active_torn_rotation =
      active != nullptr && active->read.status != EngineStatus::kOk &&
      active->read.bad_header && active->read.file_size < kWalHeaderSize;
  if (active != nullptr && active->read.status != EngineStatus::kOk &&
      !active_torn_rotation) {
    // Mid-log corruption (or a destroyed header) in the live log: typed
    // failure, never a silent partial recovery.
    return EngineStatus::kIoError;
  }

  // Pool the valid records, in LSN order. Files never overlap by
  // construction (rotation starts the new file exactly at the old end),
  // so a duplicate LSN means the directory holds files from conflicting
  // histories.
  std::vector<const WalRecord*> pooled;
  for (const WalFile& wf : wal_files) {
    if (wf.read.status != EngineStatus::kOk) continue;
    for (const WalRecord& r : wf.read.records) pooled.push_back(&r);
  }
  std::sort(pooled.begin(), pooled.end(),
            [](const WalRecord* a, const WalRecord* b) {
              return a->lsn < b->lsn;
            });
  for (size_t i = 1; i < pooled.size(); ++i) {
    if (pooled[i]->lsn == pooled[i - 1]->lsn) return EngineStatus::kIoError;
  }

  // Newest verifiable checkpoint whose watermark the pooled records
  // cover contiguously wins. A corrupt newer checkpoint is only
  // survivable when an older one still has full log coverage — which
  // WAL rotation deliberately destroys, so with rotation on this
  // degrades to the typed error the contract promises.
  CheckpointState state;
  bool have_state = false;
  std::vector<const WalRecord*> replay;
  for (uint64_t seq : listing.checkpoint_seqs) {
    CheckpointState candidate;
    if (ReadCheckpoint(CheckpointFileName(dir, seq), &candidate) !=
        EngineStatus::kOk) {
      ++stats->checkpoints_skipped;
      continue;
    }
    std::vector<const WalRecord*> tail;
    for (const WalRecord* r : pooled) {
      if (r->lsn >= candidate.wal_lsn) tail.push_back(r);
    }
    bool contiguous = true;
    for (size_t i = 0; i < tail.size(); ++i) {
      contiguous = contiguous && tail[i]->lsn == candidate.wal_lsn + i;
    }
    if (!contiguous) {
      ++stats->checkpoints_skipped;
      continue;
    }
    state = std::move(candidate);
    replay = std::move(tail);
    stats->loaded_checkpoint = true;
    stats->checkpoint_seq = seq;
    have_state = true;
    break;
  }
  if (!have_state) return EngineStatus::kIoError;
  if (active_torn_rotation && !replay.empty()) {
    // A file torn mid-create never took an append; records past the
    // watermark contradict that.
    return EngineStatus::kIoError;
  }

  std::unique_ptr<DurableSession> session(
      new DurableSession(dir, options));
  EngineStatus status = session->RestoreFromState(state);
  if (status != EngineStatus::kOk) return status;

  for (const WalRecord* record : replay) {
    status = session->ReplayRecord(*record, stats);
    if (status != EngineStatus::kOk) return status;
    ++stats->records_replayed;
  }
  stats->records_skipped = pooled.size() - replay.size();

  // Re-arm the writer on the active file: truncate the torn tail (or
  // finish a torn rotation) and append after the last valid record.
  WalOptions wal_options;
  wal_options.sync_each_append = options.sync_each_append;
  if (active == nullptr || active_torn_rotation) {
    const uint64_t seq = active == nullptr
                             ? stats->checkpoint_seq
                             : active->seq;
    if (WalWriter::Create(WalFileName(dir, seq), state.wal_lsn, wal_options,
                          &session->wal_) != EngineStatus::kOk) {
      return EngineStatus::kIoError;
    }
    SyncDir(dir);
  } else {
    if (active->read.torn_bytes > 0) {
      status = TruncateToValidPrefix(active->path, active->read.valid_bytes);
      if (status != EngineStatus::kOk) return status;
      stats->torn_bytes_truncated = active->read.torn_bytes;
    }
    const uint64_t next_lsn =
        active->read.base_lsn + active->read.records.size();
    if (WalWriter::OpenForAppend(active->path, next_lsn, wal_options,
                                 &session->wal_) != EngineStatus::kOk) {
      return EngineStatus::kIoError;
    }
  }

  uint64_t max_seq = listing.checkpoint_seqs.front();
  if (!listing.wal_seqs.empty()) {
    max_seq = std::max(max_seq, listing.wal_seqs.back());
  }
  session->last_checkpoint_seq_ = stats->checkpoint_seq;
  session->next_checkpoint_seq_ = max_seq + 1;
  session->watermark_ = state.wal_lsn;
  session->records_since_checkpoint_ = stats->records_replayed;
  *out = std::move(session);
  return EngineStatus::kOk;
}

// ---------------------------------------------------------------------------
// Durable mutations

EngineStatus DurableSession::RegisterEvent(const std::string& name,
                                           double probability,
                                           EventId* out_event) {
  EventRegistry& registry = session_->pcc().events();
  // Leading '_' is reserved for the anonymous events InsertFact mints
  // ("_e<id>"); a user-held "_e5" would make a later anonymous
  // registration abort on the duplicate name.
  if (!ValidProbability(probability) || name.empty() || name[0] == '_' ||
      registry.Find(name).has_value()) {
    return EngineStatus::kInvalidArgument;
  }
  WalRecord record;
  record.type = WalRecordType::kRegisterEvent;
  record.name = name;
  record.probability = probability;
  record.event = static_cast<EventId>(registry.size());
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  const EventId id = registry.Register(name, probability);
  if (out_event != nullptr) *out_event = id;
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

EngineStatus DurableSession::SetProbability(EventId event,
                                            double probability) {
  if (event >= session_->pcc().events().size() ||
      !ValidProbability(probability)) {
    return EngineStatus::kInvalidArgument;
  }
  WalRecord record;
  record.type = WalRecordType::kSetProbability;
  record.event = event;
  record.probability = probability;
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  session_->UpdateProbability(event, probability);
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

EngineStatus DurableSession::UpdateProbability(EventId event,
                                               double probability) {
  if (event >= session_->pcc().events().size() ||
      !ValidProbability(probability)) {
    return EngineStatus::kInvalidArgument;
  }
  WalRecord record;
  record.type = WalRecordType::kUpdateProbability;
  record.event = event;
  record.probability = probability;
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  incremental_->UpdateProbability(event, probability);
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

EngineStatus DurableSession::InsertFact(RelationId relation,
                                        std::vector<Value> args,
                                        double probability,
                                        incremental::InsertedFact* out) {
  const PccInstance& pcc = session_->pcc();
  const Schema& schema = pcc.instance().schema();
  if (relation >= schema.NumRelations() ||
      args.size() != schema.arity(relation) ||
      !ValidProbability(probability)) {
    return EngineStatus::kInvalidArgument;
  }
  WalRecord record;
  record.type = WalRecordType::kInsertFact;
  record.relation = relation;
  record.args = args;
  record.probability = probability;
  // The ids the apply below will allocate are all tail appends, so they
  // are known before the mutation runs — which is what lets the record
  // precede the application and still carry verifiable ids.
  record.fact = static_cast<FactId>(pcc.NumFacts());
  record.event = static_cast<EventId>(pcc.events().size());
  record.root = static_cast<GateId>(pcc.circuit().NumGates());
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  const incremental::InsertedFact got =
      incremental_->InsertFact(relation, std::move(args), probability);
  if (out != nullptr) *out = got;
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

EngineStatus DurableSession::DeleteFact(FactId fact) {
  const PccInstance& pcc = session_->pcc();
  if (fact >= pcc.NumFacts() ||
      pcc.circuit().kind(pcc.annotation(fact)) != GateKind::kVar) {
    return EngineStatus::kInvalidArgument;
  }
  WalRecord record;
  record.type = WalRecordType::kDeleteFact;
  record.fact = fact;
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  incremental_->DeleteFact(fact);
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

// ---------------------------------------------------------------------------
// Durable registrations (apply -> append; see header)

EngineStatus DurableSession::RegisterCq(const ConjunctiveQuery& query,
                                        incremental::QueryId* out_query) {
  const incremental::QueryId qid = incremental_->RegisterCq(query);
  if (out_query != nullptr) *out_query = qid;
  CheckpointState::QueryRow row;
  row.kind = 0;
  row.cq = query;
  row.root = incremental_->root(qid);
  query_defs_.push_back(row);

  WalRecord record;
  record.type = WalRecordType::kRegisterCq;
  record.cq = query;
  record.root = row.root;
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

EngineStatus DurableSession::RegisterReachability(
    RelationId relation, Value source, Value target,
    incremental::QueryId* out_query) {
  if (relation >= session_->pcc().instance().schema().NumRelations()) {
    return EngineStatus::kInvalidArgument;
  }
  const incremental::QueryId qid =
      incremental_->RegisterReachability(relation, source, target);
  if (out_query != nullptr) *out_query = qid;
  CheckpointState::QueryRow row;
  row.kind = 1;
  row.relation = relation;
  row.source = source;
  row.target = target;
  row.root = incremental_->root(qid);
  query_defs_.push_back(row);

  WalRecord record;
  record.type = WalRecordType::kRegisterReachability;
  record.relation = relation;
  record.source = source;
  record.target = target;
  record.root = row.root;
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

EngineStatus DurableSession::PublishSnapshot(
    incremental::EpochManager& manager, uint64_t* out_epoch) {
  const uint64_t epoch = incremental_->PublishSnapshot(manager);
  if (out_epoch != nullptr) *out_epoch = epoch;
  WalRecord record;
  record.type = WalRecordType::kEpochPublish;
  record.epoch = epoch;
  if (wal_->Append(record) != EngineStatus::kOk) return EngineStatus::kIoError;
  CountAppendAndMaybeCheckpoint();
  return EngineStatus::kOk;
}

// ---------------------------------------------------------------------------
// Checkpoint

EngineStatus DurableSession::Checkpoint() {
  // Everything the image will claim as "already reflected" must be
  // durable in the log first, or a crash after the checkpoint could
  // orphan acknowledged mutations.
  if (wal_->Sync() != EngineStatus::kOk) return EngineStatus::kIoError;

  const uint64_t seq = next_checkpoint_seq_;
  const CheckpointState state = BuildCheckpointState(seq);
  if (WriteCheckpoint(CheckpointFileName(dir_, seq), state) !=
      EngineStatus::kOk) {
    return EngineStatus::kIoError;
  }
  SyncDir(dir_);

  EngineStatus status = EngineStatus::kOk;
  if (options_.truncate_wal_on_checkpoint) {
    WalOptions wal_options;
    wal_options.sync_each_append = options_.sync_each_append;
    std::unique_ptr<WalWriter> fresh;
    if (WalWriter::Create(WalFileName(dir_, seq), state.wal_lsn, wal_options,
                          &fresh) == EngineStatus::kOk) {
      SyncDir(dir_);
      const std::string old_path = wal_->path();
      wal_ = std::move(fresh);
      ::unlink(old_path.c_str());
    } else {
      // The checkpoint is durable; the old writer stays active (its
      // records < watermark are skipped on replay) and the caller
      // learns the rotation failed.
      status = EngineStatus::kIoError;
    }
  }

  // Retention: the newest two checkpoints. Older ones — including gaps
  // left by recoveries that skipped corrupt files — are swept here.
  const DirListing listing = ScanDir(dir_);
  for (uint64_t old_seq : listing.checkpoint_seqs) {
    if (old_seq + 1 < seq) {
      ::unlink(CheckpointFileName(dir_, old_seq).c_str());
    }
  }

  last_checkpoint_seq_ = seq;
  next_checkpoint_seq_ = seq + 1;
  watermark_ = state.wal_lsn;
  records_since_checkpoint_ = 0;
  return status;
}

void DurableSession::CountAppendAndMaybeCheckpoint() {
  ++records_since_checkpoint_;
  if (options_.checkpoint_every > 0 &&
      records_since_checkpoint_ >= options_.checkpoint_every) {
    if (Checkpoint() != EngineStatus::kOk) ++failed_auto_checkpoints_;
  }
}

}  // namespace persist
}  // namespace tud
