#ifndef TUD_RELATIONAL_INSTANCE_H_
#define TUD_RELATIONAL_INSTANCE_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "relational/dictionary.h"
#include "relational/schema.h"

namespace tud {

/// Index of a fact within an Instance (dense, append-only).
using FactId = uint32_t;

inline constexpr FactId kInvalidFact = UINT32_MAX;

/// A ground fact R(v1, ..., vk).
struct Fact {
  RelationId relation = 0;
  std::vector<Value> args;

  friend bool operator==(const Fact& a, const Fact& b) {
    return a.relation == b.relation && a.args == b.args;
  }

  friend bool operator<(const Fact& a, const Fact& b) {
    if (a.relation != b.relation) return a.relation < b.relation;
    return a.args < b.args;
  }
};

/// A standard (certain) relational instance: a bag of facts over a schema.
/// Uncertain instance classes (TID, c-, pc-, pcc-instances) wrap an
/// Instance — the paper defines the treewidth of an uncertain instance via
/// "its underlying relational instance (forgetting about the
/// probabilities)" (Theorem 1), which is GaifmanEdges() here.
class Instance {
 public:
  explicit Instance(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }

  /// Appends a fact; args size must match the relation arity. Duplicate
  /// facts are allowed (callers that need set semantics deduplicate).
  FactId AddFact(RelationId relation, std::vector<Value> args);

  size_t NumFacts() const { return facts_.size(); }
  const Fact& fact(FactId f) const;
  const std::vector<Fact>& facts() const { return facts_; }

  /// Largest Value mentioned plus one (the active domain size when values
  /// are dense, which generated workloads guarantee).
  size_t DomainSize() const { return domain_size_; }

  /// True if the instance contains `fact` (linear scan; fine for the
  /// small certain instances used in tests and world enumeration).
  bool Contains(const Fact& fact) const;

  /// Edges of the Gaifman graph: vertices are domain Values; two values
  /// are adjacent iff they co-occur in some fact. Deduplicated, each pair
  /// (a, b) with a < b. Treewidth of the instance = treewidth of this
  /// graph (Theorem 1).
  std::vector<std::pair<Value, Value>> GaifmanEdges() const;

  /// Renders facts one per line using `dictionary` for value names.
  std::string ToString(const Dictionary& dictionary) const;

 private:
  Schema schema_;
  std::vector<Fact> facts_;
  size_t domain_size_ = 0;
};

}  // namespace tud

#endif  // TUD_RELATIONAL_INSTANCE_H_
