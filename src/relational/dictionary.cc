#include "relational/dictionary.h"

#include "util/check.h"

namespace tud {

Value Dictionary::Intern(std::string_view name) {
  auto it = index_.find(std::string(name));
  if (it != index_.end()) return it->second;
  Value v = static_cast<Value>(names_.size());
  names_.emplace_back(name);
  index_.emplace(names_.back(), v);
  return v;
}

std::optional<Value> Dictionary::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Dictionary::name(Value v) const {
  TUD_CHECK_LT(v, names_.size());
  return names_[v];
}

}  // namespace tud
