#ifndef TUD_RELATIONAL_DICTIONARY_H_
#define TUD_RELATIONAL_DICTIONARY_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tud {

/// A domain element (constant), dictionary-encoded as a dense integer.
using Value = uint32_t;

inline constexpr Value kInvalidValue = UINT32_MAX;

/// Bidirectional mapping between constant names and dense Value ids.
/// Dictionary encoding keeps facts as small integer tuples, which the
/// tree-decomposition machinery indexes directly by Value.
class Dictionary {
 public:
  Dictionary() = default;

  /// Returns the id for `name`, interning it if new.
  Value Intern(std::string_view name);

  /// Returns the id for `name` if already interned.
  std::optional<Value> Find(std::string_view name) const;

  /// Name of value `v`.
  const std::string& name(Value v) const;

  size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Value> index_;
};

}  // namespace tud

#endif  // TUD_RELATIONAL_DICTIONARY_H_
