#ifndef TUD_RELATIONAL_SCHEMA_H_
#define TUD_RELATIONAL_SCHEMA_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace tud {

/// Identifier of a relation symbol within a Schema.
using RelationId = uint32_t;

/// A relational signature: named relation symbols with fixed arities.
class Schema {
 public:
  Schema() = default;

  /// Adds a relation symbol. Names must be unique; arity >= 0.
  RelationId AddRelation(std::string name, uint32_t arity);

  /// Looks up a relation by name.
  std::optional<RelationId> Find(std::string_view name) const;

  size_t NumRelations() const { return arities_.size(); }
  const std::string& name(RelationId r) const;
  uint32_t arity(RelationId r) const;

 private:
  std::vector<std::string> names_;
  std::vector<uint32_t> arities_;
  std::unordered_map<std::string, RelationId> index_;
};

}  // namespace tud

#endif  // TUD_RELATIONAL_SCHEMA_H_
