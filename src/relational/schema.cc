#include "relational/schema.h"

#include "util/check.h"

namespace tud {

RelationId Schema::AddRelation(std::string name, uint32_t arity) {
  TUD_CHECK(index_.find(name) == index_.end())
      << "duplicate relation '" << name << "'";
  RelationId id = static_cast<RelationId>(arities_.size());
  index_.emplace(name, id);
  names_.push_back(std::move(name));
  arities_.push_back(arity);
  return id;
}

std::optional<RelationId> Schema::Find(std::string_view name) const {
  auto it = index_.find(std::string(name));
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

const std::string& Schema::name(RelationId r) const {
  TUD_CHECK_LT(r, names_.size());
  return names_[r];
}

uint32_t Schema::arity(RelationId r) const {
  TUD_CHECK_LT(r, arities_.size());
  return arities_[r];
}

}  // namespace tud
