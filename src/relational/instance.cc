#include "relational/instance.h"

#include <algorithm>

#include "util/check.h"

namespace tud {

FactId Instance::AddFact(RelationId relation, std::vector<Value> args) {
  TUD_CHECK_LT(relation, schema_.NumRelations());
  TUD_CHECK_EQ(args.size(), schema_.arity(relation))
      << "arity mismatch for relation " << schema_.name(relation);
  for (Value v : args) {
    domain_size_ = std::max(domain_size_, static_cast<size_t>(v) + 1);
  }
  FactId id = static_cast<FactId>(facts_.size());
  facts_.push_back(Fact{relation, std::move(args)});
  return id;
}

const Fact& Instance::fact(FactId f) const {
  TUD_CHECK_LT(f, facts_.size());
  return facts_[f];
}

bool Instance::Contains(const Fact& fact) const {
  return std::find(facts_.begin(), facts_.end(), fact) != facts_.end();
}

std::vector<std::pair<Value, Value>> Instance::GaifmanEdges() const {
  std::vector<std::pair<Value, Value>> edges;
  for (const Fact& fact : facts_) {
    for (size_t i = 0; i < fact.args.size(); ++i) {
      for (size_t j = i + 1; j < fact.args.size(); ++j) {
        Value a = fact.args[i];
        Value b = fact.args[j];
        if (a == b) continue;
        edges.emplace_back(std::min(a, b), std::max(a, b));
      }
    }
  }
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  return edges;
}

std::string Instance::ToString(const Dictionary& dictionary) const {
  std::string out;
  for (const Fact& fact : facts_) {
    out += schema_.name(fact.relation);
    out += "(";
    for (size_t i = 0; i < fact.args.size(); ++i) {
      if (i > 0) out += ", ";
      out += dictionary.name(fact.args[i]);
    }
    out += ")\n";
  }
  return out;
}

}  // namespace tud
