#ifndef TUD_AUTOMATA_AUTOMATON_EXPR_H_
#define TUD_AUTOMATA_AUTOMATON_EXPR_H_

#include <cstddef>
#include <cstdint>
#include <memory>

#include "automata/compiled_automaton.h"
#include "automata/tree_automaton.h"

namespace tud {

/// A lazy Boolean combination of tree automata — the compiled-first
/// query surface of the §2.2 pipeline ("one compiles the MSO query q,
/// in a data-independent fashion, to a tree automaton A").
///
/// Expressions are cheap immutable values (a shared expression DAG):
///
///   AutomatonExpr q = Atom(MakeExistsLabel(s, price)) &&
///                     !Atom(MakeExistsLabel(s, review));
///   CompiledAutomaton a = q.Compile();
///
/// Compile() composes product, union and complement *compiled to
/// compiled*: atoms are lowered to the bitset-table engine once, at
/// construction, and every closure step consumes and produces
/// CompiledAutomaton — the std::map-based TreeAutomaton representation
/// is only ever touched at the edges (construction of atoms, or an
/// explicit ToTreeAutomaton() by the caller). This removes the map
/// churn that TreeAutomaton::Product/Complement chains paid between
/// steps, and is checkable: CompiledAutomaton::ToTreeAutomatonCalls()
/// must not move across a Compile().
///
/// Negation folds double complements at construction (!!e shares e's
/// node), so expression rewriting never pays for a determinisation it
/// does not need.
class AutomatonExpr {
 public:
  /// Diagnostics of one Compile() pass.
  struct CompileStats {
    size_t products = 0;         ///< Binary product/union constructions.
    size_t complements = 0;      ///< Determinise-and-flip steps.
    uint32_t result_states = 0;  ///< States of the compiled result.
  };

  /// Leaf: an already-constructed automaton. The TreeAutomaton overload
  /// lowers to the compiled representation here, once, regardless of
  /// how many expressions or Compile() calls reuse the atom.
  static AutomatonExpr Atom(const TreeAutomaton& automaton);
  static AutomatonExpr Atom(CompiledAutomaton automaton);

  /// Intersection / union / complement of the operand languages.
  /// Operand alphabets must agree (checked at Compile()). Unlike a raw
  /// union product, Or is the language union for *arbitrary* NTAs: the
  /// compilation completes incomplete operands with a sink state first.
  static AutomatonExpr And(AutomatonExpr a, AutomatonExpr b);
  static AutomatonExpr Or(AutomatonExpr a, AutomatonExpr b);
  static AutomatonExpr Not(AutomatonExpr a);

  /// Operator sugar for the combinators above.
  AutomatonExpr operator&&(AutomatonExpr rhs) const {
    return And(*this, std::move(rhs));
  }
  AutomatonExpr operator||(AutomatonExpr rhs) const {
    return Or(*this, std::move(rhs));
  }
  AutomatonExpr operator!() const { return Not(*this); }

  /// Evaluates the expression compiled-to-compiled. Deterministic cost:
  /// one Product per And/Or node, one Determinize per Not node.
  CompiledAutomaton Compile(CompileStats* stats = nullptr) const;

  /// Stable identity of the root expression node (shared across copies
  /// of this expression); lets sessions memoise Compile() results.
  uintptr_t CacheKey() const;

 private:
  struct Node;
  explicit AutomatonExpr(std::shared_ptr<const Node> node)
      : node_(std::move(node)) {}

  static CompiledAutomaton CompileNode(const Node& node, CompileStats* stats);

  std::shared_ptr<const Node> node_;
};

}  // namespace tud

#endif  // TUD_AUTOMATA_AUTOMATON_EXPR_H_
