#include "automata/compiled_automaton.h"

#include <algorithm>
#include <atomic>
#include <unordered_map>
#include <unordered_set>

#include "automata/tree_automaton.h"
#include "util/check.h"

namespace tud {

namespace {

// Interning table for subset-construction states: subsets live in a flat
// word arena (one num_words slice per subset) and are looked up by the
// hash of their words — the bitset replacement for
// std::map<std::set<State>, State>.
class SubsetInterner {
 public:
  explicit SubsetInterner(size_t num_words) : num_words_(num_words) {}

  State Intern(const uint64_t* words) {
    if (num_words_ == 0) {
      // A 0-state automaton has exactly one subset: the empty one.
      if (count_ == 0) count_ = 1;
      return 0;
    }
    uint64_t h = HashWords(words, num_words_);
    std::vector<State>& bucket = buckets_[h];
    for (State id : bucket) {
      if (EqualWords(SubsetWords(id), words, num_words_)) return id;
    }
    TUD_CHECK_LE(count_, 4096u) << "determinisation blow-up";
    State id = static_cast<State>(count_++);
    arena_.insert(arena_.end(), words, words + num_words_);
    bucket.push_back(id);
    return id;
  }

  const uint64_t* SubsetWords(State id) const {
    return arena_.data() + static_cast<size_t>(id) * num_words_;
  }
  uint32_t count() const { return count_; }

 private:
  size_t num_words_;
  uint32_t count_ = 0;
  std::vector<uint64_t> arena_;
  std::unordered_map<uint64_t, std::vector<State>> buckets_;
};

}  // namespace

// ---------------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------------

CompiledAutomaton::Builder::Builder(uint32_t num_states, Label alphabet_size)
    : num_states_(num_states),
      alphabet_size_(alphabet_size),
      accepting_(num_states),
      leaf_states_(alphabet_size, StateSet(num_states)) {}

void CompiledAutomaton::Builder::AddLeafTransition(Label label, State q) {
  TUD_CHECK_LT(label, alphabet_size_);
  TUD_CHECK_LT(q, num_states_);
  leaf_states_[label].Set(q);
}

void CompiledAutomaton::Builder::AddTransition(Label label, State q_left,
                                               State q_right, State q) {
  TUD_CHECK_LT(label, alphabet_size_);
  TUD_CHECK_LT(q_left, num_states_);
  TUD_CHECK_LT(q_right, num_states_);
  TUD_CHECK_LT(q, num_states_);
  entries_.push_back({label, q_left, q_right, q});
}

void CompiledAutomaton::Builder::SetAccepting(State q) {
  TUD_CHECK_LT(q, num_states_);
  accepting_.Set(q);
}

CompiledAutomaton CompiledAutomaton::Builder::Build() && {
  CompiledAutomaton out;
  out.num_states_ = num_states_;
  out.alphabet_size_ = alphabet_size_;
  out.num_words_ = StateWordsFor(num_states_);
  out.accepting_ = std::move(accepting_);
  out.leaf_states_ = std::move(leaf_states_);

  std::sort(entries_.begin(), entries_.end());
  entries_.erase(std::unique(entries_.begin(), entries_.end()),
                 entries_.end());

  // Group the sorted quadruples into cells (one per distinct
  // (label, ql, qr)) with flat target slices and target bitsets.
  const size_t stride = static_cast<size_t>(num_states_) + 1;
  out.row_start_.assign(static_cast<size_t>(alphabet_size_) * stride + 1, 0);
  out.targets_.reserve(entries_.size());
  for (size_t i = 0; i < entries_.size();) {
    const Label l = entries_[i][0];
    const State ql = entries_[i][1];
    const State qr = entries_[i][2];
    out.cell_qr_.push_back(qr);
    out.cell_targets_start_.push_back(
        static_cast<uint32_t>(out.targets_.size()));
    const size_t bits_base = out.cell_target_bits_.size();
    out.cell_target_bits_.resize(bits_base + out.num_words_, 0);
    while (i < entries_.size() && entries_[i][0] == l &&
           entries_[i][1] == ql && entries_[i][2] == qr) {
      const State t = entries_[i][3];
      out.targets_.push_back(t);
      SetWordBit(out.cell_target_bits_.data() + bits_base, t);
      ++i;
    }
    // Count the cell in its row; slot +1 so a prefix sum yields begins.
    ++out.row_start_[static_cast<size_t>(l) * stride + ql + 1];
  }
  out.cell_targets_start_.push_back(
      static_cast<uint32_t>(out.targets_.size()));
  for (size_t i = 1; i < out.row_start_.size(); ++i) {
    out.row_start_[i] += out.row_start_[i - 1];
  }
  return out;
}

// ---------------------------------------------------------------------------
// Compile / rebuild
// ---------------------------------------------------------------------------

CompiledAutomaton CompiledAutomaton::Compile(const TreeAutomaton& automaton) {
  Builder builder(automaton.num_states(), automaton.alphabet_size());
  for (Label l = 0; l < automaton.alphabet_size(); ++l) {
    for (State q : automaton.LeafStates(l)) builder.AddLeafTransition(l, q);
  }
  for (const auto& [key, targets] : automaton.transition_map()) {
    const auto& [label, ql, qr] = key;
    for (State t : targets) builder.AddTransition(label, ql, qr, t);
  }
  for (State q = 0; q < automaton.num_states(); ++q) {
    if (automaton.IsAccepting(q)) builder.SetAccepting(q);
  }
  return std::move(builder).Build();
}

namespace {
std::atomic<uint64_t> g_to_tree_automaton_calls{0};
}  // namespace

uint64_t CompiledAutomaton::ToTreeAutomatonCalls() {
  return g_to_tree_automaton_calls.load(std::memory_order_relaxed);
}

TreeAutomaton CompiledAutomaton::ToTreeAutomaton() const {
  g_to_tree_automaton_calls.fetch_add(1, std::memory_order_relaxed);
  TreeAutomaton out(num_states_, alphabet_size_);
  for (Label l = 0; l < alphabet_size_; ++l) {
    leaf_states_[l].ForEach(
        [&](State q) { out.AddLeafTransition(l, q); });
    for (State ql = 0; ql < num_states_; ++ql) {
      for (uint32_t c = RowBegin(l, ql), e = RowEnd(l, ql); c < e; ++c) {
        const State qr = cell_qr_[c];
        for (const State* t = CellTargetsBegin(c); t != CellTargetsEnd(c);
             ++t) {
          out.AddTransition(l, ql, qr, *t);
        }
      }
    }
  }
  accepting_.ForEach([&](State q) { out.SetAccepting(q); });
  return out;
}

// ---------------------------------------------------------------------------
// Runs
// ---------------------------------------------------------------------------

std::vector<uint64_t> CompiledAutomaton::ReachableWords(
    const BinaryTree& tree) const {
  TUD_CHECK_LE(tree.AlphabetSize(), alphabet_size_);
  std::vector<uint64_t> reach(tree.NumNodes() * num_words_, 0);
  for (TreeNodeId n = 0; n < tree.NumNodes(); ++n) {
    uint64_t* out = reach.data() + static_cast<size_t>(n) * num_words_;
    const Label label = tree.label(n);
    if (tree.IsLeaf(n)) {
      const StateSet& leaves = leaf_states_[label];
      std::copy(leaves.words(), leaves.words() + num_words_, out);
      continue;
    }
    const uint64_t* lw =
        reach.data() + static_cast<size_t>(tree.left(n)) * num_words_;
    const uint64_t* rw =
        reach.data() + static_cast<size_t>(tree.right(n)) * num_words_;
    ForEachSetBit(lw, num_words_, [&](State ql) {
      for (uint32_t c = RowBegin(label, ql), e = RowEnd(label, ql); c < e;
           ++c) {
        if (TestWordBit(rw, cell_qr_[c])) {
          OrWords(out, CellTargetWords(c), num_words_);
        }
      }
    });
  }
  return reach;
}

bool CompiledAutomaton::Accepts(const BinaryTree& tree) const {
  if (tree.NumNodes() == 0) return false;
  std::vector<uint64_t> reach = ReachableWords(tree);
  const uint64_t* root =
      reach.data() + static_cast<size_t>(tree.root()) * num_words_;
  return IntersectsWords(root, accepting_.words(), num_words_);
}

bool CompiledAutomaton::IsEmpty() const {
  StateSet reach(num_states_);
  for (Label l = 0; l < alphabet_size_; ++l) reach.OrWith(leaf_states_[l]);
  bool changed = true;
  while (changed) {
    changed = false;
    for (Label l = 0; l < alphabet_size_; ++l) {
      // Snapshot-free iteration is fine: the set only grows, and we loop
      // to a fixpoint.
      reach.ForEach([&](State ql) {
        for (uint32_t c = RowBegin(l, ql), e = RowEnd(l, ql); c < e; ++c) {
          if (!reach.Test(cell_qr_[c])) continue;
          const uint64_t* tw = CellTargetWords(c);
          for (size_t w = 0; w < num_words_; ++w) {
            uint64_t added = tw[w] & ~reach.words()[w];
            if (added != 0) {
              reach.words()[w] |= added;
              changed = true;
            }
          }
        }
      });
    }
  }
  return !reach.Intersects(accepting_);
}

// ---------------------------------------------------------------------------
// Boolean closure
// ---------------------------------------------------------------------------

CompiledAutomaton CompiledAutomaton::Product(const CompiledAutomaton& a,
                                             const CompiledAutomaton& b,
                                             bool conjunction) {
  TUD_CHECK_EQ(a.alphabet_size_, b.alphabet_size_);
  const uint32_t nb = b.num_states_;
  auto pair_state = [nb](State qa, State qb) { return qa * nb + qb; };
  Builder builder(a.num_states_ * b.num_states_, a.alphabet_size_);

  for (Label l = 0; l < a.alphabet_size_; ++l) {
    a.leaf_states_[l].ForEach([&](State qa) {
      b.leaf_states_[l].ForEach([&](State qb) {
        builder.AddLeafTransition(l, pair_state(qa, qb));
      });
    });
    // Cell-by-cell cross product: only pairs of *existing* cells are
    // visited, never the full state square.
    for (State al = 0; al < a.num_states_; ++al) {
      const uint32_t a_end = a.RowEnd(l, al);
      for (uint32_t ca = a.RowBegin(l, al); ca < a_end; ++ca) {
        const State ar = a.cell_qr_[ca];
        for (State bl = 0; bl < b.num_states_; ++bl) {
          const uint32_t b_end = b.RowEnd(l, bl);
          for (uint32_t cb = b.RowBegin(l, bl); cb < b_end; ++cb) {
            const State br = b.cell_qr_[cb];
            for (const State* ta = a.CellTargetsBegin(ca);
                 ta != a.CellTargetsEnd(ca); ++ta) {
              for (const State* tb = b.CellTargetsBegin(cb);
                   tb != b.CellTargetsEnd(cb); ++tb) {
                builder.AddTransition(l, pair_state(al, bl),
                                      pair_state(ar, br),
                                      pair_state(*ta, *tb));
              }
            }
          }
        }
      }
    }
  }
  for (State qa = 0; qa < a.num_states_; ++qa) {
    for (State qb = 0; qb < b.num_states_; ++qb) {
      const bool acc_a = a.accepting_.Test(qa);
      const bool acc_b = b.accepting_.Test(qb);
      if (conjunction ? (acc_a && acc_b) : (acc_a || acc_b)) {
        builder.SetAccepting(pair_state(qa, qb));
      }
    }
  }
  return std::move(builder).Build();
}

CompiledAutomaton CompiledAutomaton::Determinize() const {
  SubsetInterner interner(num_words_);

  // Leaf subsets per label.
  std::vector<std::pair<Label, State>> det_leaves;
  det_leaves.reserve(alphabet_size_);
  for (Label l = 0; l < alphabet_size_; ++l) {
    det_leaves.emplace_back(l, interner.Intern(leaf_states_[l].words()));
  }

  // Saturate: apply every label to every pair of known subsets until no
  // new subset appears. Successors are word ORs over CSR cells.
  std::vector<std::array<uint32_t, 4>> det_transitions;
  std::unordered_set<uint64_t> done;
  std::vector<uint64_t> successor(num_words_, 0);
  bool changed = true;
  while (changed) {
    changed = false;
    const uint32_t count = interner.count();
    for (Label l = 0; l < alphabet_size_; ++l) {
      for (State i = 0; i < count; ++i) {
        for (State j = 0; j < count; ++j) {
          // Subset ids are capped at 4096 < 2^13.
          const uint64_t key =
              (static_cast<uint64_t>(l) << 26) | (uint64_t{i} << 13) | j;
          if (!done.insert(key).second) continue;
          std::fill(successor.begin(), successor.end(), 0);
          const uint64_t* sj = interner.SubsetWords(j);
          ForEachSetBit(interner.SubsetWords(i), num_words_, [&](State ql) {
            for (uint32_t c = RowBegin(l, ql), e = RowEnd(l, ql); c < e;
                 ++c) {
              if (TestWordBit(sj, cell_qr_[c])) {
                OrWords(successor.data(), CellTargetWords(c), num_words_);
              }
            }
          });
          const uint32_t before = interner.count();
          const State target = interner.Intern(successor.data());
          det_transitions.push_back({l, i, j, target});
          if (interner.count() != before) changed = true;
        }
      }
    }
    if (interner.count() != count) changed = true;
  }

  Builder builder(interner.count(), alphabet_size_);
  for (const auto& [l, q] : det_leaves) builder.AddLeafTransition(l, q);
  for (const auto& t : det_transitions) {
    builder.AddTransition(t[0], t[1], t[2], t[3]);
  }
  for (State id = 0; id < interner.count(); ++id) {
    if (num_words_ > 0 && IntersectsWords(interner.SubsetWords(id),
                                          accepting_.words(), num_words_)) {
      builder.SetAccepting(id);
    }
  }
  return std::move(builder).Build();
}

bool CompiledAutomaton::IsComplete() const {
  const size_t square = static_cast<size_t>(num_states_) * num_states_;
  const size_t stride = static_cast<size_t>(num_states_) + 1;
  for (Label l = 0; l < alphabet_size_; ++l) {
    if (!leaf_states_[l].Any()) return false;
    // Cells are unique per (ql, qr), so a full label has exactly
    // num_states^2 of them.
    const size_t cells = row_start_[l * stride + num_states_] -
                         row_start_[l * stride];
    if (cells != square) return false;
  }
  // A 0-state automaton over a nonempty alphabet was caught by the
  // empty-leaf-set check above, so every surviving case is complete.
  return true;
}

CompiledAutomaton CompiledAutomaton::Completed() const {
  if (IsComplete()) return *this;
  const State sink = num_states_;
  Builder builder(num_states_ + 1, alphabet_size_);
  accepting_.ForEach([&](State q) { builder.SetAccepting(q); });
  for (Label l = 0; l < alphabet_size_; ++l) {
    leaf_states_[l].ForEach(
        [&](State q) { builder.AddLeafTransition(l, q); });
    if (!leaf_states_[l].Any()) builder.AddLeafTransition(l, sink);
    for (State ql = 0; ql <= sink; ++ql) {
      uint32_t cell = ql < sink ? RowBegin(l, ql) : 0;
      const uint32_t end = ql < sink ? RowEnd(l, ql) : 0;
      for (State qr = 0; qr <= sink; ++qr) {
        if (ql < sink && qr < sink && cell < end && cell_qr_[cell] == qr) {
          for (const State* t = CellTargetsBegin(cell);
               t != CellTargetsEnd(cell); ++t) {
            builder.AddTransition(l, ql, qr, *t);
          }
          ++cell;
        } else {
          builder.AddTransition(l, ql, qr, sink);
        }
      }
    }
  }
  return std::move(builder).Build();
}

CompiledAutomaton CompiledAutomaton::Complement() const {
  CompiledAutomaton det = Determinize();
  // The subset construction is complete, so flipping accepting states
  // complements the language.
  StateSet flipped(det.num_states_);
  for (State q = 0; q < det.num_states_; ++q) {
    if (!det.accepting_.Test(q)) flipped.Set(q);
  }
  det.accepting_ = std::move(flipped);
  return det;
}

}  // namespace tud
