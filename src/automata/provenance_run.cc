#include "automata/provenance_run.h"

#include <vector>

#include "automata/state_set.h"
#include "util/check.h"

namespace tud {

GateId ProvenanceRun(const CompiledAutomaton& automaton,
                     UncertainBinaryTree& tree) {
  TUD_CHECK_GT(tree.NumNodes(), 0u);
  TUD_CHECK_LE(tree.AlphabetSize(), automaton.alphabet_size());
  BoolCircuit& circuit = tree.circuit();
  const uint32_t num_states = automaton.num_states();
  const size_t num_words = automaton.num_words();
  const size_t num_nodes = tree.NumNodes();

  // Pass 1: per-node possible-state bitsets — the states reachable at
  // each node in *some* world (union over label alternatives). Gates are
  // only emitted for possible states; for impossible ones the legacy
  // construction emitted OR() = const-false gates that every downstream
  // AND folded away, so skipping them is semantics-preserving.
  std::vector<uint64_t> possible(num_nodes * num_words, 0);
  for (TreeNodeId n = 0; n < num_nodes; ++n) {
    uint64_t* out = possible.data() + static_cast<size_t>(n) * num_words;
    if (tree.IsLeaf(n)) {
      for (const auto& [label, guard] : tree.alternatives(n)) {
        (void)guard;
        OrWords(out, automaton.leaf_states(label).words(), num_words);
      }
      continue;
    }
    const uint64_t* lw =
        possible.data() + static_cast<size_t>(tree.left(n)) * num_words;
    const uint64_t* rw =
        possible.data() + static_cast<size_t>(tree.right(n)) * num_words;
    for (const auto& [label, guard] : tree.alternatives(n)) {
      (void)guard;
      ForEachSetBit(lw, num_words, [&](State ql) {
        for (uint32_t c = automaton.RowBegin(label, ql),
                      e = automaton.RowEnd(label, ql);
             c < e; ++c) {
          if (TestWordBit(rw, automaton.CellRight(c))) {
            OrWords(out, automaton.CellTargetWords(c), num_words);
          }
        }
      });
    }
  }

  // Pass 2: emit gates bottom-up. reach is a flat (node, state) arena;
  // disjunct lists and the AND scratch are reused across nodes so the
  // loop allocates only when the circuit itself grows.
  circuit.Reserve(circuit.NumGates() +
                  num_nodes * (static_cast<size_t>(num_states) + 2));
  const GateId false_gate = circuit.AddConst(false);
  std::vector<GateId> reach(num_nodes * num_states, false_gate);
  std::vector<std::vector<GateId>> disjuncts(num_states);
  std::vector<GateId> scratch;
  for (TreeNodeId n = 0; n < num_nodes; ++n) {
    const uint64_t* poss =
        possible.data() + static_cast<size_t>(n) * num_words;
    if (tree.IsLeaf(n)) {
      for (const auto& [label, guard] : tree.alternatives(n)) {
        automaton.leaf_states(label).ForEach(
            [&, g = guard](State q) { disjuncts[q].push_back(g); });
      }
    } else {
      const TreeNodeId left = tree.left(n);
      const TreeNodeId right = tree.right(n);
      const uint64_t* lposs =
          possible.data() + static_cast<size_t>(left) * num_words;
      const uint64_t* rposs =
          possible.data() + static_cast<size_t>(right) * num_words;
      for (const auto& [label, guard] : tree.alternatives(n)) {
        ForEachSetBit(lposs, num_words, [&, g = guard](State ql) {
          const GateId gl = reach[left * num_states + ql];
          for (uint32_t c = automaton.RowBegin(label, ql),
                        e = automaton.RowEnd(label, ql);
               c < e; ++c) {
            const State qr = automaton.CellRight(c);
            if (!TestWordBit(rposs, qr)) continue;
            const GateId gr = reach[right * num_states + qr];
            scratch.assign({g, gl, gr});
            const GateId conj = circuit.AddAndInPlace(scratch);
            for (const State* t = automaton.CellTargetsBegin(c);
                 t != automaton.CellTargetsEnd(c); ++t) {
              disjuncts[*t].push_back(conj);
            }
          }
        });
      }
    }
    ForEachSetBit(poss, num_words, [&](State q) {
      reach[n * num_states + q] = circuit.AddOrInPlace(disjuncts[q]);
      disjuncts[q].clear();
    });
  }

  std::vector<GateId> accepting;
  const uint64_t* root_poss =
      possible.data() + static_cast<size_t>(tree.root()) * num_words;
  automaton.accepting().ForEach([&](State q) {
    if (TestWordBit(root_poss, q)) {
      accepting.push_back(reach[tree.root() * num_states + q]);
    }
  });
  return circuit.AddOrInPlace(accepting);
}

GateId ProvenanceRun(const TreeAutomaton& automaton,
                     UncertainBinaryTree& tree) {
  return ProvenanceRun(CompiledAutomaton::Compile(automaton), tree);
}

GateId ProvenanceRunLegacy(const TreeAutomaton& automaton,
                           UncertainBinaryTree& tree) {
  TUD_CHECK_GT(tree.NumNodes(), 0u);
  TUD_CHECK_LE(tree.AlphabetSize(), automaton.alphabet_size());
  BoolCircuit& circuit = tree.circuit();
  const uint32_t num_states = automaton.num_states();

  // reach[n * num_states + q] = gate G(n, q).
  std::vector<GateId> reach(tree.NumNodes() * num_states, kInvalidGate);
  for (TreeNodeId n = 0; n < tree.NumNodes(); ++n) {
    std::vector<std::vector<GateId>> disjuncts(num_states);
    if (tree.IsLeaf(n)) {
      for (const auto& [label, guard] : tree.alternatives(n)) {
        for (State q : automaton.LeafStates(label)) {
          disjuncts[q].push_back(guard);
        }
      }
    } else {
      const TreeNodeId left = tree.left(n);
      const TreeNodeId right = tree.right(n);
      for (const auto& [label, guard] : tree.alternatives(n)) {
        for (State ql = 0; ql < num_states; ++ql) {
          GateId gl = reach[left * num_states + ql];
          for (State qr = 0; qr < num_states; ++qr) {
            const std::vector<State>& targets =
                automaton.Transitions(label, ql, qr);
            if (targets.empty()) continue;
            GateId gr = reach[right * num_states + qr];
            GateId conj = circuit.AddAnd({guard, gl, gr});
            for (State q : targets) disjuncts[q].push_back(conj);
          }
        }
      }
    }
    for (State q = 0; q < num_states; ++q) {
      reach[n * num_states + q] = circuit.AddOr(std::move(disjuncts[q]));
    }
  }

  std::vector<GateId> accepting;
  for (State q = 0; q < num_states; ++q) {
    if (automaton.IsAccepting(q)) {
      accepting.push_back(reach[tree.root() * num_states + q]);
    }
  }
  return circuit.AddOr(std::move(accepting));
}

}  // namespace tud
