#include "automata/provenance_run.h"

#include <vector>

#include "util/check.h"

namespace tud {

GateId ProvenanceRun(const TreeAutomaton& automaton,
                     UncertainBinaryTree& tree) {
  TUD_CHECK_GT(tree.NumNodes(), 0u);
  TUD_CHECK_LE(tree.AlphabetSize(), automaton.alphabet_size());
  BoolCircuit& circuit = tree.circuit();
  const uint32_t num_states = automaton.num_states();

  // reach[n * num_states + q] = gate G(n, q).
  std::vector<GateId> reach(tree.NumNodes() * num_states, kInvalidGate);
  for (TreeNodeId n = 0; n < tree.NumNodes(); ++n) {
    std::vector<std::vector<GateId>> disjuncts(num_states);
    if (tree.IsLeaf(n)) {
      for (const auto& [label, guard] : tree.alternatives(n)) {
        for (State q : automaton.LeafStates(label)) {
          disjuncts[q].push_back(guard);
        }
      }
    } else {
      const TreeNodeId left = tree.left(n);
      const TreeNodeId right = tree.right(n);
      for (const auto& [label, guard] : tree.alternatives(n)) {
        for (State ql = 0; ql < num_states; ++ql) {
          GateId gl = reach[left * num_states + ql];
          for (State qr = 0; qr < num_states; ++qr) {
            const std::vector<State>& targets =
                automaton.Transitions(label, ql, qr);
            if (targets.empty()) continue;
            GateId gr = reach[right * num_states + qr];
            GateId conj = circuit.AddAnd({guard, gl, gr});
            for (State q : targets) disjuncts[q].push_back(conj);
          }
        }
      }
    }
    for (State q = 0; q < num_states; ++q) {
      reach[n * num_states + q] = circuit.AddOr(std::move(disjuncts[q]));
    }
  }

  std::vector<GateId> accepting;
  for (State q = 0; q < num_states; ++q) {
    if (automaton.IsAccepting(q)) {
      accepting.push_back(reach[tree.root() * num_states + q]);
    }
  }
  return circuit.AddOr(std::move(accepting));
}

}  // namespace tud
