#include "automata/automaton_library.h"

#include <algorithm>

namespace tud {

TreeAutomaton MakeExistsLabel(Label alphabet_size, Label target) {
  // State 1 = "seen target somewhere in the subtree".
  TreeAutomaton a(2, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    a.AddLeafTransition(l, l == target ? 1 : 0);
    for (State ql = 0; ql <= 1; ++ql) {
      for (State qr = 0; qr <= 1; ++qr) {
        State q = (l == target || ql == 1 || qr == 1) ? 1 : 0;
        a.AddTransition(l, ql, qr, q);
      }
    }
  }
  a.SetAccepting(1);
  return a;
}

TreeAutomaton MakeExistsLabelNondet(Label alphabet_size, Label target) {
  // State 1 = "the guessed witness lies in this subtree". The automaton
  // nondeterministically chooses one witness occurrence; runs where two
  // children both claim the witness are dead ends.
  TreeAutomaton a(2, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    a.AddLeafTransition(l, 0);
    if (l == target) a.AddLeafTransition(l, 1);
    a.AddTransition(l, 0, 0, 0);
    if (l == target) a.AddTransition(l, 0, 0, 1);
    a.AddTransition(l, 1, 0, 1);
    a.AddTransition(l, 0, 1, 1);
  }
  a.SetAccepting(1);
  return a;
}

TreeAutomaton MakeCountAtLeast(Label alphabet_size, Label target,
                               uint32_t k) {
  // State q in [0, k]: min(k, #target-labeled nodes in the subtree).
  TreeAutomaton a(k + 1, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    uint32_t self = (l == target) ? 1 : 0;
    a.AddLeafTransition(l, std::min(self, k));
    for (State ql = 0; ql <= k; ++ql) {
      for (State qr = 0; qr <= k; ++qr) {
        a.AddTransition(l, ql, qr, std::min(ql + qr + self, k));
      }
    }
  }
  a.SetAccepting(k);
  return a;
}

TreeAutomaton MakeRootHasLabel(Label alphabet_size, Label target) {
  // State 1 = "this node is labeled target"; only the root's state
  // matters for acceptance.
  TreeAutomaton a(2, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    State q = (l == target) ? 1 : 0;
    a.AddLeafTransition(l, q);
    for (State ql = 0; ql <= 1; ++ql) {
      for (State qr = 0; qr <= 1; ++qr) {
        a.AddTransition(l, ql, qr, q);
      }
    }
  }
  a.SetAccepting(1);
  return a;
}

TreeAutomaton MakeEveryBUnderA(Label alphabet_size, Label a_label,
                               Label b_label) {
  // State 1 = "some b in the subtree is exposed (no a above it within
  // the subtree)". An a-labeled node shields everything below it.
  TreeAutomaton a(2, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    a.AddLeafTransition(l, (l == b_label && l != a_label) ? 1 : 0);
    for (State ql = 0; ql <= 1; ++ql) {
      for (State qr = 0; qr <= 1; ++qr) {
        State q;
        if (l == a_label) {
          q = 0;  // Shields exposed b's below, and itself if l == b.
        } else {
          q = (l == b_label || ql == 1 || qr == 1) ? 1 : 0;
        }
        a.AddTransition(l, ql, qr, q);
      }
    }
  }
  a.SetAccepting(0);
  return a;
}

TreeAutomaton MakeExistsBBelowA(Label alphabet_size, Label a_label,
                                Label b_label) {
  // States: 0 = nothing relevant; 1 = subtree contains a b; 2 =
  // witnessed an a with a strict b-descendant.
  TreeAutomaton a(3, alphabet_size);
  for (Label l = 0; l < alphabet_size; ++l) {
    a.AddLeafTransition(l, l == b_label ? 1 : 0);
    for (State ql = 0; ql <= 2; ++ql) {
      for (State qr = 0; qr <= 2; ++qr) {
        State q;
        if (ql == 2 || qr == 2) {
          q = 2;
        } else if (l == a_label && (ql == 1 || qr == 1)) {
          q = 2;
        } else if (l == b_label || ql == 1 || qr == 1) {
          q = 1;
        } else {
          q = 0;
        }
        a.AddTransition(l, ql, qr, q);
      }
    }
  }
  a.SetAccepting(2);
  return a;
}

}  // namespace tud
