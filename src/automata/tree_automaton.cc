#include "automata/tree_automaton.h"

#include <algorithm>
#include <queue>

#include "automata/compiled_automaton.h"
#include "util/check.h"

namespace tud {

void TreeAutomaton::AddLeafTransition(Label label, State q) {
  TUD_CHECK_LT(label, alphabet_size_);
  TUD_CHECK_LT(q, num_states_);
  if (leaf_transitions_.size() < alphabet_size_) {
    leaf_transitions_.resize(alphabet_size_);
  }
  leaf_transitions_[label].push_back(q);
}

void TreeAutomaton::AddTransition(Label label, State q_left, State q_right,
                                  State q) {
  TUD_CHECK_LT(label, alphabet_size_);
  TUD_CHECK_LT(q_left, num_states_);
  TUD_CHECK_LT(q_right, num_states_);
  TUD_CHECK_LT(q, num_states_);
  transitions_[{label, q_left, q_right}].push_back(q);
}

void TreeAutomaton::SetAccepting(State q) {
  TUD_CHECK_LT(q, num_states_);
  if (accepting_.size() < num_states_) accepting_.resize(num_states_, false);
  accepting_[q] = true;
}

const std::vector<State>& TreeAutomaton::LeafStates(Label label) const {
  if (label >= leaf_transitions_.size()) return empty_;
  return leaf_transitions_[label];
}

const std::vector<State>& TreeAutomaton::Transitions(Label label,
                                                     State q_left,
                                                     State q_right) const {
  auto it = transitions_.find({label, q_left, q_right});
  if (it == transitions_.end()) return empty_;
  return it->second;
}

std::vector<std::set<State>> TreeAutomaton::ReachableStates(
    const BinaryTree& tree) const {
  TUD_CHECK_LE(tree.AlphabetSize(), alphabet_size_);
  std::vector<std::set<State>> reach(tree.NumNodes());
  for (TreeNodeId n = 0; n < tree.NumNodes(); ++n) {
    if (tree.IsLeaf(n)) {
      for (State q : LeafStates(tree.label(n))) reach[n].insert(q);
      continue;
    }
    for (State ql : reach[tree.left(n)]) {
      for (State qr : reach[tree.right(n)]) {
        for (State q : Transitions(tree.label(n), ql, qr)) {
          reach[n].insert(q);
        }
      }
    }
  }
  return reach;
}

bool TreeAutomaton::Accepts(const BinaryTree& tree) const {
  return CompiledAutomaton::Compile(*this).Accepts(tree);
}

bool TreeAutomaton::AcceptsLegacy(const BinaryTree& tree) const {
  if (tree.NumNodes() == 0) return false;
  std::vector<std::set<State>> reach = ReachableStates(tree);
  for (State q : reach[tree.root()]) {
    if (q < accepting_.size() && accepting_[q]) return true;
  }
  return false;
}

TreeAutomaton TreeAutomaton::Product(const TreeAutomaton& a,
                                     const TreeAutomaton& b,
                                     bool conjunction) {
  return CompiledAutomaton::Product(CompiledAutomaton::Compile(a),
                                    CompiledAutomaton::Compile(b),
                                    conjunction)
      .ToTreeAutomaton();
}

TreeAutomaton TreeAutomaton::ProductLegacy(const TreeAutomaton& a,
                                           const TreeAutomaton& b,
                                           bool conjunction) {
  TUD_CHECK_EQ(a.alphabet_size_, b.alphabet_size_);
  const uint32_t nb = b.num_states_;
  auto pair_state = [nb](State qa, State qb) { return qa * nb + qb; };
  TreeAutomaton out(a.num_states_ * b.num_states_, a.alphabet_size_);

  for (Label l = 0; l < a.alphabet_size_; ++l) {
    for (State qa : a.LeafStates(l)) {
      for (State qb : b.LeafStates(l)) {
        out.AddLeafTransition(l, pair_state(qa, qb));
      }
    }
  }
  for (const auto& [key_a, targets_a] : a.transitions_) {
    const auto& [label, al, ar] = key_a;
    for (State bl = 0; bl < b.num_states_; ++bl) {
      for (State br = 0; br < b.num_states_; ++br) {
        const std::vector<State>& targets_b = b.Transitions(label, bl, br);
        if (targets_b.empty()) continue;
        for (State ta : targets_a) {
          for (State tb : targets_b) {
            out.AddTransition(label, pair_state(al, bl), pair_state(ar, br),
                              pair_state(ta, tb));
          }
        }
      }
    }
  }
  for (State qa = 0; qa < a.num_states_; ++qa) {
    for (State qb = 0; qb < b.num_states_; ++qb) {
      bool acc_a = qa < a.accepting_.size() && a.accepting_[qa];
      bool acc_b = qb < b.accepting_.size() && b.accepting_[qb];
      if (conjunction ? (acc_a && acc_b) : (acc_a || acc_b)) {
        out.SetAccepting(pair_state(qa, qb));
      }
    }
  }
  return out;
}

TreeAutomaton TreeAutomaton::Determinize() const {
  return CompiledAutomaton::Compile(*this).Determinize().ToTreeAutomaton();
}

TreeAutomaton TreeAutomaton::DeterminizeLegacy() const {
  // Subset construction: deterministic states are the reachable subsets
  // of this automaton's states. The result is complete (the empty subset
  // is a valid sink), so flipping accepting states complements.
  std::map<std::set<State>, State> subset_id;
  std::vector<std::set<State>> subsets;
  auto intern = [&](const std::set<State>& s) -> State {
    auto it = subset_id.find(s);
    if (it != subset_id.end()) return it->second;
    State id = static_cast<State>(subsets.size());
    TUD_CHECK_LE(subsets.size(), 4096u) << "determinisation blow-up";
    subset_id.emplace(s, id);
    subsets.push_back(s);
    return id;
  };

  // Leaf subsets per label.
  std::vector<std::pair<Label, State>> det_leaves;
  for (Label l = 0; l < alphabet_size_; ++l) {
    std::set<State> s(LeafStates(l).begin(), LeafStates(l).end());
    det_leaves.emplace_back(l, intern(s));
  }

  // Saturate: repeatedly apply every label to every pair of known
  // subsets until no new subset appears.
  std::vector<std::tuple<Label, State, State, State>> det_transitions;
  std::set<std::tuple<Label, State, State>> done;
  bool changed = true;
  while (changed) {
    changed = false;
    const size_t count = subsets.size();
    for (Label l = 0; l < alphabet_size_; ++l) {
      for (State i = 0; i < count; ++i) {
        for (State j = 0; j < count; ++j) {
          if (done.contains({l, i, j})) continue;
          std::set<State> successor;
          for (State ql : subsets[i]) {
            for (State qr : subsets[j]) {
              for (State q : Transitions(l, ql, qr)) successor.insert(q);
            }
          }
          size_t before = subsets.size();
          State target = intern(successor);
          det_transitions.emplace_back(l, i, j, target);
          done.insert({l, i, j});
          if (subsets.size() != before) changed = true;
        }
      }
    }
    if (subsets.size() != count) changed = true;
  }

  TreeAutomaton out(static_cast<uint32_t>(subsets.size()), alphabet_size_);
  for (const auto& [l, q] : det_leaves) out.AddLeafTransition(l, q);
  for (const auto& [l, i, j, t] : det_transitions) {
    out.AddTransition(l, i, j, t);
  }
  for (State i = 0; i < subsets.size(); ++i) {
    for (State q : subsets[i]) {
      if (q < accepting_.size() && accepting_[q]) {
        out.SetAccepting(i);
        break;
      }
    }
  }
  return out;
}

TreeAutomaton TreeAutomaton::Complement() const {
  return CompiledAutomaton::Compile(*this).Complement().ToTreeAutomaton();
}

bool TreeAutomaton::IsEmpty() const {
  return CompiledAutomaton::Compile(*this).IsEmpty();
}

}  // namespace tud
