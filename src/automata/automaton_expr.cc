#include "automata/automaton_expr.h"

#include <optional>
#include <utility>

#include "util/check.h"

namespace tud {

struct AutomatonExpr::Node {
  enum class Kind : uint8_t { kAtom, kAnd, kOr, kNot };

  Kind kind;
  // kAtom only (optional because CompiledAutomaton is not
  // default-constructible — it only exists compiled).
  std::optional<CompiledAutomaton> atom;
  std::shared_ptr<const Node> left;
  std::shared_ptr<const Node> right;  // kAnd/kOr only.
};

AutomatonExpr AutomatonExpr::Atom(const TreeAutomaton& automaton) {
  return Atom(CompiledAutomaton::Compile(automaton));
}

AutomatonExpr AutomatonExpr::Atom(CompiledAutomaton automaton) {
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAtom;
  node->atom = std::move(automaton);
  return AutomatonExpr(std::move(node));
}

AutomatonExpr AutomatonExpr::And(AutomatonExpr a, AutomatonExpr b) {
  TUD_CHECK(a.node_ != nullptr && b.node_ != nullptr);
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kAnd;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return AutomatonExpr(std::move(node));
}

AutomatonExpr AutomatonExpr::Or(AutomatonExpr a, AutomatonExpr b) {
  TUD_CHECK(a.node_ != nullptr && b.node_ != nullptr);
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kOr;
  node->left = std::move(a.node_);
  node->right = std::move(b.node_);
  return AutomatonExpr(std::move(node));
}

AutomatonExpr AutomatonExpr::Not(AutomatonExpr a) {
  TUD_CHECK(a.node_ != nullptr);
  if (a.node_->kind == Node::Kind::kNot) {
    return AutomatonExpr(a.node_->left);  // !!e == e.
  }
  auto node = std::make_shared<Node>();
  node->kind = Node::Kind::kNot;
  node->left = std::move(a.node_);
  return AutomatonExpr(std::move(node));
}

CompiledAutomaton AutomatonExpr::Compile(CompileStats* stats) const {
  TUD_CHECK(node_ != nullptr);
  CompileStats local;
  CompiledAutomaton result = CompileNode(*node_, &local);
  local.result_states = result.num_states();
  if (stats != nullptr) *stats = local;
  return result;
}

uintptr_t AutomatonExpr::CacheKey() const {
  return reinterpret_cast<uintptr_t>(node_.get());
}

CompiledAutomaton AutomatonExpr::CompileNode(const Node& node,
                                             CompileStats* stats) {
  switch (node.kind) {
    case Node::Kind::kAtom:
      return *node.atom;
    case Node::Kind::kAnd: {
      CompiledAutomaton left = CompileNode(*node.left, stats);
      CompiledAutomaton right = CompileNode(*node.right, stats);
      ++stats->products;
      return CompiledAutomaton::Product(left, right, /*conjunction=*/true);
    }
    case Node::Kind::kOr: {
      // Union-by-product only means language union when both operands
      // are complete (an operand with no run on a tree would otherwise
      // veto the pair run); complete them first — a no-op for the
      // deterministic library automata and for nested union results.
      CompiledAutomaton left = CompileNode(*node.left, stats).Completed();
      CompiledAutomaton right = CompileNode(*node.right, stats).Completed();
      ++stats->products;
      return CompiledAutomaton::Product(left, right, /*conjunction=*/false);
    }
    case Node::Kind::kNot: {
      CompiledAutomaton operand = CompileNode(*node.left, stats);
      ++stats->complements;
      return operand.Complement();
    }
  }
  TUD_CHECK(false) << "unreachable";
  return *node.atom;
}

}  // namespace tud
