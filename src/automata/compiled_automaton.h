#ifndef TUD_AUTOMATA_COMPILED_AUTOMATON_H_
#define TUD_AUTOMATA_COMPILED_AUTOMATON_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "automata/binary_tree.h"
#include "automata/state_set.h"

namespace tud {

class TreeAutomaton;
using State = uint32_t;

/// A TreeAutomaton lowered to dense, pre-indexed tables: the evaluation
/// engine of the hot §2.2 pipeline.
///
/// Layout:
///  - per-label leaf-state bitsets (`leaf_states`),
///  - per-label transition tables in CSR form: for each label, rows
///    indexed by q_left; each row holds its (q_right, cell) entries in
///    ascending q_right order; each cell owns a flat slice of target
///    states plus a precomputed target *bitset* slice, so propagating a
///    cell into a reachable-state accumulator is `num_words` OR
///    operations.
///
/// All engine operations — runs, product, union, subset-construction
/// determinisation, emptiness — work on uint64_t words (see
/// state_set.h) instead of std::set<State>; determinisation interns
/// subset states by hashing their words rather than keeping a
/// std::map<std::set<State>, State>. The std::map-based TreeAutomaton
/// remains the *construction* interface (and the reference
/// implementation for cross-checking); its public run/closure entry
/// points lower to this engine.
class CompiledAutomaton {
 public:
  /// Incremental construction; transitions may arrive in any order.
  /// Build() sorts them into CSR form. Duplicate (label, ql, qr, q)
  /// entries are deduplicated.
  class Builder {
   public:
    Builder(uint32_t num_states, Label alphabet_size);

    void AddLeafTransition(Label label, State q);
    void AddTransition(Label label, State q_left, State q_right, State q);
    void SetAccepting(State q);

    CompiledAutomaton Build() &&;

   private:
    uint32_t num_states_;
    Label alphabet_size_;
    StateSet accepting_;
    std::vector<StateSet> leaf_states_;
    // (label, ql, qr, target) quadruples, packed for sorting.
    std::vector<std::array<uint32_t, 4>> entries_;
  };

  /// Lowers `automaton` into the dense representation.
  static CompiledAutomaton Compile(const TreeAutomaton& automaton);

  uint32_t num_states() const { return num_states_; }
  Label alphabet_size() const { return alphabet_size_; }
  /// Words per state bitset (StateWordsFor(num_states())).
  size_t num_words() const { return num_words_; }

  const StateSet& accepting() const { return accepting_; }
  bool IsAccepting(State q) const { return accepting_.Test(q); }
  const StateSet& leaf_states(Label label) const {
    return leaf_states_[label];
  }

  // --- CSR transition-table access -------------------------------------
  // Cells of label l, row ql live at indices [RowBegin(l, ql),
  // RowEnd(l, ql)) and are sorted by q_right.

  uint32_t RowBegin(Label label, State q_left) const {
    return row_start_[static_cast<size_t>(label) * (num_states_ + 1) +
                      q_left];
  }
  uint32_t RowEnd(Label label, State q_left) const {
    return row_start_[static_cast<size_t>(label) * (num_states_ + 1) +
                      q_left + 1];
  }
  State CellRight(uint32_t cell) const { return cell_qr_[cell]; }
  /// Flat slice of the cell's target states, ascending.
  const State* CellTargetsBegin(uint32_t cell) const {
    return targets_.data() + cell_targets_start_[cell];
  }
  const State* CellTargetsEnd(uint32_t cell) const {
    return targets_.data() + cell_targets_start_[cell + 1];
  }
  /// The cell's targets as a bitset slice of num_words() words.
  const uint64_t* CellTargetWords(uint32_t cell) const {
    return cell_target_bits_.data() + static_cast<size_t>(cell) * num_words_;
  }
  size_t NumCells() const { return cell_qr_.size(); }

  // --- Engine operations ------------------------------------------------

  /// Bottom-up bitset run: one num_words() slice per tree node, ascending
  /// node id (the arena replaces std::vector<std::set<State>>).
  std::vector<uint64_t> ReachableWords(const BinaryTree& tree) const;

  /// True iff some run reaches an accepting state at the root.
  bool Accepts(const BinaryTree& tree) const;

  /// True iff the accepted language is empty (bitset fixpoint).
  bool IsEmpty() const;

  /// Product construction over CSR cells only (never enumerates the
  /// full q_left × q_right square). `conjunction` selects intersection
  /// vs union acceptance, as in TreeAutomaton::Product.
  static CompiledAutomaton Product(const CompiledAutomaton& a,
                                   const CompiledAutomaton& b,
                                   bool conjunction);

  /// Subset construction on bitset words; subset states are interned by
  /// word hash. The result is complete and deterministic (every cell has
  /// exactly one target). Aborts beyond 4096 subset states, like the
  /// reference implementation.
  CompiledAutomaton Determinize() const;

  /// Determinise, then flip accepting states.
  CompiledAutomaton Complement() const;

  /// True iff every label has a nonempty leaf-state set and every
  /// (label, q_left, q_right) has at least one target — i.e. every tree
  /// admits at least one run. Product-with-union acceptance only
  /// computes the language union for complete operands.
  bool IsComplete() const;

  /// An equivalent complete automaton: *this if already complete,
  /// otherwise *this plus a non-accepting sink state absorbing every
  /// missing transition. Used by AutomatonExpr's union compilation so
  /// Or means language union for arbitrary NTAs.
  CompiledAutomaton Completed() const;

  /// Rebuilds the std::map-based representation (for callers that want
  /// to keep composing through the TreeAutomaton API).
  TreeAutomaton ToTreeAutomaton() const;

  /// Process-wide count of ToTreeAutomaton() rebuilds. Compiled-first
  /// pipelines (AutomatonExpr::Compile) must never round-trip through
  /// the std::map representation between closure steps; tests pin that
  /// down by asserting this counter does not move.
  static uint64_t ToTreeAutomatonCalls();

 private:
  CompiledAutomaton() = default;

  uint32_t num_states_ = 0;
  Label alphabet_size_ = 0;
  size_t num_words_ = 0;
  StateSet accepting_;
  std::vector<StateSet> leaf_states_;         // Indexed by label.
  std::vector<uint32_t> row_start_;           // alphabet*(num_states+1)+1.
  std::vector<State> cell_qr_;                // Per cell.
  std::vector<uint32_t> cell_targets_start_;  // Per cell, into targets_.
  std::vector<State> targets_;                // Flat target states.
  std::vector<uint64_t> cell_target_bits_;    // num_cells * num_words_.
};

}  // namespace tud

#endif  // TUD_AUTOMATA_COMPILED_AUTOMATON_H_
