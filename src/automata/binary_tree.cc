#include "automata/binary_tree.h"

#include <algorithm>

#include "util/check.h"

namespace tud {

TreeNodeId BinaryTree::AddLeaf(Label label) {
  TreeNodeId id = static_cast<TreeNodeId>(labels_.size());
  labels_.push_back(label);
  lefts_.push_back(kNoTreeNode);
  rights_.push_back(kNoTreeNode);
  alphabet_size_ = std::max(alphabet_size_, label + 1);
  return id;
}

TreeNodeId BinaryTree::AddInternal(Label label, TreeNodeId left,
                                   TreeNodeId right) {
  TUD_CHECK_LT(left, labels_.size());
  TUD_CHECK_LT(right, labels_.size());
  TreeNodeId id = static_cast<TreeNodeId>(labels_.size());
  labels_.push_back(label);
  lefts_.push_back(left);
  rights_.push_back(right);
  alphabet_size_ = std::max(alphabet_size_, label + 1);
  return id;
}

TreeNodeId BinaryTree::root() const {
  TUD_CHECK_GT(NumNodes(), 0u);
  return static_cast<TreeNodeId>(NumNodes() - 1);
}

std::string BinaryTree::ToString() const {
  std::string out;
  for (TreeNodeId n = 0; n < NumNodes(); ++n) {
    out += "node " + std::to_string(n) + ": label " +
           std::to_string(labels_[n]);
    if (!IsLeaf(n)) {
      out += " (" + std::to_string(lefts_[n]) + ", " +
             std::to_string(rights_[n]) + ")";
    }
    out += "\n";
  }
  return out;
}

}  // namespace tud
