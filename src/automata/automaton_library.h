#ifndef TUD_AUTOMATA_AUTOMATON_LIBRARY_H_
#define TUD_AUTOMATA_AUTOMATON_LIBRARY_H_

#include <cstdint>

#include "automata/tree_automaton.h"

namespace tud {

/// Hand-compiled tree automata for a library of MSO-definable properties
/// of labeled binary trees.
///
/// Compiling arbitrary MSO to automata is non-elementary in the query
/// (paper §2.2: "compiling MSO queries to automata is generally
/// non-elementary"), so — like practical systems — we ship automata for
/// a library of properties plus the Boolean closure operations of
/// TreeAutomaton (product/union/complement), which together cover the
/// Boolean combinations used by the examples, tests and benchmarks. The
/// data-complexity theorems quantify over fixed automata, so any member
/// of this library exercises the same code paths as a compiled MSO query.

/// "Some node is labeled `target`." Deterministic, 2 states.
TreeAutomaton MakeExistsLabel(Label alphabet_size, Label target);

/// Same language, but nondeterministic (guesses one witness leaf-up
/// path); used to exercise Determinize/ProvenanceRun on genuine NTAs.
TreeAutomaton MakeExistsLabelNondet(Label alphabet_size, Label target);

/// "At least `k` nodes are labeled `target`." Deterministic, k+1 states.
TreeAutomaton MakeCountAtLeast(Label alphabet_size, Label target,
                               uint32_t k);

/// "The root is labeled `target`."
TreeAutomaton MakeRootHasLabel(Label alphabet_size, Label target);

/// "Every node labeled `b` has a (strict) ancestor labeled `a`."
TreeAutomaton MakeEveryBUnderA(Label alphabet_size, Label a, Label b);

/// "Some node labeled `a` has a (strict) descendant labeled `b`."
TreeAutomaton MakeExistsBBelowA(Label alphabet_size, Label a, Label b);

}  // namespace tud

#endif  // TUD_AUTOMATA_AUTOMATON_LIBRARY_H_
