#ifndef TUD_AUTOMATA_STATE_SET_H_
#define TUD_AUTOMATA_STATE_SET_H_

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tud {

/// Word-level helpers shared by StateSet and the flat word arenas of the
/// compiled automaton engine (reach tables store one `num_words` slice
/// per tree node rather than one heap-allocated set per node).

inline size_t StateWordsFor(uint32_t num_bits) {
  return (static_cast<size_t>(num_bits) + 63) / 64;
}

inline bool TestWordBit(const uint64_t* words, uint32_t i) {
  return (words[i >> 6] >> (i & 63)) & 1;
}

inline void SetWordBit(uint64_t* words, uint32_t i) {
  words[i >> 6] |= uint64_t{1} << (i & 63);
}

inline void OrWords(uint64_t* dst, const uint64_t* src, size_t num_words) {
  for (size_t w = 0; w < num_words; ++w) dst[w] |= src[w];
}

inline bool AnyWord(const uint64_t* words, size_t num_words) {
  for (size_t w = 0; w < num_words; ++w) {
    if (words[w] != 0) return true;
  }
  return false;
}

inline bool IntersectsWords(const uint64_t* a, const uint64_t* b,
                            size_t num_words) {
  for (size_t w = 0; w < num_words; ++w) {
    if ((a[w] & b[w]) != 0) return true;
  }
  return false;
}

inline bool EqualWords(const uint64_t* a, const uint64_t* b,
                       size_t num_words) {
  for (size_t w = 0; w < num_words; ++w) {
    if (a[w] != b[w]) return false;
  }
  return true;
}

inline uint64_t HashWords(const uint64_t* words, size_t num_words) {
  uint64_t h = 0x9e3779b97f4a7c15ULL;
  for (size_t w = 0; w < num_words; ++w) {
    h ^= words[w];
    h *= 0xff51afd7ed558ccdULL;
    h ^= h >> 33;
  }
  return h;
}

/// Calls `fn(index)` for every set bit, in ascending index order.
template <typename Fn>
inline void ForEachSetBit(const uint64_t* words, size_t num_words, Fn fn) {
  for (size_t w = 0; w < num_words; ++w) {
    uint64_t bits = words[w];
    while (bits != 0) {
      uint32_t b = static_cast<uint32_t>(std::countr_zero(bits));
      fn(static_cast<uint32_t>(w * 64 + b));
      bits &= bits - 1;
    }
  }
}

/// A dynamic bitset over automaton states, backed by uint64_t words.
///
/// This is the state representation of the compiled automaton engine:
/// reachable-state sets, leaf-transition sets and subset-construction
/// states are all StateSets, so membership, union and equality are word
/// operations instead of std::set node traversals.
class StateSet {
 public:
  StateSet() = default;
  explicit StateSet(uint32_t num_bits)
      : num_bits_(num_bits), words_(StateWordsFor(num_bits), 0) {}

  uint32_t num_bits() const { return num_bits_; }
  size_t num_words() const { return words_.size(); }
  uint64_t* words() { return words_.data(); }
  const uint64_t* words() const { return words_.data(); }

  void Set(uint32_t i) { SetWordBit(words_.data(), i); }
  bool Test(uint32_t i) const { return TestWordBit(words_.data(), i); }
  void Clear() { words_.assign(words_.size(), 0); }

  bool Any() const { return AnyWord(words_.data(), words_.size()); }
  uint32_t Count() const {
    uint32_t count = 0;
    for (uint64_t w : words_) count += std::popcount(w);
    return count;
  }

  void OrWith(const StateSet& other) {
    tud::OrWords(words_.data(), other.words_.data(), words_.size());
  }
  bool Intersects(const StateSet& other) const {
    return IntersectsWords(words_.data(), other.words_.data(),
                           words_.size());
  }

  uint64_t Hash() const { return HashWords(words_.data(), words_.size()); }

  template <typename Fn>
  void ForEach(Fn fn) const {
    ForEachSetBit(words_.data(), words_.size(), fn);
  }

  bool operator==(const StateSet&) const = default;

 private:
  uint32_t num_bits_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace tud

#endif  // TUD_AUTOMATA_STATE_SET_H_
