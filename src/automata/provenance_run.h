#ifndef TUD_AUTOMATA_PROVENANCE_RUN_H_
#define TUD_AUTOMATA_PROVENANCE_RUN_H_

#include "automata/compiled_automaton.h"
#include "automata/tree_automaton.h"
#include "automata/uncertain_tree.h"
#include "circuits/bool_circuit.h"

namespace tud {

/// The provenance-circuit construction of §2.2: "we show that A can also
/// be run on an uncertain instance I, producing a lineage circuit C that
/// describes which possible worlds of I are accepted by A."
///
/// Runs NTA `automaton` symbolically over `tree`, adding gates to the
/// tree's circuit: for each node n and state q, gate G(n, q) is true in a
/// world iff q is reachable at n in that world:
///
///   G(leaf, q)     = OR over alternatives (l, guard) with q in
///                    leaf(l): guard
///   G(internal, q) = OR over alternatives (l, guard) and pairs
///                    (ql, qr) with q in trans(l, ql, qr):
///                    guard AND G(left, ql) AND G(right, qr)
///
/// The returned gate is OR over accepting q of G(root, q): exactly the
/// lineage of "the automaton accepts this world". The construction adds
/// O(|tree| * |A|) gates, and — the structural point of the paper — the
/// gates for node n only read gates of n's children, so the lineage
/// circuit has a tree decomposition following the tree with bag size
/// O(num_states): bounded-width inputs yield bounded-width lineages.
///
/// The compiled overload is the production path: a single bottom-up pass
/// over the CSR transition tables that first computes per-node
/// possible-state bitsets (so provably-unreachable (q_left, q_right)
/// pairs emit nothing), keeps all per-node gate lists in reused scratch
/// buffers, and batch-reserves circuit capacity before emitting.
GateId ProvenanceRun(const CompiledAutomaton& automaton,
                     UncertainBinaryTree& tree);

/// Convenience overload: compiles `automaton` and runs the fast path.
GateId ProvenanceRun(const TreeAutomaton& automaton,
                     UncertainBinaryTree& tree);

/// The original per-node std::set construction, kept as the reference
/// implementation for the equivalence tests and the bench harness
/// baseline. Semantically identical to ProvenanceRun.
GateId ProvenanceRunLegacy(const TreeAutomaton& automaton,
                           UncertainBinaryTree& tree);

}  // namespace tud

#endif  // TUD_AUTOMATA_PROVENANCE_RUN_H_
