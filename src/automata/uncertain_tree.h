#ifndef TUD_AUTOMATA_UNCERTAIN_TREE_H_
#define TUD_AUTOMATA_UNCERTAIN_TREE_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "automata/binary_tree.h"
#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "events/valuation.h"

namespace tud {

/// A binary tree with a fixed shape but uncertain node labels: each node
/// carries a list of (label, guard gate) alternatives over a shared
/// Boolean circuit. A valuation of the events picks, at every node, the
/// alternative whose guard is true — the caller must ensure that exactly
/// one guard per node holds in every world (e.g., by guarding two
/// alternatives with g and NOT g). IsWellFormedUnder verifies this for a
/// given valuation; tests sweep it exhaustively.
///
/// This is the input of the provenance-run construction (§2.2): tree
/// encodings of uncertain instances are trees whose node labels vary
/// across possible worlds while the skeleton stays fixed.
class UncertainBinaryTree {
 public:
  UncertainBinaryTree() = default;

  /// The circuit guards live in. Register events with `events()` of the
  /// owning context and build guard gates here.
  BoolCircuit& circuit() { return circuit_; }
  const BoolCircuit& circuit() const { return circuit_; }

  /// Adds a leaf / internal node with the given alternatives (at least
  /// one; pass a single alternative guarded by TRUE for a certain node).
  TreeNodeId AddLeaf(std::vector<std::pair<Label, GateId>> alternatives);
  TreeNodeId AddInternal(std::vector<std::pair<Label, GateId>> alternatives,
                         TreeNodeId left, TreeNodeId right);

  size_t NumNodes() const { return alternatives_.size(); }
  TreeNodeId root() const;
  bool IsLeaf(TreeNodeId n) const { return lefts_[n] == kNoTreeNode; }
  TreeNodeId left(TreeNodeId n) const { return lefts_[n]; }
  TreeNodeId right(TreeNodeId n) const { return rights_[n]; }
  const std::vector<std::pair<Label, GateId>>& alternatives(
      TreeNodeId n) const {
    return alternatives_[n];
  }

  /// Largest label mentioned plus one.
  Label AlphabetSize() const { return alphabet_size_; }

  /// The concrete possible world selected by `valuation`; requires
  /// exactly one guard true per node (checked).
  BinaryTree World(const Valuation& valuation) const;

  /// True iff exactly one guard holds at every node under `valuation`.
  bool IsWellFormedUnder(const Valuation& valuation) const;

 private:
  BoolCircuit circuit_;
  std::vector<std::vector<std::pair<Label, GateId>>> alternatives_;
  std::vector<TreeNodeId> lefts_;
  std::vector<TreeNodeId> rights_;
  Label alphabet_size_ = 0;
};

}  // namespace tud

#endif  // TUD_AUTOMATA_UNCERTAIN_TREE_H_
