#include "automata/uncertain_tree.h"

#include <algorithm>

#include "util/check.h"

namespace tud {

TreeNodeId UncertainBinaryTree::AddLeaf(
    std::vector<std::pair<Label, GateId>> alternatives) {
  TUD_CHECK(!alternatives.empty());
  for (const auto& [label, gate] : alternatives) {
    TUD_CHECK_LT(gate, circuit_.NumGates());
    alphabet_size_ = std::max(alphabet_size_, label + 1);
  }
  TreeNodeId id = static_cast<TreeNodeId>(alternatives_.size());
  alternatives_.push_back(std::move(alternatives));
  lefts_.push_back(kNoTreeNode);
  rights_.push_back(kNoTreeNode);
  return id;
}

TreeNodeId UncertainBinaryTree::AddInternal(
    std::vector<std::pair<Label, GateId>> alternatives, TreeNodeId left,
    TreeNodeId right) {
  TUD_CHECK_LT(left, NumNodes());
  TUD_CHECK_LT(right, NumNodes());
  TreeNodeId id = AddLeaf(std::move(alternatives));
  lefts_[id] = left;
  rights_[id] = right;
  return id;
}

TreeNodeId UncertainBinaryTree::root() const {
  TUD_CHECK_GT(NumNodes(), 0u);
  return static_cast<TreeNodeId>(NumNodes() - 1);
}

BinaryTree UncertainBinaryTree::World(const Valuation& valuation) const {
  std::vector<bool> gate_values = circuit_.EvaluateAll(valuation);
  BinaryTree tree;
  for (TreeNodeId n = 0; n < NumNodes(); ++n) {
    Label chosen = 0;
    int count = 0;
    for (const auto& [label, gate] : alternatives_[n]) {
      if (gate_values[gate]) {
        chosen = label;
        ++count;
      }
    }
    TUD_CHECK_EQ(count, 1) << "node " << n << " has " << count
                           << " active label alternatives";
    TreeNodeId id = IsLeaf(n) ? tree.AddLeaf(chosen)
                              : tree.AddInternal(chosen, lefts_[n], rights_[n]);
    TUD_CHECK_EQ(id, n);
  }
  return tree;
}

bool UncertainBinaryTree::IsWellFormedUnder(const Valuation& valuation) const {
  std::vector<bool> gate_values = circuit_.EvaluateAll(valuation);
  for (TreeNodeId n = 0; n < NumNodes(); ++n) {
    int count = 0;
    for (const auto& [label, gate] : alternatives_[n]) {
      (void)label;
      if (gate_values[gate]) ++count;
    }
    if (count != 1) return false;
  }
  return true;
}

}  // namespace tud
