#ifndef TUD_AUTOMATA_BINARY_TREE_H_
#define TUD_AUTOMATA_BINARY_TREE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace tud {

/// Node index within a BinaryTree.
using TreeNodeId = uint32_t;

/// Node label (index into an alphabet the automaton knows about).
using Label = uint32_t;

inline constexpr TreeNodeId kNoTreeNode = UINT32_MAX;

/// A full binary tree with labeled nodes: every node is a leaf or has
/// exactly two children. This is the input shape of bottom-up tree
/// automata; bounded-treewidth instances and unranked XML trees are
/// encoded into such trees in the Courcelle-style pipeline (§2.2).
///
/// Nodes are append-only, children created before parents, so ascending
/// id order is a valid bottom-up evaluation order. The root is the node
/// designated by SetRoot (defaults to the last node added).
class BinaryTree {
 public:
  BinaryTree() = default;

  /// Adds a leaf with the given label.
  TreeNodeId AddLeaf(Label label);

  /// Adds an internal node over two existing nodes.
  TreeNodeId AddInternal(Label label, TreeNodeId left, TreeNodeId right);

  size_t NumNodes() const { return labels_.size(); }
  TreeNodeId root() const;
  Label label(TreeNodeId n) const { return labels_[n]; }
  bool IsLeaf(TreeNodeId n) const { return lefts_[n] == kNoTreeNode; }
  TreeNodeId left(TreeNodeId n) const { return lefts_[n]; }
  TreeNodeId right(TreeNodeId n) const { return rights_[n]; }

  /// Largest label used plus one.
  Label AlphabetSize() const { return alphabet_size_; }

  std::string ToString() const;

 private:
  std::vector<Label> labels_;
  std::vector<TreeNodeId> lefts_;
  std::vector<TreeNodeId> rights_;
  Label alphabet_size_ = 0;
};

}  // namespace tud

#endif  // TUD_AUTOMATA_BINARY_TREE_H_
