#ifndef TUD_AUTOMATA_TREE_AUTOMATON_H_
#define TUD_AUTOMATA_TREE_AUTOMATON_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <tuple>
#include <vector>

#include "automata/binary_tree.h"

namespace tud {

/// Automaton state index.
using State = uint32_t;

/// A bottom-up nondeterministic tree automaton (NTA) over labeled full
/// binary trees.
///
/// Tree automata are the query-evaluation device of the paper's §2.2
/// pipeline: "one compiles the MSO query q, in a data-independent
/// fashion, to a tree automaton A which can read tree encodings of
/// bounded-treewidth instances and determine whether they satisfy q"
/// [45, 18]. This class provides runs, Boolean closure (product, union,
/// complement via subset-construction determinisation) and emptiness —
/// enough to combine the hand-compiled MSO-property automata of
/// automaton_library.h into arbitrary Boolean queries.
///
/// The std::map/std::set representation here is the *construction*
/// interface and the reference implementation; the public run and
/// closure operations lower to the bitset-table engine of
/// compiled_automaton.h (the `*Legacy` entry points keep the original
/// set-based algorithms for cross-checking and as a baseline).
class TreeAutomaton {
 public:
  TreeAutomaton(uint32_t num_states, Label alphabet_size)
      : num_states_(num_states), alphabet_size_(alphabet_size) {}

  uint32_t num_states() const { return num_states_; }
  Label alphabet_size() const { return alphabet_size_; }

  /// Declares that a leaf labeled `label` may start in state `q`.
  void AddLeafTransition(Label label, State q);

  /// Declares transition (label, q_left, q_right) -> q.
  void AddTransition(Label label, State q_left, State q_right, State q);

  void SetAccepting(State q);
  bool IsAccepting(State q) const {
    return q < accepting_.size() && accepting_[q];
  }
  const std::vector<bool>& accepting() const { return accepting_; }

  const std::vector<State>& LeafStates(Label label) const;
  const std::vector<State>& Transitions(Label label, State q_left,
                                        State q_right) const;

  /// Nondeterministic run via the compiled bitset engine; true iff some
  /// run reaches an accepting state at the root.
  bool Accepts(const BinaryTree& tree) const;

  /// The set of states reachable at each node of `tree` (bottom-up).
  /// This is the original std::set-based run, kept as the reference
  /// implementation that the compiled engine is cross-checked against.
  std::vector<std::set<State>> ReachableStates(const BinaryTree& tree) const;

  /// Product automaton: accepts the intersection (`conjunction` = true)
  /// or union (false) of the two languages. Alphabets must agree.
  /// Lowers both operands to the compiled engine and crosses transition
  /// cells, never the full state square.
  static TreeAutomaton Product(const TreeAutomaton& a, const TreeAutomaton& b,
                               bool conjunction);

  /// Subset-construction determinisation; the result is a *complete*
  /// deterministic automaton with at most 2^n reachable subset states.
  /// Runs on bitset words with hash interning of subset states.
  TreeAutomaton Determinize() const;

  /// Complement: determinise, then flip accepting states.
  TreeAutomaton Complement() const;

  /// True iff the accepted language is empty (reachability check).
  bool IsEmpty() const;

  /// Reference (seed) implementations of the closure operations, kept
  /// for equivalence tests and as the baseline of the bench harness.
  static TreeAutomaton ProductLegacy(const TreeAutomaton& a,
                                     const TreeAutomaton& b,
                                     bool conjunction);
  TreeAutomaton DeterminizeLegacy() const;
  bool AcceptsLegacy(const BinaryTree& tree) const;

  /// Read access to the raw transition table (used when lowering to the
  /// compiled representation).
  const std::map<std::tuple<Label, State, State>, std::vector<State>>&
  transition_map() const {
    return transitions_;
  }

 private:
  uint32_t num_states_;
  Label alphabet_size_;
  std::vector<std::vector<State>> leaf_transitions_;  // Indexed by label.
  std::map<std::tuple<Label, State, State>, std::vector<State>> transitions_;
  std::vector<bool> accepting_;
  std::vector<State> empty_;
};

}  // namespace tud

#endif  // TUD_AUTOMATA_TREE_AUTOMATON_H_
