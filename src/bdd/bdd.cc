#include "bdd/bdd.h"

#include <algorithm>
#include <functional>

#include "util/check.h"

namespace tud {

BddManager::BddManager(uint32_t num_levels) : num_levels_(num_levels) {
  // Terminals live at the pseudo-level num_levels (below all variables).
  nodes_.push_back(Node{num_levels_, kBddFalse, kBddFalse});  // false
  nodes_.push_back(Node{num_levels_, kBddTrue, kBddTrue});    // true
}

BddRef BddManager::MakeNode(uint32_t level, BddRef low, BddRef high) {
  if (low == high) return low;  // Reduction rule.
  UniqueKey key{level, low, high};
  auto it = unique_.find(key);
  if (it != unique_.end()) return it->second;
  BddRef id = static_cast<BddRef>(nodes_.size());
  nodes_.push_back(Node{level, low, high});
  unique_.emplace(key, id);
  return id;
}

BddRef BddManager::Var(uint32_t level) {
  TUD_CHECK_LT(level, num_levels_);
  return MakeNode(level, kBddFalse, kBddTrue);
}

BddRef BddManager::Cofactor(BddRef f, uint32_t level, bool value) const {
  const Node& node = nodes_[f];
  if (node.level != level) return f;
  return value ? node.high : node.low;
}

BddRef BddManager::Ite(BddRef f, BddRef g, BddRef h) {
  // Terminal cases.
  if (f == kBddTrue) return g;
  if (f == kBddFalse) return h;
  if (g == h) return g;
  if (g == kBddTrue && h == kBddFalse) return f;

  IteKey key{f, g, h};
  auto it = ite_cache_.find(key);
  if (it != ite_cache_.end()) return it->second;

  uint32_t level = std::min({nodes_[f].level, nodes_[g].level,
                             nodes_[h].level});
  BddRef low = Ite(Cofactor(f, level, false), Cofactor(g, level, false),
                   Cofactor(h, level, false));
  BddRef high = Ite(Cofactor(f, level, true), Cofactor(g, level, true),
                    Cofactor(h, level, true));
  BddRef result = MakeNode(level, low, high);
  ite_cache_.emplace(key, result);
  return result;
}

BddRef BddManager::Not(BddRef f) { return Ite(f, kBddFalse, kBddTrue); }
BddRef BddManager::And(BddRef f, BddRef g) { return Ite(f, g, kBddFalse); }
BddRef BddManager::Or(BddRef f, BddRef g) { return Ite(f, kBddTrue, g); }

BddRef BddManager::FromCircuit(const BoolCircuit& circuit, GateId root,
                               const std::vector<uint32_t>& event_level) {
  std::vector<BddRef> compiled(circuit.NumGates(), kBddFalse);
  for (GateId g : circuit.ReachableFrom(root)) {
    switch (circuit.kind(g)) {
      case GateKind::kConst:
        compiled[g] = circuit.const_value(g) ? kBddTrue : kBddFalse;
        break;
      case GateKind::kVar: {
        EventId e = circuit.var(g);
        TUD_CHECK_LT(e, event_level.size());
        compiled[g] = Var(event_level[e]);
        break;
      }
      case GateKind::kNot:
        compiled[g] = Not(compiled[circuit.inputs(g)[0]]);
        break;
      case GateKind::kAnd: {
        BddRef acc = kBddTrue;
        for (GateId in : circuit.inputs(g)) acc = And(acc, compiled[in]);
        compiled[g] = acc;
        break;
      }
      case GateKind::kOr: {
        BddRef acc = kBddFalse;
        for (GateId in : circuit.inputs(g)) acc = Or(acc, compiled[in]);
        compiled[g] = acc;
        break;
      }
    }
  }
  return compiled[root];
}

std::optional<BddRef> BddManager::FromCircuitGoverned(
    const BoolCircuit& circuit, GateId root,
    const std::vector<uint32_t>& event_level, BudgetMeter& meter,
    EngineStatus* status) {
  *status = EngineStatus::kOk;
  std::vector<BddRef> compiled(circuit.NumGates(), kBddFalse);
  size_t nodes_before = NumNodes();
  for (GateId g : circuit.ReachableFrom(root)) {
    switch (circuit.kind(g)) {
      case GateKind::kConst:
        compiled[g] = circuit.const_value(g) ? kBddTrue : kBddFalse;
        break;
      case GateKind::kVar: {
        EventId e = circuit.var(g);
        TUD_CHECK_LT(e, event_level.size());
        compiled[g] = Var(event_level[e]);
        break;
      }
      case GateKind::kNot:
        compiled[g] = Not(compiled[circuit.inputs(g)[0]]);
        break;
      case GateKind::kAnd: {
        BddRef acc = kBddTrue;
        for (GateId in : circuit.inputs(g)) acc = And(acc, compiled[in]);
        compiled[g] = acc;
        break;
      }
      case GateKind::kOr: {
        BddRef acc = kBddFalse;
        for (GateId in : circuit.inputs(g)) acc = Or(acc, compiled[in]);
        compiled[g] = acc;
        break;
      }
    }
    // Charge the manager growth caused by this gate: the budget's cell cap
    // doubles as a BDD node cap, so a blowing-up compilation trips
    // resource_exhausted instead of exhausting memory.
    size_t nodes_after = NumNodes();
    EngineStatus st =
        meter.Charge(static_cast<uint64_t>(nodes_after - nodes_before) + 1);
    nodes_before = nodes_after;
    if (st != EngineStatus::kOk) {
      *status = st;
      return std::nullopt;
    }
  }
  return compiled[root];
}

double BddManager::Wmc(BddRef f, const std::vector<double>& level_prob) {
  TUD_CHECK_GE(level_prob.size(), num_levels_);
  // BddRefs are dense 0..NumNodes(), so the memo is a flat table with a
  // computed-flag sidecar rather than an unordered_map.
  std::vector<double> memo(nodes_.size(), 0.0);
  std::vector<char> computed(nodes_.size(), 0);
  memo[kBddTrue] = 1.0;
  computed[kBddFalse] = computed[kBddTrue] = 1;
  // Iterative post-order to avoid recursion depth issues.
  std::vector<BddRef> stack = {f};
  while (!stack.empty()) {
    BddRef n = stack.back();
    if (computed[n]) {
      stack.pop_back();
      continue;
    }
    BddRef lo = nodes_[n].low;
    BddRef hi = nodes_[n].high;
    if (computed[lo] && computed[hi]) {
      double p = level_prob[nodes_[n].level];
      memo[n] = (1.0 - p) * memo[lo] + p * memo[hi];
      computed[n] = 1;
      stack.pop_back();
    } else {
      if (!computed[lo]) stack.push_back(lo);
      if (!computed[hi]) stack.push_back(hi);
    }
  }
  return memo[f];
}

uint64_t BddManager::CountModels(BddRef f) {
  // models(n) = #assignments of levels (level(n), num_levels) satisfying,
  // scaled so the answer at a virtual root above level 0 is exact.
  // Flat tables indexed by the dense BddRef replace the hash memo.
  std::vector<uint64_t> memo(nodes_.size(), 0);
  std::vector<char> computed(nodes_.size(), 0);
  memo[kBddTrue] = 1;
  computed[kBddFalse] = computed[kBddTrue] = 1;
  std::vector<BddRef> stack = {f};
  while (!stack.empty()) {
    BddRef n = stack.back();
    if (computed[n]) {
      stack.pop_back();
      continue;
    }
    BddRef lo = nodes_[n].low;
    BddRef hi = nodes_[n].high;
    if (computed[lo] && computed[hi]) {
      uint64_t lo_scaled = memo[lo]
                           << (nodes_[lo].level - nodes_[n].level - 1);
      uint64_t hi_scaled = memo[hi]
                           << (nodes_[hi].level - nodes_[n].level - 1);
      memo[n] = lo_scaled + hi_scaled;
      computed[n] = 1;
      stack.pop_back();
    } else {
      if (!computed[lo]) stack.push_back(lo);
      if (!computed[hi]) stack.push_back(hi);
    }
  }
  return memo[f] << nodes_[f].level;
}

BddRef BddManager::Restrict(BddRef f, uint32_t level, bool value) {
  TUD_CHECK_LT(level, num_levels_);
  if (nodes_[f].level > level) return f;  // Variable below f's support.
  // Flat memo over the refs that exist on entry; MakeNode may append
  // nodes during the walk, but recursion only ever visits descendants of
  // f, which all predate the call. Sizing by the whole manager trades
  // O(total nodes) zero-fill per call for O(1) probes — the right trade
  // while callers restrict roots comparable in size to the manager; a
  // cone-sized sparse memo would win for tiny cones in huge managers.
  constexpr BddRef kUnset = UINT32_MAX;
  std::vector<BddRef> memo(nodes_.size(), kUnset);
  std::function<BddRef(BddRef)> rec = [&](BddRef g) -> BddRef {
    if (IsTerminal(g) || nodes_[g].level > level) return g;
    if (memo[g] != kUnset) return memo[g];
    BddRef result;
    if (nodes_[g].level == level) {
      result = value ? nodes_[g].high : nodes_[g].low;
    } else {
      result = MakeNode(nodes_[g].level, rec(nodes_[g].low),
                        rec(nodes_[g].high));
    }
    memo[g] = result;
    return result;
  };
  return rec(f);
}

BddRef BddManager::Exists(BddRef f, uint32_t level) {
  return Or(Restrict(f, level, false), Restrict(f, level, true));
}

bool BddManager::Evaluate(BddRef f, const std::vector<bool>& level_values) const {
  while (!IsTerminal(f)) {
    const Node& node = nodes_[f];
    TUD_CHECK_LT(node.level, level_values.size());
    f = level_values[node.level] ? node.high : node.low;
  }
  return f == kBddTrue;
}

}  // namespace tud
