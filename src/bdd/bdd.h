#ifndef TUD_BDD_BDD_H_
#define TUD_BDD_BDD_H_

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "circuits/bool_circuit.h"
#include "events/event_registry.h"
#include "util/budget.h"

namespace tud {

/// Reference to a BDD node within a BddManager. 0 is the false terminal,
/// 1 the true terminal.
using BddRef = uint32_t;

inline constexpr BddRef kBddFalse = 0;
inline constexpr BddRef kBddTrue = 1;

/// A reduced ordered binary decision diagram (ROBDD) package with
/// hash-consing and an ITE computed-table.
///
/// This is the knowledge-compilation baseline the benchmark suite
/// compares the paper's message-passing pipeline against (ProvSQL-style
/// lineage compilation): exact weighted model counting is linear in the
/// compiled BDD size, but the compiled size itself can blow up, whereas
/// the message-passing approach is guaranteed polynomial on
/// bounded-treewidth lineages.
class BddManager {
 public:
  /// Creates a manager for variables at levels 0..num_levels-1 (level =
  /// position in the variable order; smaller level = nearer the root).
  explicit BddManager(uint32_t num_levels);

  uint32_t num_levels() const { return num_levels_; }
  size_t NumNodes() const { return nodes_.size(); }

  /// The BDD testing the single variable at `level`.
  BddRef Var(uint32_t level);

  BddRef Not(BddRef f);
  BddRef And(BddRef f, BddRef g);
  BddRef Or(BddRef f, BddRef g);
  BddRef Ite(BddRef f, BddRef g, BddRef h);

  /// Compiles gate `root` of `circuit`. `event_level` maps each EventId
  /// to its variable level (must be a bijection onto 0..num_levels-1 for
  /// the events used).
  BddRef FromCircuit(const BoolCircuit& circuit, GateId root,
                     const std::vector<uint32_t>& event_level);

  /// Budget-governed compilation. Charges the node-count growth of each
  /// compiled gate against `meter`; if the budget trips mid-compile the
  /// partial compilation is abandoned, `*status` is set to the tripping
  /// status, and nullopt is returned. On success `*status` is kOk.
  std::optional<BddRef> FromCircuitGoverned(
      const BoolCircuit& circuit, GateId root,
      const std::vector<uint32_t>& event_level, BudgetMeter& meter,
      EngineStatus* status);

  /// Weighted model count: probability that the function is true when
  /// the variable at level l is independently true with probability
  /// `level_prob[l]`.
  double Wmc(BddRef f, const std::vector<double>& level_prob);

  /// Number of satisfying assignments over all num_levels variables.
  uint64_t CountModels(BddRef f);

  /// Evaluates under a level-indexed assignment.
  bool Evaluate(BddRef f, const std::vector<bool>& level_values) const;

  /// Cofactor: f with the variable at `level` fixed to `value`.
  BddRef Restrict(BddRef f, uint32_t level, bool value);

  /// Existential quantification: Restrict(f, level, 0) OR
  /// Restrict(f, level, 1).
  BddRef Exists(BddRef f, uint32_t level);

  uint32_t level(BddRef f) const { return nodes_[f].level; }
  BddRef low(BddRef f) const { return nodes_[f].low; }
  BddRef high(BddRef f) const { return nodes_[f].high; }
  bool IsTerminal(BddRef f) const { return f <= kBddTrue; }

 private:
  struct Node {
    uint32_t level;
    BddRef low;
    BddRef high;
  };

  struct UniqueKey {
    uint32_t level;
    BddRef low;
    BddRef high;
    bool operator==(const UniqueKey&) const = default;
  };
  struct UniqueKeyHash {
    size_t operator()(const UniqueKey& k) const {
      size_t h = k.level;
      h = h * 0x9e3779b9u + k.low;
      h = h * 0x9e3779b9u + k.high;
      return h;
    }
  };
  struct IteKey {
    BddRef f, g, h;
    bool operator==(const IteKey&) const = default;
  };
  struct IteKeyHash {
    size_t operator()(const IteKey& k) const {
      size_t h = k.f;
      h = h * 0x9e3779b9u + k.g;
      h = h * 0x9e3779b9u + k.h;
      return h;
    }
  };

  BddRef MakeNode(uint32_t level, BddRef low, BddRef high);
  BddRef Cofactor(BddRef f, uint32_t level, bool value) const;

  uint32_t num_levels_;
  std::vector<Node> nodes_;
  std::unordered_map<UniqueKey, BddRef, UniqueKeyHash> unique_;
  std::unordered_map<IteKey, BddRef, IteKeyHash> ite_cache_;
};

}  // namespace tud

#endif  // TUD_BDD_BDD_H_
