// Experiment X2 (Theorem 2): pcc-instances — annotations correlated
// through a shared Boolean circuit. Sweeps the correlation window w:
// the *instance* treewidth stays 1 throughout, but the width of the
// joint instance+circuit decomposition grows with w, and so does the
// inference cost — the paper's point that the joint width, not the
// separate widths, is the right parameter.

#include <benchmark/benchmark.h>

#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "treedec/elimination.h"
#include "uncertain/pcc_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

void BM_Theorem2Window(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t window = static_cast<uint32_t>(state.range(1));
  Rng rng(42);
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  double p = 0;
  EngineStats jt_stats;
  for (auto _ : state) {
    state.PauseTiming();
    Rng fresh_rng(42);
    PccInstance pcc = workloads::MakeCorrelatedPcc(fresh_rng, n, window);
    state.ResumeTiming();
    GateId lineage = ComputeCqLineage(q, pcc);
    p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events(),
                                &jt_stats);
    benchmark::DoNotOptimize(p);
  }
  // Width of the joint instance+circuit graph (min-fill estimate).
  Rng measure_rng(42);
  PccInstance pcc = workloads::MakeCorrelatedPcc(measure_rng, n, window);
  Graph joint = pcc.JointPrimalGraph();
  uint32_t joint_width = EliminationWidth(joint, MinFillOrder(joint));
  state.counters["n"] = n;
  state.counters["window"] = window;
  state.counters["joint_width"] = joint_width;
  state.counters["lineage_jt_width"] = jt_stats.width;
  state.counters["P"] = p;
}
BENCHMARK(BM_Theorem2Window)
    ->ArgsProduct({{128, 256}, {1, 2, 3, 4, 6, 8}});

// Linear scaling in n at fixed window.
void BM_Theorem2Scaling(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  double p = 0;
  for (auto _ : state) {
    state.PauseTiming();
    Rng rng(7);
    PccInstance pcc = workloads::MakeCorrelatedPcc(rng, n, 3);
    state.ResumeTiming();
    GateId lineage = ComputeCqLineage(q, pcc);
    p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["n"] = n;
  state.counters["P"] = p;
  state.SetComplexityN(n);
}
BENCHMARK(BM_Theorem2Scaling)->RangeMultiplier(2)->Range(32, 1024)
    ->Complexity();

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
