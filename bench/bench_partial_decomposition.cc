// Experiment X6 (§2.2 end, partial tree decompositions / ProbTree):
// circuits shaped as a high-treewidth core plus low-treewidth
// tentacles. The hybrid engine samples only the core events and runs
// exact message passing on the rest; at an equal sample budget its
// error is lower than pure Monte-Carlo (Rao-Blackwellisation), and the
// restricted width collapses once the core is conditioned.

#include <benchmark/benchmark.h>

#include <cmath>

#include "inference/exhaustive.h"
#include "inference/hybrid.h"
#include "inference/junction_tree.h"
#include "inference/sampling.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

void BM_HybridCoreTentacles(benchmark::State& state) {
  const uint32_t core = static_cast<uint32_t>(state.range(0));
  const uint32_t tentacles = static_cast<uint32_t>(state.range(1));
  const uint32_t samples = 400;
  Rng gen_rng(55);
  EventRegistry registry;
  GateId root;
  BoolCircuit circuit = workloads::MakeCoreTentacleCircuit(
      gen_rng, core, tentacles, registry, &root);
  std::vector<EventId> core_events =
      SelectCoreEvents(circuit, root, /*target_width=*/3, core);
  double exact = registry.size() <= 22
                     ? ExhaustiveProbability(circuit, root, registry)
                     : -1;
  EngineResult result;
  Rng rng(9);
  for (auto _ : state) {
    result = HybridProbability(circuit, root, registry, core_events,
                               samples, rng);
    benchmark::DoNotOptimize(result.value);
  }
  state.counters["core_events_chosen"] =
      static_cast<double>(core_events.size());
  state.counters["restricted_width"] = result.stats.width;
  state.counters["estimate"] = result.value;
  if (exact >= 0) {
    state.counters["abs_error"] = std::abs(result.value - exact);
  }
}
BENCHMARK(BM_HybridCoreTentacles)
    ->ArgsProduct({{6, 8, 10}, {4, 8}});

void BM_PureSamplingSameBudget(benchmark::State& state) {
  const uint32_t core = static_cast<uint32_t>(state.range(0));
  const uint32_t tentacles = static_cast<uint32_t>(state.range(1));
  const uint32_t samples = 400;
  Rng gen_rng(55);
  EventRegistry registry;
  GateId root;
  BoolCircuit circuit = workloads::MakeCoreTentacleCircuit(
      gen_rng, core, tentacles, registry, &root);
  double exact = registry.size() <= 22
                     ? ExhaustiveProbability(circuit, root, registry)
                     : -1;
  Rng rng(9);
  double p = 0;
  for (auto _ : state) {
    p = SampleProbability(circuit, root, registry, samples, rng);
    benchmark::DoNotOptimize(p);
  }
  state.counters["estimate"] = p;
  if (exact >= 0) state.counters["abs_error"] = std::abs(p - exact);
}
BENCHMARK(BM_PureSamplingSameBudget)
    ->ArgsProduct({{6, 8, 10}, {4, 8}});

// Error comparison at matched sample counts, averaged over repetitions
// (reported as RMSE counters; run with --benchmark_repetitions for
// variance).
void BM_HybridVsSamplingRmse(benchmark::State& state) {
  const uint32_t samples = static_cast<uint32_t>(state.range(0));
  Rng gen_rng(55);
  EventRegistry registry;
  GateId root;
  BoolCircuit circuit =
      workloads::MakeCoreTentacleCircuit(gen_rng, 8, 6, registry, &root);
  std::vector<EventId> core_events =
      SelectCoreEvents(circuit, root, 3, 6);
  double exact = ExhaustiveProbability(circuit, root, registry);
  const int kTrials = 20;
  double hybrid_se = 0, mc_se = 0;
  for (auto _ : state) {
    hybrid_se = mc_se = 0;
    for (int t = 0; t < kTrials; ++t) {
      Rng rng(100 + t);
      double h = HybridProbability(circuit, root, registry, core_events,
                                   samples, rng)
                     .value;
      Rng rng2(100 + t);
      double m = SampleProbability(circuit, root, registry, samples, rng2);
      hybrid_se += (h - exact) * (h - exact);
      mc_se += (m - exact) * (m - exact);
    }
    benchmark::DoNotOptimize(hybrid_se);
  }
  state.counters["hybrid_rmse"] = std::sqrt(hybrid_se / kTrials);
  state.counters["mc_rmse"] = std::sqrt(mc_se / kTrials);
}
BENCHMARK(BM_HybridVsSamplingRmse)->Arg(50)->Arg(200)->Arg(800);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
