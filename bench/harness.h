#ifndef TUD_BENCH_HARNESS_H_
#define TUD_BENCH_HARNESS_H_

// Minimal workload-registry harness (the pattern of every serious bench
// suite: register named, fully-configured workloads once; run them all
// under one timing policy; emit machine-readable results). Unlike the
// google-benchmark binaries, this harness exists to produce the
// *committed perf trajectory*: each run writes a JSON file
// (e.g. BENCH_automata.json) whose numbers CHANGES.md quotes, so
// successive PRs can compare like against like.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace tud {
namespace bench {

struct BenchResult {
  std::string name;
  double ns_per_iter = 0;
  uint64_t iters = 0;
  /// Extra named metrics emitted alongside the timing (e.g. the serving
  /// harness's qps / qps_per_core / threads). Optional; rows without
  /// counters serialize exactly as before.
  std::vector<std::pair<std::string, double>> counters;
};

class Harness {
 public:
  /// Registers a named workload. The callable is one iteration; any
  /// per-iteration setup it performs is part of the measured time, so
  /// paired workloads (legacy vs compiled) must do identical setup.
  void Register(std::string name, std::function<void()> fn) {
    workloads_.emplace_back(std::move(name), std::move(fn));
  }

  /// Runs every workload for at least `min_ms` milliseconds (and at
  /// least one iteration), printing a line per workload.
  std::vector<BenchResult> RunAll(double min_ms) {
    using clock = std::chrono::steady_clock;
    std::vector<BenchResult> results;
    results.reserve(workloads_.size());
    for (auto& [name, fn] : workloads_) {
      const auto start = clock::now();
      const double budget_ns = min_ms * 1e6;
      uint64_t iters = 0;
      double elapsed_ns = 0;
      do {
        fn();
        ++iters;
        elapsed_ns = std::chrono::duration<double, std::nano>(clock::now() -
                                                              start)
                         .count();
      } while (elapsed_ns < budget_ns);
      BenchResult r{name, elapsed_ns / static_cast<double>(iters), iters, {}};
      std::printf("%-40s %12.0f ns/iter  (%llu iters)\n", r.name.c_str(),
                  r.ns_per_iter, static_cast<unsigned long long>(r.iters));
      results.push_back(std::move(r));
    }
    return results;
  }

  /// Writes results as a JSON array of {name, ns_per_iter, iters} plus
  /// one key per counter.
  static bool WriteJson(const std::vector<BenchResult>& results,
                        const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) return false;
    std::fprintf(f, "[\n");
    for (size_t i = 0; i < results.size(); ++i) {
      std::fprintf(f,
                   "  {\"name\": \"%s\", \"ns_per_iter\": %.1f, "
                   "\"iters\": %llu",
                   results[i].name.c_str(), results[i].ns_per_iter,
                   static_cast<unsigned long long>(results[i].iters));
      for (const auto& [key, value] : results[i].counters)
        std::fprintf(f, ", \"%s\": %.3f", key.c_str(), value);
      std::fprintf(f, "}%s\n", i + 1 < results.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::function<void()>>> workloads_;
};

}  // namespace bench
}  // namespace tud

#endif  // TUD_BENCH_HARNESS_H_
