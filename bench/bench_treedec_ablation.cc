// Experiment X10 (ablation): decomposition heuristics. Compares
// min-fill and min-degree elimination orders against exact treewidth on
// small random partial k-trees (quality), their cost on larger graphs,
// and the downstream effect: junction-tree inference time on the same
// lineage circuit under each heuristic's decomposition width.

#include <benchmark/benchmark.h>

#include "treedec/elimination.h"
#include "treedec/graph.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

Graph MakeGraph(Rng& rng, uint32_t n, uint32_t k) {
  Graph g(n);
  for (const auto& [a, b] : workloads::PartialKTreeEdges(rng, n, k, 0.9)) {
    g.AddEdge(a, b);
  }
  return g;
}

void BM_MinFillOrder(benchmark::State& state) {
  Rng rng(1);
  Graph g = MakeGraph(rng, static_cast<uint32_t>(state.range(0)), 3);
  uint32_t width = 0;
  for (auto _ : state) {
    width = EliminationWidth(g, MinFillOrder(g));
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = width;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinFillOrder)->RangeMultiplier(2)->Range(16, 512)->Complexity();

void BM_MinDegreeOrder(benchmark::State& state) {
  Rng rng(1);
  Graph g = MakeGraph(rng, static_cast<uint32_t>(state.range(0)), 3);
  uint32_t width = 0;
  for (auto _ : state) {
    width = EliminationWidth(g, MinDegreeOrder(g));
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = width;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_MinDegreeOrder)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity();

// Quality versus exact treewidth (small graphs): reports the average
// width achieved by each method over random graphs.
void BM_HeuristicQualityVsExact(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const int kGraphs = 10;
  double fill_total = 0, degree_total = 0, exact_total = 0;
  for (auto _ : state) {
    fill_total = degree_total = exact_total = 0;
    for (int i = 0; i < kGraphs; ++i) {
      Rng rng(100 + i);
      Graph g = MakeGraph(rng, n, 3);
      fill_total += EliminationWidth(g, MinFillOrder(g));
      degree_total += EliminationWidth(g, MinDegreeOrder(g));
      exact_total += static_cast<double>(*ExactTreewidth(g, n));
    }
    benchmark::DoNotOptimize(exact_total);
  }
  state.counters["avg_minfill_width"] = fill_total / kGraphs;
  state.counters["avg_mindegree_width"] = degree_total / kGraphs;
  state.counters["avg_exact_width"] = exact_total / kGraphs;
}
BENCHMARK(BM_HeuristicQualityVsExact)->Arg(10)->Arg(13)->Arg(16);

void BM_ExactTreewidthCost(benchmark::State& state) {
  Rng rng(5);
  Graph g = MakeGraph(rng, static_cast<uint32_t>(state.range(0)), 3);
  uint32_t width = 0;
  for (auto _ : state) {
    width = *ExactTreewidth(g, 24);
    benchmark::DoNotOptimize(width);
  }
  state.counters["width"] = width;
}
BENCHMARK(BM_ExactTreewidthCost)->DenseRange(10, 18, 2);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
