// Update-vs-rebuild curves for the incremental maintenance subsystem:
// the same update stream answered three ways, from cheapest to the
// from-scratch baseline. Emits incremental/* rows (harness JSON) whose
// numbers the committed BENCH_automata.json quotes:
//
//   incremental/prob_update_requery/<spec>   IncrementalSession update +
//                                            dirty-bag delta requery
//   incremental/prob_update_full_execute/<spec>
//                                            update + full message pass
//                                            on the cached plan
//   incremental/prob_update_rebuild/<spec>   update + rebuild the plan
//                                            (decompose + compile) and
//                                            query — what a session with
//                                            no incremental layer pays
//   incremental/insert_repair/<spec>         InsertFact (decomposition
//                                            repair + lineage patch) +
//                                            requery
//   incremental/insert_rebuild/<spec>        same state rebuilt from
//                                            scratch (fresh session,
//                                            fresh decomposition,
//                                            lineage, plan) + query
//   persist/wal_append/<spec>                durable UpdateProbability:
//                                            encode + CRC + write(2) +
//                                            apply, per mutation
//   persist/recovery_replay/<spec>           Recover(): checkpoint load
//                                            + WAL replay, per replayed
//                                            record
//   persist/checkpoint_write/<spec>          full-state checkpoint
//                                            (serialize + CRC + write +
//                                            fsync + rename + rotate)
//
// The prob_update rows carry a speedup_vs_rebuild counter; the repair
// rows carry the repair/rebuild counters that pin the structural path.
//
// Usage: bench_incremental_updates [num_updates] [output.json] [spec...]
//   num_updates    probability updates per timed mode (default 2000)
//   output.json    harness-format output (default BENCH_incremental.json)
//   spec...        instance specs (default: ladder:48 ktree:64x2)

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "harness.h"
#include "incremental/incremental_session.h"
#include "persist/durable_session.h"
#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "uncertain/c_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

using clock_type = std::chrono::steady_clock;

double SecondsSince(clock_type::time_point start) {
  return std::chrono::duration<double>(clock_type::now() - start).count();
}

bench::BenchResult Row(std::string name, double seconds, size_t ops) {
  bench::BenchResult r;
  r.name = std::move(name);
  r.iters = ops;
  r.ns_per_iter = seconds * 1e9 / static_cast<double>(ops);
  return r;
}

void PrintRow(const bench::BenchResult& r) {
  std::printf("%-52s %14.0f ns/op  %8llu ops", r.name.c_str(), r.ns_per_iter,
              static_cast<unsigned long long>(r.iters));
  for (const auto& [key, value] : r.counters)
    std::printf("  %s=%.3f", key.c_str(), value);
  std::printf("\n");
}

/// The three probability-update modes over one spec. Each mode applies
/// the same deterministic update stream (fresh Rng per mode) so the
/// work differs only in how the answer is maintained.
void BenchProbabilityUpdates(const workloads::InstanceSpec& spec,
                             size_t num_updates,
                             std::vector<bench::BenchResult>* results) {
  const auto [source, target] = workloads::CanonicalEndpoints(spec);

  // One shared prepared state per mode — construction is untimed.
  TidInstance tid = workloads::MakeInstance(spec);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  incremental::IncrementalSession inc(session);
  const incremental::QueryId query =
      inc.RegisterReachability(0, source, target);
  inc.Probability(query);  // Warm: plan built, delta state valid.
  EventRegistry& events = session.pcc().events();
  const GateId root = inc.root(query);
  const BoolCircuit& circuit = session.pcc().circuit();
  const size_t num_events = events.size();

  // Rebuild is orders of magnitude slower per op: run a smaller stream
  // so one mode does not dominate wall clock.
  const size_t rebuild_ops =
      std::max<size_t>(num_updates / 100, std::min<size_t>(num_updates, 10));
  double sink = 0;

  // --- Mode 1: update + rebuild-and-query (decompose + compile + pass).
  double rebuild_seconds;
  {
    Rng rng(101);
    const auto start = clock_type::now();
    for (size_t i = 0; i < rebuild_ops; ++i) {
      events.set_probability(
          static_cast<EventId>(rng.UniformDouble() * num_events),
          rng.UniformDouble());
      sink += JunctionTreeProbability(circuit, root, events);
    }
    rebuild_seconds = SecondsSince(start);
  }

  // --- Mode 2: update + full message pass on the already-built plan.
  double full_seconds;
  {
    const JunctionTreePlan plan = JunctionTreePlan::Build(circuit, root);
    Rng rng(101);
    const auto start = clock_type::now();
    for (size_t i = 0; i < num_updates; ++i) {
      events.set_probability(
          static_cast<EventId>(rng.UniformDouble() * num_events),
          rng.UniformDouble());
      sink += plan.Execute(events);
    }
    full_seconds = SecondsSince(start);
  }

  // --- Mode 3: update + incremental requery (dirty-bag delta pass).
  double requery_seconds;
  {
    Rng rng(101);
    const auto start = clock_type::now();
    for (size_t i = 0; i < num_updates; ++i) {
      inc.UpdateProbability(
          static_cast<EventId>(rng.UniformDouble() * num_events),
          rng.UniformDouble());
      sink += inc.Probability(query).value;
    }
    requery_seconds = SecondsSince(start);
  }
  if (!std::isfinite(sink)) std::abort();  // Keep the loops observable.

  // The last updates of modes 2 and 3 left identical registry state:
  // the maintained answer must be bit-identical to a fresh full pass.
  const double maintained = inc.Probability(query).value;
  const double fresh = JunctionTreeProbability(circuit, root, events);
  if (maintained != fresh) {
    std::fprintf(stderr, "MISMATCH on %s: %.17g != %.17g\n",
                 spec.Name().c_str(), maintained, fresh);
    std::abort();
  }

  const double rebuild_ns =
      rebuild_seconds * 1e9 / static_cast<double>(rebuild_ops);
  const double requery_ns =
      requery_seconds * 1e9 / static_cast<double>(num_updates);
  const incremental::IncrementalStats& stats = inc.stats();

  bench::BenchResult requery =
      Row("incremental/prob_update_requery/" + spec.Name(), requery_seconds,
          num_updates);
  requery.counters = {
      {"speedup_vs_rebuild", rebuild_ns / requery_ns},
      {"delta_executes", static_cast<double>(stats.delta_executes)},
      {"full_executes", static_cast<double>(stats.full_executes)},
      {"bags_recomputed_per_query",
       static_cast<double>(stats.bags_recomputed) /
           static_cast<double>(std::max<uint64_t>(stats.delta_executes, 1))},
  };
  results->push_back(requery);
  PrintRow(results->back());

  results->push_back(Row("incremental/prob_update_full_execute/" + spec.Name(),
                         full_seconds, num_updates));
  PrintRow(results->back());

  results->push_back(Row("incremental/prob_update_rebuild/" + spec.Name(),
                         rebuild_seconds, rebuild_ops));
  PrintRow(results->back());
}

/// Structural inserts: the repair path versus a from-scratch rebuild of
/// the same grown state, interleaved so both see the same trajectory.
void BenchStructuralInserts(const workloads::InstanceSpec& spec,
                            size_t num_inserts,
                            std::vector<bench::BenchResult>* results) {
  const auto [source, target] = workloads::CanonicalEndpoints(spec);
  TidInstance tid = workloads::MakeInstance(spec);
  QuerySession session = QuerySession::FromCInstance(tid.ToPcInstance());
  incremental::IncrementalSession inc(session);
  const incremental::QueryId query =
      inc.RegisterReachability(0, source, target);
  inc.Probability(query);

  Rng rng(103);
  double repair_seconds = 0, rebuild_seconds = 0;
  uint32_t next_vertex =
      static_cast<uint32_t>(session.pcc().instance().DomainSize());
  for (size_t i = 0; i < num_inserts; ++i) {
    // Alternate covered inserts (duplicate an existing edge) with
    // cone-growing ones (fresh vertex hanging off an existing one).
    std::vector<Value> args;
    if (i % 2 == 0) {
      const Fact& fact = session.pcc().instance().fact(
          static_cast<FactId>(rng.UniformDouble() *
                              session.pcc().instance().NumFacts()));
      args = fact.args;
    } else {
      const uint32_t anchor = static_cast<uint32_t>(
          rng.UniformDouble() * session.pcc().instance().DomainSize());
      args = {anchor, next_vertex++};
    }

    auto start = clock_type::now();
    inc.InsertFact(0, std::move(args), 0.3 + 0.4 * rng.UniformDouble());
    const double repaired = inc.Probability(query).value;
    repair_seconds += SecondsSince(start);

    // The baseline rebuilds the identical post-insert state from
    // scratch: fresh session over a copy, fresh decomposition, fresh
    // lineage DP, fresh plan.
    start = clock_type::now();
    QuerySession fresh(session.pcc());
    const GateId fresh_root = fresh.ReachabilityLineage(0, source, target);
    const double rebuilt = JunctionTreeProbability(
        fresh.pcc().circuit(), fresh_root, fresh.pcc().events());
    rebuild_seconds += SecondsSince(start);

    if (std::fabs(repaired - rebuilt) > 1e-9) {
      std::fprintf(stderr, "STRUCTURAL MISMATCH on %s insert %zu: %.17g vs %.17g\n",
                   spec.Name().c_str(), i, repaired, rebuilt);
      std::abort();
    }
  }

  const incremental::IncrementalStats& stats = inc.stats();
  bench::BenchResult repair = Row("incremental/insert_repair/" + spec.Name(),
                                  repair_seconds, num_inserts);
  repair.counters = {
      {"speedup_vs_rebuild", rebuild_seconds / repair_seconds},
      {"decomposition_repairs",
       static_cast<double>(stats.decomposition_repairs)},
      {"decomposition_rebuilds",
       static_cast<double>(stats.decomposition_rebuilds)},
      {"patched_gates", static_cast<double>(stats.patched_gates)},
  };
  results->push_back(repair);
  PrintRow(results->back());

  results->push_back(Row("incremental/insert_rebuild/" + spec.Name(),
                         rebuild_seconds, num_inserts));
  PrintRow(results->back());
}

/// Durability costs over one spec: the WAL append tax on a probability
/// update, recovery (checkpoint load + replay) throughput, and the
/// full-state checkpoint write. The instance is loaded *through* the
/// durable path (every fact an InsertFact record), so recovery replays
/// realistic structural records too.
void BenchPersistence(const workloads::InstanceSpec& spec, size_t num_updates,
                      std::vector<bench::BenchResult>* results) {
  namespace fs = std::filesystem;
  const auto [source, target] = workloads::CanonicalEndpoints(spec);
  TidInstance tid = workloads::MakeInstance(spec);

  const std::string dir =
      (fs::temp_directory_path() / ("tud_bench_persist_" + spec.Name()))
          .string();
  fs::remove_all(dir);

  const persist::PersistOptions options;
  std::unique_ptr<persist::DurableSession> durable;
  if (persist::DurableSession::Create(dir, tid.instance().schema(), options,
                                      &durable) != EngineStatus::kOk) {
    std::fprintf(stderr, "persist bench: Create failed\n");
    std::abort();
  }
  for (FactId f = 0; f < tid.NumFacts(); ++f) {
    const Fact& fact = tid.instance().fact(f);
    if (durable->InsertFact(fact.relation, fact.args, tid.probability(f)) !=
        EngineStatus::kOk) {
      std::abort();
    }
  }
  if (durable->RegisterReachability(0, source, target) != EngineStatus::kOk)
    std::abort();
  double sink = durable->Probability(0).value;  // Warm plan + delta state.
  const size_t num_events = durable->session().pcc().events().size();

  // --- WAL append: the durable update stream (validate + encode + CRC
  // + write + apply per op), against a log that started at the load.
  double append_seconds;
  {
    Rng rng(107);
    const auto start = clock_type::now();
    for (size_t i = 0; i < num_updates; ++i) {
      if (durable->UpdateProbability(
              static_cast<EventId>(rng.UniformDouble() *
                                   static_cast<double>(num_events)),
              rng.UniformDouble()) != EngineStatus::kOk) {
        std::abort();
      }
    }
    append_seconds = SecondsSince(start);
  }
  if (durable->Sync() != EngineStatus::kOk) std::abort();
  const uint64_t wal_bytes = static_cast<uint64_t>(
      fs::file_size(dir + "/wal-" + std::to_string(durable->checkpoint_seq()) +
                    ".log"));
  sink += durable->Probability(0).value;
  durable.reset();

  bench::BenchResult append =
      Row("persist/wal_append/" + spec.Name(), append_seconds, num_updates);
  append.counters = {
      {"wal_bytes_per_record",
       static_cast<double>(wal_bytes) /
           static_cast<double>(num_updates + tid.NumFacts() + 1)},
  };
  results->push_back(append);
  PrintRow(results->back());

  // --- Recovery: load the (empty-state) checkpoint and replay the
  // whole log — inserts, the registration, and the update stream.
  const int kRecoverRounds = 3;
  persist::RecoveryStats stats;
  double recover_seconds;
  {
    const auto start = clock_type::now();
    for (int round = 0; round < kRecoverRounds; ++round) {
      std::unique_ptr<persist::DurableSession> recovered;
      if (persist::DurableSession::Recover(dir, options, &recovered,
                                           &stats) != EngineStatus::kOk) {
        std::fprintf(stderr, "persist bench: Recover failed\n");
        std::abort();
      }
      if (round + 1 == kRecoverRounds) durable = std::move(recovered);
    }
    recover_seconds = SecondsSince(start);
  }
  sink += durable->Probability(0).value;
  bench::BenchResult recover =
      Row("persist/recovery_replay/" + spec.Name(), recover_seconds,
          kRecoverRounds * stats.records_replayed);
  recover.counters = {
      {"records_replayed", static_cast<double>(stats.records_replayed)},
  };
  results->push_back(recover);
  PrintRow(results->back());

  // --- Checkpoint write: full-state serialization + fsync + rename +
  // WAL rotation, on the recovered session.
  const size_t kCheckpointOps = 8;
  double checkpoint_seconds;
  {
    const auto start = clock_type::now();
    for (size_t i = 0; i < kCheckpointOps; ++i) {
      if (durable->Checkpoint() != EngineStatus::kOk) std::abort();
    }
    checkpoint_seconds = SecondsSince(start);
  }
  const uint64_t ckpt_bytes = static_cast<uint64_t>(fs::file_size(
      dir + "/checkpoint-" + std::to_string(durable->checkpoint_seq()) +
      ".ckpt"));
  if (!std::isfinite(sink)) std::abort();
  durable.reset();
  fs::remove_all(dir);

  bench::BenchResult checkpoint =
      Row("persist/checkpoint_write/" + spec.Name(), checkpoint_seconds,
          kCheckpointOps);
  checkpoint.counters = {
      {"checkpoint_bytes", static_cast<double>(ckpt_bytes)},
  };
  results->push_back(checkpoint);
  PrintRow(results->back());
}

int Main(int argc, char** argv) {
  const size_t num_updates =
      argc > 1 ? static_cast<size_t>(std::atoll(argv[1])) : 2000;
  const std::string out = argc > 2 ? argv[2] : "BENCH_incremental.json";
  std::vector<std::string> spec_names;
  for (int i = 3; i < argc; ++i) spec_names.push_back(argv[i]);
  if (spec_names.empty()) spec_names = {"ladder:48", "ktree:64x2"};

  // Structural inserts pay a full rebuild per op on the baseline side;
  // keep their count far below the probability-update stream.
  const size_t num_inserts =
      std::max<size_t>(std::min<size_t>(num_updates / 40, 60), 5);

  std::vector<bench::BenchResult> results;
  for (const std::string& name : spec_names) {
    auto spec = workloads::ParseInstanceSpec(name);
    if (!spec.has_value()) {
      std::fprintf(stderr, "unknown instance spec: %s\n", name.c_str());
      return 1;
    }
    BenchProbabilityUpdates(*spec, num_updates, &results);
    BenchStructuralInserts(*spec, num_inserts, &results);
    BenchPersistence(*spec, num_updates, &results);
  }

  if (!bench::Harness::WriteJson(results, out)) {
    std::fprintf(stderr, "failed to write %s\n", out.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace tud

int main(int argc, char** argv) { return tud::Main(argc, argv); }
