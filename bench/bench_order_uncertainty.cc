// Experiment X7 (§3, order uncertainty): costs of po-relation
// reasoning. Counting linear extensions is exponential in general
// (two parallel lists have C(2n, n) worlds); possible-world membership
// has polynomial fast paths for unordered and total inputs versus the
// general backtracking case; algebra operators are polynomial.

#include <benchmark/benchmark.h>

#include "order/partial_order.h"
#include "order/po_relation.h"
#include "util/rng.h"

namespace tud {
namespace {

PoRelation TwoLogs(uint32_t per_log) {
  PoRelation a(1), b(1);
  for (uint32_t i = 0; i < per_log; ++i) {
    a.AddTuple({i});
    b.AddTuple({100 + i});
  }
  for (uint32_t i = 0; i + 1 < per_log; ++i) {
    a.AddOrderConstraint(i, i + 1);
    b.AddOrderConstraint(i, i + 1);
  }
  return PoRelation::UnionParallel(a, b);
}

void BM_CountLinearExtensionsTwoLogs(benchmark::State& state) {
  const uint32_t per_log = static_cast<uint32_t>(state.range(0));
  PoRelation merged = TwoLogs(per_log);
  uint64_t count = 0;
  for (auto _ : state) {
    count = merged.CountWorlds();
    benchmark::DoNotOptimize(count);
  }
  state.counters["tuples"] = 2.0 * per_log;
  state.counters["worlds"] = static_cast<double>(count);
}
BENCHMARK(BM_CountLinearExtensionsTwoLogs)->DenseRange(2, 12, 2);

void BM_CountLinearExtensionsRandom(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(13);
  PartialOrder order(n);
  for (uint32_t e = 0; e < n; ++e) {
    OrderElem a = static_cast<OrderElem>(rng.UniformInt(n));
    OrderElem b = static_cast<OrderElem>(rng.UniformInt(n));
    if (a != b) order.AddConstraint(a, b);
  }
  uint64_t count = 0;
  for (auto _ : state) {
    count = order.CountLinearExtensions();
    benchmark::DoNotOptimize(count);
  }
  state.counters["worlds"] = static_cast<double>(count);
}
BENCHMARK(BM_CountLinearExtensionsRandom)->DenseRange(8, 20, 4);

void BM_MembershipUnorderedFastPath(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  std::vector<PoTuple> tuples;
  for (uint32_t i = 0; i < n; ++i) tuples.push_back({i % 7});
  PoRelation bag = PoRelation::FromBag(1, tuples);
  std::vector<PoTuple> world(tuples.rbegin(), tuples.rend());
  bool member = false;
  for (auto _ : state) {
    member = bag.IsPossibleWorld(world);
    benchmark::DoNotOptimize(member);
  }
  state.counters["member"] = member;
  state.SetComplexityN(n);
}
BENCHMARK(BM_MembershipUnorderedFastPath)
    ->RangeMultiplier(2)
    ->Range(64, 4096)
    ->Complexity();

void BM_MembershipGeneralBacktracking(benchmark::State& state) {
  const uint32_t per_log = static_cast<uint32_t>(state.range(0));
  // Adversarial labels: both logs carry identical label sequences, so
  // matching must disambiguate occurrences.
  PoRelation a(1), b(1);
  for (uint32_t i = 0; i < per_log; ++i) {
    a.AddTuple({i % 2});
    b.AddTuple({i % 2});
  }
  for (uint32_t i = 0; i + 1 < per_log; ++i) {
    a.AddOrderConstraint(i, i + 1);
    b.AddOrderConstraint(i, i + 1);
  }
  PoRelation merged = PoRelation::UnionParallel(a, b);
  // A valid world: perfect alternation.
  std::vector<PoTuple> world;
  for (uint32_t i = 0; i < 2 * per_log; ++i) world.push_back({(i / 2) % 2});
  bool member = false;
  for (auto _ : state) {
    member = merged.IsPossibleWorld(world);
    benchmark::DoNotOptimize(member);
  }
  state.counters["member"] = member;
}
BENCHMARK(BM_MembershipGeneralBacktracking)->DenseRange(4, 20, 4);

void BM_AlgebraPipeline(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  PoRelation merged = TwoLogs(n);
  size_t out = 0;
  for (auto _ : state) {
    PoRelation selected =
        merged.Select([](const PoTuple& t) { return t[0] % 2 == 0; });
    PoRelation projected = selected.Project({0});
    out = projected.NumTuples();
    benchmark::DoNotOptimize(out);
  }
  state.counters["tuples_out"] = static_cast<double>(out);
  state.SetComplexityN(n);
}
BENCHMARK(BM_AlgebraPipeline)->RangeMultiplier(2)->Range(8, 256)
    ->Complexity();

void BM_ProductLex(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  PoRelation hotels = TwoLogs(n);
  PoRelation restaurants = TwoLogs(n);
  size_t pairs = 0;
  for (auto _ : state) {
    PoRelation prod = PoRelation::ProductLex(hotels, restaurants);
    pairs = prod.NumTuples();
    benchmark::DoNotOptimize(pairs);
  }
  state.counters["pairs"] = static_cast<double>(pairs);
}
BENCHMARK(BM_ProductLex)->DenseRange(2, 6, 2);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
