// Experiment X5: inference-engine comparison on the same lineage
// circuits (from the Theorem-1 workload): message passing (the paper's
// method) vs BDD compilation (ProvSQL-style knowledge compilation) vs
// Monte-Carlo sampling vs exhaustive enumeration (tiny only).
// Counters report probabilities so agreement is visible in the output.

#include <benchmark/benchmark.h>

#include <cmath>

#include "bdd/bdd.h"
#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "inference/sampling.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "util/rng.h"
#include "workloads.h"

namespace tud {
namespace {

struct Workload {
  PccInstance pcc;
  GateId lineage;
};

Workload MakeWorkload(uint32_t n) {
  Rng rng(314);
  TidInstance tid = bench::MakeKTreeTid(rng, n, 2);
  Workload w{PccInstance::FromCInstance(tid.ToPcInstance()), kInvalidGate};
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  w.lineage = ComputeCqLineage(q, w.pcc);
  return w;
}

void BM_EngineMessagePassing(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  double p = 0;
  for (auto _ : state) {
    p = JunctionTreeProbability(w.pcc.circuit(), w.lineage, w.pcc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["P"] = p;
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineMessagePassing)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity();

void BM_EngineBddCompilation(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  const uint32_t num_events = static_cast<uint32_t>(w.pcc.events().size());
  std::vector<uint32_t> levels(num_events);
  std::vector<double> probs(num_events);
  for (uint32_t e = 0; e < num_events; ++e) {
    levels[e] = e;
    probs[e] = w.pcc.events().probability(e);
  }
  double p = 0;
  size_t nodes = 0;
  for (auto _ : state) {
    BddManager mgr(num_events);
    BddRef f = mgr.FromCircuit(w.pcc.circuit(), w.lineage, levels);
    p = mgr.Wmc(f, probs);
    nodes = mgr.NumNodes();
    benchmark::DoNotOptimize(p);
  }
  state.counters["P"] = p;
  state.counters["bdd_nodes"] = static_cast<double>(nodes);
  state.SetComplexityN(state.range(0));
}
// Capped at 32: on the k-tree lineages the OBDD size explodes (1.6M
// nodes at n=32, 20M at n=64 — minutes of compilation), which is the
// knowledge-compilation failure mode the message-passing pipeline
// avoids. See EXPERIMENTS.md X5.
BENCHMARK(BM_EngineBddCompilation)->RangeMultiplier(2)->Range(16, 32);

void BM_EngineSampling(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  double exact =
      JunctionTreeProbability(w.pcc.circuit(), w.lineage, w.pcc.events());
  Rng rng(1);
  double p = 0;
  for (auto _ : state) {
    p = SampleProbability(w.pcc.circuit(), w.lineage, w.pcc.events(), 10000,
                          rng);
    benchmark::DoNotOptimize(p);
  }
  state.counters["P_estimate"] = p;
  state.counters["abs_error"] = std::abs(p - exact);
}
BENCHMARK(BM_EngineSampling)->RangeMultiplier(2)->Range(16, 512);

void BM_EngineExhaustive(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  if (w.pcc.events().size() > 22) {
    state.SkipWithError("too many events");
    return;
  }
  double p = 0;
  for (auto _ : state) {
    p = ExhaustiveProbability(w.pcc.circuit(), w.lineage, w.pcc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["P"] = p;
}
BENCHMARK(BM_EngineExhaustive)->DenseRange(4, 8, 2);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
