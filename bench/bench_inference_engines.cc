// Experiment X5: inference-engine comparison on the same lineage
// circuits (from the Theorem-1 workload), now through the unified
// ProbabilityEngine interface: message passing (the paper's method) vs
// BDD compilation (ProvSQL-style knowledge compilation) vs Monte-Carlo
// sampling vs exhaustive enumeration (tiny only), plus the AutoEngine
// planner that picks among them per cone. Counters report probabilities
// so agreement is visible in the output.

#include <benchmark/benchmark.h>

#include <cmath>
#include <string>
#include <vector>

#include "inference/engine.h"
#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

struct Workload {
  PccInstance pcc;
  GateId lineage;
};

Workload MakeWorkload(uint32_t n) {
  Rng rng(314);
  TidInstance tid = workloads::MakeKTreeTid(rng, n, 2);
  Workload w{PccInstance::FromCInstance(tid.ToPcInstance()), kInvalidGate};
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  w.lineage = ComputeCqLineage(q, w.pcc);
  return w;
}

void RunEngine(benchmark::State& state, ProbabilityEngine& engine,
               const Workload& w) {
  EngineResult result;
  for (auto _ : state) {
    result = engine.Estimate(w.pcc.circuit(), w.lineage, w.pcc.events());
    benchmark::DoNotOptimize(result.value);
  }
  state.counters["P"] = result.value;
  if (result.stats.bdd_nodes > 0) {
    state.counters["bdd_nodes"] = static_cast<double>(result.stats.bdd_nodes);
  }
}

void BM_EngineMessagePassing(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  JunctionTreeEngine engine;
  RunEngine(state, engine, w);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineMessagePassing)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity();

void BM_EngineMessagePassingSeeded(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  JunctionTreeEngine engine(/*seed_topological=*/true);
  RunEngine(state, engine, w);
  state.SetComplexityN(state.range(0));
}
BENCHMARK(BM_EngineMessagePassingSeeded)->RangeMultiplier(2)->Range(16, 512)
    ->Complexity();

void BM_EngineBddCompilation(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  BddEngine engine;
  RunEngine(state, engine, w);
  state.SetComplexityN(state.range(0));
}
// Capped at 32: on the k-tree lineages the OBDD size explodes (1.6M
// nodes at n=32, 20M at n=64 — minutes of compilation), which is the
// knowledge-compilation failure mode the message-passing pipeline
// avoids. See EXPERIMENTS.md X5.
BENCHMARK(BM_EngineBddCompilation)->RangeMultiplier(2)->Range(16, 32);

void BM_EngineSampling(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  double exact =
      JunctionTreeProbability(w.pcc.circuit(), w.lineage, w.pcc.events());
  SamplingEngine engine(10000, 1);
  EngineResult result;
  for (auto _ : state) {
    result = engine.Estimate(w.pcc.circuit(), w.lineage, w.pcc.events());
    benchmark::DoNotOptimize(result.value);
  }
  state.counters["P_estimate"] = result.value;
  state.counters["abs_error"] = std::abs(result.value - exact);
  state.counters["error_bound"] = result.error_bound;
}
BENCHMARK(BM_EngineSampling)->RangeMultiplier(2)->Range(16, 512);

void BM_EngineExhaustive(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  if (w.pcc.events().size() > 22) {
    state.SkipWithError("too many events");
    return;
  }
  ExhaustiveEngine engine;
  RunEngine(state, engine, w);
}
BENCHMARK(BM_EngineExhaustive)->DenseRange(4, 8, 2);

// Batched junction-tree evaluation via EstimateBatch: the marginals of
// 16 sub-lineage roots of one CQ lineage in one shared calibrating pass
// (batched=1) vs the default per-root loop every engine inherits
// (batched=0). Counters report the batch stats the shared pass fills —
// batch_size, bags_visited (upward + pruned downward sweep), max_table
// — which the per-root loop leaves at per-plan values.
void BM_EngineBatch(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  const bool batched = state.range(1) != 0;
  std::vector<GateId> cone = w.pcc.circuit().ReachableFrom(w.lineage);
  std::vector<GateId> roots;
  for (size_t i = 0; i < cone.size() && roots.size() < 15;
       i += cone.size() / 15) {
    roots.push_back(cone[i]);
  }
  roots.push_back(w.lineage);
  JunctionTreeEngine engine(/*seed_topological=*/false, /*cache_plans=*/true);
  std::vector<EngineResult> results;
  for (auto _ : state) {
    // batched=0 calls the base-class default (one Estimate per root,
    // here with per-root plan caching) explicitly — the baseline every
    // engine without a native batch path gets.
    results = batched
                  ? engine.EstimateBatch(w.pcc.circuit(), roots,
                                         w.pcc.events())
                  : engine.ProbabilityEngine::EstimateBatch(
                        w.pcc.circuit(), roots, w.pcc.events());
    benchmark::DoNotOptimize(results.data());
  }
  double checksum = 0;
  for (const EngineResult& r : results) checksum += r.value;
  state.counters["P_sum"] = checksum;
  state.counters["batch_size"] =
      static_cast<double>(results[0].stats.batch_size);
  state.counters["bags_visited"] =
      static_cast<double>(results[0].stats.bags_visited);
  state.counters["max_table"] =
      static_cast<double>(results[0].stats.max_table);
}
BENCHMARK(BM_EngineBatch)
    ->ArgsProduct({{16, 32}, {0, 1}})
    ->ArgNames({"n", "batched"});

// The planner end to end: cone inspection + the engine it picks. The
// chosen engine's name is reported via the counters (0 = exhaustive,
// 1 = bdd, 2 = junction_tree, 3 = hybrid, 4 = sampling).
void BM_EngineAuto(benchmark::State& state) {
  Workload w = MakeWorkload(static_cast<uint32_t>(state.range(0)));
  AutoEngine engine;
  EngineResult result;
  for (auto _ : state) {
    result = engine.Estimate(w.pcc.circuit(), w.lineage, w.pcc.events());
    benchmark::DoNotOptimize(result.value);
  }
  state.counters["P"] = result.value;
  double choice = -1;
  const std::string name = result.engine;
  if (name == "exhaustive") choice = 0;
  else if (name == "bdd") choice = 1;
  else if (name == "junction_tree") choice = 2;
  else if (name == "hybrid") choice = 3;
  else if (name == "sampling") choice = 4;
  state.counters["chosen_engine"] = choice;
}
BENCHMARK(BM_EngineAuto)->RangeMultiplier(2)->Range(16, 512);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
