// Experiment X12 (§2.1→§2.2 reduction): evaluating automaton-defined
// queries on PrXML via the translation to uncertain trees and the
// provenance-run construction, versus the direct pattern-lineage DP.
// Both are exact and agree; the automaton route additionally supports
// Boolean combinations (product/complement) for free.

#include <benchmark/benchmark.h>

#include "automata/automaton_expr.h"
#include "automata/automaton_library.h"
#include "automata/provenance_run.h"
#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/to_uncertain_tree.h"
#include "prxml/tree_pattern.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

void BM_AutomatonPipeline(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(6);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 1);
  double p = 0;
  size_t gates = 0;
  for (auto _ : state) {
    XmlLabelMap labels;
    Label dead;
    UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
    TreeAutomaton automaton =
        MakeExistsLabel(tree.AlphabetSize(), labels.Find("musician"));
    GateId lineage = ProvenanceRun(automaton, tree);
    gates = tree.circuit().NumGates();
    p = JunctionTreeProbability(tree.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["gates"] = static_cast<double>(gates);
  state.counters["P"] = p;
  state.SetComplexityN(entities);
}
BENCHMARK(BM_AutomatonPipeline)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();

void BM_PatternLineageReference(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(6);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 1);
  TreePattern pattern = TreePattern::LabelExists("musician");
  double p = 0;
  for (auto _ : state) {
    GateId lineage = PatternLineage(pattern, doc);
    p = JunctionTreeProbability(doc.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["P"] = p;
  state.SetComplexityN(entities);
}
BENCHMARK(BM_PatternLineageReference)->RangeMultiplier(2)->Range(16, 256)
    ->Complexity();

// Boolean combination (conjunction of two properties with one negated)
// evaluated in a single automaton run: the closure operations the
// pattern DP cannot express directly.
void BM_AutomatonBooleanCombination(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(6);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 1);
  double p = 0;
  for (auto _ : state) {
    XmlLabelMap labels;
    Label dead;
    UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
    TreeAutomaton has_musician =
        MakeExistsLabel(tree.AlphabetSize(), labels.Find("musician"));
    TreeAutomaton has_statement =
        MakeExistsLabel(tree.AlphabetSize(), labels.Find("statement"));
    TreeAutomaton combo = TreeAutomaton::Product(
        has_musician, has_statement.Complement(), /*conjunction=*/true);
    GateId lineage = ProvenanceRun(combo, tree);
    p = JunctionTreeProbability(tree.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["P_musician_and_no_statement"] = p;
}
BENCHMARK(BM_AutomatonBooleanCombination)->Arg(32)->Arg(128);

// The same combination through the compiled-first AutomatonExpr API:
// product and complement compose CompiledAutomaton-to-CompiledAutomaton
// and the provenance run consumes the compiled result directly — no
// std::map TreeAutomaton is rebuilt between closure steps.
void BM_AutomatonBooleanCombinationExpr(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(6);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 1);
  double p = 0;
  for (auto _ : state) {
    XmlLabelMap labels;
    Label dead;
    UncertainBinaryTree tree = PrXmlToUncertainTree(doc, labels, &dead);
    AutomatonExpr combo =
        AutomatonExpr::Atom(
            MakeExistsLabel(tree.AlphabetSize(), labels.Find("musician"))) &&
        !AutomatonExpr::Atom(MakeExistsLabel(tree.AlphabetSize(),
                                             labels.Find("statement")));
    GateId lineage = ProvenanceRun(combo.Compile(), tree);
    p = JunctionTreeProbability(tree.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["P_musician_and_no_statement"] = p;
}
BENCHMARK(BM_AutomatonBooleanCombinationExpr)->Arg(32)->Arg(128);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
