#ifndef TUD_BENCH_WORKLOADS_H_
#define TUD_BENCH_WORKLOADS_H_

// The synthetic workload generators moved into the library proper
// (src/workloads/workloads.h — the named-workload registry shared by
// the benchmarks, the serving QPS harness and the tests). This header
// re-exports them under the historical tud::bench names so the
// google-benchmark binaries keep compiling unchanged.

#include "workloads/workloads.h"

namespace tud {
namespace bench {

using workloads::EdgeSchema;
using workloads::KTreeEdgeTid;
using workloads::LadderTid;
using workloads::MakeCorrelatedPcc;
using workloads::MakeCoreTentacleCircuit;
using workloads::MakeDensePathTid;
using workloads::MakeKTreeTid;
using workloads::MakeWikidataPrxml;
using workloads::PartialKTreeEdges;
using workloads::RstSchema;
using workloads::ZipfianGenerator;
using workloads::ZipfianQueryMix;

}  // namespace bench
}  // namespace tud

#endif  // TUD_BENCH_WORKLOADS_H_
