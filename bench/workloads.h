#ifndef TUD_BENCH_WORKLOADS_H_
#define TUD_BENCH_WORKLOADS_H_

// Synthetic workload generators shared by the benchmark harness (and the
// EXPERIMENTS.md experiments). Each generator documents which experiment
// it backs; all take an explicit Rng for reproducibility.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "prxml/prxml_document.h"
#include "treedec/graph.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"

namespace tud {
namespace bench {

// Schema R(x), S(x, y), T(y) — the paper's #P-hard example query's
// schema.
inline Schema RstSchema() {
  Schema schema;
  schema.AddRelation("R", 1);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 1);
  return schema;
}

// Edges of a random partial k-tree on n vertices: build a k-tree
// incrementally (every new vertex attaches to a random k-clique), then
// keep each edge with probability `keep`. Treewidth <= k by
// construction.
inline std::vector<std::pair<uint32_t, uint32_t>> PartialKTreeEdges(
    Rng& rng, uint32_t n, uint32_t k, double keep) {
  std::vector<std::pair<uint32_t, uint32_t>> edges;
  std::vector<std::vector<uint32_t>> cliques;
  uint32_t base = std::min(n, k + 1);
  std::vector<uint32_t> first;
  for (uint32_t i = 0; i < base; ++i) {
    for (uint32_t j = i + 1; j < base; ++j) edges.emplace_back(i, j);
    first.push_back(i);
  }
  cliques.push_back(first);
  for (uint32_t v = base; v < n; ++v) {
    const std::vector<uint32_t>& host =
        cliques[rng.UniformInt(cliques.size())];
    // Attach v to a k-subset of the host clique.
    std::vector<uint32_t> subset = host;
    while (subset.size() > k) {
      subset.erase(subset.begin() + rng.UniformInt(subset.size()));
    }
    for (uint32_t u : subset) edges.emplace_back(u, v);
    subset.push_back(v);
    cliques.push_back(std::move(subset));
  }
  std::vector<std::pair<uint32_t, uint32_t>> kept;
  for (const auto& e : edges) {
    if (rng.Bernoulli(keep)) kept.push_back(e);
  }
  return kept;
}

// Experiment X1 (Theorem 1): a TID over the RST schema whose Gaifman
// graph is a partial k-tree: S facts on the k-tree edges, R/T facts on
// random vertices, all with random probabilities.
inline TidInstance MakeKTreeTid(Rng& rng, uint32_t n, uint32_t k) {
  TidInstance tid(RstSchema());
  for (const auto& [u, v] : PartialKTreeEdges(rng, n, k, 0.8)) {
    tid.AddFact(1, {u, v}, 0.2 + 0.6 * rng.UniformDouble());
  }
  for (uint32_t v = 0; v < n; ++v) {
    if (rng.Bernoulli(0.5)) {
      tid.AddFact(0, {v}, 0.2 + 0.6 * rng.UniformDouble());
    }
    if (rng.Bernoulli(0.5)) {
      tid.AddFact(2, {v}, 0.2 + 0.6 * rng.UniformDouble());
    }
  }
  return tid;
}

// Dense path-shaped TID (treewidth 1) where the RST query is always
// structurally satisfiable: R(v), T(v) for every vertex and S(v, v+1)
// for every edge, all uncertain. Used where a nontrivial probability is
// required at small sizes (e.g., the enumeration baseline).
inline TidInstance MakeDensePathTid(Rng& rng, uint32_t n) {
  TidInstance tid(RstSchema());
  for (uint32_t v = 0; v < n; ++v) {
    tid.AddFact(0, {v}, 0.3 + 0.5 * rng.UniformDouble());
    tid.AddFact(2, {v}, 0.3 + 0.5 * rng.UniformDouble());
    if (v + 1 < n) {
      tid.AddFact(1, {v, v + 1}, 0.3 + 0.5 * rng.UniformDouble());
    }
  }
  return tid;
}

// Experiment X2 (Theorem 2): a pcc-instance over a path-shaped
// (treewidth-1) instance whose annotations are correlated through a
// shared circuit: consecutive S facts within a window of size `window`
// share "source trust" events, so the annotation circuit adds
// correlation width on top of the instance. window = 1 degenerates to a
// TID.
inline PccInstance MakeCorrelatedPcc(Rng& rng, uint32_t n, uint32_t window) {
  PccInstance pcc(RstSchema());
  std::vector<GateId> sources;
  for (uint32_t i = 0; i < n; ++i) {
    EventId e = pcc.events().Register("src" + std::to_string(i),
                                      0.3 + 0.4 * rng.UniformDouble());
    sources.push_back(pcc.circuit().AddVar(e));
  }
  for (uint32_t v = 0; v + 1 < n; ++v) {
    // S(v, v+1) is trusted iff all sources in its window agree.
    std::vector<GateId> window_gates;
    for (uint32_t w = 0; w < window && v + w < n; ++w) {
      window_gates.push_back(sources[v + w]);
    }
    pcc.AddFact(1, {v, v + 1}, pcc.circuit().AddAnd(window_gates));
  }
  for (uint32_t v = 0; v < n; ++v) {
    pcc.AddFact(0, {v}, sources[v]);
    pcc.AddFact(2, {v}, sources[v]);
  }
  return pcc;
}

// Experiments X3/X4/X8: a synthetic Wikidata-style PrXML document:
// `num_entities` entity subtrees under the root, each with a few
// attribute children behind ind/mux nodes; additionally, `scope`
// global events are reused on cie edges across ALL entities
// (contributor trust a la eJane), so every entity subtree has all
// `scope` events in scope. scope = 0 yields a purely local document.
inline PrXmlDocument MakeWikidataPrxml(Rng& rng, uint32_t num_entities,
                                       uint32_t scope) {
  PrXmlDocument doc;
  std::vector<EventId> contributors;
  for (uint32_t s = 0; s < scope; ++s) {
    contributors.push_back(doc.events().Register(
        "contributor" + std::to_string(s), 0.5 + 0.4 * rng.UniformDouble()));
  }
  PNodeId root = doc.AddRoot("wikidata");
  for (uint32_t i = 0; i < num_entities; ++i) {
    PNodeId entity = doc.AddChild(root, PNodeKind::kOrdinary, "entity");
    // An optional occupation behind ind.
    PNodeId ind = doc.AddChild(entity, PNodeKind::kInd, "");
    PNodeId occ = doc.AddChild(ind, PNodeKind::kOrdinary, "occupation");
    doc.SetEdgeProbability(occ, 0.2 + 0.6 * rng.UniformDouble());
    doc.AddChild(occ, PNodeKind::kOrdinary,
                 rng.Bernoulli(0.5) ? "musician" : "analyst");
    // A name behind mux.
    PNodeId name = doc.AddChild(entity, PNodeKind::kOrdinary, "given name");
    PNodeId mux = doc.AddChild(name, PNodeKind::kMux, "");
    PNodeId n1 = doc.AddChild(mux, PNodeKind::kOrdinary, "nameA");
    doc.SetEdgeProbability(n1, 0.4);
    PNodeId n2 = doc.AddChild(mux, PNodeKind::kOrdinary, "nameB");
    doc.SetEdgeProbability(n2, 0.5);
    // Contributor-guarded facts (cie) reusing the global events: each
    // entity gets its own conjunction over the shared contributors with
    // random polarities, so distinct entities are genuinely correlated
    // through all `scope` events (no two guards coincide structurally).
    if (scope > 0) {
      PNodeId cie = doc.AddChild(entity, PNodeKind::kCie, "");
      PNodeId claim = doc.AddChild(cie, PNodeKind::kOrdinary, "claim");
      std::vector<std::pair<EventId, bool>> literals;
      for (EventId c : contributors) {
        literals.emplace_back(c, rng.Bernoulli(0.7));
      }
      doc.SetEdgeLiterals(claim, std::move(literals));
      doc.AddChild(claim, PNodeKind::kOrdinary, "statement");
    }
  }
  doc.Finalize();
  return doc;
}

// Experiment X6: a lineage-like circuit with a dense core over
// `core_events` events (a random 3-CNF with 2x clauses-to-variables,
// whose primal graph is a dense random graph of growing treewidth)
// OR-ed with `num_tentacles` independent two-level tentacles (low
// treewidth).
inline BoolCircuit MakeCoreTentacleCircuit(Rng& rng, uint32_t core_events,
                                           uint32_t num_tentacles,
                                           EventRegistry& registry,
                                           GateId* root) {
  BoolCircuit c;
  std::vector<GateId> core_vars;
  for (uint32_t e = 0; e < core_events; ++e) {
    registry.Register("core" + std::to_string(e),
                      0.3 + 0.4 * rng.UniformDouble());
    core_vars.push_back(c.AddVar(e));
  }
  std::vector<GateId> parts;
  for (uint32_t clause = 0; clause < 2 * core_events; ++clause) {
    std::vector<GateId> literals;
    for (int lit = 0; lit < 3; ++lit) {
      GateId var = core_vars[rng.UniformInt(core_vars.size())];
      literals.push_back(rng.Bernoulli(0.5) ? var : c.AddNot(var));
    }
    parts.push_back(c.AddOr(std::move(literals)));
  }
  GateId acc = parts.empty() ? c.AddConst(false) : c.AddAnd(parts);
  for (uint32_t t = 0; t < num_tentacles; ++t) {
    EventId e1 = registry.Register("tent" + std::to_string(t) + "a",
                                   0.1 + 0.3 * rng.UniformDouble());
    EventId e2 = registry.Register("tent" + std::to_string(t) + "b",
                                   0.1 + 0.3 * rng.UniformDouble());
    acc = c.AddOr(acc, c.AddAnd(c.AddVar(e1), c.AddVar(e2)));
  }
  *root = acc;
  return c;
}

}  // namespace bench
}  // namespace tud

#endif  // TUD_BENCH_WORKLOADS_H_
