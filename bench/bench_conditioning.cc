// Experiment X8 (§4, conditioning & question selection): on
// Figure-1-style documents with many untrusted contributors, compare
// entropy-greedy question selection against random questioning: number
// of oracle questions needed before the query probability is resolved
// (entropy below 0.01 bits), averaged over hidden truths.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "inference/conditioning.h"
#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"
#include "util/rng.h"

namespace tud {
namespace {

struct CrowdSetup {
  PrXmlDocument doc;
  GateId query = kInvalidGate;
  std::vector<EventId> contributors;
};

// `relevant` of the contributors gate the query's claims (conjunction);
// the rest gate noise claims.
CrowdSetup MakeSetup(uint32_t num_contributors, uint32_t relevant) {
  CrowdSetup setup;
  for (uint32_t i = 0; i < num_contributors; ++i) {
    setup.contributors.push_back(setup.doc.events().Register(
        "c" + std::to_string(i), 0.5));
  }
  PNodeId root = setup.doc.AddRoot("entity");
  for (uint32_t i = 0; i < num_contributors; ++i) {
    PNodeId cie = setup.doc.AddChild(root, PNodeKind::kCie, "");
    PNodeId claim = setup.doc.AddChild(
        cie, PNodeKind::kOrdinary,
        (i < relevant ? "claim" : "noise") + std::to_string(i));
    setup.doc.SetEdgeLiterals(claim, {{setup.contributors[i], true}});
  }
  setup.doc.Finalize();
  TreePattern pattern;
  PatternNodeId r = pattern.AddRoot("entity");
  for (uint32_t i = 0; i < relevant; ++i) {
    pattern.AddChild(r, "claim" + std::to_string(i), PatternAxis::kChild);
  }
  setup.query = PatternLineage(pattern, setup.doc);
  return setup;
}

// Runs one interrogation; returns the number of questions asked before
// the entropy of P(query | answers) drops below 0.01 bits.
int Interrogate(CrowdSetup& setup, const Valuation& truth, bool greedy,
                Rng& rng) {
  std::vector<EventId> askable = setup.contributors;
  std::vector<std::pair<EventId, bool>> answers;
  for (int asked = 0; !askable.empty(); ++asked) {
    double p = answers.empty()
                   ? JunctionTreeProbability(setup.doc.circuit(),
                                             setup.query, setup.doc.events())
                   : JunctionTreeProbabilityWithEvidence(
                         setup.doc.circuit(), setup.query,
                         setup.doc.events(), answers);
    if (BinaryEntropy(p) < 0.01) return asked;
    EventId pick;
    if (greedy) {
      pick = askable[0];
      double best = 2.0;
      for (EventId e : askable) {
        auto with = answers;
        with.emplace_back(e, true);
        double pt = JunctionTreeProbabilityWithEvidence(
            setup.doc.circuit(), setup.query, setup.doc.events(), with);
        with.back().second = false;
        double pf = JunctionTreeProbabilityWithEvidence(
            setup.doc.circuit(), setup.query, setup.doc.events(), with);
        double pe = setup.doc.events().probability(e);
        double expected =
            pe * BinaryEntropy(pt) + (1 - pe) * BinaryEntropy(pf);
        if (expected < best) {
          best = expected;
          pick = e;
        }
      }
    } else {
      pick = askable[rng.UniformInt(askable.size())];
    }
    answers.emplace_back(pick, truth.value(pick));
    askable.erase(std::find(askable.begin(), askable.end(), pick));
  }
  return static_cast<int>(setup.contributors.size());
}

void RunPolicy(benchmark::State& state, bool greedy) {
  const uint32_t contributors = static_cast<uint32_t>(state.range(0));
  const uint32_t relevant = 2;
  CrowdSetup setup = MakeSetup(contributors, relevant);
  const int kTruths = 10;
  double total_questions = 0;
  for (auto _ : state) {
    total_questions = 0;
    for (int t = 0; t < kTruths; ++t) {
      Rng rng(1000 + t);
      Valuation truth = Valuation::Sample(setup.doc.events(), rng);
      total_questions += Interrogate(setup, truth, greedy, rng);
    }
    benchmark::DoNotOptimize(total_questions);
  }
  state.counters["contributors"] = contributors;
  state.counters["avg_questions"] = total_questions / kTruths;
}

void BM_GreedyQuestions(benchmark::State& state) {
  RunPolicy(state, /*greedy=*/true);
}
void BM_RandomQuestions(benchmark::State& state) {
  RunPolicy(state, /*greedy=*/false);
}
BENCHMARK(BM_GreedyQuestions)->Arg(4)->Arg(8)->Arg(12);
BENCHMARK(BM_RandomQuestions)->Arg(4)->Arg(8)->Arg(12);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
