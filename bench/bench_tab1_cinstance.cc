// Experiment E2 (paper Table 1): the trip-booking c-instance —
// possibility/certainty checks, query probability, conditioning — plus
// scaling on synthetic multi-conference trip networks (chain-shaped,
// treewidth 1).

#include <benchmark/benchmark.h>

#include "inference/conditioning.h"
#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "util/rng.h"

namespace tud {
namespace {

Schema TripSchema() {
  Schema schema;
  schema.AddRelation("Trip", 2);
  return schema;
}

CInstance MakeTable1() {
  CInstance ci(TripSchema());
  ci.events().Register("pods", 0.7);
  ci.events().Register("stoc", 0.4);
  auto annot = [&ci](const char* text) {
    return *BoolFormula::Parse(text, ci.events());
  };
  ci.AddFact(0, {0, 1}, annot("pods"));
  ci.AddFact(0, {1, 0}, annot("pods & !stoc"));
  ci.AddFact(0, {1, 2}, annot("pods & stoc"));
  ci.AddFact(0, {0, 2}, annot("!pods & stoc"));
  ci.AddFact(0, {2, 0}, annot("stoc"));
  return ci;
}

void BM_Table1FullWorkflow(benchmark::State& state) {
  double p_pdx = 0, p_pdx_given_pods = 0;
  int possible = 0, certain = 0;
  for (auto _ : state) {
    CInstance ci = MakeTable1();
    possible = certain = 0;
    for (FactId f = 0; f < ci.NumFacts(); ++f) {
      if (ci.IsPossible(f)) ++possible;
      if (ci.IsCertain(f)) ++certain;
    }
    PccInstance pcc = PccInstance::FromCInstance(ci);
    ConjunctiveQuery q;
    q.AddAtom(0, {Term::V(0), Term::C(2)});  // Some leg into Portland.
    GateId lineage = ComputeCqLineage(q, pcc);
    p_pdx = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
    CInstance cond = ConditionOnEventLiteral(ci, 0, true);
    PccInstance pcc2 = PccInstance::FromCInstance(cond);
    GateId lineage2 = ComputeCqLineage(q, pcc2);
    p_pdx_given_pods =
        JunctionTreeProbability(pcc2.circuit(), lineage2, pcc2.events());
    benchmark::DoNotOptimize(p_pdx_given_pods);
  }
  state.counters["possible_facts"] = possible;
  state.counters["certain_facts"] = certain;
  state.counters["P_reach_PDX"] = p_pdx;
  state.counters["P_reach_PDX_given_pods"] = p_pdx_given_pods;
}
BENCHMARK(BM_Table1FullWorkflow);

// Scaling: a chain of n conferences; leg i exists iff conference i is
// attended (one event per conference). Treewidth-1 instance; query asks
// for two consecutive booked legs.
void BM_TripChain(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(5);
  CInstance ci(TripSchema());
  for (uint32_t i = 0; i < n; ++i) {
    EventId conf = ci.events().Register("conf" + std::to_string(i),
                                        0.3 + 0.4 * rng.UniformDouble());
    ci.AddFact(0, {i, i + 1}, BoolFormula::Var(conf));
  }
  PccInstance pcc = PccInstance::FromCInstance(ci);
  ConjunctiveQuery q;
  q.AddAtom(0, {Term::V(0), Term::V(1)});
  q.AddAtom(0, {Term::V(1), Term::V(2)});
  double p = 0;
  for (auto _ : state) {
    PccInstance fresh = PccInstance::FromCInstance(ci);
    GateId lineage = ComputeCqLineage(q, fresh);
    p = JunctionTreeProbability(fresh.circuit(), lineage, fresh.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["legs"] = n;
  state.counters["P_two_consecutive"] = p;
  state.SetComplexityN(n);
}
BENCHMARK(BM_TripChain)->RangeMultiplier(2)->Range(8, 512)->Complexity();

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
