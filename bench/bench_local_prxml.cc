// Experiment X4 (§2.1, local models): ind/mux documents. Compares the
// Cohen-Kimelfeld-Sagiv bottom-up DP (the [17] fast path) against the
// generic lineage + message-passing pipeline and, at small scale,
// possible-world enumeration. All three agree; the fast path wins by a
// constant factor, enumeration explodes.

#include <benchmark/benchmark.h>

#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"
#include "uncertain/worlds.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

TreePattern Pattern() {
  return TreePattern::AncestorDescendant("entity", "musician");
}

void BM_LocalFastPath(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 0);
  TreePattern pattern = Pattern();
  double p = 0;
  for (auto _ : state) {
    p = LocalPatternProbability(pattern, doc);
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["P"] = p;
  state.SetComplexityN(entities);
}
BENCHMARK(BM_LocalFastPath)->RangeMultiplier(2)->Range(16, 1024)
    ->Complexity();

void BM_LocalGenericPipeline(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 0);
  TreePattern pattern = Pattern();
  double p = 0;
  for (auto _ : state) {
    GateId lineage = PatternLineage(pattern, doc);
    p = JunctionTreeProbability(doc.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["P"] = p;
  state.SetComplexityN(entities);
}
BENCHMARK(BM_LocalGenericPipeline)->RangeMultiplier(2)->Range(16, 1024)
    ->Complexity();

void BM_LocalEnumerationBaseline(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(3);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 0);
  if (doc.events().size() > 20) {
    state.SkipWithError("too many events for enumeration");
    return;
  }
  TreePattern pattern = TreePattern::LabelExists("occupation");
  double p = 0;
  for (auto _ : state) {
    p = ProbabilityByEnumeration(doc.events(), [&](const Valuation& v) {
      return pattern.Matches(doc.World(v));
    });
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["events"] = static_cast<double>(doc.events().size());
  state.counters["P"] = p;
}
BENCHMARK(BM_LocalEnumerationBaseline)->DenseRange(1, 6, 1);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
