// Experiment X9 (§2.3, probabilistic rules): the truncated chase on
// synthetic KBs. Sweeps chase depth (rounds) for a recursive soft rule
// ("located-in is transitively likely"): derived-fact count and lineage
// size grow with depth, and the probability of a fixed distant fact
// converges as the truncation error shrinks — the paper's "truncate it
// and control the error" mitigation.

#include <benchmark/benchmark.h>

#include "inference/junction_tree.h"
#include "rules/chase.h"
#include "uncertain/c_instance.h"

namespace tud {
namespace {

// A chain KB: In(x0, x1), In(x1, x2), ..., plus the recursive soft rule
// In(x, y) & In(y, z) -> In(x, z) @ 0.9.
CInstance MakeChainKb(uint32_t length, Dictionary& dict) {
  Schema schema;
  schema.AddRelation("In", 2);
  CInstance kb(schema);
  for (uint32_t i = 0; i < length; ++i) {
    Value a = dict.Intern("x" + std::to_string(i));
    Value b = dict.Intern("x" + std::to_string(i + 1));
    kb.AddFact(0, {a, b}, BoolFormula::True());
  }
  return kb;
}

void BM_ChaseDepthSweep(benchmark::State& state) {
  const uint32_t depth = static_cast<uint32_t>(state.range(0));
  const uint32_t length = 6;
  Rule transitive = MakeRule(
      "trans",
      {{0, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{0, {Term::V(0), Term::V(2)}}}, 0.9);
  ChaseOptions options;
  options.max_rounds = depth;
  ChaseResult result{CInstance(Schema()), 0, 0, false};
  double p_far = 0;
  for (auto _ : state) {
    Dictionary dict;
    CInstance kb = MakeChainKb(length, dict);
    result = ProbabilisticChase(kb, {transitive}, dict, options);
    // Probability that the two chain endpoints are connected.
    Value x0 = *dict.Find("x0");
    Value xn = *dict.Find("x" + std::to_string(length));
    p_far = 0;
    for (FactId f = 0; f < result.instance.NumFacts(); ++f) {
      const Fact& fact = result.instance.instance().fact(f);
      if (fact.args == std::vector<Value>{x0, xn}) {
        BoolCircuit c;
        GateId g = c.AddFormula(result.instance.annotation(f));
        p_far = JunctionTreeProbability(c, g, result.instance.events());
      }
    }
    benchmark::DoNotOptimize(p_far);
  }
  state.counters["rounds"] = result.rounds_run;
  state.counters["firings"] = static_cast<double>(result.num_firings);
  state.counters["facts"] =
      static_cast<double>(result.instance.NumFacts());
  state.counters["P_endpoints_connected"] = p_far;
}
BENCHMARK(BM_ChaseDepthSweep)->DenseRange(1, 4, 1);

// Scaling in KB size at fixed depth.
void BM_ChaseKbSizeSweep(benchmark::State& state) {
  const uint32_t length = static_cast<uint32_t>(state.range(0));
  Rule transitive = MakeRule(
      "trans",
      {{0, {Term::V(0), Term::V(1)}}, {0, {Term::V(1), Term::V(2)}}},
      {{0, {Term::V(0), Term::V(2)}}}, 0.9);
  ChaseOptions options;
  options.max_rounds = 2;
  size_t facts = 0;
  for (auto _ : state) {
    Dictionary dict;
    CInstance kb = MakeChainKb(length, dict);
    ChaseResult result = ProbabilisticChase(kb, {transitive}, dict, options);
    facts = result.instance.NumFacts();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["base_facts"] = length;
  state.counters["derived_total"] = static_cast<double>(facts);
}
BENCHMARK(BM_ChaseKbSizeSweep)->DenseRange(4, 16, 4);

// Existential rule: null invention rate under the fact cap.
void BM_ChaseExistentialNulls(benchmark::State& state) {
  Schema schema;
  schema.AddRelation("Advises", 2);
  schema.AddRelation("CoAuthored", 3);
  // Advises(x, y) -> ∃p CoAuthored(x, y, p) @ 0.7.
  Rule coauthor = MakeRule(
      "coauthor", {{0, {Term::V(0), Term::V(1)}}},
      {{1, {Term::V(0), Term::V(1), Term::V(2)}}}, 0.7);
  size_t facts = 0;
  for (auto _ : state) {
    Dictionary dict;
    CInstance kb(schema);
    for (int i = 0; i < 32; ++i) {
      kb.AddFact(0,
                 {dict.Intern("s" + std::to_string(i)),
                  dict.Intern("a" + std::to_string(i % 8))},
                 BoolFormula::True());
    }
    ChaseResult result = ProbabilisticChase(kb, {coauthor}, dict);
    facts = result.instance.NumFacts();
    benchmark::DoNotOptimize(facts);
  }
  state.counters["facts_with_nulls"] = static_cast<double>(facts);
}
BENCHMARK(BM_ChaseExistentialNulls);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
