// Experiment X1 (Theorem 1): evaluating the fixed #P-hard query
// q = ∃xy R(x) S(x,y) T(y) on TID instances of bounded treewidth.
//
// Claim shapes to observe:
//  - at fixed k, lineage + message passing scales ~linearly in n;
//  - the generic baseline (possible-world enumeration) blows up
//    exponentially and is only runnable for tiny instances;
//  - the constant grows with k (that's allowed: data complexity).

#include <benchmark/benchmark.h>

#include "inference/exhaustive.h"
#include "inference/junction_tree.h"
#include "queries/conjunctive_query.h"
#include "queries/lineage.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

// Lineage + message passing on a partial-k-tree TID of n vertices.
void BM_Theorem1Pipeline(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  Rng rng(1000 + k);
  TidInstance tid = workloads::MakeKTreeTid(rng, n, k);
  CInstance pc = tid.ToPcInstance();
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  double p = 0;
  LineageStats stats;
  EngineStats jt_stats;
  for (auto _ : state) {
    PccInstance pcc = PccInstance::FromCInstance(pc);
    GateId lineage = ComputeCqLineage(q, pcc, &stats);
    p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events(),
                                &jt_stats);
    benchmark::DoNotOptimize(p);
  }
  state.counters["n"] = n;
  state.counters["k"] = k;
  state.counters["facts"] = static_cast<double>(tid.NumFacts());
  state.counters["instance_width"] = stats.decomposition_width;
  state.counters["lineage_jt_width"] = jt_stats.width;
  state.counters["P"] = p;
  state.SetComplexityN(n);
}
BENCHMARK(BM_Theorem1Pipeline)
    ->ArgsProduct({benchmark::CreateRange(64, 2048, 2), {1, 2, 3}})
    ->Complexity();

// The naive baseline: enumerate all 2^m possible worlds. Only feasible
// for ~20 facts; the time doubles per added fact, which is the paper's
// motivation for structural tractability.
void BM_NaiveEnumerationBaseline(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(7);
  TidInstance tid = workloads::MakeDensePathTid(rng, n);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  GateId lineage = ComputeCqLineage(q, pcc);
  if (pcc.events().size() > 22) {
    state.SkipWithError("too many events for enumeration");
    return;
  }
  double p = 0;
  for (auto _ : state) {
    p = ExhaustiveProbability(pcc.circuit(), lineage, pcc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["facts"] = static_cast<double>(tid.NumFacts());
  state.counters["P"] = p;
}
BENCHMARK(BM_NaiveEnumerationBaseline)->DenseRange(4, 10, 1);

// Cross-check at small scale: message passing equals enumeration.
void BM_Theorem1Agreement(benchmark::State& state) {
  Rng rng(99);
  TidInstance tid = workloads::MakeKTreeTid(rng, 7, 2);
  PccInstance pcc = PccInstance::FromCInstance(tid.ToPcInstance());
  ConjunctiveQuery q = ConjunctiveQuery::RstPath(0, 1, 2);
  GateId lineage = ComputeCqLineage(q, pcc);
  double mp = 0, exact = 0;
  for (auto _ : state) {
    mp = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
    exact = ExhaustiveProbability(pcc.circuit(), lineage, pcc.events());
    benchmark::DoNotOptimize(mp);
  }
  state.counters["message_passing"] = mp;
  state.counters["enumeration"] = exact;
  state.counters["abs_error"] = std::abs(mp - exact);
}
BENCHMARK(BM_Theorem1Agreement);

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
