// Experiment X3 (§2.1, bounded event scopes): synthetic Wikidata-style
// PrXML with `scope` contributor events reused across all entities.
//
// Shapes: time is ~linear in the number of entities at fixed scope, and
// grows exponentially with the scope parameter (which is exactly what
// the bounded-scope condition permits: the blow-up is confined to the
// scope constant, never to the document size).

#include <benchmark/benchmark.h>

#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

void BM_ScopeSweep(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  const uint32_t scope = static_cast<uint32_t>(state.range(1));
  Rng rng(11 + scope);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, scope);
  TreePattern pattern = TreePattern::LabelExists("statement");
  if (scope == 0) pattern = TreePattern::LabelExists("musician");
  double p = 0;
  for (auto _ : state) {
    GateId lineage = PatternLineage(pattern, doc);
    p = JunctionTreeProbability(doc.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.counters["scope_param"] = scope;
  state.counters["max_scope"] = static_cast<double>(doc.MaxScopeSize());
  state.counters["P"] = p;
}
BENCHMARK(BM_ScopeSweep)
    ->ArgsProduct({{32, 64}, {0, 1, 2, 3, 4}})
    ->Args({32, 5});  // The blow-up in the scope constant is visible
                      // already at 5; larger scopes explode (as the
                      // theory says they may — the bound is on the
                      // constant, not the document).

void BM_ScopeFixedGrowDocument(benchmark::State& state) {
  const uint32_t entities = static_cast<uint32_t>(state.range(0));
  Rng rng(23);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, entities, 2);
  TreePattern pattern = TreePattern::LabelExists("statement");
  double p = 0;
  for (auto _ : state) {
    GateId lineage = PatternLineage(pattern, doc);
    p = JunctionTreeProbability(doc.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = entities;
  state.SetComplexityN(entities);
}
BENCHMARK(BM_ScopeFixedGrowDocument)
    ->RangeMultiplier(2)
    ->Range(16, 512)
    ->Complexity();

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
