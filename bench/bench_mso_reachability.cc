// Experiment X11 (Theorems 1-2 beyond CQs): lineage for s-t
// *reachability* — MSO-definable, not CQ-expressible — over
// bounded-treewidth TIDs, via the Courcelle-style connectivity DP.
// Shapes: ~linear in n at fixed width; state count per node bounded;
// exact probabilities match the CQ engines' guarantees (validated in
// tests; counters report P and the width actually used).
//
// The primary benchmarks go through QuerySession: the instance's tree
// encoding is derived once and every iteration (= one query) reuses it,
// which is the paper's compile-once/evaluate-many shape. The *Fresh
// variants keep the old per-query derivation as the baseline.

#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "inference/junction_tree.h"
#include "queries/query_session.h"
#include "queries/reachability.h"
#include "uncertain/c_instance.h"
#include "uncertain/pcc_instance.h"
#include "uncertain/tid_instance.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

// The instances come from the shared workload registry
// (src/workloads/workloads.h) — the same generators the serving QPS
// harness and the tests size their runs from.
using workloads::KTreeEdgeTid;
using workloads::LadderTid;

void BM_ReachabilityLadder(benchmark::State& state) {
  const uint32_t length = static_cast<uint32_t>(state.range(0));
  Rng rng(8);
  TidInstance tid = LadderTid(rng, length);
  // Policy picked once: exact message passing with plan caching — the
  // lineage gate is stable across iterations (structural hashing), so
  // the elimination order is derived once and only the numeric pass
  // reruns.
  QuerySession session = QuerySession::FromCInstance(
      tid.ToPcInstance(),
      std::make_unique<JunctionTreeEngine>(
          /*seed_topological=*/false, /*cache_plans=*/true));
  double p = 0;
  LineageStats stats;
  for (auto _ : state) {
    GateId lineage =
        session.ReachabilityLineage(0, 0, 2 * length - 2, &stats);
    p = session.Probability(lineage).value;
    benchmark::DoNotOptimize(p);
  }
  state.counters["rungs"] = length;
  state.counters["instance_width"] = stats.decomposition_width;
  state.counters["max_states"] =
      static_cast<double>(stats.max_states_per_node);
  state.counters["P_connected"] = p;
  state.SetComplexityN(length);
}
BENCHMARK(BM_ReachabilityLadder)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

// Baseline: the pre-session shape — every query rebuilds the
// pcc-instance and re-derives the decomposition from scratch.
void BM_ReachabilityLadderFresh(benchmark::State& state) {
  const uint32_t length = static_cast<uint32_t>(state.range(0));
  Rng rng(8);
  TidInstance tid = LadderTid(rng, length);
  CInstance pc = tid.ToPcInstance();
  double p = 0;
  LineageStats stats;
  for (auto _ : state) {
    PccInstance pcc = PccInstance::FromCInstance(pc);
    GateId lineage =
        ComputeReachabilityLineage(pcc, 0, 0, 2 * length - 2, &stats);
    p = JunctionTreeProbability(pcc.circuit(), lineage, pcc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["rungs"] = length;
  state.counters["instance_width"] = stats.decomposition_width;
  state.counters["P_connected"] = p;
  state.SetComplexityN(length);
}
BENCHMARK(BM_ReachabilityLadderFresh)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

// Batched evaluation: a whole target battery — "which of these 32
// vertices does the source reach?" — compiled through the
// target-indexed connectivity DP (ReachabilityLineageBatch), so each
// chunk's 16 lineages share one cone, then evaluated sequentially (one
// plan-cached message pass per root) vs one ProbabilityBatch call. On
// the path-shaped instance the shared cone stays as narrow as a single
// lineage's, so the batch cost model routes the battery through shared
// calibrating passes; the batch_path counter records the decision it
// took (1 = shared, 2 = grouped, 3 = per-root).
void BM_ReachabilityBatch32(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const bool batched = state.range(1) != 0;
  Schema schema;
  schema.AddRelation("E", 2);
  Rng rng(8);
  TidInstance tid(schema);
  for (Value v = 0; v + 1 < n; ++v) {
    tid.AddFact(0, {v, v + 1}, 0.5 + 0.45 * rng.UniformDouble());
  }
  QuerySession session = QuerySession::FromCInstance(
      tid.ToPcInstance(),
      std::make_unique<JunctionTreeEngine>(
          /*seed_topological=*/false, /*cache_plans=*/true));
  // 32 targets spread over the path's n vertices.
  std::vector<Value> targets;
  for (uint32_t k = 1; k <= 32; ++k) {
    targets.push_back(static_cast<Value>((k * (n - 1)) / 32));
  }
  std::vector<GateId> roots = session.ReachabilityLineageBatch(0, 0, targets);
  double checksum = 0;
  size_t bags_visited = 0;
  double batch_path = 0;
  for (auto _ : state) {
    checksum = 0;
    bags_visited = 0;
    if (batched) {
      std::vector<EngineResult> results = session.ProbabilityBatch(roots);
      for (const EngineResult& r : results) checksum += r.value;
      bags_visited = results[0].stats.bags_visited;
      batch_path = static_cast<double>(results[0].stats.batch_path);
    } else {
      for (GateId g : roots) {
        EngineResult r = session.Probability(g);
        checksum += r.value;
        bags_visited += r.stats.bags_visited;
      }
    }
    benchmark::DoNotOptimize(checksum);
  }
  state.counters["n"] = n;
  state.counters["batch_size"] = static_cast<double>(roots.size());
  state.counters["bags_visited"] = static_cast<double>(bags_visited);
  state.counters["batch_path"] = batch_path;
  state.counters["P_sum"] = checksum;
}
BENCHMARK(BM_ReachabilityBatch32)
    ->ArgsProduct({{48, 96, 192}, {0, 1}})
    ->ArgNames({"n", "batched"});

void BM_ReachabilityKTree(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  const uint32_t k = static_cast<uint32_t>(state.range(1));
  Rng rng(99 + k);
  TidInstance tid = KTreeEdgeTid(rng, n, k);
  QuerySession session = QuerySession::FromCInstance(
      tid.ToPcInstance(),
      std::make_unique<JunctionTreeEngine>(
          /*seed_topological=*/false, /*cache_plans=*/true));
  double p = 0;
  LineageStats stats;
  for (auto _ : state) {
    GateId lineage = session.ReachabilityLineage(0, 0, n - 1, &stats);
    p = session.Probability(lineage).value;
    benchmark::DoNotOptimize(p);
  }
  state.counters["n"] = n;
  state.counters["k"] = k;
  state.counters["instance_width"] = stats.decomposition_width;
  state.counters["P_connected"] = p;
}
BENCHMARK(BM_ReachabilityKTree)
    ->ArgsProduct({{64, 128, 256}, {1, 2}});

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
