// Experiment E1 (paper Figure 1): query evaluation on the Chelsea
// Manning PrXML document, and scaling on forests of Figure-1-style
// entities. Correctness counters report the exact marginals the paper's
// figure implies (0.4 / 0.6 / 0.9 / correlated 0.9).

#include <benchmark/benchmark.h>

#include "inference/junction_tree.h"
#include "prxml/pattern_eval.h"
#include "prxml/prxml_document.h"
#include "prxml/tree_pattern.h"
#include "util/rng.h"
#include "workloads/workloads.h"

namespace tud {
namespace {

PrXmlDocument MakeFigure1() {
  PrXmlDocument doc;
  EventId e_jane = doc.events().Register("eJane", 0.9);
  PNodeId root = doc.AddRoot("Q298423");
  PNodeId ind = doc.AddChild(root, PNodeKind::kInd, "");
  PNodeId occ = doc.AddChild(ind, PNodeKind::kOrdinary, "occupation");
  doc.SetEdgeProbability(occ, 0.4);
  doc.AddChild(occ, PNodeKind::kOrdinary, "musician");
  PNodeId cie1 = doc.AddChild(root, PNodeKind::kCie, "");
  PNodeId pob = doc.AddChild(cie1, PNodeKind::kOrdinary, "place of birth");
  doc.SetEdgeLiterals(pob, {{e_jane, true}});
  doc.AddChild(pob, PNodeKind::kOrdinary, "Crescent");
  PNodeId cie2 = doc.AddChild(root, PNodeKind::kCie, "");
  PNodeId surname = doc.AddChild(cie2, PNodeKind::kOrdinary, "surname");
  doc.SetEdgeLiterals(surname, {{e_jane, true}});
  doc.AddChild(surname, PNodeKind::kOrdinary, "Manning");
  PNodeId given = doc.AddChild(root, PNodeKind::kOrdinary, "given name");
  PNodeId mux = doc.AddChild(given, PNodeKind::kMux, "");
  PNodeId bradley = doc.AddChild(mux, PNodeKind::kOrdinary, "Bradley");
  doc.SetEdgeProbability(bradley, 0.4);
  PNodeId chelsea = doc.AddChild(mux, PNodeKind::kOrdinary, "Chelsea");
  doc.SetEdgeProbability(chelsea, 0.6);
  doc.Finalize();
  return doc;
}

// Exact Figure-1 marginals, reported as counters so the harness output
// documents the reproduction (expected: 0.4, 0.6, 0.9, 0.9).
void BM_Figure1Marginals(benchmark::State& state) {
  double p_musician = 0, p_chelsea = 0, p_manning = 0, p_both = 0;
  for (auto _ : state) {
    PrXmlDocument doc = MakeFigure1();
    auto prob = [&doc](const TreePattern& pattern) {
      GateId lineage = PatternLineage(pattern, doc);
      return JunctionTreeProbability(doc.circuit(), lineage, doc.events());
    };
    p_musician = prob(TreePattern::LabelExists("musician"));
    p_chelsea = prob(TreePattern::LabelExists("Chelsea"));
    p_manning = prob(TreePattern::LabelExists("Manning"));
    TreePattern both;
    PatternNodeId r = both.AddRoot("Q298423");
    both.AddChild(r, "surname", PatternAxis::kChild);
    both.AddChild(r, "place of birth", PatternAxis::kChild);
    p_both = prob(both);
    benchmark::DoNotOptimize(p_both);
  }
  state.counters["P_musician"] = p_musician;
  state.counters["P_Chelsea"] = p_chelsea;
  state.counters["P_Manning"] = p_manning;
  state.counters["P_surname_and_pob"] = p_both;
}
BENCHMARK(BM_Figure1Marginals);

// Scaling: a forest of n Figure-1-style entities (local + one shared
// contributor event); time grows linearly in n at fixed scope.
void BM_Figure1Forest(benchmark::State& state) {
  const uint32_t n = static_cast<uint32_t>(state.range(0));
  Rng rng(17);
  PrXmlDocument doc = workloads::MakeWikidataPrxml(rng, n, 1);
  TreePattern pattern = TreePattern::LabelExists("musician");
  double p = 0;
  for (auto _ : state) {
    GateId lineage = PatternLineage(pattern, doc);
    p = JunctionTreeProbability(doc.circuit(), lineage, doc.events());
    benchmark::DoNotOptimize(p);
  }
  state.counters["entities"] = n;
  state.counters["P"] = p;
  state.SetComplexityN(n);
}
BENCHMARK(BM_Figure1Forest)->RangeMultiplier(2)->Range(8, 256)->Complexity();

}  // namespace
}  // namespace tud

BENCHMARK_MAIN();
